// Role 2 walkthrough (paper §4, Figs 13-15): learning a distribution from
// data plus symbolic knowledge. Course prerequisites are compiled into an
// SDD; enrollment data then trains PSDD parameters; the learned
// distribution answers MAR/MPE queries in linear time and samples.

#include <cstdio>

#include "psdd/learn.h"
#include "psdd/psdd.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

int main() {
  using namespace tbc;
  const char* names[4] = {"AI", "KR", "Logic", "Prob"};

  // Prerequisites (Fig 15): take Probability or Logic; AI requires
  // Probability; KR requires AI or Logic. A=0, K=1, L=2, P=3.
  Cnf prerequisites(4);
  prerequisites.AddClauseDimacs({4, 3});
  prerequisites.AddClauseDimacs({-1, 4});
  prerequisites.AddClauseDimacs({-2, 1, 3});

  SddManager mgr(Vtree::Balanced({2, 1, 3, 0}));  // ((L K) (P A)), Fig 10a
  const SddId sdd = CompileCnf(mgr, prerequisites);
  std::printf("valid course combinations: %s of 16\n\n",
              mgr.ModelCount(sdd).ToString().c_str());

  // Synthetic enrollment table in the shape of Fig 15 (counts per valid
  // combination of A, K, L, P).
  WeightedData data = WeightedData::FromCounts({
      {{false, false, true, false}, 54},
      {{false, false, false, true}, 98},
      {{false, false, true, true}, 76},
      {{false, true, true, false}, 33},
      {{false, true, true, true}, 77},
      {{true, false, false, true}, 68},
      {{true, false, true, true}, 64},
      {{true, true, false, true}, 51},
      {{true, true, true, true}, 38},
  });
  std::printf("students: %.0f\n", data.TotalWeight());

  Psdd psdd = LearnPsdd(mgr, sdd, data, /*laplace=*/0.0);
  std::printf("PSDD size: %zu elements\n\n", psdd.Size());

  std::printf("learned distribution over valid combinations (Fig 14):\n");
  double total = 0.0;
  for (int bits = 0; bits < 16; ++bits) {
    Assignment x(4);
    for (Var v = 0; v < 4; ++v) x[v] = (bits >> v) & 1;
    const double p = psdd.Probability(x);
    total += p;
    if (p > 0.0) {
      std::printf("  ");
      for (Var v = 0; v < 4; ++v) std::printf("%s%s ", x[v] ? "" : "~", names[v]);
      std::printf(" -> %.4f\n", p);
    }
  }
  std::printf("  (sums to %.6f)\n\n", total);

  // Linear-time reasoning with the learned distribution.
  PsddEvidence e(4, Obs::kUnknown);
  e[2] = Obs::kTrue;  // enrolled in Logic
  std::printf("Pr(Logic) = %.4f\n", psdd.ProbabilityEvidence(e));
  const auto post = psdd.Marginals(e, /*normalized=*/true);
  std::printf("Pr(KR | Logic) = %.4f, Pr(Prob | Logic) = %.4f\n", post[1],
              post[3]);
  auto mpe = psdd.MostProbable(e);
  std::printf("most probable schedule given Logic: ");
  for (Var v = 0; v < 4; ++v) {
    if (mpe.assignment[v]) std::printf("%s ", names[v]);
  }
  std::printf("(Pr %.4f)\n", mpe.probability);

  Rng rng(2026);
  std::printf("three sampled students:\n");
  for (int i = 0; i < 3; ++i) {
    Assignment s = psdd.Sample(rng);
    std::printf("  ");
    for (Var v = 0; v < 4; ++v) {
      if (s[v]) std::printf("%s ", names[v]);
    }
    std::printf("\n");
  }
  return 0;
}
