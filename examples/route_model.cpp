// Role 2, combinatorial spaces (paper §4.1-4.2, Figs 16-22): a grid map's
// simple routes are compiled into a circuit (Simpath frontier algorithm),
// a PSDD is trained on synthetic GPS traces, and the hierarchical-map
// decomposition is compared against flat compilation.

#include <cstdio>

#include "psdd/psdd.h"
#include "spaces/graph.h"
#include "spaces/hierarchical.h"
#include "spaces/routes.h"

int main() {
  using namespace tbc;

  Graph grid = Graph::Grid(4, 4);
  const GraphNode home = 0, office = 15;
  RouteSpace space(grid, home, office);
  std::printf("4x4 grid: %zu streets, %llu valid routes home->office\n",
              grid.num_edges(),
              static_cast<unsigned long long>(space.NumRoutes()));

  // Synthetic GPS dataset: a commuter who prefers a couple of routes.
  Rng rng(99);
  std::vector<Assignment> gps;
  const Assignment favorite = space.RandomRoute(rng);
  const Assignment alternate = space.RandomRoute(rng);
  for (int day = 0; day < 200; ++day) {
    if (day % 10 == 0) {
      gps.push_back(space.RandomRoute(rng));  // occasional detour
    } else if (day % 3 == 0) {
      gps.push_back(alternate);
    } else {
      gps.push_back(favorite);
    }
  }

  Psdd psdd = space.MakePsdd();
  psdd.LearnParameters(gps, {}, 0.1);
  std::printf("PSDD over routes: %zu elements\n\n", psdd.Size());

  std::printf("Pr(favorite route)  = %.3f\n", psdd.Probability(favorite));
  std::printf("Pr(alternate route) = %.3f\n", psdd.Probability(alternate));

  // Street-level marginals: how likely is each street on a random trip?
  PsddEvidence none(grid.num_edges(), Obs::kUnknown);
  const auto usage = psdd.Marginals(none, /*normalized=*/true);
  double max_usage = 0.0;
  uint32_t busiest = 0;
  for (uint32_t e = 0; e < grid.num_edges(); ++e) {
    if (usage[e] > max_usage) {
      max_usage = usage[e];
      busiest = e;
    }
  }
  std::printf("busiest street: %u-%u with Pr %.3f\n\n", grid.edge_u(busiest),
              grid.edge_v(busiest), max_usage);

  // Predict the rest of a trip from a partial observation.
  PsddEvidence partial(grid.num_edges(), Obs::kUnknown);
  for (uint32_t e = 0; e < grid.num_edges(); ++e) {
    if (favorite[e]) {
      partial[e] = Obs::kTrue;
      break;  // observe the first street of the favorite route
    }
  }
  auto completion = psdd.MostProbable(partial);
  std::printf("most probable completion of the observed trip: Pr %.3f, %s\n\n",
              completion.probability,
              grid.IsSimplePath(completion.assignment, home, office)
                  ? "a valid route"
                  : "INVALID");

  // Hierarchical maps (Figs 18/22): decomposed vs monolithic compilation.
  std::printf("hierarchical vs flat compilation (6x6 grid, 3x3 regions):\n");
  HierarchicalMap map(6, 6, 3);
  const auto stats = map.Compile(0, 35);
  std::printf("  flat circuit nodes: %zu (routes: %llu)\n", stats.flat_nodes,
              static_cast<unsigned long long>(stats.flat_routes));
  std::printf("  hierarchical nodes: %zu = top %zu + regions %zu "
              "(routes: %llu, region-once semantics)\n",
              stats.hier_nodes, stats.top_level_nodes, stats.region_nodes,
              static_cast<unsigned long long>(stats.hier_routes));
  return 0;
}
