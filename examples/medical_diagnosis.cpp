// Role 1 walkthrough (paper §2, Fig 2): the medical Bayesian network with
// condition c and tests T1/T2, queried through the circuit pipeline —
// encode to CNF [Darwiche 2002], compile once, answer MPE / MAR / MAP /
// SDP (the NP / PP / NP^PP / PP^PP ladder) with passes over the circuit.

#include <cstdio>

#include "bayes/circuit_inference.h"
#include "bayes/network.h"
#include "bayes/varelim.h"

int main() {
  using namespace tbc;

  // Structure of Fig 2; CPT values are ours (the figure's are an image —
  // see DESIGN.md substitutions).
  BayesianNetwork net;
  const BnVar sex = net.AddBinary("sex", {}, {0.55});
  const BnVar c = net.AddBinary("c", {sex}, {0.05, 0.15});
  const BnVar t1 = net.AddBinary("T1", {c}, {0.10, 0.85});
  const BnVar t2 = net.AddBinary("T2", {c}, {0.20, 0.75});
  net.AddBinary("AGREE", {t1, t2}, {0.95, 0.05, 0.05, 0.95});

  CompiledBayesNet circuit(net);
  VariableElimination baseline(net);
  std::printf("compiled circuit edges: %zu\n\n", circuit.CircuitSize());

  BnInstantiation none(5, kUnobserved);

  std::printf("== MAR (PP): marginals of every variable ==\n");
  auto marginals = circuit.AllMarginals(none);
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    std::printf("  Pr(%s=1) = %.4f   (VE baseline %.4f)\n",
                net.name(v).c_str(), marginals[v][1],
                baseline.Marginal(v, 1, none));
  }

  std::printf("\n== MPE (NP): most probable joint instantiation ==\n");
  auto mpe = circuit.Mpe(none);
  std::printf("  ");
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    std::printf("%s=%d ", net.name(v).c_str(), mpe.instantiation[v]);
  }
  std::printf(" Pr = %.5f\n", mpe.probability);

  std::printf("\n== MAP (NP^PP) over {sex, c} given T1=1 ==\n");
  BnInstantiation t1_pos(5, kUnobserved);
  t1_pos[t1] = 1;
  auto map = circuit.Map({sex, c}, t1_pos);
  std::printf("  argmax: sex=%d c=%d, Pr(y, e) = %.5f\n", map.values[0],
              map.values[1], map.probability);

  std::printf("\n== SDP (PP^PP): will the treatment decision stick? ==\n");
  // Decision: operate iff Pr(c | evidence) >= 0.9 (currently negative).
  const double threshold = 0.9;
  std::printf("  Pr(c) = %.4f -> current decision: %s\n",
              circuit.Posterior(c, 1, none),
              circuit.Posterior(c, 1, none) >= threshold ? "operate" : "wait");
  const double sdp = circuit.Sdp(c, 1, threshold, {t1, t2}, none);
  std::printf("  probability the decision survives observing T1, T2: %.4f\n",
              sdp);
  std::printf("  (same-decision probability; VE baseline %.4f)\n",
              baseline.Sdp(c, 1, threshold, {t1, t2}, none));
  return 0;
}
