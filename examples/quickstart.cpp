// Quickstart: the compile-then-query workflow behind all three roles
// (paper Fig 1): encode a problem as a Boolean formula, compile it into a
// tractable circuit, then answer hard queries with linear-time passes.

#include <cstdio>

#include "compiler/ddnnf_compiler.h"
#include "core/kc_map.h"
#include "core/solvers.h"
#include "nnf/queries.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

int main() {
  using namespace tbc;

  // The paper's running example (Figs 9, 13): course prerequisites
  //   (P ∨ L) ∧ (A ⇒ P) ∧ (K ⇒ (A ∨ L))
  // over A(=AI), K(=knowledge representation), L(=logic), P(=probability).
  Cnf constraint(4);
  constraint.AddClauseDimacs({4, 3});      // P ∨ L
  constraint.AddClauseDimacs({-1, 4});     // A ⇒ P
  constraint.AddClauseDimacs({-2, 1, 3});  // K ⇒ (A ∨ L)

  std::printf("== Compile to Decision-DNNF (top-down compiler) ==\n");
  NnfManager nnf;
  DdnnfCompiler compiler;
  const NnfId ddnnf = compiler.Compile(constraint, nnf);
  std::printf("circuit edges: %zu, decisions: %llu, cache hits: %llu\n",
              nnf.CircuitSize(ddnnf),
              static_cast<unsigned long long>(compiler.stats().decisions),
              static_cast<unsigned long long>(compiler.stats().cache_hits));
  std::printf("satisfiable (NP query, linear on DNNF): %s\n",
              IsSatDnnf(nnf, ddnnf) ? "yes" : "no");
  std::printf("model count (PP query, linear on d-DNNF): %s of 16\n",
              ModelCount(nnf, ddnnf, 4).ToString().c_str());

  std::printf("\n== Compile to SDD (bottom-up, vtree ((L K) (P A))) ==\n");
  SddManager sdd(Vtree::Balanced({2, 1, 3, 0}));
  const SddId s = CompileCnf(sdd, constraint);
  std::printf("SDD size (elements): %zu, model count: %s\n", sdd.Size(s),
              sdd.ModelCount(s).ToString().c_str());

  // Weighted model counting: weight each course by enrollment appetite.
  WeightMap w(4);
  w.Set(Pos(0), 0.3);  // A
  w.Set(Neg(0), 0.7);
  w.Set(Pos(3), 0.8);  // P
  w.Set(Neg(3), 0.2);
  std::printf("WMC with biased A and P: %.6f\n", sdd.Wmc(s, w));

  // Polytime transformations (the SDD's signature capability).
  const SddId with_ai = sdd.Condition(s, Pos(0));
  std::printf("models after conditioning on A: %s\n",
              sdd.ModelCount(with_ai).ToString().c_str());
  const SddId negated = sdd.Negate(s);
  std::printf("models of the negation: %s (9 + %s = 16)\n",
              sdd.ModelCount(negated).ToString().c_str(),
              sdd.ModelCount(negated).ToString().c_str());

  std::printf("\n== Knowledge compilation map picks the language ==\n");
  const kc::Language lang = kc::CheapestLanguageFor(
      {kc::Query::kModelCount, kc::Query::kEquivalence});
  std::printf("cheapest language for {CT, EQ}: %s\n", kc::ToString(lang).c_str());

  std::printf("\n== Complexity-ladder solvers (Fig 3) ==\n");
  std::printf("SAT: %d  MAJSAT: %d  E-MAJSAT over {A,K}: %d  MAJMAJSAT: %d\n",
              CircuitSolvers::DecideSat(constraint),
              CircuitSolvers::DecideMajSat(constraint),
              CircuitSolvers::DecideEMajSat(constraint, {0, 1}),
              CircuitSolvers::DecideMajMajSat(constraint, {0, 1}));
  return 0;
}
