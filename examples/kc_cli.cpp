// kc_cli: a miniature knowledge compiler in the spirit of c2d / the SDD
// library's command-line tools. Reads a DIMACS CNF, compiles it to the
// requested tractable language, reports statistics and counts, and can
// write circuit/vtree files and draw uniform samples.
//
// Usage:
//   kc_cli FILE.cnf [--target=ddnnf|sdd|obdd]
//          [--vtree=balanced|right|random|minfill]
//          [--force-order] [--minimize=N] [--samples=N]
//          [--timeout-ms=N] [--max-nodes=N]
//          [--write-nnf=OUT] [--write-sdd=OUT] [--write-vtree=OUT]
//          [--save-circuit=OUT.tbc]
//          [--wmc[=W]] [--stats[=json]]
//   kc_cli --load-circuit=STORE.tbc [--wmc[=W]] [--samples=N]
//          [--stats[=json]]
//
// --save-circuit persists the compiled Decision-DNNF (with the source CNF
// and exact model count) in the memory-mapped `.tbc` store format;
// --load-circuit mmaps such a store and answers queries with no compile
// and no deserialization pass (DESIGN.md "Persistent circuit store").
// Loaded queries are bit-identical to the saving process's: `c wmc_hex:`
// prints the WMC as a locale-independent hexfloat for exact cross-process
// comparison.
//
// With --timeout-ms/--max-nodes the compilation runs under a resource
// guard; if the budget is exhausted the tool prints the typed refusal and
// exits with code 3 (distinct from usage errors and bad input).
//
// Exit codes (unified across kc_cli / tbc_lint / tbc_certify, see the
// README table): 0 = ok, 1 = usage or input/IO error, 2 = circuit store
// rejected (failed validation: corrupt, truncated, or foreign bytes),
// 3 = typed resource refusal, 4 = certificate rejected by the checker.
//
// --wmc runs an exact weighted model count after compilation (every
// literal weighted W, default 1.0) and reports the log-space rescue
// counter. --stats dumps the observability registry (counters, peak-memory
// gauges, timing histograms, trace spans) as text; --stats=json emits the
// machine-readable schema pinned by tools/stats_schema.json.
//
// --certify verifies the compilation in-process through the independent
// certificate checker (src/certify/) and exits 4 if the certificate is
// rejected; --certify-out=OUT additionally writes the certificate text for
// offline checking with tbc_certify. When the library was built without
// TBC_CERTIFY_TRACE, certificates carry no derivation trace and the
// checker falls back to its (slower) semantic entailment proof.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/structure/forecast.h"
#include "base/guard.h"
#include "base/observability.h"
#include "base/strings.h"
#include "base/timer.h"
#include "certify/certificate.h"
#include "certify/checker.h"
#include "certify/emit.h"
#include "compiler/ddnnf_compiler.h"
#include "compiler/model_counter.h"
#include "nnf/io.h"
#include "nnf/queries.h"
#include "obdd/obdd.h"
#include "obdd/ordering.h"
#include "sdd/compile.h"
#include "sdd/io.h"
#include "sdd/minimize.h"
#include "sdd/sdd.h"
#include "store/store.h"
#include "vtree/vtree.h"

namespace {

std::string ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return "";
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  return static_cast<bool>(out);
}

const char* Arg(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool Flag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  // Piping output into a closed reader (e.g. `kc_cli ... | head`) must
  // surface as a short write, not a SIGPIPE abort.
  std::signal(SIGPIPE, SIG_IGN);
  using namespace tbc;
  if (argc < 2) {
    std::printf(
        "usage: kc_cli FILE.cnf [--target=ddnnf|sdd|obdd]\n"
        "       kc_cli --load-circuit=STORE.tbc [--wmc[=W]] [--samples=N]\n"
        "              [--vtree=balanced|right|random|minfill] [--force-order]\n"
        "              [--minimize=N] [--minimize-recompile=N]\n"
        "              [--sdd-minimize=off|auto|aggressive]\n"
        "              [--sdd-minimize-threshold=R] [--samples=N]\n"
        "              [--timeout-ms=N] [--max-nodes=N]\n"
        "              [--write-nnf=OUT] [--write-sdd=OUT] [--write-vtree=OUT]\n"
        "              [--write-nnf=OUT] [--write-sdd=OUT] [--write-vtree=OUT]\n"
        "              [--save-circuit=OUT.tbc] [--wmc[=W]] [--stats[=json]]\n"
        "              [--certify] [--certify-out=OUT]\n");
    return 1;
  }

  // Shared by compile and load modes: uniform literal weight for --wmc.
  auto parse_wmc_weight = [&](double* lit_weight) -> bool {
    *lit_weight = 1.0;
    if (const char* ws = Arg(argc, argv, "--wmc")) {
      if (!ParseDouble(ws, lit_weight)) {
        std::fprintf(stderr, "kc_cli: --wmc needs a number, got '%s'\n", ws);
        return false;
      }
    }
    return true;
  };
  auto dump_stats = [&]() -> int {
    if (const char* mode = Arg(argc, argv, "--stats")) {
      if (std::strcmp(mode, "json") != 0) {
        std::fprintf(stderr, "kc_cli: unknown stats mode '%s'\n", mode);
        return 1;
      }
      std::fputs(Observability::Global().RenderJson().c_str(), stdout);
    } else if (Flag(argc, argv, "--stats")) {
      std::fputs(Observability::Global().RenderText().c_str(), stdout);
    }
    return 0;
  };

  // Load mode: serve queries straight off a mapped circuit store — no CNF
  // parse, no compile, O(pages touched) load.
  if (std::strncmp(argv[1], "--load-circuit=", 15) == 0) {
    const char* store_path = argv[1] + 15;
    Timer load_timer;
    auto loaded = LoadCircuitStore(store_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "kc_cli: %s\n", loaded.status().message().c_str());
      // 2 = store failed validation (corrupt/truncated/foreign bytes);
      // 1 = could not read the file at all.
      return loaded.error_code() == StatusCode::kInvalidInput ? 2 : 1;
    }
    NnfManager& mgr = *loaded->mgr;
    const NnfId root = loaded->root;
    const size_t num_vars = mgr.num_vars();
    std::printf("c loaded circuit store %s in %.2f ms (mmap, zero-copy)\n",
                store_path, load_timer.Millis());
    std::printf("c circuit: %zu edges, %zu nodes, %zu vars\n",
                mgr.CircuitSize(root), mgr.NumNodesBelow(root), num_vars);
    if (!loaded->store->cnf_text().empty()) {
      std::printf("c embedded cnf: %zu bytes\n",
                  loaded->store->cnf_text().size());
    }
    std::printf("s %s\n",
                IsSatDnnf(mgr, root) ? "SATISFIABLE" : "UNSATISFIABLE");
    const BigUint models = loaded->store->has_model_count()
                               ? loaded->store->model_count()
                               : ModelCount(mgr, root, num_vars);
    std::printf("c models: %s\n", models.ToString().c_str());
    if (Flag(argc, argv, "--wmc") || Arg(argc, argv, "--wmc") != nullptr) {
      double lit_weight = 1.0;
      if (!parse_wmc_weight(&lit_weight)) return 1;
      WeightMap weights(num_vars);
      for (Var v = 0; v < num_vars; ++v) {
        weights.Set(Pos(v), lit_weight);
        weights.Set(Neg(v), lit_weight);
      }
      const double wmc = Wmc(mgr, root, weights);
      std::printf("c wmc: %.12g\n", wmc);
      std::printf("c wmc_hex: %s\n", FormatDoubleHex(wmc).c_str());
    }
    const char* samples_arg = Arg(argc, argv, "--samples");
    const size_t samples =
        samples_arg != nullptr ? std::strtoull(samples_arg, nullptr, 10) : 0;
    Rng rng(2026);
    for (size_t i = 0; i < samples && IsSatDnnf(mgr, root); ++i) {
      const Assignment x = SampleModelDnnf(mgr, root, num_vars, rng);
      std::printf("v");
      for (Var v = 0; v < num_vars; ++v) {
        std::printf(" %d", Lit(v, x[v]).ToDimacs());
      }
      std::printf(" 0\n");
    }
    return dump_stats();
  }

  const std::string text = ReadFile(argv[1]);
  if (text.empty()) {
    std::fprintf(stderr, "kc_cli: cannot read %s\n", argv[1]);
    return 1;
  }
  auto parsed = Cnf::ParseDimacs(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "kc_cli: %s\n", parsed.status().message().c_str());
    return 1;
  }
  const Cnf cnf = std::move(parsed).value();
  std::printf("c input: %zu vars, %zu clauses\n", cnf.num_vars(),
              cnf.num_clauses());

  const char* target_arg = Arg(argc, argv, "--target");
  const std::string target = target_arg != nullptr ? target_arg : "ddnnf";
  if (Arg(argc, argv, "--save-circuit") != nullptr && target != "ddnnf") {
    std::fprintf(stderr,
                 "kc_cli: --save-circuit is only supported for "
                 "--target=ddnnf\n");
    return 1;
  }
  const char* samples_arg = Arg(argc, argv, "--samples");
  const size_t samples = samples_arg != nullptr ? std::strtoull(samples_arg, nullptr, 10) : 0;

  std::vector<Var> order = Flag(argc, argv, "--force-order")
                               ? ForceOrder(cnf, 20)
                               : Vtree::IdentityOrder(cnf.num_vars());

  Budget budget;
  if (const char* t = Arg(argc, argv, "--timeout-ms")) {
    if (!ParseDouble(t, &budget.timeout_ms) || budget.timeout_ms < 0.0) {
      std::fprintf(stderr, "kc_cli: --timeout-ms needs a number, got '%s'\n", t);
      return 1;
    }
  }
  if (const char* n = Arg(argc, argv, "--max-nodes")) {
    if (!ParseUint64(n, &budget.max_nodes)) {
      std::fprintf(stderr, "kc_cli: --max-nodes needs an integer, got '%s'\n", n);
      return 1;
    }
  }
  // Size-triggered in-place SDD minimization: set the process-wide default
  // so every manager the run creates (direct compiles, portfolio arms)
  // picks the policy up at construction.
  if (const char* m = Arg(argc, argv, "--sdd-minimize")) {
    SddMinimizeMode mode;
    if (std::strcmp(m, "off") == 0) {
      mode = SddMinimizeMode::kOff;
    } else if (std::strcmp(m, "auto") == 0) {
      mode = SddMinimizeMode::kAuto;
    } else if (std::strcmp(m, "aggressive") == 0) {
      mode = SddMinimizeMode::kAggressive;
    } else {
      std::fprintf(stderr,
                   "kc_cli: --sdd-minimize must be off|auto|aggressive, "
                   "got '%s'\n",
                   m);
      return 1;
    }
    SddAutoMinimizeOptions opts = SddAutoMinimizeOptions::ForMode(mode);
    if (const char* t = Arg(argc, argv, "--sdd-minimize-threshold")) {
      if (!ParseDouble(t, &opts.growth_ratio) || opts.growth_ratio < 1.0) {
        std::fprintf(stderr,
                     "kc_cli: --sdd-minimize-threshold needs a ratio >= 1, "
                     "got '%s'\n",
                     t);
        return 1;
      }
    }
    SddManager::SetDefaultAutoMinimize(opts);
  } else if (Arg(argc, argv, "--sdd-minimize-threshold") != nullptr) {
    std::fprintf(stderr,
                 "kc_cli: --sdd-minimize-threshold requires --sdd-minimize\n");
    return 1;
  }

  const bool governed = budget.timeout_ms > 0.0 || budget.max_nodes > 0;
  Guard guard(budget);
  // Typed refusal (deadline/budget): report and exit 3 so scripts can tell
  // "ran out of resources" from "bad input / bad usage" (1).
  auto refuse = [](const Status& s) -> int {
    std::fprintf(stderr, "kc_cli: refused [%s]: %s\n", StatusCodeName(s.code()),
                 s.message().c_str());
    return 3;
  };

  const char* certify_out = Arg(argc, argv, "--certify-out");
  const bool certifying =
      Flag(argc, argv, "--certify") || certify_out != nullptr;
  // Writes and/or checks a freshly built certificate; returns 0, or 4 when
  // the checker rejects it (distinct from usage/input/refusal codes).
  auto finish_cert = [&](const Certificate& cert) -> int {
    const std::string cert_text = WriteCertificate(cert);
    if (certify_out != nullptr) {
      WriteFile(certify_out, cert_text);
      std::printf("c wrote certificate %s\n", certify_out);
    }
    if (Flag(argc, argv, "--certify")) {
      // Check what would be written, not the in-memory struct: the text
      // round-trip is part of what is being verified.
      auto reparsed = ParseCertificate(cert_text);
      if (!reparsed.ok()) {
        std::fprintf(stderr, "kc_cli: certificate does not reparse: %s\n",
                     reparsed.status().message().c_str());
        return 4;
      }
      const CertifyResult result = CheckCertificate(*reparsed);
      if (!result.ok()) {
        std::fputs(result.report.ToText("certificate").c_str(), stderr);
        return 4;
      }
      std::printf("c certificate: verified (%s, %s models)\n",
                  CertificateKindName(cert.kind),
                  result.certified_count.ToString().c_str());
    }
    return 0;
  };

  Timer timer;
  if (target == "ddnnf") {
    NnfManager mgr;
    DdnnfCompiler compiler;
#if TBC_CERTIFY_TRACE_ON
    DdnnfTrace trace;
    if (certifying) compiler.set_trace(&trace);
#endif
    NnfId root = kInvalidNnf;
    if (governed) {
      auto compiled = compiler.CompileBounded(cnf, mgr, guard);
      if (!compiled.ok()) return refuse(compiled.status());
      root = *compiled;
    } else {
      root = compiler.Compile(cnf, mgr);
    }
    std::printf("c compiled Decision-DNNF: %zu edges, %zu nodes in %.2f ms\n",
                mgr.CircuitSize(root), mgr.NumNodesBelow(root), timer.Millis());
    std::printf("c decisions: %llu, cache hits: %llu\n",
                static_cast<unsigned long long>(compiler.stats().decisions),
                static_cast<unsigned long long>(compiler.stats().cache_hits));
    std::printf("s %s\n", IsSatDnnf(mgr, root) ? "SATISFIABLE" : "UNSATISFIABLE");
    std::printf("c models: %s\n",
                ModelCount(mgr, root, cnf.num_vars()).ToString().c_str());
    if (certifying) {
      const DdnnfTrace* tp = nullptr;
#if TBC_CERTIFY_TRACE_ON
      tp = &trace;
#endif
      const int rc = finish_cert(BuildDdnnfCertificate(
          cnf, mgr, root, tp, ModelCount(mgr, root, cnf.num_vars())));
      if (rc != 0) return rc;
    }
    if (const char* out = Arg(argc, argv, "--write-nnf")) {
      WriteFile(out, WriteNnf(mgr, root, cnf.num_vars()));
      std::printf("c wrote %s\n", out);
    }
    if (const char* out = Arg(argc, argv, "--save-circuit")) {
      const BigUint count = ModelCount(mgr, root, cnf.num_vars());
      StoreWriteOptions wopts;
      wopts.cnf_text = text;
      wopts.model_count = &count;
      wopts.num_vars = cnf.num_vars();
      const Status st = WriteCircuitStore(mgr, root, out, wopts);
      if (!st.ok()) {
        std::fprintf(stderr, "kc_cli: %s\n", st.message().c_str());
        return 1;
      }
      std::printf("c wrote circuit store %s\n", out);
    }
    if (Flag(argc, argv, "--wmc") || Arg(argc, argv, "--wmc") != nullptr) {
      // Circuit-evaluated WMC in exact hexfloat: the cross-process anchor
      // a --load-circuit run of the saved store reproduces bit-identically
      // (the store's id compaction preserves evaluation order).
      double lit_weight = 1.0;
      if (!parse_wmc_weight(&lit_weight)) return 1;
      WeightMap weights(cnf.num_vars());
      for (Var v = 0; v < cnf.num_vars(); ++v) {
        weights.Set(Pos(v), lit_weight);
        weights.Set(Neg(v), lit_weight);
      }
      std::printf("c wmc_hex: %s\n",
                  FormatDoubleHex(Wmc(mgr, root, weights)).c_str());
    }
    Rng rng(2026);
    for (size_t i = 0; i < samples && IsSatDnnf(mgr, root); ++i) {
      const Assignment x = SampleModelDnnf(mgr, root, cnf.num_vars(), rng);
      std::printf("v");
      for (Var v = 0; v < cnf.num_vars(); ++v) {
        std::printf(" %d", Lit(v, x[v]).ToDimacs());
      }
      std::printf(" 0\n");
    }
  } else if (target == "sdd") {
    const char* shape_arg = Arg(argc, argv, "--vtree");
    const std::string shape = shape_arg != nullptr ? shape_arg : "balanced";
    Rng rng(1);
    Vtree vt;
    if (shape == "minfill") {
      // Structure-driven vtree: run the static analysis pass and decompose
      // along the best elimination order found (min-fill on CNFs this
      // size). The compile cost then tracks the reported width instead of
      // the variable numbering.
      const StructureReport report = AnalyzeCnfStructure(cnf);
      std::printf("c structure: width <= %u (%s), lower bound %u\n",
                  report.best_width(),
                  report.candidates.empty()
                      ? "none"
                      : ElimHeuristicName(report.best_candidate().heuristic),
                  report.width_lower_bound);
      vt = report.candidates.empty() ? Vtree::Balanced(order)
                                     : VtreeForCnf(report);
    } else {
      vt = shape == "right"    ? Vtree::RightLinear(order)
           : shape == "random" ? Vtree::Random(order, rng)
                               : Vtree::Balanced(order);
    }
    const char* min_inplace = Arg(argc, argv, "--minimize");
    const char* min_recompile = Arg(argc, argv, "--minimize-recompile");
    if (min_inplace != nullptr || min_recompile != nullptr) {
      // --minimize searches with in-place edits on the live SDD;
      // --minimize-recompile keeps the recompilation-based search around
      // as the cross-check oracle.
      const char* iters = min_inplace != nullptr ? min_inplace : min_recompile;
      const size_t iter_budget = std::strtoull(iters, nullptr, 10);
      const MinimizeResult r =
          min_inplace != nullptr
              ? MinimizeVtree(cnf, vt, iter_budget, 7, guard)
              : MinimizeVtreeByRecompile(cnf, vt, iter_budget, 7, guard);
      if (r.interrupted && r.size == 0) return refuse(r.interrupt_status);
      if (r.interrupted) {
        std::printf("c vtree search stopped early [%s]\n",
                    StatusCodeName(r.interrupt_status.code()));
      }
      std::printf("c vtree search (%s): size %zu -> %zu in %zu iterations\n",
                  min_inplace != nullptr ? "in-place" : "recompile",
                  r.initial_size, r.size, r.iterations);
      vt = r.vtree;
    }
    SddManager mgr(vt);
    SddId f = kInvalidSdd;
    if (governed) {
      auto compiled = CompileCnfBounded(mgr, cnf, guard);
      if (!compiled.ok()) return refuse(compiled.status());
      f = *compiled;
    } else {
      f = CompileCnf(mgr, cnf);
    }
    if (mgr.auto_minimize_fires() > 0) {
      std::printf("c auto-minimize: fired %zu times (%zu nodes live)\n",
                  mgr.auto_minimize_fires(), mgr.live_node_count());
    }
    std::printf("c compiled SDD: %zu elements, %zu decision nodes in %.2f ms\n",
                mgr.Size(f), mgr.NumDecisionNodes(f), timer.Millis());
    std::printf("s %s\n", f != mgr.False() ? "SATISFIABLE" : "UNSATISFIABLE");
    std::printf("c models: %s\n", mgr.ModelCount(f).ToString().c_str());
    if (certifying) {
      NnfManager scratch;
      const NnfId nroot = mgr.ToNnf(f, scratch);
      const int rc = finish_cert(BuildSddCertificate(
          cnf, mgr, f, ModelCount(scratch, nroot, cnf.num_vars())));
      if (rc != 0) return rc;
    }
    if (const char* out = Arg(argc, argv, "--write-sdd")) {
      WriteFile(out, WriteSdd(mgr, f));
      std::printf("c wrote %s\n", out);
    }
    if (const char* out = Arg(argc, argv, "--write-vtree")) {
      WriteFile(out, mgr.vtree().ToFileString());
      std::printf("c wrote %s\n", out);
    }
  } else if (target == "obdd") {
    if (governed) {
      std::printf("c warning: --timeout-ms/--max-nodes are not yet wired "
                  "into the OBDD compiler; running unbounded\n");
    }
    ObddManager mgr(order);
    ObddId f = 0;
#if TBC_CERTIFY_TRACE_ON
    ObddTrace obdd_trace;
    f = certifying ? mgr.CompileCnfTraced(cnf, &obdd_trace)
                   : mgr.CompileCnf(cnf);
#else
    f = mgr.CompileCnf(cnf);
#endif
    std::printf("c compiled OBDD: %zu nodes in %.2f ms\n", mgr.Size(f),
                timer.Millis());
    std::printf("s %s\n", f != mgr.False() ? "SATISFIABLE" : "UNSATISFIABLE");
    std::printf("c models: %s\n", mgr.ModelCount(f).ToString().c_str());
    if (certifying) {
      NnfManager scratch;
      const NnfId nroot = mgr.ToNnf(f, scratch);
      const BigUint claimed = ModelCount(scratch, nroot, cnf.num_vars());
#if TBC_CERTIFY_TRACE_ON
      const int rc =
          finish_cert(BuildObddCertificate(cnf, std::move(obdd_trace), claimed));
#else
      // No apply trace available: fall back to a semantic (trace-free)
      // certificate over the Decision-DNNF export.
      const int rc = finish_cert(
          BuildDdnnfCertificate(cnf, scratch, nroot, nullptr, claimed));
#endif
      if (rc != 0) return rc;
    }
    if (const char* out = Arg(argc, argv, "--write-nnf")) {
      NnfManager nnf;
      WriteFile(out, WriteNnf(nnf, mgr.ToNnf(f, nnf), cnf.num_vars()));
      std::printf("c wrote %s\n", out);
    }
  } else {
    std::fprintf(stderr, "kc_cli: unknown target %s\n", target.c_str());
    return 1;
  }

  if (Flag(argc, argv, "--wmc") || Arg(argc, argv, "--wmc") != nullptr) {
    double lit_weight = 1.0;
    if (!parse_wmc_weight(&lit_weight)) return 1;
    WeightMap weights(cnf.num_vars());
    for (Var v = 0; v < cnf.num_vars(); ++v) {
      weights.Set(Pos(v), lit_weight);
      weights.Set(Neg(v), lit_weight);
    }
    ModelCounter counter;
    auto wmc = counter.WmcBounded(cnf, weights, guard);
    if (!wmc.ok()) return refuse(wmc.status());
    std::printf("c wmc: %.12g (decisions %llu, cache hits %llu, "
                "underflow rescues %llu)\n",
                *wmc,
                static_cast<unsigned long long>(counter.stats().decisions),
                static_cast<unsigned long long>(counter.stats().cache_hits),
                static_cast<unsigned long long>(
                    counter.stats().underflow_rescues));
  }

  // Stats last, so the dump covers everything the invocation did.
  return dump_stats();
}
