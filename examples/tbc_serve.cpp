// tbc_serve: the knowledge-compilation service daemon (ROADMAP
// "KC-as-a-service", DESIGN.md "Serving layer"). Listens on a unix or TCP
// socket, compiles each distinct CNF once (content-hash keyed), and
// answers compile/count/WMC/MAR/MPE queries against the shared immutable
// artifact — the paper's "compile once, query unboundedly" economics as a
// long-lived process.
//
// Usage:
//   tbc_serve [options]
//     --listen=ADDR        unix:PATH, tcp:HOST:PORT or :PORT (port 0 =
//                          ephemeral; default unix:/tmp/tbc_serve.sock)
//     --workers=N          max concurrently executing requests (default 4)
//     --queue=N            admitted-but-waiting cap; beyond = typed
//                          kOverloaded shed (default 16)
//     --max-connections=N  open-connection cap (default 64)
//     --cache=N            compiled artifacts kept, LRU (default 8)
//     --store-dir=DIR      persistent circuit store: spill each compiled
//                          artifact to DIR/<key>.tbc and warm-start from
//                          DIR on startup, so a restart answers previously
//                          compiled CNFs from mmap with zero compiles
//                          (DIR must exist)
//     --default-timeout-ms=N / --max-timeout-ms=N
//                          per-request budget default and ceiling
//     --max-width=N        forecast admission control: refuse compile
//                          requests whose CNF's predicted induced width
//                          exceeds N with typed kRefusedByForecast before
//                          any compile budget is consumed (0 = off)
//     --idle-timeout-ms=N  close connections idle this long (0 = keep)
//     --port-file=PATH     write the bound TCP port (scripts + tests use
//                          this with :0 ephemeral listening)
//     --fault-seed=N       arm the deterministic fault plan (TBC_FAULTS
//                          builds only; see src/base/fault.h)
//     --fault-prob=P       per-hit fire probability for every point under
//                          --fault-seed (default 0.02)
//     --sdd-minimize=MODE  off|auto|aggressive: process-wide size-triggered
//                          in-place SDD minimization policy, picked up by
//                          every SDD manager built in this process
//     --sdd-minimize-threshold=R
//                          auto-minimize growth ratio (>= 1; overrides the
//                          mode default; requires --sdd-minimize)
//     --stats[=json]       dump the observability registry on exit
//
// SIGTERM / SIGINT drain gracefully: stop accepting, refuse new requests
// with typed kUnavailable, let in-flight requests finish, then exit 0.
//
// Exit codes: 0 = clean shutdown, 1 = usage or bind/IO error.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "base/fault.h"
#include "base/observability.h"
#include "base/strings.h"
#include "sdd/sdd.h"
#include "serve/server.h"

namespace {

const char* Arg(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool Flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

bool ParseSizeFlag(int argc, char** argv, const char* name, size_t* out) {
  const char* v = Arg(argc, argv, name);
  if (v == nullptr) return true;
  uint64_t n = 0;
  if (!tbc::ParseUint64(v, &n)) {
    std::fprintf(stderr, "tbc_serve: %s needs a number, got '%s'\n", name, v);
    return false;
  }
  *out = static_cast<size_t>(n);
  return true;
}

bool ParseDoubleFlag(int argc, char** argv, const char* name, double* out) {
  const char* v = Arg(argc, argv, name);
  if (v == nullptr) return true;
  if (!tbc::ParseDouble(v, out) || *out < 0.0) {
    std::fprintf(stderr, "tbc_serve: %s needs a number, got '%s'\n", name, v);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tbc;
  using namespace tbc::serve;
  std::signal(SIGPIPE, SIG_IGN);  // broken pipes are typed errors, not death

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: tbc_serve [--listen=unix:PATH|tcp:HOST:PORT|:PORT]\n"
          "                 [--workers=N] [--queue=N] [--max-connections=N]\n"
          "                 [--cache=N] [--store-dir=DIR]\n"
          "                 [--default-timeout-ms=N]\n"
          "                 [--max-timeout-ms=N] [--idle-timeout-ms=N]\n"
          "                 [--max-width=N]\n"
          "                 [--port-file=PATH] [--fault-seed=N]\n"
          "                 [--fault-prob=P]\n"
          "                 [--sdd-minimize=off|auto|aggressive]\n"
          "                 [--sdd-minimize-threshold=R] [--stats[=json]]\n");
      return 0;
    }
  }

  ServerOptions opts;
  const char* listen_arg = Arg(argc, argv, "--listen");
  auto addr = ParseAddress(listen_arg != nullptr ? listen_arg
                                                 : "unix:/tmp/tbc_serve.sock");
  if (!addr.ok()) {
    std::fprintf(stderr, "tbc_serve: %s\n", addr.status().message().c_str());
    return 1;
  }
  opts.address = *addr;
  size_t idle_ms = 0;
  if (!ParseSizeFlag(argc, argv, "--workers", &opts.num_workers) ||
      !ParseSizeFlag(argc, argv, "--queue", &opts.max_queue) ||
      !ParseSizeFlag(argc, argv, "--max-connections", &opts.max_connections) ||
      !ParseSizeFlag(argc, argv, "--cache", &opts.cache_capacity) ||
      !ParseSizeFlag(argc, argv, "--idle-timeout-ms", &idle_ms) ||
      !ParseDoubleFlag(argc, argv, "--default-timeout-ms",
                       &opts.default_timeout_ms) ||
      !ParseDoubleFlag(argc, argv, "--max-timeout-ms", &opts.max_timeout_ms)) {
    return 1;
  }
  opts.idle_timeout_ms = static_cast<int>(idle_ms);
  if (const char* dir = Arg(argc, argv, "--store-dir")) opts.store_dir = dir;
  size_t max_width = 0;
  if (!ParseSizeFlag(argc, argv, "--max-width", &max_width)) return 1;
  opts.max_forecast_width = static_cast<uint32_t>(max_width);
  if (opts.num_workers == 0) {
    std::fprintf(stderr, "tbc_serve: --workers must be >= 1\n");
    return 1;
  }

  // Process-wide SDD auto-minimize policy: every manager built while
  // serving (any in-process SDD compile path) copies it at construction.
  if (const char* m = Arg(argc, argv, "--sdd-minimize")) {
    SddMinimizeMode mode;
    if (std::strcmp(m, "off") == 0) {
      mode = SddMinimizeMode::kOff;
    } else if (std::strcmp(m, "auto") == 0) {
      mode = SddMinimizeMode::kAuto;
    } else if (std::strcmp(m, "aggressive") == 0) {
      mode = SddMinimizeMode::kAggressive;
    } else {
      std::fprintf(stderr,
                   "tbc_serve: --sdd-minimize must be off|auto|aggressive, "
                   "got '%s'\n",
                   m);
      return 1;
    }
    SddAutoMinimizeOptions sdd_opts = SddAutoMinimizeOptions::ForMode(mode);
    if (const char* t = Arg(argc, argv, "--sdd-minimize-threshold")) {
      if (!ParseDouble(t, &sdd_opts.growth_ratio) ||
          sdd_opts.growth_ratio < 1.0) {
        std::fprintf(stderr,
                     "tbc_serve: --sdd-minimize-threshold needs a ratio >= 1, "
                     "got '%s'\n",
                     t);
        return 1;
      }
    }
    SddManager::SetDefaultAutoMinimize(sdd_opts);
  } else if (Arg(argc, argv, "--sdd-minimize-threshold") != nullptr) {
    std::fprintf(stderr,
                 "tbc_serve: --sdd-minimize-threshold requires "
                 "--sdd-minimize\n");
    return 1;
  }

  // Deterministic fault plan for soak/chaos runs from the command line.
  // In a TBC_FAULTS=OFF build the plan is inert (every point compiles to
  // `false`), so arming it is a no-op rather than an error.
  std::unique_ptr<fault::FaultPlan> fault_plan;
  std::unique_ptr<fault::ScopedFaultPlan> plan_scope;
  if (const char* seed_arg = Arg(argc, argv, "--fault-seed")) {
    uint64_t seed = 0;
    if (!ParseUint64(seed_arg, &seed)) {
      std::fprintf(stderr, "tbc_serve: --fault-seed needs a number\n");
      return 1;
    }
    double prob = 0.02;
    if (!ParseDoubleFlag(argc, argv, "--fault-prob", &prob)) return 1;
    fault_plan = std::make_unique<fault::FaultPlan>(seed, prob);
    plan_scope = std::make_unique<fault::ScopedFaultPlan>(fault_plan.get());
  }

  auto server = Server::Start(opts);
  if (!server.ok()) {
    std::fprintf(stderr, "tbc_serve: %s\n",
                 server.status().message().c_str());
    return 1;
  }

  if (opts.address.is_unix()) {
    std::printf("tbc_serve: listening on unix:%s (%zu workers)\n",
                opts.address.uds_path.c_str(), opts.num_workers);
  } else {
    std::printf("tbc_serve: listening on tcp:127.0.0.1:%d (%zu workers)\n",
                (*server)->port(), opts.num_workers);
  }
  std::fflush(stdout);
  if (const char* port_file = Arg(argc, argv, "--port-file")) {
    std::FILE* f = std::fopen(port_file, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "tbc_serve: cannot write %s\n", port_file);
      return 1;
    }
    std::fprintf(f, "%d\n", (*server)->port());
    std::fclose(f);
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("tbc_serve: draining (in-flight finish, new refused)\n");
  std::fflush(stdout);
  (*server)->Shutdown();

  if (const char* mode = Arg(argc, argv, "--stats")) {
    if (std::strcmp(mode, "json") != 0) {
      std::fprintf(stderr, "tbc_serve: unknown stats mode '%s'\n", mode);
      return 1;
    }
    std::fputs(Observability::Global().RenderJson().c_str(), stdout);
  } else if (Flag(argc, argv, "--stats")) {
    std::fputs(Observability::Global().RenderText().c_str(), stdout);
  }
  std::printf("tbc_serve: clean shutdown\n");
  return 0;
}
