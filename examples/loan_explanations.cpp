// Role 3 walkthrough (paper §5, Figs 23/27): reasoning about a machine
// learning system. A random forest loan classifier is compiled into an
// OBDD that captures its exact input-output behavior; the circuit then
// yields sufficient reasons, the complete reason (with counterfactuals),
// bias verdicts, robustness, and a formally verified monotonicity claim.

#include <cstdio>

#include "vtree/vtree.h"
#include "xai/decision_tree.h"
#include "xai/explain.h"
#include "xai/robustness.h"

int main() {
  using namespace tbc;
  // Features: income_high=0, employed=1, prior_default=2, collateral=3,
  // urban_address=4 (protected).
  const char* names[5] = {"income_high", "employed", "prior_default",
                          "collateral", "urban_address"};
  const std::vector<Var> protected_features = {4};

  // A loan policy as a decision-tree ensemble with majority voting.
  DecisionTree t1 = DecisionTree::Test(
      0, DecisionTree::Test(3, DecisionTree::Leaf(false), DecisionTree::Leaf(true)),
      DecisionTree::Test(2, DecisionTree::Leaf(true), DecisionTree::Leaf(false)));
  DecisionTree t2 = DecisionTree::Test(
      1, DecisionTree::Test(4, DecisionTree::Leaf(false), DecisionTree::Leaf(true)),
      DecisionTree::Test(2, DecisionTree::Leaf(true), DecisionTree::Leaf(false)));
  DecisionTree t3 = DecisionTree::Test(
      2, DecisionTree::Test(0, DecisionTree::Leaf(false), DecisionTree::Leaf(true)),
      DecisionTree::Leaf(false));
  RandomForest forest({t1, t2, t3});

  ObddManager mgr(Vtree::IdentityOrder(5));
  const ObddId f = forest.CompileToObdd(mgr);
  std::printf("forest compiled to OBDD with %zu nodes\n\n", mgr.Size(f));

  // Maya's application: good income, employed, no defaults, no collateral,
  // rural address.
  const Assignment maya = {true, true, false, false, false};
  const bool decision = mgr.Evaluate(f, maya);
  std::printf("Maya's application -> %s\n", decision ? "APPROVED" : "DECLINED");

  std::printf("\nWhy? Sufficient reasons (PI-explanations):\n");
  for (const Term& reason : SufficientReasons(mgr, f, maya)) {
    std::printf("  {");
    for (Lit l : reason) {
      std::printf(" %s%s", l.positive() ? "" : "not ", names[l.var()]);
    }
    std::printf(" }\n");
  }

  NnfManager nnf;
  const NnfId reason = ReasonCircuit(mgr, f, maya, nnf);
  std::printf("\ncomplete-reason circuit: %zu edges (monotone)\n",
              nnf.CircuitSize(reason));
  std::printf("counterfactual: decision sticks even without 'employed'? %s\n",
              ReasonHoldsWithout(nnf, reason, maya, {1}) ? "yes" : "no");
  std::printf("counterfactual: ... even without 'income_high'? %s\n",
              ReasonHoldsWithout(nnf, reason, maya, {0}) ? "yes" : "no");

  std::printf("\nbias analysis (protected: urban_address):\n");
  std::printf("  decision on Maya biased: %s\n",
              IsDecisionBiased(mgr, f, maya, protected_features) ? "yes" : "no");
  std::printf("  classifier biased overall: %s\n",
              IsClassifierBiased(mgr, f, protected_features) ? "yes" : "no");

  std::printf("\nrobustness:\n");
  std::printf("  flips needed to reverse Maya's decision: %zu\n",
              DecisionRobustness(mgr, f, maya));
  const auto model = ModelRobustness(mgr, f);
  std::printf("  model robustness (avg over all 32 applications): %.3f\n",
              model.average);
  std::printf("  hardest instance needs %zu flips\n", model.maximum);

  std::printf("\nformal property checks:\n");
  std::printf("  monotone in income_high: %s\n",
              mgr.IsMonotoneIn(f, 0) ? "PROVED" : "refuted");
  std::printf("  monotone in prior_default: %s (more defaults never help)\n",
              mgr.IsMonotoneIn(mgr.Not(f), 2) ? "PROVED" : "refuted");
  return 0;
}
