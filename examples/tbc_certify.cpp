// tbc_certify: independent verification of compilation certificates.
// Reads certificate files (tbc-cert format, produced by kc_cli --certify-out
// or the certify emission API) and replays each one through the trusted
// checker core: structure, decomposability/ordering, determinism, both
// entailment directions between the embedded CNF and the emitted circuit,
// and a recomputed model count compared against the compiler's claim.
// Nothing from the compilers runs here — a certificate is evidence, not
// ground truth, until it survives this replay.
//
// Usage:
//   tbc_certify [options] FILE...
//     --format=text|json diagnostic rendering (default text)
//     --no-count         skip the certified model-count recomputation
//     --max-work=N       cap on replay steps + UP probes per file
//     --list-rules       print every certify rule id and exit
//     --stats            dump the observability registry to stderr
//
// Exit codes: 0 = every certificate verified, 1 = usage or I/O error,
// 2 = at least one certificate rejected.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/rules.h"
#include "base/observability.h"
#include "base/strings.h"
#include "certify/certificate.h"
#include "certify/checker.h"

namespace {

std::string ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return "";
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const char* Arg(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool Flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

void Usage() {
  std::printf(
      "usage: tbc_certify [options] FILE...\n"
      "  --format=text|json\n"
      "  --no-count         skip the certified model-count recomputation\n"
      "  --max-work=N       cap on replay steps + UP probes per file\n"
      "  --list-rules       print every certify rule id and exit\n"
      "  --stats            dump observability metrics to stderr\n"
      "exit: 0 verified, 1 usage/io error, 2 rejected\n");
}

// Only the certify.* slice of the registry: the lint rules are tbc_lint's
// business and listing them here would suggest this tool checks them.
void ListRules() {
  size_t count = 0;
  const tbc::RuleInfo* all = tbc::AllRules(&count);
  for (size_t i = 0; i < count; ++i) {
    if (std::strncmp(all[i].id, "certify.", 8) == 0) {
      std::printf("%-28s %s\n", all[i].id, all[i].summary);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Piping output into a closed reader (e.g. `tbc_certify ... | head`) must
  // surface as a short write, not a SIGPIPE abort.
  std::signal(SIGPIPE, SIG_IGN);
  using namespace tbc;

  if (Flag(argc, argv, "--list-rules")) {
    ListRules();
    return 0;
  }

  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) files.push_back(argv[i]);
  }
  if (files.empty()) {
    Usage();
    return 1;
  }

  const char* format = Arg(argc, argv, "--format");
  const bool json = format != nullptr && std::strcmp(format, "json") == 0;
  if (format != nullptr && !json && std::strcmp(format, "text") != 0) {
    std::fprintf(stderr, "tbc_certify: unknown --format=%s\n", format);
    return 1;
  }
  CertifyOptions options;
  options.check_count = !Flag(argc, argv, "--no-count");
  if (const char* cap = Arg(argc, argv, "--max-work")) {
    if (!ParseUint64(cap, &options.max_work)) {
      std::fprintf(stderr, "tbc_certify: bad --max-work=%s\n", cap);
      return 1;
    }
  }

  bool any_error = false;
  std::string json_out = "[";
  bool first_json = true;

  for (const char* path : files) {
    const std::string text = ReadFile(path);
    if (text.empty()) {
      std::fprintf(stderr, "tbc_certify: cannot read %s\n", path);
      return 1;
    }

    CertifyResult result;
    Result<Certificate> cert = ParseCertificate(text);
    if (!cert.ok()) {
      result.report.Add(Severity::kError, rules::kCertifyParse, 0, "",
                        cert.status().message());
    } else {
      result = CheckCertificate(*cert, options);
    }

    if (json) {
      if (!first_json) json_out += ",";
      json_out += result.report.ToJson(path);
      first_json = false;
    } else if (result.ok()) {
      if (result.count_certified) {
        std::printf("%s: verified (%s, %s models)\n", path,
                    CertificateKindName(cert->kind),
                    result.certified_count.ToString().c_str());
      } else {
        std::printf("%s: verified (%s)\n", path,
                    cert.ok() ? CertificateKindName(cert->kind) : "?");
      }
    } else {
      std::fputs(result.report.ToText(path).c_str(), stdout);
    }
    any_error = any_error || !result.ok();
  }

  if (json) std::printf("%s]\n", json_out.c_str());
  if (Flag(argc, argv, "--stats")) {
    std::fputs(Observability::Global().RenderText().c_str(), stderr);
  }
  return any_error ? 2 : 0;
}
