// tbc_client: command-line client for the tbc_serve daemon. Sends one
// request, retrying transparently on transport failures and load-shed
// refusals (retry-with-backoff), and propagates its deadline to the
// server so no one works past the caller's patience.
//
// Usage:
//   tbc_client --connect=ADDR --op=OP [FILE.cnf] [options]
//     --connect=ADDR     unix:PATH, tcp:HOST:PORT or :PORT (required)
//     --op=OP            ping | compile | count | wmc | mar | mpe | stats
//     FILE.cnf           DIMACS input ("-" = stdin; required for ops that
//                        take a CNF)
//     --weight=LIT:W     per-literal weight (repeatable; DIMACS literal)
//     --timeout-ms=N     server-side budget for this request
//     --max-nodes=N / --max-decisions=N   server-side compile caps
//     --deadline-ms=N    overall client deadline across retries
//                        (default 30000; 0 = none)
//     --retries=N        max attempts (default 4)
//
// Exit codes: 0 = answer received, 1 = usage/IO error or the server's
// typed kInvalidInput (the input is wrong; retrying cannot help),
// 3 = typed refusal (budget exhausted, overloaded, draining, deadline).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/result.h"
#include "base/strings.h"
#include "serve/client.h"

namespace {

const char* Arg(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: tbc_client --connect=ADDR --op=OP [FILE.cnf]\n"
      "                  [--weight=LIT:W]... [--timeout-ms=N]\n"
      "                  [--max-nodes=N] [--max-decisions=N]\n"
      "                  [--deadline-ms=N] [--retries=N]\n");
}

std::string ReadInput(const char* path) {
  if (std::strcmp(path, "-") == 0) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream in(path);
  if (!in) return "";
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tbc;
  using namespace tbc::serve;
  std::signal(SIGPIPE, SIG_IGN);  // `tbc_client ... | head` must not abort

  const char* connect_arg = Arg(argc, argv, "--connect");
  const char* op_arg = Arg(argc, argv, "--op");
  if (connect_arg == nullptr || op_arg == nullptr) {
    Usage();
    return 1;
  }
  auto addr = ParseAddress(connect_arg);
  if (!addr.ok()) {
    std::fprintf(stderr, "tbc_client: %s\n", addr.status().message().c_str());
    return 1;
  }

  Request req;
  if (!OpFromName(op_arg, &req.op)) {
    std::fprintf(stderr, "tbc_client: unknown op '%s'\n", op_arg);
    return 1;
  }

  // The CNF file is the only positional argument.
  const char* cnf_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-' || std::strcmp(argv[i], "-") == 0) {
      if (cnf_path != nullptr) {
        Usage();
        return 1;
      }
      cnf_path = argv[i];
    }
  }
  const bool needs_cnf = req.op != Op::kPing && req.op != Op::kStats;
  if (needs_cnf) {
    if (cnf_path == nullptr) {
      std::fprintf(stderr, "tbc_client: --op=%s needs a CNF file\n", op_arg);
      return 1;
    }
    req.cnf_text = ReadInput(cnf_path);
    if (req.cnf_text.empty()) {
      std::fprintf(stderr, "tbc_client: cannot read %s\n", cnf_path);
      return 1;
    }
  }

  if (const char* t = Arg(argc, argv, "--timeout-ms")) {
    if (!ParseDouble(t, &req.timeout_ms) || req.timeout_ms < 0.0) {
      std::fprintf(stderr, "tbc_client: bad --timeout-ms '%s'\n", t);
      return 1;
    }
  }
  if (const char* n = Arg(argc, argv, "--max-nodes")) {
    if (!ParseUint64(n, &req.max_nodes)) {
      std::fprintf(stderr, "tbc_client: bad --max-nodes '%s'\n", n);
      return 1;
    }
  }
  if (const char* n = Arg(argc, argv, "--max-decisions")) {
    if (!ParseUint64(n, &req.max_decisions)) {
      std::fprintf(stderr, "tbc_client: bad --max-decisions '%s'\n", n);
      return 1;
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--weight=", 9) != 0) continue;
    const char* spec = argv[i] + 9;
    const char* colon = std::strchr(spec, ':');
    double w = 0.0;
    long lit = 0;
    char* end = nullptr;
    if (colon != nullptr) lit = std::strtol(spec, &end, 10);
    if (colon == nullptr || end != colon || lit == 0 ||
        !ParseDouble(colon + 1, &w)) {
      std::fprintf(stderr, "tbc_client: bad --weight '%s' (want LIT:W)\n",
                   spec);
      return 1;
    }
    req.weights.emplace_back(static_cast<int>(lit), w);
  }

  ClientOptions copts;
  copts.address = *addr;
  if (const char* d = Arg(argc, argv, "--deadline-ms")) {
    if (!ParseDouble(d, &copts.deadline_ms) || copts.deadline_ms < 0.0) {
      std::fprintf(stderr, "tbc_client: bad --deadline-ms '%s'\n", d);
      return 1;
    }
  }
  if (const char* r = Arg(argc, argv, "--retries")) {
    uint64_t n = 0;
    if (!ParseUint64(r, &n) || n == 0 || n > 1000) {
      std::fprintf(stderr, "tbc_client: bad --retries '%s'\n", r);
      return 1;
    }
    copts.retry.max_attempts = static_cast<int>(n);
  }

  Client client(copts);
  auto result = client.Call(req);
  if (!result.ok()) {
    const Status& st = result.status();
    std::fprintf(stderr, "tbc_client: %s: %s\n", StatusCodeName(st.code()),
                 st.message().c_str());
    return IsRefusal(st.code()) ? 3 : 1;
  }
  const Response& resp = *result;
  if (!resp.ok()) {
    std::fprintf(stderr, "tbc_client: %s: %s\n", StatusCodeName(resp.status),
                 resp.message.c_str());
    return IsRefusal(resp.status) ? 3 : 1;
  }

  switch (req.op) {
    case Op::kPing:
      std::printf("pong\n");
      break;
    case Op::kStats:
      std::fputs(resp.stats_json.c_str(), stdout);
      break;
    case Op::kCompile:
      std::printf("artifact %s cache %s nodes %llu edges %llu models %s\n",
                  resp.artifact.c_str(), resp.cache_hit ? "hit" : "miss",
                  static_cast<unsigned long long>(resp.circuit_nodes),
                  static_cast<unsigned long long>(resp.circuit_edges),
                  resp.count.c_str());
      break;
    case Op::kCount:
      std::printf("%s\n", resp.count.c_str());
      break;
    case Op::kWmc:
      std::printf("%.17g\n", resp.wmc);
      break;
    case Op::kMar:
      for (const auto& [lit, wmc] : resp.marginals) {
        std::printf("%d %.17g\n", lit, wmc);
      }
      break;
    case Op::kMpe: {
      std::printf("weight %.17g\n", resp.mpe_weight);
      for (size_t i = 0; i < resp.mpe.size(); ++i) {
        std::printf("%d%c", resp.mpe[i],
                    i + 1 == resp.mpe.size() ? '\n' : ' ');
      }
      break;
    }
  }
  if (client.last_attempts() > 1) {
    std::fprintf(stderr, "tbc_client: succeeded after %d attempts\n",
                 client.last_attempts());
  }
  return 0;
}
