// tbc_lint: static verification of tractable-circuit files. Reads circuit
// artifacts (.nnf / .sdd / .psdd, plus OBDDs serialized as .nnf) and checks
// the invariant ladder the paper's queries rely on — well-formedness,
// decomposability, determinism, smoothness, ordering/reducedness, SDD
// structure/compression/trimming, PSDD normalization — without evaluating a
// single query. Violations are reported as stable rule ids with witnesses.
//
// Usage:
//   tbc_lint [options] FILE...
//     --lang=nnf|dnnf|ddnnf|sd-dnnf|dec-dnnf|obdd|sdd|psdd
//                        language to verify against (default: by extension;
//                        .nnf is checked as ddnnf, .sdd as sdd, .psdd as psdd)
//     --vtree=FILE       vtree the .sdd/.psdd files were written against
//                        (required for those languages)
//     --format=text|json diagnostic rendering (default text)
//     --no-sat           syntactic checks only: skip SAT-backed determinism
//                        and partition proofs
//     --max-sat-checks=N cap on solver calls per file (default 4096)
//     --list-rules       print every rule id and exit
//     --stats            dump the observability registry to stderr after
//                        linting (counters/gauges/histograms; stderr so the
//                        JSON diagnostic stream on stdout stays parseable)
//
// Exit codes: 0 = all files clean (warnings allowed), 1 = usage or I/O
// error, 2 = at least one error-severity violation.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/nnf_analyzer.h"
#include "analysis/psdd_analyzer.h"
#include "analysis/rules.h"
#include "analysis/sdd_analyzer.h"
#include "base/observability.h"
#include "base/strings.h"
#include "nnf/io.h"
#include "nnf/nnf.h"
#include "vtree/vtree.h"

namespace {

std::string ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return "";
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const char* Arg(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool Flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

void Usage() {
  std::printf(
      "usage: tbc_lint [options] FILE...\n"
      "  --lang=nnf|dnnf|ddnnf|sd-dnnf|dec-dnnf|obdd|sdd|psdd\n"
      "  --vtree=FILE       vtree for .sdd/.psdd files\n"
      "  --format=text|json\n"
      "  --no-sat           syntactic checks only\n"
      "  --max-sat-checks=N cap on solver calls per file (default 4096)\n"
      "  --list-rules       print every rule id and exit\n"
      "  --stats            dump observability metrics to stderr\n"
      "exit: 0 clean, 1 usage/io error, 2 violations\n");
}

// The declared variable count from a "nnf <nodes> <edges> <vars>" header,
// or 0 when absent (the analyzer then derives it from the circuit).
size_t NnfHeaderVars(const std::string& text) {
  for (const std::string& raw : tbc::SplitChar(text, '\n')) {
    std::string_view line = tbc::StripWhitespace(raw);
    if (line.empty() || line[0] == 'c') continue;
    const std::vector<std::string> tok = tbc::SplitWhitespace(line);
    uint64_t vars = 0;
    if (tok.size() == 4 && tok[0] == "nnf" && tbc::ParseUint64(tok[3], &vars)) {
      return static_cast<size_t>(vars);
    }
    return 0;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Piping output into a closed reader (e.g. `tbc_lint ... | head`) must
  // surface as a short write, not a SIGPIPE abort.
  std::signal(SIGPIPE, SIG_IGN);
  using namespace tbc;

  if (Flag(argc, argv, "--list-rules")) {
    size_t count = 0;
    const tbc::RuleInfo* all = tbc::AllRules(&count);
    for (size_t i = 0; i < count; ++i) {
      std::printf("%-24s %s\n", all[i].id, all[i].summary);
    }
    return 0;
  }

  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) files.push_back(argv[i]);
  }
  if (files.empty()) {
    Usage();
    return 1;
  }

  const char* format = Arg(argc, argv, "--format");
  const bool json = format != nullptr && std::strcmp(format, "json") == 0;
  if (format != nullptr && !json && std::strcmp(format, "text") != 0) {
    std::fprintf(stderr, "tbc_lint: unknown --format=%s\n", format);
    return 1;
  }
  const bool no_sat = Flag(argc, argv, "--no-sat");
  uint64_t max_sat_checks = 4096;
  if (const char* cap = Arg(argc, argv, "--max-sat-checks")) {
    if (!ParseUint64(cap, &max_sat_checks)) {
      std::fprintf(stderr, "tbc_lint: bad --max-sat-checks=%s\n", cap);
      return 1;
    }
  }

  // The vtree is shared by every .sdd/.psdd file on the command line (the
  // exchange format references vtree nodes by in-order position).
  Vtree vtree = Vtree::Balanced(Vtree::IdentityOrder(1));
  bool have_vtree = false;
  if (const char* vtree_path = Arg(argc, argv, "--vtree")) {
    const std::string text = ReadFile(vtree_path);
    if (text.empty()) {
      std::fprintf(stderr, "tbc_lint: cannot read vtree %s\n", vtree_path);
      return 1;
    }
    auto parsed = Vtree::Parse(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "tbc_lint: %s: %s\n", vtree_path,
                   parsed.status().message().c_str());
      return 1;
    }
    vtree = *std::move(parsed);
    have_vtree = true;
  }

  const char* forced_lang = Arg(argc, argv, "--lang");
  bool any_error = false;
  std::string json_out = "[";
  bool first_json = true;

  for (const char* path : files) {
    // Pick the language: --lang wins, then the file extension.
    std::string lang = forced_lang != nullptr ? forced_lang : "";
    if (lang.empty()) {
      const std::string p = path;
      if (p.size() > 4 && p.compare(p.size() - 4, 4, ".sdd") == 0) {
        lang = "sdd";
      } else if (p.size() > 5 && p.compare(p.size() - 5, 5, ".psdd") == 0) {
        lang = "psdd";
      } else {
        lang = "ddnnf";
      }
    }

    const std::string text = ReadFile(path);
    if (text.empty()) {
      std::fprintf(stderr, "tbc_lint: cannot read %s\n", path);
      return 1;
    }

    DiagnosticReport report;
    if (lang == "sdd" || lang == "psdd") {
      if (!have_vtree) {
        std::fprintf(stderr,
                     "tbc_lint: %s: --vtree=FILE is required for %s files\n",
                     path, lang.c_str());
        return 1;
      }
      if (lang == "sdd") {
        SddAnalysisOptions options;
        options.check_partition = !no_sat;
        AnalyzeSddFile(text, vtree, options, report);
      } else {
        AnalyzePsddFile(text, vtree, report);
      }
    } else {
      NnfAnalysisOptions options;
      if (!ParseNnfDialect(lang.c_str(), &options.dialect)) {
        std::fprintf(stderr, "tbc_lint: unknown --lang=%s\n", lang.c_str());
        return 1;
      }
      options.sat_determinism = !no_sat;
      options.max_sat_checks = static_cast<size_t>(max_sat_checks);
      options.expected_num_vars = NnfHeaderVars(text);
      NnfManager mgr;
      auto root = ReadNnf(mgr, text);
      if (!root.ok()) {
        report.Add(Severity::kError, rules::kNnfParse, 0, "",
                   root.status().message());
      } else {
        AnalyzeNnf(mgr, *root, options, report);
      }
    }

    if (json) {
      if (!first_json) json_out += ",";
      json_out += report.ToJson(path);
      first_json = false;
    } else {
      if (report.empty()) {
        std::printf("%s: clean (%s)\n", path, lang.c_str());
      } else {
        std::fputs(report.ToText(path).c_str(), stdout);
      }
    }
    any_error = any_error || !report.clean();
  }

  if (json) std::printf("%s]\n", json_out.c_str());
  if (Flag(argc, argv, "--stats")) {
    std::fputs(Observability::Global().RenderText().c_str(), stderr);
  }
  return any_error ? 2 : 0;
}
