// tbc_analyze: static structure analysis of DIMACS CNF files — the
// "analyze before you compile" tool (DESIGN.md "Structure analysis & cost
// forecasting"). Without running any compiler it reports, per file: primal
// graph shape, connected components, unit/pure/backbone propagation facts,
// a treewidth bracket (degeneracy lower bound, simulated elimination-order
// upper bounds from min-degree / MCS / min-fill), the dtree width along
// the best order, and the per-backend compile-cost envelope implied by the
// width (nodes <= n·2^w; paper §4).
//
// With --max-width=N the tool doubles as an offline admission check: a
// file whose best predicted width exceeds N exits 3 (the same typed
// refusal tbc_serve issues online with --max-width). The forecast is
// advisory — it routes and refuses, but resource Guards remain the
// enforcer of record on anything actually compiled.
//
// Usage:
//   tbc_analyze [options] FILE.cnf...
//     --format=text|json   rendering (default text; json is one array with
//                          one object per file)
//     --max-width=N        exit 3 when a file's predicted width exceeds N
//     --no-minfill         skip the min-fill order (the quadratic-ish one)
//     --minfill-max-vars=N min-fill size cutoff (default 4096)
//     --list-rules         print the structure.* rule ids and exit
//     --stats              dump the observability registry to stderr
//
// Exit codes: 0 = analyzed clean, 1 = usage error or at least one file is
// unreadable (rule structure.io), 2 = at least one file is not parseable
// CNF (rule structure.parse; an empty-but-readable file lands here), 3 =
// at least one file exceeds --max-width. Severity wins across files:
// 1 over 2 over 3. Every listed file is analyzed and reported even when
// an earlier one fails, so --format=json always emits a complete array.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/rules.h"
#include "analysis/structure/forecast.h"
#include "base/observability.h"
#include "base/strings.h"

namespace {

// True iff `path` was read successfully; an empty (but readable) file
// yields true with `*out` empty — it then fails CNF *parsing* (exit 2),
// which is a different contract than an unreadable file (exit 1).
bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  *out = buffer.str();
  return true;
}

const char* Arg(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool Flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// A quoted JSON string (paths can hold quotes/backslashes/control bytes).
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out + "\"";
}

void Usage() {
  std::printf(
      "usage: tbc_analyze [options] FILE.cnf...\n"
      "  --format=text|json\n"
      "  --max-width=N        exit 3 when predicted width exceeds N\n"
      "  --no-minfill         skip the min-fill elimination order\n"
      "  --minfill-max-vars=N min-fill size cutoff (default 4096)\n"
      "  --list-rules         print the structure.* rule ids and exit\n"
      "  --stats              dump observability metrics to stderr\n"
      "exit: 0 clean, 1 usage/io error, 2 unparseable CNF, 3 over width "
      "cap\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Piping into a closed reader (`tbc_analyze ... | head`) must surface as
  // a short write, not a SIGPIPE abort.
  std::signal(SIGPIPE, SIG_IGN);
  using namespace tbc;

  if (Flag(argc, argv, "--list-rules")) {
    size_t count = 0;
    const RuleInfo* all = AllRules(&count);
    for (size_t i = 0; i < count; ++i) {
      if (std::strncmp(all[i].id, "structure.", 10) == 0) {
        std::printf("%-24s %s\n", all[i].id, all[i].summary);
      }
    }
    return 0;
  }

  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) files.push_back(argv[i]);
  }
  if (files.empty()) {
    Usage();
    return 1;
  }

  const char* format = Arg(argc, argv, "--format");
  const bool json = format != nullptr && std::strcmp(format, "json") == 0;
  if (format != nullptr && !json && std::strcmp(format, "text") != 0) {
    std::fprintf(stderr, "tbc_analyze: unknown --format=%s\n", format);
    return 1;
  }
  uint64_t max_width = 0;
  if (const char* cap = Arg(argc, argv, "--max-width")) {
    if (!ParseUint64(cap, &max_width)) {
      std::fprintf(stderr, "tbc_analyze: --max-width needs an integer, "
                   "got '%s'\n", cap);
      return 1;
    }
  }
  StructureOptions options;
  if (Flag(argc, argv, "--no-minfill")) options.try_minfill = false;
  if (const char* cap = Arg(argc, argv, "--minfill-max-vars")) {
    uint64_t n = 0;
    if (!ParseUint64(cap, &n)) {
      std::fprintf(stderr, "tbc_analyze: --minfill-max-vars needs an "
                   "integer, got '%s'\n", cap);
      return 1;
    }
    options.minfill_max_vars = static_cast<uint32_t>(n);
  }

  bool any_io_error = false;
  bool any_parse_error = false;
  bool any_over_width = false;
  std::string json_out = "[";
  bool first_json = true;

  for (const char* path : files) {
    DiagnosticReport diag;
    std::string structure_json = "null";
    std::string structure_text;
    bool refused = false;
    std::string text;
    if (!ReadFile(path, &text)) {
      // Diagnose in place and keep going: every listed file gets its
      // entry, so --format=json always emits a complete, valid array.
      any_io_error = true;
      std::fprintf(stderr, "tbc_analyze: cannot read %s\n", path);
      diag.Add(Severity::kError, rules::kStructureIo, 0, "",
               "file could not be read");
    } else if (auto parsed = Cnf::ParseDimacs(text); !parsed.ok()) {
      // Includes the genuinely-empty-file case: readable, but no header.
      any_parse_error = true;
      diag.Add(Severity::kError, rules::kStructureParse, 0, "",
               parsed.status().message());
    } else {
      const StructureReport report = AnalyzeCnfStructure(*parsed, options);
      StructureDiagnostics(report, diag);
      structure_json = report.ToJson();
      structure_text = report.ToText();
      if (max_width > 0 && report.best_width() > max_width) {
        any_over_width = true;
        refused = true;
        TBC_COUNT("analysis.structure.forecast_refusals");
        diag.Add(Severity::kError, rules::kStructureWidth, 0,
                 "width=" + std::to_string(report.best_width()) +
                     " cap=" + std::to_string(max_width),
                 "predicted induced width exceeds the --max-width cap; a "
                 "compile is forecast to be hopeless within reasonable "
                 "budgets");
      }
    }

    if (json) {
      if (!first_json) json_out += ",";
      json_out += std::string("{\"file\":") + JsonString(path) +
                  ",\"refused\":" + (refused ? "true" : "false") +
                  ",\"structure\":" + structure_json +
                  ",\"diagnostics\":" + diag.ToJson(path) + "}";
      first_json = false;
    } else {
      if (!structure_text.empty()) {
        std::printf("%s:\n%s", path, structure_text.c_str());
      }
      if (!diag.empty()) std::fputs(diag.ToText(path).c_str(), stdout);
      if (diag.empty() && !structure_text.empty()) {
        std::printf("%s: clean\n", path);
      }
    }
  }

  if (json) std::printf("%s]\n", json_out.c_str());
  if (Flag(argc, argv, "--stats")) {
    std::fputs(Observability::Global().RenderText().c_str(), stderr);
  }
  if (any_io_error) return 1;
  if (any_parse_error) return 2;
  if (any_over_width) return 3;
  return 0;
}
