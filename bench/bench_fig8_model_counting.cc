// Figure 8: model counting in linear time on d-DNNF circuits. Reproduces
// the figure's count (9 satisfying inputs of 16 on the running-example
// circuit) and then demonstrates the linear-time claim with a sweep:
// counting time grows linearly with compiled circuit size.

#include <cstdio>
#include <set>

#include "base/random.h"
#include "base/timer.h"
#include "compiler/ddnnf_compiler.h"
#include "nnf/properties.h"
#include "nnf/queries.h"

namespace {

tbc::Cnf RandomCnf(size_t n, size_t m, uint64_t seed) {
  tbc::Rng rng(seed);
  tbc::Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<tbc::Var> vars;
    while (vars.size() < 3) vars.insert(static_cast<tbc::Var>(rng.Below(n)));
    tbc::Clause c;
    for (tbc::Var v : vars) c.push_back(tbc::Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

}  // namespace

int main() {
  using namespace tbc;
  std::printf("=== Fig 8: linear-time model counting on d-DNNF ===\n");

  // The paper circuit: (P∨L) ∧ (A⇒P) ∧ (K⇒(A∨L)).
  Cnf delta(4);
  delta.AddClauseDimacs({4, 3});
  delta.AddClauseDimacs({-1, 4});
  delta.AddClauseDimacs({-2, 1, 3});
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(delta, mgr);
  std::printf("paper circuit: decomposable=%d deterministic=%d\n",
              IsDecomposable(mgr, root),
              IsDeterministicExhaustive(mgr, root, 4));
  std::printf("model count: %s of 16 (paper Fig 8: \"9 satisfying inputs "
              "out of 16 possible ones\")\n\n",
              ModelCount(mgr, root, 4).ToString().c_str());

  std::printf("linearity sweep: count time vs circuit size (10 repeats)\n");
  std::printf("%-6s %-10s %-14s %-12s %-14s\n", "n", "edges", "models",
              "count(us)", "us per edge");
  for (size_t n : {12, 16, 20, 24, 28, 32}) {
    Cnf cnf = RandomCnf(n, n * 3, 7 + n);
    NnfManager m2;
    DdnnfCompiler c2;
    const NnfId r2 = c2.Compile(cnf, m2);
    const size_t edges = m2.CircuitSize(r2);
    Timer t;
    BigUint count(0);
    const int repeats = 10;
    for (int i = 0; i < repeats; ++i) count = ModelCount(m2, r2, n);
    const double us = t.Seconds() * 1e6 / repeats;
    std::printf("%-6zu %-10zu %-14s %-12.1f %-14.3f\n", n, edges,
                count.ToString().c_str(), us, us / static_cast<double>(edges));
  }
  std::printf("\npaper shape: per-edge counting cost stays flat - counting "
              "is linear in circuit size.\n");
  return 0;
}
