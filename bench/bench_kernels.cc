// Kernel micro-benchmarks: the hot paths the flat-table/arena kernel layer
// targets, shaped after the paper-figure benches (Fig 8 model counting,
// Fig 14 PSDD evaluation, Fig 22 hierarchical map compilation) plus the
// raw SDD/OBDD apply loops underneath them.
//
// This file is deliberately restricted to APIs that exist both before and
// after the kernel layer (compile, ModelCount/Wmc, Psdd evaluation, map
// compilation): tools/run_bench.sh compiles this exact source against the
// pre-PR baseline in a git worktree and against the current tree, runs
// both, and writes the before/after medians to BENCH_kernels.json. Seeds
// are pinned; every workload reports the median of 5 runs.
//
// Usage: bench_kernels [output.json]   (default: stdout)

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "base/random.h"
#include "base/timer.h"

// run_bench.sh compiles this exact source against the pre-observability
// baseline worktree, which has no base/observability.h — gate on the
// header so both builds succeed and the report degrades to "stats": null.
#if __has_include("base/observability.h")
#include "base/observability.h"
#define BENCH_HAVE_OBS 1
#else
#define BENCH_HAVE_OBS 0
#endif
// Same deal for the certify layer: the baseline worktree predates
// certify/trace.h, and trace emission may be configured off — in either
// case the traced bench degrades to the plain shape (ratio reads 1.0).
#if __has_include("certify/trace.h")
#include "certify/trace.h"
#define BENCH_HAVE_TRACE TBC_CERTIFY_TRACE_ON
#else
#define BENCH_HAVE_TRACE 0
#endif
#include "compiler/ddnnf_compiler.h"
#include "nnf/nnf.h"
#include "nnf/queries.h"
#include "obdd/obdd.h"
#include "psdd/psdd.h"
#include "sdd/compile.h"
#include "sdd/minimize.h"
#include "sdd/sdd.h"
#include "spaces/hierarchical.h"
#include "vtree/vtree.h"

namespace {

using namespace tbc;

Cnf RandomCnf(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < 3) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

WeightMap RandomWeights(size_t n, uint64_t seed) {
  Rng rng(seed);
  WeightMap w(n);
  for (Var v = 0; v < n; ++v) {
    const double p = 0.05 + 0.9 * rng.Uniform();
    w.Set(Pos(v), p);
    w.Set(Neg(v), 1.0 - p);
  }
  return w;
}

// Sink defeating dead-code elimination across runs.
double g_sink = 0.0;

// Fig 8 shape: top-down d-DNNF compilation (component cache under string
// keys) followed by repeated linear counting passes.
void BenchDdnnfCountWmc() {
  for (size_t n : {16, 20, 24, 28}) {
    const Cnf cnf = RandomCnf(n, n * 3, 7 + n);
    const WeightMap w = RandomWeights(n, 100 + n);
    NnfManager mgr;
    DdnnfCompiler compiler;
    const NnfId root = compiler.Compile(cnf, mgr);
    for (int i = 0; i < 20; ++i) {
      g_sink += ModelCount(mgr, root, n).ToDouble();
      g_sink += Wmc(mgr, root, w);
    }
  }
}

// Fig 14 shape: PSDD built on a compiled SDD base, then dense evaluation —
// complete-input probabilities, evidence probabilities, and marginals.
void BenchPsddEval() {
  const size_t n = 14;
  const Cnf cnf = RandomCnf(n, n + 4, 51);
  SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(n)));
  const SddId base = CompileCnf(mgr, cnf);
  if (base == mgr.False()) return;  // pinned seed keeps this satisfiable
  const Psdd psdd(mgr, base);
  Rng rng(52);
  for (int i = 0; i < 2000; ++i) {
    Assignment x(n);
    for (Var v = 0; v < n; ++v) x[v] = rng.Flip(0.5);
    g_sink += psdd.Probability(x);
  }
  for (int i = 0; i < 500; ++i) {
    PsddEvidence e(n, Obs::kUnknown);
    for (Var v = 0; v < n; ++v) {
      const uint64_t r = rng.Below(3);
      if (r < 2) e[v] = r == 0 ? Obs::kFalse : Obs::kTrue;
    }
    g_sink += psdd.ProbabilityEvidence(e);
    const std::vector<double> marg = psdd.Marginals(e, /*normalized=*/false);
    g_sink += marg[0];
  }
}

// Certify-overhead pair: the Fig 8 compile workload with and without a
// derivation-trace sink attached. The traced/plain ratio of the two
// "after" medians is the price the certify layer charges for a checkable
// compilation; the certification gate holds it at <= 1.25x.
void BenchCertifyFig8Plain() {
  for (size_t n : {16, 20, 24, 28}) {
    const Cnf cnf = RandomCnf(n, n * 3, 7 + n);
    NnfManager mgr;
    DdnnfCompiler compiler;
    const NnfId root = compiler.Compile(cnf, mgr);
    g_sink += ModelCount(mgr, root, n).ToDouble();
  }
}

void BenchCertifyFig8Traced() {
#if BENCH_HAVE_TRACE
  for (size_t n : {16, 20, 24, 28}) {
    const Cnf cnf = RandomCnf(n, n * 3, 7 + n);
    NnfManager mgr;
    DdnnfCompiler compiler;
    DdnnfTrace trace;
    compiler.set_trace(&trace);
    const NnfId root = compiler.Compile(cnf, mgr);
    g_sink += ModelCount(mgr, root, n).ToDouble();
    g_sink += static_cast<double>(trace.comps.size());
  }
#else
  BenchCertifyFig8Plain();
#endif
}

// Fig 22 shape: hierarchical map compilation (OBDD/SDD apply churn through
// the unique table and apply cache).
void BenchHierarchicalMap() {
  HierarchicalMap map(6, 6, 2);
  const GraphNode s = 0;
  const GraphNode t = static_cast<GraphNode>(map.grid().num_nodes() - 1);
  const auto stats = map.Compile(s, t);
  g_sink += static_cast<double>(stats.hier_nodes);
}

// Raw SDD apply loop: clause-by-clause CNF conjoin (unique table + op
// cache are the entire cost).
void BenchSddApply() {
  const size_t n = 22;
  const Cnf cnf = RandomCnf(n, n * 2, 61);
  SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(n)));
  const SddId f = CompileCnf(mgr, cnf);
  const WeightMap w = RandomWeights(n, 62);
  for (int i = 0; i < 10; ++i) g_sink += mgr.Wmc(f, w);
}

// Vtree minimization through the stable MinimizeVtree entry point: the
// baseline library recompiles the CNF for every candidate neighbor, the
// current one rotates/swaps the live SDD in place — so the before/after
// ratio of this kernel IS the dynamic-minimization speedup (budget and
// seed pinned; both searches walk the same seeded neighbor sequence).
void BenchSddMinimize() {
  for (size_t n : {12, 16, 20}) {
    const Cnf cnf = RandomCnf(n, n * 3, 7 + n);
    const MinimizeResult r = MinimizeVtree(
        cnf, Vtree::RightLinear(Vtree::IdentityOrder(n)), 60, 17);
    g_sink += static_cast<double>(r.size + r.iterations);
  }
}

// Minimize-enabled SDD suite variant: the sdd_apply workload compiled with
// the size-triggered auto-minimize hook armed. Trees that predate the hook
// (no TBC_SDD_HAS_INPLACE_MINIMIZE in sdd/minimize.h) run the plain
// compile, so the before/after ratio prices the hook against doing nothing.
void BenchSddCompileAutoMinimize() {
#ifdef TBC_SDD_HAS_INPLACE_MINIMIZE
  const SddAutoMinimizeOptions saved = SddManager::DefaultAutoMinimize();
  SddAutoMinimizeOptions opts =
      SddAutoMinimizeOptions::ForMode(SddMinimizeMode::kAggressive);
  SddManager::SetDefaultAutoMinimize(opts);
#endif
  const size_t n = 22;
  const Cnf cnf = RandomCnf(n, n * 2, 61);
  SddManager mgr(Vtree::RightLinear(Vtree::IdentityOrder(n)));
  const SddId f = CompileCnf(mgr, cnf);
  const WeightMap w = RandomWeights(n, 62);
  for (int i = 0; i < 10; ++i) g_sink += mgr.Wmc(f, w);
#ifdef TBC_SDD_HAS_INPLACE_MINIMIZE
  SddManager::SetDefaultAutoMinimize(saved);
#endif
}

// Raw OBDD apply loop plus repeated counting passes.
void BenchObddApply() {
  const size_t n = 24;
  const Cnf cnf = RandomCnf(n, n * 2, 71);
  std::vector<Var> order(n);
  for (Var v = 0; v < n; ++v) order[v] = v;
  ObddManager mgr(order);
  const ObddId f = mgr.CompileCnf(cnf);
  const WeightMap w = RandomWeights(n, 72);
  for (int i = 0; i < 20; ++i) {
    g_sink += mgr.ModelCount(f).ToDouble();
    g_sink += mgr.Wmc(f, w);
  }
}

struct Entry {
  std::string name;
  std::vector<double> runs_ms;
  double median_ms = 0.0;
};

template <typename Fn>
Entry Measure(const std::string& name, Fn&& fn) {
  Entry e;
  e.name = name;
  fn();  // warm-up: page in code, fill allocator pools
  for (int r = 0; r < 5; ++r) {
    Timer t;
    fn();
    e.runs_ms.push_back(t.Millis());
  }
  std::vector<double> sorted = e.runs_ms;
  std::sort(sorted.begin(), sorted.end());
  e.median_ms = sorted[sorted.size() / 2];
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Entry> entries;
  entries.push_back(Measure("ddnnf_count_wmc", BenchDdnnfCountWmc));
  entries.push_back(Measure("certify_fig8_plain", BenchCertifyFig8Plain));
  entries.push_back(Measure("certify_fig8_traced", BenchCertifyFig8Traced));
  entries.push_back(Measure("psdd_eval", BenchPsddEval));
  entries.push_back(Measure("hierarchical_map", BenchHierarchicalMap));
  entries.push_back(Measure("sdd_apply_wmc", BenchSddApply));
  entries.push_back(Measure("sdd_minimize", BenchSddMinimize));
  entries.push_back(Measure("sdd_compile_autominimize", BenchSddCompileAutoMinimize));
  entries.push_back(Measure("obdd_apply_count", BenchObddApply));

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }
  std::fprintf(out, "{\n  \"median_of\": 5,\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(out, "    {\"name\": \"%s\", \"median_ms\": %.3f, \"runs_ms\": [",
                 e.name.c_str(), e.median_ms);
    for (size_t r = 0; r < e.runs_ms.size(); ++r) {
      std::fprintf(out, "%s%.3f", r ? ", " : "", e.runs_ms[r]);
    }
    std::fprintf(out, "]}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // The observability registry accumulated over every run above: the same
  // counters/gauges/histograms schema kc_cli --stats=json emits (pinned by
  // tools/stats_schema.json), so bench reports and CLI stats are directly
  // comparable.
#if BENCH_HAVE_OBS
  const std::string stats = tbc::Observability::Global().RenderJson();
  // RenderJson ends with "}\n": trim the newline to embed as a value.
  std::fprintf(out, "  \"stats\": %.*s\n",
               static_cast<int>(stats.size() - 1), stats.c_str());
#else
  std::fprintf(out, "  \"stats\": null\n");
#endif
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);
  std::fprintf(stderr, "sink=%.6f\n", g_sink);  // keep the work observable
  return 0;
}
