// Persistent circuit store: load-vs-recompile economics (DESIGN.md
// "Persistent circuit store"). The store exists because compilation is
// the expensive, offline phase of the paper's "compile once, query
// forever" pipeline — so reopening a compiled circuit must cost
// O(pages touched), not a recompile. This bench pins the claim: mapping
// a stored circuit and answering the first query is >= 50x faster than
// recompiling the same CNF on the largest bench circuit (smaller sizes
// are reported for the trend; their sub-millisecond compiles bound the
// possible ratio).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include "base/random.h"
#include "base/timer.h"
#include "compiler/ddnnf_compiler.h"
#include "nnf/queries.h"
#include "store/store.h"

namespace {

tbc::Cnf RandomCnf(size_t n, size_t m, uint64_t seed) {
  tbc::Rng rng(seed);
  tbc::Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<tbc::Var> vars;
    while (vars.size() < 3) vars.insert(static_cast<tbc::Var>(rng.Below(n)));
    tbc::Clause c;
    for (tbc::Var v : vars) c.push_back(tbc::Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

}  // namespace

int main() {
  using namespace tbc;
  std::printf("=== Persistent store: load vs recompile ===\n");
  std::printf("%-6s %-9s %-10s %-12s %-12s %-12s %-8s\n", "n", "edges",
              "bytes", "compile(ms)", "write(ms)", "load(ms)", "speedup");

  double largest_speedup = 0.0;
  for (size_t n : {24, 32, 40, 48}) {
    const Cnf cnf = RandomCnf(n, n * 3, 11 + n);

    // Recompile cost: the best of 3 runs, to bias AGAINST the store (a
    // warm allocator and clause cache make later compiles cheaper).
    double compile_ms = 1e300;
    size_t edges = 0;
    BigUint count;
    for (int rep = 0; rep < 3; ++rep) {
      NnfManager mgr;
      DdnnfCompiler compiler;
      Timer t;
      const NnfId root = compiler.Compile(cnf, mgr);
      count = ModelCount(mgr, root, cnf.num_vars());
      compile_ms = std::min(compile_ms, t.Millis());
      edges = mgr.CircuitSize(root);
    }

    const std::string path =
        "/tmp/bench_store_" + std::to_string(n) + ".tbc";
    double write_ms = 0.0;
    {
      NnfManager mgr;
      DdnnfCompiler compiler;
      const NnfId root = compiler.Compile(cnf, mgr);
      StoreWriteOptions opts;
      opts.model_count = &count;
      opts.num_vars = cnf.num_vars();
      Timer t;
      const Status st = WriteCircuitStore(mgr, root, path, opts);
      write_ms = t.Millis();
      if (!st.ok()) {
        std::fprintf(stderr, "write failed: %s\n", st.message().c_str());
        return 1;
      }
    }
    const size_t bytes = std::filesystem::file_size(path);

    // Load cost includes everything a cold consumer pays: open + mmap +
    // full checksum/structural validation + the first real query.
    double load_ms = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      Timer t;
      auto loaded = LoadCircuitStore(path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "load failed: %s\n",
                     loaded.status().message().c_str());
        return 1;
      }
      const BigUint reloaded = loaded->store->has_model_count()
                                   ? loaded->store->model_count()
                                   : BigUint();
      if (!(reloaded == count)) {
        std::fprintf(stderr, "model count mismatch after reload\n");
        return 1;
      }
      load_ms = std::min(load_ms, t.Millis());
    }
    std::remove(path.c_str());

    const double speedup = compile_ms / load_ms;
    largest_speedup = speedup;  // sizes ascend; the last one is the gate
    std::printf("%-6zu %-9zu %-10zu %-12.3f %-12.3f %-12.4f %-8.0fx\n", n,
                edges, bytes, compile_ms, write_ms, load_ms, speedup);
  }

  std::printf("\nlargest-circuit speedup: %.0fx (target >= 50x)\n",
              largest_speedup);
  return largest_speedup >= 50.0 ? 0 : 1;
}
