// Figure 15: learning from data and knowledge. The course-prerequisite
// constraint is compiled to an SDD; maximum-likelihood PSDD parameters are
// learned from the enrollment table in time linear in the PSDD size.
// Reports the learned fit, the effect of smoothing, and the learning-time
// linearity the paper claims ("time linear in the PSDD size").

#include <cmath>
#include <cstdio>

#include "base/timer.h"
#include "psdd/learn.h"
#include "sdd/compile.h"
#include "spaces/rankings.h"

int main() {
  using namespace tbc;
  std::printf("=== Fig 15: ML parameter learning from complete data ===\n");

  Cnf constraint(4);
  constraint.AddClauseDimacs({4, 3});
  constraint.AddClauseDimacs({-1, 4});
  constraint.AddClauseDimacs({-2, 1, 3});
  SddManager mgr(Vtree::Balanced({2, 1, 3, 0}));
  const SddId base = CompileCnf(mgr, constraint);

  WeightedData data = WeightedData::FromCounts({
      {{false, false, true, false}, 54},
      {{false, false, false, true}, 98},
      {{false, false, true, true}, 76},
      {{false, true, true, false}, 33},
      {{false, true, true, true}, 77},
      {{true, false, false, true}, 68},
      {{true, false, true, true}, 64},
      {{true, true, false, true}, 51},
      {{true, true, true, true}, 38},
  });
  std::printf("dataset: 9 distinct rows, %.0f students\n\n", data.TotalWeight());

  std::printf("%-10s %-14s %-12s\n", "laplace", "weighted LL", "KL(data||q)");
  for (double alpha : {0.0, 0.5, 2.0, 10.0}) {
    Psdd q = LearnPsdd(mgr, base, data, alpha);
    double ll = 0.0;
    for (size_t i = 0; i < data.examples.size(); ++i) {
      ll += data.weights[i] * std::log(q.Probability(data.examples[i]));
    }
    std::printf("%-10.1f %-14.2f %-12.6f\n", alpha, ll, EmpiricalKl(data, q));
  }
  std::printf("(alpha = 0 is the maximum-likelihood fit: highest LL, "
              "lowest KL)\n\n");

  // Linearity: learning time vs PSDD size on ranking spaces of growing n.
  std::printf("learning-time linearity (ranking spaces, 200 examples):\n");
  std::printf("%-4s %-12s %-12s %-14s\n", "n", "psdd size", "learn(ms)",
              "ms per 1k size");
  for (size_t n : {3, 4, 5, 6}) {
    RankingSpace space(n);
    Psdd psdd = space.MakePsdd();
    Rng rng(n);
    std::vector<uint32_t> center(n);
    for (size_t i = 0; i < n; ++i) center[i] = static_cast<uint32_t>(i);
    std::vector<Assignment> examples;
    for (int i = 0; i < 200; ++i) {
      examples.push_back(space.Encode(space.SampleMallows(center, 0.5, rng)));
    }
    Timer t;
    psdd.LearnParameters(examples, {}, 1.0);
    const double ms = t.Millis();
    std::printf("%-4zu %-12zu %-12.2f %-14.3f\n", n, psdd.Size(), ms,
                ms * 1000.0 / static_cast<double>(psdd.Size()));
  }
  std::printf("\npaper shape: closed-form ML learning, cost linear in "
              "circuit size.\n");
  return 0;
}
