// Figures 18-21 and 24: hierarchical maps, conditional spaces, conditional
// PSDDs and structured Bayesian networks. Reproduces Fig 21/24's two-branch
// conditional PSDD semantics exactly, then builds a two-cluster SBN over a
// hierarchical grid (top-level crossings conditioning region navigation,
// the Fig 19/20 structure) and learns it from sampled routes.

#include <memory>
#include <cstdio>

#include "psdd/conditional.h"
#include "sdd/compile.h"
#include "spaces/hierarchical.h"
#include "vtree/vtree.h"

int main() {
  using namespace tbc;
  std::printf("=== Figs 18-21/24: conditional spaces and conditional PSDDs ===\n");

  // --- Fig 21/24 exactly: parents A=0,B=1; children X=2,Y=3.
  SddManager parents(Vtree::Balanced({0, 1}));
  SddManager children(Vtree::Balanced({2, 3}));
  ConditionalPsdd cpsdd(&parents, &children);
  const SddId a0b0 = parents.Conjoin(parents.LiteralNode(Neg(0)),
                                     parents.LiteralNode(Neg(1)));
  cpsdd.AddBranch(a0b0, children.Disjoin(children.LiteralNode(Neg(2)),
                                         children.LiteralNode(Neg(3))));
  cpsdd.AddBranch(parents.Negate(a0b0),
                  children.Disjoin(children.LiteralNode(Pos(2)),
                                   children.LiteralNode(Pos(3))));
  std::printf("\nconditional distributions (rows: X,Y; columns: parent state):\n");
  std::printf("%-10s %-14s %-14s\n", "x y", "a0,b0", "other a,b");
  for (int cb = 0; cb < 4; ++cb) {
    const bool xv = cb & 1, yv = cb & 2;
    const double p00 = cpsdd.Conditional({false, false, xv, yv});
    const double prest = cpsdd.Conditional({true, false, xv, yv});
    std::printf("x%d y%d      %-14.4f %-14.4f\n", (int)xv, (int)yv, p00, prest);
  }
  std::printf("(Fig 21: first space is x0 ∨ y0, second is x1 ∨ y1; Fig 24: "
              "evaluating the parents selects the distribution)\n");

  // --- Fig 19/20 structure: a 4x4 grid with 2x2 regions; the crossing
  // edges condition each region's internal navigation.
  std::printf("\nstructured Bayesian network over a hierarchical 4x4 map:\n");
  HierarchicalMap map(4, 4, 2);
  const auto crossings = map.CrossingEdges();
  std::printf("  regions: %zu, crossing edges e1..e%zu, local edges per "
              "region: %zu\n",
              map.num_regions(), crossings.size(), map.LocalEdges(0).size());

  // Cluster 1: the crossings (root of the cluster DAG, Fig 19's Westside);
  // cluster 2: region 0's local edges, conditioned on its crossings.
  const size_t num_edges = map.grid().num_edges();
  std::vector<Var> crossing_vars(crossings.begin(), crossings.end());
  auto cross_mgr = new SddManager(Vtree::Balanced(crossing_vars));
  auto local0 = map.LocalEdges(0);
  auto local_mgr = new SddManager(Vtree::Balanced(
      std::vector<Var>(local0.begin(), local0.end())));

  StructuredBayesNet sbn;
  auto root_cond = std::make_unique<ConditionalPsdd>(nullptr, cross_mgr);
  root_cond->AddBranch(cross_mgr->True(), cross_mgr->True());
  const size_t root_cluster = sbn.AddCluster(
      "crossings", crossing_vars, {}, std::move(root_cond));

  // Region 0 behavior depends only on whether its boundary was used
  // (Fig 20's conditional space): pick the crossing at node 1<->2.
  auto region_cond = std::make_unique<ConditionalPsdd>(cross_mgr, local_mgr);
  const Var gate = crossing_vars[0];
  // If the gate crossing is used, region 0 must route to it: local edges
  // form a path; otherwise the region is quiet (no local edges).
  SddId quiet = local_mgr->True();
  for (Var e : local0) quiet = local_mgr->Conjoin(quiet, local_mgr->LiteralNode(Neg(e)));
  region_cond->AddBranch(cross_mgr->LiteralNode(Pos(gate)), local_mgr->True());
  region_cond->AddBranch(cross_mgr->LiteralNode(Neg(gate)), quiet);
  sbn.AddCluster("region0", std::vector<Var>(local0.begin(), local0.end()),
                 {root_cluster}, std::move(region_cond));

  // Learn from sampled global behavior and verify the factorization.
  Rng rng(7);
  std::vector<Assignment> data;
  for (int i = 0; i < 400; ++i) {
    Assignment x(num_edges, false);
    const bool use_gate = rng.Flip(0.4);
    x[gate] = use_gate;
    if (use_gate) {
      for (Var e : local0) x[e] = rng.Flip(0.5);
    }
    data.push_back(x);
  }
  sbn.LearnParameters(data, {}, 0.5);
  Assignment probe(num_edges, false);
  probe[gate] = true;
  probe[local0[0]] = true;
  std::printf("  learned joint Pr(gate used, first local street) = %.4f\n",
              sbn.JointProbability(probe));
  Assignment forbidden(num_edges, false);
  forbidden[local0[0]] = true;  // local traffic without the gate: impossible
  std::printf("  Pr(local street, gate unused) = %.4f (structurally 0)\n",
              sbn.JointProbability(forbidden));
  std::printf("\npaper shape: conditional spaces select distributions by "
              "parent state; impossible combinations get probability 0.\n");
  return 0;
}
