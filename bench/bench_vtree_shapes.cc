// bench_vtree_shapes: SDD compile cost under right-linear vs balanced vs
// structure-synthesized (min-fill) vtrees, on the Fig 8 random-3-CNF
// family (same n/m/seed grid as bench_fig8_model_counting) and on
// label-shuffled grid CNFs, where the variable numbering carries no
// structural information and only the min-fill vtree can recover the
// grid's width from the primal graph.
//
// Unlike bench_kernels.cc this binary uses the structure-analysis API
// introduced with it, so tools/run_bench.sh runs it on the CURRENT tree
// only (there is no pre-PR baseline to compare against; right-linear and
// balanced columns are the in-report baseline instead) and merges the
// output into BENCH_kernels.json under "vtree_shapes".
//
// Usage: bench_vtree_shapes [output.json]   (default: stdout)

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "analysis/structure/forecast.h"
#include "base/guard.h"
#include "base/random.h"
#include "base/timer.h"
#include "logic/cnf.h"
#include "sdd/compile.h"
#include "sdd/minimize.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace {

using namespace tbc;

constexpr int kRuns = 5;

Cnf RandomCnf(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < 3) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

// rows x cols grid whose variable labels are a seeded random permutation:
// adjacent grid cells get unrelated indices, so identity-order vtrees
// (right-linear, balanced) cannot exploit the grid structure.
Cnf ShuffledGridCnf(size_t rows, size_t cols, uint64_t seed) {
  const size_t n = rows * cols;
  std::vector<Var> label(n);
  std::iota(label.begin(), label.end(), 0);
  Rng rng(seed);
  for (size_t i = n; i > 1; --i) {
    std::swap(label[i - 1], label[rng.Below(i)]);
  }
  Cnf cnf(n);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const size_t cell = r * cols + c;
      if (c + 1 < cols) {
        cnf.AddClause({Neg(label[cell]), Pos(label[cell + 1])});
      }
      if (r + 1 < rows) {
        cnf.AddClause({Pos(label[cell]), Neg(label[cell + cols])});
      }
    }
  }
  return cnf;
}

double g_sink = 0.0;

struct ShapeResult {
  size_t size = 0;      // SDD elements (deterministic per shape)
  size_t nodes = 0;     // decision nodes
  double median_ms = 0.0;
};

ShapeResult CompileWith(const Cnf& cnf, const Vtree& vt) {
  ShapeResult r;
  std::vector<double> times;
  for (int run = 0; run < kRuns; ++run) {
    SddManager mgr(vt);
    const Timer timer;
    const SddId f = CompileCnf(mgr, cnf);
    times.push_back(timer.Millis());
    r.size = mgr.Size(f);
    r.nodes = mgr.NumDecisionNodes(f);
    g_sink += static_cast<double>(mgr.Size(f));
  }
  std::sort(times.begin(), times.end());
  r.median_ms = times[times.size() / 2];
  return r;
}

// Dynamic-minimization comparison: the same seeded local search over
// rotate/swap neighbors, executed in place on the live SDD vs by
// recompiling the CNF for every candidate. Equal-or-smaller size at a
// fraction of the wall-clock is the acceptance bar for the in-place path.
//
// Cost models: dynamic minimization is a post-compile operation, so the
// in-place column times only the edit search on an already compiled and
// garbage-collected SDD (the shared setup). The recompile search's very
// method is compilation — its timing is the candidate compiles it runs
// (including its one incumbent compile, 1/(budget+1) of its loop).
constexpr size_t kMinimizeBudget = 40;
constexpr uint64_t kMinimizeSeed = 17;
constexpr int kMinimizeRuns = 3;

struct MinimizeColumn {
  size_t size = 0;       // best SDD size found (historical +1 convention)
  size_t iterations = 0;
  double median_ms = 0.0;
};

struct MinimizeOutcome {
  size_t size = 0;
  size_t iterations = 0;
};

// `search` performs one full search, reporting the wall-clock of its
// timed region (setup excluded) through the out-parameter.
template <typename SearchFn>
MinimizeColumn MeasureMinimize(SearchFn&& search) {
  MinimizeColumn col;
  std::vector<double> times;
  for (int run = 0; run < kMinimizeRuns; ++run) {
    double ms = 0.0;
    const MinimizeOutcome r = search(ms);
    times.push_back(ms);
    col.size = r.size;
    col.iterations = r.iterations;
    g_sink += static_cast<double>(r.size);
  }
  std::sort(times.begin(), times.end());
  col.median_ms = times[times.size() / 2];
  return col;
}

struct FamilyRow {
  std::string family;
  size_t n = 0;
  uint32_t width = 0;        // forecast best width
  uint32_t width_lb = 0;     // degeneracy lower bound
  ShapeResult right, balanced, minfill;
  MinimizeColumn min_inplace, min_recompile;
};

FamilyRow Measure(const std::string& family, const Cnf& cnf) {
  FamilyRow row;
  row.family = family;
  row.n = cnf.num_vars();
  const std::vector<Var> identity = Vtree::IdentityOrder(cnf.num_vars());
  row.right = CompileWith(cnf, Vtree::RightLinear(identity));
  row.balanced = CompileWith(cnf, Vtree::Balanced(identity));
  const StructureReport report = AnalyzeCnfStructure(cnf);
  row.width = report.best_width();
  row.width_lb = report.width_lower_bound;
  row.minfill = CompileWith(cnf, VtreeForCnf(report));
  // Both searches start from the worst shape above (right-linear) and walk
  // the identical seeded neighbor sequence.
  const Vtree start = Vtree::RightLinear(identity);
  row.min_inplace = MeasureMinimize([&](double& ms) {
    SddManager mgr(start);
    mgr.set_auto_minimize(SddAutoMinimizeOptions{});
    SddId root = CompileCnf(mgr, cnf);
    root = mgr.GarbageCollect(root);
    const Timer timer;
    const SddInPlaceMinimizeResult r =
        MinimizeSddInPlace(mgr, root, kMinimizeBudget, kMinimizeSeed);
    ms = timer.Millis();
    return MinimizeOutcome{r.size + 1, r.iterations};
  });
  row.min_recompile = MeasureMinimize([&](double& ms) {
    const Timer timer;
    const MinimizeResult r = MinimizeVtreeByRecompile(
        cnf, start, kMinimizeBudget, kMinimizeSeed, Guard::Unlimited());
    ms = timer.Millis();
    return MinimizeOutcome{r.size, r.iterations};
  });
  return row;
}

void PrintShape(std::FILE* out, const char* name, const ShapeResult& r,
                bool last) {
  std::fprintf(out,
               "      \"%s\": {\"size\": %zu, \"nodes\": %zu, "
               "\"median_ms\": %.3f}%s\n",
               name, r.size, r.nodes, r.median_ms, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<FamilyRow> rows;
  // Fig 8 family: same n/m/seed grid as bench_fig8_model_counting.
  for (size_t n : {12, 16, 20, 24, 28, 32}) {
    rows.push_back(Measure("fig8_random3cnf_n" + std::to_string(n),
                           RandomCnf(n, n * 3, 7 + n)));
  }
  // Label-shuffled grids: bounded width hidden behind random numbering.
  for (size_t cols : {4, 5}) {
    rows.push_back(Measure("grid4x" + std::to_string(cols) + "_shuffled",
                           ShuffledGridCnf(4, cols, 11 + cols)));
  }

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }
  std::fprintf(out,
               "{\n  \"median_of\": %d,\n  \"minimize\": "
               "{\"budget\": %zu, \"seed\": %llu, \"median_of\": %d},\n"
               "  \"families\": [\n",
               kRuns, kMinimizeBudget,
               static_cast<unsigned long long>(kMinimizeSeed), kMinimizeRuns);
  for (size_t i = 0; i < rows.size(); ++i) {
    const FamilyRow& r = rows[i];
    std::fprintf(out,
                 "    {\"family\": \"%s\", \"vars\": %zu, "
                 "\"forecast_width\": %u, \"width_lower_bound\": %u,\n",
                 r.family.c_str(), r.n, r.width, r.width_lb);
    PrintShape(out, "right", r.right, false);
    PrintShape(out, "balanced", r.balanced, false);
    PrintShape(out, "minfill", r.minfill, false);
    std::fprintf(out,
                 "      \"minimize_inplace\": {\"size\": %zu, "
                 "\"iterations\": %zu, \"median_ms\": %.3f},\n",
                 r.min_inplace.size, r.min_inplace.iterations,
                 r.min_inplace.median_ms);
    std::fprintf(out,
                 "      \"minimize_recompile\": {\"size\": %zu, "
                 "\"iterations\": %zu, \"median_ms\": %.3f}\n",
                 r.min_recompile.size, r.min_recompile.iterations,
                 r.min_recompile.median_ms);
    std::fprintf(out, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  if (out != stdout) std::fclose(out);
  std::fprintf(stderr, "sink=%.6f\n", g_sink);
  return 0;
}
