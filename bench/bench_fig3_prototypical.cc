// Figure 3 / §2.1: the prototypical problems SAT, MAJSAT, E-MAJSAT and
// MAJMAJSAT — the complete problems of NP ⊆ PP ⊆ NP^PP ⊆ PP^PP — decided
// by compiling the formula into a tractable circuit of the right type.
// Run on the paper's running-example circuit and on a random 3-CNF sweep.

#include <cstdio>
#include <set>

#include "base/random.h"
#include "base/timer.h"
#include "core/solvers.h"

namespace {

tbc::Cnf RandomCnf(size_t n, size_t m, uint64_t seed) {
  tbc::Rng rng(seed);
  tbc::Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<tbc::Var> vars;
    while (vars.size() < 3) vars.insert(static_cast<tbc::Var>(rng.Below(n)));
    tbc::Clause c;
    for (tbc::Var v : vars) c.push_back(tbc::Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

}  // namespace

int main() {
  using namespace tbc;
  std::printf("=== Fig 3 / Sec 2.1: prototypical problems of the ladder ===\n");

  // The running-example circuit Δ over 4 inputs (9 of 16 models).
  Cnf delta(4);
  delta.AddClauseDimacs({4, 3});
  delta.AddClauseDimacs({-1, 4});
  delta.AddClauseDimacs({-2, 1, 3});
  std::printf("\npaper circuit Delta (4 vars, 9/16 models):\n");
  std::printf("  SAT        (NP)    : %s\n",
              CircuitSolvers::DecideSat(delta) ? "yes" : "no");
  std::printf("  #SAT               : %s\n",
              CircuitSolvers::CountSat(delta).ToString().c_str());
  std::printf("  MAJSAT     (PP)    : %s  (9*2 > 16)\n",
              CircuitSolvers::DecideMajSat(delta) ? "yes" : "no");
  std::printf("  E-MAJSAT   (NP^PP) : %s  (split Y={x1,x2}, Z={x3,x4})\n",
              CircuitSolvers::DecideEMajSat(delta, {0, 1}) ? "yes" : "no");
  std::printf("  max_y #z           : %s of 4\n",
              CircuitSolvers::MaxCountOverY(delta, {0, 1}).ToString().c_str());
  std::printf("  MAJMAJSAT  (PP^PP) : %s\n",
              CircuitSolvers::DecideMajMajSat(delta, {0, 1}) ? "yes" : "no");

  std::printf("\nrandom 3-CNF sweep (m = 3.5n, Y = first n/3 vars):\n");
  std::printf("%-6s %-6s %-5s %-7s %-9s %-10s %-10s\n", "n", "m", "SAT",
              "MAJSAT", "E-MAJSAT", "MAJMAJSAT", "time(ms)");
  for (size_t n : {10, 14, 18, 22}) {
    const size_t m = n * 7 / 2;
    Cnf cnf = RandomCnf(n, m, 1000 + n);
    std::vector<Var> y;
    for (Var v = 0; v < n / 3; ++v) y.push_back(v);
    Timer t;
    const bool sat = CircuitSolvers::DecideSat(cnf);
    const bool majsat = CircuitSolvers::DecideMajSat(cnf);
    const bool emaj = CircuitSolvers::DecideEMajSat(cnf, y);
    const bool majmaj = CircuitSolvers::DecideMajMajSat(cnf, y);
    std::printf("%-6zu %-6zu %-5d %-7d %-9d %-10d %-10.2f\n", n, m, sat,
                majsat, emaj, majmaj, t.Millis());
  }
  std::printf("\npaper shape: one compilation unlocks the whole ladder; the\n"
              "harder classes reuse the same circuits with different passes.\n");
  return 0;
}
