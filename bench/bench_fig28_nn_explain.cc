// Figure 28: explaining the decisions of a neural network. The paper's
// CNN on 16x16 USPS digits is unavailable; a binarized network is trained
// on synthetic 8x8 digit-like images and compiled to an OBDD exactly
// (DESIGN.md substitutions). The compiled circuit yields a sufficient
// reason with a handful of pixels out of 64 — the Fig 28 phenomenon
// (3 pixels out of 256 for the paper's CNN).

#include <cstdio>

#include "base/timer.h"
#include "vtree/vtree.h"
#include "xai/bnn.h"
#include "xai/explain.h"

int main() {
  using namespace tbc;
  std::printf("=== Fig 28: explaining a neural network's decisions ===\n\n");

  const size_t width = 8, height = 8, pixels = width * height;
  DigitDataset train = MakeDigitDataset(width, height, 300, 0.03, 11);
  DigitDataset test = MakeDigitDataset(width, height, 100, 0.03, 99);

  BinarizedNeuralNet net =
      BinarizedNeuralNet::Convolutional(width, height, /*patch=*/4,
                                        /*num_hidden=*/6, /*seed=*/19);
  net.Train(train.images, train.labels, 15);
  std::printf("network: %zu inputs (8x8 image), %zu hidden threshold "
              "neurons with 4x4 receptive fields\n",
              net.num_inputs(), net.num_hidden());
  std::printf("accuracy: train %.2f%%, test %.2f%%\n",
              100.0 * net.Accuracy(train.images, train.labels),
              100.0 * net.Accuracy(test.images, test.labels));

  Timer t;
  ObddManager mgr(Vtree::IdentityOrder(pixels));
  const ObddId f = net.CompileToObdd(mgr);
  std::printf("compiled to OBDD: %zu nodes in %.1f ms (exact input-output "
              "behavior)\n\n",
              mgr.Size(f), t.Millis());

  // Explain a few correctly classified test images.
  std::printf("sufficient reasons for individual classifications:\n");
  int shown = 0;
  for (size_t i = 0; i < test.images.size() && shown < 4; ++i) {
    if (net.Classify(test.images[i]) != test.labels[i]) continue;
    const Term reason = AnySufficientReason(mgr, f, test.images[i]);
    std::printf("  image #%zu (digit %d): decision fixed by %zu of %zu "
                "pixels\n",
                i, test.labels[i] ? 1 : 0, reason.size(), pixels);
    ++shown;
  }

  // Visualize one reason as a mask.
  for (size_t i = 0; i < test.images.size(); ++i) {
    if (!test.labels[i] || !net.Classify(test.images[i])) continue;
    const Term reason = AnySufficientReason(mgr, f, test.images[i]);
    std::printf("\nimage classified as digit 1 (left) and its sufficient "
                "reason mask (right, # = pixel in reason):\n");
    std::vector<int8_t> mask(pixels, 0);
    for (Lit l : reason) mask[l.var()] = 1;
    for (size_t r = 0; r < height; ++r) {
      std::printf("  ");
      for (size_t c = 0; c < width; ++c) {
        std::printf("%c", test.images[i][r * width + c] ? '*' : '.');
      }
      std::printf("    ");
      for (size_t c = 0; c < width; ++c) {
        std::printf("%c", mask[r * width + c] ? '#' : '.');
      }
      std::printf("\n");
    }
    std::printf("\nas long as the %zu masked pixels keep their values, the "
                "network outputs digit 1\nregardless of the other %zu "
                "pixels (paper: 3 pixels out of 256).\n",
                reason.size(), pixels - reason.size());
    break;
  }
  return 0;
}
