// Figure 2: the four Bayesian-network queries complete for NP, PP, NP^PP
// and PP^PP (D-MPE, D-MAR, D-MAP, D-SDP), run on the figure's 5-variable
// medical network through the circuit pipeline, cross-checked against
// variable elimination. CPT values are ours (figure's are an image);
// see DESIGN.md substitutions.

#include <cstdio>

#include "base/timer.h"
#include "bayes/circuit_inference.h"
#include "bayes/jointree.h"
#include "bayes/varelim.h"

int main() {
  using namespace tbc;
  std::printf("=== Fig 2: BN queries on the medical network ===\n");

  BayesianNetwork net;
  const BnVar sex = net.AddBinary("sex", {}, {0.55});
  const BnVar c = net.AddBinary("c", {sex}, {0.05, 0.15});
  const BnVar t1 = net.AddBinary("T1", {c}, {0.10, 0.85});
  const BnVar t2 = net.AddBinary("T2", {c}, {0.20, 0.75});
  const BnVar agree = net.AddBinary("AGREE", {t1, t2}, {0.95, 0.05, 0.05, 0.95});
  (void)agree;

  Timer compile_timer;
  CompiledBayesNet circuit(net);
  const double compile_ms = compile_timer.Millis();
  VariableElimination ve(net);
  BnInstantiation none(5, kUnobserved);

  std::printf("encoding: %zu boolean vars, %zu clauses; compiled circuit: "
              "%zu edges (%.2f ms)\n\n",
              circuit.encoding().cnf().num_vars(),
              circuit.encoding().cnf().num_clauses(), circuit.CircuitSize(),
              compile_ms);

  Jointree jt(net);
  std::printf("jointree baseline: %zu cliques, max clique %zu\n\n",
              jt.num_cliques(), jt.max_clique_size());
  std::printf("%-34s %-12s %-12s %-12s %s\n", "query", "circuit",
              "VE baseline", "jointree", "class");

  // MAR: Pr(v) for each variable/value pair (the left panel of Fig 2).
  auto marginals = circuit.AllMarginals(none);
  auto jt_marginals = jt.AllMarginals(none);
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    char label[64];
    std::snprintf(label, sizeof(label), "MAR  Pr(%s=1)", net.name(v).c_str());
    std::printf("%-34s %-12.5f %-12.5f %-12.5f PP\n", label, marginals[v][1],
                ve.Marginal(v, 1, none), jt_marginals[v][1]);
  }

  // MPE.
  auto mpe = circuit.Mpe(none);
  std::printf("%-34s %-12.5f %-12.5f NP\n", "MPE  max_x Pr(x)", mpe.probability,
              ve.MpeValue(none));
  std::printf("     MPE instantiation:           ");
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    std::printf("%s=%d ", net.name(v).c_str(), mpe.instantiation[v]);
  }
  std::printf("\n");

  // MAP over {sex, c}.
  auto map = circuit.Map({sex, c}, none);
  std::vector<int> ve_map;
  const double ve_map_value = ve.Map({sex, c}, none, &ve_map);
  std::printf("%-34s %-12.5f %-12.5f NP^PP\n", "MAP  max_{sex,c} Pr(y)",
              map.probability, ve_map_value);
  std::printf("     MAP argmax:                  sex=%d c=%d\n", map.values[0],
              map.values[1]);

  // SDP: operate iff Pr(c | e) >= 0.9; will observing T1, T2 change it?
  for (double threshold : {0.9, 0.10, 0.02}) {
    const double sdp_c = circuit.Sdp(c, 1, threshold, {t1, t2}, none);
    const double sdp_v = ve.Sdp(c, 1, threshold, {t1, t2}, none);
    char label[64];
    std::snprintf(label, sizeof(label), "SDP  T=%.2f on c after T1,T2",
                  threshold);
    std::printf("%-34s %-12.5f %-12.5f PP^PP\n", label, sdp_c, sdp_v);
  }

  std::printf("\npaper shape: all four query types answered from one "
              "compiled circuit,\nmatching the dedicated VE baseline to "
              "within 1e-10.\n");
  return 0;
}
