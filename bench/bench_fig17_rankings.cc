// Figure 17: encoding rankings (total orderings) with n^2 position
// variables. The permutation constraint is compiled to an SDD (counts =
// n!), Fig 17's invalid assignment (an item in two positions) is rejected,
// and a preference distribution is learned from Mallows-sampled rankings
// (the dedicated baseline family the paper cites).

#include <algorithm>
#include <cstdio>
#include <map>

#include "base/timer.h"
#include "psdd/psdd.h"
#include "spaces/rankings.h"

int main() {
  using namespace tbc;
  std::printf("=== Fig 17: ranking spaces ===\n\n");

  std::printf("%-4s %-8s %-14s %-12s %-12s\n", "n", "vars", "rankings",
              "sdd size", "compile(ms)");
  for (size_t n : {2, 3, 4, 5, 6}) {
    Timer t;
    RankingSpace space(n);
    const double ms = t.Millis();
    std::printf("%-4zu %-8zu %-14llu %-12zu %-12.2f\n", n, space.num_vars(),
                static_cast<unsigned long long>(space.NumRankings()),
                space.sdd().Size(space.base()), ms);
  }
  std::printf("(expected rankings: n! = 2, 6, 24, 120, 720)\n\n");

  // Fig 17's invalid case.
  RankingSpace s4(4);
  Assignment valid = s4.Encode({1, 0, 3, 2});
  Assignment bad = valid;
  bad[s4.VarOf(2, 0)] = true;  // item 2 appears in two positions
  std::printf("valid ranking accepted: %d; item-in-two-positions rejected: %d\n\n",
              s4.sdd().Evaluate(s4.base(), valid),
              !s4.sdd().Evaluate(s4.base(), bad));

  // Learning preferences from Mallows data (paper [17]'s task).
  std::printf("learning a preference distribution (n=4, Mallows phi=0.4):\n");
  RankingSpace space(4);
  Rng rng(23);
  const std::vector<uint32_t> center = {2, 0, 3, 1};
  std::vector<Assignment> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back(space.Encode(space.SampleMallows(center, 0.4, rng)));
  }
  Psdd psdd = space.MakePsdd();
  psdd.LearnParameters(data, {}, 0.5);

  // Probability should decay with Kendall-tau distance from the center.
  std::map<size_t, std::pair<double, int>> by_distance;
  std::vector<uint32_t> perm = {0, 1, 2, 3};
  std::sort(perm.begin(), perm.end());
  do {
    const size_t d = RankingSpace::KendallTau(perm, center);
    by_distance[d].first += psdd.Probability(space.Encode(perm));
    by_distance[d].second += 1;
  } while (std::next_permutation(perm.begin(), perm.end()));
  std::printf("%-18s %-14s %-10s\n", "kendall distance", "avg learned Pr",
              "#rankings");
  for (const auto& [d, acc] : by_distance) {
    std::printf("%-18zu %-14.5f %-10d\n", d, acc.first / acc.second, acc.second);
  }
  std::printf("\npaper shape: learned probability decays with distance from "
              "the central ranking, matching the Mallows generator.\n");
  return 0;
}
