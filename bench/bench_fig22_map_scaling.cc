// Figure 22: scaling map compilation hierarchically. The paper's San
// Francisco map (10,500 edges, compiled to an 8.9M-edge PSDD via a
// hierarchical map) is proprietary GPS-backed data; we reproduce the
// *shape* on synthetic grids (DESIGN.md substitutions): hierarchical
// compilation stays far smaller than flat compilation as maps grow, at the
// cost of restricting routes to enter each region at most once.

#include <cstdio>

#include "base/timer.h"
#include "spaces/hierarchical.h"

int main() {
  using namespace tbc;
  std::printf("=== Fig 22: hierarchical vs flat map compilation ===\n\n");
  std::printf("%-8s %-7s %-7s %-11s %-11s %-8s %-14s %-12s\n", "grid",
              "edges", "block", "flat nodes", "hier nodes", "ratio",
              "flat routes", "hier routes");

  struct Config {
    size_t n, block;
  };
  for (const Config cfg : {Config{4, 2}, {6, 2}, {6, 3}, {8, 2}}) {
    HierarchicalMap map(cfg.n, cfg.n, cfg.block);
    const GraphNode s = 0;
    const GraphNode t = static_cast<GraphNode>(map.grid().num_nodes() - 1);
    Timer timer;
    const auto stats = map.Compile(s, t);
    const double ms = timer.Millis();
    char label[16];
    std::snprintf(label, sizeof(label), "%zux%zu", cfg.n, cfg.n);
    std::printf("%-8s %-7zu %-7zu %-11zu %-11zu %-8.2f %-14llu %-12llu  "
                "(%.0f ms)\n",
                label, map.grid().num_edges(), cfg.block, stats.flat_nodes,
                stats.hier_nodes,
                static_cast<double>(stats.flat_nodes) /
                    static_cast<double>(stats.hier_nodes),
                static_cast<unsigned long long>(stats.flat_routes),
                static_cast<unsigned long long>(stats.hier_routes), ms);
  }
  std::printf("\npaper reference point: SF map with 10,500 edges -> 8.9M-edge "
              "PSDD via the hierarchical construction [79].\n");
  std::printf("paper shape: the hierarchical representation is smaller and "
              "the gap widens with map size; its route space is the\n"
              "region-entered-at-most-once approximation the hierarchical-"
              "map line adopts.\n");
  return 0;
}
