// Figure 16: encoding routes using circuits. Grid route spaces are
// compiled with the Simpath frontier algorithm; satisfying assignments are
// verified to be exactly the valid (connected, simple) routes, counts are
// cross-checked against DFS enumeration, and a PSDD is trained on
// synthetic GPS traces.

#include <cstdio>

#include "base/timer.h"
#include "psdd/psdd.h"
#include "spaces/graph.h"
#include "spaces/routes.h"

int main() {
  using namespace tbc;
  std::printf("=== Fig 16: route spaces on grids ===\n\n");

  std::printf("%-8s %-8s %-12s %-12s %-12s %-12s\n", "grid", "edges",
              "routes(DD)", "routes(DFS)", "obdd nodes", "compile(ms)");
  for (size_t n : {2, 3, 4, 5}) {
    Graph g = Graph::Grid(n, n);
    const GraphNode s = 0, t = static_cast<GraphNode>(g.num_nodes() - 1);
    Timer timer;
    ObddManager mgr(Vtree::IdentityOrder(g.num_edges()));
    const ObddId f = CompileSimplePaths(mgr, g, s, t);
    const double ms = timer.Millis();
    const uint64_t dd_count = mgr.ModelCount(f).ToU64();
    const uint64_t dfs_count = n <= 5 ? g.CountSimplePaths(s, t) : 0;
    char label[16];
    std::snprintf(label, sizeof(label), "%zux%zu", n, n);
    std::printf("%-8s %-8zu %-12llu %-12llu %-12zu %-12.2f\n", label,
                g.num_edges(), static_cast<unsigned long long>(dd_count),
                static_cast<unsigned long long>(dfs_count), mgr.Size(f), ms);
  }

  // Fig 16's red/orange check: valid vs invalid assignments.
  std::printf("\nvalidity of assignments (Fig 16's red vs orange):\n");
  Graph g = Graph::Grid(3, 3);
  ObddManager mgr(Vtree::IdentityOrder(g.num_edges()));
  const ObddId f = CompileSimplePaths(mgr, g, 0, 8);
  size_t valid = 0, invalid = 0, mismatches = 0;
  for (int bits = 0; bits < (1 << 12); ++bits) {
    Assignment a(12);
    for (Var v = 0; v < 12; ++v) a[v] = (bits >> v) & 1;
    const bool circuit_says = mgr.Evaluate(f, a);
    const bool really_path = g.IsSimplePath(a, 0, 8);
    mismatches += circuit_says != really_path;
    (circuit_says ? valid : invalid)++;
  }
  std::printf("  4096 edge assignments: %zu valid routes, %zu invalid, "
              "%zu circuit/oracle mismatches\n",
              valid, invalid, mismatches);

  // Learning a route distribution (the [16] use case).
  std::printf("\nPSDD over 4x4 routes trained on 300 synthetic GPS traces:\n");
  Graph g4 = Graph::Grid(4, 4);
  RouteSpace space(g4, 0, 15);
  Rng rng(11);
  std::vector<Assignment> gps;
  const Assignment commute = space.RandomRoute(rng);
  for (int i = 0; i < 300; ++i) {
    gps.push_back(i % 4 == 0 ? space.RandomRoute(rng) : commute);
  }
  Psdd psdd = space.MakePsdd();
  psdd.LearnParameters(gps, {}, 0.5);
  std::printf("  Pr(commute route) = %.3f (75%% of traces)\n",
              psdd.Probability(commute));
  std::printf("  Pr(all-streets assignment) = %.3f (invalid -> 0)\n",
              psdd.Probability(Assignment(g4.num_edges(), true)));
  std::printf("\npaper shape: satisfying inputs = valid connected routes; "
              "invalid edge sets excluded by construction.\n");
  return 0;
}
