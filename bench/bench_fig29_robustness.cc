// Figure 29: robustness analysis of two neural networks with the same
// architecture but different training seeds. The paper's CNNs (16x16
// digits; accuracies 98.18/96.93; SDD sizes 3653/440; model robustness
// 11.77/3.62; max 27/13) are unavailable — binarized nets on synthetic
// 5x5 digit images reproduce the shape (DESIGN.md substitutions): similar
// accuracies, very different compiled sizes and robustness, and the full
// robustness histogram over all 2^25 instances from the circuit alone.

#include <algorithm>
#include <cstdio>

#include "vtree/vtree.h"
#include "xai/bnn.h"
#include "xai/robustness.h"

int main() {
  using namespace tbc;
  std::printf("=== Fig 29: robustness of two equal-architecture networks ===\n\n");

  const size_t width = 5, height = 5, pixels = width * height;
  DigitDataset train = MakeDigitDataset(width, height, 300, 0.04, 21);
  DigitDataset test = MakeDigitDataset(width, height, 150, 0.04, 22);

  struct NetReport {
    double accuracy;
    size_t circuit;
    ModelRobustnessResult robustness;
  };
  std::vector<NetReport> reports;
  const uint64_t seeds[2] = {13, 3};
  for (int k = 0; k < 2; ++k) {
    BinarizedNeuralNet net = BinarizedNeuralNet::Convolutional(
        width, height, /*patch=*/3, /*num_hidden=*/5, seeds[k]);
    net.Train(train.images, train.labels, 15);
    ObddManager mgr(Vtree::IdentityOrder(pixels));
    const ObddId f = net.CompileToObdd(mgr);
    reports.push_back(
        {net.Accuracy(test.images, test.labels), mgr.Size(f),
         ModelRobustness(mgr, f)});
  }

  std::printf("%-10s %-12s %-14s %-18s %-10s\n", "network", "accuracy",
              "OBDD nodes", "model robustness", "max");
  for (int k = 0; k < 2; ++k) {
    std::printf("Net %-6d %-12.4f %-14zu %-18.3f %-10zu\n", k + 1,
                reports[k].accuracy, reports[k].circuit,
                reports[k].robustness.average, reports[k].robustness.maximum);
  }
  std::printf("(paper: accuracies 0.9818/0.9693; SDD sizes 3653/440; "
              "robustness 11.77/3.62; max 27/13)\n\n");

  std::printf("robustness histogram: proportion of all 2^%zu instances per "
              "level (the Fig 29 series)\n", pixels);
  std::printf("%-8s %-14s %-14s\n", "level", "Net 1", "Net 2");
  const double total = BigUint::PowerOfTwo(static_cast<unsigned>(pixels)).ToDouble();
  const size_t max_level =
      std::max(reports[0].robustness.maximum, reports[1].robustness.maximum);
  for (size_t k = 1; k <= max_level; ++k) {
    auto frac = [&](const NetReport& r) {
      return k < r.robustness.histogram.size()
                 ? r.robustness.histogram[k].ToDouble() / total
                 : 0.0;
    };
    std::printf("%-8zu %-14.6f %-14.6f\n", k, frac(reports[0]), frac(reports[1]));
  }
  std::printf("\npaper shape: equal architectures and similar accuracies, "
              "but one net is far more robust than the other; the circuit\n"
              "reports the robustness of every instance without "
              "enumeration.\n");
  return 0;
}
