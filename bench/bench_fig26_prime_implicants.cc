// Figure 26: prime implicants and sufficient reasons — exact reproduction.
// f = (A + ¬C)(B + C)(A + B): PIs {AB, AC, B¬C}; instance AB¬C has
// sufficient reasons {AB, B¬C}; ¬f's PIs are {¬A¬B, ¬AC, ¬B¬C} and the
// negative instance ¬ABC has the single sufficient reason ¬AC.

#include <algorithm>
#include <set>
#include <cstdio>

#include "vtree/vtree.h"
#include "xai/explain.h"

namespace {
void PrintTerms(const char* label, const std::vector<tbc::Term>& terms) {
  const char* names = "ABC";
  std::printf("%-22s", label);
  for (const tbc::Term& t : terms) {
    std::printf(" ");
    for (tbc::Lit l : t) {
      std::printf("%s%c", l.positive() ? "" : "~", names[l.var()]);
    }
  }
  std::printf("\n");
}
}  // namespace

int main() {
  using namespace tbc;
  std::printf("=== Fig 26: prime implicants of Boolean functions ===\n\n");

  ObddManager mgr(Vtree::IdentityOrder(3));
  const ObddId a = mgr.LiteralNode(Pos(0));
  const ObddId b = mgr.LiteralNode(Pos(1));
  const ObddId c = mgr.LiteralNode(Pos(2));
  const ObddId f =
      mgr.And(mgr.And(mgr.Or(a, mgr.Not(c)), mgr.Or(b, c)), mgr.Or(a, b));

  std::printf("f = (A + ~C)(B + C)(A + B)\n");
  PrintTerms("prime implicants f:", PrimeImplicants(mgr, f));
  std::printf("  paper: AB, AC, B~C\n");
  PrintTerms("prime implicants ~f:", PrimeImplicants(mgr, mgr.Not(f)));
  std::printf("  paper: ~A~B, ~AC, ~B~C\n\n");

  std::printf("instance AB~C, decision f = 1\n");
  PrintTerms("sufficient reasons:", SufficientReasons(mgr, f, {true, true, false}));
  std::printf("  paper: AB and B~C\n\n");

  std::printf("instance ~ABC, decision f = 0\n");
  PrintTerms("sufficient reasons:", SufficientReasons(mgr, f, {false, true, true}));
  std::printf("  paper: only ~AC is compatible\n\n");

  // Cross-check against the Quine-McCluskey oracle.
  BooleanClassifier oracle{3, [](const Assignment& x) {
                             return (x[0] || !x[2]) && (x[1] || x[2]) &&
                                    (x[0] || x[1]);
                           }};
  const auto qmc = PrimeImplicantsQmc(oracle);
  const auto bdd = PrimeImplicants(mgr, f);
  std::printf("OBDD enumeration vs Quine-McCluskey: %zu vs %zu prime "
              "implicants, %s\n",
              bdd.size(), qmc.size(),
              std::set<Term>(bdd.begin(), bdd.end()) ==
                      std::set<Term>(qmc.begin(), qmc.end())
                  ? "identical"
                  : "MISMATCH");
  return 0;
}
