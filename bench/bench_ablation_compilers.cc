// Ablation bench (DESIGN.md design choices): quantifies the compiler
// techniques the paper's §6 outlook says knowledge compilation lives on —
// component decomposition and component caching in the top-down compiler,
// and vtree choice for the bottom-up SDD compiler.

#include <cstdio>
#include <set>

#include "base/random.h"
#include "base/timer.h"
#include "compiler/ddnnf_compiler.h"
#include "nnf/queries.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace {

using namespace tbc;

Cnf RandomCnf(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < 3) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

// Two loosely coupled halves: decomposition-friendly.
Cnf StructuredCnf(size_t half, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(2 * half);
  for (int side = 0; side < 2; ++side) {
    for (size_t i = 0; i < 3 * half; ++i) {
      std::set<Var> vars;
      while (vars.size() < 3) {
        vars.insert(static_cast<Var>(side * half + rng.Below(half)));
      }
      Clause c;
      for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
      cnf.AddClause(c);
    }
  }
  // One bridging clause.
  cnf.AddClause({Pos(0), Neg(static_cast<Var>(half)),
                 Pos(static_cast<Var>(2 * half - 1))});
  return cnf;
}

void RunDdnnfAblation(const char* name, const Cnf& cnf) {
  std::printf("\n%s (%zu vars, %zu clauses):\n", name, cnf.num_vars(),
              cnf.num_clauses());
  std::printf("%-22s %-11s %-11s %-11s %-9s %-10s\n", "configuration",
              "decisions", "cache hits", "edges", "time(ms)", "count");
  for (int mask = 0; mask < 4; ++mask) {
    const bool comps = mask & 1;
    const bool cache = mask & 2;
    DdnnfCompiler compiler({.use_components = comps, .use_cache = cache});
    NnfManager mgr;
    Timer t;
    const NnfId root = compiler.Compile(cnf, mgr);
    const double ms = t.Millis();
    char label[32];
    std::snprintf(label, sizeof(label), "components=%d cache=%d", comps, cache);
    std::printf("%-22s %-11llu %-11llu %-11zu %-9.1f %s\n", label,
                static_cast<unsigned long long>(compiler.stats().decisions),
                static_cast<unsigned long long>(compiler.stats().cache_hits),
                mgr.CircuitSize(root), ms,
                ModelCount(mgr, root, cnf.num_vars()).ToString().c_str());
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation: what makes knowledge compilers fast ===\n");

  RunDdnnfAblation("random 3-CNF", RandomCnf(26, 78, 5));
  RunDdnnfAblation("structured two-component CNF", StructuredCnf(14, 6));

  std::printf("\nSDD vtree ablation (same formula, different vtrees):\n");
  std::printf("%-24s %-12s %-12s %-10s\n", "vtree", "sdd size", "nodes",
              "time(ms)");
  Cnf cnf = StructuredCnf(8, 9);
  struct Shape {
    const char* name;
    Vtree vtree;
  };
  const size_t n = cnf.num_vars();
  std::vector<Var> interleaved;
  for (size_t i = 0; i < n / 2; ++i) {
    interleaved.push_back(static_cast<Var>(i));
    interleaved.push_back(static_cast<Var>(n / 2 + i));
  }
  Shape shapes[] = {
      {"balanced (identity)", Vtree::Balanced(Vtree::IdentityOrder(n))},
      {"right-linear", Vtree::RightLinear(Vtree::IdentityOrder(n))},
      {"balanced (interleaved)", Vtree::Balanced(interleaved)},
  };
  for (Shape& s : shapes) {
    SddManager mgr(std::move(s.vtree));
    Timer t;
    const SddId f = CompileCnf(mgr, cnf);
    std::printf("%-24s %-12zu %-12zu %-10.1f\n", s.name, mgr.Size(f),
                mgr.NumDecisionNodes(f), t.Millis());
  }
  std::printf("\npaper shape: decomposition + caching cut the search "
              "exponentially on decomposable inputs; SDD size is highly "
              "vtree-sensitive (linear to exponential).\n");
  return 0;
}
