// Figure 27: explaining admission decisions and detecting bias. The
// figure's OBDD is an image, so we use a 5-feature admissions classifier
// constructed to reproduce its reported explanation structure exactly
// (DESIGN.md substitutions): Robin's admission has 5 sufficient reasons,
// 3 containing the protected feature R (decision unbiased, classifier
// biased); Scott's has 4 sufficient reasons, all containing R (decision
// biased: "it will be reversed if Scott were not to come from a rich
// hometown").

#include <cstdio>

#include "nnf/nnf.h"
#include "vtree/vtree.h"
#include "xai/compile.h"
#include "xai/explain.h"

namespace {
// Features: E=0 entrance exam, F=1 first-time applicant, G=2 good GPA,
// W=3 work experience, R=4 rich hometown (protected).
// Truth table found by constrained search to match Fig 27's structure
// (index bit v = feature v, little-endian).
constexpr char kTable[33] = "01100010001001111111110100011111";

void PrintReasons(const char* who, const std::vector<tbc::Term>& reasons) {
  const char* names = "EFGWR";
  std::printf("%s: %zu sufficient reasons:\n", who, reasons.size());
  for (const tbc::Term& t : reasons) {
    std::printf("   {");
    for (tbc::Lit l : t) std::printf(" %s%c", l.positive() ? "" : "~", names[l.var()]);
    std::printf(" }\n");
  }
}
}  // namespace

int main() {
  using namespace tbc;
  std::printf("=== Fig 27: admission decisions, reasons and bias ===\n\n");

  BooleanClassifier admissions{5, [](const Assignment& x) {
                                 size_t i = 0;
                                 for (int v = 0; v < 5; ++v) {
                                   i |= static_cast<size_t>(x[v]) << v;
                                 }
                                 return kTable[i] == '1';
                               }};
  ObddManager mgr(Vtree::IdentityOrder(5));
  const ObddId f = CompileBruteForce(admissions, mgr);
  std::printf("admissions OBDD: %zu nodes; protected feature: R (rich "
              "hometown)\n\n",
              mgr.Size(f));
  const std::vector<Var> protected_vars = {4};

  // Robin: passed exam, first-time, good GPA, work experience, rich.
  const Assignment robin = {true, true, true, true, true};
  std::printf("Robin admitted: %s\n", mgr.Evaluate(f, robin) ? "yes" : "no");
  const auto robin_reasons = SufficientReasons(mgr, f, robin);
  PrintReasons("Robin", robin_reasons);
  int with_r = 0;
  for (const Term& t : robin_reasons) {
    for (Lit l : t) with_r += l.var() == 4;
  }
  std::printf("   reasons containing R: %d of %zu (paper: 3 of 5)\n", with_r,
              robin_reasons.size());
  std::printf("   decision biased: %s (paper: not biased)\n",
              IsDecisionBiased(mgr, f, robin, protected_vars) ? "YES" : "no");
  std::printf("   classifier biased: %s (paper: biased)\n\n",
              IsClassifierBiased(mgr, f, protected_vars) ? "YES" : "no");

  // Scott: passed exam, good GPA, rich hometown.
  const Assignment scott = {true, false, true, false, true};
  std::printf("Scott admitted: %s\n", mgr.Evaluate(f, scott) ? "yes" : "no");
  const auto scott_reasons = SufficientReasons(mgr, f, scott);
  PrintReasons("Scott", scott_reasons);
  int scott_with_r = 0;
  for (const Term& t : scott_reasons) {
    bool has = false;
    for (Lit l : t) has |= l.var() == 4;
    scott_with_r += has;
  }
  std::printf("   reasons containing R: %d of %zu (paper: all)\n", scott_with_r,
              scott_reasons.size());
  std::printf("   decision biased: %s (paper: biased - flips without the "
              "rich hometown)\n\n",
              IsDecisionBiased(mgr, f, scott, protected_vars) ? "YES" : "no");

  // Reason circuits (Fig 27 right), with a counterfactual query each.
  NnfManager nnf;
  const NnfId robin_reason = ReasonCircuit(mgr, f, robin, nnf);
  const NnfId scott_reason = ReasonCircuit(mgr, f, scott, nnf);
  std::printf("reason circuits: Robin %zu edges, Scott %zu edges "
              "(monotone, built in linear time)\n",
              nnf.CircuitSize(robin_reason), nnf.CircuitSize(scott_reason));
  std::printf("counterfactuals on Robin's reason circuit:\n");
  std::printf("   sticks without W (work experience)? %s\n",
              ReasonHoldsWithout(nnf, robin_reason, robin, {3}) ? "yes" : "no");
  std::printf("   sticks without R (rich hometown)?   %s\n",
              ReasonHoldsWithout(nnf, robin_reason, robin, {4}) ? "yes" : "no");
  std::printf("   sticks without R and E?             %s\n",
              ReasonHoldsWithout(nnf, robin_reason, robin, {4, 0}) ? "yes" : "no");
  return 0;
}
