// Section 2.2 / Figure 4: the core MAR -> WMC reduction [Darwiche 2002].
// The 3-variable network A -> {B, C} of Fig 4 is encoded into a Boolean
// formula whose 8 models are the network instantiations and whose weighted
// model count yields any marginal. Every event is swept and cross-checked.

#include <cstdio>

#include "bayes/network.h"
#include "bayes/varelim.h"
#include "bayes/wmc_encoding.h"
#include "compiler/model_counter.h"
#include "sat/enumerate.h"

int main() {
  using namespace tbc;
  std::printf("=== Sec 2.2 / Fig 4: MAR -> WMC reduction ===\n");

  BayesianNetwork net;
  const BnVar a = net.AddBinary("A", {}, {0.3});
  const BnVar b = net.AddBinary("B", {a}, {0.8, 0.2});
  const BnVar c = net.AddBinary("C", {a}, {0.1, 0.9});
  (void)b;
  (void)c;

  WmcEncoding enc(net);
  std::printf("network: 3 vars, 10 parameters (as in Fig 4)\n");
  std::printf("encoding: %zu boolean vars (6 indicators + 10 parameters), "
              "%zu clauses\n",
              enc.cnf().num_vars(), enc.cnf().num_clauses());

  const uint64_t models = CountModelsUpTo(enc.cnf(), 1000);
  std::printf("models of Delta: %llu (paper: \"exactly eight models, which "
              "correspond to the network instantiations\")\n\n",
              static_cast<unsigned long long>(models));

  ModelCounter counter;
  VariableElimination ve(net);
  std::printf("%-28s %-12s %-12s %-12s\n", "event alpha", "WMC(D^a)",
              "VE", "brute force");
  const double z = counter.Wmc(enc.cnf(), enc.weights());
  std::printf("%-28s %-12.6f %-12.6f %-12.6f\n", "true (normalization)", z,
              ve.ProbEvidence(BnInstantiation(3, kUnobserved)), 1.0);
  for (BnVar v = 0; v < 3; ++v) {
    for (int value = 0; value < 2; ++value) {
      BnInstantiation e(3, kUnobserved);
      e[v] = value;
      const double wmc = counter.Wmc(enc.cnf(), enc.WeightsWithEvidence(e));
      char label[32];
      std::snprintf(label, sizeof(label), "%s = %d", net.name(v).c_str(), value);
      std::printf("%-28s %-12.6f %-12.6f %-12.6f\n", label, wmc,
                  ve.Marginal(v, value, BnInstantiation(3, kUnobserved)),
                  net.MarginalBruteForce(v, value, BnInstantiation(3, kUnobserved)));
    }
  }
  // Pairwise events.
  for (int va = 0; va < 2; ++va) {
    for (int vb = 0; vb < 2; ++vb) {
      BnInstantiation e(3, kUnobserved);
      e[0] = va;
      e[1] = vb;
      const double wmc = counter.Wmc(enc.cnf(), enc.WeightsWithEvidence(e));
      char label[32];
      std::snprintf(label, sizeof(label), "A = %d, B = %d", va, vb);
      std::printf("%-28s %-12.6f %-12.6f\n", label, wmc, ve.ProbEvidence(e));
    }
  }
  std::printf("\npaper shape: Pr(alpha) = WMC(Delta ^ alpha) for every event; "
              "model weights are the joint probabilities of display (1).\n");
  return 0;
}
