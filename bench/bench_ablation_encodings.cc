// Encoding ablation (paper §2.2's closing claim): refined reductions that
// exploit 0/1 parameters "can be critical for the efficient computation of
// weighted model counts", and reduction-based approaches are state of the
// art "when the Bayesian network has an abundance of 0/1 probabilities".
// Networks with growing determinism are encoded both ways and compiled;
// the refined encoding's circuits shrink dramatically as determinism grows.

#include <cstdio>

#include "base/random.h"
#include "base/timer.h"
#include "bayes/network.h"
#include "bayes/varelim.h"
#include "bayes/wmc_encoding.h"
#include "compiler/ddnnf_compiler.h"
#include "nnf/queries.h"

namespace {

using namespace tbc;

// Chain-with-fanin network where a fraction of CPT rows is deterministic.
BayesianNetwork DeterministicNetwork(size_t n, double det_fraction,
                                     uint64_t seed) {
  Rng rng(seed);
  BayesianNetwork net;
  for (size_t v = 0; v < n; ++v) {
    std::vector<BnVar> parents;
    if (v >= 1) parents.push_back(static_cast<BnVar>(v - 1));
    if (v >= 3 && rng.Flip(0.5)) parents.push_back(static_cast<BnVar>(v - 3));
    const size_t rows = 1ull << parents.size();
    std::vector<double> cpt(rows);
    for (double& p : cpt) {
      p = rng.Flip(det_fraction) ? (rng.Flip(0.5) ? 0.0 : 1.0)
                                 : 0.05 + 0.9 * rng.Uniform();
    }
    net.AddBinary("x" + std::to_string(v), parents, cpt);
  }
  return net;
}

}  // namespace

int main() {
  std::printf("=== Ablation: exploiting 0/1 parameters in the encoding ===\n\n");
  std::printf("%-8s %-10s %-10s %-12s %-12s %-10s %-12s\n", "det%",
              "plain vars", "ref vars", "plain edges", "ref edges", "ratio",
              "agree");
  for (double det : {0.0, 0.3, 0.6, 0.9}) {
    const BayesianNetwork net = DeterministicNetwork(12, det, 17);
    WmcEncoding plain(net);
    WmcEncoding refined(net, {.exploit_determinism = true});

    NnfManager m1, m2;
    DdnnfCompiler c1, c2;
    const NnfId f1 = c1.Compile(plain.cnf(), m1);
    const NnfId f2 = c2.Compile(refined.cnf(), m2);

    // Agreement on all single-variable marginals.
    VariableElimination ve(net);
    bool agree = true;
    for (BnVar v = 0; v < net.num_vars(); ++v) {
      BnInstantiation e(net.num_vars(), kUnobserved);
      e[v] = 1;
      const double expected = ve.ProbEvidence(e);
      agree &= std::abs(Wmc(m1, f1, plain.WeightsWithEvidence(e)) - expected) < 1e-9;
      agree &= std::abs(Wmc(m2, f2, refined.WeightsWithEvidence(e)) - expected) < 1e-9;
    }

    std::printf("%-8.0f %-10zu %-10zu %-12zu %-12zu %-10.2f %-12s\n",
                det * 100, plain.num_bool_vars(), refined.num_bool_vars(),
                m1.CircuitSize(f1), m2.CircuitSize(f2),
                static_cast<double>(m1.CircuitSize(f1)) /
                    static_cast<double>(std::max<size_t>(1, m2.CircuitSize(f2))),
                agree ? "yes" : "NO");
  }
  std::printf("\npaper shape: the refined reduction wins, and its advantage "
              "grows with the fraction of 0/1 parameters.\n");
  return 0;
}
