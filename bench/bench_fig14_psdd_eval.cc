// Figures 13-14: PSDD semantics. A distribution is induced on the course
// constraint's SDD by annotating each or-gate input with a probability;
// Fig 14's compositional evaluation is reproduced: the 9 satisfying
// inputs' probabilities sum to 1, unsatisfying inputs get 0, and each
// or-gate induces a local distribution over its subcircuit variables.

#include <cstdio>

#include "psdd/learn.h"
#include "psdd/psdd.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

int main() {
  using namespace tbc;
  std::printf("=== Fig 13/14: PSDD evaluation semantics ===\n");
  const char* names[4] = {"A", "K", "L", "P"};

  Cnf constraint(4);
  constraint.AddClauseDimacs({4, 3});
  constraint.AddClauseDimacs({-1, 4});
  constraint.AddClauseDimacs({-2, 1, 3});
  SddManager mgr(Vtree::Balanced({2, 1, 3, 0}));
  const SddId base = CompileCnf(mgr, constraint);

  // Parameters learned from the Fig 15-shaped data (the paper's annotated
  // parameters are an image; DESIGN.md records the substitution).
  WeightedData data = WeightedData::FromCounts({
      {{false, false, true, false}, 54},
      {{false, false, false, true}, 98},
      {{false, false, true, true}, 76},
      {{false, true, true, false}, 33},
      {{false, true, true, true}, 77},
      {{true, false, false, true}, 68},
      {{true, false, true, true}, 64},
      {{true, true, false, true}, 51},
      {{true, true, true, true}, 38},
  });
  Psdd psdd = LearnPsdd(mgr, base, data, 0.0);

  std::printf("\n%-20s %-10s %-10s\n", "input (A K L P)", "in base?", "Pr");
  double total = 0.0;
  int support = 0;
  for (int bits = 0; bits < 16; ++bits) {
    Assignment x(4);
    for (Var v = 0; v < 4; ++v) x[v] = (bits >> v) & 1;
    const double p = psdd.Probability(x);
    total += p;
    support += p > 0.0;
    std::printf("%d %d %d %d                %-10s %.4f\n", (int)x[0], (int)x[1],
                (int)x[2], (int)x[3], mgr.Evaluate(base, x) ? "yes" : "no", p);
  }
  std::printf("\nsupport: %d inputs, total probability %.8f\n", support, total);

  // Compositional semantics: the or-gate distributions (Fig 14 right shows
  // the distribution an inner or-gate induces over P and A).
  PsddEvidence e(4, Obs::kUnknown);
  const auto marg = psdd.Marginals(e, /*normalized=*/true);
  std::printf("\nvariable marginals of the induced distribution:\n");
  for (Var v = 0; v < 4; ++v) {
    std::printf("  Pr(%s=1) = %.4f\n", names[v], marg[v]);
  }
  std::printf("\npaper shape: 9 positive-probability inputs summing to 1; "
              "0 off the base (Fig 14).\n");
  return 0;
}
