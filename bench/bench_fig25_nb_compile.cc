// Figure 25: compiling a naive Bayes classifier into a symbolic decision
// graph [Chan & Darwiche 2003]. Reproduces the pregnancy classifier
// (class P; tests B, U, S) and sweeps classifier size: the ODD agrees with
// the probabilistic classifier on every instance while staying far smaller
// than the truth table.

#include <cstdio>

#include "base/timer.h"
#include "vtree/vtree.h"
#include "xai/explain.h"
#include "xai/naive_bayes.h"

int main() {
  using namespace tbc;
  std::printf("=== Fig 25: naive Bayes -> ODD compilation ===\n\n");

  // The pregnancy classifier: class P, tests B (blood), U (urine),
  // S (scanning); parameters tuned so the induced decision function is
  // S ∨ (B ∧ U) — §5.1's Susan example, where S=+ve alone and B=+ve,U=+ve
  // together are the two sufficient reasons.
  NaiveBayesClassifier nb(0.3, {0.95, 0.90, 0.986}, {0.05, 0.10, 0.0024}, 0.5);
  ObddManager mgr(Vtree::IdentityOrder(3));
  const ObddId odd = nb.CompileToOdd(mgr);
  std::printf("pregnancy classifier (B=0, U=1, S=2):\n");
  std::printf("%-14s %-12s %-10s %-10s\n", "b u s", "posterior", "decision",
              "ODD");
  int agreements = 0;
  for (int bits = 0; bits < 8; ++bits) {
    Assignment e = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    const bool d = nb.Classify(e);
    const bool g = mgr.Evaluate(odd, e);
    agreements += d == g;
    std::printf("%d %d %d          %-12.4f %-10s %-10s\n", (int)e[0], (int)e[1],
                (int)e[2], nb.Posterior(e), d ? "pregnant" : "negative",
                g ? "pregnant" : "negative");
  }
  std::printf("agreement: %d/8; ODD nodes: %zu\n", agreements, mgr.Size(odd));

  // §5.1, Susan: positive on all three tests.
  const char* test_names = "BUS";
  std::printf("Susan (+,+,+) classified pregnant; sufficient reasons:");
  for (const Term& reason : SufficientReasons(mgr, odd, {true, true, true})) {
    std::printf("  {");
    for (Lit l : reason) {
      std::printf(" %s%c=+ve", l.positive() ? "" : "~", test_names[l.var()]);
    }
    std::printf(" }");
  }
  std::printf("\n(paper: S=+ve alone, and B=+ve with U=+ve)\n\n");

  std::printf("sweep: random classifiers, ODD size vs truth table\n");
  std::printf("%-6s %-12s %-14s %-14s %-12s\n", "n", "ODD nodes", "table rows",
              "agreement", "compile(ms)");
  for (size_t n : {4, 8, 12, 16, 20}) {
    NaiveBayesClassifier rnd = NaiveBayesClassifier::Random(n, 0.5, 77 + n);
    ObddManager m(Vtree::IdentityOrder(n));
    Timer t;
    const ObddId f = rnd.CompileToOdd(m);
    const double ms = t.Millis();
    // Verify agreement on a sample (exhaustive for small n).
    size_t checked = 0, agree = 0;
    Rng rng(n);
    const size_t samples = n <= 12 ? (1ull << n) : 4096;
    for (size_t i = 0; i < samples; ++i) {
      Assignment e(n);
      for (Var v = 0; v < n; ++v) {
        e[v] = n <= 12 ? ((i >> v) & 1) : rng.Flip(0.5);
      }
      agree += m.Evaluate(f, e) == rnd.Classify(e);
      ++checked;
    }
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%zu/%zu", agree, checked);
    std::printf("%-6zu %-12zu %-14llu %-14s %-12.2f\n", n, m.Size(f),
                (unsigned long long)(1ull << n), frac, ms);
  }
  std::printf("\npaper shape: the numeric, probabilistic classifier induces "
              "a small symbolic decision graph with identical decisions.\n");
  return 0;
}
