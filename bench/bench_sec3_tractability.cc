// Section 3 micro-benchmarks (google-benchmark): the tractability claims
// behind the knowledge compilation map — DNNF satisfiability and d-DNNF
// counting are linear in circuit size; SDD apply is polynomial (O(s·t));
// SDD negation is linear; the constrained-vtree max-sum pass (E-MAJSAT /
// MAP) is linear in the smoothed circuit.

#include <benchmark/benchmark.h>

#include <set>

#include "base/random.h"
#include "compiler/ddnnf_compiler.h"
#include "core/solvers.h"
#include "nnf/queries.h"
#include "obdd/obdd.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace {

using namespace tbc;

Cnf RandomCnf(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < 3) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

void BM_DnnfSat(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Cnf cnf = RandomCnf(n, 3 * n, n);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSatDnnf(mgr, root));
  }
  state.counters["circuit_edges"] = static_cast<double>(mgr.CircuitSize(root));
}
BENCHMARK(BM_DnnfSat)->Arg(16)->Arg(24)->Arg(32);

void BM_DdnnfModelCount(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Cnf cnf = RandomCnf(n, 3 * n, n + 1);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ModelCount(mgr, root, n));
  }
  state.counters["circuit_edges"] = static_cast<double>(mgr.CircuitSize(root));
}
BENCHMARK(BM_DdnnfModelCount)->Arg(16)->Arg(24)->Arg(32);

void BM_DdnnfWmc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Cnf cnf = RandomCnf(n, 3 * n, n + 2);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  WeightMap w(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Wmc(mgr, root, w));
  }
}
BENCHMARK(BM_DdnnfWmc)->Arg(16)->Arg(24)->Arg(32);

void BM_SddApply(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  // Conjoin two random functions; apply cost is O(s * t).
  for (auto _ : state) {
    state.PauseTiming();
    SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(n)));
    const SddId f = CompileCnf(mgr, RandomCnf(n, 2 * n, 3 * n));
    const SddId g = CompileCnf(mgr, RandomCnf(n, 2 * n, 3 * n + 1));
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.Conjoin(f, g));
  }
}
BENCHMARK(BM_SddApply)->Arg(12)->Arg(16)->Arg(20);

void BM_SddNegate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(n)));
    const SddId f = CompileCnf(mgr, RandomCnf(n, 3 * n, 5 * n));
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.Negate(f));
  }
}
BENCHMARK(BM_SddNegate)->Arg(12)->Arg(16)->Arg(20);

void BM_ObddApply(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();  // fresh manager so the apply cache is cold
    ObddManager mgr(Vtree::IdentityOrder(n));
    const ObddId f = mgr.CompileCnf(RandomCnf(n, 2 * n, 7 * n));
    const ObddId g = mgr.CompileCnf(RandomCnf(n, 2 * n, 7 * n + 1));
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.And(f, g));
  }
}
BENCHMARK(BM_ObddApply)->Arg(12)->Arg(16)->Arg(20);

void BM_ConstrainedEMajSat(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Cnf cnf = RandomCnf(n, 5 * n / 2, 11 * n);
  std::vector<Var> y;
  for (Var v = 0; v < n / 3; ++v) y.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CircuitSolvers::MaxCountOverY(cnf, y));
  }
}
BENCHMARK(BM_ConstrainedEMajSat)->Arg(12)->Arg(15)->Arg(18);

}  // namespace

BENCHMARK_MAIN();
