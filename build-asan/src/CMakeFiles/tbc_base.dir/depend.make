# Empty dependencies file for tbc_base.
# This may be replaced when dependencies are built.
