file(REMOVE_RECURSE
  "libtbc_base.a"
)
