file(REMOVE_RECURSE
  "CMakeFiles/tbc_base.dir/base/bigint.cc.o"
  "CMakeFiles/tbc_base.dir/base/bigint.cc.o.d"
  "CMakeFiles/tbc_base.dir/base/strings.cc.o"
  "CMakeFiles/tbc_base.dir/base/strings.cc.o.d"
  "libtbc_base.a"
  "libtbc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
