file(REMOVE_RECURSE
  "CMakeFiles/tbc_nnf.dir/nnf/io.cc.o"
  "CMakeFiles/tbc_nnf.dir/nnf/io.cc.o.d"
  "CMakeFiles/tbc_nnf.dir/nnf/nnf.cc.o"
  "CMakeFiles/tbc_nnf.dir/nnf/nnf.cc.o.d"
  "CMakeFiles/tbc_nnf.dir/nnf/properties.cc.o"
  "CMakeFiles/tbc_nnf.dir/nnf/properties.cc.o.d"
  "CMakeFiles/tbc_nnf.dir/nnf/queries.cc.o"
  "CMakeFiles/tbc_nnf.dir/nnf/queries.cc.o.d"
  "libtbc_nnf.a"
  "libtbc_nnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_nnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
