file(REMOVE_RECURSE
  "libtbc_nnf.a"
)
