# Empty compiler generated dependencies file for tbc_nnf.
# This may be replaced when dependencies are built.
