file(REMOVE_RECURSE
  "libtbc_psdd.a"
)
