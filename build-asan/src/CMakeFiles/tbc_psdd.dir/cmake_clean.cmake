file(REMOVE_RECURSE
  "CMakeFiles/tbc_psdd.dir/psdd/conditional.cc.o"
  "CMakeFiles/tbc_psdd.dir/psdd/conditional.cc.o.d"
  "CMakeFiles/tbc_psdd.dir/psdd/learn.cc.o"
  "CMakeFiles/tbc_psdd.dir/psdd/learn.cc.o.d"
  "CMakeFiles/tbc_psdd.dir/psdd/psdd.cc.o"
  "CMakeFiles/tbc_psdd.dir/psdd/psdd.cc.o.d"
  "libtbc_psdd.a"
  "libtbc_psdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_psdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
