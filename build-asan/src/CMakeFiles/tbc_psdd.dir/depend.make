# Empty dependencies file for tbc_psdd.
# This may be replaced when dependencies are built.
