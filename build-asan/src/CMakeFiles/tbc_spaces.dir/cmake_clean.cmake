file(REMOVE_RECURSE
  "CMakeFiles/tbc_spaces.dir/spaces/graph.cc.o"
  "CMakeFiles/tbc_spaces.dir/spaces/graph.cc.o.d"
  "CMakeFiles/tbc_spaces.dir/spaces/hierarchical.cc.o"
  "CMakeFiles/tbc_spaces.dir/spaces/hierarchical.cc.o.d"
  "CMakeFiles/tbc_spaces.dir/spaces/rankings.cc.o"
  "CMakeFiles/tbc_spaces.dir/spaces/rankings.cc.o.d"
  "CMakeFiles/tbc_spaces.dir/spaces/routes.cc.o"
  "CMakeFiles/tbc_spaces.dir/spaces/routes.cc.o.d"
  "libtbc_spaces.a"
  "libtbc_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
