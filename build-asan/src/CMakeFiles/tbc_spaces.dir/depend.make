# Empty dependencies file for tbc_spaces.
# This may be replaced when dependencies are built.
