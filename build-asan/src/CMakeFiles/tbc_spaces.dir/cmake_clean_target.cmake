file(REMOVE_RECURSE
  "libtbc_spaces.a"
)
