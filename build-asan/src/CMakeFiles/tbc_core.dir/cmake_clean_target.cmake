file(REMOVE_RECURSE
  "libtbc_core.a"
)
