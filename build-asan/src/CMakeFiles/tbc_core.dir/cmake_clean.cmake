file(REMOVE_RECURSE
  "CMakeFiles/tbc_core.dir/core/dot.cc.o"
  "CMakeFiles/tbc_core.dir/core/dot.cc.o.d"
  "CMakeFiles/tbc_core.dir/core/kc_map.cc.o"
  "CMakeFiles/tbc_core.dir/core/kc_map.cc.o.d"
  "CMakeFiles/tbc_core.dir/core/portfolio.cc.o"
  "CMakeFiles/tbc_core.dir/core/portfolio.cc.o.d"
  "CMakeFiles/tbc_core.dir/core/solvers.cc.o"
  "CMakeFiles/tbc_core.dir/core/solvers.cc.o.d"
  "libtbc_core.a"
  "libtbc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
