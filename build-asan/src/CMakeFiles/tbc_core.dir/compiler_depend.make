# Empty compiler generated dependencies file for tbc_core.
# This may be replaced when dependencies are built.
