file(REMOVE_RECURSE
  "libtbc_bayes.a"
)
