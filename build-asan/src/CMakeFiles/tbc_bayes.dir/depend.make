# Empty dependencies file for tbc_bayes.
# This may be replaced when dependencies are built.
