file(REMOVE_RECURSE
  "CMakeFiles/tbc_bayes.dir/bayes/circuit_inference.cc.o"
  "CMakeFiles/tbc_bayes.dir/bayes/circuit_inference.cc.o.d"
  "CMakeFiles/tbc_bayes.dir/bayes/factor.cc.o"
  "CMakeFiles/tbc_bayes.dir/bayes/factor.cc.o.d"
  "CMakeFiles/tbc_bayes.dir/bayes/io.cc.o"
  "CMakeFiles/tbc_bayes.dir/bayes/io.cc.o.d"
  "CMakeFiles/tbc_bayes.dir/bayes/jointree.cc.o"
  "CMakeFiles/tbc_bayes.dir/bayes/jointree.cc.o.d"
  "CMakeFiles/tbc_bayes.dir/bayes/network.cc.o"
  "CMakeFiles/tbc_bayes.dir/bayes/network.cc.o.d"
  "CMakeFiles/tbc_bayes.dir/bayes/varelim.cc.o"
  "CMakeFiles/tbc_bayes.dir/bayes/varelim.cc.o.d"
  "CMakeFiles/tbc_bayes.dir/bayes/wmc_encoding.cc.o"
  "CMakeFiles/tbc_bayes.dir/bayes/wmc_encoding.cc.o.d"
  "libtbc_bayes.a"
  "libtbc_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
