
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bayes/circuit_inference.cc" "src/CMakeFiles/tbc_bayes.dir/bayes/circuit_inference.cc.o" "gcc" "src/CMakeFiles/tbc_bayes.dir/bayes/circuit_inference.cc.o.d"
  "/root/repo/src/bayes/factor.cc" "src/CMakeFiles/tbc_bayes.dir/bayes/factor.cc.o" "gcc" "src/CMakeFiles/tbc_bayes.dir/bayes/factor.cc.o.d"
  "/root/repo/src/bayes/io.cc" "src/CMakeFiles/tbc_bayes.dir/bayes/io.cc.o" "gcc" "src/CMakeFiles/tbc_bayes.dir/bayes/io.cc.o.d"
  "/root/repo/src/bayes/jointree.cc" "src/CMakeFiles/tbc_bayes.dir/bayes/jointree.cc.o" "gcc" "src/CMakeFiles/tbc_bayes.dir/bayes/jointree.cc.o.d"
  "/root/repo/src/bayes/network.cc" "src/CMakeFiles/tbc_bayes.dir/bayes/network.cc.o" "gcc" "src/CMakeFiles/tbc_bayes.dir/bayes/network.cc.o.d"
  "/root/repo/src/bayes/varelim.cc" "src/CMakeFiles/tbc_bayes.dir/bayes/varelim.cc.o" "gcc" "src/CMakeFiles/tbc_bayes.dir/bayes/varelim.cc.o.d"
  "/root/repo/src/bayes/wmc_encoding.cc" "src/CMakeFiles/tbc_bayes.dir/bayes/wmc_encoding.cc.o" "gcc" "src/CMakeFiles/tbc_bayes.dir/bayes/wmc_encoding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/tbc_compiler.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_sat.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_sdd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_obdd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_nnf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_logic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_vtree.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
