# Empty dependencies file for tbc_obdd.
# This may be replaced when dependencies are built.
