file(REMOVE_RECURSE
  "libtbc_obdd.a"
)
