
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obdd/obdd.cc" "src/CMakeFiles/tbc_obdd.dir/obdd/obdd.cc.o" "gcc" "src/CMakeFiles/tbc_obdd.dir/obdd/obdd.cc.o.d"
  "/root/repo/src/obdd/ordering.cc" "src/CMakeFiles/tbc_obdd.dir/obdd/ordering.cc.o" "gcc" "src/CMakeFiles/tbc_obdd.dir/obdd/ordering.cc.o.d"
  "/root/repo/src/obdd/threshold.cc" "src/CMakeFiles/tbc_obdd.dir/obdd/threshold.cc.o" "gcc" "src/CMakeFiles/tbc_obdd.dir/obdd/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/tbc_logic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_nnf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_vtree.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
