file(REMOVE_RECURSE
  "CMakeFiles/tbc_obdd.dir/obdd/obdd.cc.o"
  "CMakeFiles/tbc_obdd.dir/obdd/obdd.cc.o.d"
  "CMakeFiles/tbc_obdd.dir/obdd/ordering.cc.o"
  "CMakeFiles/tbc_obdd.dir/obdd/ordering.cc.o.d"
  "CMakeFiles/tbc_obdd.dir/obdd/threshold.cc.o"
  "CMakeFiles/tbc_obdd.dir/obdd/threshold.cc.o.d"
  "libtbc_obdd.a"
  "libtbc_obdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_obdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
