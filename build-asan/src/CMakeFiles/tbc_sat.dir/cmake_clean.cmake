file(REMOVE_RECURSE
  "CMakeFiles/tbc_sat.dir/sat/enumerate.cc.o"
  "CMakeFiles/tbc_sat.dir/sat/enumerate.cc.o.d"
  "CMakeFiles/tbc_sat.dir/sat/solver.cc.o"
  "CMakeFiles/tbc_sat.dir/sat/solver.cc.o.d"
  "libtbc_sat.a"
  "libtbc_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
