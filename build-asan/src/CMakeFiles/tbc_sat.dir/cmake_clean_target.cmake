file(REMOVE_RECURSE
  "libtbc_sat.a"
)
