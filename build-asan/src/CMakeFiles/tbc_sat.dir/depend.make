# Empty dependencies file for tbc_sat.
# This may be replaced when dependencies are built.
