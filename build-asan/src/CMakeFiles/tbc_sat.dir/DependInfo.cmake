
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/enumerate.cc" "src/CMakeFiles/tbc_sat.dir/sat/enumerate.cc.o" "gcc" "src/CMakeFiles/tbc_sat.dir/sat/enumerate.cc.o.d"
  "/root/repo/src/sat/solver.cc" "src/CMakeFiles/tbc_sat.dir/sat/solver.cc.o" "gcc" "src/CMakeFiles/tbc_sat.dir/sat/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/tbc_logic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
