file(REMOVE_RECURSE
  "libtbc_vtree.a"
)
