file(REMOVE_RECURSE
  "CMakeFiles/tbc_vtree.dir/vtree/vtree.cc.o"
  "CMakeFiles/tbc_vtree.dir/vtree/vtree.cc.o.d"
  "libtbc_vtree.a"
  "libtbc_vtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_vtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
