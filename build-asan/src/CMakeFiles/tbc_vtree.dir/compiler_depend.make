# Empty compiler generated dependencies file for tbc_vtree.
# This may be replaced when dependencies are built.
