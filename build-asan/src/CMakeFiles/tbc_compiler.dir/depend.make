# Empty dependencies file for tbc_compiler.
# This may be replaced when dependencies are built.
