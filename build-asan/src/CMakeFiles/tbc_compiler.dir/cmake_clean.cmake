file(REMOVE_RECURSE
  "CMakeFiles/tbc_compiler.dir/compiler/ddnnf_compiler.cc.o"
  "CMakeFiles/tbc_compiler.dir/compiler/ddnnf_compiler.cc.o.d"
  "CMakeFiles/tbc_compiler.dir/compiler/model_counter.cc.o"
  "CMakeFiles/tbc_compiler.dir/compiler/model_counter.cc.o.d"
  "libtbc_compiler.a"
  "libtbc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
