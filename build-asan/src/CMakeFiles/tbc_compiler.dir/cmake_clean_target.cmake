file(REMOVE_RECURSE
  "libtbc_compiler.a"
)
