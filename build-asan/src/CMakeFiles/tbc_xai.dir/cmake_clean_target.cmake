file(REMOVE_RECURSE
  "libtbc_xai.a"
)
