# Empty compiler generated dependencies file for tbc_xai.
# This may be replaced when dependencies are built.
