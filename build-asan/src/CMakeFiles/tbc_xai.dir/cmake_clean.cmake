file(REMOVE_RECURSE
  "CMakeFiles/tbc_xai.dir/xai/bn_classifier.cc.o"
  "CMakeFiles/tbc_xai.dir/xai/bn_classifier.cc.o.d"
  "CMakeFiles/tbc_xai.dir/xai/bnn.cc.o"
  "CMakeFiles/tbc_xai.dir/xai/bnn.cc.o.d"
  "CMakeFiles/tbc_xai.dir/xai/compile.cc.o"
  "CMakeFiles/tbc_xai.dir/xai/compile.cc.o.d"
  "CMakeFiles/tbc_xai.dir/xai/decision_tree.cc.o"
  "CMakeFiles/tbc_xai.dir/xai/decision_tree.cc.o.d"
  "CMakeFiles/tbc_xai.dir/xai/explain.cc.o"
  "CMakeFiles/tbc_xai.dir/xai/explain.cc.o.d"
  "CMakeFiles/tbc_xai.dir/xai/naive_bayes.cc.o"
  "CMakeFiles/tbc_xai.dir/xai/naive_bayes.cc.o.d"
  "CMakeFiles/tbc_xai.dir/xai/robustness.cc.o"
  "CMakeFiles/tbc_xai.dir/xai/robustness.cc.o.d"
  "libtbc_xai.a"
  "libtbc_xai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_xai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
