
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xai/bn_classifier.cc" "src/CMakeFiles/tbc_xai.dir/xai/bn_classifier.cc.o" "gcc" "src/CMakeFiles/tbc_xai.dir/xai/bn_classifier.cc.o.d"
  "/root/repo/src/xai/bnn.cc" "src/CMakeFiles/tbc_xai.dir/xai/bnn.cc.o" "gcc" "src/CMakeFiles/tbc_xai.dir/xai/bnn.cc.o.d"
  "/root/repo/src/xai/compile.cc" "src/CMakeFiles/tbc_xai.dir/xai/compile.cc.o" "gcc" "src/CMakeFiles/tbc_xai.dir/xai/compile.cc.o.d"
  "/root/repo/src/xai/decision_tree.cc" "src/CMakeFiles/tbc_xai.dir/xai/decision_tree.cc.o" "gcc" "src/CMakeFiles/tbc_xai.dir/xai/decision_tree.cc.o.d"
  "/root/repo/src/xai/explain.cc" "src/CMakeFiles/tbc_xai.dir/xai/explain.cc.o" "gcc" "src/CMakeFiles/tbc_xai.dir/xai/explain.cc.o.d"
  "/root/repo/src/xai/naive_bayes.cc" "src/CMakeFiles/tbc_xai.dir/xai/naive_bayes.cc.o" "gcc" "src/CMakeFiles/tbc_xai.dir/xai/naive_bayes.cc.o.d"
  "/root/repo/src/xai/robustness.cc" "src/CMakeFiles/tbc_xai.dir/xai/robustness.cc.o" "gcc" "src/CMakeFiles/tbc_xai.dir/xai/robustness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/tbc_obdd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_sdd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_compiler.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_bayes.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_vtree.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_nnf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_sat.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_logic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
