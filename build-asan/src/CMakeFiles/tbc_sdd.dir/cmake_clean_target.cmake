file(REMOVE_RECURSE
  "libtbc_sdd.a"
)
