# Empty dependencies file for tbc_sdd.
# This may be replaced when dependencies are built.
