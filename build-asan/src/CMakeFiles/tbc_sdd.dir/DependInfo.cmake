
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdd/compile.cc" "src/CMakeFiles/tbc_sdd.dir/sdd/compile.cc.o" "gcc" "src/CMakeFiles/tbc_sdd.dir/sdd/compile.cc.o.d"
  "/root/repo/src/sdd/from_obdd.cc" "src/CMakeFiles/tbc_sdd.dir/sdd/from_obdd.cc.o" "gcc" "src/CMakeFiles/tbc_sdd.dir/sdd/from_obdd.cc.o.d"
  "/root/repo/src/sdd/io.cc" "src/CMakeFiles/tbc_sdd.dir/sdd/io.cc.o" "gcc" "src/CMakeFiles/tbc_sdd.dir/sdd/io.cc.o.d"
  "/root/repo/src/sdd/minimize.cc" "src/CMakeFiles/tbc_sdd.dir/sdd/minimize.cc.o" "gcc" "src/CMakeFiles/tbc_sdd.dir/sdd/minimize.cc.o.d"
  "/root/repo/src/sdd/sdd.cc" "src/CMakeFiles/tbc_sdd.dir/sdd/sdd.cc.o" "gcc" "src/CMakeFiles/tbc_sdd.dir/sdd/sdd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/tbc_logic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_nnf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_vtree.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_obdd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
