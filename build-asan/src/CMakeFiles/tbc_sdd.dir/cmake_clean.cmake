file(REMOVE_RECURSE
  "CMakeFiles/tbc_sdd.dir/sdd/compile.cc.o"
  "CMakeFiles/tbc_sdd.dir/sdd/compile.cc.o.d"
  "CMakeFiles/tbc_sdd.dir/sdd/from_obdd.cc.o"
  "CMakeFiles/tbc_sdd.dir/sdd/from_obdd.cc.o.d"
  "CMakeFiles/tbc_sdd.dir/sdd/io.cc.o"
  "CMakeFiles/tbc_sdd.dir/sdd/io.cc.o.d"
  "CMakeFiles/tbc_sdd.dir/sdd/minimize.cc.o"
  "CMakeFiles/tbc_sdd.dir/sdd/minimize.cc.o.d"
  "CMakeFiles/tbc_sdd.dir/sdd/sdd.cc.o"
  "CMakeFiles/tbc_sdd.dir/sdd/sdd.cc.o.d"
  "libtbc_sdd.a"
  "libtbc_sdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_sdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
