file(REMOVE_RECURSE
  "libtbc_logic.a"
)
