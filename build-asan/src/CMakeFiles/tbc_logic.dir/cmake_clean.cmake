file(REMOVE_RECURSE
  "CMakeFiles/tbc_logic.dir/logic/cnf.cc.o"
  "CMakeFiles/tbc_logic.dir/logic/cnf.cc.o.d"
  "CMakeFiles/tbc_logic.dir/logic/formula.cc.o"
  "CMakeFiles/tbc_logic.dir/logic/formula.cc.o.d"
  "CMakeFiles/tbc_logic.dir/logic/simplify.cc.o"
  "CMakeFiles/tbc_logic.dir/logic/simplify.cc.o.d"
  "libtbc_logic.a"
  "libtbc_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbc_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
