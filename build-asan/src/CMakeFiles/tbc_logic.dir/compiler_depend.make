# Empty compiler generated dependencies file for tbc_logic.
# This may be replaced when dependencies are built.
