
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/cnf.cc" "src/CMakeFiles/tbc_logic.dir/logic/cnf.cc.o" "gcc" "src/CMakeFiles/tbc_logic.dir/logic/cnf.cc.o.d"
  "/root/repo/src/logic/formula.cc" "src/CMakeFiles/tbc_logic.dir/logic/formula.cc.o" "gcc" "src/CMakeFiles/tbc_logic.dir/logic/formula.cc.o.d"
  "/root/repo/src/logic/simplify.cc" "src/CMakeFiles/tbc_logic.dir/logic/simplify.cc.o" "gcc" "src/CMakeFiles/tbc_logic.dir/logic/simplify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/tbc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
