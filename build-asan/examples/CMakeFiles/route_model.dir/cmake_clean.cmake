file(REMOVE_RECURSE
  "CMakeFiles/route_model.dir/route_model.cpp.o"
  "CMakeFiles/route_model.dir/route_model.cpp.o.d"
  "route_model"
  "route_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
