# Empty compiler generated dependencies file for route_model.
# This may be replaced when dependencies are built.
