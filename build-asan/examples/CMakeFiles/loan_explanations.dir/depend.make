# Empty dependencies file for loan_explanations.
# This may be replaced when dependencies are built.
