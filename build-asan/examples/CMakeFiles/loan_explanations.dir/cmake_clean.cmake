file(REMOVE_RECURSE
  "CMakeFiles/loan_explanations.dir/loan_explanations.cpp.o"
  "CMakeFiles/loan_explanations.dir/loan_explanations.cpp.o.d"
  "loan_explanations"
  "loan_explanations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loan_explanations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
