file(REMOVE_RECURSE
  "CMakeFiles/course_preferences.dir/course_preferences.cpp.o"
  "CMakeFiles/course_preferences.dir/course_preferences.cpp.o.d"
  "course_preferences"
  "course_preferences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/course_preferences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
