# Empty compiler generated dependencies file for course_preferences.
# This may be replaced when dependencies are built.
