# Empty compiler generated dependencies file for kc_cli.
# This may be replaced when dependencies are built.
