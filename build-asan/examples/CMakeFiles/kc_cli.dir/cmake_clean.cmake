file(REMOVE_RECURSE
  "CMakeFiles/kc_cli.dir/kc_cli.cpp.o"
  "CMakeFiles/kc_cli.dir/kc_cli.cpp.o.d"
  "kc_cli"
  "kc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
