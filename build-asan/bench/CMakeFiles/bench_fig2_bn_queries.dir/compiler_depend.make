# Empty compiler generated dependencies file for bench_fig2_bn_queries.
# This may be replaced when dependencies are built.
