file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bn_queries.dir/bench_fig2_bn_queries.cc.o"
  "CMakeFiles/bench_fig2_bn_queries.dir/bench_fig2_bn_queries.cc.o.d"
  "bench_fig2_bn_queries"
  "bench_fig2_bn_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bn_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
