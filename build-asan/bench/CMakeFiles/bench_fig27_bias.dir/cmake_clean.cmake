file(REMOVE_RECURSE
  "CMakeFiles/bench_fig27_bias.dir/bench_fig27_bias.cc.o"
  "CMakeFiles/bench_fig27_bias.dir/bench_fig27_bias.cc.o.d"
  "bench_fig27_bias"
  "bench_fig27_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig27_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
