# Empty compiler generated dependencies file for bench_fig27_bias.
# This may be replaced when dependencies are built.
