file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_psdd_learn.dir/bench_fig15_psdd_learn.cc.o"
  "CMakeFiles/bench_fig15_psdd_learn.dir/bench_fig15_psdd_learn.cc.o.d"
  "bench_fig15_psdd_learn"
  "bench_fig15_psdd_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_psdd_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
