# Empty dependencies file for bench_fig15_psdd_learn.
# This may be replaced when dependencies are built.
