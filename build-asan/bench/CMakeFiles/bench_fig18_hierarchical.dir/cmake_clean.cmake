file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_hierarchical.dir/bench_fig18_hierarchical.cc.o"
  "CMakeFiles/bench_fig18_hierarchical.dir/bench_fig18_hierarchical.cc.o.d"
  "bench_fig18_hierarchical"
  "bench_fig18_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
