# Empty compiler generated dependencies file for bench_fig22_map_scaling.
# This may be replaced when dependencies are built.
