file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_map_scaling.dir/bench_fig22_map_scaling.cc.o"
  "CMakeFiles/bench_fig22_map_scaling.dir/bench_fig22_map_scaling.cc.o.d"
  "bench_fig22_map_scaling"
  "bench_fig22_map_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_map_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
