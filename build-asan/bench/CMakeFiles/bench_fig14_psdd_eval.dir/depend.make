# Empty dependencies file for bench_fig14_psdd_eval.
# This may be replaced when dependencies are built.
