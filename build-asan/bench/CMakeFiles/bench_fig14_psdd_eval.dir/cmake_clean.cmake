file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_psdd_eval.dir/bench_fig14_psdd_eval.cc.o"
  "CMakeFiles/bench_fig14_psdd_eval.dir/bench_fig14_psdd_eval.cc.o.d"
  "bench_fig14_psdd_eval"
  "bench_fig14_psdd_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_psdd_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
