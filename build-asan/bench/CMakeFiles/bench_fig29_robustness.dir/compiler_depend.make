# Empty compiler generated dependencies file for bench_fig29_robustness.
# This may be replaced when dependencies are built.
