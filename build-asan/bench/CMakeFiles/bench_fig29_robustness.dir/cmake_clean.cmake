file(REMOVE_RECURSE
  "CMakeFiles/bench_fig29_robustness.dir/bench_fig29_robustness.cc.o"
  "CMakeFiles/bench_fig29_robustness.dir/bench_fig29_robustness.cc.o.d"
  "bench_fig29_robustness"
  "bench_fig29_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig29_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
