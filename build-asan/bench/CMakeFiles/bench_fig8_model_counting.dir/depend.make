# Empty dependencies file for bench_fig8_model_counting.
# This may be replaced when dependencies are built.
