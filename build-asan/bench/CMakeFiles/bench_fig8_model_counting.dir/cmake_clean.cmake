file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_model_counting.dir/bench_fig8_model_counting.cc.o"
  "CMakeFiles/bench_fig8_model_counting.dir/bench_fig8_model_counting.cc.o.d"
  "bench_fig8_model_counting"
  "bench_fig8_model_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_model_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
