# Empty dependencies file for bench_sec22_wmc_reduction.
# This may be replaced when dependencies are built.
