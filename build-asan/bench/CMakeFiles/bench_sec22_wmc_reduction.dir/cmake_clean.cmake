file(REMOVE_RECURSE
  "CMakeFiles/bench_sec22_wmc_reduction.dir/bench_sec22_wmc_reduction.cc.o"
  "CMakeFiles/bench_sec22_wmc_reduction.dir/bench_sec22_wmc_reduction.cc.o.d"
  "bench_sec22_wmc_reduction"
  "bench_sec22_wmc_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec22_wmc_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
