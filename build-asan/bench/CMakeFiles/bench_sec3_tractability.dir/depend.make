# Empty dependencies file for bench_sec3_tractability.
# This may be replaced when dependencies are built.
