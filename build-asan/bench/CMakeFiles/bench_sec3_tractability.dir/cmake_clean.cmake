file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_tractability.dir/bench_sec3_tractability.cc.o"
  "CMakeFiles/bench_sec3_tractability.dir/bench_sec3_tractability.cc.o.d"
  "bench_sec3_tractability"
  "bench_sec3_tractability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_tractability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
