# Empty compiler generated dependencies file for bench_fig16_routes.
# This may be replaced when dependencies are built.
