file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_routes.dir/bench_fig16_routes.cc.o"
  "CMakeFiles/bench_fig16_routes.dir/bench_fig16_routes.cc.o.d"
  "bench_fig16_routes"
  "bench_fig16_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
