file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_rankings.dir/bench_fig17_rankings.cc.o"
  "CMakeFiles/bench_fig17_rankings.dir/bench_fig17_rankings.cc.o.d"
  "bench_fig17_rankings"
  "bench_fig17_rankings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_rankings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
