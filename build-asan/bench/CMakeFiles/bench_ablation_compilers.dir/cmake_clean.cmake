file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_compilers.dir/bench_ablation_compilers.cc.o"
  "CMakeFiles/bench_ablation_compilers.dir/bench_ablation_compilers.cc.o.d"
  "bench_ablation_compilers"
  "bench_ablation_compilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
