# Empty dependencies file for bench_ablation_compilers.
# This may be replaced when dependencies are built.
