# Empty dependencies file for bench_fig28_nn_explain.
# This may be replaced when dependencies are built.
