file(REMOVE_RECURSE
  "CMakeFiles/bench_fig28_nn_explain.dir/bench_fig28_nn_explain.cc.o"
  "CMakeFiles/bench_fig28_nn_explain.dir/bench_fig28_nn_explain.cc.o.d"
  "bench_fig28_nn_explain"
  "bench_fig28_nn_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig28_nn_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
