# Empty dependencies file for bench_fig25_nb_compile.
# This may be replaced when dependencies are built.
