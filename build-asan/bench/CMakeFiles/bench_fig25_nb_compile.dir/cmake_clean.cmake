file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_nb_compile.dir/bench_fig25_nb_compile.cc.o"
  "CMakeFiles/bench_fig25_nb_compile.dir/bench_fig25_nb_compile.cc.o.d"
  "bench_fig25_nb_compile"
  "bench_fig25_nb_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_nb_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
