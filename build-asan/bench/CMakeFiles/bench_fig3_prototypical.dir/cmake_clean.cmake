file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_prototypical.dir/bench_fig3_prototypical.cc.o"
  "CMakeFiles/bench_fig3_prototypical.dir/bench_fig3_prototypical.cc.o.d"
  "bench_fig3_prototypical"
  "bench_fig3_prototypical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_prototypical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
