# Empty compiler generated dependencies file for bench_fig26_prime_implicants.
# This may be replaced when dependencies are built.
