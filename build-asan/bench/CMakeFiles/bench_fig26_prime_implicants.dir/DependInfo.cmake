
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig26_prime_implicants.cc" "bench/CMakeFiles/bench_fig26_prime_implicants.dir/bench_fig26_prime_implicants.cc.o" "gcc" "bench/CMakeFiles/bench_fig26_prime_implicants.dir/bench_fig26_prime_implicants.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/tbc_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_spaces.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_psdd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_xai.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_bayes.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_compiler.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_sat.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_sdd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_obdd.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_nnf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_logic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_vtree.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/tbc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
