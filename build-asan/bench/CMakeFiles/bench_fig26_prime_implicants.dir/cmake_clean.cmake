file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_prime_implicants.dir/bench_fig26_prime_implicants.cc.o"
  "CMakeFiles/bench_fig26_prime_implicants.dir/bench_fig26_prime_implicants.cc.o.d"
  "bench_fig26_prime_implicants"
  "bench_fig26_prime_implicants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_prime_implicants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
