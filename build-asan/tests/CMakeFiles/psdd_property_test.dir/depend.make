# Empty dependencies file for psdd_property_test.
# This may be replaced when dependencies are built.
