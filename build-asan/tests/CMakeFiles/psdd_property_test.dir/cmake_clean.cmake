file(REMOVE_RECURSE
  "CMakeFiles/psdd_property_test.dir/psdd_property_test.cc.o"
  "CMakeFiles/psdd_property_test.dir/psdd_property_test.cc.o.d"
  "psdd_property_test"
  "psdd_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
