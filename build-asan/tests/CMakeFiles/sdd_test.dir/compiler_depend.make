# Empty compiler generated dependencies file for sdd_test.
# This may be replaced when dependencies are built.
