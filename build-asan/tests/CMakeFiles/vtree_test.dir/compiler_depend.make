# Empty compiler generated dependencies file for vtree_test.
# This may be replaced when dependencies are built.
