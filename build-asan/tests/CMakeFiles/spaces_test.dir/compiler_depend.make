# Empty compiler generated dependencies file for spaces_test.
# This may be replaced when dependencies are built.
