file(REMOVE_RECURSE
  "CMakeFiles/spaces_test.dir/spaces_test.cc.o"
  "CMakeFiles/spaces_test.dir/spaces_test.cc.o.d"
  "spaces_test"
  "spaces_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spaces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
