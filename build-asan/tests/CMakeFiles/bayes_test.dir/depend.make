# Empty dependencies file for bayes_test.
# This may be replaced when dependencies are built.
