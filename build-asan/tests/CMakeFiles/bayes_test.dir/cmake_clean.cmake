file(REMOVE_RECURSE
  "CMakeFiles/bayes_test.dir/bayes_test.cc.o"
  "CMakeFiles/bayes_test.dir/bayes_test.cc.o.d"
  "bayes_test"
  "bayes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
