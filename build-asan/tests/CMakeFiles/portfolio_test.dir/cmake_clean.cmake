file(REMOVE_RECURSE
  "CMakeFiles/portfolio_test.dir/portfolio_test.cc.o"
  "CMakeFiles/portfolio_test.dir/portfolio_test.cc.o.d"
  "portfolio_test"
  "portfolio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
