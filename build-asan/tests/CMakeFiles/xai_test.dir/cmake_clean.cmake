file(REMOVE_RECURSE
  "CMakeFiles/xai_test.dir/xai_test.cc.o"
  "CMakeFiles/xai_test.dir/xai_test.cc.o.d"
  "xai_test"
  "xai_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xai_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
