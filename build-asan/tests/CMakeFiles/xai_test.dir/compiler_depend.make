# Empty compiler generated dependencies file for xai_test.
# This may be replaced when dependencies are built.
