# Empty compiler generated dependencies file for obdd_test.
# This may be replaced when dependencies are built.
