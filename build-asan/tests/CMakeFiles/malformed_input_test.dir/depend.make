# Empty dependencies file for malformed_input_test.
# This may be replaced when dependencies are built.
