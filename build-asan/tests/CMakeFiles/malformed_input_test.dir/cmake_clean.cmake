file(REMOVE_RECURSE
  "CMakeFiles/malformed_input_test.dir/malformed_input_test.cc.o"
  "CMakeFiles/malformed_input_test.dir/malformed_input_test.cc.o.d"
  "malformed_input_test"
  "malformed_input_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malformed_input_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
