# Empty dependencies file for psdd_test.
# This may be replaced when dependencies are built.
