file(REMOVE_RECURSE
  "CMakeFiles/psdd_test.dir/psdd_test.cc.o"
  "CMakeFiles/psdd_test.dir/psdd_test.cc.o.d"
  "psdd_test"
  "psdd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
