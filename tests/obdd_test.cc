#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "base/random.h"
#include "vtree/vtree.h"
#include "nnf/properties.h"
#include "nnf/queries.h"
#include "obdd/obdd.h"
#include "obdd/ordering.h"
#include "obdd/threshold.h"

namespace tbc {
namespace {

Cnf RandomCnf(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < k) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

TEST(ObddTest, TerminalsAndLiterals) {
  ObddManager m(Vtree::IdentityOrder(2));
  EXPECT_EQ(m.And(m.True(), m.False()), m.False());
  EXPECT_EQ(m.Or(m.True(), m.False()), m.True());
  ObddId x = m.LiteralNode(Pos(0));
  EXPECT_TRUE(m.Evaluate(x, {true, false}));
  EXPECT_FALSE(m.Evaluate(x, {false, false}));
  EXPECT_EQ(m.Not(m.Not(x)), x);
  EXPECT_EQ(m.LiteralNode(Neg(0)), m.Not(x));
}

TEST(ObddTest, CanonicityViaHashConsing) {
  ObddManager m(Vtree::IdentityOrder(3));
  // (x0 & x1) | (x0 & x2) == x0 & (x1 | x2): same node.
  ObddId a = m.Or(m.And(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(1))),
                  m.And(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(2))));
  ObddId b = m.And(m.LiteralNode(Pos(0)),
                   m.Or(m.LiteralNode(Pos(1)), m.LiteralNode(Pos(2))));
  EXPECT_EQ(a, b);
  // Reduction: if v then g else g == g.
  EXPECT_EQ(m.MakeNode(0, a, a), a);
}

TEST(ObddTest, XorAndIff) {
  ObddManager m(Vtree::IdentityOrder(2));
  ObddId x = m.LiteralNode(Pos(0)), y = m.LiteralNode(Pos(1));
  ObddId xr = m.Xor(x, y);
  EXPECT_TRUE(m.Evaluate(xr, {true, false}));
  EXPECT_FALSE(m.Evaluate(xr, {true, true}));
  EXPECT_EQ(m.Iff(x, y), m.Not(xr));
  EXPECT_EQ(m.Xor(x, x), m.False());
}

TEST(ObddTest, IteAgainstTruthTable) {
  ObddManager m(Vtree::IdentityOrder(3));
  ObddId f = m.LiteralNode(Pos(0)), g = m.LiteralNode(Pos(1)),
         h = m.LiteralNode(Pos(2));
  ObddId ite = m.Ite(f, g, h);
  for (int bits = 0; bits < 8; ++bits) {
    Assignment a = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    EXPECT_EQ(m.Evaluate(ite, a), a[0] ? a[1] : a[2]);
  }
}

TEST(ObddTest, RestrictAndQuantify) {
  ObddManager m(Vtree::IdentityOrder(3));
  ObddId f = m.And(m.LiteralNode(Pos(0)), m.Or(m.LiteralNode(Pos(1)),
                                               m.LiteralNode(Neg(2))));
  ObddId f1 = m.Restrict(f, 0, true);
  for (int bits = 0; bits < 8; ++bits) {
    Assignment a = {true, (bits & 2) != 0, (bits & 4) != 0};
    EXPECT_EQ(m.Evaluate(f1, a), m.Evaluate(f, a));
  }
  EXPECT_EQ(m.Restrict(f, 0, false), m.False());
  // Exists x0: drops the conjunct.
  ObddId ex = m.Exists(f, 0);
  EXPECT_EQ(ex, m.Or(m.LiteralNode(Pos(1)), m.LiteralNode(Neg(2))));
  EXPECT_EQ(m.Forall(f, 0), m.False());
}

TEST(ObddTest, Compose) {
  ObddManager m(Vtree::IdentityOrder(3));
  // f = x0 <-> x1; substitute x1 := x2. Result: x0 <-> x2.
  ObddId f = m.Iff(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(1)));
  ObddId composed = m.Compose(f, 1, m.LiteralNode(Pos(2)));
  EXPECT_EQ(composed, m.Iff(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(2))));
}

TEST(ObddTest, ModelCountWithLevelGaps) {
  ObddManager m(Vtree::IdentityOrder(4));
  // f = x1 (vars x0, x2, x3 free): 8 models.
  EXPECT_EQ(m.ModelCount(m.LiteralNode(Pos(1))), BigUint(8));
  EXPECT_EQ(m.ModelCount(m.True()), BigUint(16));
  EXPECT_EQ(m.ModelCount(m.False()), BigUint(0));
  // x1 & ~x3: 4 models.
  EXPECT_EQ(m.ModelCount(m.And(m.LiteralNode(Pos(1)), m.LiteralNode(Neg(3)))),
            BigUint(4));
}

TEST(ObddTest, CompileCnfCountsMatchBruteForce) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Cnf cnf = RandomCnf(10, 25, 3, seed + 40);
    ObddManager m(Vtree::IdentityOrder(10));
    ObddId f = m.CompileCnf(cnf);
    EXPECT_EQ(m.ModelCount(f).ToU64(), cnf.CountModelsBruteForce())
        << "seed " << seed;
  }
}

TEST(ObddTest, CompileFormulaMatchesEvaluate) {
  FormulaStore fs;
  FormulaId a = fs.VarNode(0), b = fs.VarNode(1), c = fs.VarNode(2);
  FormulaId f = fs.Xor(fs.And(a, b), fs.Or(fs.Not(a), c));
  ObddManager m(Vtree::IdentityOrder(3));
  ObddId g = m.CompileFormula(fs, f);
  for (int bits = 0; bits < 8; ++bits) {
    Assignment asg = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    EXPECT_EQ(m.Evaluate(g, asg), fs.Evaluate(f, asg));
  }
}

TEST(ObddTest, WmcMatchesBruteForce) {
  Cnf cnf = RandomCnf(8, 16, 3, 99);
  ObddManager m(Vtree::IdentityOrder(8));
  ObddId f = m.CompileCnf(cnf);
  WeightMap w(8);
  Rng rng(5);
  for (Var v = 0; v < 8; ++v) {
    double p = rng.Uniform();
    w.Set(Pos(v), p);
    w.Set(Neg(v), 1.0 - p);
  }
  double brute = 0.0;
  for (int bits = 0; bits < 256; ++bits) {
    Assignment a(8);
    for (Var v = 0; v < 8; ++v) a[v] = (bits >> v) & 1;
    if (!cnf.Evaluate(a)) continue;
    double term = 1.0;
    for (Var v = 0; v < 8; ++v) term *= w[Lit(v, a[v])];
    brute += term;
  }
  EXPECT_NEAR(m.Wmc(f, w), brute, 1e-12);
}

TEST(ObddTest, WmcWithZeroWeights) {
  ObddManager m(Vtree::IdentityOrder(2));
  ObddId f = m.Or(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(1)));
  WeightMap w(2);
  w.Set(Pos(0), 0.0);
  w.Set(Neg(0), 0.0);  // (W+W) == 0 on a free-var path
  // Models: (0,1),(1,0),(1,1) -> weights 0*1 + 0*1 + 0*1 = 0.
  EXPECT_DOUBLE_EQ(m.Wmc(f, w), 0.0);
}

TEST(ObddTest, EnumerateModels) {
  ObddManager m(Vtree::IdentityOrder(3));
  ObddId f = m.Or(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(2)));
  std::set<Assignment> models;
  m.EnumerateModels(f, [&](const Assignment& a) {
    EXPECT_TRUE(m.Evaluate(f, a));
    EXPECT_TRUE(models.insert(a).second);
  });
  EXPECT_EQ(models.size(), 6u);
}

TEST(ObddTest, ToNnfIsDecisionDnnfWithSameCounts) {
  Cnf cnf = RandomCnf(9, 20, 3, 123);
  ObddManager m(Vtree::IdentityOrder(9));
  ObddId f = m.CompileCnf(cnf);
  NnfManager nnf;
  NnfId root = m.ToNnf(f, nnf);
  EXPECT_TRUE(IsDecomposable(nnf, root));
  EXPECT_TRUE(IsDecision(nnf, root));
  EXPECT_EQ(ModelCount(nnf, root, 9).ToU64(), cnf.CountModelsBruteForce());
}

TEST(ObddTest, NonIdentityOrderChangesSizeNotSemantics) {
  // f = (x0&x3) | (x1&x4) | (x2&x5): interleaved order is exponentially
  // better than separated order (classic example).
  auto build = [](ObddManager& m) {
    ObddId f = m.False();
    for (Var i = 0; i < 3; ++i) {
      f = m.Or(f, m.And(m.LiteralNode(Pos(i)), m.LiteralNode(Pos(i + 3))));
    }
    return f;
  };
  ObddManager bad(std::vector<Var>{0, 1, 2, 3, 4, 5});
  ObddManager good(std::vector<Var>{0, 3, 1, 4, 2, 5});
  ObddId fb = build(bad), fg = build(good);
  EXPECT_EQ(bad.ModelCount(fb), good.ModelCount(fg));
  EXPECT_GT(bad.Size(fb), good.Size(fg));
}

TEST(ObddTest, IsMonotone) {
  ObddManager m(Vtree::IdentityOrder(2));
  ObddId f = m.Or(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(1)));
  EXPECT_TRUE(m.IsMonotoneIn(f, 0));
  ObddId g = m.Xor(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(1)));
  EXPECT_FALSE(m.IsMonotoneIn(g, 0));
  ObddId h = m.LiteralNode(Neg(0));
  EXPECT_FALSE(m.IsMonotoneIn(h, 0));
  EXPECT_TRUE(m.IsMonotoneIn(h, 1));  // vacuously
}

TEST(OrderingTest, ForceReducesSpanOnStructuredCnf) {
  // Chain structure scrambled by an adversarial initial numbering:
  // clause i couples vars (p(i), p(i+1)) under a permutation p.
  const size_t n = 20;
  std::vector<Var> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<Var>((i * 7) % n);
  Cnf cnf(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    cnf.AddClause({Pos(perm[i]), Neg(perm[i + 1])});
  }
  const std::vector<Var> identity = Vtree::IdentityOrder(n);
  const std::vector<Var> force = ForceOrder(cnf, 30);
  EXPECT_LT(TotalSpan(cnf, force), TotalSpan(cnf, identity));
  // The order is a permutation.
  std::vector<Var> sorted = force;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, identity);
}

TEST(OrderingTest, ForceOrderShrinksObdd) {
  // Interleaved-pairs function: FORCE should bring pairs together.
  Cnf cnf(12);
  for (Var i = 0; i < 6; ++i) {
    cnf.AddClause({Pos(i), Pos(i + 6)});
    cnf.AddClause({Neg(i), Neg(i + 6)});
  }
  ObddManager bad(Vtree::IdentityOrder(12));
  const size_t bad_size = bad.Size(bad.CompileCnf(cnf));
  ObddManager good(ForceOrder(cnf, 20));
  const size_t good_size = good.Size(good.CompileCnf(cnf));
  EXPECT_LT(good_size, bad_size);
  EXPECT_EQ(good.ModelCount(good.CompileCnf(cnf)),
            bad.ModelCount(bad.CompileCnf(cnf)));
}

TEST(OrderingTest, HandlesUnconstrainedVariables) {
  Cnf cnf(5);
  cnf.AddClauseDimacs({1, 2});
  // Vars 2..4 appear in no clause; order must still be a permutation.
  std::vector<Var> order = ForceOrder(cnf, 5);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, Vtree::IdentityOrder(5));
}

TEST(ThresholdTest, SimpleMajority) {
  ObddManager m(Vtree::IdentityOrder(3));
  // x0 + x1 + x2 >= 2.
  ObddId f = CompileThreshold(m, {0, 1, 2}, {1, 1, 1}, 2);
  for (int bits = 0; bits < 8; ++bits) {
    Assignment a = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    EXPECT_EQ(m.Evaluate(f, a), a[0] + a[1] + a[2] >= 2);
  }
}

TEST(ThresholdTest, NegativeWeightsAndBias) {
  ObddManager m(Vtree::IdentityOrder(4));
  // 3x0 - 2x1 + x2 - x3 >= 1.
  ObddId f = CompileThreshold(m, {0, 1, 2, 3}, {3, -2, 1, -1}, 1);
  for (int bits = 0; bits < 16; ++bits) {
    Assignment a(4);
    for (Var v = 0; v < 4; ++v) a[v] = (bits >> v) & 1;
    int64_t sum = 3 * a[0] - 2 * a[1] + a[2] - a[3];
    EXPECT_EQ(m.Evaluate(f, a), sum >= 1);
  }
}

TEST(ThresholdTest, ConstantOutcomes) {
  ObddManager m(Vtree::IdentityOrder(2));
  EXPECT_EQ(CompileThreshold(m, {0, 1}, {1, 1}, 0), m.True());
  EXPECT_EQ(CompileThreshold(m, {0, 1}, {1, 1}, 3), m.False());
  EXPECT_EQ(CompileThreshold(m, {}, {}, 0), m.True());
  EXPECT_EQ(CompileThreshold(m, {}, {}, 1), m.False());
}

TEST(ThresholdTest, RandomAgainstBruteForce) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 6;
    std::vector<Var> vars = {0, 1, 2, 3, 4, 5};
    std::vector<int64_t> w(n);
    for (auto& x : w) x = rng.Range(-5, 5);
    int64_t t = rng.Range(-6, 6);
    ObddManager m(Vtree::IdentityOrder(n));
    ObddId f = CompileThreshold(m, vars, w, t);
    for (int bits = 0; bits < (1 << n); ++bits) {
      Assignment a(n);
      int64_t sum = 0;
      for (Var v = 0; v < n; ++v) {
        a[v] = (bits >> v) & 1;
        if (a[v]) sum += w[v];
      }
      ASSERT_EQ(m.Evaluate(f, a), sum >= t) << "trial " << trial;
    }
  }
}

TEST(ThresholdTest, RespectsUnsortedVarInput) {
  ObddManager m(Vtree::IdentityOrder(3));
  // Pass vars out of order; semantics must be unchanged.
  ObddId f = CompileThreshold(m, {2, 0, 1}, {1, 1, 1}, 2);
  ObddId g = CompileThreshold(m, {0, 1, 2}, {1, 1, 1}, 2);
  EXPECT_EQ(f, g);
}

}  // namespace
}  // namespace tbc
