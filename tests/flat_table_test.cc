// Unit tests for the flat open-addressing kernel tables: the hash-consing
// UniqueTable, the general FlatMap (with tombstoned erase), and the bounded
// lossy apply cache. These structures back every manager's hot path, so the
// tests pin down the exact semantics the managers rely on — notably that
// FlatMap::Find pointers stay valid until the next mutation, and that
// LossyCache may forget entries but never returns a wrong value.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/flat_table.h"
#include "base/random.h"
#include "gtest/gtest.h"

namespace tbc {
namespace {

TEST(UniqueTableTest, InsertFindRoundTrip) {
  UniqueTable table;
  // Simulated node payloads: the table stores (hash, id); equality is
  // delegated to the caller's predicate, as the managers do.
  std::vector<uint64_t> payload;
  auto intern = [&](uint64_t value) -> uint32_t {
    const uint64_t h = HashU64(value);
    const uint32_t found =
        table.Find(h, [&](uint32_t id) { return payload[id] == value; });
    if (found != UniqueTable::kNpos) return found;
    payload.push_back(value);
    const uint32_t id = static_cast<uint32_t>(payload.size() - 1);
    table.Insert(h, id);
    return id;
  };

  const uint32_t a = intern(17);
  const uint32_t b = intern(42);
  EXPECT_NE(a, b);
  // Hash-consing: an equal payload maps to the existing id.
  EXPECT_EQ(intern(17), a);
  EXPECT_EQ(intern(42), b);
  EXPECT_EQ(table.size(), 2u);
}

TEST(UniqueTableTest, GrowthPreservesEntries) {
  UniqueTable table;
  std::vector<uint64_t> payload;
  const size_t kCount = 10000;  // forces several doublings past min capacity
  for (size_t i = 0; i < kCount; ++i) {
    payload.push_back(i * 2654435761u);
    table.Insert(HashU64(payload.back()), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(table.size(), kCount);
  for (size_t i = 0; i < kCount; ++i) {
    const uint64_t value = payload[i];
    const uint32_t found = table.Find(
        HashU64(value), [&](uint32_t id) { return payload[id] == value; });
    EXPECT_EQ(found, static_cast<uint32_t>(i));
  }
}

TEST(UniqueTableTest, ReserveAndClear) {
  UniqueTable table;
  table.Reserve(5000);
  const size_t cap = table.capacity();
  for (uint32_t i = 0; i < 5000; ++i) table.Insert(HashU64(i), i);
  EXPECT_EQ(table.capacity(), cap) << "Reserve must preempt growth";
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(UniqueTable::kNpos,
            table.Find(HashU64(3), [](uint32_t) { return true; }));
}

TEST(FlatMapTest, InsertFindOverwrite) {
  FlatMap<uint64_t, int> map;
  EXPECT_EQ(map.Find(7), nullptr);
  map.Insert(7, 70);
  map.Insert(9, 90);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 70);
  // Insert on an existing key overwrites in place.
  map.Insert(7, 71);
  EXPECT_EQ(*map.Find(7), 71);
  EXPECT_EQ(map.size(), 2u);
  map[9] = 91;  // operator[] returns a mutable slot
  EXPECT_EQ(*map.Find(9), 91);
}

TEST(FlatMapTest, EraseLeavesTombstonesProbeChainsIntact) {
  FlatMap<uint64_t, int> map;
  // Dense keys guarantee probe-chain collisions at small capacities, so
  // erasing an early element exercises the tombstone path: later elements
  // in the same chain must stay findable.
  for (uint64_t k = 0; k < 512; ++k) map.Insert(k, static_cast<int>(k));
  for (uint64_t k = 0; k < 512; k += 2) EXPECT_TRUE(map.Erase(k));
  EXPECT_FALSE(map.Erase(0)) << "double-erase reports absence";
  EXPECT_EQ(map.size(), 256u);
  for (uint64_t k = 0; k < 512; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(map.Find(k), nullptr);
    } else {
      ASSERT_NE(map.Find(k), nullptr);
      EXPECT_EQ(*map.Find(k), static_cast<int>(k));
    }
  }
  // Reinserting over a tombstone works and is findable.
  map.Insert(0, -1);
  ASSERT_NE(map.Find(0), nullptr);
  EXPECT_EQ(*map.Find(0), -1);
}

TEST(FlatMapTest, StringKeysMatchUnorderedMapUnderChurn) {
  // Randomized differential test against std::unordered_map, mirroring the
  // compiler's serialized-clauses cache keys.
  FlatMap<std::string, uint32_t> map;
  std::unordered_map<std::string, uint32_t> reference;
  Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    const std::string key = "k" + std::to_string(rng.Below(700));
    const uint32_t action = static_cast<uint32_t>(rng.Below(4));
    if (action == 0) {
      EXPECT_EQ(map.Erase(key), reference.erase(key) > 0);
    } else {
      const uint32_t value = static_cast<uint32_t>(step);
      map.Insert(key, value);
      reference[key] = value;
    }
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(map.Find(key), nullptr) << key;
    EXPECT_EQ(*map.Find(key), value);
  }
}

TEST(FlatMapTest, ClearAndReserve) {
  FlatMap<uint32_t, uint32_t> map;
  map.reserve(1000);
  const size_t cap = map.capacity();
  for (uint32_t k = 0; k < 1000; ++k) map.Insert(k, k + 1);
  EXPECT_EQ(map.capacity(), cap);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(1), nullptr);
  map.Insert(1, 2);  // usable after Clear
  EXPECT_EQ(*map.Find(1), 2u);
}

TEST(LossyCacheTest, FindAfterInsert) {
  LossyCache<uint64_t, int> cache;
  EXPECT_EQ(cache.Find(5), nullptr);
  cache.Insert(5, 50);
  ASSERT_NE(cache.Find(5), nullptr);
  EXPECT_EQ(*cache.Find(5), 50);
}

TEST(LossyCacheTest, CollisionOverwritesOldEntry) {
  // A cache capped at its minimum capacity: inserting more distinct keys
  // than slots *must* evict, and a subsequent Find on an evicted key must
  // miss (never return another key's value).
  LossyCache<uint64_t, uint64_t> cache(/*max_capacity=*/1024);
  const uint64_t kKeys = 100000;
  for (uint64_t k = 0; k < kKeys; ++k) cache.Insert(k, k * 3);
  size_t hits = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (const uint64_t* v = cache.Find(k)) {
      EXPECT_EQ(*v, k * 3) << "a hit must never be a stale/foreign value";
      ++hits;
    }
  }
  EXPECT_GT(hits, 0u);
  EXPECT_LE(hits, 1024u) << "bounded cache cannot retain more than capacity";
}

TEST(LossyCacheTest, SameKeyOverwriteUpdatesValue) {
  LossyCache<uint64_t, int> cache(1024);
  cache.Insert(11, 1);
  cache.Insert(11, 2);
  ASSERT_NE(cache.Find(11), nullptr);
  EXPECT_EQ(*cache.Find(11), 2);
}

TEST(LossyCacheTest, MemoryStaysBoundedUnderAdversarialLoad) {
  LossyCache<uint64_t, uint64_t> cache(/*max_capacity=*/4096);
  for (uint64_t k = 0; k < 1000000; ++k) cache.Insert(HashU64(k), k);
  EXPECT_LE(cache.capacity(), 4096u);
  cache.Clear();
  EXPECT_EQ(cache.Find(HashU64(999999)), nullptr);
}

TEST(HashValueTest, StringAndIntegerHashesSpread) {
  // Smoke check that the mixers actually spread consecutive keys: buckets
  // of the low bits should all be populated (this is what the
  // power-of-two tables rely on instead of a prime modulus).
  std::vector<int> buckets(16, 0);
  for (uint64_t i = 0; i < 1024; ++i) buckets[HashValue(i) & 15]++;
  for (int count : buckets) EXPECT_GT(count, 0);
  std::fill(buckets.begin(), buckets.end(), 0);
  for (int i = 0; i < 1024; ++i) {
    buckets[HashValue("key" + std::to_string(i)) & 15]++;
  }
  for (int count : buckets) EXPECT_GT(count, 0);
}

}  // namespace
}  // namespace tbc
