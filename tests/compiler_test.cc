#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>

#include "base/observability.h"
#include "base/random.h"
#include "compiler/ddnnf_compiler.h"
#include "compiler/model_counter.h"
#include "compiler/subproblem.h"
#include "nnf/properties.h"
#include "nnf/queries.h"

namespace tbc {
namespace {

Cnf RandomCnf(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < k) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

TEST(DdnnfCompilerTest, TrivialInputs) {
  NnfManager m;
  DdnnfCompiler compiler;
  Cnf empty(3);
  EXPECT_EQ(compiler.Compile(empty, m), m.True());
  Cnf contradiction(2);
  contradiction.AddClauseDimacs({1});
  contradiction.AddClauseDimacs({-1});
  EXPECT_EQ(compiler.Compile(contradiction, m), m.False());
  Cnf unit(2);
  unit.AddClauseDimacs({-2});
  NnfId f = compiler.Compile(unit, m);
  EXPECT_EQ(f, m.Literal(Neg(1)));
}

TEST(DdnnfCompilerTest, OutputIsDecisionDnnf) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Cnf cnf = RandomCnf(10, 26, 3, seed);
    NnfManager m;
    DdnnfCompiler compiler;
    NnfId root = compiler.Compile(cnf, m);
    EXPECT_TRUE(IsDecomposable(m, root)) << "seed " << seed;
    EXPECT_TRUE(IsDeterministicExhaustive(m, root, 10)) << "seed " << seed;
  }
}

TEST(DdnnfCompilerTest, CountsMatchBruteForce) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Cnf cnf = RandomCnf(11, 30, 3, seed + 300);
    NnfManager m;
    DdnnfCompiler compiler;
    NnfId root = compiler.Compile(cnf, m);
    EXPECT_EQ(ModelCount(m, root, 11).ToU64(), cnf.CountModelsBruteForce())
        << "seed " << seed;
  }
}

TEST(DdnnfCompilerTest, EquivalentToInputFormula) {
  Cnf cnf = RandomCnf(9, 20, 3, 17);
  NnfManager m;
  DdnnfCompiler compiler;
  NnfId root = compiler.Compile(cnf, m);
  for (int bits = 0; bits < (1 << 9); ++bits) {
    Assignment a(9);
    for (Var v = 0; v < 9; ++v) a[v] = (bits >> v) & 1;
    ASSERT_EQ(m.Evaluate(root, a), cnf.Evaluate(a));
  }
}

TEST(DdnnfCompilerTest, AblationsPreserveCorrectness) {
  for (uint64_t seed = 40; seed < 48; ++seed) {
    Cnf cnf = RandomCnf(10, 24, 3, seed);
    const uint64_t expected = cnf.CountModelsBruteForce();
    for (bool comps : {false, true}) {
      for (bool cache : {false, true}) {
        NnfManager m;
        DdnnfCompiler compiler({.use_components = comps, .use_cache = cache});
        NnfId root = compiler.Compile(cnf, m);
        ASSERT_EQ(ModelCount(m, root, 10).ToU64(), expected)
            << "seed " << seed << " comps " << comps << " cache " << cache;
      }
    }
  }
}

TEST(DdnnfCompilerTest, ComponentsAndCacheReduceWork) {
  // Two independent subformulas: decomposition should fire, and caching
  // should hit on repeated components.
  Cnf cnf(16);
  Rng rng(3);
  for (int half = 0; half < 2; ++half) {
    for (int i = 0; i < 18; ++i) {
      std::set<Var> vars;
      while (vars.size() < 3) {
        vars.insert(static_cast<Var>(8 * half + rng.Below(8)));
      }
      Clause c;
      for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
      cnf.AddClause(c);
    }
  }
  NnfManager m1, m2;
  DdnnfCompiler with({.use_components = true, .use_cache = true});
  DdnnfCompiler without({.use_components = false, .use_cache = false});
  NnfId r1 = with.Compile(cnf, m1);
  NnfId r2 = without.Compile(cnf, m2);
  EXPECT_EQ(ModelCount(m1, r1, 16), ModelCount(m2, r2, 16));
  EXPECT_GT(with.stats().components_split, 0u);
  EXPECT_LE(with.stats().decisions, without.stats().decisions);
}

TEST(ModelCounterTest, MatchesBruteForce) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Cnf cnf = RandomCnf(12, 34, 3, seed + 900);
    ModelCounter counter;
    EXPECT_EQ(counter.Count(cnf).ToU64(), cnf.CountModelsBruteForce())
        << "seed " << seed;
  }
}

TEST(ModelCounterTest, FreeVariablesAndEmptyCnf) {
  Cnf cnf(5);
  cnf.AddClauseDimacs({1, 2});
  ModelCounter counter;
  EXPECT_EQ(counter.Count(cnf), BigUint(3 * 8));
  Cnf empty(20);
  EXPECT_EQ(counter.Count(empty), BigUint::PowerOfTwo(20));
}

TEST(ModelCounterTest, LargeStructuredInstance) {
  // Chain of implications x0 -> x1 -> ... -> x39: models are the 41
  // monotone step patterns... for implications models = prefixes of 0s then
  // 1s? x_i -> x_{i+1}: models are exactly the up-sets: 41 models.
  Cnf cnf(40);
  for (int i = 0; i < 39; ++i) cnf.AddClauseDimacs({-(i + 1), i + 2});
  ModelCounter counter;
  EXPECT_EQ(counter.Count(cnf), BigUint(41));
}

TEST(ModelCounterTest, WmcMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Cnf cnf = RandomCnf(9, 20, 3, seed + 100);
    WeightMap w(9);
    Rng rng(seed);
    for (Var v = 0; v < 9; ++v) {
      double p = rng.Uniform();
      w.Set(Pos(v), p);
      w.Set(Neg(v), 1.0 - p);
    }
    double brute = 0.0;
    for (int bits = 0; bits < (1 << 9); ++bits) {
      Assignment a(9);
      for (Var v = 0; v < 9; ++v) a[v] = (bits >> v) & 1;
      if (!cnf.Evaluate(a)) continue;
      double term = 1.0;
      for (Var v = 0; v < 9; ++v) term *= w[Lit(v, a[v])];
      brute += term;
    }
    ModelCounter counter;
    EXPECT_NEAR(counter.Wmc(cnf, w), brute, 1e-10) << "seed " << seed;
  }
}

TEST(ModelCounterTest, WmcWithUnitWeightsEqualsCount) {
  Cnf cnf = RandomCnf(10, 25, 3, 555);
  ModelCounter counter;
  WeightMap w(10);
  EXPECT_NEAR(counter.Wmc(cnf, w), counter.Count(cnf).ToDouble(), 1e-6);
}

TEST(ModelCounterTest, WmcSurvivesDeepUnderflow) {
  // Regression for the log-space rework (ISSUE 4 headline bug): 2000
  // variables. 1000 unit clauses of weight 1e-3 drive the running product
  // to ~1e-3000 — thousands of orders below DBL_MIN — before 500 two-var
  // components (value 3e6 each) bring the final count back to
  // 3^500 ~ 3.6e238, comfortably representable. The historical
  // plain-double accumulator flushed the intermediate to 0.0 and returned
  // an exact, silent 0.0.
  constexpr size_t kUnits = 1000;
  constexpr size_t kComps = 500;
  Cnf cnf(kUnits + 2 * kComps);
  WeightMap w(kUnits + 2 * kComps);
  for (Var v = 0; v < kUnits; ++v) {
    cnf.AddClauseDimacs({static_cast<int>(v) + 1});
    w.Set(Pos(v), 1e-3);
  }
  for (size_t i = 0; i < kComps; ++i) {
    const Var a = static_cast<Var>(kUnits + 2 * i);
    const Var b = a + 1;
    cnf.AddClause({Pos(a), Pos(b)});
    for (Var v : {a, b}) {
      w.Set(Pos(v), 1e3);
      w.Set(Neg(v), 1e3);
    }
  }
  // What the naive accumulator saw: the unit-chain product alone is not
  // representable.
  double naive = 1.0;
  for (size_t i = 0; i < kUnits; ++i) naive *= 1e-3;
  ASSERT_EQ(naive, 0.0);

  Observability::Global().Reset();
  ModelCounter counter;
  const double wmc = counter.Wmc(cnf, w);
  // Per component (a v b): 1e3*1e3 * 3 satisfying assignments = 3e6, and
  // (1e-3)^1000 * (3e6)^500 = 3^500 exactly.
  const double expected = std::pow(3.0, 500.0);
  EXPECT_GT(wmc, 0.0);
  EXPECT_NEAR(wmc, expected, expected * 1e-9);
  EXPECT_GE(counter.stats().underflow_rescues, 1u);
#if TBC_OBSERVE_ON
  // The rescue is also surfaced through the observability registry.
  EXPECT_GE(Observability::Global().CounterValue("counter.wmc.rescues"), 1u);
#endif
}

TEST(ModelCounterTest, WmcUnrepresentableResultSaturates) {
  // 200 free variables each contributing (0.01 + 0.01): the true WMC is
  // 0.02^200 ~ 1.6e-340, below even the subnormal range. The public double
  // API can only saturate to 0.0 — but it must count the rescue so callers
  // can tell "saturated" from "genuinely zero".
  constexpr size_t kVars = 200;
  Cnf cnf(kVars);
  WeightMap w(kVars);
  for (Var v = 0; v < kVars; ++v) {
    w.Set(Pos(v), 0.01);
    w.Set(Neg(v), 0.01);
  }
  ModelCounter counter;
  EXPECT_EQ(counter.Wmc(cnf, w), 0.0);
  EXPECT_GE(counter.stats().underflow_rescues, 1u);
}

TEST(SubproblemTest, CacheKeyPinnedEncoding) {
  using compiler_internal::CacheKey;
  using compiler_internal::Clauses;
  // Pins the length-prefixed byte layout: uint32 literal count, then the
  // literal codes, per clause. Changing the encoding silently invalidates
  // nothing (the cache is per-run) but must be a conscious decision — it
  // is the injectivity proof the component cache rests on.
  const Clauses clauses = {{Pos(0), Neg(1)}, {Pos(2)}};
  std::string expected;
  const auto append_u32 = [&expected](uint32_t v) {
    expected.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_u32(2);
  append_u32(Pos(0).code());
  append_u32(Neg(1).code());
  append_u32(1);
  append_u32(Pos(2).code());
  EXPECT_EQ(CacheKey(clauses), expected);
  EXPECT_EQ(CacheKey(clauses).size(), 5 * sizeof(uint32_t));
  EXPECT_EQ(CacheKey({}), std::string());
}

TEST(SubproblemTest, CacheKeyIsInjectiveOnSentinelLiteral) {
  using compiler_internal::CacheKey;
  using compiler_internal::Clauses;
  // The old encoding terminated each clause with 0xFFFFFFFF — which is
  // also the literal code of Neg(2^31 - 1), reachable through the public
  // Lit constructor. Under that scheme the two clause sets below
  // serialized to identical bytes (A S S B S), so the component cache
  // could serve one's count for the other. Length prefixes keep every
  // distinct clause set distinct.
  const Lit a = Pos(0);
  const Lit b = Pos(1);
  const Lit s = Neg(0x7FFFFFFFu);
  ASSERT_EQ(s.code(), 0xFFFFFFFFu);
  const Clauses lhs = {{a, s}, {b}};
  const Clauses rhs = {{a}, {s, b}};
  // Demonstrate the historical collision with the old sentinel scheme.
  const auto old_key = [](const Clauses& cs) {
    std::string key;
    for (const auto& c : cs) {
      for (const Lit l : c) {
        const uint32_t code = l.code();
        key.append(reinterpret_cast<const char*>(&code), sizeof(code));
      }
      const uint32_t sep = 0xFFFFFFFFu;
      key.append(reinterpret_cast<const char*>(&sep), sizeof(sep));
    }
    return key;
  };
  EXPECT_EQ(old_key(lhs), old_key(rhs));  // the bug
  EXPECT_NE(CacheKey(lhs), CacheKey(rhs));  // the fix
}

TEST(ModelCounterTest, CounterAgreesWithCompilerTrace) {
  // The paper's point: a model counter's trace is a d-DNNF; both paths
  // must agree on every instance.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Cnf cnf = RandomCnf(13, 36, 3, seed + 2000);
    ModelCounter counter;
    NnfManager m;
    DdnnfCompiler compiler;
    NnfId root = compiler.Compile(cnf, m);
    EXPECT_EQ(counter.Count(cnf), ModelCount(m, root, 13)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tbc
