// Cross-engine property suite (parameterized): every compilation pipeline
// in the library must agree with every other — and with brute force — on
// satisfiability, model count, WMC and per-instance evaluation, for every
// vtree/order. This is the library's strongest integration invariant: the
// paper's Fig 12 taxonomy describes many circuit languages for the SAME
// Boolean function.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "analysis/diagnostics.h"
#include "analysis/nnf_analyzer.h"
#include "analysis/obdd_analyzer.h"
#include "analysis/sdd_analyzer.h"
#include "base/random.h"
#include "compiler/ddnnf_compiler.h"
#include "compiler/model_counter.h"
#include "nnf/properties.h"
#include "nnf/queries.h"
#include "obdd/obdd.h"
#include "obdd/ordering.h"
#include "sdd/compile.h"
#include "sdd/from_obdd.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

Cnf RandomCnf(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < k) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

// Parameter: (seed, num_vars, clause_factor_x10).
using EngineParam = std::tuple<uint64_t, size_t, size_t>;

class CrossEngineTest : public ::testing::TestWithParam<EngineParam> {
 protected:
  Cnf MakeCnf() const {
    const auto [seed, n, factor10] = GetParam();
    return RandomCnf(n, n * factor10 / 10, 3, seed * 7919 + 13);
  }
};

TEST_P(CrossEngineTest, AllEnginesAgreeOnCountsAndSemantics) {
  const Cnf cnf = MakeCnf();
  const size_t n = cnf.num_vars();
  const uint64_t brute = cnf.CountModelsBruteForce();

  // Engine 1: top-down Decision-DNNF compiler.
  NnfManager nnf;
  DdnnfCompiler ddnnf_compiler;
  const NnfId ddnnf = ddnnf_compiler.Compile(cnf, nnf);
  EXPECT_EQ(ModelCount(nnf, ddnnf, n).ToU64(), brute);

  // Engine 2: direct model counter (same search, no trace).
  ModelCounter counter;
  EXPECT_EQ(counter.Count(cnf).ToU64(), brute);

  // Engine 3: OBDD, identity and FORCE orders.
  for (bool use_force : {false, true}) {
    const std::vector<Var> order =
        use_force ? ForceOrder(cnf, 5) : Vtree::IdentityOrder(n);
    ObddManager obdd(order);
    const ObddId f = obdd.CompileCnf(cnf);
    ASSERT_EQ(obdd.ModelCount(f).ToU64(), brute) << "force=" << use_force;
  }

  // Engine 4: SDD over balanced / right-linear / random vtrees.
  Rng vtree_rng(std::get<0>(GetParam()));
  for (int shape = 0; shape < 3; ++shape) {
    Vtree vt = shape == 0   ? Vtree::Balanced(Vtree::IdentityOrder(n))
               : shape == 1 ? Vtree::RightLinear(Vtree::IdentityOrder(n))
                            : Vtree::Random(Vtree::IdentityOrder(n), vtree_rng);
    SddManager sdd(std::move(vt));
    const SddId f = CompileCnf(sdd, cnf);
    ASSERT_EQ(sdd.ModelCount(f).ToU64(), brute) << "shape " << shape;
  }
}

TEST_P(CrossEngineTest, WmcAgreesAcrossEngines) {
  const Cnf cnf = MakeCnf();
  const size_t n = cnf.num_vars();
  WeightMap w(n);
  Rng rng(std::get<0>(GetParam()) + 999);
  for (Var v = 0; v < n; ++v) {
    const double p = 0.1 + 0.8 * rng.Uniform();
    w.Set(Pos(v), p);
    w.Set(Neg(v), 1.0 - p);
  }
  NnfManager nnf;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, nnf);
  const double via_circuit = Wmc(nnf, root, w);

  ModelCounter counter;
  EXPECT_NEAR(counter.Wmc(cnf, w), via_circuit, 1e-10);

  ObddManager obdd(Vtree::IdentityOrder(n));
  EXPECT_NEAR(obdd.Wmc(obdd.CompileCnf(cnf), w), via_circuit, 1e-10);

  SddManager sdd(Vtree::Balanced(Vtree::IdentityOrder(n)));
  EXPECT_NEAR(sdd.Wmc(CompileCnf(sdd, cnf), w), via_circuit, 1e-10);
}

TEST_P(CrossEngineTest, ObddToSddPreservesFunction) {
  const Cnf cnf = MakeCnf();
  const size_t n = cnf.num_vars();
  ObddManager obdd(Vtree::IdentityOrder(n));
  const ObddId f = obdd.CompileCnf(cnf);
  SddManager sdd(Vtree::RightLinear(Vtree::IdentityOrder(n)));
  const SddId g = ObddToSdd(obdd, f, sdd);
  EXPECT_EQ(sdd.ModelCount(g).ToU64(), obdd.ModelCount(f).ToU64());
  // Spot-check semantics.
  Rng rng(std::get<0>(GetParam()) + 5);
  for (int i = 0; i < 32; ++i) {
    Assignment x(n);
    for (Var v = 0; v < n; ++v) x[v] = rng.Flip(0.5);
    ASSERT_EQ(sdd.Evaluate(g, x), obdd.Evaluate(f, x));
  }
}

TEST_P(CrossEngineTest, CompiledCircuitsAreDecomposableAndDeterministic) {
  const Cnf cnf = MakeCnf();
  const size_t n = cnf.num_vars();
  if (n > 12) GTEST_SKIP() << "exhaustive determinism check too large";
  NnfManager nnf;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, nnf);
  EXPECT_TRUE(IsDecomposable(nnf, root));
  EXPECT_TRUE(IsDeterministicExhaustive(nnf, root, n));

  SddManager sdd(Vtree::Balanced(Vtree::IdentityOrder(n)));
  NnfManager nnf2;
  const NnfId exported = sdd.ToNnf(CompileCnf(sdd, cnf), nnf2);
  EXPECT_TRUE(IsDecomposable(nnf2, exported));
  EXPECT_TRUE(IsDeterministicExhaustive(nnf2, exported, n));
}

TEST_P(CrossEngineTest, StaticAnalyzerAcceptsEveryEngineArtifact) {
  // The invariant analyzer is an independent checker: whatever the
  // equivalence sweep compiles must also verify clean statically.
  const Cnf cnf = MakeCnf();
  const size_t n = cnf.num_vars();

  NnfManager nnf;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, nnf);
  DiagnosticReport nnf_report;
  NnfAnalysisOptions options;
  options.dialect = NnfDialect::kDecisionDnnf;
  options.expected_num_vars = n;
  AnalyzeNnf(nnf, root, options, nnf_report);
  EXPECT_TRUE(nnf_report.clean()) << nnf_report.ToText("ddnnf");

  ObddManager obdd(Vtree::IdentityOrder(n));
  DiagnosticReport obdd_report;
  AnalyzeObdd(obdd, obdd.CompileCnf(cnf), obdd_report);
  EXPECT_TRUE(obdd_report.empty()) << obdd_report.ToText("obdd");

  SddManager sdd(Vtree::Balanced(Vtree::IdentityOrder(n)));
  const SddId f = CompileCnf(sdd, cnf);
  DiagnosticReport sdd_report;
  AnalyzeSdd(sdd, f, SddAnalysisOptions{}, sdd_report);
  EXPECT_TRUE(sdd_report.empty()) << sdd_report.ToText("sdd");
}

INSTANTIATE_TEST_SUITE_P(
    RandomCnfSweep, CrossEngineTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),   // seeds
                       ::testing::Values(8, 11, 14),          // num_vars
                       ::testing::Values(20, 35, 42)),        // clauses = f/10 * n
    [](const ::testing::TestParamInfo<EngineParam>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_f" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace tbc
