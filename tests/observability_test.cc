#include "base/observability.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "base/logspace.h"

namespace tbc {
namespace {

// The registry is process-global; every test starts from a clean slate.
class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { Observability::Global().Reset(); }
};

TEST_F(ObservabilityTest, CounterAccumulates) {
  ObsCounter& c = Observability::Global().Counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(Observability::Global().CounterValue("test.counter"), 42u);
  EXPECT_EQ(Observability::Global().CounterValue("test.never_created"), 0u);
}

TEST_F(ObservabilityTest, RegistryReturnsStableReferences) {
  ObsCounter& a = Observability::Global().Counter("test.stable");
  ObsCounter& b = Observability::Global().Counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  Observability::Global().Reset();
  // Reset zeroes but never invalidates: cached call-site references (the
  // macros keep function-local statics) must stay usable.
  a.Add(1);
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(ObservabilityTest, GaugeTracksCurrentAndPeak) {
  ObsGauge& g = Observability::Global().Gauge("test.gauge");
  g.Add(100);
  g.Add(-40);
  g.Add(30);
  EXPECT_EQ(g.current(), 90);
  EXPECT_EQ(g.peak(), 100);
  EXPECT_EQ(Observability::Global().GaugeCurrent("test.gauge"), 90);
  EXPECT_EQ(Observability::Global().GaugePeak("test.gauge"), 100);
}

TEST_F(ObservabilityTest, GaugePeakSurvivesConcurrentUpdates) {
  ObsGauge& g = Observability::Global().Gauge("test.gauge.mt");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 10000; ++i) {
        g.Add(3);
        g.Add(-3);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.current(), 0);
  EXPECT_GE(g.peak(), 3);
  EXPECT_LE(g.peak(), 12);
}

TEST_F(ObservabilityTest, HistogramBucketsAndQuantiles) {
  ObsHistogram& h = Observability::Global().Histogram("test.hist");
  for (uint64_t v : {1u, 1u, 1u, 1u, 1u, 1u, 1u, 1u, 1u, 1000u}) h.Observe(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 1009u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  // Nine of ten samples are 1, so the median bucket is exact.
  EXPECT_EQ(h.ApproxQuantile(0.5), 1u);
  // The top quantile lands in the 1000 sample's bucket, clamped to the max.
  EXPECT_EQ(h.ApproxQuantile(1.0), 1000u);
}

TEST_F(ObservabilityTest, HistogramZeroSamples) {
  ObsHistogram& h = Observability::Global().Histogram("test.hist.zero");
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);
  h.Observe(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST_F(ObservabilityTest, CountersAreThreadSafe) {
  ObsCounter& c = Observability::Global().Counter("test.counter.mt");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 50000; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 400000u);
}

TEST_F(ObservabilityTest, SpansRecordHierarchy) {
  {
    TraceSpan outer("test.outer");
    { TraceSpan inner("test.inner"); }
  }
  const std::vector<SpanEvent> spans = Observability::Global().SpanEvents();
  ASSERT_EQ(spans.size(), 2u);
  // Spans are recorded on close, so the inner span lands first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_LE(spans[1].start_us, spans[0].start_us);
  // Closing a span also feeds the "span.<name>" duration histogram.
  EXPECT_EQ(Observability::Global().HistogramCount("span.test.outer"), 1u);
}

TEST_F(ObservabilityTest, SpanRingIsBounded) {
  for (size_t i = 0; i < Observability::kMaxSpanEvents + 10; ++i) {
    TraceSpan s("test.flood");
  }
  EXPECT_EQ(Observability::Global().SpanEvents().size(),
            Observability::kMaxSpanEvents);
  EXPECT_EQ(Observability::Global().spans_dropped(), 10u);
  Observability::Global().Reset();
  EXPECT_EQ(Observability::Global().spans_dropped(), 0u);
  EXPECT_TRUE(Observability::Global().SpanEvents().empty());
}

TEST_F(ObservabilityTest, RenderTextListsEverySection) {
  Observability::Global().Counter("test.render.counter").Add(3);
  Observability::Global().Gauge("test.render.gauge").Add(5);
  Observability::Global().Histogram("test.render.hist").Observe(9);
  const std::string text = Observability::Global().RenderText();
  EXPECT_NE(text.find("counters:"), std::string::npos);
  EXPECT_NE(text.find("test.render.counter = 3"), std::string::npos);
  EXPECT_NE(text.find("test.render.gauge current=5 peak=5"), std::string::npos);
  EXPECT_NE(text.find("test.render.hist count=1"), std::string::npos);
}

TEST_F(ObservabilityTest, RenderJsonIsWellFormedAndSorted) {
  Observability::Global().Counter("test.b").Add(2);
  Observability::Global().Counter("test.a").Add(1);
  Observability::Global().Gauge("test.g").Add(-7);
  const std::string json = Observability::Global().RenderJson();
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.a\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test.b\": 2"), std::string::npos);
  // std::map iteration renders names sorted: test.a before test.b.
  EXPECT_LT(json.find("\"test.a\""), json.find("\"test.b\""));
  EXPECT_NE(json.find("{\"current\": -7, \"peak\": 0}"), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\": 0"), std::string::npos);
  // Braces balance (cheap well-formedness check without a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(ObservabilityTest, JsonEscapesHostileNames) {
  Observability::Global().Counter("test.\"quote\\back\nline").Add(1);
  const std::string json = Observability::Global().RenderJson();
  EXPECT_NE(json.find("test.\\\"quote\\\\back\\nline"), std::string::npos);
}

TEST_F(ObservabilityTest, MacrosFeedTheGlobalRegistry) {
  TBC_COUNT("test.macro.count");
  TBC_COUNT_N("test.macro.count", 4);
  TBC_OBSERVE_VALUE("test.macro.value", 123);
  TBC_GAUGE_ADD("test.macro.gauge", 17);
  { TBC_SPAN("test.macro.span"); }
  TBC_COUNT_DYN(std::string("test.macro.") + "dyn");
  Observability& obs = Observability::Global();
#if TBC_OBSERVE_ON
  EXPECT_EQ(obs.CounterValue("test.macro.count"), 5u);
  EXPECT_EQ(obs.HistogramCount("test.macro.value"), 1u);
  EXPECT_EQ(obs.HistogramSum("test.macro.value"), 123u);
  EXPECT_EQ(obs.GaugeCurrent("test.macro.gauge"), 17);
  EXPECT_EQ(obs.HistogramCount("span.test.macro.span"), 1u);
  EXPECT_EQ(obs.CounterValue("test.macro.dyn"), 1u);
#else
  // Kill switch thrown: every macro above must have been a no-op.
  EXPECT_EQ(obs.CounterValue("test.macro.count"), 0u);
  EXPECT_EQ(obs.HistogramCount("test.macro.value"), 0u);
  EXPECT_EQ(obs.GaugeCurrent("test.macro.gauge"), 0);
#endif
}

TEST_F(ObservabilityTest, ThreadIndexIsStablePerThread) {
  const uint32_t here = Observability::ThreadIndex();
  EXPECT_EQ(Observability::ThreadIndex(), here);
  uint32_t other = here;
  std::thread t([&other] { other = Observability::ThreadIndex(); });
  t.join();
  EXPECT_NE(other, here);
}

// --- ScaledDouble (base/logspace.h) ---------------------------------------

TEST(ScaledDoubleTest, RoundTripsRepresentableValues) {
  for (double v : {0.0, 1.0, -1.0, 0.5, 2.0, 1e-3, 1e300, -1e-300, 3.14159}) {
    EXPECT_EQ(ScaledDouble::FromDouble(v).ToDouble(), v) << v;
  }
  EXPECT_TRUE(ScaledDouble::Zero().IsZero());
  EXPECT_EQ(ScaledDouble::One().ToDouble(), 1.0);
}

TEST(ScaledDoubleTest, MantissaIsFrexpNormalized) {
  const ScaledDouble s = ScaledDouble::FromDouble(12.0);  // 0.75 * 2^4
  EXPECT_EQ(s.mantissa(), 0.75);
  EXPECT_EQ(s.exponent(), 4);
}

TEST(ScaledDoubleTest, MultiplicationMatchesDoubleBitForBit) {
  const double values[] = {1e-3, 7.25, 0.1, 123456.789, 1e3, 0.9999999};
  double plain = 1.0;
  ScaledDouble scaled = ScaledDouble::One();
  for (double v : values) {
    plain *= v;
    scaled *= ScaledDouble::FromDouble(v);
    EXPECT_EQ(scaled.ToDouble(), plain);  // exact equality, not tolerance
  }
}

TEST(ScaledDoubleTest, AdditionMatchesDoubleBitForBit) {
  const double a_values[] = {1e-3, 1.0, 3.5e10, 1e-300, 0.1};
  const double b_values[] = {2e-3, 1e-17, 7.0, 2e-300, 0.2};
  for (double a : a_values) {
    for (double b : b_values) {
      const ScaledDouble s =
          ScaledDouble::FromDouble(a) + ScaledDouble::FromDouble(b);
      EXPECT_EQ(s.ToDouble(), a + b) << a << " + " << b;
    }
  }
}

TEST(ScaledDoubleTest, AdditionDropsNegligibleAddendLikeDouble) {
  // Gap of >= 64 binary orders: plain double rounds the small addend away;
  // ScaledDouble must agree.
  const double big = 1.0, small = 1e-30;
  EXPECT_EQ((ScaledDouble::FromDouble(big) + ScaledDouble::FromDouble(small))
                .ToDouble(),
            big + small);
  EXPECT_EQ(big + small, big);
}

TEST(ScaledDoubleTest, SurvivesDeepUnderflowAndRecovers) {
  // 2000 multiplications by 1e-3: far below double's reach (~1e-6000).
  ScaledDouble product = ScaledDouble::One();
  const ScaledDouble w = ScaledDouble::FromDouble(1e-3);
  for (int i = 0; i < 2000; ++i) product *= w;
  EXPECT_FALSE(product.IsZero());
  EXPECT_FALSE(product.FitsDouble());
  EXPECT_EQ(product.ToDouble(), 0.0);  // saturating conversion
  EXPECT_NEAR(product.Log2Abs(), 2000 * std::log2(1e-3), 1e-6);
  // Multiplying the inverse chain back recovers 1.0 to double precision.
  const ScaledDouble inv = ScaledDouble::FromDouble(1e3);
  for (int i = 0; i < 2000; ++i) product *= inv;
  EXPECT_TRUE(product.FitsDouble());
  EXPECT_NEAR(product.ToDouble(), 1.0, 1e-10);
}

TEST(ScaledDoubleTest, SurvivesOverflowSymmetrically) {
  ScaledDouble product = ScaledDouble::One();
  const ScaledDouble w = ScaledDouble::FromDouble(1e6);
  for (int i = 0; i < 100; ++i) product *= w;  // 1e600: above DBL_MAX
  EXPECT_FALSE(product.FitsDouble());
  EXPECT_TRUE(std::isinf(product.ToDouble()));
  EXPECT_NEAR(product.Log2Abs(), 600 * std::log2(10.0), 1e-6);
}

TEST(ScaledDoubleTest, ZeroAndSignHandling) {
  const ScaledDouble z = ScaledDouble::Zero();
  const ScaledDouble x = ScaledDouble::FromDouble(-2.5);
  EXPECT_TRUE((z * x).IsZero());
  EXPECT_EQ((z + x).ToDouble(), -2.5);
  EXPECT_EQ((x + z).ToDouble(), -2.5);
  EXPECT_EQ((x * x).ToDouble(), 6.25);
  // Exact cancellation collapses to a clean zero.
  const ScaledDouble y = ScaledDouble::FromDouble(2.5);
  EXPECT_TRUE((x + y).IsZero());
}

}  // namespace
}  // namespace tbc
