// Adversarial parser corpus: every file under tests/corpus is malformed in
// a specific way and must be rejected with a typed kInvalidInput — never an
// abort, a crash, or a silent success. The corpus is the regression net for
// the parser-hardening work (line-numbered errors, strict numeric parsing,
// validity checks before the aborting builders).

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bayes/io.h"
#include "gtest/gtest.h"
#include "logic/cnf.h"
#include "nnf/io.h"
#include "sdd/io.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

std::string ReadCorpusFile(const std::string& name) {
  const std::string path = std::string(TBC_CORPUS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing corpus file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(MalformedInput, CnfCorpusRejected) {
  const std::vector<std::string> files = {
      "cnf_bad_header.cnf",    "cnf_bad_token.cnf",
      "cnf_huge_var_count.cnf", "cnf_missing_header.cnf",
      "cnf_int_min_literal.cnf",
  };
  for (const std::string& name : files) {
    auto r = Cnf::ParseDimacs(ReadCorpusFile(name));
    ASSERT_FALSE(r.ok()) << name;
    EXPECT_EQ(r.error_code(), StatusCode::kInvalidInput) << name;
    EXPECT_FALSE(r.status().message().empty()) << name;
  }
}

TEST(MalformedInput, NnfCorpusRejected) {
  const std::vector<std::string> files = {
      "nnf_zero_literal.nnf", "nnf_bad_literal.nnf",   "nnf_bad_arity.nnf",
      "nnf_missing_header.nnf", "nnf_bad_count.nnf",   "nnf_forward_ref.nnf",
  };
  for (const std::string& name : files) {
    NnfManager mgr;
    auto r = ReadNnf(mgr, ReadCorpusFile(name));
    ASSERT_FALSE(r.ok()) << name;
    EXPECT_EQ(r.error_code(), StatusCode::kInvalidInput) << name;
  }
}

TEST(MalformedInput, BayesNetCorpusRejected) {
  const std::vector<std::string> files = {
      "bn_bad_cardinality.bn",   "bn_bad_probability.bn",
      "bn_row_not_normalized.bn", "bn_parent_after_child.bn",
      "bn_var_without_cpt.bn",   "bn_cpt_size_mismatch.bn",
  };
  for (const std::string& name : files) {
    auto r = ParseNetwork(ReadCorpusFile(name));
    ASSERT_FALSE(r.ok()) << name;
    EXPECT_EQ(r.error_code(), StatusCode::kInvalidInput) << name;
  }
}

TEST(MalformedInput, SddCorpusRejected) {
  const std::vector<std::string> files = {
      "sdd_bad_literal_var.sdd", "sdd_empty_partition.sdd",
      "sdd_nonexhaustive_primes.sdd", "sdd_forward_ref.sdd",
      "sdd_bad_node_id.sdd",
  };
  for (const std::string& name : files) {
    SddManager mgr(Vtree::Balanced({0, 1, 2}));
    auto r = ReadSdd(mgr, ReadCorpusFile(name));
    ASSERT_FALSE(r.ok()) << name;
    EXPECT_EQ(r.error_code(), StatusCode::kInvalidInput) << name;
  }
}

// Line numbers make malformed-file reports actionable.
TEST(MalformedInput, ErrorsCarryLineNumbers) {
  auto cnf = Cnf::ParseDimacs("p cnf 2 1\n1 x 0\n");
  ASSERT_FALSE(cnf.ok());
  EXPECT_NE(cnf.status().message().find("line 2"), std::string::npos)
      << cnf.status().message();

  auto net = ParseNetwork("net 1\nvar a 2 0\ncpt 0 0.9 0.9\n");
  ASSERT_FALSE(net.ok());
  EXPECT_NE(net.status().message().find("line 3"), std::string::npos)
      << net.status().message();

  NnfManager mgr;
  auto nnf = ReadNnf(mgr, "nnf 1 0 1\nL abc\n");
  ASSERT_FALSE(nnf.ok());
  EXPECT_NE(nnf.status().message().find("line 2"), std::string::npos)
      << nnf.status().message();
}

// Well-formed files must still parse after the hardening.
TEST(MalformedInput, WellFormedStillAccepted) {
  auto cnf = Cnf::ParseDimacs("c comment\np cnf 2 2\n1 2 0\n-1 -2 0\n");
  ASSERT_TRUE(cnf.ok()) << cnf.status().message();
  EXPECT_EQ(cnf->num_vars(), 2u);
  EXPECT_EQ(cnf->num_clauses(), 2u);

  auto net = ParseNetwork("net 1\nvar a 2 0\ncpt 0 0.3 0.7\n");
  ASSERT_TRUE(net.ok()) << net.status().message();
  EXPECT_EQ(net->num_vars(), 1u);
}

// Files written on Windows (CRLF line endings) or truncated by tools that
// drop the final newline are legitimate inputs, not attacks: every text
// parser accepts both. Regression net for the lenient-line-splitting
// behavior (tests/corpus/crlf/).
TEST(MalformedInput, CrlfAndMissingTrailingNewlineAccepted) {
  auto cnf = Cnf::ParseDimacs(ReadCorpusFile("crlf/crlf.cnf"));
  ASSERT_TRUE(cnf.ok()) << cnf.status().message();
  EXPECT_EQ(cnf->num_vars(), 3u);
  EXPECT_EQ(cnf->num_clauses(), 2u);

  auto bare = Cnf::ParseDimacs(ReadCorpusFile("crlf/no_trailing_newline.cnf"));
  ASSERT_TRUE(bare.ok()) << bare.status().message();
  EXPECT_EQ(bare->num_clauses(), 1u);  // the unterminated clause still lands

  NnfManager mgr;
  auto nnf = ReadNnf(mgr, ReadCorpusFile("crlf/crlf.nnf"));
  ASSERT_TRUE(nnf.ok()) << nnf.status().message();

  SddManager sdd(Vtree::Balanced({0, 1}));
  auto circuit = ReadSdd(sdd, ReadCorpusFile("crlf/crlf.sdd"));
  ASSERT_TRUE(circuit.ok()) << circuit.status().message();

  // The same content with Unix endings must parse to the same circuit
  // (CRLF tolerance cannot change semantics).
  std::string unix_cnf = ReadCorpusFile("crlf/crlf.cnf");
  std::string stripped;
  for (char c : unix_cnf) {
    if (c != '\r') stripped += c;
  }
  auto unix_parsed = Cnf::ParseDimacs(stripped);
  ASSERT_TRUE(unix_parsed.ok());
  EXPECT_EQ(unix_parsed->num_clauses(), cnf->num_clauses());
}

}  // namespace
}  // namespace tbc
