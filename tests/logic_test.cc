#include <gtest/gtest.h>

#include "logic/cnf.h"
#include "logic/formula.h"
#include "logic/simplify.h"
#include "logic/lit.h"

namespace tbc {
namespace {

TEST(LitTest, EncodingRoundTrips) {
  Lit a = Pos(0), na = Neg(0);
  EXPECT_EQ(a.var(), 0u);
  EXPECT_TRUE(a.positive());
  EXPECT_FALSE(na.positive());
  EXPECT_EQ(~a, na);
  EXPECT_EQ(~na, a);
  EXPECT_EQ(a.ToDimacs(), 1);
  EXPECT_EQ(na.ToDimacs(), -1);
  EXPECT_EQ(Lit::FromDimacs(-5), Neg(4));
  EXPECT_EQ(Lit::FromCode(Pos(3).code()), Pos(3));
}

TEST(LitTest, EvalUnderAssignment) {
  Assignment a = {true, false};
  EXPECT_TRUE(Eval(Pos(0), a));
  EXPECT_FALSE(Eval(Neg(0), a));
  EXPECT_TRUE(Eval(Neg(1), a));
}

TEST(WeightMapTest, DefaultsToOne) {
  WeightMap w(3);
  EXPECT_DOUBLE_EQ(w[Pos(2)], 1.0);
  w.Set(Neg(1), 0.25);
  EXPECT_DOUBLE_EQ(w[Neg(1)], 0.25);
  EXPECT_DOUBLE_EQ(w[Pos(1)], 1.0);
}

TEST(CnfTest, AddClauseDeduplicatesAndDropsTautologies) {
  Cnf cnf;
  cnf.AddClauseDimacs({1, 1, 2});
  ASSERT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clause(0).size(), 2u);
  cnf.AddClauseDimacs({1, -1, 3});  // tautology -> dropped, vars unchanged
  EXPECT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.num_vars(), 2u);
}

TEST(CnfTest, EvaluateAndCondition) {
  Cnf cnf;
  cnf.AddClauseDimacs({1, 2});
  cnf.AddClauseDimacs({-1, 3});
  EXPECT_TRUE(cnf.Evaluate({true, false, true}));
  EXPECT_FALSE(cnf.Evaluate({true, false, false}));

  Cnf cond = cnf.Condition(Pos(0));  // set var0 = true
  // First clause satisfied; second reduces to {3}.
  ASSERT_EQ(cond.num_clauses(), 1u);
  EXPECT_EQ(cond.clause(0), Clause{Pos(2)});

  Cnf cond2 = cnf.Condition(Neg(0));
  ASSERT_EQ(cond2.num_clauses(), 1u);
  EXPECT_EQ(cond2.clause(0), Clause{Pos(1)});
}

TEST(CnfTest, BruteForceCount) {
  Cnf cnf(2);
  cnf.AddClauseDimacs({1, 2});
  EXPECT_EQ(cnf.CountModelsBruteForce(), 3u);
  Cnf empty(3);
  EXPECT_EQ(empty.CountModelsBruteForce(), 8u);
}

TEST(CnfTest, DimacsRoundTrip) {
  Cnf cnf(4);
  cnf.AddClauseDimacs({1, -2});
  cnf.AddClauseDimacs({3, 4, -1});
  auto parsed = Cnf::ParseDimacs(cnf.ToDimacs());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_vars(), 4u);
  EXPECT_EQ(parsed.value().num_clauses(), 2u);
  EXPECT_EQ(parsed.value().clause(0), cnf.clause(0));
}

TEST(CnfTest, DimacsParseErrors) {
  EXPECT_FALSE(Cnf::ParseDimacs("1 2 0").ok());          // missing header
  EXPECT_FALSE(Cnf::ParseDimacs("p dnf 2 1\n1 0").ok()); // wrong type
  EXPECT_FALSE(Cnf::ParseDimacs("p cnf 2 1\n1 x 0").ok());
}

TEST(CnfTest, DimacsParsesCommentsAndMultilineClauses) {
  auto parsed = Cnf::ParseDimacs("c hi\np cnf 3 2\n1\n-2 0 2 3 0\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_clauses(), 2u);
}

TEST(SimplifyTest, UnitPropagationToFixpoint) {
  Cnf cnf(4);
  cnf.AddClauseDimacs({1});
  cnf.AddClauseDimacs({-1, 2});
  cnf.AddClauseDimacs({-2, 3});
  cnf.AddClauseDimacs({3, 4});
  PreprocessResult r = Preprocess(cnf);
  EXPECT_FALSE(r.unsat);
  EXPECT_EQ(r.units.size(), 3u);  // x1, x2, x3 all forced
  EXPECT_EQ(r.simplified.num_clauses(), 0u);
}

TEST(SimplifyTest, DetectsConflict) {
  Cnf cnf(2);
  cnf.AddClauseDimacs({1});
  cnf.AddClauseDimacs({-1, 2});
  cnf.AddClauseDimacs({-2});
  PreprocessResult r = Preprocess(cnf);
  EXPECT_TRUE(r.unsat);
  EXPECT_EQ(Reassemble(r).CountModelsBruteForce(), 0u);
}

TEST(SimplifyTest, SubsumptionDropsSupersets) {
  Cnf cnf(4);
  cnf.AddClauseDimacs({1, 2});
  cnf.AddClauseDimacs({1, 2, 3});   // subsumed by {1,2}
  cnf.AddClauseDimacs({1, 2, -4});  // subsumed by {1,2}
  cnf.AddClauseDimacs({3, 4});
  cnf.AddClauseDimacs({3, 4});      // duplicate
  PreprocessResult r = Preprocess(cnf);
  EXPECT_EQ(r.simplified.num_clauses(), 2u);
}

TEST(SimplifyTest, PreservesModelCount) {
  // Equivalence check: count(original) == count(simplified ∧ units).
  Cnf cnf(6);
  cnf.AddClauseDimacs({1});
  cnf.AddClauseDimacs({-1, 2, 3});
  cnf.AddClauseDimacs({2, 3, 4});     // subsumed once unit 1 hits? no: kept
  cnf.AddClauseDimacs({-2, 5});
  cnf.AddClauseDimacs({4, -5, 6});
  cnf.AddClauseDimacs({4, -5, 6, 2});  // subsumed
  const PreprocessResult r = Preprocess(cnf);
  EXPECT_EQ(Reassemble(r).CountModelsBruteForce(), cnf.CountModelsBruteForce());
}

TEST(SimplifyTest, PureLiterals) {
  Cnf cnf(3);
  cnf.AddClauseDimacs({1, 2});
  cnf.AddClauseDimacs({1, -2});
  cnf.AddClauseDimacs({-3, 2});
  const std::vector<Lit> pure = PureLiterals(cnf);
  // x1 appears only positively, x3 only negatively; x2 both ways.
  ASSERT_EQ(pure.size(), 2u);
  EXPECT_EQ(pure[0], Pos(0));
  EXPECT_EQ(pure[1], Neg(2));
}

TEST(FormulaTest, ConstantsAndSimplification) {
  FormulaStore fs;
  EXPECT_EQ(fs.And(fs.True(), fs.False()), fs.False());
  EXPECT_EQ(fs.Or(fs.True(), fs.False()), fs.True());
  FormulaId x = fs.VarNode(0);
  EXPECT_EQ(fs.And(x, fs.True()), x);
  EXPECT_EQ(fs.Or(x, fs.False()), x);
  EXPECT_EQ(fs.Not(fs.Not(x)), x);
  EXPECT_EQ(fs.And(x, x), x);
}

TEST(FormulaTest, HashConsingShares) {
  FormulaStore fs;
  FormulaId a = fs.VarNode(0), b = fs.VarNode(1);
  EXPECT_EQ(fs.And(a, b), fs.And(b, a));  // commutative normalization
  EXPECT_EQ(fs.Or(a, b), fs.Or(b, a));
}

TEST(FormulaTest, Evaluate) {
  FormulaStore fs;
  FormulaId a = fs.VarNode(0), b = fs.VarNode(1), c = fs.VarNode(2);
  FormulaId f = fs.And(fs.Or(a, fs.Not(c)), fs.And(fs.Or(b, c), fs.Or(a, b)));
  // f = (A + ~C)(B + C)(A + B), the paper's Figure 26 function.
  EXPECT_TRUE(fs.Evaluate(f, {true, true, false}));
  EXPECT_FALSE(fs.Evaluate(f, {false, false, true}));
  EXPECT_TRUE(fs.Evaluate(f, {true, true, true}));
  EXPECT_TRUE(fs.Evaluate(f, {true, false, true}));   // (1)(1)(1)
  EXPECT_FALSE(fs.Evaluate(f, {false, true, true}));  // A+~C fails
}

TEST(FormulaTest, Fig26TruthTable) {
  FormulaStore fs;
  FormulaId a = fs.VarNode(0), b = fs.VarNode(1), c = fs.VarNode(2);
  FormulaId f = fs.And({fs.Or(a, fs.Not(c)), fs.Or(b, c), fs.Or(a, b)});
  int count = 0;
  for (int bits = 0; bits < 8; ++bits) {
    Assignment asg = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    bool expect = (asg[0] || !asg[2]) && (asg[1] || asg[2]) && (asg[0] || asg[1]);
    EXPECT_EQ(fs.Evaluate(f, asg), expect);
    count += expect;
  }
  EXPECT_EQ(count, 4);  // AB, ABC, A~BC... the function has 4 models
}

TEST(FormulaTest, TseitinPreservesModelCountOverOriginalVars) {
  FormulaStore fs;
  FormulaId a = fs.VarNode(0), b = fs.VarNode(1), c = fs.VarNode(2);
  FormulaId f = fs.Or(fs.And(a, b), fs.Xor(b, c));
  // Count models of f directly.
  int direct = 0;
  for (int bits = 0; bits < 8; ++bits) {
    Assignment asg = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    direct += fs.Evaluate(f, asg);
  }
  Cnf cnf = fs.ToCnfTseitin(f);
  EXPECT_EQ(cnf.CountModelsBruteForce(), static_cast<uint64_t>(direct));
}

TEST(FormulaTest, CardinalityBuilders) {
  FormulaStore fs;
  std::vector<FormulaId> xs = {fs.VarNode(0), fs.VarNode(1), fs.VarNode(2)};
  FormulaId exactly_one = fs.ExactlyOne(xs);
  FormulaId majority = fs.Majority(xs);  // >= 2 of 3
  int eo = 0, maj = 0;
  for (int bits = 0; bits < 8; ++bits) {
    Assignment asg = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    int ones = asg[0] + asg[1] + asg[2];
    EXPECT_EQ(fs.Evaluate(exactly_one, asg), ones == 1);
    EXPECT_EQ(fs.Evaluate(majority, asg), ones >= 2);
    eo += ones == 1;
    maj += ones >= 2;
  }
  EXPECT_EQ(eo, 3);
  EXPECT_EQ(maj, 4);
}

TEST(FormulaTest, AtLeastKEdgeCases) {
  FormulaStore fs;
  std::vector<FormulaId> xs = {fs.VarNode(0), fs.VarNode(1)};
  EXPECT_EQ(fs.AtLeastK(xs, 0), fs.True());
  EXPECT_EQ(fs.AtLeastK(xs, 3), fs.False());
  FormulaId both = fs.AtLeastK(xs, 2);
  EXPECT_TRUE(fs.Evaluate(both, {true, true}));
  EXPECT_FALSE(fs.Evaluate(both, {true, false}));
}

}  // namespace
}  // namespace tbc
