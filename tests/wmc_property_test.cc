// Property tests for weighted model counting: the count is a function of
// the *formula*, not of its presentation. Two presentations are exercised —
// clause reordering (must be bit-identical: canonicalization sorts the
// clause list, so the DPLL trace is the same) and variable renaming (must
// agree to an ulp-scaled tolerance: the branch order changes, so the same
// sum is accumulated in a different order). The validate preset
// (TBC_VALIDATE=ON) runs this file unchanged with the self-checking
// assertions compiled in.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "base/random.h"
#include "compiler/model_counter.h"
#include "logic/cnf.h"
#include "logic/lit.h"

namespace tbc {
namespace {

Cnf RandomCnf(size_t num_vars, size_t num_clauses, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(num_vars);
  for (size_t i = 0; i < num_clauses; ++i) {
    std::set<Var> vars;
    while (vars.size() < 3) {
      vars.insert(static_cast<Var>(rng.Below(num_vars)));
    }
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

WeightMap RandomWeights(size_t num_vars, uint64_t seed) {
  Rng rng(seed);
  WeightMap w(num_vars);
  for (Var v = 0; v < num_vars; ++v) {
    const double p = 0.05 + 0.9 * rng.Uniform();
    w.Set(Pos(v), p);
    w.Set(Neg(v), 1.0 - p);
  }
  return w;
}

std::vector<Var> RandomPermutation(size_t n, Rng& rng) {
  std::vector<Var> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<Var>(i);
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Below(i)]);
  }
  return perm;
}

Cnf ShuffleClauses(const Cnf& cnf, Rng& rng) {
  std::vector<Clause> clauses = cnf.clauses();
  for (size_t i = clauses.size(); i > 1; --i) {
    std::swap(clauses[i - 1], clauses[rng.Below(i)]);
  }
  Cnf out(cnf.num_vars());
  for (Clause& c : clauses) out.AddClause(std::move(c));
  return out;
}

Cnf RenameVars(const Cnf& cnf, const std::vector<Var>& perm) {
  Cnf out(cnf.num_vars());
  for (const Clause& c : cnf.clauses()) {
    Clause renamed;
    renamed.reserve(c.size());
    for (const Lit l : c) renamed.push_back(Lit(perm[l.var()], l.positive()));
    out.AddClause(std::move(renamed));
  }
  return out;
}

WeightMap RenameWeights(const WeightMap& w, const std::vector<Var>& perm) {
  WeightMap out(w.num_vars());
  for (Var v = 0; v < w.num_vars(); ++v) {
    out.Set(Pos(perm[v]), w[Pos(v)]);
    out.Set(Neg(perm[v]), w[Neg(v)]);
  }
  return out;
}

TEST(WmcPropertyTest, InvariantUnderClauseReordering) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const Cnf cnf = RandomCnf(14, 42, seed + 7000);
    const WeightMap w = RandomWeights(14, seed + 7100);
    ModelCounter counter;
    const double base = counter.Wmc(cnf, w);
    Rng rng(seed + 7200);
    for (int round = 0; round < 4; ++round) {
      const Cnf shuffled = ShuffleClauses(cnf, rng);
      ModelCounter fresh;
      // Bit-identical, not merely close: Canonicalize sorts the clause
      // list before the search, so the presentation order never reaches
      // the accumulator.
      EXPECT_EQ(fresh.Wmc(shuffled, w), base)
          << "seed " << seed << " round " << round;
    }
  }
}

TEST(WmcPropertyTest, InvariantUnderVariableRenaming) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const Cnf cnf = RandomCnf(14, 42, seed + 8000);
    const WeightMap w = RandomWeights(14, seed + 8100);
    ModelCounter counter;
    const double base = counter.Wmc(cnf, w);
    Rng rng(seed + 8200);
    for (int round = 0; round < 4; ++round) {
      const std::vector<Var> perm = RandomPermutation(14, rng);
      const Cnf renamed = RenameVars(cnf, perm);
      const WeightMap rw = RenameWeights(w, perm);
      ModelCounter fresh;
      const double got = fresh.Wmc(renamed, rw);
      // Renaming permutes the branch order, so the same sum accumulates in
      // a different order; allow an ulp-scaled tolerance (2^-40 relative,
      // ~8k ulps of headroom over the handful that actually occur).
      const double tol = std::ldexp(std::fabs(base), -40);
      EXPECT_NEAR(got, base, tol) << "seed " << seed << " round " << round;
    }
  }
}

TEST(WmcPropertyTest, ExactCountInvariantUnderRenaming) {
  // The integer counter has no rounding at all: renaming must preserve the
  // exact BigUint count.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const Cnf cnf = RandomCnf(13, 36, seed + 9000);
    ModelCounter counter;
    const BigUint base = counter.Count(cnf);
    Rng rng(seed + 9100);
    const std::vector<Var> perm = RandomPermutation(13, rng);
    ModelCounter fresh;
    EXPECT_EQ(fresh.Count(RenameVars(cnf, perm)), base) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tbc
