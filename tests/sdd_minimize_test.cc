// Property tests for in-place dynamic vtree minimization: every rotate /
// swap step applied to a live SDD must preserve the compiled function
// (model count, weighted model count, evaluation), keep the manager
// analyzer-clean, and stay in lockstep with the recompilation oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/sdd_analyzer.h"
#include "base/guard.h"
#include "base/random.h"
#include "sdd/compile.h"
#include "sdd/io.h"
#include "sdd/minimize.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

Cnf RandomCnf(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < k) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

void ExpectAnalyzerClean(SddManager& mgr, SddId root, const char* where) {
  DiagnosticReport report;
  AnalyzeSdd(mgr, root, SddAnalysisOptions{}, report);
  EXPECT_TRUE(report.clean()) << where << ":\n" << report.ToText("sdd");
}

WeightMap SkewedWeights(size_t num_vars) {
  WeightMap w(num_vars);
  for (Var v = 0; v < num_vars; ++v) {
    w.Set(Pos(v), 0.25 + 0.1 * static_cast<double>(v % 5));
    w.Set(Neg(v), 1.0);
  }
  return w;
}

// The core per-step oracle: apply every edit kind at every vtree node of a
// compiled SDD; each applied step must preserve model count, WMC, and
// analyzer cleanliness, and undoing it via the exact inverse must restore
// the original size.
TEST(SddInPlaceEditTest, EveryEditPreservesSemanticsAndUndoes) {
  for (const uint64_t seed : {11u, 47u}) {
    const Cnf cnf = RandomCnf(8, 18, 3, seed);
    for (int shape = 0; shape < 2; ++shape) {
      SddManager mgr(shape == 0
                         ? Vtree::Balanced(Vtree::IdentityOrder(8))
                         : Vtree::RightLinear(Vtree::IdentityOrder(8)));
      SddId f = CompileCnf(mgr, cnf);
      const uint64_t models = cnf.CountModelsBruteForce();
      ASSERT_EQ(mgr.ModelCount(f).ToU64(), models);
      const WeightMap weights = SkewedWeights(8);
      const double wmc = mgr.Wmc(f, weights);
      for (VtreeId v = 0; v < mgr.vtree().num_nodes(); ++v) {
        for (int op = 0; op < 3; ++op) {
          const size_t size_before = mgr.Size(f);
          const SddEditResult r = op == 0   ? mgr.RotateRightInPlace(v)
                                  : op == 1 ? mgr.RotateLeftInPlace(v)
                                            : mgr.SwapChildrenInPlace(v);
          EXPECT_FALSE(r.aborted);
          if (!r.applied) continue;
          f = mgr.Resolve(f);
          EXPECT_EQ(mgr.ModelCount(f).ToU64(), models);
          EXPECT_NEAR(mgr.Wmc(f, weights), wmc, 1e-9 * (1.0 + wmc));
          ExpectAnalyzerClean(mgr, f, "after edit");
          // Exact inverse restores the vtree and (by canonicity) the size.
          const SddEditResult undo = op == 0   ? mgr.RotateLeftInPlace(v)
                                     : op == 1 ? mgr.RotateRightInPlace(v)
                                               : mgr.SwapChildrenInPlace(v);
          ASSERT_TRUE(undo.applied);
          f = mgr.Resolve(f);
          EXPECT_EQ(mgr.Size(f), size_before);
          EXPECT_EQ(mgr.ModelCount(f).ToU64(), models);
        }
      }
      ExpectAnalyzerClean(mgr, f, "after sweep");
    }
  }
}

// After an in-place edit the live SDD must equal what a fresh compilation
// under the mutated vtree produces — the canonicity statement that makes
// in-place search interchangeable with recompilation.
TEST(SddInPlaceEditTest, EditedSddMatchesFreshRecompilation) {
  const Cnf cnf = RandomCnf(9, 20, 3, 77);
  SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(9)));
  SddId f = CompileCnf(mgr, cnf);
  Rng rng(5);
  size_t checked = 0;
  for (size_t step = 0; step < 40; ++step) {
    const VtreeId v = static_cast<VtreeId>(rng.Below(mgr.vtree().num_nodes()));
    const int op = static_cast<int>(rng.Below(3));
    const SddEditResult r = op == 0   ? mgr.RotateRightInPlace(v)
                            : op == 1 ? mgr.RotateLeftInPlace(v)
                                      : mgr.SwapChildrenInPlace(v);
    if (!r.applied) continue;
    f = mgr.Resolve(f);
    SddManager fresh(mgr.vtree());
    const SddId g = CompileCnf(fresh, cnf);
    EXPECT_EQ(mgr.Size(f), fresh.Size(g));
    EXPECT_EQ(mgr.NumDecisionNodes(f), fresh.NumDecisionNodes(g));
    EXPECT_EQ(mgr.ModelCount(f).ToU64(), fresh.ModelCount(g).ToU64());
    ++checked;
  }
  EXPECT_GT(checked, 10u);  // the walk actually exercised edits
}

// Forwarding pointers: a reclaimed node resolves to a live survivor, the
// live count excludes it, and external ids stay usable through Resolve().
TEST(SddInPlaceEditTest, ReclamationForwardsAndLiveCountBalances) {
  const Cnf cnf = RandomCnf(10, 26, 3, 13);
  SddManager mgr(Vtree::RightLinear(Vtree::IdentityOrder(10)));
  SddId f = CompileCnf(mgr, cnf);
  const uint64_t models = cnf.CountModelsBruteForce();
  Rng rng(3);
  size_t reclaimed_total = 0;
  for (size_t step = 0; step < 60; ++step) {
    const VtreeId v = static_cast<VtreeId>(rng.Below(mgr.vtree().num_nodes()));
    const int op = static_cast<int>(rng.Below(3));
    const SddEditResult r = op == 0   ? mgr.RotateRightInPlace(v)
                            : op == 1 ? mgr.RotateLeftInPlace(v)
                                      : mgr.SwapChildrenInPlace(v);
    reclaimed_total += r.reclaimed;
    f = mgr.Resolve(f);
    ASSERT_FALSE(mgr.IsDead(f));  // Resolve always lands on a live node
  }
  EXPECT_GT(reclaimed_total, 0u);  // rotations on a linear vtree do retire nodes
  EXPECT_LE(mgr.live_node_count() + 2, mgr.num_nodes());
  EXPECT_EQ(mgr.ModelCount(f).ToU64(), models);
}

// The in-place search must be deterministic for a fixed seed and must
// count every attempted neighbor, applicable or not.
TEST(SddInPlaceMinimizeTest, DeterministicAndCountsIterations) {
  const Cnf cnf = RandomCnf(10, 24, 3, 321);
  const Vtree initial = Vtree::RightLinear(Vtree::IdentityOrder(10));
  const MinimizeResult a = MinimizeVtree(cnf, initial, 80, 17);
  const MinimizeResult b = MinimizeVtree(cnf, initial, 80, 17);
  EXPECT_EQ(a.iterations, 80u);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.vtree.ToString(), b.vtree.ToString());
  EXPECT_LE(a.size, a.initial_size);
  // Returned (vtree, size) pairs are consistent: recompiling under the
  // returned vtree reproduces the reported size.
  SddManager check(a.vtree);
  EXPECT_EQ(check.Size(CompileCnf(check, cnf)) + 1, a.size);
}

// The recompilation-based search is the oracle: from the same start it
// explores the same neighborhood, so the in-place search must land on an
// equally small (or smaller) SDD given the same budget and seed.
TEST(SddInPlaceMinimizeTest, MatchesRecompileOracle) {
  const Cnf cnf = RandomCnf(10, 22, 3, 99);
  const Vtree initial = Vtree::RightLinear(Vtree::IdentityOrder(10));
  const MinimizeResult inplace = MinimizeVtree(cnf, initial, 120, 41);
  const MinimizeResult recompile =
      MinimizeVtreeByRecompile(cnf, initial, 120, 41, Guard::Unlimited());
  EXPECT_EQ(inplace.initial_size, recompile.initial_size);
  EXPECT_LE(inplace.size, recompile.size);
  // Both ends of the comparison still represent the same function.
  SddManager m1(inplace.vtree);
  SddManager m2(recompile.vtree);
  EXPECT_EQ(m1.ModelCount(CompileCnf(m1, cnf)).ToU64(),
            m2.ModelCount(CompileCnf(m2, cnf)).ToU64());
}

// MinimizeSddInPlace on a caller-owned manager: the root is re-homed, the
// incumbent never grows, and the pass reports its edit accounting.
TEST(SddInPlaceMinimizeTest, MinimizesCallerOwnedManager) {
  const Cnf cnf = RandomCnf(12, 30, 3, 1234);
  SddManager mgr(Vtree::RightLinear(Vtree::IdentityOrder(12)));
  const SddId f = CompileCnf(mgr, cnf);
  const uint64_t models = cnf.CountModelsBruteForce();
  const SddInPlaceMinimizeResult r = MinimizeSddInPlace(mgr, f, 100, 7);
  EXPECT_FALSE(r.interrupted);
  EXPECT_EQ(r.iterations, 100u);
  EXPECT_LE(r.size, r.initial_size);
  EXPECT_EQ(mgr.Size(mgr.Resolve(f)), r.size);  // old handle still resolves
  EXPECT_EQ(mgr.ModelCount(r.root).ToU64(), models);
  EXPECT_GT(r.applied, 0u);
}

// The size-triggered hook: an aggressive policy on a growing compilation
// must fire, and the compiled function must be unaffected.
TEST(SddAutoMinimizeTest, TriggerFiresAndPreservesFunction) {
  const Cnf cnf = RandomCnf(14, 40, 3, 2024);
  SddManager plain(Vtree::RightLinear(Vtree::IdentityOrder(14)));
  const SddId reference = CompileCnf(plain, cnf);
  const BigUint models = plain.ModelCount(reference);

  SddManager mgr(Vtree::RightLinear(Vtree::IdentityOrder(14)));
  SddAutoMinimizeOptions opts =
      SddAutoMinimizeOptions::ForMode(SddMinimizeMode::kAggressive);
  opts.min_live_nodes = 32;  // fire early on this small instance
  mgr.set_auto_minimize(opts);
  const SddId f = CompileCnf(mgr, cnf);
  EXPECT_GT(mgr.auto_minimize_fires(), 0u);
  EXPECT_EQ(mgr.ModelCount(f), models);
  ExpectAnalyzerClean(mgr, f, "after auto-minimize");
  // Auto-minimize must not *grow* the artifact the caller gets back.
  EXPECT_LE(mgr.Size(f), plain.Size(reference));
}

// Off mode never fires; the process-wide default reaches new managers.
TEST(SddAutoMinimizeTest, DefaultPolicyIsCopiedAtConstruction) {
  const SddAutoMinimizeOptions saved = SddManager::DefaultAutoMinimize();
  SddAutoMinimizeOptions opts =
      SddAutoMinimizeOptions::ForMode(SddMinimizeMode::kAuto);
  opts.min_live_nodes = 64;
  SddManager::SetDefaultAutoMinimize(opts);
  SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(4)));
  EXPECT_EQ(mgr.auto_minimize().mode, SddMinimizeMode::kAuto);
  EXPECT_EQ(mgr.auto_minimize().min_live_nodes, 64u);
  SddManager::SetDefaultAutoMinimize(saved);
  SddManager off(Vtree::Balanced(Vtree::IdentityOrder(4)));
  EXPECT_EQ(off.auto_minimize().mode, SddMinimizeMode::kOff);
  const SddId t = off.MaybeAutoMinimize(off.True());
  EXPECT_EQ(t, off.True());
  EXPECT_EQ(off.auto_minimize_fires(), 0u);
}

// An aborted edit (node budget tripped mid-rewrite) must roll back to a
// consistent state: same vtree, same function, manager reusable after
// ClearInterrupt.
TEST(SddInPlaceEditTest, AbortRollsBackCompletely) {
  const Cnf cnf = RandomCnf(12, 32, 3, 555);
  SddManager mgr(Vtree::RightLinear(Vtree::IdentityOrder(12)));
  const SddId f = CompileCnf(mgr, cnf);
  const uint64_t models = cnf.CountModelsBruteForce();
  const std::string vtree_before = mgr.vtree().ToString();
  const size_t size_before = mgr.Size(f);
  // A one-node budget trips on the first fresh intern inside any rewrite.
  // Rotate LEFT: on a right-linear vtree that is the op that always finds
  // an internal right child to pull up (rotate right never applies).
  size_t aborted = 0;
  for (VtreeId v = 0; v < mgr.vtree().num_nodes() && aborted == 0; ++v) {
    Guard tight(Budget::NodeLimit(1));
    mgr.set_guard(&tight);
    const SddEditResult r = mgr.RotateLeftInPlace(v);
    mgr.set_guard(nullptr);
    if (r.aborted) {
      ++aborted;
      mgr.ClearInterrupt();
    } else if (r.applied) {
      // Small fragment fit under the budget; undo to keep the baseline.
      ASSERT_TRUE(mgr.RotateRightInPlace(v).applied);
      mgr.ClearInterrupt();
    }
  }
  ASSERT_EQ(aborted, 1u);
  EXPECT_EQ(mgr.vtree().ToString(), vtree_before);
  const SddId g = mgr.Resolve(f);
  EXPECT_EQ(mgr.Size(g), size_before);
  EXPECT_EQ(mgr.ModelCount(g).ToU64(), models);
  ExpectAnalyzerClean(mgr, g, "after abort");
  // The manager still compiles correctly afterwards.
  Cnf tiny(2);
  tiny.AddClause({Pos(0), Pos(1)});
  SddManager fresh(Vtree::Balanced({0, 1}));
  EXPECT_EQ(mgr.ModelCount(mgr.Resolve(f)).ToU64(), models);
  EXPECT_EQ(fresh.ModelCount(CompileCnf(fresh, tiny)).ToU64(), 3u);
}

// GarbageCollect rebuilds the manager down to the root's reachable
// subgraph: the function survives exactly, the live count drops to the
// reachable node count, and in-place edits on the collected manager stay
// analyzer-clean (this is what makes post-compile minimization local).
TEST(SddGarbageCollectTest, CollectsToReachableAndPreservesFunction) {
  const size_t n = 14;
  const Cnf cnf = RandomCnf(n, 40, 3, 23);
  const WeightMap weights = SkewedWeights(n);
  SddManager mgr(Vtree::RightLinear(Vtree::IdentityOrder(n)));
  SddId root = CompileCnf(mgr, cnf);
  const uint64_t models = mgr.ModelCount(root).ToU64();
  const double wmc = mgr.Wmc(root, weights);
  const size_t size = mgr.Size(root);
  const size_t nodes = mgr.NumDecisionNodes(root);
  ASSERT_GT(mgr.live_node_count(), nodes)
      << "compilation should leave dead intermediates to collect";

  root = mgr.GarbageCollect(root);
  EXPECT_EQ(mgr.ModelCount(root).ToU64(), models);
  EXPECT_NEAR(mgr.Wmc(root, weights), wmc, 1e-9 * (1.0 + wmc));
  EXPECT_EQ(mgr.Size(root), size);
  EXPECT_EQ(mgr.NumDecisionNodes(root), nodes);
  // Live nodes = the root's decision nodes + its literal nodes, nothing
  // else; a second collect finds nothing more to drop.
  const size_t live = mgr.live_node_count();
  EXPECT_LE(live, nodes + 2 * n);
  root = mgr.GarbageCollect(root);
  EXPECT_EQ(mgr.live_node_count(), live);
  ExpectAnalyzerClean(mgr, root, "after GarbageCollect");

  // The collected manager supports further in-place minimization.
  const SddInPlaceMinimizeResult r = MinimizeSddInPlace(mgr, root, 30, 7);
  root = mgr.Resolve(r.root);
  EXPECT_EQ(mgr.ModelCount(root).ToU64(), models);
  EXPECT_LE(r.size, size);
  ExpectAnalyzerClean(mgr, root, "after post-collect minimize");
}

// Constant roots collapse the manager to just the constants.
TEST(SddGarbageCollectTest, ConstantRootResetsManager) {
  SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(6)));
  Cnf unsat(6);
  unsat.AddClause({Pos(0)});
  unsat.AddClause({Neg(0)});
  const SddId f = CompileCnf(mgr, unsat);
  ASSERT_EQ(f, mgr.False());
  const SddId g = mgr.GarbageCollect(f);
  EXPECT_EQ(g, mgr.False());
  EXPECT_EQ(mgr.live_node_count(), 0u);
}

}  // namespace
}  // namespace tbc
