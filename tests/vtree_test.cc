#include <gtest/gtest.h>

#include <algorithm>

#include "vtree/vtree.h"

namespace tbc {
namespace {

TEST(VtreeTest, RightLinearShape) {
  Vtree t = Vtree::RightLinear({0, 1, 2, 3});
  EXPECT_EQ(t.ToString(), "(0 (1 (2 3)))");
  EXPECT_EQ(t.num_vars(), 4u);
  EXPECT_EQ(t.num_nodes(), 7u);
  // Right-linear: every internal node's left child is a leaf.
  for (VtreeId v = 0; v < t.num_nodes(); ++v) {
    if (!t.IsLeaf(v)) {
      EXPECT_TRUE(t.IsLeaf(t.left(v)));
    }
  }
}

TEST(VtreeTest, LeftLinearShape) {
  Vtree t = Vtree::LeftLinear({0, 1, 2});
  EXPECT_EQ(t.ToString(), "((0 1) 2)");
}

TEST(VtreeTest, BalancedShape) {
  Vtree t = Vtree::Balanced({0, 1, 2, 3});
  EXPECT_EQ(t.ToString(), "((0 1) (2 3))");
  Vtree t5 = Vtree::Balanced({0, 1, 2, 3, 4});
  EXPECT_EQ(t5.ToString(), "(((0 1) 2) (3 4))");
}

TEST(VtreeTest, SingleVariable) {
  Vtree t = Vtree::Balanced({0});
  EXPECT_EQ(t.ToString(), "0");
  EXPECT_TRUE(t.IsLeaf(t.root()));
}

TEST(VtreeTest, ConstrainedPlacesBottomOnRightSpine) {
  // Constrained vtree for bottom|top: Fig 10(b).
  Vtree t = Vtree::Constrained({0, 1}, {2, 3});
  EXPECT_EQ(t.ToString(), "(0 (1 (2 3)))");
  // The node over {2,3} is reachable via right children only.
  VtreeId u = t.right(t.right(t.root()));
  std::vector<Var> below = t.VarsBelow(u);
  std::sort(below.begin(), below.end());
  EXPECT_EQ(below, (std::vector<Var>{2, 3}));
}

TEST(VtreeTest, PositionsAreInOrder) {
  Vtree t = Vtree::Balanced({0, 1, 2, 3});
  // In-order: 0, (01), 1, root, 2, (23), 3.
  EXPECT_EQ(t.position(t.LeafOfVar(0)), 0u);
  EXPECT_EQ(t.position(t.LeafOfVar(1)), 2u);
  EXPECT_EQ(t.position(t.root()), 3u);
  EXPECT_EQ(t.position(t.LeafOfVar(3)), 6u);
}

TEST(VtreeTest, AncestorAndLca) {
  Vtree t = Vtree::Balanced({0, 1, 2, 3});
  VtreeId l0 = t.LeafOfVar(0), l1 = t.LeafOfVar(1), l3 = t.LeafOfVar(3);
  EXPECT_TRUE(t.IsAncestorOrSelf(t.root(), l0));
  EXPECT_TRUE(t.IsAncestorOrSelf(l0, l0));
  EXPECT_FALSE(t.IsAncestorOrSelf(l0, l1));
  EXPECT_EQ(t.Lca(l0, l1), t.parent(l0));
  EXPECT_EQ(t.Lca(l0, l3), t.root());
  EXPECT_EQ(t.Lca(l0, l0), l0);
}

TEST(VtreeTest, VarsBelowAndCounts) {
  Vtree t = Vtree::Balanced({0, 1, 2, 3, 4});
  EXPECT_EQ(t.NumVarsBelow(t.root()), 5u);
  std::vector<Var> all = t.VarsBelow(t.root());
  EXPECT_EQ(all, (std::vector<Var>{0, 1, 2, 3, 4}));  // leaf order
  EXPECT_EQ(t.NumVarsBelow(t.left(t.root())), 3u);
}

TEST(VtreeTest, DepthAndParents) {
  Vtree t = Vtree::RightLinear({0, 1, 2});
  EXPECT_EQ(t.Depth(t.root()), 0u);
  EXPECT_EQ(t.Depth(t.LeafOfVar(0)), 1u);
  EXPECT_EQ(t.Depth(t.LeafOfVar(2)), 2u);
  EXPECT_EQ(t.parent(t.root()), kInvalidVtree);
}

TEST(VtreeTest, FileFormatRoundTrip) {
  for (const Vtree& t :
       {Vtree::Balanced({0, 1, 2, 3, 4}), Vtree::RightLinear({2, 0, 1}),
        Vtree::Constrained({0, 1}, {2, 3, 4})}) {
    auto parsed = Vtree::Parse(t.ToFileString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().ToString(), t.ToString());
    EXPECT_EQ(parsed.value().num_vars(), t.num_vars());
  }
}

TEST(VtreeTest, ParseErrors) {
  EXPECT_FALSE(Vtree::Parse("").ok());
  EXPECT_FALSE(Vtree::Parse("L 0 1\n").ok());                 // no header
  EXPECT_FALSE(Vtree::Parse("vtree 3\nI 0 1 2\n").ok());      // forward ref
  EXPECT_FALSE(Vtree::Parse("vtree 1\nL 0 0\n").ok());        // 0-based var
  EXPECT_FALSE(Vtree::Parse("vtree 1\nX 0 1\n").ok());        // unknown line
  // Comments are skipped.
  auto ok = Vtree::Parse("c hello\nvtree 1\nL 0 3\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().ToString(), "2");
}

TEST(VtreeTest, ParseRejectsDuplicateLeafVariable) {
  // The same variable in two leaves is malformed input, and must produce a
  // typed error instead of aborting the process.
  auto dup = Vtree::Parse("vtree 3\nL 0 1\nL 1 1\nI 2 0 1\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidInput);
}

TEST(VtreeTest, ParseRejectsForest) {
  // Two disjoint trees in one file: the last-defined node used to be
  // silently taken as the root, orphaning the rest. Now a typed error.
  auto forest = Vtree::Parse(
      "vtree 6\nL 0 1\nL 1 2\nI 2 0 1\nL 3 3\nL 4 4\nI 5 3 4\n");
  ASSERT_FALSE(forest.ok());
  EXPECT_EQ(forest.status().code(), StatusCode::kInvalidInput);
}

TEST(VtreeTest, ParseErrorsAreTypedInvalidInput) {
  for (const char* text :
       {"", "L 0 1\n", "vtree 3\nI 0 1 2\n", "vtree 1\nL 0 0\n",
        "vtree 1\nX 0 1\n"}) {
    auto parsed = Vtree::Parse(text);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidInput) << text;
  }
}

TEST(VtreeTest, RandomVtreesAreValid) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Vtree t = Vtree::Random(Vtree::IdentityOrder(7), rng);
    EXPECT_EQ(t.num_vars(), 7u);
    EXPECT_EQ(t.num_nodes(), 13u);  // full binary tree: 2*7 - 1
    std::vector<Var> below = t.VarsBelow(t.root());
    std::sort(below.begin(), below.end());
    EXPECT_EQ(below, Vtree::IdentityOrder(7));
  }
}

TEST(VtreeTest, NonIdentityOrder) {
  Vtree t = Vtree::RightLinear({2, 0, 1});
  EXPECT_EQ(t.ToString(), "(2 (0 1))");
  EXPECT_EQ(t.var(t.LeafOfVar(2)), 2u);
  EXPECT_EQ(t.position(t.LeafOfVar(2)), 0u);
}

// Structural invariants a vtree must satisfy after any in-place edit:
// parent links mirror child links, in-order positions are consistent with
// the tree shape, NumVarsBelow adds up, and the leaf-of-var map is intact.
void ExpectWellFormed(const Vtree& t) {
  // Round-tripping through the file format rebuilds every derived field
  // from scratch; shape-equal means all caches were maintained correctly.
  auto reparsed = Vtree::Parse(t.ToFileString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().ToString(), t.ToString());
  for (VtreeId v = 0; v < t.num_nodes(); ++v) {
    if (t.IsLeaf(v)) {
      EXPECT_EQ(t.LeafOfVar(t.var(v)), v);
      EXPECT_EQ(t.NumVarsBelow(v), 1u);
      continue;
    }
    EXPECT_EQ(t.parent(t.left(v)), v);
    EXPECT_EQ(t.parent(t.right(v)), v);
    EXPECT_EQ(t.NumVarsBelow(v),
              t.NumVarsBelow(t.left(v)) + t.NumVarsBelow(t.right(v)));
    // In-order: everything left of v is before it, everything right after.
    EXPECT_LT(t.position(t.left(v)), t.position(v));
    EXPECT_GT(t.position(t.right(v)), t.position(v));
  }
}

TEST(VtreeTest, InPlaceRotationsKeepInvariantsAndInvert) {
  Vtree t = Vtree::Balanced(Vtree::IdentityOrder(7));
  const std::string original = t.ToString();
  // v=(l=(a,b),c) -> v=(a, l=(b,c)): ids stay put, only links move.
  ASSERT_TRUE(t.RotateRightAt(t.root()));
  EXPECT_NE(t.ToString(), original);
  ExpectWellFormed(t);
  ASSERT_TRUE(t.RotateLeftAt(t.root()));
  EXPECT_EQ(t.ToString(), original);  // exact inverses
  ExpectWellFormed(t);
}

TEST(VtreeTest, InPlaceSwapIsSelfInverse) {
  Vtree t = Vtree::Balanced(Vtree::IdentityOrder(6));
  const std::string original = t.ToString();
  ASSERT_TRUE(t.SwapChildrenAt(t.root()));
  EXPECT_NE(t.ToString(), original);
  ExpectWellFormed(t);
  ASSERT_TRUE(t.SwapChildrenAt(t.root()));
  EXPECT_EQ(t.ToString(), original);
  ExpectWellFormed(t);
}

TEST(VtreeTest, InPlaceOpsReportInapplicableWithoutMutating) {
  Vtree t = Vtree::RightLinear(Vtree::IdentityOrder(4));
  const std::string original = t.ToString();
  // Leaves cannot rotate or swap.
  EXPECT_FALSE(t.RotateRightAt(t.LeafOfVar(0)));
  EXPECT_FALSE(t.RotateLeftAt(t.LeafOfVar(0)));
  EXPECT_FALSE(t.SwapChildrenAt(t.LeafOfVar(0)));
  // Right-linear internal nodes all have leaf left children: no rotate right.
  for (VtreeId v = 0; v < t.num_nodes(); ++v) {
    if (!t.IsLeaf(v)) EXPECT_FALSE(t.RotateRightAt(v));
  }
  EXPECT_EQ(t.ToString(), original);  // every refusal left the tree untouched
  ExpectWellFormed(t);
}

TEST(VtreeTest, InPlaceRandomWalkStaysWellFormed) {
  Rng rng(91);
  Vtree t = Vtree::Balanced(Vtree::IdentityOrder(9));
  size_t applied = 0;
  for (int step = 0; step < 200; ++step) {
    const VtreeId v = static_cast<VtreeId>(rng.Below(t.num_nodes()));
    switch (rng.Below(3)) {
      case 0: applied += t.RotateRightAt(v); break;
      case 1: applied += t.RotateLeftAt(v); break;
      default: applied += t.SwapChildrenAt(v); break;
    }
  }
  EXPECT_GT(applied, 50u);
  ExpectWellFormed(t);
  // The walk permutes shape, never the variable set.
  std::vector<Var> below = t.VarsBelow(t.root());
  std::sort(below.begin(), below.end());
  EXPECT_EQ(below, Vtree::IdentityOrder(9));
}

}  // namespace
}  // namespace tbc
