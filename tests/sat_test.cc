#include <gtest/gtest.h>

#include <set>

#include "base/random.h"
#include "logic/cnf.h"
#include "sat/enumerate.h"
#include "sat/solver.h"

namespace tbc {
namespace {

// Generates a random k-CNF over n variables with m clauses.
Cnf RandomCnf(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < k) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

TEST(SatSolverTest, TrivialCases) {
  {
    SatSolver s;  // empty CNF is satisfiable
    EXPECT_EQ(s.Solve(), SatSolver::Outcome::kSat);
  }
  {
    SatSolver s;
    s.AddClause({Pos(0)});
    s.AddClause({Neg(0)});
    EXPECT_EQ(s.Solve(), SatSolver::Outcome::kUnsat);
  }
  {
    SatSolver s;
    s.AddClause({Pos(0), Pos(1)});
    EXPECT_EQ(s.Solve(), SatSolver::Outcome::kSat);
    EXPECT_TRUE(s.model()[0] || s.model()[1]);
  }
}

TEST(SatSolverTest, UnitPropagationChain) {
  SatSolver s;
  // x0, x0->x1, x1->x2, x2->x3.
  s.AddClause({Pos(0)});
  s.AddClause({Neg(0), Pos(1)});
  s.AddClause({Neg(1), Pos(2)});
  s.AddClause({Neg(2), Pos(3)});
  ASSERT_EQ(s.Solve(), SatSolver::Outcome::kSat);
  for (Var v = 0; v < 4; ++v) EXPECT_TRUE(s.model()[v]);
}

TEST(SatSolverTest, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT instance requiring real search.
  const int pigeons = 4, holes = 3;
  SatSolver s;
  auto var = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(Pos(var(p, h)));
    s.AddClause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.AddClause({Neg(var(p1, h)), Neg(var(p2, h))});
      }
    }
  }
  EXPECT_EQ(s.Solve(), SatSolver::Outcome::kUnsat);
}

TEST(SatSolverTest, ModelsSatisfyFormula) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Cnf cnf = RandomCnf(12, 40, 3, seed);
    SatSolver s;
    s.AddCnf(cnf);
    if (s.Solve() == SatSolver::Outcome::kSat) {
      EXPECT_TRUE(cnf.Evaluate(s.model())) << "seed " << seed;
    } else {
      EXPECT_EQ(cnf.CountModelsBruteForce(), 0u) << "seed " << seed;
    }
  }
}

TEST(SatSolverTest, AgreesWithBruteForceOnSatisfiability) {
  for (uint64_t seed = 100; seed < 160; ++seed) {
    Cnf cnf = RandomCnf(10, 44, 3, seed);  // near phase transition
    bool brute = cnf.CountModelsBruteForce() > 0;
    EXPECT_EQ(IsSatisfiable(cnf), brute) << "seed " << seed;
  }
}

TEST(SatSolverTest, Assumptions) {
  SatSolver s;
  s.AddClause({Pos(0), Pos(1)});
  s.AddClause({Neg(0), Pos(2)});
  EXPECT_EQ(s.SolveAssuming({Neg(2)}), SatSolver::Outcome::kSat);
  // ~x2 forces ~x0 forces x1.
  EXPECT_FALSE(s.model()[0]);
  EXPECT_TRUE(s.model()[1]);
  EXPECT_EQ(s.SolveAssuming({Neg(1), Neg(0)}), SatSolver::Outcome::kUnsat);
  // Solver remains usable after assumption-unsat.
  EXPECT_EQ(s.Solve(), SatSolver::Outcome::kSat);
}

TEST(SatSolverTest, SolveIsRepeatable) {
  Cnf cnf = RandomCnf(15, 50, 3, 7);
  SatSolver s;
  s.AddCnf(cnf);
  auto first = s.Solve();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(s.Solve(), first);
}

TEST(EnumerateTest, CountsMatchBruteForce) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Cnf cnf = RandomCnf(8, 20, 3, seed + 500);
    EXPECT_EQ(CountModelsUpTo(cnf, 1u << 9), cnf.CountModelsBruteForce())
        << "seed " << seed;
  }
}

TEST(EnumerateTest, ModelsAreDistinctAndSatisfying) {
  Cnf cnf = RandomCnf(8, 12, 3, 3);
  std::set<Assignment> seen;
  bool exhaustive = EnumerateModels(cnf, 1u << 9, [&](const Assignment& m) {
    EXPECT_TRUE(cnf.Evaluate(m));
    EXPECT_TRUE(seen.insert(m).second) << "duplicate model";
  });
  EXPECT_TRUE(exhaustive);
  EXPECT_EQ(seen.size(), cnf.CountModelsBruteForce());
}

TEST(EnumerateTest, CapStopsEarly) {
  Cnf free(5);  // 32 models
  EXPECT_EQ(CountModelsUpTo(free, 10), 10u);
}

TEST(EquivalenceTest, DetectsEquivalentAndDifferent) {
  Cnf a(2);
  a.AddClauseDimacs({1, 2});
  Cnf b(2);  // same formula written differently: (x1|x2)&(x1|x2|x2)
  b.AddClauseDimacs({2, 1});
  b.AddClauseDimacs({1, 2, 2});
  EXPECT_TRUE(AreEquivalent(a, b));

  Cnf c(2);
  c.AddClauseDimacs({1});
  EXPECT_FALSE(AreEquivalent(a, c));

  Cnf empty(2);  // true
  Cnf taut(2);
  EXPECT_TRUE(AreEquivalent(empty, taut));
  Cnf contradiction(2);
  contradiction.AddClauseDimacs({1});
  contradiction.AddClauseDimacs({-1});
  EXPECT_FALSE(AreEquivalent(empty, contradiction));
}

}  // namespace
}  // namespace tbc
