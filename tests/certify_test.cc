// Certified compilation end to end: every compiler's certificate
// round-trips through the text format and survives the independent
// checker; the certified count matches brute-force enumeration; and each
// corpus mutation is rejected under its pinned rule id.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/bigint.h"
#include "certify/certificate.h"
#include "certify/checker.h"
#include "certify/emit.h"
#include "certify/trace.h"
#include "certify/up_engine.h"
#include "compiler/ddnnf_compiler.h"
#include "logic/cnf.h"
#include "nnf/queries.h"
#include "obdd/obdd.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

Cnf ParseCnf(const std::string& dimacs) {
  auto parsed = Cnf::ParseDimacs(dimacs);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return std::move(parsed).value();
}

// Ground truth by enumeration (inputs stay tiny).
uint64_t BruteForceCount(const Cnf& cnf) {
  uint64_t count = 0;
  for (uint64_t bits = 0; bits < (uint64_t{1} << cnf.num_vars()); ++bits) {
    bool sat = true;
    for (size_t i = 0; sat && i < cnf.num_clauses(); ++i) {
      bool clause_sat = false;
      for (Lit l : cnf.clause(i)) {
        const bool value = (bits >> l.var()) & 1;
        if (value == l.positive()) {
          clause_sat = true;
          break;
        }
      }
      sat = clause_sat;
    }
    if (sat) ++count;
  }
  return count;
}

// Round-trips `cert` through the text format and runs the checker,
// expecting a clean verification whose count matches enumeration.
void ExpectVerified(const Certificate& cert, const Cnf& cnf) {
  const std::string text = WriteCertificate(cert);
  auto parsed = ParseCertificate(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message() << "\n" << text;
  const CertifyResult result = CheckCertificate(*parsed);
  EXPECT_TRUE(result.ok()) << result.report.ToText("cert") << "\n" << text;
  ASSERT_TRUE(result.count_certified);
  EXPECT_EQ(result.certified_count, BigUint(BruteForceCount(cnf)))
      << result.certified_count.ToString();
}

const char* kCnfs[] = {
    "p cnf 4 3\n1 2 0\n-1 3 0\n2 -3 4 0\n",
    "p cnf 3 2\n1 -2 0\n2 3 0\n",
    // UNSAT.
    "p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n",
    // Free variables (var 5 unconstrained), duplicate-ish clauses.
    "p cnf 5 3\n1 2 3 0\n-2 -3 0\n1 2 3 0\n",
    // Single unit.
    "p cnf 2 1\n-2 0\n",
    // Empty clause set: everything is a model.
    "p cnf 3 0\n",
};

TEST(CertifyDdnnf, TracedCompilationsVerify) {
  for (const char* dimacs : kCnfs) {
    const Cnf cnf = ParseCnf(dimacs);
    NnfManager mgr;
    DdnnfCompiler compiler;
#if TBC_CERTIFY_TRACE_ON
    DdnnfTrace trace;
    compiler.set_trace(&trace);
    const DdnnfTrace* tp = &trace;
#else
    const DdnnfTrace* tp = nullptr;
#endif
    const NnfId root = compiler.Compile(cnf, mgr);
    ExpectVerified(BuildDdnnfCertificate(cnf, mgr, root, tp,
                                         ModelCount(mgr, root, cnf.num_vars())),
                   cnf);
  }
}

TEST(CertifyDdnnf, TraceFreeCertificateVerifiesSemantically) {
  // Emission disabled (or a foreign circuit): the checker must fall back to
  // its own DPLL for CNF |= circuit instead of replaying a trace.
  const Cnf cnf = ParseCnf(kCnfs[0]);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  ExpectVerified(BuildDdnnfCertificate(cnf, mgr, root, nullptr,
                                       ModelCount(mgr, root, cnf.num_vars())),
                 cnf);
}

#if TBC_CERTIFY_TRACE_ON
TEST(CertifyDdnnf, ManagerReuseLeavesStaleNodesOutOfTheArgument) {
  // Compile two different CNFs into the same manager: the second
  // certificate's table snapshot contains the first compile's nodes
  // (including literals over variables the second CNF lacks). The used-node
  // filter must keep them out of the verification.
  NnfManager mgr;
  DdnnfCompiler compiler;
  const Cnf big = ParseCnf("p cnf 6 2\n5 6 0\n-5 -6 0\n");
  compiler.Compile(big, mgr);

  const Cnf small = ParseCnf("p cnf 2 1\n1 2 0\n");
  DdnnfTrace trace;
  compiler.set_trace(&trace);
  const NnfId root = compiler.Compile(small, mgr);
  ExpectVerified(
      BuildDdnnfCertificate(small, mgr, root, &trace,
                            ModelCount(mgr, root, small.num_vars())),
      small);
}

TEST(CertifyObdd, TracedCompilationsVerify) {
  for (const char* dimacs : kCnfs) {
    const Cnf cnf = ParseCnf(dimacs);
    ObddManager mgr(Vtree::IdentityOrder(cnf.num_vars()));
    ObddTrace trace;
    mgr.CompileCnfTraced(cnf, &trace);
    NnfManager scratch;
    const NnfId nroot = mgr.ToNnf(trace.root, scratch);
    ExpectVerified(
        BuildObddCertificate(cnf, std::move(trace),
                             ModelCount(scratch, nroot, cnf.num_vars())),
        cnf);
  }
}

TEST(CertifyObdd, ReusedManagerVerifies) {
  // Two compiles through one manager: the second trace's table snapshot
  // carries the first compile's nodes and its op-cache was cleared on
  // re-attach, so every conjunction still has a recorded step.
  ObddManager mgr(Vtree::IdentityOrder(4));
  const Cnf first = ParseCnf("p cnf 4 2\n1 -4 0\n2 3 0\n");
  ObddTrace t1;
  mgr.CompileCnfTraced(first, &t1);
  NnfManager s1;
  ExpectVerified(
      BuildObddCertificate(first, ObddTrace(t1),
                           ModelCount(s1, mgr.ToNnf(t1.root, s1), 4)),
      first);

  const Cnf second = ParseCnf("p cnf 4 2\n-1 -2 0\n1 4 0\n");
  ObddTrace t2;
  mgr.CompileCnfTraced(second, &t2);
  NnfManager s2;
  ExpectVerified(
      BuildObddCertificate(second, std::move(t2),
                           ModelCount(s2, mgr.ToNnf(t2.root, s2), 4)),
      second);
}
#endif  // TBC_CERTIFY_TRACE_ON

TEST(CertifySdd, CompilationsVerify) {
  for (const char* dimacs : kCnfs) {
    const Cnf cnf = ParseCnf(dimacs);
    const size_t n = cnf.num_vars() > 0 ? cnf.num_vars() : 1;
    SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(n)));
    const SddId f = CompileCnf(mgr, cnf);
    NnfManager scratch;
    const NnfId nroot = mgr.ToNnf(f, scratch);
    ExpectVerified(BuildSddCertificate(
                       cnf, mgr, f, ModelCount(scratch, nroot, cnf.num_vars())),
                   cnf);
  }
}

TEST(CertifyChecker, BudgetTripReportsBudgetRule) {
  const Cnf cnf = ParseCnf(kCnfs[0]);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  const Certificate cert = BuildDdnnfCertificate(
      cnf, mgr, root, nullptr, ModelCount(mgr, root, cnf.num_vars()));
  CertifyOptions options;
  options.max_work = 1;
  const CertifyResult result = CheckCertificate(cert, options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.report.HasRule("certify.budget"))
      << result.report.ToText("cert");
}

TEST(CertifyChecker, WrongClaimedCountIsRejected) {
  const Cnf cnf = ParseCnf(kCnfs[1]);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  const Certificate cert =
      BuildDdnnfCertificate(cnf, mgr, root, nullptr, BigUint(12345));
  const CertifyResult result = CheckCertificate(cert);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.report.HasRule("certify.count"))
      << result.report.ToText("cert");
}

// ---------------------------------------------------------------------------
// Corpus: every mutated certificate is rejected under its pinned rule id.

struct CorpusCase {
  const char* file;
  const char* rule;
};

const CorpusCase kCorpus[] = {
    {"ddnnf_truncated.cert", "certify.parse"},
    {"ddnnf_bad_literal.cert", "certify.format"},
    {"ddnnf_nondecomposable.cert", "certify.decomposable"},
    {"ddnnf_nondeterministic.cert", "certify.deterministic"},
    {"ddnnf_swapped_top.cert", "certify.replay"},
    {"ddnnf_tampered_count.cert", "certify.count"},
    {"obdd_order_violation.cert", "certify.obdd-ordered"},
    {"obdd_bogus_step.cert", "certify.replay"},
    {"obdd_extra_clause.cert", "certify.circuit-implies-cnf"},
    {"sdd_missing_model.cert", "certify.cnf-implies-circuit"},
};

std::string ReadCorpusFile(const std::string& name) {
  std::ifstream in(std::string(TBC_CORPUS_DIR "/invalid_certificates/") + name);
  EXPECT_TRUE(in.good()) << name;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CertifyCorpus, EveryMutationRejectedUnderItsRule) {
  for (const CorpusCase& c : kCorpus) {
    const std::string text = ReadCorpusFile(c.file);
    ASSERT_FALSE(text.empty()) << c.file;
    DiagnosticReport report;
    auto parsed = ParseCertificate(text);
    if (!parsed.ok()) {
      report.Add(Severity::kError, "certify.parse", 0, "",
                 parsed.status().message());
    } else {
      report = CheckCertificate(*parsed).report;
    }
    EXPECT_FALSE(report.clean()) << c.file;
    EXPECT_TRUE(report.HasRule(c.rule))
        << c.file << " expected " << c.rule << "\n" << report.ToText(c.file);
  }
}

// ---------------------------------------------------------------------------
// The trusted unit-propagation engine itself.

TEST(UpEngine, PropagatesAndRetractsAssumptionScopes) {
  UpEngine engine(3);
  engine.AddPermanent({Pos(0), Pos(1)});
  engine.AddPermanent({Neg(1), Pos(2)});
  EXPECT_FALSE(engine.in_conflict());

  engine.Push();
  engine.Assume(Neg(0));
  EXPECT_FALSE(engine.in_conflict());
  EXPECT_EQ(engine.Value(Pos(1)), 1);  // unit from clause 1
  EXPECT_EQ(engine.Value(Pos(2)), 1);  // chained
  engine.Pop();
  EXPECT_EQ(engine.Value(Pos(1)), 0);

  // Probing the negation of an implied clause conflicts; a non-implied
  // probe does not.
  EXPECT_TRUE(engine.ProbeConflict({Neg(0), Neg(1)}));
  EXPECT_FALSE(engine.ProbeConflict({Neg(0)}));
}

TEST(UpEngine, RootConflictLatches) {
  UpEngine engine(2);
  engine.AddPermanent({Pos(0)});
  engine.AddPermanent({Neg(0)});
  EXPECT_TRUE(engine.in_conflict());
  EXPECT_TRUE(engine.root_conflict());
}

}  // namespace
}  // namespace tbc
