// Bayesian-network text IO, BN-classifier compilation, and Graphviz DOT
// exports.

#include <gtest/gtest.h>

#include "bayes/io.h"
#include "bayes/network.h"
#include "bayes/varelim.h"
#include "core/dot.h"
#include "sdd/compile.h"
#include "vtree/vtree.h"
#include "xai/bn_classifier.h"

namespace tbc {
namespace {

BayesianNetwork MedicalNetwork() {
  BayesianNetwork net;
  BnVar sex = net.AddBinary("sex", {}, {0.55});
  BnVar c = net.AddBinary("c", {sex}, {0.05, 0.15});
  BnVar t1 = net.AddBinary("T1", {c}, {0.10, 0.85});
  BnVar t2 = net.AddBinary("T2", {c}, {0.20, 0.75});
  net.AddBinary("AGREE", {t1, t2}, {0.95, 0.05, 0.05, 0.95});
  return net;
}

TEST(BayesIoTest, RoundTripBinaryNetwork) {
  BayesianNetwork net = MedicalNetwork();
  auto parsed = ParseNetwork(WriteNetwork(net));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const BayesianNetwork& copy = parsed.value();
  ASSERT_EQ(copy.num_vars(), net.num_vars());
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    EXPECT_EQ(copy.name(v), net.name(v));
    EXPECT_EQ(copy.parents(v), net.parents(v));
  }
  for (uint64_t i = 0; i < net.NumInstantiations(); ++i) {
    const BnInstantiation inst = net.InstantiationAt(i);
    ASSERT_NEAR(copy.JointProbability(inst), net.JointProbability(inst), 1e-15);
  }
}

TEST(BayesIoTest, RoundTripMultiValued) {
  BayesianNetwork net;
  BnVar w = net.AddVariable("w", 3, {}, {0.5, 0.3, 0.2});
  net.AddVariable("m", 2, {w}, {0.9, 0.1, 0.5, 0.5, 0.2, 0.8});
  auto parsed = ParseNetwork(WriteNetwork(net));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().cardinality(0), 3u);
  EXPECT_NEAR(parsed.value().JointProbability({2, 1}), 0.16, 1e-12);
}

TEST(BayesIoTest, ParseErrors) {
  EXPECT_FALSE(ParseNetwork("").ok());
  EXPECT_FALSE(ParseNetwork("var a 2 0\ncpt 0 0.5 0.5\n").ok());  // no header
  EXPECT_FALSE(ParseNetwork("net 1\nvar a 2 0\n").ok());          // no cpt
  EXPECT_FALSE(ParseNetwork("net 1\nvar a 2 0\ncpt 0 0.9 0.2\n").ok());
  EXPECT_FALSE(ParseNetwork("net 1\nvar a 2 1 5\ncpt 0 0.5 0.5\n").ok());
  EXPECT_FALSE(ParseNetwork("net 1\nzzz\n").ok());
  // Comments allowed.
  EXPECT_TRUE(ParseNetwork("# hi\nnet 1\nvar a 2 0\ncpt 0 0.4 0.6\n").ok());
}

TEST(BnClassifierTest, CompilationMatchesThresholdDecision) {
  BayesianNetwork net = MedicalNetwork();
  // Classify the condition from the three observables (non-naive
  // structure: AGREE depends on T1 and T2).
  BnClassifier classifier(net, net.VarByName("c"),
                          {net.VarByName("T1"), net.VarByName("T2"),
                           net.VarByName("AGREE")},
                          0.3);
  ObddManager mgr(Vtree::IdentityOrder(3));
  const ObddId f = classifier.CompileToObdd(mgr);
  for (int bits = 0; bits < 8; ++bits) {
    Assignment e = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    ASSERT_EQ(mgr.Evaluate(f, e), classifier.Classify(e)) << bits;
  }
  // Positive tests push the posterior up.
  EXPECT_GT(classifier.Posterior({true, true, true}),
            classifier.Posterior({false, false, true}));
}

TEST(BnClassifierTest, ThresholdSweepChangesDecisionFunction) {
  BayesianNetwork net = MedicalNetwork();
  const std::vector<BnVar> features = {net.VarByName("T1"), net.VarByName("T2")};
  ObddManager mgr(Vtree::IdentityOrder(2));
  BnClassifier lenient(net, 1, features, 0.05);
  BnClassifier strict(net, 1, features, 0.95);
  const ObddId f_lenient = lenient.CompileToObdd(mgr);
  const ObddId f_strict = strict.CompileToObdd(mgr);
  // Monotone in the threshold: strict ⊆ lenient.
  EXPECT_EQ(mgr.Implies(f_strict, f_lenient), mgr.True());
  EXPECT_NE(f_strict, f_lenient);
}

TEST(DotTest, ExportsAreWellFormed) {
  // Smoke tests: every export produces a digraph mentioning its parts.
  Vtree vt = Vtree::Balanced({0, 1, 2, 3});
  const std::string vdot = DotVtree(vt, {"A", "B", "C", "D"});
  EXPECT_NE(vdot.find("digraph vtree"), std::string::npos);
  EXPECT_NE(vdot.find("\"A\""), std::string::npos);

  ObddManager obdd(Vtree::IdentityOrder(2));
  const ObddId f = obdd.And(obdd.LiteralNode(Pos(0)), obdd.LiteralNode(Neg(1)));
  const std::string odot = DotObdd(obdd, f);
  EXPECT_NE(odot.find("digraph obdd"), std::string::npos);
  EXPECT_NE(odot.find("style=dashed"), std::string::npos);
  EXPECT_NE(odot.find("style=solid"), std::string::npos);

  SddManager sdd(Vtree::Balanced({0, 1, 2, 3}));
  Cnf cnf(4);
  cnf.AddClauseDimacs({1, 2});
  cnf.AddClauseDimacs({-3, 4});
  const SddId g = CompileCnf(sdd, cnf);
  const std::string sdot = DotSdd(sdd, g);
  EXPECT_NE(sdot.find("digraph sdd"), std::string::npos);
  EXPECT_NE(sdot.find("shape=record"), std::string::npos);

  NnfManager nnf;
  const NnfId root = nnf.Decision(0, nnf.Literal(Pos(1)), nnf.Literal(Neg(1)));
  const std::string ndot = DotNnf(nnf, root);
  EXPECT_NE(ndot.find("digraph nnf"), std::string::npos);
  EXPECT_NE(ndot.find("\"and\""), std::string::npos);
  EXPECT_NE(ndot.find("\"or\""), std::string::npos);
}

TEST(DotTest, ConstantObdd) {
  ObddManager obdd(Vtree::IdentityOrder(1));
  const std::string dot = DotObdd(obdd, obdd.True());
  EXPECT_NE(dot.find("t1"), std::string::npos);
}

}  // namespace
}  // namespace tbc
