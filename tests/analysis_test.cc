// Tests for the circuit invariant analyzer (src/analysis/): every corpus
// file under tests/corpus/invalid_circuits must be flagged with its
// designed rule id, every file under valid_circuits must come back with
// zero diagnostics, and artifacts produced by the library's own compilers
// must verify clean.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/nnf_analyzer.h"
#include "analysis/obdd_analyzer.h"
#include "analysis/psdd_analyzer.h"
#include "analysis/rules.h"
#include "analysis/sdd_analyzer.h"
#include "analysis/tseitin.h"
#include "base/random.h"
#include "compiler/ddnnf_compiler.h"
#include "gtest/gtest.h"
#include "logic/cnf.h"
#include "nnf/io.h"
#include "nnf/nnf.h"
#include "nnf/properties.h"
#include "obdd/obdd.h"
#include "psdd/psdd.h"
#include "sat/solver.h"
#include "sdd/compile.h"
#include "sdd/io.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

std::string ReadCorpus(const std::string& relative) {
  const std::string path = std::string(TBC_CORPUS_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

DiagnosticReport LintNnf(const std::string& text, NnfDialect dialect,
                         bool sat_determinism = true) {
  DiagnosticReport report;
  NnfManager mgr;
  auto root = ReadNnf(mgr, text);
  if (!root.ok()) {
    report.Add(Severity::kError, rules::kNnfParse, 0, "",
               root.status().message());
    return report;
  }
  NnfAnalysisOptions options;
  options.dialect = dialect;
  options.sat_determinism = sat_determinism;
  AnalyzeNnf(mgr, *root, options, report);
  return report;
}

Vtree CorpusVtree(const std::string& relative) {
  auto parsed = Vtree::Parse(ReadCorpus(relative));
  EXPECT_TRUE(parsed.ok());
  return *std::move(parsed);
}

Cnf RandomCnf(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < k) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

// --- invalid corpus: each file must be flagged with its designed rule ---

TEST(AnalysisCorpus, NonDecomposableAndIsFlagged) {
  const auto report =
      LintNnf(ReadCorpus("invalid_circuits/and_not_decomposable.nnf"),
              NnfDialect::kDnnf);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.HasRule(rules::kDnnfDecomposable));
  const Diagnostic* d = report.FindRule(rules::kDnnfDecomposable);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->witness, "variable 1");
}

TEST(AnalysisCorpus, NonDeterministicOrIsFlaggedViaSat) {
  const auto report =
      LintNnf(ReadCorpus("invalid_circuits/or_not_deterministic.nnf"),
              NnfDialect::kDdnnf);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.HasRule(rules::kDdnnfDeterministic));
  // The witness is a model satisfying both or-inputs at once.
  const Diagnostic* d = report.FindRule(rules::kDdnnfDeterministic);
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->witness.empty());
}

TEST(AnalysisCorpus, NonDeterministicOrOnlyWarnsWithoutSat) {
  const auto report =
      LintNnf(ReadCorpus("invalid_circuits/or_not_deterministic.nnf"),
              NnfDialect::kDdnnf, /*sat_determinism=*/false);
  EXPECT_TRUE(report.clean());  // unproved, not disproved
  EXPECT_TRUE(report.HasRule(rules::kDdnnfUnverified));
}

TEST(AnalysisCorpus, UnsmoothOrIsAnErrorOnlyForSmoothDialect) {
  const std::string text = ReadCorpus("invalid_circuits/or_not_smooth.nnf");
  const auto strict = LintNnf(text, NnfDialect::kSmoothDdnnf);
  EXPECT_FALSE(strict.clean());
  EXPECT_TRUE(strict.HasRule(rules::kNnfSmooth));

  // As plain d-DNNF the same circuit is legal (warning only): the
  // counting queries smooth on the fly.
  const auto lenient = LintNnf(text, NnfDialect::kDdnnf);
  EXPECT_TRUE(lenient.clean());
  EXPECT_TRUE(lenient.HasRule(rules::kNnfSmooth));
}

TEST(AnalysisCorpus, UnorderedObddIsFlagged) {
  const auto report = LintNnf(ReadCorpus("invalid_circuits/obdd_unordered.nnf"),
                              NnfDialect::kObdd);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.HasRule(rules::kObddOrdered));
}

TEST(AnalysisCorpus, UnreducedObddIsFlagged) {
  const auto report =
      LintNnf(ReadCorpus("invalid_circuits/obdd_not_reduced.nnf"),
              NnfDialect::kObdd);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.HasRule(rules::kObddReduced));
}

TEST(AnalysisCorpus, UncompressedSddIsFlagged) {
  const Vtree vtree = CorpusVtree("valid_circuits/two_vars.vtree");
  DiagnosticReport report;
  AnalyzeSddFile(ReadCorpus("invalid_circuits/sdd_uncompressed.sdd"), vtree,
                 SddAnalysisOptions{}, report);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.HasRule(rules::kSddCompressed));
}

TEST(AnalysisCorpus, UntrimmedSddIsFlagged) {
  const Vtree vtree = CorpusVtree("valid_circuits/two_vars.vtree");
  DiagnosticReport report;
  AnalyzeSddFile(ReadCorpus("invalid_circuits/sdd_untrimmed.sdd"), vtree,
                 SddAnalysisOptions{}, report);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.HasRule(rules::kSddTrimmed));
}

TEST(AnalysisCorpus, OverlappingPrimesAreFlagged) {
  const Vtree vtree = CorpusVtree("valid_circuits/two_vars.vtree");
  DiagnosticReport report;
  AnalyzeSddFile(ReadCorpus("invalid_circuits/sdd_bad_partition.sdd"), vtree,
                 SddAnalysisOptions{}, report);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.HasRule(rules::kSddPartition));
}

TEST(AnalysisCorpus, NonExhaustivePrimesAreFlagged) {
  const Vtree vtree = CorpusVtree("valid_circuits/four_vars.vtree");
  DiagnosticReport report;
  AnalyzeSddFile(ReadCorpus("invalid_circuits/sdd_nonexhaustive.sdd"), vtree,
                 SddAnalysisOptions{}, report);
  EXPECT_FALSE(report.clean());
  ASSERT_TRUE(report.HasRule(rules::kSddPartition));
  EXPECT_NE(report.FindRule(rules::kSddPartition)
                ->message.find("not exhaustive"),
            std::string::npos);
}

TEST(AnalysisCorpus, UnnormalizedPsddIsFlagged) {
  const Vtree vtree = CorpusVtree("valid_circuits/two_vars.vtree");
  DiagnosticReport report;
  AnalyzePsddFile(ReadCorpus("invalid_circuits/psdd_unnormalized.psdd"), vtree,
                  report);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.HasRule(rules::kPsddNormalized));
}

// --- valid corpus: zero diagnostics ---

TEST(AnalysisCorpus, CleanDdnnfHasNoDiagnostics) {
  const auto report = LintNnf(ReadCorpus("valid_circuits/clean_ddnnf.nnf"),
                              NnfDialect::kSmoothDdnnf);
  EXPECT_TRUE(report.empty()) << report.ToText("clean_ddnnf.nnf");
}

TEST(AnalysisCorpus, CleanObddHasNoDiagnostics) {
  const auto report = LintNnf(ReadCorpus("valid_circuits/clean_obdd.nnf"),
                              NnfDialect::kObdd);
  EXPECT_TRUE(report.empty()) << report.ToText("clean_obdd.nnf");
}

TEST(AnalysisCorpus, CleanSddHasNoDiagnostics) {
  const Vtree vtree = CorpusVtree("valid_circuits/two_vars.vtree");
  DiagnosticReport report;
  AnalyzeSddFile(ReadCorpus("valid_circuits/clean_sdd.sdd"), vtree,
                 SddAnalysisOptions{}, report);
  EXPECT_TRUE(report.empty()) << report.ToText("clean_sdd.sdd");
}

TEST(AnalysisCorpus, CleanPsddHasNoDiagnostics) {
  const Vtree vtree = CorpusVtree("valid_circuits/two_vars.vtree");
  DiagnosticReport report;
  AnalyzePsddFile(ReadCorpus("valid_circuits/clean_psdd.psdd"), vtree, report);
  EXPECT_TRUE(report.empty()) << report.ToText("clean_psdd.psdd");
}

// --- artifacts produced by the library verify clean ---

TEST(AnalyzerOnArtifacts, CompilerOutputIsCleanDecisionDnnf) {
  const Cnf cnf = RandomCnf(12, 40, 3, 7);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  DiagnosticReport report;
  NnfAnalysisOptions options;
  options.dialect = NnfDialect::kDecisionDnnf;
  AnalyzeNnf(mgr, root, options, report);
  EXPECT_TRUE(report.clean()) << report.ToText("compiler output");

  // The full d-DNNF ladder, SAT-verified, also passes.
  DiagnosticReport ddnnf_report;
  options.dialect = NnfDialect::kDdnnf;
  AnalyzeNnf(mgr, root, options, ddnnf_report);
  EXPECT_TRUE(ddnnf_report.clean()) << ddnnf_report.ToText("compiler output");

  // And after smoothing, the strictest dialect is diagnostic-free.
  const NnfId smooth = Smooth(mgr, root, cnf.num_vars());
  DiagnosticReport smooth_report;
  options.dialect = NnfDialect::kSmoothDdnnf;
  AnalyzeNnf(mgr, smooth, options, smooth_report);
  EXPECT_TRUE(smooth_report.empty()) << smooth_report.ToText("smoothed");
}

TEST(AnalyzerOnArtifacts, ObddManagerOutputIsReducedAndOrdered) {
  ObddManager mgr(Vtree::IdentityOrder(6));
  ObddId f = mgr.False();
  // Odd parity of 6 variables: a worst case for sharing.
  for (Var v = 0; v < 6; ++v) f = mgr.Xor(f, mgr.LiteralNode(Pos(v)));
  DiagnosticReport report;
  AnalyzeObdd(mgr, f, report);
  EXPECT_TRUE(report.empty()) << report.ToText("parity obdd");
}

TEST(AnalyzerOnArtifacts, SddCompileIsCleanInManagerAndFileForm) {
  const Cnf cnf = RandomCnf(10, 30, 3, 11);
  SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(10)));
  const SddId f = CompileCnf(mgr, cnf);
  DiagnosticReport report;
  AnalyzeSdd(mgr, f, SddAnalysisOptions{}, report);
  EXPECT_TRUE(report.empty()) << report.ToText("sdd manager");

  if (!mgr.IsConstant(f)) {
    DiagnosticReport file_report;
    AnalyzeSddFile(WriteSdd(mgr, f), mgr.vtree(), SddAnalysisOptions{},
                   file_report);
    EXPECT_TRUE(file_report.empty()) << file_report.ToText("sdd file");
  }
}

TEST(AnalyzerOnArtifacts, LearnedPsddStaysNormalized) {
  SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(4)));
  Cnf cnf(4);
  cnf.AddClauseDimacs({1, 2});
  cnf.AddClauseDimacs({-1, 3, 4});
  Psdd psdd(mgr, CompileCnf(mgr, cnf));
  DiagnosticReport report;
  AnalyzePsdd(psdd, report);
  EXPECT_TRUE(report.clean()) << report.ToText("fresh psdd");

  // Pure maximum-likelihood learning on a single example drives most
  // parameters to 0/1: still normalized (clean), but support warnings.
  std::vector<Assignment> data = {{true, false, true, false}};
  psdd.LearnParameters(data, {}, /*laplace=*/0.0);
  DiagnosticReport learned;
  AnalyzePsdd(psdd, learned);
  EXPECT_TRUE(learned.clean()) << learned.ToText("learned psdd");
  EXPECT_TRUE(learned.HasRule(rules::kPsddSupport));

  // With a Laplace prior no parameter is degenerate.
  psdd.LearnParameters(data, {}, /*laplace=*/1.0);
  DiagnosticReport smoothed;
  AnalyzePsdd(psdd, smoothed);
  EXPECT_TRUE(smoothed.empty()) << smoothed.ToText("laplace psdd");
}

// --- reporting layer ---

TEST(DiagnosticReportTest, CountsSeveritiesAndCapsRetention) {
  DiagnosticReport report;
  report.set_max_diagnostics(2);
  for (int i = 0; i < 5; ++i) {
    report.Add(Severity::kError, rules::kNnfWellFormed,
               static_cast<uint64_t>(i), "", "broken");
  }
  report.Add(Severity::kWarning, rules::kNnfSmooth, 9, "", "meh");
  EXPECT_EQ(report.num_errors(), 5u);
  EXPECT_EQ(report.num_warnings(), 1u);
  EXPECT_EQ(report.size(), 2u);  // retention capped, counters exact
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.HasRule(rules::kNnfWellFormed));
  EXPECT_FALSE(report.HasRule(rules::kNnfSmooth));  // dropped past the cap
}

TEST(DiagnosticReportTest, RendersTextAndJson) {
  DiagnosticReport report;
  report.Add(Severity::kError, rules::kDnnfDecomposable, 7, "variable 3",
             "inputs share \"variable\" 3");
  const std::string text = report.ToText("f.nnf");
  EXPECT_NE(text.find("f.nnf"), std::string::npos);
  EXPECT_NE(text.find("dnnf.decomposable"), std::string::npos);
  const std::string json = report.ToJson("f.nnf");
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\\\"variable\\\""), std::string::npos);  // escaping
}

TEST(RulesTest, RegistryCoversEveryRuleId) {
  size_t count = 0;
  ASSERT_NE(AllRules(&count), nullptr);
  EXPECT_GE(count, 18u);
  EXPECT_NE(RuleSummary(rules::kSddCompressed), nullptr);
  EXPECT_EQ(RuleSummary("no.such.rule"), nullptr);
}

// --- Tseitin encoder ---

TEST(TseitinTest, EncodingIsEquisatisfiableWithTheCircuit) {
  NnfManager mgr;
  // f = (x1 & x2) | (~x1 & x3)
  const NnfId f = mgr.Or(mgr.And(mgr.Literal(Pos(0)), mgr.Literal(Pos(1))),
                         mgr.And(mgr.Literal(Neg(0)), mgr.Literal(Pos(2))));
  CircuitCnf encoder(3);
  const Lit root = encoder.Encode(mgr, f);
  SatSolver solver;
  solver.AddCnf(encoder.cnf());
  // The circuit is satisfiable...
  EXPECT_EQ(solver.SolveAssuming({root}), SatSolver::Outcome::kSat);
  // ... and so is its complement ...
  EXPECT_EQ(solver.SolveAssuming({~root}), SatSolver::Outcome::kSat);
  // ... but not together with an assignment falsifying both disjuncts.
  EXPECT_EQ(solver.SolveAssuming({root, Neg(1), Neg(2)}),
            SatSolver::Outcome::kUnsat);
}

}  // namespace
}  // namespace tbc
