// Tests for the static CNF structure analyzer (src/analysis/structure/):
// graph construction, elimination-order properties on random CNFs, width
// bracketing, decomposition synthesis, diagnostics, and the SDD round-trip
// of a synthesized min-fill vtree.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/rules.h"
#include "analysis/sdd_analyzer.h"
#include "analysis/structure/decompose.h"
#include "analysis/structure/elimination.h"
#include "analysis/structure/forecast.h"
#include "analysis/structure/graph.h"
#include "base/random.h"
#include "logic/cnf.h"
#include "sdd/compile.h"
#include "sdd/io.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

Cnf ChainCnf(size_t n) {
  Cnf cnf(n);
  for (Var v = 0; v + 1 < n; ++v) cnf.AddClause({Neg(v), Pos(v + 1)});
  return cnf;
}

Cnf GridCnf(size_t rows, size_t cols) {
  Cnf cnf(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const Var v = static_cast<Var>(r * cols + c);
      if (c + 1 < cols) cnf.AddClause({Neg(v), Pos(v + 1)});
      if (r + 1 < rows) cnf.AddClause({Pos(v), Neg(v + cols)});
    }
  }
  return cnf;
}

Cnf RandomCnf(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < k) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

bool IsPermutation(const std::vector<Var>& order, size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (Var v : order) {
    if (v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

// --- graph ---

TEST(StructureGraph, ChainIsAPath) {
  const Cnf cnf = ChainCnf(10);
  const PrimalGraph g = PrimalGraph::FromCnf(cnf);
  EXPECT_EQ(g.num_vars(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(5), 2u);
  const Components comps = ConnectedComponents(g);
  EXPECT_EQ(comps.sizes.size(), 1u);
  EXPECT_EQ(comps.largest, 10u);
}

TEST(StructureGraph, DuplicateEdgesCollapse) {
  Cnf cnf(3);
  cnf.AddClause({Pos(0), Pos(1)});
  cnf.AddClause({Neg(0), Neg(1)});  // same primal edge, other polarity
  cnf.AddClause({Pos(0), Pos(1), Pos(2)});
  const PrimalGraph g = PrimalGraph::FromCnf(cnf);
  EXPECT_EQ(g.num_edges(), 3u);  // {0,1}, {0,2}, {1,2}
}

TEST(StructureGraph, DegeneracyOfCliqueAndPath) {
  Cnf clique(6);
  Clause wide;
  for (Var v = 0; v < 6; ++v) wide.push_back(Pos(v));
  clique.AddClause(wide);
  EXPECT_EQ(Degeneracy(PrimalGraph::FromCnf(clique)).degeneracy, 5u);
  EXPECT_EQ(Degeneracy(PrimalGraph::FromCnf(ChainCnf(10))).degeneracy, 1u);
}

// --- elimination orders ---

TEST(StructureElimination, ChainHasWidthOne) {
  const PrimalGraph g = PrimalGraph::FromCnf(ChainCnf(16));
  for (ElimHeuristic h : {ElimHeuristic::kMinFill, ElimHeuristic::kMinDegree,
                          ElimHeuristic::kMaxCardinality}) {
    const std::vector<Var> order = EliminationOrder(g, h);
    ASSERT_TRUE(IsPermutation(order, 16));
    EXPECT_LE(InducedWidth(g, order), 1u) << ElimHeuristicName(h);
  }
}

TEST(StructureElimination, GridWidthIsBracketed) {
  const PrimalGraph g = PrimalGraph::FromCnf(GridCnf(4, 5));
  // A 4x5 grid has treewidth 4 = min(rows, cols).
  EXPECT_GE(Degeneracy(g).degeneracy, 2u);
  const std::vector<Var> mf =
      EliminationOrder(g, ElimHeuristic::kMinFill);
  EXPECT_LE(InducedWidth(g, mf), 4u);
}

TEST(StructureElimination, WidthMatchesRecomputationOnRandomCnfs) {
  // Property: every candidate's reported width is the exact induced width
  // of its order (re-simulated), the degeneracy lower-bounds the best
  // width, and the dtree width never exceeds the best width.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Cnf cnf = RandomCnf(24, 60, 3, seed);
    const StructureReport report = AnalyzeCnfStructure(cnf);
    ASSERT_FALSE(report.candidates.empty());
    for (const OrderCandidate& cand : report.candidates) {
      ASSERT_TRUE(IsPermutation(cand.order, cnf.num_vars()));
      EXPECT_EQ(cand.width, InducedWidth(report.graph, cand.order))
          << "seed " << seed << " " << ElimHeuristicName(cand.heuristic);
    }
    EXPECT_LE(report.width_lower_bound, report.best_width()) << seed;
    EXPECT_LE(report.dtree_width, report.best_width()) << seed;
  }
}

TEST(StructureElimination, OrdersAreDeterministic) {
  // The same CNF must produce byte-identical orders on every run — the
  // forecast feeds admission control, so it must not depend on hashing
  // order, thread count, or platform tie-breaking.
  const Cnf cnf = RandomCnf(30, 90, 3, 42);
  const StructureReport a = AnalyzeCnfStructure(cnf);
  const StructureReport b = AnalyzeCnfStructure(cnf);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].order, b.candidates[i].order);
    EXPECT_EQ(a.candidates[i].width, b.candidates[i].width);
  }
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.width_lower_bound, b.width_lower_bound);
}

// --- propagation facts ---

TEST(StructureReportTest, BackboneAndUnits) {
  Cnf cnf(4);
  cnf.AddClause({Pos(0)});           // unit: x0
  cnf.AddClause({Neg(0), Pos(1)});   // chain: forces x1
  cnf.AddClause({Pos(2), Pos(3)});   // untouched
  const StructureReport report = AnalyzeCnfStructure(cnf);
  EXPECT_EQ(report.num_unit_clauses, 1u);
  EXPECT_FALSE(report.trivially_unsat);
  ASSERT_EQ(report.backbone.size(), 2u);
  EXPECT_EQ(report.backbone[0], Pos(0));
  EXPECT_EQ(report.backbone[1], Pos(1));
}

TEST(StructureReportTest, UnitPropagationRefutation) {
  Cnf cnf(2);
  cnf.AddClause({Pos(0)});
  cnf.AddClause({Neg(0), Pos(1)});
  cnf.AddClause({Neg(1)});
  const StructureReport report = AnalyzeCnfStructure(cnf);
  EXPECT_TRUE(report.trivially_unsat);
  DiagnosticReport diag;
  StructureDiagnostics(report, diag);
  const Diagnostic* d = diag.FindRule(rules::kStructureBackbone);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(StructureReportTest, DisconnectedComponents) {
  Cnf cnf(6);
  cnf.AddClause({Pos(0), Pos(1)});
  cnf.AddClause({Pos(2), Pos(3)});
  cnf.AddClause({Pos(4), Pos(5)});
  const StructureReport report = AnalyzeCnfStructure(cnf);
  EXPECT_EQ(report.num_components, 3u);
  EXPECT_EQ(report.largest_component, 2u);
  DiagnosticReport diag;
  StructureDiagnostics(report, diag);
  EXPECT_TRUE(diag.HasRule(rules::kStructureDisconnected));
  EXPECT_TRUE(diag.clean());  // notes only
}

TEST(StructureReportTest, EmptyCnfDoesNotCrash) {
  const StructureReport report = AnalyzeCnfStructure(Cnf(0));
  EXPECT_EQ(report.best_width(), 0u);
  EXPECT_FALSE(report.ToText().empty());
  EXPECT_FALSE(report.ToJson().empty());
}

TEST(StructureReportTest, ForecastsOrderedByStrength) {
  const StructureReport report = AnalyzeCnfStructure(GridCnf(3, 4));
  ASSERT_EQ(report.forecasts.size(), 3u);
  // The d-DNNF envelope is the tightest, the SDD bound one bit looser.
  EXPECT_LE(report.forecasts[0].log2_nodes, report.forecasts[1].log2_nodes);
}

// --- decomposition synthesis ---

TEST(StructureDecompose, VtreeCoversAllVariablesAndRoundTrips) {
  const Cnf cnf = RandomCnf(18, 44, 3, 5);
  const StructureReport report = AnalyzeCnfStructure(cnf);
  const Vtree vt = VtreeForCnf(report);
  EXPECT_EQ(vt.num_vars(), cnf.num_vars());
  // File round-trip: the synthesized vtree survives serialization and the
  // hardened parser (satellite: Vtree::Parse fixes).
  auto reparsed = Vtree::Parse(vt.ToFileString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(reparsed->ToString(), vt.ToString());
}

TEST(StructureDecompose, VtreeHandlesDisconnectedGraphs) {
  Cnf cnf(5);
  cnf.AddClause({Pos(0), Pos(1)});
  cnf.AddClause({Pos(3), Pos(4)});  // var 2 is isolated
  const StructureReport report = AnalyzeCnfStructure(cnf);
  const Vtree vt = VtreeForCnf(report);
  EXPECT_EQ(vt.num_vars(), 5u);
}

TEST(StructureDecompose, MinfillVtreeCompilesAndLintsClean) {
  // End-to-end: synthesize the vtree, compile an SDD against it, and both
  // the model count and the static SDD analyzer must agree it is sound.
  const Cnf cnf = RandomCnf(12, 30, 3, 9);
  const StructureReport report = AnalyzeCnfStructure(cnf);
  const Vtree planned = VtreeForCnf(report);
  SddManager planned_mgr(planned);
  const SddId f = CompileCnf(planned_mgr, cnf);

  SddManager balanced_mgr(Vtree::Balanced(Vtree::IdentityOrder(12)));
  const SddId g = CompileCnf(balanced_mgr, cnf);
  EXPECT_EQ(planned_mgr.ModelCount(f).ToString(),
            balanced_mgr.ModelCount(g).ToString());

  DiagnosticReport diag;
  AnalyzeSddFile(WriteSdd(planned_mgr, f), planned, {}, diag);
  EXPECT_TRUE(diag.clean()) << diag.ToText("minfill sdd");
}

// --- work budget (bounded analysis on untrusted/dense inputs) ---

TEST(StructureGraph, DefaultConstructedGraphIsEmpty) {
  // A StructureReport's graph member before AnalyzeCnfStructure populates
  // it (or after a truncated analysis skips it) must read as empty, not
  // wrap to SIZE_MAX.
  const PrimalGraph g;
  EXPECT_EQ(g.num_vars(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  const StructureReport report;
  EXPECT_EQ(report.graph.num_vars(), 0u);
}

TEST(StructureElimination, WorkBudgetAbortsOnDenseGraphs) {
  Cnf clique(40);
  Clause wide;
  for (Var v = 0; v < 40; ++v) wide.push_back(Pos(v));
  clique.AddClause(wide);
  const PrimalGraph g = PrimalGraph::FromCnf(clique);

  // A tiny budget aborts the greedy simulations (empty order / incomplete
  // tree); an ample one reproduces the unbudgeted result exactly.
  EXPECT_TRUE(EliminationOrder(g, ElimHeuristic::kMinDegree, 10).empty());
  EXPECT_TRUE(EliminationOrder(g, ElimHeuristic::kMinFill, 10).empty());
  const std::vector<Var> order = EliminationOrder(g, ElimHeuristic::kMinDegree);
  ASSERT_TRUE(IsPermutation(order, 40));
  EXPECT_FALSE(BuildEliminationTree(g, order, 10).completed);
  const EliminationTree bounded =
      BuildEliminationTree(g, order, uint64_t{1} << 30);
  EXPECT_TRUE(bounded.completed);
  EXPECT_EQ(bounded.width, InducedWidth(g, order));
}

TEST(StructureForecast, WorkBudgetTruncatesInsteadOfStalling) {
  Cnf clique(64);
  Clause wide;
  for (Var v = 0; v < 64; ++v) wide.push_back(Pos(v));
  clique.AddClause(wide);
  clique.AddClause({Pos(0)});

  // Budget below even the graph build: only the linear passes survive.
  StructureOptions tiny;
  tiny.work_budget = 16;
  const StructureReport graph_free = AnalyzeCnfStructure(clique, tiny);
  EXPECT_TRUE(graph_free.truncated);
  EXPECT_TRUE(graph_free.candidates.empty());
  EXPECT_EQ(graph_free.best_width(), 0u);
  EXPECT_EQ(graph_free.width_lower_bound, 0u);  // degeneracy skipped too
  EXPECT_EQ(graph_free.num_unit_clauses, 1u);   // linear passes still ran
  EXPECT_TRUE(graph_free.forecasts.empty());    // width 0 must not be priced

  // Budget that admits the graph but not the elimination simulation: the
  // degeneracy lower bound survives and is still exact (63 for a clique),
  // so a consumer can still refuse soundly on it.
  StructureOptions mid;
  mid.work_budget = 64 * 63 + 100;
  const StructureReport degen_only = AnalyzeCnfStructure(clique, mid);
  EXPECT_TRUE(degen_only.truncated);
  EXPECT_TRUE(degen_only.candidates.empty());
  EXPECT_EQ(degen_only.width_lower_bound, 63u);

  // An ample budget is bit-identical to no budget at all.
  StructureOptions ample;
  ample.work_budget = uint64_t{1} << 40;
  const StructureReport bounded = AnalyzeCnfStructure(clique, ample);
  const StructureReport unbounded = AnalyzeCnfStructure(clique);
  EXPECT_FALSE(bounded.truncated);
  ASSERT_EQ(bounded.candidates.size(), unbounded.candidates.size());
  for (size_t i = 0; i < bounded.candidates.size(); ++i) {
    EXPECT_EQ(bounded.candidates[i].order, unbounded.candidates[i].order);
    EXPECT_EQ(bounded.candidates[i].width, unbounded.candidates[i].width);
  }
  EXPECT_EQ(bounded.best_width(), 63u);
  // Truncation state is part of the rendered reports.
  EXPECT_NE(degen_only.ToJson().find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(bounded.ToJson().find("\"truncated\":false"), std::string::npos);
}

TEST(StructureDecompose, DtreeWidthBoundsAndFormat) {
  const Cnf cnf = GridCnf(3, 3);
  const PrimalGraph g = PrimalGraph::FromCnf(cnf);
  const std::vector<Var> order =
      EliminationOrder(g, ElimHeuristic::kMinFill);
  const Dtree dt = DtreeFromEliminationOrder(cnf, order);
  EXPECT_LE(dt.width, InducedWidth(g, order));
  const std::string text = dt.ToFileString();
  EXPECT_EQ(text.compare(0, 5, "dtree"), 0);
  // One leaf per clause: count 'L' lines.
  size_t leaves = 0;
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '\n' && text[i + 1] == 'L') ++leaves;
  }
  EXPECT_EQ(leaves, cnf.num_clauses());
}

}  // namespace
}  // namespace tbc
