#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "base/bigint.h"
#include "base/random.h"
#include "base/strings.h"

#include <clocale>
#include <cmath>
#include <cstring>
#include <locale>
#include <sstream>

namespace tbc {
namespace {

TEST(BigUintTest, ZeroAndSmallValues) {
  BigUint zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.ToU64(), 0u);

  BigUint five(5);
  EXPECT_FALSE(five.IsZero());
  EXPECT_EQ(five.ToString(), "5");
  EXPECT_EQ(five.ToU64(), 5u);
  EXPECT_DOUBLE_EQ(five.ToDouble(), 5.0);
}

TEST(BigUintTest, AdditionMatchesU64) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.Next() >> 2;
    uint64_t b = rng.Next() >> 2;
    EXPECT_EQ((BigUint(a) + BigUint(b)).ToU64(), a + b);
  }
}

TEST(BigUintTest, MultiplicationMatchesU64) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.Next() >> 33;
    uint64_t b = rng.Next() >> 33;
    EXPECT_EQ((BigUint(a) * BigUint(b)).ToU64(), a * b);
  }
}

TEST(BigUintTest, CarryAcrossLimbs) {
  BigUint max64(~0ull);
  BigUint sum = max64 + BigUint(1);
  EXPECT_FALSE(sum.FitsU64());
  EXPECT_EQ(sum.ToString(), "18446744073709551616");  // 2^64
  EXPECT_EQ(sum, BigUint::PowerOfTwo(64));
}

TEST(BigUintTest, PowerOfTwoLarge) {
  // 2^128 = 340282366920938463463374607431768211456.
  EXPECT_EQ(BigUint::PowerOfTwo(128).ToString(),
            "340282366920938463463374607431768211456");
}

TEST(BigUintTest, MultiplicationLarge) {
  // (2^64)^2 = 2^128.
  BigUint x = BigUint::PowerOfTwo(64);
  EXPECT_EQ(x * x, BigUint::PowerOfTwo(128));
  // Factorial of 25 exceeds 2^64.
  BigUint fact(1);
  for (uint64_t i = 2; i <= 25; ++i) fact *= BigUint(i);
  EXPECT_EQ(fact.ToString(), "15511210043330985984000000");
}

TEST(BigUintTest, Subtraction) {
  BigUint x = BigUint::PowerOfTwo(64);
  EXPECT_EQ((x - BigUint(1)).ToString(), "18446744073709551615");
  EXPECT_EQ(x - x, BigUint(0));
}

TEST(BigUintTest, Comparisons) {
  EXPECT_LT(BigUint(3), BigUint(4));
  EXPECT_GT(BigUint::PowerOfTwo(70), BigUint(~0ull));
  EXPECT_LE(BigUint(4), BigUint(4));
  EXPECT_NE(BigUint(0), BigUint(1));
}

TEST(BigUintTest, ToDoubleLarge) {
  EXPECT_NEAR(BigUint::PowerOfTwo(100).ToDouble(), std::pow(2.0, 100), 1e15);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(StringsTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  a b\t c \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, SplitChar) {
  auto parts = SplitChar("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, StripAndJoin) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, HexFloatCodecRoundTripsBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           0.1,
                           0.4375,
                           1e-300,
                           5e-324,  // min subnormal
                           1e300,
                           0x1.fffffffffffffp+1023,  // max finite
                           -0x1.5555555555555p-2};
  for (double v : values) {
    const std::string hex = FormatDoubleHex(v);
    double back = 42.0;
    ASSERT_TRUE(ParseDoubleAnyFormat(hex, &back)) << hex;
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << hex;  // incl. -0.0
  }
  double out = 0.0;
  EXPECT_TRUE(ParseDoubleAnyFormat("inf", &out));
  EXPECT_TRUE(std::isinf(out) && out > 0.0);
  EXPECT_TRUE(ParseDoubleAnyFormat("-infinity", &out));
  EXPECT_TRUE(std::isinf(out) && out < 0.0);
  EXPECT_EQ(FormatDoubleHex(out), "-inf");
  EXPECT_TRUE(ParseDoubleAnyFormat("1.5e3", &out));  // decimal still accepted
  EXPECT_EQ(out, 1500.0);
  EXPECT_FALSE(ParseDoubleAnyFormat("nan", &out));
  EXPECT_FALSE(ParseDoubleAnyFormat("0x", &out));
  EXPECT_FALSE(ParseDoubleAnyFormat("0x1.8p+1junk", &out));
  EXPECT_FALSE(ParseDoubleAnyFormat("", &out));
}

// A numpunct facet whose radix character is ',' — what a de_DE/fr_FR
// locale does to locale-sensitive numeric code.
class CommaNumpunct : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
};

// Satellite pin for the locale-independence audit: every numeric codec on
// a serialization path (ParseDouble, the hexfloat WMC transport) must be
// immune to the run-time locale's radix character. The container only
// ships C/POSIX locales, so the test installs a comma-radix C++ global
// locale directly (and opportunistically a named C locale when one
// exists) rather than skipping.
TEST(StringsTest, NumericCodecsIgnoreCommaDecimalLocale) {
  const std::locale saved_cpp = std::locale::global(
      std::locale(std::locale::classic(), new CommaNumpunct));
  const std::string saved_c = std::setlocale(LC_ALL, nullptr);
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                           "fr_FR.utf8", "de_DE", "fr_FR"}) {
    if (std::setlocale(LC_ALL, name) != nullptr) break;
  }

  // Prove a comma locale is genuinely active for locale-sensitive code.
  std::ostringstream sensitive;
  sensitive.imbue(std::locale());
  sensitive << 1.5;
  ASSERT_EQ(sensitive.str(), "1,5");

  double out = 0.0;
  EXPECT_TRUE(ParseDouble("1.5", &out));
  EXPECT_EQ(out, 1.5);
  EXPECT_FALSE(ParseDouble("1,5", &out));  // comma is never a radix on disk
  const double v = 0.4375;
  EXPECT_EQ(FormatDoubleHex(v), "0x1.cp-2");  // no comma sneaks in
  double back = 0.0;
  EXPECT_TRUE(ParseDoubleAnyFormat("0x1.cp-2", &back));
  EXPECT_EQ(back, v);

  std::setlocale(LC_ALL, saved_c.c_str());
  std::locale::global(saved_cpp);
}

}  // namespace
}  // namespace tbc
