#include <gtest/gtest.h>

#include <set>

#include "base/random.h"
#include "core/kc_map.h"
#include "core/solvers.h"

namespace tbc {
namespace {

Cnf RandomCnf(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < k) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

// Brute-force E-MAJSAT / MAJMAJSAT oracles.
uint64_t BruteMaxCountOverY(const Cnf& cnf, const std::vector<Var>& y_vars) {
  std::vector<Var> z_vars;
  for (Var v = 0; v < cnf.num_vars(); ++v) {
    bool in_y = false;
    for (Var y : y_vars) in_y |= y == v;
    if (!in_y) z_vars.push_back(v);
  }
  uint64_t best = 0;
  for (uint64_t yb = 0; yb < (1ull << y_vars.size()); ++yb) {
    uint64_t count = 0;
    for (uint64_t zb = 0; zb < (1ull << z_vars.size()); ++zb) {
      Assignment a(cnf.num_vars());
      for (size_t i = 0; i < y_vars.size(); ++i) a[y_vars[i]] = (yb >> i) & 1;
      for (size_t i = 0; i < z_vars.size(); ++i) a[z_vars[i]] = (zb >> i) & 1;
      count += cnf.Evaluate(a);
    }
    best = std::max(best, count);
  }
  return best;
}

TEST(CircuitSolversTest, SatAndCount) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Cnf cnf = RandomCnf(10, 28, 3, seed);
    const uint64_t brute = cnf.CountModelsBruteForce();
    EXPECT_EQ(CircuitSolvers::DecideSat(cnf), brute > 0) << seed;
    EXPECT_EQ(CircuitSolvers::CountSat(cnf).ToU64(), brute) << seed;
    EXPECT_EQ(CircuitSolvers::DecideMajSat(cnf), 2 * brute > 1024) << seed;
  }
}

TEST(CircuitSolversTest, WeightedModelCount) {
  Cnf cnf = RandomCnf(8, 18, 3, 3);
  WeightMap w(8);
  Rng rng(3);
  for (Var v = 0; v < 8; ++v) {
    const double p = rng.Uniform();
    w.Set(Pos(v), p);
    w.Set(Neg(v), 1 - p);
  }
  double brute = 0.0;
  for (int bits = 0; bits < 256; ++bits) {
    Assignment a(8);
    for (Var v = 0; v < 8; ++v) a[v] = (bits >> v) & 1;
    if (!cnf.Evaluate(a)) continue;
    double term = 1.0;
    for (Var v = 0; v < 8; ++v) term *= w[Lit(v, a[v])];
    brute += term;
  }
  EXPECT_NEAR(CircuitSolvers::WeightedModelCount(cnf, w), brute, 1e-10);
}

TEST(CircuitSolversTest, EMajSatMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Cnf cnf = RandomCnf(9, 20, 3, seed + 30);
    const std::vector<Var> y = {0, 2, 5};
    const uint64_t brute = BruteMaxCountOverY(cnf, y);
    EXPECT_EQ(CircuitSolvers::MaxCountOverY(cnf, y).ToU64(), brute)
        << "seed " << seed;
    EXPECT_EQ(CircuitSolvers::DecideEMajSat(cnf, y), 2 * brute > (1u << 6))
        << "seed " << seed;
  }
}

TEST(CircuitSolversTest, MajMajSatMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Cnf cnf = RandomCnf(9, 18, 3, seed + 80);
    const std::vector<Var> y = {1, 4, 7};
    // Brute force.
    uint64_t majority_y = 0;
    for (uint64_t yb = 0; yb < 8; ++yb) {
      uint64_t count = 0;
      for (int bits = 0; bits < (1 << 9); ++bits) {
        Assignment a(9);
        for (Var v = 0; v < 9; ++v) a[v] = (bits >> v) & 1;
        bool match = true;
        for (size_t i = 0; i < y.size(); ++i) {
          match &= a[y[i]] == (((yb >> i) & 1) != 0);
        }
        if (match && cnf.Evaluate(a)) ++count;
      }
      if (2 * count > (1u << 6)) ++majority_y;
    }
    EXPECT_EQ(CircuitSolvers::DecideMajMajSat(cnf, y), 2 * majority_y > 8)
        << "seed " << seed;
  }
}

TEST(KcMapTest, QuerySupportMatchesPaperClaims) {
  using kc::Language;
  using kc::Query;
  // §3: "satisfiability of DNNF circuits can be decided in time linear".
  EXPECT_TRUE(kc::SupportsQuery(Language::kDnnf, Query::kConsistency));
  // NNF alone is intractable.
  EXPECT_FALSE(kc::SupportsQuery(Language::kNnf, Query::kConsistency));
  // §3: d-DNNF unlocks counting (PP).
  EXPECT_TRUE(kc::SupportsQuery(Language::kDDnnf, Query::kModelCount));
  EXPECT_FALSE(kc::SupportsQuery(Language::kDnnf, Query::kModelCount));
  // SDDs are canonical -> equivalence check.
  EXPECT_TRUE(kc::SupportsQuery(Language::kSdd, Query::kEquivalence));
  EXPECT_FALSE(kc::SupportsQuery(Language::kDDnnf, Query::kEquivalence));
}

TEST(KcMapTest, TransformationSupportMatchesPaperClaims) {
  using kc::Language;
  using kc::Transformation;
  // §3: "SDDs support polytime conjunction and disjunction ... negated in
  // linear time"; general DNNF circuits cannot be conjoined in polytime.
  EXPECT_TRUE(kc::SupportsTransformation(Language::kSdd,
                                         Transformation::kConjoinBounded));
  EXPECT_TRUE(kc::SupportsTransformation(Language::kSdd,
                                         Transformation::kDisjoinBounded));
  EXPECT_TRUE(kc::SupportsTransformation(Language::kSdd, Transformation::kNegate));
  EXPECT_FALSE(kc::SupportsTransformation(Language::kDnnf,
                                          Transformation::kConjoinBounded));
  // Everything supports conditioning.
  for (kc::Language lang : kc::AllLanguages()) {
    EXPECT_TRUE(kc::SupportsTransformation(lang, Transformation::kCondition));
  }
}

TEST(KcMapTest, CheapestLanguageRespectsSuccinctnessChain) {
  using kc::Language;
  using kc::Query;
  EXPECT_EQ(kc::CheapestLanguageFor({}), Language::kNnf);
  EXPECT_EQ(kc::CheapestLanguageFor({Query::kConsistency}), Language::kDnnf);
  EXPECT_EQ(kc::CheapestLanguageFor({Query::kModelCount}), Language::kDDnnf);
  EXPECT_EQ(kc::CheapestLanguageFor({Query::kEquivalence}), Language::kSdd);
  EXPECT_EQ(kc::CheapestLanguageFor({Query::kSentenceEntail}), Language::kObdd);
}

TEST(KcMapTest, NamesAreStable) {
  EXPECT_EQ(kc::ToString(kc::Language::kDecisionDnnf), "Decision-DNNF");
  EXPECT_EQ(kc::ToString(kc::Query::kModelCount), "CT");
  EXPECT_EQ(kc::ToString(kc::Transformation::kSingletonForget), "SFO");
}

}  // namespace
}  // namespace tbc
