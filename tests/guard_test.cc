// Resource-governance tests: Budget/Guard units, Result<T> ergonomics, and
// the end-to-end contracts of ISSUE — a hard instance under a tiny budget
// returns a typed refusal (never an abort or a hang), cross-thread
// cancellation stops the CDCL search promptly, and the same instances still
// compile correctly once the budget is lifted.

#include <thread>

#include "base/guard.h"
#include "base/random.h"
#include "base/result.h"
#include "base/timer.h"
#include "compiler/ddnnf_compiler.h"
#include "compiler/model_counter.h"
#include "gtest/gtest.h"
#include "logic/cnf.h"
#include "nnf/nnf.h"
#include "nnf/queries.h"
#include "obdd/obdd.h"
#include "sat/solver.h"
#include "sdd/compile.h"
#include "sdd/minimize.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"
#include "xai/compile.h"

namespace tbc {
namespace {

// Random k-CNF with distinct variables per clause. At ratio ~4.26 and k=3
// this sits at the satisfiability phase transition, where CDCL search and
// compilation are hardest.
Cnf RandomCnf(size_t num_vars, size_t num_clauses, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(num_vars);
  for (size_t i = 0; i < num_clauses; ++i) {
    Clause c;
    while (c.size() < 3) {
      const Var v = static_cast<Var>(rng.Below(num_vars));
      bool fresh = true;
      for (Lit l : c) fresh = fresh && l.var() != v;
      if (fresh) c.push_back(Lit(v, rng.Flip(0.5)));
    }
    cnf.AddClause(std::move(c));
  }
  return cnf;
}

TEST(Budget, ZeroMeansUnlimited) {
  Guard guard(Budget::Unlimited());
  EXPECT_FALSE(guard.has_deadline());
  EXPECT_TRUE(guard.Check().ok());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(guard.ChargeNodes(1000).ok());
}

TEST(Guard, NodeBudgetTripsExactly) {
  Guard guard(Budget::NodeLimit(100));
  EXPECT_TRUE(guard.ChargeNodes(100).ok());
  const Status s = guard.ChargeNodes(1);
  EXPECT_EQ(s.code(), StatusCode::kBudgetExceeded);
  EXPECT_TRUE(s.IsRefusal());
}

TEST(Guard, DeadlineTripsAfterExpiry) {
  Guard guard(Budget::TimeLimit(1.0));
  Timer timer;
  while (timer.Millis() < 5.0) {
  }
  const Status s = guard.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(guard.RemainingMs(), 0.0);
}

TEST(Guard, CancelIsSticky) {
  Guard guard;
  EXPECT_TRUE(guard.Check().ok());
  guard.Cancel();
  EXPECT_EQ(guard.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(guard.ChargeNodes().code(), StatusCode::kCancelled);
  EXPECT_EQ(guard.Poll().code(), StatusCode::kCancelled);
}

TEST(Guard, ConflictAndDecisionBudgets) {
  Budget budget;
  budget.max_conflicts = 3;
  budget.max_decisions = 5;
  Guard guard(budget);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(guard.ChargeConflict().ok());
  EXPECT_EQ(guard.ChargeConflict().code(), StatusCode::kBudgetExceeded);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(guard.ChargeDecision().ok());
  EXPECT_EQ(guard.ChargeDecision().code(), StatusCode::kBudgetExceeded);
  EXPECT_EQ(guard.conflicts_charged(), 4u);
  EXPECT_EQ(guard.decisions_charged(), 6u);
}

TEST(Result, ErgonomicsValueOrAndErrorCode) {
  Result<int> good(42);
  EXPECT_EQ(good.value_or(-1), 42);
  EXPECT_EQ(good.error_code(), StatusCode::kOk);
  EXPECT_EQ(*good, 42);

  Result<int> bad(Status::BudgetExceeded("too big"));
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(bad.error_code(), StatusCode::kBudgetExceeded);
  EXPECT_TRUE(bad.status().IsRefusal());
}

Status PropagatesError(bool fail) {
  TBC_RETURN_IF_ERROR(fail ? Status::InvalidInput("nope") : Status::Ok());
  return Status::Ok();
}

Result<int> PropagatesResult(Result<int> r) {
  TBC_ASSIGN_OR_RETURN(const int x, std::move(r));
  return x + 1;
}

TEST(Result, ReturnIfErrorAndAssignOrReturn) {
  EXPECT_TRUE(PropagatesError(false).ok());
  EXPECT_EQ(PropagatesError(true).code(), StatusCode::kInvalidInput);
  EXPECT_EQ(*PropagatesResult(41), 42);
  EXPECT_EQ(PropagatesResult(Status::Cancelled("stop")).error_code(),
            StatusCode::kCancelled);
}

// --- CDCL under governance -------------------------------------------------

TEST(SolverGovernance, ConflictBudgetReturnsUnknown) {
  const Cnf cnf = RandomCnf(60, 256, 7);
  SatSolver solver;
  solver.AddCnf(cnf);
  Budget budget;
  budget.max_conflicts = 5;
  Guard guard(budget);
  solver.set_guard(&guard);
  const SatSolver::Outcome outcome = solver.Solve();
  EXPECT_EQ(outcome, SatSolver::Outcome::kUnknown);
  EXPECT_EQ(solver.interrupt_status().code(), StatusCode::kBudgetExceeded);
  // Without the guard the same solver object finishes and gives a real
  // answer — no leaked state from the interrupted run.
  solver.set_guard(nullptr);
  EXPECT_NE(solver.Solve(), SatSolver::Outcome::kUnknown);
}

TEST(SolverGovernance, CrossThreadCancellationStopsPromptly) {
  // A hard unsatisfiable-ish pigeonhole-style workload: random 3-CNF past
  // the phase transition with many variables keeps CDCL busy long enough
  // to observe the cancellation.
  const Cnf cnf = RandomCnf(120, 516, 11);
  SatSolver solver;
  solver.AddCnf(cnf);
  Guard guard;
  solver.set_guard(&guard);
  Timer timer;
  std::thread canceller([&guard] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    guard.Cancel();
  });
  const SatSolver::Outcome outcome = solver.Solve();
  canceller.join();
  // Either the instance solved before the cancel landed, or the search
  // stopped with the typed cancellation status — promptly either way.
  if (outcome == SatSolver::Outcome::kUnknown) {
    EXPECT_EQ(solver.interrupt_status().code(), StatusCode::kCancelled);
  }
  EXPECT_LT(timer.Millis(), 5000.0);
}

// --- Compilation under governance ------------------------------------------

TEST(CompilerGovernance, TinyNodeBudgetRefusesHardCnf) {
  const Cnf cnf = RandomCnf(60, 256, 3);
  NnfManager mgr;
  DdnnfCompiler compiler;
  Guard guard(Budget::NodeLimit(50));
  auto r = compiler.CompileBounded(cnf, mgr, guard);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error_code(), StatusCode::kBudgetExceeded);
}

TEST(CompilerGovernance, DeadlineRefusalIsPromptAndCleanOnHardCnf) {
  // The ISSUE acceptance criterion: a phase-transition 3-CNF (60+ vars)
  // under a 100 ms deadline must come back kDeadlineExceeded promptly,
  // without aborting. The wall-clock bound is generous because ctest -j
  // runs this under heavy scheduler contention.
  const Cnf cnf = RandomCnf(80, 341, 5);
  NnfManager mgr;
  DdnnfCompiler compiler;
  Guard guard(Budget::TimeLimit(100.0));
  Timer timer;
  auto r = compiler.CompileBounded(cnf, mgr, guard);
  const double elapsed = timer.Millis();
  if (!r.ok()) {
    EXPECT_EQ(r.error_code(), StatusCode::kDeadlineExceeded);
    EXPECT_LT(elapsed, 1000.0);
  }
  // (If the machine is fast enough to finish inside 100 ms, the compile
  // simply succeeds — also a valid outcome of a soft deadline.)
}

TEST(CompilerGovernance, UnboundedCompileStillCorrect) {
  // The governance plumbing must not change semantics: compile a sibling
  // instance small enough to verify by brute force, with and without a
  // (generous) guard, and compare counts.
  const Cnf cnf = RandomCnf(16, 68, 9);
  const uint64_t expected = cnf.CountModelsBruteForce();

  NnfManager mgr;
  DdnnfCompiler compiler;
  Guard generous(Budget::TimeLimit(60000.0));
  auto bounded = compiler.CompileBounded(cnf, mgr, generous);
  ASSERT_TRUE(bounded.ok()) << bounded.status().message();
  EXPECT_EQ(ModelCount(mgr, *bounded, cnf.num_vars()).ToString(),
            std::to_string(expected));

  NnfManager mgr2;
  const NnfId unbounded = compiler.Compile(cnf, mgr2);
  EXPECT_EQ(ModelCount(mgr2, unbounded, cnf.num_vars()).ToString(),
            std::to_string(expected));
}

TEST(CompilerGovernance, ModelCounterBudgets) {
  const Cnf hard = RandomCnf(60, 256, 13);
  ModelCounter counter;
  Guard tiny(Budget::NodeLimit(20));
  auto refused = counter.CountBounded(hard, tiny);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsRefusal());

  const Cnf small = RandomCnf(14, 59, 15);
  Guard roomy;
  auto counted = counter.CountBounded(small, roomy);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->ToString(), std::to_string(small.CountModelsBruteForce()));
}

TEST(SddGovernance, NodeBudgetRefusesAndManagerStaysUsable) {
  const Cnf cnf = RandomCnf(40, 170, 17);
  SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(cnf.num_vars())));
  Guard tiny(Budget::NodeLimit(64));
  auto r = CompileCnfBounded(mgr, cnf, tiny);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error_code(), StatusCode::kBudgetExceeded);
  EXPECT_FALSE(mgr.interrupted());  // CompileCnfBounded cleared the latch

  // The same manager still compiles a small formula correctly afterwards:
  // the interruption did not pollute the canonical caches. By canonicity
  // the guarded compile must return the very same node as the unbounded
  // one.
  Cnf tiny_cnf(2);
  tiny_cnf.AddClause({Lit(0, true), Lit(1, true)});
  Guard fresh;
  auto ok = CompileCnfBounded(mgr, tiny_cnf, fresh);
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  EXPECT_EQ(*ok, CompileCnf(mgr, tiny_cnf));
  EXPECT_NE(*ok, mgr.False());
}

TEST(SddGovernance, MinimizeReturnsBestSoFarOnDeadline) {
  const Cnf cnf = RandomCnf(20, 60, 19);
  const Vtree initial = Vtree::Balanced(Vtree::IdentityOrder(cnf.num_vars()));
  Guard guard(Budget::TimeLimit(50.0));
  const MinimizeResult r = MinimizeVtree(cnf, initial, 1000000, 23, guard);
  EXPECT_TRUE(r.interrupted);
  EXPECT_TRUE(r.interrupt_status.IsRefusal());
  if (r.size > 0) {
    // Best-so-far is a real vtree over the same variables.
    EXPECT_EQ(r.vtree.num_vars(), cnf.num_vars());
  }
}

TEST(XaiGovernance, BruteForceRejectsOversizedAndCancels) {
  BooleanClassifier big;
  big.num_features = 30;
  big.classify = [](const Assignment&) { return true; };
  ObddManager mgr(Vtree::IdentityOrder(30));
  Guard guard;
  auto r = CompileBruteForceBounded(big, mgr, guard);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error_code(), StatusCode::kInvalidInput);

  BooleanClassifier parity;
  parity.num_features = 18;
  parity.classify = [](const Assignment& x) {
    bool p = false;
    for (bool b : x) p ^= b;
    return p;
  };
  ObddManager mgr2(Vtree::IdentityOrder(18));
  Guard cancelled;
  cancelled.Cancel();
  auto c = CompileBruteForceBounded(parity, mgr2, cancelled);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.error_code(), StatusCode::kCancelled);

  Guard roomy;
  auto ok = CompileBruteForceBounded(parity, mgr2, roomy);
  ASSERT_TRUE(ok.ok());
  // Parity has 2^17 models over 18 variables.
  EXPECT_EQ(mgr2.ModelCount(*ok).ToString(), std::to_string(1u << 17));
}

}  // namespace
}  // namespace tbc
