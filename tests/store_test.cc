// Persistent circuit store: round-trip fidelity (bit-identical WMC across
// save/load), zero-copy mapped serving, degenerate roots, and the
// adversarial corpus — every corrupted/truncated store must be a typed
// kInvalidInput refusal, never a crash or an attacker-sized allocation.

#include "store/store.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "compiler/ddnnf_compiler.h"
#include "gtest/gtest.h"
#include "logic/cnf.h"
#include "nnf/properties.h"
#include "nnf/queries.h"
#include "store/format.h"

namespace tbc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing file " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// A small but non-trivial CNF whose compiled d-DNNF has sharing.
constexpr const char* kCnf =
    "p cnf 6 6\n"
    "1 2 0\n"
    "-1 3 0\n"
    "2 -3 4 0\n"
    "-4 5 0\n"
    "4 -5 -6 0\n"
    "3 6 0\n";

struct Compiled {
  NnfManager mgr;
  NnfId root;
  Cnf cnf;
};

void CompileFixture(Compiled* out) {
  auto cnf = Cnf::ParseDimacs(kCnf);
  ASSERT_TRUE(cnf.ok());
  out->cnf = std::move(cnf).value();
  DdnnfCompiler compiler;
  out->root = compiler.Compile(out->cnf, out->mgr);
}

WeightMap FixtureWeights(size_t num_vars) {
  WeightMap w(num_vars);
  for (Var v = 0; v < num_vars; ++v) {
    w.Set(Pos(v), 0.25 + 0.125 * static_cast<double>(v));
    w.Set(Neg(v), 1.0 - 0.0625 * static_cast<double>(v));
  }
  return w;
}

TEST(StoreTest, RoundTripPreservesCountAndWmcBitIdentically) {
  Compiled c;
  CompileFixture(&c);
  const size_t num_vars = c.cnf.num_vars();
  const BigUint count = ModelCount(c.mgr, c.root, num_vars);
  const WeightMap weights = FixtureWeights(num_vars);
  const double wmc = Wmc(c.mgr, c.root, weights);

  const std::string path = TempPath("roundtrip.tbc");
  StoreWriteOptions options;
  options.cnf_text = kCnf;
  options.model_count = &count;
  options.num_vars = num_vars;
  ASSERT_TRUE(WriteCircuitStore(c.mgr, c.root, path, options).ok());

  auto loaded = LoadCircuitStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->store->cnf_text(), kCnf);
  ASSERT_TRUE(loaded->store->has_model_count());
  EXPECT_EQ(loaded->store->model_count(), count);
  EXPECT_EQ(loaded->mgr->num_vars(), num_vars);
  EXPECT_EQ(loaded->mgr->mapped_nodes(), loaded->mgr->num_nodes());

  // Same count and bit-identical WMC over the mapped arrays.
  EXPECT_EQ(ModelCount(*loaded->mgr, loaded->root, num_vars), count);
  const double mapped_wmc = Wmc(*loaded->mgr, loaded->root, weights);
  EXPECT_EQ(mapped_wmc, wmc);  // exact: same kernel over the same DAG
}

TEST(StoreTest, MappedManagerSupportsOverlayMutation) {
  Compiled c;
  CompileFixture(&c);
  const size_t num_vars = c.cnf.num_vars();
  const std::string path = TempPath("overlay.tbc");
  StoreWriteOptions options;
  options.num_vars = num_vars;
  ASSERT_TRUE(WriteCircuitStore(c.mgr, c.root, path, options).ok());
  auto loaded = LoadCircuitStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  NnfManager& mapped = *loaded->mgr;

  // Smoothing and conditioning append overlay nodes past the mapped range
  // and must agree with the same operations on the owned manager.
  const NnfId smooth_owned = Smooth(c.mgr, c.root, num_vars);
  const NnfId smooth_mapped = Smooth(mapped, loaded->root, num_vars);
  EXPECT_GE(mapped.num_nodes(), mapped.mapped_nodes());
  EXPECT_EQ(ModelCount(mapped, smooth_mapped, num_vars),
            ModelCount(c.mgr, smooth_owned, num_vars));

  const Lit l = Pos(0);
  const NnfId cond_owned = c.mgr.Condition(c.root, l);
  const NnfId cond_mapped = mapped.Condition(loaded->root, l);
  EXPECT_EQ(ModelCount(mapped, cond_mapped, num_vars),
            ModelCount(c.mgr, cond_owned, num_vars));
}

TEST(StoreTest, DegenerateRootsRoundTrip) {
  NnfManager mgr;
  const NnfId lit = mgr.Literal(Pos(2));
  struct Case {
    NnfId root;
    uint64_t expected_count;  // over 3 variables
  };
  NnfManager scratch;  // silences unused warnings on some configs
  (void)scratch;
  const Case cases[] = {
      {mgr.False(), 0},
      {mgr.True(), 8},
      {lit, 4},
  };
  int i = 0;
  for (const Case& kase : cases) {
    const std::string path = TempPath("degenerate" + std::to_string(i++) + ".tbc");
    StoreWriteOptions options;
    options.num_vars = 3;
    ASSERT_TRUE(WriteCircuitStore(mgr, kase.root, path, options).ok());
    auto loaded = LoadCircuitStore(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_EQ(ModelCount(*loaded->mgr, loaded->root, 3),
              BigUint(kase.expected_count));
  }
}

TEST(StoreTest, WriteIsAtomicOverwrite) {
  NnfManager mgr;
  const std::string path = TempPath("overwrite.tbc");
  StoreWriteOptions options;
  options.num_vars = 1;
  ASSERT_TRUE(WriteCircuitStore(mgr, mgr.True(), path, options).ok());
  ASSERT_TRUE(WriteCircuitStore(mgr, mgr.False(), path, options).ok());
  auto loaded = LoadCircuitStore(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->root, loaded->mgr->False());
}

TEST(StoreTest, MissingFileIsUnavailableNotInvalid) {
  auto r = MappedStore::Open(TempPath("does_not_exist.tbc"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error_code(), StatusCode::kUnavailable);
}

TEST(StoreTest, RejectsRootOutOfRangeAtWrite) {
  NnfManager mgr;
  const Status st =
      WriteCircuitStore(mgr, 12345, TempPath("bad_root.tbc"), {});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidInput);
}

// ---- Adversarial inputs -------------------------------------------------

void ExpectRejected(const std::string& path, const std::string& label) {
  auto r = MappedStore::Open(path);
  ASSERT_FALSE(r.ok()) << label << " was accepted";
  EXPECT_EQ(r.error_code(), StatusCode::kInvalidInput) << label;
  EXPECT_FALSE(r.status().message().empty()) << label;
}

TEST(StoreTest, CommittedGoldenStoreLoads) {
  // valid.tbc is hand-encoded by tools/make_store_corpus.py: Or(x0, ¬x0)
  // over one variable, embedded CNF and model count. Accepting it pins the
  // on-disk format against accidental layout changes.
  const std::string path = std::string(TBC_CORPUS_DIR) + "/store/valid.tbc";
  auto loaded = LoadCircuitStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->store->cnf_text(), "p cnf 1 0\n");
  ASSERT_TRUE(loaded->store->has_model_count());
  EXPECT_EQ(loaded->store->model_count(), BigUint(2));
  EXPECT_EQ(ModelCount(*loaded->mgr, loaded->root, 1), BigUint(2));
}

TEST(StoreTest, CommittedCorpusRejected) {
  const std::vector<std::string> files = {
      "bad_magic.tbc",        "wrong_version.tbc",    "truncated_section.tbc",
      "flipped_checksum.tbc", "oversized_counts.tbc", "bad_child_order.tbc",
      "duplicate_constant.tbc",
  };
  for (const std::string& name : files) {
    const std::string path = std::string(TBC_CORPUS_DIR) + "/store/" + name;
    ASSERT_FALSE(ReadFileBytes(path).empty()) << path;
    ExpectRejected(path, name);
  }
}

TEST(StoreTest, EveryTruncationRejected) {
  Compiled c;
  CompileFixture(&c);
  const std::string path = TempPath("trunc_base.tbc");
  StoreWriteOptions options;
  options.cnf_text = kCnf;
  options.num_vars = c.cnf.num_vars();
  ASSERT_TRUE(WriteCircuitStore(c.mgr, c.root, path, options).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), kStoreDataOffset);

  // A sweep of prefix lengths including the interesting boundaries.
  std::vector<size_t> cuts = {0,
                              1,
                              sizeof(StoreHeader) - 1,
                              sizeof(StoreHeader),
                              kStoreDataOffset - 1,
                              kStoreDataOffset,
                              bytes.size() / 2,
                              bytes.size() - 1};
  const std::string cut_path = TempPath("trunc_cut.tbc");
  for (size_t cut : cuts) {
    WriteFileBytes(cut_path, bytes.substr(0, cut));
    ExpectRejected(cut_path, "truncation at " + std::to_string(cut));
  }
}

TEST(StoreTest, EveryBitFlipInHeaderOrPayloadRejected) {
  NnfManager mgr;
  const NnfId root = mgr.Or(mgr.Literal(Pos(0)), mgr.Literal(Neg(0)));
  const std::string path = TempPath("flip_base.tbc");
  StoreWriteOptions options;
  options.cnf_text = "p cnf 1 0\n";
  options.num_vars = 1;
  ASSERT_TRUE(WriteCircuitStore(mgr, root, path, options).ok());
  const std::string bytes = ReadFileBytes(path);

  const std::string flip_path = TempPath("flip_cut.tbc");
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x20);
    WriteFileBytes(flip_path, corrupted);
    auto r = MappedStore::Open(flip_path);
    ASSERT_FALSE(r.ok()) << "flip at byte " << pos << " was accepted";
    EXPECT_EQ(r.error_code(), StatusCode::kInvalidInput) << pos;
  }
}

TEST(StoreTest, NonCanonicalModelCountLimbsRejectedByBigUint) {
  BigUint out;
  EXPECT_FALSE(BigUint::FromLimbs({1, 0}, &out));  // leading zero limb
  EXPECT_TRUE(BigUint::FromLimbs({}, &out));
  EXPECT_EQ(out, BigUint(0));
  EXPECT_TRUE(BigUint::FromLimbs({7}, &out));
  EXPECT_EQ(out, BigUint(7));
}

}  // namespace
}  // namespace tbc
