#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "base/random.h"
#include "vtree/vtree.h"
#include "xai/bnn.h"
#include "xai/compile.h"
#include "xai/decision_tree.h"
#include "xai/explain.h"
#include "xai/naive_bayes.h"
#include "xai/robustness.h"

namespace tbc {
namespace {

// Random boolean function over n vars as a classifier.
BooleanClassifier RandomFunction(size_t n, uint64_t seed, double density = 0.5) {
  auto table = std::make_shared<std::vector<bool>>(1u << n);
  Rng rng(seed);
  for (size_t i = 0; i < table->size(); ++i) (*table)[i] = rng.Flip(density);
  return {n, [table, n](const Assignment& x) {
            size_t idx = 0;
            for (size_t v = 0; v < n; ++v) idx |= static_cast<size_t>(x[v]) << v;
            return (*table)[idx];
          }};
}

Term MakeTerm(std::vector<int> dimacs) {
  Term t;
  for (int d : dimacs) t.push_back(Lit::FromDimacs(d));
  std::sort(t.begin(), t.end(), [](Lit a, Lit b) { return a.var() < b.var(); });
  return t;
}

TEST(CompileTest, BruteForceMatchesFunction) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    BooleanClassifier c = RandomFunction(6, seed);
    ObddManager mgr(Vtree::IdentityOrder(6));
    ObddId f = CompileBruteForce(c, mgr);
    for (int bits = 0; bits < 64; ++bits) {
      Assignment x(6);
      for (Var v = 0; v < 6; ++v) x[v] = (bits >> v) & 1;
      ASSERT_EQ(mgr.Evaluate(f, x), c.classify(x));
    }
  }
}

TEST(NaiveBayesTest, PosteriorBehaves) {
  // Paper Fig 25's pregnancy classifier shape: three tests, all strongly
  // indicative.
  NaiveBayesClassifier nb(0.3, {0.95, 0.9, 0.99}, {0.1, 0.2, 0.05}, 0.5);
  EXPECT_GT(nb.Posterior({true, true, true}), 0.95);
  EXPECT_LT(nb.Posterior({false, false, false}), 0.05);
  EXPECT_TRUE(nb.Classify({true, true, true}));
  EXPECT_FALSE(nb.Classify({false, false, false}));
}

TEST(NaiveBayesTest, OddCompilationMatchesClassifierExactly) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    NaiveBayesClassifier nb = NaiveBayesClassifier::Random(8, 0.5, seed);
    ObddManager mgr(Vtree::IdentityOrder(8));
    ObddId odd = nb.CompileToOdd(mgr);
    for (int bits = 0; bits < 256; ++bits) {
      Assignment x(8);
      for (Var v = 0; v < 8; ++v) x[v] = (bits >> v) & 1;
      ASSERT_EQ(mgr.Evaluate(odd, x), nb.Classify(x)) << "seed " << seed;
    }
  }
}

TEST(NaiveBayesTest, OddIsSmallerThanTruthTable) {
  NaiveBayesClassifier nb = NaiveBayesClassifier::Random(12, 0.5, 7);
  ObddManager mgr(Vtree::IdentityOrder(12));
  ObddId odd = nb.CompileToOdd(mgr);
  EXPECT_LT(mgr.Size(odd), 1u << 12);
}

TEST(NaiveBayesTest, FitRecoversSeparableConcept) {
  // Label = feature 0 with noise on other features.
  Rng rng(5);
  std::vector<Assignment> data;
  std::vector<bool> labels;
  for (int i = 0; i < 500; ++i) {
    Assignment x(4);
    x[0] = rng.Flip(0.5);
    for (Var v = 1; v < 4; ++v) x[v] = rng.Flip(0.5);
    data.push_back(x);
    labels.push_back(x[0]);
  }
  auto nb = NaiveBayesClassifier::Fit(data, labels, 0.5, 1.0);
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    correct += nb.Classify(data[i]) == labels[i];
  }
  EXPECT_EQ(correct, data.size());
}

TEST(DecisionTreeTest, CompileMatchesClassify) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    DecisionTree t = DecisionTree::Random(6, 4, rng);
    ObddManager mgr(Vtree::IdentityOrder(6));
    ObddId f = t.CompileToObdd(mgr);
    for (int bits = 0; bits < 64; ++bits) {
      Assignment x(6);
      for (Var v = 0; v < 6; ++v) x[v] = (bits >> v) & 1;
      ASSERT_EQ(mgr.Evaluate(f, x), t.Classify(x)) << "trial " << trial;
    }
  }
}

TEST(RandomForestTest, MajorityVoteAndCompilation) {
  RandomForest rf = RandomForest::Random(5, 7, 3, 99);
  ObddManager mgr(Vtree::IdentityOrder(7));
  ObddId f = rf.CompileToObdd(mgr);
  for (int bits = 0; bits < 128; ++bits) {
    Assignment x(7);
    for (Var v = 0; v < 7; ++v) x[v] = (bits >> v) & 1;
    ASSERT_EQ(mgr.Evaluate(f, x), rf.Classify(x));
  }
}

TEST(BnnTest, CompilationMatchesNetwork) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    BinarizedNeuralNet net(7, 4, seed);
    ObddManager mgr(Vtree::IdentityOrder(7));
    ObddId f = net.CompileToObdd(mgr);
    for (int bits = 0; bits < 128; ++bits) {
      Assignment x(7);
      for (Var v = 0; v < 7; ++v) x[v] = (bits >> v) & 1;
      ASSERT_EQ(mgr.Evaluate(f, x), net.Classify(x)) << "seed " << seed;
    }
  }
}

TEST(BnnTest, NeuronCompilationMatchesActivation) {
  BinarizedNeuralNet net(6, 3, 42);
  ObddManager mgr(Vtree::IdentityOrder(6));
  for (size_t h = 0; h < 3; ++h) {
    ObddId neuron = net.CompileNeuron(mgr, h);
    for (int bits = 0; bits < 64; ++bits) {
      Assignment x(6);
      for (Var v = 0; v < 6; ++v) x[v] = (bits >> v) & 1;
      ASSERT_EQ(mgr.Evaluate(neuron, x), net.HiddenActivations(x)[h]);
    }
  }
}

TEST(BnnTest, ConvolutionalCompilationMatchesNetwork) {
  BinarizedNeuralNet net = BinarizedNeuralNet::Convolutional(3, 3, 2, 4, 7);
  ObddManager mgr(Vtree::IdentityOrder(9));
  const ObddId f = net.CompileToObdd(mgr);
  for (int bits = 0; bits < (1 << 9); ++bits) {
    Assignment x(9);
    for (Var v = 0; v < 9; ++v) x[v] = (bits >> v) & 1;
    ASSERT_EQ(mgr.Evaluate(f, x), net.Classify(x));
  }
  // Each neuron circuit only mentions its receptive field.
  for (size_t h = 0; h < 4; ++h) {
    NnfManager nnf;
    ObddId neuron = net.CompileNeuron(mgr, h);
    if (mgr.IsTerminal(neuron)) continue;
    NnfId exported = mgr.ToNnf(neuron, nnf);
    EXPECT_LE(nnf.NumVarsBelow(exported), 4u);  // 2x2 patch
  }
}

TEST(BnnTest, TrainingImprovesAccuracy) {
  DigitDataset data = MakeDigitDataset(4, 4, 80, 0.05, 3);
  BinarizedNeuralNet net(16, 8, 1);
  const double before = net.Accuracy(data.images, data.labels);
  net.Train(data.images, data.labels, 12);
  const double after = net.Accuracy(data.images, data.labels);
  EXPECT_GE(after, before);
  EXPECT_GT(after, 0.9);
  // Compilation still matches the trained network.
  ObddManager mgr(Vtree::IdentityOrder(16));
  ObddId f = net.CompileToObdd(mgr);
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_EQ(mgr.Evaluate(f, data.images[i]), net.Classify(data.images[i]));
  }
}

TEST(ExplainTest, Fig26PrimeImplicants) {
  // f = (A + ¬C)(B + C)(A + B) with A=var0, B=var1, C=var2.
  ObddManager mgr(Vtree::IdentityOrder(3));
  ObddId a = mgr.LiteralNode(Pos(0)), b = mgr.LiteralNode(Pos(1)),
         c = mgr.LiteralNode(Pos(2));
  ObddId f = mgr.And(mgr.And(mgr.Or(a, mgr.Not(c)), mgr.Or(b, c)), mgr.Or(a, b));

  std::vector<Term> pis = PrimeImplicants(mgr, f);
  std::set<Term> expected = {MakeTerm({1, 2}), MakeTerm({1, 3}),
                             MakeTerm({2, -3})};  // AB, AC, B¬C
  EXPECT_EQ(std::set<Term>(pis.begin(), pis.end()), expected);

  std::vector<Term> neg_pis = PrimeImplicants(mgr, mgr.Not(f));
  std::set<Term> neg_expected = {MakeTerm({-1, -2}), MakeTerm({-1, 3}),
                                 MakeTerm({-2, -3})};  // ¬A¬B, ¬AC, ¬B¬C
  EXPECT_EQ(std::set<Term>(neg_pis.begin(), neg_pis.end()), neg_expected);

  // Instance AB¬C (decision 1): sufficient reasons AB and B¬C.
  std::vector<Term> reasons = SufficientReasons(mgr, f, {true, true, false});
  EXPECT_EQ(std::set<Term>(reasons.begin(), reasons.end()),
            (std::set<Term>{MakeTerm({1, 2}), MakeTerm({2, -3})}));

  // Instance ¬ABC (decision 0): single sufficient reason ¬AC.
  std::vector<Term> neg_reasons =
      SufficientReasons(mgr, f, {false, true, true});
  EXPECT_EQ(std::set<Term>(neg_reasons.begin(), neg_reasons.end()),
            (std::set<Term>{MakeTerm({-1, 3})}));
}

TEST(ExplainTest, PrimeImplicantsMatchQuineMcCluskey) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    BooleanClassifier c = RandomFunction(6, seed + 60, 0.4);
    ObddManager mgr(Vtree::IdentityOrder(6));
    ObddId f = CompileBruteForce(c, mgr);
    std::vector<Term> obdd_pis = PrimeImplicants(mgr, f);
    std::vector<Term> qmc_pis = PrimeImplicantsQmc(c);
    EXPECT_EQ(std::set<Term>(obdd_pis.begin(), obdd_pis.end()),
              std::set<Term>(qmc_pis.begin(), qmc_pis.end()))
        << "seed " << seed;
  }
}

TEST(ExplainTest, AnySufficientReasonIsMinimalImplicant) {
  Rng seed_rng(9);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    BooleanClassifier c = RandomFunction(7, seed + 200, 0.5);
    ObddManager mgr(Vtree::IdentityOrder(7));
    ObddId f = CompileBruteForce(c, mgr);
    Assignment x(7);
    for (Var v = 0; v < 7; ++v) x[v] = seed_rng.Flip(0.5);
    const Term reason = AnySufficientReason(mgr, f, x);
    const ObddId target = mgr.Evaluate(f, x) ? f : mgr.Not(f);
    // It is an implicant compatible with x...
    ObddId restricted = target;
    for (Lit l : reason) {
      EXPECT_TRUE(Eval(l, x));
      restricted = mgr.Condition(restricted, l);
    }
    EXPECT_EQ(restricted, mgr.True());
    // ...and minimal: dropping any literal breaks it.
    for (size_t i = 0; i < reason.size(); ++i) {
      ObddId weaker = target;
      for (size_t j = 0; j < reason.size(); ++j) {
        if (j != i) weaker = mgr.Condition(weaker, reason[j]);
      }
      EXPECT_NE(weaker, mgr.True());
    }
  }
}

TEST(ExplainTest, ReasonCircuitCharacterizesSufficientReasons) {
  // The reason circuit's satisfying characteristic-subsets are exactly the
  // supersets of sufficient reasons [Darwiche & Hirth 2020].
  for (uint64_t seed = 0; seed < 10; ++seed) {
    BooleanClassifier c = RandomFunction(5, seed + 400, 0.5);
    ObddManager mgr(Vtree::IdentityOrder(5));
    ObddId f = CompileBruteForce(c, mgr);
    Assignment x(5);
    Rng rng(seed);
    for (Var v = 0; v < 5; ++v) x[v] = rng.Flip(0.5);
    NnfManager nnf;
    NnfId reason = ReasonCircuit(mgr, f, x, nnf);
    std::vector<Term> reasons = SufficientReasons(mgr, f, x);
    for (int subset = 0; subset < 32; ++subset) {
      // Characteristics kept: vars with subset bit set.
      std::vector<Var> excluded;
      for (Var v = 0; v < 5; ++v) {
        if (!((subset >> v) & 1)) excluded.push_back(v);
      }
      bool expected = false;
      for (const Term& r : reasons) {
        bool covered = true;
        for (Lit l : r) covered &= ((subset >> l.var()) & 1) != 0;
        expected |= covered;
      }
      EXPECT_EQ(ReasonHoldsWithout(nnf, reason, x, excluded), expected)
          << "seed " << seed << " subset " << subset;
    }
  }
}

TEST(ExplainTest, DecisionBiasMatchesDefinition) {
  // Biased iff the decision changes somewhere on the protected fiber.
  const std::vector<Var> protected_vars = {1, 3};
  for (uint64_t seed = 0; seed < 10; ++seed) {
    BooleanClassifier c = RandomFunction(5, seed + 700, 0.5);
    ObddManager mgr(Vtree::IdentityOrder(5));
    ObddId f = CompileBruteForce(c, mgr);
    Rng rng(seed + 1);
    Assignment x(5);
    for (Var v = 0; v < 5; ++v) x[v] = rng.Flip(0.5);
    bool biased = false;
    for (int p = 0; p < 4; ++p) {
      Assignment y = x;
      y[1] = (p & 1) != 0;
      y[3] = (p & 2) != 0;
      biased |= mgr.Evaluate(f, y) != mgr.Evaluate(f, x);
    }
    EXPECT_EQ(IsDecisionBiased(mgr, f, x, protected_vars), biased)
        << "seed " << seed;
  }
}

TEST(ExplainTest, ClassifierBiasMatchesSupportCheck) {
  ObddManager mgr(Vtree::IdentityOrder(4));
  // f ignores var 3.
  ObddId f = mgr.Or(mgr.And(mgr.LiteralNode(Pos(0)), mgr.LiteralNode(Pos(1))),
                    mgr.LiteralNode(Neg(2)));
  EXPECT_FALSE(IsClassifierBiased(mgr, f, {3}));
  EXPECT_TRUE(IsClassifierBiased(mgr, f, {2}));
  EXPECT_TRUE(IsClassifierBiased(mgr, f, {3, 0}));
}

TEST(ExplainTest, ApproximateReasonVersusExact) {
  // The footnote-18 comparison: Anchor-style sampled explanations are
  // exact, optimistic or pessimistic relative to the sufficient reasons.
  Rng rng(42);
  int exact = 0, optimistic = 0, pessimistic = 0, incomparable = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    BooleanClassifier c = RandomFunction(6, seed + 3000, 0.5);
    ObddManager mgr(Vtree::IdentityOrder(6));
    ObddId f = CompileBruteForce(c, mgr);
    Assignment x(6);
    for (Var v = 0; v < 6; ++v) x[v] = rng.Flip(0.5);
    const Term approx = ApproximateReason(c, x, /*samples=*/64, rng);
    // Approximation only keeps characteristics of x.
    for (Lit l : approx) EXPECT_TRUE(Eval(l, x));
    switch (ClassifyApproximation(SufficientReasons(mgr, f, x), approx)) {
      case ApproximationQuality::kExact:
        ++exact;
        break;
      case ApproximationQuality::kOptimistic:
        ++optimistic;
        break;
      case ApproximationQuality::kPessimistic:
        ++pessimistic;
        break;
      case ApproximationQuality::kIncomparable:
        ++incomparable;
        break;
    }
  }
  // With 64 samples on 6 features the approximation is usually right, and
  // every case is classified.
  EXPECT_EQ(exact + optimistic + pessimistic + incomparable, 20);
  EXPECT_GT(exact, 10);
}

TEST(ExplainTest, ClassifyApproximationCategories) {
  const std::vector<Term> reasons = {{Pos(0), Pos(1)}, {Neg(2)}};
  EXPECT_EQ(ClassifyApproximation(reasons, {Pos(0), Pos(1)}),
            ApproximationQuality::kExact);
  EXPECT_EQ(ClassifyApproximation(reasons, {Pos(0)}),
            ApproximationQuality::kOptimistic);
  EXPECT_EQ(ClassifyApproximation(reasons, {Pos(0), Pos(1), Pos(3)}),
            ApproximationQuality::kPessimistic);
  EXPECT_EQ(ClassifyApproximation(reasons, {Pos(4)}),
            ApproximationQuality::kIncomparable);
}

TEST(RobustnessTest, DecisionRobustnessMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    BooleanClassifier c = RandomFunction(7, seed + 900, 0.5);
    ObddManager mgr(Vtree::IdentityOrder(7));
    ObddId f = CompileBruteForce(c, mgr);
    Rng rng(seed);
    Assignment x(7);
    for (Var v = 0; v < 7; ++v) x[v] = rng.Flip(0.5);
    // Brute-force nearest opposite decision.
    size_t best = SIZE_MAX;
    const bool d = c.classify(x);
    for (int bits = 0; bits < 128; ++bits) {
      Assignment y(7);
      size_t dist = 0;
      for (Var v = 0; v < 7; ++v) {
        y[v] = (bits >> v) & 1;
        dist += y[v] != x[v];
      }
      if (c.classify(y) != d) best = std::min(best, dist);
    }
    EXPECT_EQ(DecisionRobustness(mgr, f, x), best) << "seed " << seed;
  }
}

TEST(RobustnessTest, ConstantClassifierHasInfiniteRobustness) {
  ObddManager mgr(Vtree::IdentityOrder(3));
  EXPECT_EQ(DecisionRobustness(mgr, mgr.True(), {false, false, false}),
            SIZE_MAX);
}

TEST(RobustnessTest, ModelRobustnessMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    BooleanClassifier c = RandomFunction(6, seed + 1200, 0.5);
    ObddManager mgr(Vtree::IdentityOrder(6));
    ObddId f = CompileBruteForce(c, mgr);
    if (f == mgr.True() || f == mgr.False()) continue;
    auto result = ModelRobustness(mgr, f);
    // Brute force histogram.
    std::vector<uint64_t> hist(7, 0);
    double total = 0.0;
    size_t maximum = 0;
    for (int bits = 0; bits < 64; ++bits) {
      Assignment x(6);
      for (Var v = 0; v < 6; ++v) x[v] = (bits >> v) & 1;
      const size_t r = DecisionRobustness(mgr, f, x);
      ++hist[r];
      total += static_cast<double>(r);
      maximum = std::max(maximum, r);
    }
    EXPECT_EQ(result.maximum, maximum) << "seed " << seed;
    EXPECT_NEAR(result.average, total / 64.0, 1e-9) << "seed " << seed;
    for (size_t k = 1; k <= maximum; ++k) {
      EXPECT_EQ(result.histogram[k].ToU64(), hist[k])
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(RobustnessTest, HistogramTotalsAllInstances) {
  BinarizedNeuralNet net(8, 4, 5);
  ObddManager mgr(Vtree::IdentityOrder(8));
  ObddId f = net.CompileToObdd(mgr);
  if (f == mgr.True() || f == mgr.False()) GTEST_SKIP();
  auto result = ModelRobustness(mgr, f);
  BigUint total(0);
  for (const BigUint& h : result.histogram) total += h;
  EXPECT_EQ(total, BigUint::PowerOfTwo(8));
}

}  // namespace
}  // namespace tbc
