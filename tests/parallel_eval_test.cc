// Determinism and cancellation tests for the parallel evaluation kernels.
// The contract under test (DESIGN.md "Kernel layer"): for every query, a
// pool of 1, 2, or 8 threads produces *bit-identical* results — identical
// BigUint model counts, identical WMC doubles, identical MPE assignments,
// identical PSDD likelihood vectors — because each parallel body writes
// only its own slot and all reductions run serially in index order. Under
// -DTBC_SANITIZE=thread these tests double as data-race checks on the
// shared read-only circuit state.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "base/guard.h"
#include "base/random.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "bayes/circuit_inference.h"
#include "bayes/network.h"
#include "compiler/ddnnf_compiler.h"
#include "gtest/gtest.h"
#include "logic/cnf.h"
#include "nnf/nnf.h"
#include "nnf/properties.h"
#include "nnf/queries.h"
#include "psdd/psdd.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

Cnf RandomCnf(size_t num_vars, size_t num_clauses, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(num_vars);
  for (size_t i = 0; i < num_clauses; ++i) {
    std::set<Var> vars;
    while (vars.size() < 3) {
      vars.insert(static_cast<Var>(rng.Below(num_vars)));
    }
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

WeightMap RandomWeights(size_t num_vars, uint64_t seed) {
  Rng rng(seed);
  WeightMap w(num_vars);
  for (Var v = 0; v < num_vars; ++v) {
    const double p = 0.05 + 0.9 * rng.Uniform();
    w.Set(Pos(v), p);
    w.Set(Neg(v), 1.0 - p);
  }
  return w;
}

constexpr size_t kThreadSweep[] = {1, 2, 8};

TEST(ParallelEvalTest, ModelCountIdenticalAcrossThreadCounts) {
  const size_t kVars = 24;
  const Cnf cnf = RandomCnf(kVars, 60, 11);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);

  Guard unlimited;
  const BigUint serial = ModelCount(mgr, root, kVars);
  for (size_t threads : kThreadSweep) {
    ThreadPool pool(threads);
    const Result<BigUint> parallel =
        ModelCountBounded(mgr, root, kVars, unlimited, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(*parallel, serial) << "threads=" << threads;
  }
}

TEST(ParallelEvalTest, WmcBitIdenticalAcrossThreadCounts) {
  const size_t kVars = 24;
  const Cnf cnf = RandomCnf(kVars, 60, 13);
  const WeightMap w = RandomWeights(kVars, 14);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);

  Guard unlimited;
  const double serial = Wmc(mgr, root, w);
  for (size_t threads : kThreadSweep) {
    ThreadPool pool(threads);
    const Result<double> parallel = WmcBounded(mgr, root, w, unlimited, &pool);
    ASSERT_TRUE(parallel.ok());
    // Bit-identical, not merely close: same per-node recurrence, same
    // child order, only slot-level parallelism.
    EXPECT_EQ(*parallel, serial) << "threads=" << threads;
  }
}

TEST(ParallelEvalTest, MpeBitIdenticalAcrossThreadCounts) {
  const size_t kVars = 20;
  const Cnf cnf = RandomCnf(kVars, 50, 17);
  const WeightMap w = RandomWeights(kVars, 18);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);

  Guard unlimited;
  const MpeResult serial = MaxWmc(mgr, root, w, kVars);
  for (size_t threads : kThreadSweep) {
    ThreadPool pool(threads);
    const Result<MpeResult> parallel =
        MaxWmcBounded(mgr, root, w, kVars, unlimited, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->weight, serial.weight) << "threads=" << threads;
    EXPECT_EQ(parallel->assignment, serial.assignment) << "threads=" << threads;
  }
}

TEST(ParallelEvalTest, PsddLikelihoodsIdenticalAcrossThreadCounts) {
  // Compile a small constraint, learn parameters from sampled data, then
  // sweep thread counts over both batch APIs.
  const size_t kVars = 8;
  const Cnf cnf = RandomCnf(kVars, 12, 23);
  SddManager sdd(Vtree::Balanced(Vtree::IdentityOrder(kVars)));
  const SddId base = CompileCnf(sdd, cnf);
  ASSERT_NE(base, sdd.False());
  Psdd psdd(sdd, base);

  Rng rng(29);
  std::vector<Assignment> data;
  for (int i = 0; i < 64; ++i) data.push_back(psdd.Sample(rng));
  psdd.LearnParameters(data, {}, 0.5);

  Guard unlimited;
  const double serial_ll = psdd.LogLikelihood(data);

  std::vector<PsddEvidence> evidence;
  for (int i = 0; i < 32; ++i) {
    PsddEvidence e(kVars, Obs::kUnknown);
    for (Var v = 0; v < kVars; ++v) {
      const uint64_t r = rng.Below(3);
      e[v] = r == 0 ? Obs::kFalse : r == 1 ? Obs::kTrue : Obs::kUnknown;
    }
    evidence.push_back(e);
  }
  const Result<std::vector<double>> serial_batch =
      psdd.ProbabilityEvidenceBatch(evidence, unlimited);
  ASSERT_TRUE(serial_batch.ok());

  for (size_t threads : kThreadSweep) {
    ThreadPool pool(threads);
    const Result<double> ll = psdd.LogLikelihoodBounded(data, unlimited, &pool);
    ASSERT_TRUE(ll.ok());
    EXPECT_EQ(*ll, serial_ll) << "threads=" << threads;

    const Result<std::vector<double>> batch =
        psdd.ProbabilityEvidenceBatch(evidence, unlimited, &pool);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(*batch, *serial_batch) << "threads=" << threads;
  }
}

TEST(ParallelEvalTest, BayesBatchMarIdenticalAcrossThreadCounts) {
  // A small chain network; the batch enumerates single-variable evidence.
  BayesianNetwork net;
  const BnVar a = net.AddVariable("a", 2, {}, {0.3, 0.7});
  const BnVar b = net.AddVariable("b", 2, {a}, {0.9, 0.1, 0.2, 0.8});
  net.AddVariable("c", 2, {b}, {0.6, 0.4, 0.25, 0.75});
  CompiledBayesNet compiled(net);

  std::vector<BnInstantiation> evidence;
  for (BnVar v = 0; v < 3; ++v) {
    for (int value = 0; value < 2; ++value) {
      BnInstantiation e(3, kUnobserved);
      e[v] = value;
      evidence.push_back(e);
    }
  }
  Guard unlimited;
  const Result<std::vector<double>> serial =
      compiled.ProbEvidenceBatch(evidence, unlimited);
  ASSERT_TRUE(serial.ok());
  for (size_t i = 0; i < evidence.size(); ++i) {
    EXPECT_DOUBLE_EQ((*serial)[i], compiled.ProbEvidence(evidence[i]));
  }
  for (size_t threads : kThreadSweep) {
    ThreadPool pool(threads);
    const Result<std::vector<double>> batch =
        compiled.ProbEvidenceBatch(evidence, unlimited, &pool);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(*batch, *serial) << "threads=" << threads;
  }
}

TEST(ParallelEvalTest, PreCancelledGuardRefusesBeforeWork) {
  const size_t kVars = 16;
  const Cnf cnf = RandomCnf(kVars, 40, 31);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);

  Guard guard;
  guard.Cancel();
  ThreadPool pool(4);
  const Result<BigUint> r = ModelCountBounded(mgr, root, kVars, guard, &pool);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error_code(), StatusCode::kCancelled);
}

TEST(ParallelEvalTest, MidRunCancellationStopsBatch) {
  // A deliberately large batch over a real circuit; a second thread flips
  // the guard mid-run. The batch must refuse with the typed status (or
  // have finished before the cancel landed) — never crash or deadlock.
  const size_t kVars = 8;
  const Cnf cnf = RandomCnf(kVars, 12, 37);
  SddManager sdd(Vtree::Balanced(Vtree::IdentityOrder(kVars)));
  const SddId base = CompileCnf(sdd, cnf);
  ASSERT_NE(base, sdd.False());
  Psdd psdd(sdd, base);

  std::vector<PsddEvidence> evidence(20000, PsddEvidence(kVars, Obs::kUnknown));
  Guard guard;
  ThreadPool pool(4);
  Result<std::vector<double>> result = Status::Cancelled("not started");
  std::thread worker([&] {
    result = psdd.ProbabilityEvidenceBatch(evidence, guard, &pool);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  guard.Cancel();
  worker.join();
  if (!result.ok()) {
    EXPECT_EQ(result.error_code(), StatusCode::kCancelled);
  } else {
    EXPECT_EQ(result->size(), evidence.size());
  }
  // The pool and guard-free paths must remain usable afterwards.
  Guard fresh;
  const Result<std::vector<double>> again = psdd.ProbabilityEvidenceBatch(
      {PsddEvidence(kVars, Obs::kUnknown)}, fresh, &pool);
  ASSERT_TRUE(again.ok());
  EXPECT_NEAR((*again)[0], 1.0, 1e-12);
}

// --- ParallelFor exception contract (base/thread_pool.h) ------------------

TEST(ParallelForExceptionTest, RethrowsFirstErrorDeterministically) {
  // Every index at or above the threshold throws its own index. The
  // exception that surfaces must be the threshold's — the one a serial
  // run would hit first — on every repetition, at any thread count.
  ThreadPool pool(8);
  for (const size_t threshold : {size_t{0}, size_t{1}, size_t{7},
                                 size_t{499}, size_t{998}, size_t{999}}) {
    for (int round = 0; round < 8; ++round) {
      std::string caught;
      try {
        (void)pool.ParallelFor(0, 1000, 1, [threshold](size_t i) {
          if (i >= threshold) throw std::runtime_error(std::to_string(i));
        });
      } catch (const std::runtime_error& e) {
        caught = e.what();
      }
      EXPECT_EQ(caught, std::to_string(threshold))
          << "threshold " << threshold << " round " << round;
    }
  }
}

TEST(ParallelForExceptionTest, ExceptionOutranksConcurrentCancel) {
  // A shard failure that also trips the guard (sibling-arm teardown is the
  // real-world shape) must surface the exception, not the cancellation —
  // reporting kCancelled would hide the root cause.
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    Guard guard;
    bool threw = false;
    try {
      (void)pool.ParallelFor(
          0, 1000, 1,
          [&guard](size_t i) {
            if (i == 0) {
              guard.Cancel();
              throw std::runtime_error("shard failure");
            }
          },
          &guard);
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_STREQ(e.what(), "shard failure");
    }
    EXPECT_TRUE(threw) << "round " << round;
  }
}

TEST(ParallelForExceptionTest, PoolIsReusableAfterException) {
  // A throwing batch must not deadlock the pool or poison later batches.
  ThreadPool pool(4);
  bool threw = false;
  try {
    (void)pool.ParallelFor(0, 100, 1, [](size_t i) {
      if (i == 57) throw std::runtime_error("57");
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  std::vector<int> out(1000, 0);
  const Status s =
      pool.ParallelFor(0, 1000, 8, [&out](size_t i) { out[i] = 1; });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(std::count(out.begin(), out.end(), 1), 1000);
}

// --- Guard deadline expiry racing normal completion -----------------------
//
// The ParallelFor contract: a guard trip observed at any chunk boundary
// makes the call return the guard's typed status *even when every index
// already ran* — the final Check() decides, not a race. These tests pin
// that down deterministically: the trip is seed-placed inside the batch,
// so the outcome is a pure function of the seed and must be identical at
// every thread count in kThreadSweep. Under -DTBC_SANITIZE=thread they
// double as data-race checks on the cancel/claim handshake.

TEST(ParallelForGuardRaceTest, SeededTripRacingCompletionIsDeterministic) {
  constexpr size_t kIndices = 512;
  constexpr size_t kGrain = 16;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    // Trip index in [0, 2*kIndices): the upper half never fires, so both
    // the refusal arm and the clean-completion arm are exercised.
    Rng rng(seed);
    const size_t trip_at = rng.Below(2 * kIndices);
    std::vector<StatusCode> outcomes;
    for (size_t threads : kThreadSweep) {
      ThreadPool pool(threads);
      Guard guard;
      std::vector<uint64_t> out(kIndices, 0);
      const Status s = pool.ParallelFor(
          0, kIndices, kGrain,
          [&guard, trip_at, &out](size_t i) {
            // Each body writes only its own slot; the trip lands while
            // sibling chunks are mid-flight.
            if (i == trip_at) guard.Cancel();
            out[i] = i * i + 1;
          },
          &guard);
      if (trip_at < kIndices) {
        // The cancelling index always runs, so the guard is always seen
        // tripped by the final check — a deterministic typed refusal even
        // if every other chunk finished first.
        ASSERT_FALSE(s.ok()) << "seed=" << seed << " threads=" << threads;
        EXPECT_EQ(s.code(), StatusCode::kCancelled);
        EXPECT_TRUE(s.IsRefusal());
        // No torn slots: every index either ran to completion or never
        // started. The cancelling index itself always completed.
        for (size_t i = 0; i < kIndices; ++i) {
          EXPECT_TRUE(out[i] == 0 || out[i] == i * i + 1) << "slot " << i;
        }
        EXPECT_EQ(out[trip_at], trip_at * trip_at + 1);
      } else {
        ASSERT_TRUE(s.ok()) << "seed=" << seed << " threads=" << threads
                            << ": " << s.message();
        for (size_t i = 0; i < kIndices; ++i) {
          ASSERT_EQ(out[i], i * i + 1) << "slot " << i;
        }
      }
      outcomes.push_back(s.code());
    }
    // Same seed, same outcome, at 1, 2, and 8 lanes.
    for (size_t t = 1; t < outcomes.size(); ++t) {
      EXPECT_EQ(outcomes[t], outcomes[0]) << "seed=" << seed;
    }
  }
}

TEST(ParallelForGuardRaceTest, DeadlineExpiryRacingCompletionIsTypedOrClean) {
  // A real wall-clock deadline armed to expire *during* the batch. Which
  // side wins is timing-dependent by nature, so the assertion is the
  // contract envelope: the call returns either Ok with every slot written
  // or the typed kDeadlineExceeded — never a crash, a partial "success",
  // or a foreign status. Both arms are forced to occur at least once via
  // an already-expired and an effectively-unlimited control budget.
  constexpr size_t kIndices = 256;
  for (size_t threads : kThreadSweep) {
    ThreadPool pool(threads);
    bool saw_refusal = false;
    bool saw_success = false;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      // seed 1: pre-expired (refusal certain after the first chunk);
      // seed 2: generous (completion certain); others: a genuine race.
      const double timeout_ms = seed == 1 ? 0.001 : seed == 2 ? 10000.0
                                : 0.2 + 0.15 * static_cast<double>(seed);
      Guard guard(Budget::TimeLimit(timeout_ms));
      if (seed == 1) {
        // Burn past the deadline before the batch starts.
        while (guard.RemainingMs() > 0.0) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
      std::vector<uint32_t> out(kIndices, 0);
      const Status s = pool.ParallelFor(
          0, kIndices, 4,
          [&out](size_t i) {
            // ~tens of microseconds of real work per index so the sweep
            // straddles the sub-millisecond deadlines above.
            uint64_t acc = i + 1;
            for (int k = 0; k < 400; ++k) acc = acc * 6364136223846793005ULL + 1;
            out[i] = static_cast<uint32_t>(acc | 1);
          },
          &guard);
      if (s.ok()) {
        saw_success = true;
        for (size_t i = 0; i < kIndices; ++i) {
          ASSERT_NE(out[i], 0u) << "ok status with unwritten slot " << i;
        }
      } else {
        saw_refusal = true;
        EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded)
            << "seed=" << seed << ": " << s.message();
        EXPECT_TRUE(s.IsRefusal());
      }
    }
    EXPECT_TRUE(saw_refusal) << "threads=" << threads
                             << ": pre-expired control never refused";
    EXPECT_TRUE(saw_success) << "threads=" << threads
                             << ": generous control never completed";
  }
}

TEST(ParallelForGuardRaceTest, KernelRefusalUnderSeededTripMatchesSweep) {
  // Same determinism property one layer up: a real query kernel with a
  // guard tripped from a sibling thread at a seed-derived delay. The
  // result is either the bit-exact serial answer or the typed refusal —
  // at every thread count, for every seed, with no third possibility.
  const size_t kVars = 24;
  const Cnf cnf = RandomCnf(kVars, 60, 41);
  const WeightMap w = RandomWeights(kVars, 42);
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  Guard unlimited;
  const double serial = Wmc(mgr, root, w);

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (size_t threads : kThreadSweep) {
      ThreadPool pool(threads);
      Guard guard;
      std::atomic<bool> go{false};
      std::thread canceller([&guard, &go, seed] {
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(seed * 37));
        guard.Cancel();
      });
      go.store(true, std::memory_order_release);
      const Result<double> r = WmcBounded(mgr, root, w, guard, &pool);
      canceller.join();
      if (r.ok()) {
        EXPECT_EQ(*r, serial) << "seed=" << seed << " threads=" << threads;
      } else {
        EXPECT_EQ(r.error_code(), StatusCode::kCancelled)
            << "seed=" << seed << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelForExceptionTest, SingleLaneInlinePathPropagates) {
  // ThreadPool(1) runs inline; the exception propagates directly and
  // execution is strictly serial up to the faulting index.
  ThreadPool pool(1);
  size_t ran = 0;
  std::string caught;
  try {
    (void)pool.ParallelFor(0, 100, 1, [&ran](size_t i) {
      ++ran;
      if (i == 5) throw std::runtime_error(std::to_string(i));
    });
  } catch (const std::runtime_error& e) {
    caught = e.what();
  }
  EXPECT_EQ(caught, "5");
  EXPECT_EQ(ran, 6u);
}

TEST(ParallelEvalTest, AutoMinimizeDuringParallelCompilesIsRaceFree) {
  // Each worker owns its manager, but all of them copy the process-wide
  // auto-minimize default at construction and bump the shared sdd.minimize.*
  // counters while rotating — the paths TSan must see overlap cleanly.
  const SddAutoMinimizeOptions saved = SddManager::DefaultAutoMinimize();
  SddAutoMinimizeOptions opts =
      SddAutoMinimizeOptions::ForMode(SddMinimizeMode::kAggressive);
  opts.min_live_nodes = 32;  // fire even on these small instances
  SddManager::SetDefaultAutoMinimize(opts);

  constexpr size_t kVars = 14;
  std::vector<uint64_t> counts(8, 0);
  std::vector<size_t> fires(counts.size(), 0);
  {
    ThreadPool pool(4);
    (void)pool.ParallelFor(0, counts.size(), 1, [&](size_t i) {
      const Cnf cnf = RandomCnf(kVars, 36, 700 + i);
      SddManager mgr(Vtree::RightLinear(Vtree::IdentityOrder(kVars)));
      const SddId f = CompileCnf(mgr, cnf);
      counts[i] = mgr.ModelCount(f).ToU64();
      fires[i] = mgr.auto_minimize_fires();
    });
  }
  SddManager::SetDefaultAutoMinimize(saved);

  size_t total_fires = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    // Serial reference with minimization off: same function either way.
    SddManager ref(Vtree::RightLinear(Vtree::IdentityOrder(kVars)));
    ref.set_auto_minimize(SddAutoMinimizeOptions{});
    const Cnf cnf = RandomCnf(kVars, 36, 700 + i);
    EXPECT_EQ(counts[i], ref.ModelCount(CompileCnf(ref, cnf)).ToU64())
        << "worker " << i;
    total_fires += fires[i];
  }
  EXPECT_GT(total_fires, 0u);  // the hook actually ran under contention
}

}  // namespace
}  // namespace tbc
