#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "psdd/learn.h"
#include "spaces/graph.h"
#include "spaces/hierarchical.h"
#include "spaces/rankings.h"
#include "spaces/routes.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

TEST(GraphTest, GridConstruction) {
  Graph g = Graph::Grid(2, 3);
  EXPECT_EQ(g.num_nodes(), 6u);
  // 2*(3-1) horizontal + 3*(2-1) vertical = 4 + 3.
  EXPECT_EQ(g.num_edges(), 7u);
}

TEST(GraphTest, SimplePathOracles) {
  Graph g = Graph::Grid(2, 2);
  // Nodes 0 1 / 2 3; paths 0->3: (0-1-3) and (0-2-3).
  EXPECT_EQ(g.CountSimplePaths(0, 3), 2u);
  EXPECT_EQ(Graph::Grid(3, 3).CountSimplePaths(0, 8), 12u);

  Assignment path(g.num_edges(), false);
  // Edges of Grid(2,2), row-interleaved: 0:(0,1) 1:(0,2) 2:(1,3) 3:(2,3).
  path[0] = path[2] = true;
  EXPECT_TRUE(g.IsSimplePath(path, 0, 3));
  path[1] = true;  // extra dangling edge
  EXPECT_FALSE(g.IsSimplePath(path, 0, 3));
}

TEST(GraphTest, DisconnectedAssignmentRejected) {
  // Fig 16's orange assignment: disconnected edges are not a route.
  Graph g = Graph::Grid(3, 3);
  Assignment bad(g.num_edges(), false);
  bad[0] = true;                  // edge at top-left
  bad[g.num_edges() - 1] = true;  // far-away edge
  EXPECT_FALSE(g.IsSimplePath(bad, 0, 8));
  EXPECT_FALSE(g.IsSimplePath(Assignment(g.num_edges(), false), 0, 8));
}

TEST(SimpathTest, ObddModelsAreExactlySimplePaths) {
  for (auto [rows, cols] : {std::pair<size_t, size_t>{2, 2}, {2, 3}, {3, 3}}) {
    Graph g = Graph::Grid(rows, cols);
    const GraphNode s = 0, t = static_cast<GraphNode>(g.num_nodes() - 1);
    ObddManager mgr(Vtree::IdentityOrder(g.num_edges()));
    ObddId f = CompileSimplePaths(mgr, g, s, t);
    EXPECT_EQ(mgr.ModelCount(f).ToU64(), g.CountSimplePaths(s, t))
        << rows << "x" << cols;
    // Every model is a simple path; checked exhaustively on the smaller
    // grids via enumeration.
    if (g.num_edges() <= 12) {
      uint64_t models = 0;
      mgr.EnumerateModels(f, [&](const Assignment& a) {
        EXPECT_TRUE(g.IsSimplePath(a, s, t));
        ++models;
      });
      EXPECT_EQ(models, g.CountSimplePaths(s, t));
    }
  }
}

TEST(SimpathTest, NonCornerTerminalsAndNoPath) {
  Graph g = Graph::Grid(3, 3);
  ObddManager mgr(Vtree::IdentityOrder(g.num_edges()));
  // Center to edge-midpoint.
  ObddId f = CompileSimplePaths(mgr, g, 4, 1);
  EXPECT_EQ(mgr.ModelCount(f).ToU64(), g.CountSimplePaths(4, 1));

  Graph disconnected(4);
  disconnected.AddEdge(0, 1);
  disconnected.AddEdge(2, 3);
  ObddManager mgr2(Vtree::IdentityOrder(2));
  EXPECT_EQ(CompileSimplePaths(mgr2, disconnected, 0, 3), mgr2.False());
}

TEST(SimpathTest, SingleEdgeAndTriangle) {
  Graph single(2);
  single.AddEdge(0, 1);
  ObddManager m1(Vtree::IdentityOrder(1));
  EXPECT_EQ(m1.ModelCount(CompileSimplePaths(m1, single, 0, 1)), BigUint(1));

  Graph triangle(3);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  ObddManager m2(Vtree::IdentityOrder(3));
  // 0->2: direct, or via 1.
  EXPECT_EQ(m2.ModelCount(CompileSimplePaths(m2, triangle, 0, 2)), BigUint(2));
}

TEST(RouteSpaceTest, PsddOverRoutesLearnsFromGpsData) {
  Graph g = Graph::Grid(3, 3);
  RouteSpace space(g, 0, 8);
  EXPECT_EQ(space.NumRoutes(), 12u);

  // Synthesize "GPS" data concentrated on two specific routes.
  Rng rng(42);
  std::vector<Assignment> routes;
  g.EnumerateSimplePaths(0, 8, [&](const std::vector<uint32_t>& path) {
    Assignment a(g.num_edges(), false);
    for (uint32_t e : path) a[e] = true;
    routes.push_back(a);
  });
  std::vector<Assignment> data;
  for (int i = 0; i < 70; ++i) data.push_back(routes[0]);
  for (int i = 0; i < 30; ++i) data.push_back(routes[1]);

  Psdd psdd = space.MakePsdd();
  psdd.LearnParameters(data, {}, 0.0);
  // All probability mass on valid routes.
  double mass = 0.0;
  for (const Assignment& r : routes) mass += psdd.Probability(r);
  EXPECT_NEAR(mass, 1.0, 1e-9);
  // The trained routes dominate.
  EXPECT_GT(psdd.Probability(routes[0]), psdd.Probability(routes[1]));
  EXPECT_GT(psdd.Probability(routes[1]), psdd.Probability(routes[2]));
  // Invalid edge sets have probability zero.
  Assignment invalid(g.num_edges(), true);
  EXPECT_EQ(psdd.Probability(invalid), 0.0);
}

TEST(RouteSpaceTest, RandomRouteIsValid) {
  Graph g = Graph::Grid(3, 3);
  RouteSpace space(g, 0, 8);
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(g.IsSimplePath(space.RandomRoute(rng), 0, 8));
  }
}

TEST(RankingSpaceTest, CountsAreFactorials) {
  EXPECT_EQ(RankingSpace(1).NumRankings(), 1u);
  EXPECT_EQ(RankingSpace(2).NumRankings(), 2u);
  EXPECT_EQ(RankingSpace(3).NumRankings(), 6u);
  EXPECT_EQ(RankingSpace(4).NumRankings(), 24u);
  EXPECT_EQ(RankingSpace(5).NumRankings(), 120u);
}

TEST(RankingSpaceTest, EncodeDecodeRoundTrip) {
  RankingSpace space(4);
  std::vector<uint32_t> perm = {2, 0, 3, 1};
  Assignment x = space.Encode(perm);
  EXPECT_TRUE(space.sdd().Evaluate(space.base(), x));
  EXPECT_EQ(space.Decode(x), perm);
  // Fig 17's invalid case: an item in two positions.
  Assignment bad = x;
  bad[space.VarOf(2, 1)] = true;
  EXPECT_FALSE(space.sdd().Evaluate(space.base(), bad));
}

TEST(RankingSpaceTest, PsddLearnsPreferenceDistribution) {
  RankingSpace space(3);
  Rng rng(17);
  const std::vector<uint32_t> center = {0, 1, 2};
  std::vector<Assignment> data;
  for (int i = 0; i < 500; ++i) {
    data.push_back(space.Encode(space.SampleMallows(center, 0.3, rng)));
  }
  Psdd psdd = space.MakePsdd();
  psdd.LearnParameters(data, {}, 0.5);
  // The center ranking is most probable; reversal least probable.
  const double p_center = psdd.Probability(space.Encode({0, 1, 2}));
  const double p_reverse = psdd.Probability(space.Encode({2, 1, 0}));
  EXPECT_GT(p_center, p_reverse);
  // Distribution normalized over the 6 rankings.
  double total = 0.0;
  std::vector<uint32_t> perm = {0, 1, 2};
  std::sort(perm.begin(), perm.end());
  do {
    total += psdd.Probability(space.Encode(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RankingSpaceTest, MallowsSamplerProperties) {
  RankingSpace space(4);
  Rng rng(3);
  const std::vector<uint32_t> center = {3, 1, 0, 2};
  // phi -> 0 concentrates on the center.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(space.SampleMallows(center, 1e-9, rng), center);
  }
  // Kendall tau: identity vs reversal of 4 items = 6.
  EXPECT_EQ(RankingSpace::KendallTau({0, 1, 2, 3}, {3, 2, 1, 0}), 6u);
  EXPECT_EQ(RankingSpace::KendallTau(center, center), 0u);
}

TEST(HierarchicalMapTest, RegionBookkeeping) {
  HierarchicalMap map(4, 4, 2);
  EXPECT_EQ(map.num_regions(), 4u);
  EXPECT_EQ(map.RegionOf(0), 0u);
  EXPECT_EQ(map.RegionOf(3), 1u);
  EXPECT_EQ(map.RegionOf(15), 3u);
  // 4x4 grid: 24 edges; each 2x2 region has 4 internal edges -> 16 local,
  // 8 crossing.
  EXPECT_EQ(map.CrossingEdges().size(), 8u);
  size_t local = 0;
  for (size_t r = 0; r < 4; ++r) local += map.LocalEdges(r).size();
  EXPECT_EQ(local, 16u);
  // Region 0 = nodes {0,1,4,5}; nodes 1, 4 and 5 touch crossing edges.
  EXPECT_EQ(map.BoundaryVertices(0).size(), 3u);
}

TEST(HierarchicalMapTest, CompileStatsAreConsistent) {
  HierarchicalMap map(4, 4, 2);
  auto stats = map.Compile(0, 15);
  EXPECT_GT(stats.flat_routes, 0u);
  EXPECT_GT(stats.hier_routes, 0u);
  // Hierarchical routes (region entered at most once) are a subset of all
  // simple routes.
  EXPECT_LE(stats.hier_routes, stats.flat_routes);
  EXPECT_EQ(stats.hier_nodes, stats.top_level_nodes + stats.region_nodes);
  EXPECT_GT(stats.top_level_nodes, 0u);
}

TEST(HierarchicalMapTest, HierarchicalCountMatchesRestrictedBruteForce) {
  HierarchicalMap map(4, 4, 2);
  const GraphNode s = 0, t = 15;
  auto stats = map.Compile(s, t);
  // Brute-force: count simple paths whose region sequence never revisits.
  const Graph& g = map.grid();
  uint64_t expected = 0;
  g.EnumerateSimplePaths(s, t, [&](const std::vector<uint32_t>& path_edges) {
    // Walk the path from s, tracking region changes.
    Assignment on(g.num_edges(), false);
    for (uint32_t e : path_edges) on[e] = true;
    GraphNode cur = s;
    uint32_t prev = static_cast<uint32_t>(-1);
    std::vector<size_t> region_seq = {map.RegionOf(s)};
    while (cur != t) {
      for (uint32_t e : g.incident(cur)) {
        if (on[e] && e != prev) {
          cur = g.edge_u(e) == cur ? g.edge_v(e) : g.edge_u(e);
          prev = e;
          break;
        }
      }
      if (map.RegionOf(cur) != region_seq.back()) {
        region_seq.push_back(map.RegionOf(cur));
      }
    }
    std::vector<size_t> sorted = region_seq;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end()) {
      ++expected;
    }
  });
  EXPECT_EQ(stats.hier_routes, expected);
}

}  // namespace
}  // namespace tbc
