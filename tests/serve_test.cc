// Serving-layer tests (DESIGN.md "Serving layer"): wire protocol
// round-trips and adversarial parsing, the content-hash artifact cache
// (single-flight, eviction, failed compiles), and the server end-to-end —
// typed refusals for malformed input, admission control, deadline
// propagation, and graceful drain. The fault-injection matrix and the
// bit-identical soak live in serve_fault_test.cc.

#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <locale>
#include <string>
#include <thread>
#include <vector>

#include "base/guard.h"
#include "base/observability.h"
#include "base/random.h"
#include "base/result.h"
#include "gtest/gtest.h"
#include "serve/artifact_cache.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace tbc::serve {
namespace {

constexpr const char* kSmallCnf = "p cnf 3 2\n1 2 0\n-1 3 0\n";  // 4 models

ServerOptions LoopbackOptions() {
  ServerOptions opts;
  opts.address.tcp_host = "127.0.0.1";
  opts.address.tcp_port = 0;  // ephemeral
  opts.num_workers = 2;
  return opts;
}

void WriteFileOrDie(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

ClientOptions ClientFor(const Server& server) {
  ClientOptions copts;
  copts.address.tcp_host = "127.0.0.1";
  copts.address.tcp_port = server.port();
  copts.retry.initial_backoff_ms = 1.0;
  copts.deadline_ms = 10'000.0;
  return copts;
}

// ---------------------------------------------------------------------------
// Protocol round-trips.

TEST(Protocol, RequestRoundTripPreservesEveryField) {
  Request req;
  req.op = Op::kWmc;
  req.timeout_ms = 1234.5;
  req.max_nodes = 77;
  req.max_decisions = 88;
  req.weights = {{1, 0.1}, {-2, 0x1.fffffffffffffp-2}, {3, 1e-300}};
  req.cnf_text = kSmallCnf;

  auto parsed = Request::Parse(req.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->op, Op::kWmc);
  EXPECT_EQ(parsed->timeout_ms, 1234.5);
  EXPECT_EQ(parsed->max_nodes, 77u);
  EXPECT_EQ(parsed->max_decisions, 88u);
  ASSERT_EQ(parsed->weights.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed->weights[i].first, req.weights[i].first);
    // Hexfloat wire encoding is bit-exact, so == is the right comparison.
    EXPECT_EQ(parsed->weights[i].second, req.weights[i].second);
  }
  EXPECT_EQ(parsed->cnf_text, req.cnf_text);
}

TEST(Protocol, ResponseRoundTripPreservesEveryField) {
  Response resp;
  resp.status = StatusCode::kOk;
  resp.count = "123456789123456789";
  resp.has_wmc = true;
  resp.wmc = 0x1.921fb54442d18p+1;
  resp.marginals = {{1, 0.25}, {-1, 0.75}};
  resp.has_mpe = true;
  resp.mpe_weight = 0.5;
  resp.mpe = {1, -2, 3};
  resp.circuit_nodes = 42;
  resp.circuit_edges = 41;
  resp.artifact = "00112233445566778899aabbccddeeff";
  resp.cache_hit = true;
  resp.stats_json = "{\"version\": 1}\n";

  auto parsed = Response::Parse(resp.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->status, StatusCode::kOk);
  EXPECT_EQ(parsed->count, resp.count);
  EXPECT_TRUE(parsed->has_wmc);
  EXPECT_EQ(parsed->wmc, resp.wmc);
  EXPECT_EQ(parsed->marginals, resp.marginals);
  EXPECT_TRUE(parsed->has_mpe);
  EXPECT_EQ(parsed->mpe_weight, resp.mpe_weight);
  EXPECT_EQ(parsed->mpe, resp.mpe);
  EXPECT_EQ(parsed->circuit_nodes, 42u);
  EXPECT_EQ(parsed->circuit_edges, 41u);
  EXPECT_EQ(parsed->artifact, resp.artifact);
  EXPECT_TRUE(parsed->cache_hit);
  EXPECT_EQ(parsed->stats_json, resp.stats_json);
}

TEST(Protocol, TypedRefusalRoundTrip) {
  Response resp;
  resp.status = StatusCode::kOverloaded;
  resp.message = "queue full (16 waiting)";
  auto parsed = Response::Parse(resp.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, StatusCode::kOverloaded);
  EXPECT_EQ(parsed->message, resp.message);
  EXPECT_TRUE(parsed->ToStatus().IsRefusal());
}

// ---------------------------------------------------------------------------
// Adversarial parsing: every wire byte is hostile.

TEST(Protocol, FrameHeaderRejectsBadMagicAndOversizedLength) {
  unsigned char header[kFrameHeaderBytes] = {'t', 'b', 'c', '1', 4, 0, 0, 0};
  size_t len = 0;
  EXPECT_TRUE(DecodeFrameHeader(header, 1024, &len).ok());
  EXPECT_EQ(len, 4u);

  header[0] = 'X';
  EXPECT_EQ(DecodeFrameHeader(header, 1024, &len).code(),
            StatusCode::kInvalidInput);

  unsigned char big[kFrameHeaderBytes] = {'t',  'b',  'c',  '1',
                                          0xff, 0xff, 0xff, 0x7f};
  EXPECT_EQ(DecodeFrameHeader(big, 1024, &len).code(),
            StatusCode::kInvalidInput);
}

TEST(Protocol, RequestParseRejectsMalformedPayloads) {
  const char* bad[] = {
      "",                                      // empty
      "tbcq 2\nop ping\n",                     // wrong version
      "nope 1\nop ping\n",                     // wrong magic line
      "tbcq 1\n",                              // missing op
      "tbcq 1\nop nonsense\n",                 // unknown op
      "tbcq 1\nop ping\nop ping\n",            // duplicate key
      "tbcq 1\nop ping\nmystery 3\n",          // unknown key
      "tbcq 1\nop count\n",                    // op needs cnf, none given
      "tbcq 1\nop count\ncnf 10\nshort",       // blob shorter than declared
      "tbcq 1\nop count\ncnf 1\nab",           // blob longer than declared
      "tbcq 1\nop wmc\nweight 0 0x1p0\ncnf 2\nxx",   // literal 0
      "tbcq 1\nop wmc\nweight 1 nan\ncnf 2\nxx",     // NaN weight
      "tbcq 1\nop ping\ntimeout_ms banana\n",  // unparseable number
  };
  for (const char* payload : bad) {
    auto parsed = Request::Parse(payload);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << payload;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidInput);
  }
}

TEST(Protocol, RandomGarbageNeverCrashesTheParsers) {
  Rng rng(20260807);
  for (int i = 0; i < 2000; ++i) {
    std::string junk(rng.Below(200), '\0');
    for (char& c : junk) c = static_cast<char>(rng.Below(256));
    (void)Request::Parse(junk);   // must return, not crash
    (void)Response::Parse(junk);
  }
  // Mutations of a valid payload: flip one byte at a time.
  Request req;
  req.op = Op::kCount;
  req.cnf_text = kSmallCnf;
  const std::string good = req.Serialize();
  for (size_t i = 0; i < good.size(); ++i) {
    std::string mutant = good;
    mutant[i] = static_cast<char>(mutant[i] ^ 0x20);
    (void)Request::Parse(mutant);
  }
}

TEST(Protocol, DoubleWireEncodingIsBitExact) {
  const double values[] = {0.0,     -0.0,   1.0,    0.1,
                           1e-300,  5e-324, 1e300,  0x1.fffffffffffffp+1023,
                           -1e-42,  3.14159265358979};
  for (double v : values) {
    double back = 0.0;
    ASSERT_TRUE(DecodeDouble(EncodeDouble(v), &back));
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << v;
  }
  double out;
  EXPECT_FALSE(DecodeDouble("nan", &out));
  EXPECT_FALSE(DecodeDouble("", &out));
  EXPECT_FALSE(DecodeDouble("0x1p0 trailing", &out));

  // The WMC transport is locale-independent: a comma-radix locale on
  // either end of the wire must not bend the encoding (the bug class the
  // hexfloat codec in base/strings exists to rule out).
  class CommaNumpunct : public std::numpunct<char> {
   protected:
    char do_decimal_point() const override { return ','; }
  };
  const std::locale saved = std::locale::global(
      std::locale(std::locale::classic(), new CommaNumpunct));
  for (double v : values) {
    double back = 0.0;
    ASSERT_TRUE(DecodeDouble(EncodeDouble(v), &back));
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << v;
  }
  std::locale::global(saved);
}

// ---------------------------------------------------------------------------
// Artifact cache.

TEST(ArtifactCache, SingleFlightSharesOneCompile) {
  ArtifactCache cache(4);
  std::vector<std::shared_ptr<const Artifact>> results(8);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      Guard guard(Budget::Unlimited());
      auto a = cache.GetOrCompile(kSmallCnf, guard, nullptr);
      ASSERT_TRUE(a.ok());
      results[i] = *a;
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& a : results) {
    EXPECT_EQ(a.get(), results[0].get());  // one shared artifact
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(results[0]->count.ToString(), "4");
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedAtCapacity) {
  ArtifactCache cache(2);
  Guard guard(Budget::Unlimited());
  const std::string cnfs[] = {"p cnf 1 0\n", "p cnf 2 0\n", "p cnf 3 0\n"};
  for (const auto& text : cnfs) {
    ASSERT_TRUE(cache.GetOrCompile(text, guard, nullptr).ok());
    EXPECT_LE(cache.size(), 2u);
  }
  // The first CNF was evicted: re-requesting it is a miss.
  bool hit = true;
  ASSERT_TRUE(cache.GetOrCompile(cnfs[0], guard, &hit).ok());
  EXPECT_FALSE(hit);
  // The most recent one is still cached.
  ASSERT_TRUE(cache.GetOrCompile(cnfs[2], guard, &hit).ok());
  EXPECT_TRUE(hit);
}

TEST(ArtifactCache, LookupPeeksWithoutCompiling) {
  ArtifactCache cache(2);
  // Miss: Lookup never compiles, so an un-requested CNF stays absent.
  EXPECT_EQ(cache.Lookup(kSmallCnf), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  Guard guard(Budget::Unlimited());
  auto built = cache.GetOrCompile(kSmallCnf, guard, nullptr);
  ASSERT_TRUE(built.ok());
  // Hit: same shared artifact, still exactly one cached entry.
  EXPECT_EQ(cache.Lookup(kSmallCnf).get(), built->get());
  EXPECT_EQ(cache.size(), 1u);
  // Lookup refreshes recency: after touching kSmallCnf, inserting two more
  // CNFs must evict the other entry first.
  ASSERT_TRUE(cache.GetOrCompile("p cnf 1 0\n", guard, nullptr).ok());
  EXPECT_NE(cache.Lookup(kSmallCnf), nullptr);
  ASSERT_TRUE(cache.GetOrCompile("p cnf 2 0\n", guard, nullptr).ok());
  EXPECT_NE(cache.Lookup(kSmallCnf), nullptr);  // survived both evictions
  EXPECT_EQ(cache.Lookup("p cnf 1 0\n"), nullptr);  // LRU victim
}

TEST(ArtifactCache, FailedCompilesAreNotCached) {
  ArtifactCache cache(4);
  Guard guard(Budget::Unlimited());
  auto bad = cache.GetOrCompile("not a cnf at all", guard, nullptr);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidInput);
  EXPECT_EQ(cache.size(), 0u);
  // A valid CNF under the same cache still works afterwards.
  EXPECT_TRUE(cache.GetOrCompile(kSmallCnf, guard, nullptr).ok());
}

// ---------------------------------------------------------------------------
// Server end-to-end.

TEST(Server, AnswersQueriesAndReusesArtifacts) {
  auto server = Server::Start(LoopbackOptions());
  ASSERT_TRUE(server.ok()) << server.status().message();
  Client client(ClientFor(**server));

  Request ping;
  ping.op = Op::kPing;
  auto pong = client.Call(ping);
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->ok());

  Request count;
  count.op = Op::kCount;
  count.cnf_text = kSmallCnf;
  auto first = client.Call(count);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->ok()) << first->message;
  EXPECT_EQ(first->count, "4");
  EXPECT_FALSE(first->cache_hit);

  auto second = client.Call(count);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->artifact, first->artifact);
  EXPECT_EQ((*server)->cached_artifacts(), 1u);

  Request wmc;
  wmc.op = Op::kWmc;
  wmc.cnf_text = kSmallCnf;
  wmc.weights = {{1, 0.5}, {-1, 0.5}};
  auto w = client.Call(wmc);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->ok()) << w->message;
  EXPECT_DOUBLE_EQ(w->wmc, 2.0);
  EXPECT_TRUE(w->cache_hit);  // same artifact serves every query op
}

// The tentpole's restart contract (DESIGN.md "Persistent circuit store"):
// a server with a store directory spills every compiled artifact, and a
// *fresh* server pointed at the same directory answers previously
// compiled CNFs from mmap — zero cache misses, zero compiles, and a WMC
// bit-identical to the first process's answer.
TEST(Server, WarmStartsFromStoreWithZeroCompileActivity) {
  const std::string store_dir = testing::TempDir() + "warm_start_store_" +
                                std::to_string(::getpid());
  std::filesystem::create_directories(store_dir);

  ServerOptions opts = LoopbackOptions();
  opts.store_dir = store_dir;

  Request count;
  count.op = Op::kCount;
  count.cnf_text = kSmallCnf;
  Request wmc;
  wmc.op = Op::kWmc;
  wmc.cnf_text = kSmallCnf;
  wmc.weights = {{1, 0.25}, {-1, 0.75}, {2, 0.5}, {-2, 0.5}};

  double first_wmc = 0.0;
  {
    auto server = Server::Start(opts);
    ASSERT_TRUE(server.ok()) << server.status().message();
    Client client(ClientFor(**server));
    auto c = client.Call(count);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c->ok()) << c->message;
    EXPECT_EQ(c->count, "4");
    auto w = client.Call(wmc);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->ok()) << w->message;
    first_wmc = w->wmc;
    (*server)->Shutdown();
  }
  // The compile was spilled as <store_dir>/<content-key>.tbc.
  size_t spilled = 0;
  for (const auto& e : std::filesystem::directory_iterator(store_dir)) {
    if (e.path().extension() == ".tbc") ++spilled;
  }
  ASSERT_EQ(spilled, 1u);

  const uint64_t misses_before =
      Observability::Global().CounterValue("serve.cache.misses");
  const uint64_t restores_before =
      Observability::Global().CounterValue("serve.store.restores");
  const uint64_t hits_before =
      Observability::Global().CounterValue("serve.store.hits");

  // "Restart": a brand-new server process image over the same directory.
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().message();
  EXPECT_EQ((*server)->cached_artifacts(), 1u);  // warm before accept
  EXPECT_EQ(Observability::Global().CounterValue("serve.store.restores"),
            restores_before + 1);

  Client client(ClientFor(**server));
  auto c = client.Call(count);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->ok()) << c->message;
  EXPECT_EQ(c->count, "4");
  EXPECT_TRUE(c->cache_hit);
  auto w = client.Call(wmc);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->ok()) << w->message;
  EXPECT_EQ(w->wmc, first_wmc);  // bit-identical, not just approximately

  // Zero compile activity after restart: no cache miss ever happened, and
  // both queries were served off the restored (mapped) artifact.
  EXPECT_EQ(Observability::Global().CounterValue("serve.cache.misses"),
            misses_before);
  EXPECT_EQ(Observability::Global().CounterValue("serve.store.hits"),
            hits_before + 2);
  (*server)->Shutdown();
  std::filesystem::remove_all(store_dir);
}

TEST(Server, WarmStartSkipsCorruptAndForeignStoreFiles) {
  const std::string store_dir = testing::TempDir() + "warm_start_bad_" +
                                std::to_string(::getpid());
  std::filesystem::create_directories(store_dir);
  {
    // One genuine spill...
    ServerOptions opts = LoopbackOptions();
    opts.store_dir = store_dir;
    auto server = Server::Start(opts);
    ASSERT_TRUE(server.ok()) << server.status().message();
    Client client(ClientFor(**server));
    Request count;
    count.op = Op::kCount;
    count.cnf_text = kSmallCnf;
    auto c = client.Call(count);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c->ok()) << c->message;
    (*server)->Shutdown();
  }
  // ...plus garbage, a truncated copy, and a renamed (key-mismatched) copy.
  std::string real;
  for (const auto& e : std::filesystem::directory_iterator(store_dir)) {
    if (e.path().extension() == ".tbc") real = e.path().string();
  }
  ASSERT_FALSE(real.empty());
  WriteFileOrDie(store_dir + "/" + std::string(32, '0') + ".tbc",
                 "not a store at all");
  std::string bytes = ReadFileOrDie(real);
  WriteFileOrDie(store_dir + "/" + std::string(32, '1') + ".tbc",
                 bytes.substr(0, bytes.size() / 2));
  WriteFileOrDie(store_dir + "/" + std::string(32, '2') + ".tbc", bytes);

  ServerOptions opts = LoopbackOptions();
  opts.store_dir = store_dir;
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().message();
  // Only the genuine spill survives validation; the impostors are skipped
  // (counted), never served.
  EXPECT_EQ((*server)->cached_artifacts(), 1u);
  (*server)->Shutdown();
  std::filesystem::remove_all(store_dir);
}

TEST(Server, ForecastAdmissionRefusesHighWidthWithoutCompiling) {
  ServerOptions opts = LoopbackOptions();
  opts.max_forecast_width = 10;
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().message();
  Client client(ClientFor(**server));

  // A single 30-literal clause makes the primal graph a 30-clique:
  // predicted induced width 29, far over the cap of 10.
  std::string wide = "p cnf 30 1\n";
  for (int v = 1; v <= 30; ++v) wide += std::to_string(v) + " ";
  wide += "0\n";

  const uint64_t misses_before =
      Observability::Global().CounterValue("serve.cache.misses");
  const uint64_t refused_before =
      Observability::Global().CounterValue("serve.requests.forecast_refused");

  Request req;
  req.op = Op::kCount;
  req.cnf_text = wide;
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_EQ(resp->status, StatusCode::kRefusedByForecast);
  EXPECT_FALSE(resp->message.empty());
  EXPECT_TRUE(IsRefusal(resp->status));

  // The refusal happened before any compile: nothing was cached, the
  // cache never even saw a miss, and the typed counter ticked.
  EXPECT_EQ((*server)->cached_artifacts(), 0u);
  EXPECT_EQ(Observability::Global().CounterValue("serve.cache.misses"),
            misses_before);
  EXPECT_EQ(
      Observability::Global().CounterValue("serve.requests.forecast_refused"),
      refused_before + 1);

  // Retrying the identical request is deterministic: refused again.
  auto again = client.Call(req);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, StatusCode::kRefusedByForecast);

  // Low-width work on the same server is admitted and answered.
  Request small;
  small.op = Op::kCount;
  small.cnf_text = kSmallCnf;
  auto ok = client.Call(small);
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(ok->ok()) << ok->message;
  EXPECT_EQ(ok->count, "4");

  // And once an artifact is cached, repeat requests bypass the forecast
  // path entirely (cache_hit short-circuit).
  auto cached = client.Call(small);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->cache_hit);
  (*server)->Shutdown();
}

TEST(Server, ForecastAdmissionAdmitsWhenAnalysisOverBudget) {
  ServerOptions opts = LoopbackOptions();
  opts.max_forecast_width = 10;
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().message();
  Client client(ClientFor(**server));

  // A single clause this wide makes even *building* the primal graph blow
  // the admission work budget: the bounded forecast degrades to the
  // linear passes, yields no width bracket, and the request must be
  // admitted — the Guard, not the forecast, bounds whatever it costs.
  // (The compile itself is trivial: one clause.) Before the analysis was
  // bounded, this request's min-fill/width simulation on a 5000-clique
  // would pin a worker far longer than the compile it was vetting.
  const size_t n = 5000;
  std::string wide = "p cnf " + std::to_string(n) + " 1\n";
  for (size_t v = 1; v <= n; ++v) wide += std::to_string(v) + " ";
  wide += "0\n";

  Request req;
  req.op = Op::kCount;
  req.cnf_text = wide;
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  ASSERT_TRUE(resp->ok()) << resp->message;  // admitted and answered
  EXPECT_FALSE(resp->cache_hit);
  EXPECT_EQ((*server)->cached_artifacts(), 1u);
  EXPECT_FALSE(resp->count.empty());  // 2^5000 - 1 models
  EXPECT_NE(resp->count, "0");
  (*server)->Shutdown();
}

TEST(Server, MalformedRequestsGetTypedRefusalsNotCrashes) {
  auto server = Server::Start(LoopbackOptions());
  ASSERT_TRUE(server.ok());
  Client client(ClientFor(**server));

  // Bad CNF: typed kInvalidInput from the hardened parser.
  Request bad;
  bad.op = Op::kCount;
  bad.cnf_text = "p cnf -3 oops\n";
  auto resp = client.Call(bad);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kInvalidInput);

  // Weight literal out of range for the CNF.
  Request wmc;
  wmc.op = Op::kWmc;
  wmc.cnf_text = kSmallCnf;
  wmc.weights = {{99, 0.5}};
  resp = client.Call(wmc);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kInvalidInput);

  // MPE of an unsatisfiable CNF is a typed error, not UB.
  Request mpe;
  mpe.op = Op::kMpe;
  mpe.cnf_text = "p cnf 1 2\n1 0\n-1 0\n";
  resp = client.Call(mpe);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kInvalidInput);

  // Raw garbage frames: server answers what it can, then closes; it never
  // dies. A fresh request afterwards succeeds.
  {
    auto conn = Connect(ClientFor(**server).address);
    ASSERT_TRUE(conn.ok());
    (void)SendRaw(*conn, "GET / HTTP/1.1\r\n\r\n");  // wrong protocol
  }
  {
    auto conn = Connect(ClientFor(**server).address);
    ASSERT_TRUE(conn.ok());
    // Valid header promising 100 bytes, then hang up after 3.
    std::string frame = EncodeFrame(std::string(100, 'x'));
    (void)SendRaw(*conn, std::string_view(frame).substr(0, 11));
  }
  Request ping;
  ping.op = Op::kPing;
  auto pong = client.Call(ping);
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->ok());
}

TEST(Server, DeadlinePropagationRefusesHardInstancesInTime) {
  auto server = Server::Start(LoopbackOptions());
  ASSERT_TRUE(server.ok());
  Client client(ClientFor(**server));

  // A hard random 3-CNF at the phase transition, with a 1ms budget: the
  // server must answer a typed refusal, not work for seconds.
  Rng rng(7);
  std::string cnf = "p cnf 60 256\n";
  for (int i = 0; i < 256; ++i) {
    int a = 1 + static_cast<int>(rng.Below(60));
    int b = 1 + static_cast<int>(rng.Below(60));
    int c = 1 + static_cast<int>(rng.Below(60));
    cnf += std::to_string(rng.Flip(0.5) ? a : -a) + " " +
           std::to_string(rng.Flip(0.5) ? b : -b) + " " +
           std::to_string(rng.Flip(0.5) ? c : -c) + " 0\n";
  }
  Request req;
  req.op = Op::kCount;
  req.cnf_text = cnf;
  req.timeout_ms = 1.0;
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  if (!resp->ok()) {  // tiny instances may still finish in 1ms
    EXPECT_TRUE(IsRefusal(resp->status))
        << StatusCodeName(resp->status) << ": " << resp->message;
  }
}

TEST(Server, ConnectionLimitShedsWithTypedOverload) {
  ServerOptions opts = LoopbackOptions();
  opts.max_connections = 1;
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok());

  Address addr;
  addr.tcp_host = "127.0.0.1";
  addr.tcp_port = (*server)->port();
  auto first = Connect(addr);
  ASSERT_TRUE(first.ok());
  // Prove the first connection is established server-side before the
  // second one arrives (the cap is on open connections).
  ASSERT_TRUE(SendFrame(*first, Request{}.Serialize()).ok());
  std::string payload;
  ASSERT_TRUE(RecvFrame(*first, kDefaultMaxFrameBytes, 5000, 5000, &payload)
                  .ok());

  auto second = Connect(addr);
  ASSERT_TRUE(second.ok());
  Status st =
      RecvFrame(*second, kDefaultMaxFrameBytes, 5000, 5000, &payload);
  ASSERT_TRUE(st.ok()) << st.message();
  auto resp = Response::Parse(payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kOverloaded);
}

TEST(Server, GracefulShutdownDrainsAndRefusesNewWork) {
  auto server = Server::Start(LoopbackOptions());
  ASSERT_TRUE(server.ok());
  const int port = (*server)->port();

  Client client(ClientFor(**server));
  Request count;
  count.op = Op::kCount;
  count.cnf_text = kSmallCnf;
  ASSERT_TRUE(client.Call(count).ok());

  (*server)->Shutdown();
  EXPECT_EQ((*server)->active_connections(), 0u);
  EXPECT_EQ((*server)->executing_requests(), 0u);

  // New connections are refused outright (listener closed).
  ClientOptions copts;
  copts.address.tcp_host = "127.0.0.1";
  copts.address.tcp_port = port;
  copts.retry.max_attempts = 2;
  copts.retry.initial_backoff_ms = 1.0;
  copts.deadline_ms = 2'000.0;
  Client after(copts);
  auto resp = after.Call(count);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);

  (*server)->Shutdown();  // idempotent
}

TEST(Server, UnixSocketEndToEnd) {
  ServerOptions opts;
  opts.address.uds_path =
      "/tmp/tbc_serve_test_" + std::to_string(::getpid()) + ".sock";
  opts.num_workers = 2;
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().message();

  ClientOptions copts;
  copts.address = opts.address;
  Client client(copts);
  Request count;
  count.op = Op::kCount;
  count.cnf_text = kSmallCnf;
  auto resp = client.Call(count);
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_EQ(resp->count, "4");
  (*server)->Shutdown();  // also unlinks the socket path
}

}  // namespace
}  // namespace tbc::serve
