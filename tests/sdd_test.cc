#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>

#include "base/random.h"
#include "logic/formula.h"
#include "nnf/properties.h"
#include "nnf/queries.h"
#include "sdd/compile.h"
#include "sdd/io.h"
#include "sdd/minimize.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

Cnf RandomCnf(size_t n, size_t m, size_t k, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (size_t i = 0; i < m; ++i) {
    std::set<Var> vars;
    while (vars.size() < k) vars.insert(static_cast<Var>(rng.Below(n)));
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

// The paper's course constraint: (P∨L) ∧ (A⇒P) ∧ (K⇒(A∨L)), with
// A=0, K=1, L=2, P=3 (9 of 16 models; Figures 9 and 13).
Cnf CourseConstraint() {
  Cnf cnf(4);
  cnf.AddClauseDimacs({4, 3});       // P ∨ L
  cnf.AddClauseDimacs({-1, 4});      // A ⇒ P
  cnf.AddClauseDimacs({-2, 1, 3});   // K ⇒ (A ∨ L)
  return cnf;
}

// The paper's Fig 10(a) vtree over A,K,L,P: ((L K) (P A)).
Vtree PaperVtree() { return Vtree::Balanced({2, 1, 3, 0}); }

TEST(SddTest, ConstantsAndLiterals) {
  SddManager m(Vtree::Balanced({0, 1, 2}));
  EXPECT_EQ(m.Conjoin(m.True(), m.False()), m.False());
  EXPECT_EQ(m.Disjoin(m.True(), m.False()), m.True());
  SddId x = m.LiteralNode(Pos(0));
  EXPECT_TRUE(m.IsLiteral(x));
  EXPECT_EQ(m.Negate(x), m.LiteralNode(Neg(0)));
  EXPECT_EQ(m.Negate(m.Negate(x)), x);
  EXPECT_EQ(m.Conjoin(x, m.Negate(x)), m.False());
  EXPECT_EQ(m.Disjoin(x, m.Negate(x)), m.True());
}

TEST(SddTest, ApplyMatchesSemantics) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Cnf cnf = RandomCnf(8, 18, 3, seed + 10);
    SddManager m(Vtree::Balanced(Vtree::IdentityOrder(8)));
    SddId f = CompileCnf(m, cnf);
    for (int bits = 0; bits < 256; ++bits) {
      Assignment a(8);
      for (Var v = 0; v < 8; ++v) a[v] = (bits >> v) & 1;
      ASSERT_EQ(m.Evaluate(f, a), cnf.Evaluate(a)) << "seed " << seed;
    }
  }
}

TEST(SddTest, CanonicityEquivalentFormulasSameNode) {
  SddManager m(Vtree::Balanced({0, 1, 2, 3}));
  // (x0 ∧ x1) ∨ (x0 ∧ x2) == x0 ∧ (x1 ∨ x2).
  SddId a = m.Disjoin(m.Conjoin(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(1))),
                      m.Conjoin(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(2))));
  SddId b = m.Conjoin(m.LiteralNode(Pos(0)),
                      m.Disjoin(m.LiteralNode(Pos(1)), m.LiteralNode(Pos(2))));
  EXPECT_EQ(a, b);
  // De Morgan.
  SddId c = m.Negate(m.Conjoin(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(3))));
  SddId d = m.Disjoin(m.LiteralNode(Neg(0)), m.LiteralNode(Neg(3)));
  EXPECT_EQ(c, d);
}

TEST(SddTest, CourseConstraintHasNineModels) {
  SddManager m(PaperVtree());
  SddId f = CompileCnf(m, CourseConstraint());
  EXPECT_EQ(m.ModelCount(f), BigUint(9));
  EXPECT_GT(m.Size(f), 0u);
}

TEST(SddTest, ModelCountMatchesBruteForceAcrossVtrees) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Cnf cnf = RandomCnf(9, 22, 3, seed + 70);
    const uint64_t expected = cnf.CountModelsBruteForce();
    for (int shape = 0; shape < 3; ++shape) {
      Vtree vt = shape == 0   ? Vtree::Balanced(Vtree::IdentityOrder(9))
                 : shape == 1 ? Vtree::RightLinear(Vtree::IdentityOrder(9))
                              : Vtree::LeftLinear(Vtree::IdentityOrder(9));
      SddManager m(std::move(vt));
      SddId f = CompileCnf(m, cnf);
      ASSERT_EQ(m.ModelCount(f).ToU64(), expected)
          << "seed " << seed << " shape " << shape;
    }
  }
}

TEST(SddTest, ExportedNnfIsDecomposableAndDeterministic) {
  Cnf cnf = RandomCnf(8, 16, 3, 42);
  SddManager m(Vtree::Balanced(Vtree::IdentityOrder(8)));
  SddId f = CompileCnf(m, cnf);
  NnfManager nnf;
  NnfId root = m.ToNnf(f, nnf);
  EXPECT_TRUE(IsDecomposable(nnf, root));
  EXPECT_TRUE(IsDeterministicExhaustive(nnf, root, 8));
}

TEST(SddTest, ConditionMatchesCnfCondition) {
  Cnf cnf = RandomCnf(8, 16, 3, 21);
  SddManager m(Vtree::Balanced(Vtree::IdentityOrder(8)));
  SddId f = CompileCnf(m, cnf);
  for (Var v = 0; v < 8; ++v) {
    for (bool sign : {false, true}) {
      const Lit l(v, sign);
      SddId cond = m.Condition(f, l);
      Cnf cnf_cond = cnf.Condition(l);
      for (int bits = 0; bits < 256; ++bits) {
        Assignment a(8);
        for (Var u = 0; u < 8; ++u) a[u] = (bits >> u) & 1;
        ASSERT_EQ(m.Evaluate(cond, a), cnf_cond.Evaluate(a));
      }
    }
  }
}

TEST(SddTest, ConditionThenDisjoinIsExists) {
  SddManager m(Vtree::Balanced({0, 1, 2}));
  SddId f = m.Conjoin(m.LiteralNode(Pos(0)), m.LiteralNode(Pos(1)));
  EXPECT_EQ(m.Exists(f, 0), m.LiteralNode(Pos(1)));
  EXPECT_EQ(m.Exists(m.Exists(f, 0), 1), m.True());
}

TEST(SddTest, WmcMatchesBruteForce) {
  Cnf cnf = RandomCnf(7, 14, 3, 5);
  SddManager m(Vtree::Balanced(Vtree::IdentityOrder(7)));
  SddId f = CompileCnf(m, cnf);
  WeightMap w(7);
  Rng rng(11);
  for (Var v = 0; v < 7; ++v) {
    double p = rng.Uniform();
    w.Set(Pos(v), p);
    w.Set(Neg(v), 1.0 - p);
  }
  double brute = 0.0;
  for (int bits = 0; bits < 128; ++bits) {
    Assignment a(7);
    for (Var v = 0; v < 7; ++v) a[v] = (bits >> v) & 1;
    if (!cnf.Evaluate(a)) continue;
    double term = 1.0;
    for (Var v = 0; v < 7; ++v) term *= w[Lit(v, a[v])];
    brute += term;
  }
  EXPECT_NEAR(m.Wmc(f, w), brute, 1e-12);
}

TEST(SddTest, RightLinearVtreeYieldsObddStructure) {
  // With a right-linear vtree every decision node's primes are literals of
  // a single variable (x, ¬x): the OBDD correspondence of Fig 10(c)/11.
  Cnf cnf = RandomCnf(8, 16, 3, 31);
  SddManager m(Vtree::RightLinear(Vtree::IdentityOrder(8)));
  SddId f = CompileCnf(m, cnf);
  std::set<SddId> seen;
  std::vector<SddId> stack = {f};
  while (!stack.empty()) {
    SddId g = stack.back();
    stack.pop_back();
    if (!seen.insert(g).second || !m.IsDecision(g)) continue;
    const auto& elems = m.elements(g);
    EXPECT_LE(elems.size(), 2u);
    for (const auto& [p, s] : elems) {
      EXPECT_TRUE(m.IsLiteral(p) || m.IsConstant(p));
      stack.push_back(s);
    }
  }
}

TEST(SddTest, CompileFormulaAgainstEvaluate) {
  FormulaStore fs;
  FormulaId a = fs.VarNode(0), b = fs.VarNode(1), c = fs.VarNode(2),
            d = fs.VarNode(3);
  FormulaId f = fs.Iff(fs.Xor(a, b), fs.Implies(c, d));
  SddManager m(Vtree::Balanced({0, 1, 2, 3}));
  SddId g = CompileFormula(m, fs, f);
  for (int bits = 0; bits < 16; ++bits) {
    Assignment asg(4);
    for (Var v = 0; v < 4; ++v) asg[v] = (bits >> v) & 1;
    EXPECT_EQ(m.Evaluate(g, asg), fs.Evaluate(f, asg));
  }
}

TEST(SddTest, CubeAndClause) {
  SddManager m(Vtree::Balanced({0, 1, 2}));
  SddId cube = CompileCube(m, {Pos(0), Neg(2)});
  EXPECT_EQ(m.ModelCount(cube), BigUint(2));
  SddId clause = CompileClause(m, {Pos(0), Neg(2)});
  EXPECT_EQ(m.ModelCount(clause), BigUint(6));
  EXPECT_EQ(CompileClause(m, {}), m.False());
  EXPECT_EQ(CompileCube(m, {}), m.True());
}

TEST(SddTest, SizeSensitiveToVtree) {
  // (x0&x3) | (x1&x4) | (x2&x5): a vtree pairing (xi, xi+3) is much
  // better than one separating the halves — the paper's point that SDD
  // size ranges from linear to exponential with the vtree.
  FormulaStore fs;
  std::vector<FormulaId> terms;
  for (Var i = 0; i < 3; ++i) {
    terms.push_back(fs.And(fs.VarNode(i), fs.VarNode(i + 3)));
  }
  FormulaId f = fs.Or(terms);
  SddManager good(Vtree::Balanced({0, 3, 1, 4, 2, 5}));
  SddManager bad(Vtree::RightLinear({0, 1, 2, 3, 4, 5}));
  SddId fg = CompileFormula(good, fs, f);
  SddId fb = CompileFormula(bad, fs, f);
  EXPECT_EQ(good.ModelCount(fg), bad.ModelCount(fb));
  EXPECT_LT(good.Size(fg), bad.Size(fb));
}

TEST(SddTest, NegationIsInvolutionOnRandomFormulas) {
  Cnf cnf = RandomCnf(8, 16, 3, 77);
  SddManager m(Vtree::Balanced(Vtree::IdentityOrder(8)));
  SddId f = CompileCnf(m, cnf);
  SddId nf = m.Negate(f);
  EXPECT_EQ(m.Negate(nf), f);
  EXPECT_EQ(m.Conjoin(f, nf), m.False());
  EXPECT_EQ(m.Disjoin(f, nf), m.True());
  EXPECT_EQ((m.ModelCount(f) + m.ModelCount(nf)), BigUint(256));
}

TEST(SddTest, ApplyOnDifferentVtreeSubtrees) {
  // Conjoin nodes living in disjoint subtrees (exercises the LCA path).
  SddManager m(Vtree::Balanced({0, 1, 2, 3}));
  SddId left = m.Conjoin(m.LiteralNode(Pos(0)), m.LiteralNode(Neg(1)));
  SddId right = m.Disjoin(m.LiteralNode(Pos(2)), m.LiteralNode(Pos(3)));
  SddId both = m.Conjoin(left, right);
  EXPECT_EQ(m.ModelCount(both), BigUint(3));
  SddId either = m.Disjoin(left, right);
  EXPECT_EQ(m.ModelCount(either).ToU64(), 4u + 12u - 3u);
}

TEST(SddIoTest, RoundTripPreservesFunction) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Cnf cnf = RandomCnf(8, 18, 3, seed + 400);
    SddManager m(Vtree::Balanced(Vtree::IdentityOrder(8)));
    SddId f = CompileCnf(m, cnf);
    const std::string text = WriteSdd(m, f);
    auto parsed = ReadSdd(m, text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    // Canonicity: reading back into the same manager gives the same node.
    EXPECT_EQ(parsed.value(), f) << "seed " << seed;
  }
}

TEST(SddIoTest, RoundTripIntoFreshManager) {
  Cnf cnf = RandomCnf(7, 16, 3, 77);
  SddManager m1(Vtree::Balanced(Vtree::IdentityOrder(7)));
  SddId f = CompileCnf(m1, cnf);
  const std::string sdd_text = WriteSdd(m1, f);
  const std::string vtree_text = m1.vtree().ToFileString();

  auto vtree = Vtree::Parse(vtree_text);
  ASSERT_TRUE(vtree.ok());
  SddManager m2(std::move(vtree).value());
  auto g = ReadSdd(m2, sdd_text);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(m2.ModelCount(g.value()).ToU64(), cnf.CountModelsBruteForce());
  for (int bits = 0; bits < 128; ++bits) {
    Assignment a(7);
    for (Var v = 0; v < 7; ++v) a[v] = (bits >> v) & 1;
    ASSERT_EQ(m2.Evaluate(g.value(), a), cnf.Evaluate(a));
  }
}

TEST(SddIoTest, ConstantsAndErrors) {
  SddManager m(Vtree::Balanced({0, 1}));
  auto t = ReadSdd(m, WriteSdd(m, m.True()));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), m.True());
  EXPECT_FALSE(ReadSdd(m, "").ok());
  EXPECT_FALSE(ReadSdd(m, "L 0 0 1\n").ok());            // missing header
  EXPECT_FALSE(ReadSdd(m, "sdd 1\nD 0 1 1 5 6\n").ok()); // forward refs
  EXPECT_FALSE(ReadSdd(m, "sdd 1\nZ 0\n").ok());
}

TEST(SddMinimizeTest, VtreeOperationsPreserveVariables) {
  Vtree t = Vtree::Balanced({0, 1, 2, 3, 4});
  for (VtreeId v = 0; v < t.num_nodes(); ++v) {
    for (const std::optional<Vtree>& changed :
         {RotateRight(t, v), RotateLeft(t, v), SwapChildren(t, v)}) {
      if (!changed.has_value()) continue;  // shape did not permit the move
      std::vector<Var> below = changed->VarsBelow(changed->root());
      std::sort(below.begin(), below.end());
      EXPECT_EQ(below, Vtree::IdentityOrder(5));
    }
  }
  // Concrete shapes.
  Vtree b = Vtree::Balanced({0, 1, 2, 3});  // ((0 1) (2 3))
  EXPECT_EQ(RotateRight(b, b.root())->ToString(), "(0 (1 (2 3)))");
  EXPECT_EQ(RotateLeft(b, b.root())->ToString(), "(((0 1) 2) 3)");
  EXPECT_EQ(SwapChildren(b, b.root())->ToString(), "((2 3) (0 1))");
  // Shape mismatches now report inapplicability instead of silently
  // returning the unchanged vtree.
  EXPECT_FALSE(RotateRight(b, b.LeafOfVar(0)).has_value());
  EXPECT_FALSE(SwapChildren(b, b.LeafOfVar(0)).has_value());
  // (0 (1 (2 3))) cannot rotate right at the root: its left child is a leaf.
  const Vtree rl = Vtree::RightLinear(Vtree::IdentityOrder(4));
  EXPECT_FALSE(RotateRight(rl, rl.root()).has_value());
  // Rotations at the same node are exact inverses.
  const Vtree rr = *RotateRight(b, b.root());
  EXPECT_EQ(RotateLeft(rr, b.root())->ToString(), b.ToString());
}

TEST(SddMinimizeTest, SearchNeverIncreasesSizeAndPreservesSemantics) {
  Cnf cnf = RandomCnf(10, 24, 3, 321);
  const Vtree initial = Vtree::RightLinear(Vtree::IdentityOrder(10));
  MinimizeResult r = MinimizeVtree(cnf, initial, /*budget=*/60, /*seed=*/5);
  EXPECT_LE(r.size, r.initial_size);
  EXPECT_EQ(r.iterations, 60u);
  // The minimized vtree still compiles an equivalent function.
  SddManager mgr(r.vtree);
  const SddId f = CompileCnf(mgr, cnf);
  EXPECT_EQ(mgr.ModelCount(f).ToU64(), cnf.CountModelsBruteForce());
}

TEST(SddMinimizeTest, FindsTheGoodVtreeForSeparableFunction) {
  // XOR pairs across halves: x_i != x_{i+4} for i < 4. Under the
  // right-linear identity vtree each pair spans the whole order (big SDD);
  // vtrees pairing (x_i, x_{i+4}) are linear. Search must strictly improve.
  Cnf cnf(8);
  for (Var i = 0; i < 4; ++i) {
    cnf.AddClause({Pos(i), Pos(i + 4)});
    cnf.AddClause({Neg(i), Neg(i + 4)});
  }
  MinimizeResult r = MinimizeVtree(
      cnf, Vtree::RightLinear(Vtree::IdentityOrder(8)), /*budget=*/200, 9);
  EXPECT_LT(r.size, r.initial_size);
  SddManager mgr(r.vtree);
  EXPECT_EQ(mgr.ModelCount(CompileCnf(mgr, cnf)), BigUint(16));
}

TEST(SddTest, UnsatisfiableCnfCompilesToFalse) {
  Cnf cnf(2);
  cnf.AddClauseDimacs({1});
  cnf.AddClauseDimacs({-1});
  SddManager m(Vtree::Balanced({0, 1}));
  EXPECT_EQ(CompileCnf(m, cnf), m.False());
}

}  // namespace
}  // namespace tbc
