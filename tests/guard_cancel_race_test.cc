// Cross-thread cancellation stress tests for Guard. These are ordinary
// correctness tests under a plain build, but their real purpose is a
// -DTBC_SANITIZE=thread build: many threads hammer one Guard's charge
// counters and poll paths while another thread flips the cancellation
// flag, and TSan verifies the atomics carry no data race.

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "base/guard.h"
#include "base/random.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "gtest/gtest.h"
#include "logic/cnf.h"
#include "sat/solver.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

Cnf RandomCnf(size_t num_vars, size_t num_clauses, uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(num_vars);
  for (size_t i = 0; i < num_clauses; ++i) {
    std::set<Var> vars;
    while (vars.size() < 3) {
      vars.insert(static_cast<Var>(rng.Below(num_vars)));
    }
    Clause c;
    for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
    cnf.AddClause(c);
  }
  return cnf;
}

TEST(GuardCancelRace, ConcurrentChargesSurviveCancellation) {
  constexpr int kThreads = 8;
  constexpr uint64_t kChargesPerThread = 50000;

  Guard guard(Budget::TimeLimit(60000.0));
  std::atomic<int> cancelled_seen{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&guard, &cancelled_seen] {
      bool saw_cancel = false;
      for (uint64_t i = 0; i < kChargesPerThread; ++i) {
        // Exercise every concurrent entry point: charges, the amortized
        // poll, the exact check, and the read-side accessors.
        (void)guard.ChargeNodes(1);
        (void)guard.ChargeConflict();
        (void)guard.ChargeDecision();
        (void)guard.Poll();
        (void)guard.RemainingMs();
        (void)guard.nodes_charged();
        if (guard.Check().code() == StatusCode::kCancelled) saw_cancel = true;
      }
      if (saw_cancel) cancelled_seen.fetch_add(1);
    });
  }
  // Flip the flag while the workers are mid-hammer.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  guard.Cancel();
  for (auto& w : workers) w.join();

  EXPECT_TRUE(guard.cancelled());
  EXPECT_EQ(guard.Check().code(), StatusCode::kCancelled);
  // Charges are never lost, cancelled or not: the counters are exact.
  EXPECT_EQ(guard.nodes_charged(), kThreads * kChargesPerThread);
  EXPECT_EQ(guard.conflicts_charged(), kThreads * kChargesPerThread);
  EXPECT_EQ(guard.decisions_charged(), kThreads * kChargesPerThread);
}

TEST(GuardCancelRace, CancelIsIdempotentAcrossThreads) {
  Guard guard;
  std::vector<std::thread> cancellers;
  for (int t = 0; t < 8; ++t) {
    cancellers.emplace_back([&guard] {
      for (int i = 0; i < 1000; ++i) guard.Cancel();
    });
  }
  for (auto& c : cancellers) c.join();
  EXPECT_TRUE(guard.cancelled());
}

TEST(GuardCancelRace, CrossThreadCancelStopsSatSearch) {
  // A large satisfiable-ish instance at the hard ratio: without
  // cancellation this solves, with a prompt cancel it must refuse with
  // the typed kCancelled status rather than crash or spin.
  const Cnf cnf = RandomCnf(160, 680, 21);
  Guard guard;
  SatSolver solver;
  solver.set_guard(&guard);
  solver.AddCnf(cnf);

  SatSolver::Outcome outcome = SatSolver::Outcome::kUnknown;
  std::thread worker([&] { outcome = solver.Solve(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  guard.Cancel();
  worker.join();

  if (outcome == SatSolver::Outcome::kUnknown) {
    EXPECT_EQ(solver.interrupt_status().code(), StatusCode::kCancelled);
  }
  // Either way the solver must remain usable after detaching the guard.
  solver.set_guard(nullptr);
  EXPECT_NE(solver.Solve(), SatSolver::Outcome::kUnknown);
}

TEST(GuardCancelRace, CrossThreadCancelStopsParallelFor) {
  // The thread pool polls the guard once per chunk: a cancel flipped from
  // outside while workers are mid-batch must surface as the typed status,
  // with no use-after-free of the stack-allocated batch (TSan-verified).
  constexpr size_t kTotal = 1 << 22;
  ThreadPool pool(4);
  Guard guard;
  std::atomic<size_t> executed{0};
  Status status = Status::Ok();
  std::thread worker([&] {
    status = pool.ParallelFor(
        0, kTotal, 64,
        [&](size_t) { executed.fetch_add(1, std::memory_order_relaxed); },
        &guard);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  guard.Cancel();
  worker.join();

  if (status.ok()) {
    EXPECT_EQ(executed.load(), kTotal) << "finished before the cancel landed";
  } else {
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
    EXPECT_LT(executed.load(), kTotal) << "a refusal must mean skipped work";
  }

  // The pool must remain fully usable with a fresh guard.
  Guard fresh;
  std::atomic<size_t> count{0};
  EXPECT_TRUE(pool
                  .ParallelFor(
                      0, 1000, 10,
                      [&](size_t) { count.fetch_add(1, std::memory_order_relaxed); },
                      &fresh)
                  .ok());
  EXPECT_EQ(count.load(), 1000u);
}

TEST(GuardCancelRace, ParallelForWithoutGuardRunsEverything) {
  ThreadPool pool(3);
  std::vector<int> hits(5000, 0);
  ASSERT_TRUE(
      pool.ParallelFor(0, hits.size(), 7, [&](size_t i) { hits[i]++; }, nullptr)
          .ok());
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i << " ran a wrong number of times";
  }
}

TEST(GuardCancelRace, CrossThreadCancelStopsSddCompile) {
  const Cnf cnf = RandomCnf(40, 170, 5);
  SddManager mgr(Vtree::Balanced(Vtree::IdentityOrder(40)));
  Guard guard;

  Result<SddId> result = Status::Cancelled("not started");
  std::thread worker([&] { result = CompileCnfBounded(mgr, cnf, guard); });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  guard.Cancel();
  worker.join();

  // The compile either finished before the cancel landed or refused with
  // the typed cancellation status; anything else is a bug.
  if (!result.ok()) {
    EXPECT_EQ(result.error_code(), StatusCode::kCancelled);
  }
}

}  // namespace
}  // namespace tbc
