// Parameterized Boolean-algebra property suite: the OBDD and SDD managers
// must satisfy the algebraic laws on random functions — the canonicity
// guarantee means each law is an exact node-identity, not just a semantic
// equivalence. This pins down the apply/negate/condition/quantify kernels
// far beyond example-based tests.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "analysis/diagnostics.h"
#include "analysis/obdd_analyzer.h"
#include "analysis/sdd_analyzer.h"
#include "base/random.h"
#include "obdd/obdd.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

constexpr size_t kVars = 7;

// Random function as an OBDD / SDD via random DNF-ish terms.
template <typename Builder>
auto RandomFunction(Builder&& literal_fn, auto&& and_fn, auto&& or_fn,
                    Rng& rng) {
  auto f = and_fn(literal_fn(Lit(0, true)), literal_fn(Lit(0, false)));  // ⊥
  const int terms = 2 + static_cast<int>(rng.Below(4));
  for (int t = 0; t < terms; ++t) {
    auto cube = literal_fn(Lit(static_cast<Var>(rng.Below(kVars)), rng.Flip(0.5)));
    const int lits = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < lits; ++i) {
      cube = and_fn(cube, literal_fn(Lit(static_cast<Var>(rng.Below(kVars)),
                                         rng.Flip(0.5))));
    }
    f = or_fn(f, cube);
  }
  return f;
}

class ObddAlgebraTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  ObddAlgebraTest() : mgr_(Vtree::IdentityOrder(kVars)), rng_(GetParam() * 31 + 5) {
    auto lit = [&](Lit l) { return mgr_.LiteralNode(l); };
    auto land = [&](ObddId a, ObddId b) { return mgr_.And(a, b); };
    auto lor = [&](ObddId a, ObddId b) { return mgr_.Or(a, b); };
    f_ = RandomFunction(lit, land, lor, rng_);
    g_ = RandomFunction(lit, land, lor, rng_);
    h_ = RandomFunction(lit, land, lor, rng_);
  }
  ObddManager mgr_;
  Rng rng_;
  ObddId f_, g_, h_;
};

TEST_P(ObddAlgebraTest, BooleanLaws) {
  // Commutativity / associativity / distributivity / absorption.
  EXPECT_EQ(mgr_.And(f_, g_), mgr_.And(g_, f_));
  EXPECT_EQ(mgr_.Or(f_, g_), mgr_.Or(g_, f_));
  EXPECT_EQ(mgr_.And(f_, mgr_.And(g_, h_)), mgr_.And(mgr_.And(f_, g_), h_));
  EXPECT_EQ(mgr_.Or(f_, mgr_.Or(g_, h_)), mgr_.Or(mgr_.Or(f_, g_), h_));
  EXPECT_EQ(mgr_.And(f_, mgr_.Or(g_, h_)),
            mgr_.Or(mgr_.And(f_, g_), mgr_.And(f_, h_)));
  EXPECT_EQ(mgr_.Or(f_, mgr_.And(f_, g_)), f_);
  EXPECT_EQ(mgr_.And(f_, mgr_.Or(f_, g_)), f_);
}

TEST_P(ObddAlgebraTest, NegationLaws) {
  EXPECT_EQ(mgr_.Not(mgr_.Not(f_)), f_);
  // De Morgan.
  EXPECT_EQ(mgr_.Not(mgr_.And(f_, g_)), mgr_.Or(mgr_.Not(f_), mgr_.Not(g_)));
  EXPECT_EQ(mgr_.Not(mgr_.Or(f_, g_)), mgr_.And(mgr_.Not(f_), mgr_.Not(g_)));
  // Complements.
  EXPECT_EQ(mgr_.And(f_, mgr_.Not(f_)), mgr_.False());
  EXPECT_EQ(mgr_.Or(f_, mgr_.Not(f_)), mgr_.True());
  // Xor identities.
  EXPECT_EQ(mgr_.Xor(f_, mgr_.Not(f_)), mgr_.True());
  EXPECT_EQ(mgr_.Xor(mgr_.Xor(f_, g_), g_), f_);
}

TEST_P(ObddAlgebraTest, ShannonExpansion) {
  for (Var v = 0; v < kVars; ++v) {
    const ObddId expansion =
        mgr_.Or(mgr_.And(mgr_.LiteralNode(Pos(v)), mgr_.Restrict(f_, v, true)),
                mgr_.And(mgr_.LiteralNode(Neg(v)), mgr_.Restrict(f_, v, false)));
    ASSERT_EQ(expansion, f_) << "var " << v;
  }
}

TEST_P(ObddAlgebraTest, QuantificationLaws) {
  for (Var v : {Var(0), Var(3), Var(kVars - 1)}) {
    // ∃v.f is implied by f; ∀v.f implies f.
    EXPECT_EQ(mgr_.Implies(f_, mgr_.Exists(f_, v)), mgr_.True());
    EXPECT_EQ(mgr_.Implies(mgr_.Forall(f_, v), f_), mgr_.True());
    // Duality: ∀v.f = ¬∃v.¬f.
    EXPECT_EQ(mgr_.Forall(f_, v), mgr_.Not(mgr_.Exists(mgr_.Not(f_), v)));
    // ∃ distributes over ∨, ∀ over ∧.
    EXPECT_EQ(mgr_.Exists(mgr_.Or(f_, g_), v),
              mgr_.Or(mgr_.Exists(f_, v), mgr_.Exists(g_, v)));
    EXPECT_EQ(mgr_.Forall(mgr_.And(f_, g_), v),
              mgr_.And(mgr_.Forall(f_, v), mgr_.Forall(g_, v)));
    // Quantified results no longer depend on v.
    EXPECT_EQ(mgr_.Restrict(mgr_.Exists(f_, v), v, false),
              mgr_.Restrict(mgr_.Exists(f_, v), v, true));
  }
}

TEST_P(ObddAlgebraTest, CountingLaws) {
  // Inclusion-exclusion on exact counts.
  const BigUint cf = mgr_.ModelCount(f_);
  const BigUint cg = mgr_.ModelCount(g_);
  const BigUint cand = mgr_.ModelCount(mgr_.And(f_, g_));
  const BigUint cor = mgr_.ModelCount(mgr_.Or(f_, g_));
  EXPECT_EQ(cf + cg, cand + cor);
  // Complement counts.
  EXPECT_EQ(cf + mgr_.ModelCount(mgr_.Not(f_)),
            BigUint::PowerOfTwo(kVars));
  // Shannon counts: |f| = |f|v=0| + |f|v=1| (each over kVars-1 free vars,
  // i.e. halving the full-space count of the restriction).
  const BigUint c0 = mgr_.ModelCount(mgr_.Restrict(f_, 0, false));
  const BigUint c1 = mgr_.ModelCount(mgr_.Restrict(f_, 0, true));
  EXPECT_EQ(cf * BigUint(2), c0 + c1);
}

TEST_P(ObddAlgebraTest, EveryAlgebraResultIsOrderedAndReduced) {
  // Static verification: whatever the apply algebra produces must be a
  // reduced, ordered diagram — checked structurally, not semantically.
  for (ObddId r : {f_, g_, h_, mgr_.And(f_, g_), mgr_.Xor(g_, h_),
                   mgr_.Ite(f_, g_, h_), mgr_.Exists(f_, 1)}) {
    DiagnosticReport report;
    AnalyzeObdd(mgr_, r, report);
    EXPECT_TRUE(report.empty()) << report.ToText("obdd algebra result");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObddAlgebraTest,
                         ::testing::Range<uint64_t>(0, 12));

class SddAlgebraTest : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {
 protected:
  SddAlgebraTest() : rng_(std::get<0>(GetParam()) * 57 + 3) {
    const int shape = std::get<1>(GetParam());
    Rng vrng(std::get<0>(GetParam()) + 100);
    Vtree vt = shape == 0 ? Vtree::Balanced(Vtree::IdentityOrder(kVars))
               : shape == 1
                   ? Vtree::RightLinear(Vtree::IdentityOrder(kVars))
                   : Vtree::Random(Vtree::IdentityOrder(kVars), vrng);
    mgr_ = std::make_unique<SddManager>(std::move(vt));
    auto lit = [&](Lit l) { return mgr_->LiteralNode(l); };
    auto land = [&](SddId a, SddId b) { return mgr_->Conjoin(a, b); };
    auto lor = [&](SddId a, SddId b) { return mgr_->Disjoin(a, b); };
    f_ = RandomFunction(lit, land, lor, rng_);
    g_ = RandomFunction(lit, land, lor, rng_);
  }
  Rng rng_;
  std::unique_ptr<SddManager> mgr_;
  SddId f_, g_;
};

TEST_P(SddAlgebraTest, CanonicityLaws) {
  // Canonicity turns semantic laws into node identities across any vtree.
  EXPECT_EQ(mgr_->Conjoin(f_, g_), mgr_->Conjoin(g_, f_));
  EXPECT_EQ(mgr_->Disjoin(f_, g_), mgr_->Disjoin(g_, f_));
  EXPECT_EQ(mgr_->Negate(mgr_->Negate(f_)), f_);
  EXPECT_EQ(mgr_->Negate(mgr_->Conjoin(f_, g_)),
            mgr_->Disjoin(mgr_->Negate(f_), mgr_->Negate(g_)));
  EXPECT_EQ(mgr_->Conjoin(f_, mgr_->Negate(f_)), mgr_->False());
  EXPECT_EQ(mgr_->Disjoin(f_, mgr_->Negate(f_)), mgr_->True());
  EXPECT_EQ(mgr_->Disjoin(f_, mgr_->Conjoin(f_, g_)), f_);  // absorption
}

TEST_P(SddAlgebraTest, ConditioningLaws) {
  for (Var v : {Var(0), Var(kVars / 2)}) {
    // Shannon expansion as node identity.
    const SddId expansion = mgr_->Disjoin(
        mgr_->Conjoin(mgr_->LiteralNode(Pos(v)), mgr_->Condition(f_, Pos(v))),
        mgr_->Conjoin(mgr_->LiteralNode(Neg(v)), mgr_->Condition(f_, Neg(v))));
    ASSERT_EQ(expansion, f_) << "var " << v;
    // Conditioning commutes with conjunction.
    EXPECT_EQ(mgr_->Condition(mgr_->Conjoin(f_, g_), Pos(v)),
              mgr_->Conjoin(mgr_->Condition(f_, Pos(v)),
                            mgr_->Condition(g_, Pos(v))));
  }
}

TEST_P(SddAlgebraTest, CountInclusionExclusion) {
  const BigUint cf = mgr_->ModelCount(f_);
  const BigUint cg = mgr_->ModelCount(g_);
  EXPECT_EQ(cf + cg, mgr_->ModelCount(mgr_->Conjoin(f_, g_)) +
                         mgr_->ModelCount(mgr_->Disjoin(f_, g_)));
  EXPECT_EQ(cf + mgr_->ModelCount(mgr_->Negate(f_)), BigUint::PowerOfTwo(kVars));
}

TEST_P(SddAlgebraTest, EveryAlgebraResultIsTrimmedCompressedStructured) {
  // Static verification across every vtree shape: the apply algebra must
  // only ever produce trimmed, compressed, vtree-respecting SDDs with
  // SAT-certified partitions.
  for (SddId r : {f_, g_, mgr_->Conjoin(f_, g_), mgr_->Disjoin(f_, g_),
                  mgr_->Negate(f_), mgr_->Condition(f_, Pos(0))}) {
    DiagnosticReport report;
    AnalyzeSdd(*mgr_, r, SddAnalysisOptions{}, report);
    EXPECT_TRUE(report.empty()) << report.ToText("sdd algebra result");
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShapes, SddAlgebraTest,
    ::testing::Combine(::testing::Range<uint64_t>(0, 6),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, int>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_shape" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tbc
