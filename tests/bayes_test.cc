#include <gtest/gtest.h>

#include <cmath>

#include "base/random.h"
#include "bayes/circuit_inference.h"
#include "bayes/network.h"
#include "bayes/jointree.h"
#include "bayes/varelim.h"
#include "bayes/wmc_encoding.h"
#include "compiler/model_counter.h"
#include "psdd/learn.h"
#include "sdd/compile.h"
#include "sat/enumerate.h"

namespace tbc {
namespace {

// The paper's Fig 4 network: A with children B and C (binary).
BayesianNetwork ChainNetwork() {
  BayesianNetwork net;
  BnVar a = net.AddBinary("A", {}, {0.3});
  net.AddBinary("B", {a}, {0.8, 0.2});   // Pr(B=1|A=0)=0.8, Pr(B=1|A=1)=0.2
  net.AddBinary("C", {a}, {0.1, 0.9});
  return net;
}

// The paper's Fig 2 medical network: sex -> c -> {T1, T2} -> AGREE.
// CPT values are our own (the figure's numbers are not in the text);
// DESIGN.md records this substitution.
BayesianNetwork MedicalNetwork() {
  BayesianNetwork net;
  BnVar sex = net.AddBinary("sex", {}, {0.55});             // 1 = female
  BnVar c = net.AddBinary("c", {sex}, {0.05, 0.15});        // condition
  BnVar t1 = net.AddBinary("T1", {c}, {0.10, 0.85});        // test 1 positive
  BnVar t2 = net.AddBinary("T2", {c}, {0.20, 0.75});        // test 2 positive
  net.AddBinary("AGREE", {t1, t2}, {0.95, 0.05, 0.05, 0.95});
  return net;
}

TEST(BayesianNetworkTest, JointProbabilityFactorizes) {
  BayesianNetwork net = ChainNetwork();
  // Pr(A=1,B=1,C=0) = 0.3 * 0.2 * (1-0.9).
  EXPECT_NEAR(net.JointProbability({1, 1, 0}), 0.3 * 0.2 * 0.1, 1e-12);
  // All instantiations sum to 1.
  double total = 0.0;
  for (uint64_t i = 0; i < net.NumInstantiations(); ++i) {
    total += net.JointProbability(net.InstantiationAt(i));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BayesianNetworkTest, MultiValuedVariables) {
  BayesianNetwork net;
  BnVar w = net.AddVariable("weather", 3, {}, {0.5, 0.3, 0.2});
  net.AddVariable("mood", 2, {w}, {0.9, 0.1, 0.5, 0.5, 0.2, 0.8});
  EXPECT_NEAR(net.JointProbability({2, 1}), 0.2 * 0.8, 1e-12);
  double total = 0.0;
  for (uint64_t i = 0; i < net.NumInstantiations(); ++i) {
    total += net.JointProbability(net.InstantiationAt(i));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(VariableEliminationTest, MarginalsMatchBruteForce) {
  BayesianNetwork net = BayesianNetwork::RandomBinary(7, 3, 5);
  VariableElimination ve(net);
  BnInstantiation no_evidence(7, kUnobserved);
  for (BnVar v = 0; v < 7; ++v) {
    for (int x = 0; x < 2; ++x) {
      EXPECT_NEAR(ve.Marginal(v, x, no_evidence),
                  net.MarginalBruteForce(v, x, no_evidence), 1e-10);
    }
  }
}

TEST(VariableEliminationTest, EvidenceAndPosterior) {
  BayesianNetwork net = MedicalNetwork();
  VariableElimination ve(net);
  BnInstantiation e(5, kUnobserved);
  e[2] = 1;  // T1 positive
  const double pe = ve.ProbEvidence(e);
  EXPECT_NEAR(pe, net.MarginalBruteForce(2, 1, BnInstantiation(5, kUnobserved)),
              1e-10);
  const double post = ve.Posterior(1, 1, e);  // Pr(c | T1=1)
  EXPECT_NEAR(post, net.MarginalBruteForce(1, 1, e) / pe, 1e-10);
  EXPECT_GT(post, ve.Posterior(1, 1, BnInstantiation(5, kUnobserved)));
}

TEST(VariableEliminationTest, MpeMatchesExhaustive) {
  BayesianNetwork net = BayesianNetwork::RandomBinary(6, 2, 11);
  VariableElimination ve(net);
  BnInstantiation no_evidence(6, kUnobserved);
  double best = -1.0;
  for (uint64_t i = 0; i < net.NumInstantiations(); ++i) {
    best = std::max(best, net.JointProbability(net.InstantiationAt(i)));
  }
  EXPECT_NEAR(ve.MpeValue(no_evidence), best, 1e-12);
  BnInstantiation mpe = ve.Mpe(no_evidence);
  EXPECT_NEAR(net.JointProbability(mpe), best, 1e-12);
}

TEST(VariableEliminationTest, MapMatchesExhaustive) {
  BayesianNetwork net = BayesianNetwork::RandomBinary(6, 2, 13);
  VariableElimination ve(net);
  const std::vector<BnVar> y = {1, 3};
  BnInstantiation no_evidence(6, kUnobserved);
  double best = -1.0;
  for (int y1 = 0; y1 < 2; ++y1) {
    for (int y3 = 0; y3 < 2; ++y3) {
      BnInstantiation e(6, kUnobserved);
      e[1] = y1;
      e[3] = y3;
      best = std::max(best, ve.ProbEvidence(e));
    }
  }
  std::vector<int> argmax;
  EXPECT_NEAR(ve.Map(y, no_evidence, &argmax), best, 1e-12);
  BnInstantiation e(6, kUnobserved);
  e[1] = argmax[0];
  e[3] = argmax[1];
  EXPECT_NEAR(ve.ProbEvidence(e), best, 1e-12);
}

TEST(JointreeTest, MatchesVariableEliminationOnRandomNets) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    BayesianNetwork net = BayesianNetwork::RandomBinary(7, 3, seed + 200);
    Jointree jt(net);
    VariableElimination ve(net);
    EXPECT_GE(jt.num_cliques(), 1u);
    EXPECT_GE(jt.max_clique_size(), 1u);
    BnInstantiation none(7, kUnobserved);
    EXPECT_NEAR(jt.ProbEvidence(none), 1.0, 1e-10) << seed;
    for (BnVar v = 0; v < 7; ++v) {
      EXPECT_NEAR(jt.Marginal(v, 1, none), ve.Marginal(v, 1, none), 1e-10)
          << "seed " << seed << " var " << v;
    }
  }
}

TEST(JointreeTest, EvidenceAndAllMarginals) {
  BayesianNetwork net = MedicalNetwork();
  Jointree jt(net);
  VariableElimination ve(net);
  BnInstantiation e(5, kUnobserved);
  e[2] = 1;
  e[4] = 0;
  EXPECT_NEAR(jt.ProbEvidence(e), ve.ProbEvidence(e), 1e-10);
  auto all = jt.AllMarginals(e);
  for (BnVar v = 0; v < 5; ++v) {
    for (int x = 0; x < 2; ++x) {
      EXPECT_NEAR(all[v][x], ve.Marginal(v, x, e), 1e-10)
          << "var " << v << " value " << x;
    }
  }
}

TEST(JointreeTest, MultiValuedNetwork) {
  BayesianNetwork net;
  const BnVar w = net.AddVariable("w", 3, {}, {0.5, 0.3, 0.2});
  net.AddVariable("m", 2, {w}, {0.9, 0.1, 0.5, 0.5, 0.2, 0.8});
  Jointree jt(net);
  VariableElimination ve(net);
  BnInstantiation none(2, kUnobserved);
  for (int x = 0; x < 3; ++x) {
    EXPECT_NEAR(jt.Marginal(w, x, none), ve.Marginal(w, x, none), 1e-12);
  }
}

TEST(PsddEmTest, OneIterationOnCompleteDataEqualsMl) {
  // EM with complete data must reproduce the closed-form ML parameters
  // after a single iteration (expected counts == actual counts).
  Cnf constraint(4);
  constraint.AddClauseDimacs({4, 3});
  constraint.AddClauseDimacs({-1, 4});
  constraint.AddClauseDimacs({-2, 1, 3});
  SddManager mgr(Vtree::Balanced({2, 1, 3, 0}));
  const SddId base = CompileCnf(mgr, constraint);

  std::vector<Assignment> data = {
      {false, false, true, false}, {false, false, false, true},
      {true, false, false, true},  {false, true, true, true},
      {false, false, true, true},  {true, true, true, true},
      {false, false, false, true}, {true, false, true, true}};
  Psdd ml(mgr, base);
  ml.LearnParameters(data, {}, 0.0);

  Psdd em(mgr, base);
  std::vector<PsddEvidence> complete;
  for (const Assignment& x : data) {
    PsddEvidence e(4);
    for (Var v = 0; v < 4; ++v) e[v] = x[v] ? Obs::kTrue : Obs::kFalse;
    complete.push_back(e);
  }
  em.LearnParametersEm(complete, {}, 0.0, 1);
  for (int bits = 0; bits < 16; ++bits) {
    Assignment x(4);
    for (Var v = 0; v < 4; ++v) x[v] = (bits >> v) & 1;
    EXPECT_NEAR(em.Probability(x), ml.Probability(x), 1e-12) << bits;
  }
}

TEST(PsddEmTest, LikelihoodNeverDecreasesOnIncompleteData) {
  Cnf constraint(4);
  constraint.AddClauseDimacs({4, 3});
  constraint.AddClauseDimacs({-1, 4});
  constraint.AddClauseDimacs({-2, 1, 3});
  SddManager mgr(Vtree::Balanced({2, 1, 3, 0}));
  const SddId base = CompileCnf(mgr, constraint);

  // Incomplete data: the paper's example ("30 students took logic, AI and
  // probability, without specifying knowledge representation").
  Rng rng(8);
  std::vector<PsddEvidence> data;
  for (int i = 0; i < 60; ++i) {
    PsddEvidence e(4, Obs::kUnknown);
    e[2] = rng.Flip(0.7) ? Obs::kTrue : Obs::kFalse;   // logic observed
    e[3] = rng.Flip(0.8) ? Obs::kTrue : Obs::kFalse;   // probability observed
    if (rng.Flip(0.5)) e[0] = rng.Flip(0.4) ? Obs::kTrue : Obs::kFalse;
    // Keep the evidence consistent with the constraint: P∨L and A⇒P.
    if (e[2] == Obs::kFalse && e[3] == Obs::kFalse) e[3] = Obs::kTrue;
    if (e[0] == Obs::kTrue && e[3] == Obs::kFalse) e[0] = Obs::kFalse;
    data.push_back(e);
  }
  Psdd psdd(mgr, base);
  double previous = -1e100;
  for (int iter = 0; iter < 8; ++iter) {
    const double ll = psdd.LearnParametersEm(data, {}, 0.0, 1);
    EXPECT_GE(ll, previous - 1e-9) << "iteration " << iter;
    previous = ll;
  }
  // The learned model is still a distribution.
  double total = 0.0;
  for (int bits = 0; bits < 16; ++bits) {
    Assignment x(4);
    for (Var v = 0; v < 4; ++v) x[v] = (bits >> v) & 1;
    total += psdd.Probability(x);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(WmcEncodingTest, ModelsAreNetworkInstantiations) {
  BayesianNetwork net = ChainNetwork();
  WmcEncoding enc(net);
  // Exactly 8 models (paper: "exactly eight models, which correspond to
  // the network instantiations").
  EXPECT_EQ(CountModelsUpTo(enc.cnf(), 100), 8u);
}

TEST(WmcEncodingTest, ModelWeightIsJointProbability) {
  BayesianNetwork net = ChainNetwork();
  WmcEncoding enc(net);
  EnumerateModels(enc.cnf(), 100, [&](const Assignment& model) {
    const BnInstantiation inst = enc.DecodeModel(model);
    double weight = 1.0;
    for (Var v = 0; v < enc.num_bool_vars(); ++v) {
      weight *= enc.weights()[Lit(v, model[v])];
    }
    EXPECT_NEAR(weight, net.JointProbability(inst), 1e-12);
  });
}

TEST(WmcEncodingTest, WmcIsOne) {
  BayesianNetwork net = MedicalNetwork();
  WmcEncoding enc(net);
  ModelCounter counter;
  EXPECT_NEAR(counter.Wmc(enc.cnf(), enc.weights()), 1.0, 1e-10);
}

TEST(WmcEncodingTest, WmcWithEvidenceIsMarginal) {
  BayesianNetwork net = MedicalNetwork();
  WmcEncoding enc(net);
  ModelCounter counter;
  BnInstantiation e(5, kUnobserved);
  e[4] = 1;  // AGREE = yes
  EXPECT_NEAR(counter.Wmc(enc.cnf(), enc.WeightsWithEvidence(e)),
              net.MarginalBruteForce(4, 1, BnInstantiation(5, kUnobserved)),
              1e-10);
}

TEST(WmcEncodingTest, DeterminismRefinementPreservesMarginals) {
  // AGREE is a deterministic function (equality) of T1 and T2: the refined
  // reduction drops its parameter variables entirely.
  BayesianNetwork net;
  BnVar c = net.AddBinary("c", {}, {0.2});
  BnVar t1 = net.AddBinary("T1", {c}, {0.1, 0.9});
  BnVar t2 = net.AddBinary("T2", {c}, {0.3, 0.7});
  net.AddBinary("AGREE", {t1, t2}, {1.0, 0.0, 0.0, 1.0});

  WmcEncoding plain(net);
  WmcEncoding refined(net, {.exploit_determinism = true});
  EXPECT_LT(refined.num_bool_vars(), plain.num_bool_vars());
  EXPECT_LT(refined.cnf().num_clauses(), plain.cnf().num_clauses());

  ModelCounter counter;
  VariableElimination ve(net);
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    for (int x = 0; x < 2; ++x) {
      BnInstantiation e(net.num_vars(), kUnobserved);
      e[v] = x;
      const double expected = ve.ProbEvidence(e);
      EXPECT_NEAR(counter.Wmc(plain.cnf(), plain.WeightsWithEvidence(e)),
                  expected, 1e-10);
      EXPECT_NEAR(counter.Wmc(refined.cnf(), refined.WeightsWithEvidence(e)),
                  expected, 1e-10);
    }
  }
}

TEST(WmcEncodingTest, DeterminismRefinementOnRandomDeterministicNets) {
  // Random nets where half the CPT rows are deterministic.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed + 40);
    BayesianNetwork net;
    BnVar prev = net.AddBinary("x0", {}, {0.5});
    for (int i = 1; i < 5; ++i) {
      double p1 = rng.Flip(0.5) ? (rng.Flip(0.5) ? 0.0 : 1.0) : rng.Uniform();
      double p2 = rng.Flip(0.5) ? (rng.Flip(0.5) ? 0.0 : 1.0) : rng.Uniform();
      prev = net.AddBinary("x" + std::to_string(i), {prev}, {p1, p2});
    }
    WmcEncoding refined(net, {.exploit_determinism = true});
    ModelCounter counter;
    VariableElimination ve(net);
    BnInstantiation none(5, kUnobserved);
    for (BnVar v = 0; v < 5; ++v) {
      EXPECT_NEAR(counter.Wmc(refined.cnf(), refined.WeightsWithEvidence(
                                                  [&] {
                                                    BnInstantiation e = none;
                                                    e[v] = 1;
                                                    return e;
                                                  }())),
                  ve.Marginal(v, 1, none), 1e-10)
          << "seed " << seed << " var " << v;
    }
  }
}

TEST(CompiledBayesNetTest, MatchesVariableEliminationOnRandomNets) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    BayesianNetwork net = BayesianNetwork::RandomBinary(6, 2, seed + 20);
    CompiledBayesNet cbn(net);
    VariableElimination ve(net);
    BnInstantiation e(6, kUnobserved);
    e[0] = static_cast<int>(seed % 2);
    EXPECT_NEAR(cbn.ProbEvidence(e), ve.ProbEvidence(e), 1e-10) << seed;
    for (BnVar v = 1; v < 6; ++v) {
      EXPECT_NEAR(cbn.Marginal(v, 1, e), ve.Marginal(v, 1, e), 1e-10)
          << "seed " << seed << " var " << v;
    }
  }
}

TEST(CompiledBayesNetTest, AllMarginalsMatchIndividualMarginals) {
  BayesianNetwork net = MedicalNetwork();
  CompiledBayesNet cbn(net);
  BnInstantiation e(5, kUnobserved);
  e[2] = 1;
  auto all = cbn.AllMarginals(e);
  for (BnVar v = 0; v < 5; ++v) {
    for (int x = 0; x < 2; ++x) {
      if (v == 2) {
        // Evidence variable: marginal concentrates on the observed value.
        EXPECT_NEAR(all[v][x], x == 1 ? cbn.ProbEvidence(e) : 0.0, 1e-10);
      } else {
        EXPECT_NEAR(all[v][x], cbn.Marginal(v, x, e), 1e-10);
      }
    }
  }
}

TEST(CompiledBayesNetTest, MpeMatchesVariableElimination) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    BayesianNetwork net = BayesianNetwork::RandomBinary(6, 2, seed + 50);
    CompiledBayesNet cbn(net);
    VariableElimination ve(net);
    BnInstantiation e(6, kUnobserved);
    e[5] = 1;
    auto mpe = cbn.Mpe(e);
    EXPECT_NEAR(mpe.probability, ve.MpeValue(e), 1e-10) << seed;
    EXPECT_NEAR(net.JointProbability(mpe.instantiation), mpe.probability, 1e-10);
    EXPECT_EQ(mpe.instantiation[5], 1);
  }
}

TEST(CompiledBayesNetTest, MapMatchesVariableElimination) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    BayesianNetwork net = BayesianNetwork::RandomBinary(5, 2, seed + 80);
    CompiledBayesNet cbn(net);
    VariableElimination ve(net);
    const std::vector<BnVar> y = {0, 2};
    BnInstantiation e(5, kUnobserved);
    e[4] = 0;
    auto map = cbn.Map(y, e);
    std::vector<int> ve_argmax;
    EXPECT_NEAR(map.probability, ve.Map(y, e, &ve_argmax), 1e-10) << seed;
    // Verify the returned values achieve the optimum.
    BnInstantiation full = e;
    full[0] = map.values[0];
    full[2] = map.values[1];
    EXPECT_NEAR(ve.ProbEvidence(full), map.probability, 1e-10) << seed;
  }
}

TEST(CompiledBayesNetTest, SdpMatchesVariableElimination) {
  BayesianNetwork net = MedicalNetwork();
  CompiledBayesNet cbn(net);
  VariableElimination ve(net);
  BnInstantiation e(5, kUnobserved);
  const std::vector<BnVar> tests = {2, 3};  // T1, T2
  const double t = 0.9;
  EXPECT_NEAR(cbn.Sdp(1, 1, t, tests, e), ve.Sdp(1, 1, t, tests, e), 1e-10);
  // SDP is a probability.
  const double sdp = cbn.Sdp(1, 1, t, tests, e);
  EXPECT_GE(sdp, 0.0);
  EXPECT_LE(sdp, 1.0 + 1e-12);
}

TEST(BayesianNetworkTest, ForwardSamplingMatchesDistribution) {
  BayesianNetwork net = ChainNetwork();
  Rng rng(17);
  std::vector<double> freq(8, 0.0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const BnInstantiation x = net.Sample(rng);
    freq[static_cast<size_t>(x[0] * 4 + x[1] * 2 + x[2])] += 1.0 / n;
  }
  for (uint64_t i = 0; i < 8; ++i) {
    const BnInstantiation inst = net.InstantiationAt(i);
    const size_t idx = static_cast<size_t>(inst[0] * 4 + inst[1] * 2 + inst[2]);
    EXPECT_NEAR(freq[idx], net.JointProbability(inst), 0.01) << i;
  }
}

TEST(CompiledBayesNetTest, MultiValuedNetworkMatchesVe) {
  // Ternary weather -> binary mood -> ternary activity: exercises the
  // one-hot indicator encoding beyond binary variables.
  BayesianNetwork net;
  const BnVar w = net.AddVariable("weather", 3, {}, {0.5, 0.3, 0.2});
  const BnVar m = net.AddVariable("mood", 2, {w}, {0.9, 0.1, 0.5, 0.5, 0.2, 0.8});
  net.AddVariable("activity", 3, {m},
                  {0.6, 0.3, 0.1, 0.1, 0.4, 0.5});
  CompiledBayesNet cbn(net);
  VariableElimination ve(net);
  BnInstantiation none(3, kUnobserved);
  EXPECT_NEAR(cbn.ProbEvidence(none), 1.0, 1e-10);
  for (BnVar v = 0; v < 3; ++v) {
    for (int x = 0; x < static_cast<int>(net.cardinality(v)); ++x) {
      EXPECT_NEAR(cbn.Marginal(v, x, none), ve.Marginal(v, x, none), 1e-10)
          << "var " << v << " value " << x;
    }
  }
  // Evidence on the middle variable.
  BnInstantiation e(3, kUnobserved);
  e[m] = 1;
  EXPECT_NEAR(cbn.ProbEvidence(e), ve.ProbEvidence(e), 1e-10);
  auto mpe = cbn.Mpe(e);
  EXPECT_NEAR(mpe.probability, ve.MpeValue(e), 1e-10);
  EXPECT_EQ(mpe.instantiation[m], 1);
}

TEST(CompiledBayesNetTest, MedicalNetworkSanity) {
  BayesianNetwork net = MedicalNetwork();
  CompiledBayesNet cbn(net);
  BnInstantiation none(5, kUnobserved);
  EXPECT_NEAR(cbn.ProbEvidence(none), 1.0, 1e-10);
  EXPECT_GT(cbn.CircuitSize(), 0u);
  // Positive tests raise the posterior of the condition.
  BnInstantiation both(5, kUnobserved);
  both[2] = 1;
  both[3] = 1;
  EXPECT_GT(cbn.Posterior(1, 1, both), cbn.Posterior(1, 1, none));
}

}  // namespace
}  // namespace tbc
