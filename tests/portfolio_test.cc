// Graceful-degradation portfolio tests: the SDD -> d-DNNF -> variable
// elimination cascade must agree with direct variable elimination on every
// query, fall back (not fail) when an early engine's budget is too small,
// and return a typed refusal only when every engine runs out.

#include "base/guard.h"
#include "bayes/network.h"
#include "bayes/varelim.h"
#include "core/portfolio.h"
#include "gtest/gtest.h"

namespace tbc {
namespace {

BayesianNetwork MedicalNetwork() {
  BayesianNetwork net;
  BnVar sex = net.AddBinary("sex", {}, {0.55});
  BnVar c = net.AddBinary("c", {sex}, {0.05, 0.15});
  BnVar t1 = net.AddBinary("T1", {c}, {0.10, 0.85});
  BnVar t2 = net.AddBinary("T2", {c}, {0.20, 0.75});
  net.AddBinary("AGREE", {t1, t2}, {0.95, 0.05, 0.05, 0.95});
  return net;
}

TEST(Portfolio, MatchesVariableEliminationUnlimited) {
  const BayesianNetwork net = MedicalNetwork();
  const VariableElimination ve(net);
  BnInstantiation evidence(net.num_vars(), kUnobserved);
  evidence[2] = 1;  // T1 observed positive

  auto pe = ProbEvidenceWithFallback(net, evidence, Budget::Unlimited());
  ASSERT_TRUE(pe.ok()) << pe.status().message();
  EXPECT_NEAR(pe->value, ve.ProbEvidence(evidence), 1e-9);
  // With no budget pressure the first engine wins.
  EXPECT_EQ(pe->engine, PortfolioEngine::kSdd);
  EXPECT_TRUE(pe->attempts.empty());

  for (BnVar v = 0; v < net.num_vars(); ++v) {
    if (evidence[v] != kUnobserved) continue;
    for (int x = 0; x < 2; ++x) {
      auto m = MarginalWithFallback(net, v, x, evidence, Budget::Unlimited());
      ASSERT_TRUE(m.ok()) << m.status().message();
      EXPECT_NEAR(m->value, ve.Marginal(v, x, evidence), 1e-9);

      auto p = PosteriorWithFallback(net, v, x, evidence, Budget::Unlimited());
      ASSERT_TRUE(p.ok()) << p.status().message();
      EXPECT_NEAR(p->value, ve.Posterior(v, x, evidence), 1e-9);
    }
  }
}

TEST(Portfolio, FallsBackWhenCompilationBudgetTooSmall) {
  // Force the cascade to its last stage: the node cap kills the SDD
  // compile (~1500 nodes on this network) and the decision cap kills the
  // top-down d-DNNF compile (~13 decisions), while variable elimination —
  // which charges only its factor tables (~29 entries) and makes no
  // decisions — squeaks through.
  const BayesianNetwork net = MedicalNetwork();
  const VariableElimination ve(net);
  BnInstantiation evidence(net.num_vars(), kUnobserved);
  evidence[4] = 1;  // AGREE observed

  Budget budget;
  budget.max_nodes = 200;
  budget.max_decisions = 5;
  auto r = ProbEvidenceWithFallback(net, evidence, budget);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r->engine, PortfolioEngine::kVarElim);
  EXPECT_EQ(r->attempts.size(), 2u);  // sdd and ddnnf both refused first
  EXPECT_NEAR(r->value, ve.ProbEvidence(evidence), 1e-9);
}

TEST(Portfolio, AllEnginesExhaustedIsTypedRefusal) {
  const BayesianNetwork net = MedicalNetwork();
  BnInstantiation evidence(net.num_vars(), kUnobserved);
  auto r = ProbEvidenceWithFallback(net, evidence, Budget::NodeLimit(1));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsRefusal());
}

TEST(Portfolio, InvalidQueriesRejectedUpFront) {
  const BayesianNetwork net = MedicalNetwork();
  BnInstantiation evidence(net.num_vars(), kUnobserved);
  EXPECT_EQ(MarginalWithFallback(net, 99, 0, evidence, Budget::Unlimited())
                .error_code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(PosteriorWithFallback(net, 0, 5, evidence, Budget::Unlimited())
                .error_code(),
            StatusCode::kInvalidInput);
  evidence[0] = 0;
  EXPECT_EQ(PosteriorWithFallback(net, 0, 1, evidence, Budget::Unlimited())
                .error_code(),
            StatusCode::kInvalidInput);
}

TEST(Portfolio, PosteriorWithObservedQueryVariableIsOne) {
  const BayesianNetwork net = MedicalNetwork();
  BnInstantiation evidence(net.num_vars(), kUnobserved);
  evidence[1] = 1;
  auto p = PosteriorWithFallback(net, 1, 1, evidence, Budget::Unlimited());
  ASSERT_TRUE(p.ok()) << p.status().message();
  EXPECT_NEAR(p->value, 1.0, 1e-9);
}

}  // namespace
}  // namespace tbc
