// Parameterized PSDD property suite: over random constraints, vtree
// shapes and datasets, the PSDD invariants of paper §4 must hold —
// normalization over the base, zero off the base, consistency of the
// evidence/marginal/MPE/sampling/multiply machinery with brute force.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "analysis/diagnostics.h"
#include "analysis/psdd_analyzer.h"
#include "base/random.h"
#include "psdd/psdd.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

constexpr size_t kVars = 6;

// Parameter: (seed, vtree shape 0..2).
using PsddParam = std::tuple<uint64_t, int>;

class PsddPropertyTest : public ::testing::TestWithParam<PsddParam> {
 protected:
  void SetUp() override {
    const auto [seed, shape] = GetParam();
    Rng rng(seed * 131 + 7);
    // Random satisfiable CNF constraint.
    Cnf cnf(kVars);
    for (int tries = 0;; ++tries) {
      Cnf candidate(kVars);
      for (int i = 0; i < 8; ++i) {
        std::set<Var> vars;
        while (vars.size() < 3) vars.insert(static_cast<Var>(rng.Below(kVars)));
        Clause c;
        for (Var v : vars) c.push_back(Lit(v, rng.Flip(0.5)));
        candidate.AddClause(c);
      }
      if (candidate.CountModelsBruteForce() > 0) {
        cnf = candidate;
        break;
      }
      ASSERT_LT(tries, 50);
    }
    constraint_ = cnf;
    Rng vrng(seed + 1);
    Vtree vt = shape == 0   ? Vtree::Balanced(Vtree::IdentityOrder(kVars))
               : shape == 1 ? Vtree::RightLinear(Vtree::IdentityOrder(kVars))
                            : Vtree::Random(Vtree::IdentityOrder(kVars), vrng);
    mgr_ = std::make_unique<SddManager>(std::move(vt));
    base_ = CompileCnf(*mgr_, constraint_);

    // Learn from data sampled uniformly from the base.
    psdd_ = std::make_unique<Psdd>(*mgr_, base_);
    std::vector<Assignment> data;
    Rng drng(seed + 2);
    for (int i = 0; i < 80; ++i) data.push_back(psdd_->Sample(drng));
    psdd_->LearnParameters(data, {}, 0.3);
  }

  Cnf constraint_{0};
  std::unique_ptr<SddManager> mgr_;
  SddId base_ = 0;
  std::unique_ptr<Psdd> psdd_;
};

TEST_P(PsddPropertyTest, NormalizedOverBaseZeroOffBase) {
  double total = 0.0;
  for (int bits = 0; bits < (1 << kVars); ++bits) {
    Assignment x(kVars);
    for (Var v = 0; v < kVars; ++v) x[v] = (bits >> v) & 1;
    const double p = psdd_->Probability(x);
    if (!mgr_->Evaluate(base_, x)) {
      ASSERT_EQ(p, 0.0);
    } else {
      ASSERT_GE(p, 0.0);
    }
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(PsddPropertyTest, EvidenceMatchesSummation) {
  Rng rng(std::get<0>(GetParam()) + 9);
  for (int trial = 0; trial < 5; ++trial) {
    PsddEvidence e(kVars, Obs::kUnknown);
    for (Var v = 0; v < kVars; ++v) {
      if (rng.Flip(0.4)) e[v] = rng.Flip(0.5) ? Obs::kTrue : Obs::kFalse;
    }
    double sum = 0.0;
    for (int bits = 0; bits < (1 << kVars); ++bits) {
      Assignment x(kVars);
      bool match = true;
      for (Var v = 0; v < kVars; ++v) {
        x[v] = (bits >> v) & 1;
        if (e[v] != Obs::kUnknown && (e[v] == Obs::kTrue) != x[v]) match = false;
      }
      if (match) sum += psdd_->Probability(x);
    }
    ASSERT_NEAR(psdd_->ProbabilityEvidence(e), sum, 1e-10) << "trial " << trial;
  }
}

TEST_P(PsddPropertyTest, MarginalsMatchPerVariableEvidence) {
  PsddEvidence none(kVars, Obs::kUnknown);
  const std::vector<double> marg = psdd_->Marginals(none, /*normalized=*/true);
  for (Var v = 0; v < kVars; ++v) {
    PsddEvidence e(kVars, Obs::kUnknown);
    e[v] = Obs::kTrue;
    ASSERT_NEAR(marg[v], psdd_->ProbabilityEvidence(e), 1e-10) << "var " << v;
  }
}

TEST_P(PsddPropertyTest, MpeIsTheArgmax) {
  PsddEvidence none(kVars, Obs::kUnknown);
  const auto mpe = psdd_->MostProbable(none);
  double best = 0.0;
  for (int bits = 0; bits < (1 << kVars); ++bits) {
    Assignment x(kVars);
    for (Var v = 0; v < kVars; ++v) x[v] = (bits >> v) & 1;
    best = std::max(best, psdd_->Probability(x));
  }
  EXPECT_NEAR(mpe.probability, best, 1e-12);
  EXPECT_NEAR(psdd_->Probability(mpe.assignment), best, 1e-12);
}

TEST_P(PsddPropertyTest, SamplesStayInBase) {
  Rng rng(std::get<0>(GetParam()) + 77);
  for (int i = 0; i < 50; ++i) {
    const Assignment x = psdd_->Sample(rng);
    ASSERT_TRUE(mgr_->Evaluate(base_, x));
  }
}

TEST_P(PsddPropertyTest, SelfMultiplyIsSquaredRenormalized) {
  double z = 0.0;
  const Psdd squared = psdd_->Multiply(*psdd_, &z);
  double z_brute = 0.0;
  for (int bits = 0; bits < (1 << kVars); ++bits) {
    Assignment x(kVars);
    for (Var v = 0; v < kVars; ++v) x[v] = (bits >> v) & 1;
    const double p = psdd_->Probability(x);
    z_brute += p * p;
  }
  EXPECT_NEAR(z, z_brute, 1e-10);
  for (int bits = 0; bits < (1 << kVars); ++bits) {
    Assignment x(kVars);
    for (Var v = 0; v < kVars; ++v) x[v] = (bits >> v) & 1;
    const double p = psdd_->Probability(x);
    ASSERT_NEAR(squared.Probability(x), p * p / z, 1e-10);
  }
}

TEST_P(PsddPropertyTest, AnalyzerAcceptsLearnedAndMultipliedPsdds) {
  // Static verification: learning and multiplication must preserve the
  // normalized PSDD structure and parameter distributions.
  DiagnosticReport learned;
  AnalyzePsdd(*psdd_, learned);
  EXPECT_TRUE(learned.clean()) << learned.ToText("learned psdd");

  double z = 0.0;
  const Psdd squared = psdd_->Multiply(*psdd_, &z);
  DiagnosticReport product;
  AnalyzePsdd(squared, product);
  EXPECT_TRUE(product.clean()) << product.ToText("psdd product");
}

INSTANTIATE_TEST_SUITE_P(
    ConstraintSweep, PsddPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),  // seeds
                       ::testing::Values(0, 1, 2)),       // vtree shapes
    [](const ::testing::TestParamInfo<PsddParam>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_shape" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tbc
