// End-to-end pipelines across the three roles: the scenarios a downstream
// user strings together, exercised with assertions at every hand-off.

#include <gtest/gtest.h>

#include <cmath>

#include "base/random.h"
#include "bayes/circuit_inference.h"
#include "bayes/network.h"
#include "psdd/learn.h"
#include "sdd/compile.h"
#include "spaces/graph.h"
#include "spaces/routes.h"
#include "vtree/vtree.h"
#include "xai/explain.h"
#include "xai/naive_bayes.h"
#include "xai/robustness.h"

namespace tbc {
namespace {

TEST(IntegrationTest, BayesNetToClassifierToExplanation) {
  // Role 1 -> Role 3: a Bayesian network generates labeled data; a naive
  // Bayes classifier is fit on it; the classifier is compiled and its
  // decisions are explained and checked for bias.
  BayesianNetwork net;
  const BnVar disease = net.AddBinary("disease", {}, {0.3});
  net.AddBinary("t1", {disease}, {0.1, 0.9});
  net.AddBinary("t2", {disease}, {0.2, 0.8});
  net.AddBinary("noise", {}, {0.5});  // independent of the disease

  Rng rng(4);
  std::vector<Assignment> features;
  std::vector<bool> labels;
  for (int i = 0; i < 3000; ++i) {
    const BnInstantiation x = net.Sample(rng);
    features.push_back({x[1] == 1, x[2] == 1, x[3] == 1});
    labels.push_back(x[disease] == 1);
  }
  auto nb = NaiveBayesClassifier::Fit(features, labels, 0.5, 1.0);

  ObddManager mgr(Vtree::IdentityOrder(3));
  const ObddId odd = nb.CompileToOdd(mgr);
  // Compilation is exact.
  for (int bits = 0; bits < 8; ++bits) {
    Assignment e = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    ASSERT_EQ(mgr.Evaluate(odd, e), nb.Classify(e));
  }
  // Both tests positive -> diseased; the decision must not hinge on the
  // noise feature (a finite-sample classifier may retain a sliver of
  // noise dependence elsewhere, but not on this clear-cut instance).
  const Assignment both = {true, true, false};
  EXPECT_TRUE(mgr.Evaluate(odd, both));
  EXPECT_FALSE(IsDecisionBiased(mgr, odd, both, {2}));
  const auto reasons = SufficientReasons(mgr, odd, both);
  EXPECT_FALSE(reasons.empty());
  bool some_reason_avoids_noise = false;
  for (const Term& r : reasons) {
    bool uses_noise = false;
    for (Lit l : r) uses_noise |= l.var() == 2;
    some_reason_avoids_noise |= !uses_noise;
  }
  EXPECT_TRUE(some_reason_avoids_noise);
  // Decision robustness is finite and ≤ 2 (flipping both tests flips it).
  const size_t rob = DecisionRobustness(mgr, odd, both);
  EXPECT_LE(rob, 3u);
  EXPECT_GE(rob, 1u);
}

TEST(IntegrationTest, CircuitBayesMatchesSampledFrequencies) {
  // Role 1 loop closure: compiled-circuit marginals ≈ forward-sampling
  // frequencies from the same network.
  BayesianNetwork net = BayesianNetwork::RandomBinary(5, 2, 77);
  CompiledBayesNet circuit(net);
  Rng rng(9);
  std::vector<double> freq(5, 0.0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const BnInstantiation x = net.Sample(rng);
    for (BnVar v = 0; v < 5; ++v) freq[v] += x[v] == 1 ? 1.0 / n : 0.0;
  }
  const BnInstantiation none(5, kUnobserved);
  for (BnVar v = 0; v < 5; ++v) {
    EXPECT_NEAR(circuit.Marginal(v, 1, none), freq[v], 0.015) << "var " << v;
  }
}

TEST(IntegrationTest, RoutePsddRoundTripThroughSerialization) {
  // Role 2 persistence: learn a route distribution, persist parameters,
  // reload into a fresh PSDD over the same base, and keep predicting.
  Graph grid = Graph::Grid(3, 3);
  RouteSpace space(grid, 0, 8);
  Rng rng(15);
  std::vector<Assignment> gps;
  const Assignment favorite = space.RandomRoute(rng);
  for (int i = 0; i < 120; ++i) {
    gps.push_back(i % 3 == 0 ? space.RandomRoute(rng) : favorite);
  }
  Psdd trained = space.MakePsdd();
  trained.LearnParameters(gps, {}, 0.2);
  const std::string snapshot = trained.SerializeParameters();

  Psdd restored = space.MakePsdd();
  ASSERT_TRUE(restored.LoadParameters(snapshot).ok());
  EXPECT_NEAR(restored.Probability(favorite), trained.Probability(favorite),
              1e-15);
  EXPECT_NEAR(restored.KlDivergence(trained), 0.0, 1e-14);
  // The restored model still samples valid routes.
  for (int i = 0; i < 25; ++i) {
    EXPECT_TRUE(grid.IsSimplePath(restored.Sample(rng), 0, 8));
  }
}

TEST(IntegrationTest, KnowledgePlusDataBeatsDataAloneOffDistribution) {
  // The representational claim of Role 2 (paper §4): symbolic knowledge
  // "eliminates situations that are impossible", so a knowledge-aware
  // model assigns zero mass off the constraint even with little data,
  // while an unconstrained model leaks probability there.
  Cnf constraint(4);
  constraint.AddClauseDimacs({4, 3});
  constraint.AddClauseDimacs({-1, 4});
  constraint.AddClauseDimacs({-2, 1, 3});
  SddManager with_knowledge(Vtree::Balanced({2, 1, 3, 0}));
  const SddId base = CompileCnf(with_knowledge, constraint);
  SddManager without_knowledge(Vtree::Balanced({2, 1, 3, 0}));

  // Tiny dataset: 6 valid examples.
  std::vector<Assignment> data = {
      {false, false, true, false}, {false, false, false, true},
      {true, false, false, true},  {false, true, true, true},
      {false, false, true, true},  {true, true, true, true}};
  Psdd knowledge_model(with_knowledge, base);
  knowledge_model.LearnParameters(data, {}, 1.0);  // smoothed, small data
  Psdd data_only(without_knowledge, without_knowledge.True());
  data_only.LearnParameters(data, {}, 1.0);

  double leaked = 0.0;
  for (int bits = 0; bits < 16; ++bits) {
    Assignment x(4);
    for (Var v = 0; v < 4; ++v) x[v] = (bits >> v) & 1;
    const bool valid = constraint.Evaluate(x);
    if (!valid) {
      EXPECT_EQ(knowledge_model.Probability(x), 0.0);
      leaked += data_only.Probability(x);
    }
  }
  EXPECT_GT(leaked, 0.05);  // the unconstrained model wastes real mass
}

}  // namespace
}  // namespace tbc
