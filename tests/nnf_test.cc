#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "base/random.h"
#include "nnf/io.h"
#include "nnf/nnf.h"
#include "nnf/properties.h"
#include "nnf/queries.h"

namespace tbc {
namespace {

// Builds the paper's running-example d-DNNF over variables A=0, K=1, L=2,
// P=3 (Figures 5-9 and 13): the compilation of the course constraint
// (P∨L) ∧ (A⇒P) ∧ (K⇒(A∨L)), which has 9 of 16 satisfying inputs.
// Structure follows Fig 9: a multiplexer with primes over {L,K} and subs
// over {P,A}, per the vtree ((L K) (P A)) of Fig 10(a).
NnfId BuildPaperCircuit(NnfManager& m) {
  const Var kA = 0, kK = 1, kL = 2, kP = 3;
  NnfId a = m.Literal(Pos(kA)), na = m.Literal(Neg(kA));
  NnfId k = m.Literal(Pos(kK)), nk = m.Literal(Neg(kK));
  NnfId l = m.Literal(Pos(kL)), nl = m.Literal(Neg(kL));
  NnfId p = m.Literal(Pos(kP)), np = m.Literal(Neg(kP));

  // Primes over {L, K}: L (smoothed), ¬L∧K, ¬L∧¬K.
  NnfId p1 = m.And(l, m.Or(k, nk));
  NnfId p2 = m.And(nl, k);
  NnfId p3 = m.And(nl, nk);
  // Subs over {P, A}: A⇒P (smoothed), A∧P, P (smoothed).
  NnfId s1 = m.Or(m.And(a, p), m.And(na, m.Or(p, np)));
  NnfId s2 = m.And(a, p);
  NnfId s3 = m.And(p, m.Or(a, na));

  return m.Or({m.And(p1, s1), m.And(p2, s2), m.And(p3, s3)});
}

// Brute-force count of (P∨L) ∧ (A⇒P) ∧ (K⇒(A∨L)).
int PaperCircuitBruteCount() {
  int count = 0;
  for (int bits = 0; bits < 16; ++bits) {
    bool a = bits & 1, k = bits & 2, l = bits & 4, p = bits & 8;
    bool f = (p || l) && (!a || p) && (!k || a || l);
    count += f;
  }
  return count;
}

TEST(NnfManagerTest, ConstantsAndSimplification) {
  NnfManager m;
  EXPECT_EQ(m.And(m.True(), m.False()), m.False());
  EXPECT_EQ(m.Or(m.True(), m.False()), m.True());
  NnfId x = m.Literal(Pos(0));
  EXPECT_EQ(m.And(x, m.True()), x);
  EXPECT_EQ(m.Or(x, m.False()), x);
  EXPECT_EQ(m.And(x, x), x);
  // Or(x, ~x) must NOT simplify: it is a smoothing gate.
  NnfId nx = m.Literal(Neg(0));
  NnfId triv = m.Or(x, nx);
  EXPECT_NE(triv, m.True());
  EXPECT_EQ(m.kind(triv), NnfManager::Kind::kOr);
}

TEST(NnfManagerTest, HashConsing) {
  NnfManager m;
  NnfId x = m.Literal(Pos(0)), y = m.Literal(Pos(1));
  EXPECT_EQ(m.And(x, y), m.And(y, x));
  EXPECT_EQ(m.Literal(Pos(0)), x);
}

TEST(NnfManagerTest, DecisionGate) {
  NnfManager m;
  NnfId hi = m.Literal(Pos(1)), lo = m.Literal(Neg(1));
  NnfId d = m.Decision(0, hi, lo);  // x0 ? x1 : ~x1  == (x0 <-> x1)... no:
  // d = (x0∧x1) ∨ (¬x0∧¬x1), which is x0 <-> x1.
  EXPECT_TRUE(m.Evaluate(d, {true, true}));
  EXPECT_TRUE(m.Evaluate(d, {false, false}));
  EXPECT_FALSE(m.Evaluate(d, {true, false}));
  EXPECT_EQ(m.Decision(0, hi, hi), hi);  // redundant decision collapses
}

TEST(NnfManagerTest, EvaluateAndCircuitSize) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  EXPECT_GT(m.CircuitSize(root), 10u);
  // Spot-check a few inputs. Vars: A=0,K=1,L=2,P=3.
  EXPECT_TRUE(m.Evaluate(root, {false, false, true, false}));   // L only
  EXPECT_TRUE(m.Evaluate(root, {false, false, false, true}));   // P only
  EXPECT_FALSE(m.Evaluate(root, {false, false, false, false}));
  EXPECT_FALSE(m.Evaluate(root, {true, true, true, false}));    // A without P
}

TEST(NnfManagerTest, VarSets) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  EXPECT_EQ(m.NumVarsBelow(root), 4u);
  NnfId x = m.Literal(Pos(2));
  EXPECT_EQ(m.NumVarsBelow(x), 1u);
}

TEST(NnfPropertiesTest, PaperCircuitIsDecomposableDeterministicSmooth) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  EXPECT_TRUE(IsDecomposable(m, root));
  EXPECT_TRUE(IsSmooth(m, root));
  EXPECT_TRUE(IsDeterministicExhaustive(m, root, 4));
}

TEST(NnfPropertiesTest, DetectsNonDecomposable) {
  NnfManager m;
  NnfId bad = m.And(m.Literal(Pos(0)), m.Or(m.Literal(Neg(0)), m.Literal(Pos(1))));
  EXPECT_FALSE(IsDecomposable(m, bad));
}

TEST(NnfPropertiesTest, DetectsNonDeterministic) {
  NnfManager m;
  NnfId bad = m.Or(m.Literal(Pos(0)), m.Literal(Pos(1)));  // both high at 11
  EXPECT_FALSE(IsDeterministicExhaustive(m, bad, 2));
}

TEST(NnfPropertiesTest, SmoothingEnforcesSmoothness) {
  NnfManager m;
  // Non-smooth deterministic DNNF: x0 ∨ (¬x0 ∧ x1).
  NnfId f = m.Or(m.Literal(Pos(0)), m.And(m.Literal(Neg(0)), m.Literal(Pos(1))));
  EXPECT_FALSE(IsSmooth(m, f));
  NnfId s = Smooth(m, f, 2);
  EXPECT_TRUE(IsSmooth(m, s));
  EXPECT_TRUE(IsDecomposable(m, s));
  EXPECT_TRUE(IsDeterministicExhaustive(m, s, 2));
  // Equivalent: same models.
  for (int bits = 0; bits < 4; ++bits) {
    Assignment a = {(bits & 1) != 0, (bits & 2) != 0};
    EXPECT_EQ(m.Evaluate(f, a), m.Evaluate(s, a));
  }
}

TEST(NnfPropertiesTest, DecisionProperty) {
  NnfManager m;
  NnfId d = m.Decision(0, m.Literal(Pos(1)), m.Literal(Neg(1)));
  EXPECT_TRUE(IsDecision(m, d));
  NnfId not_decision = m.Or(m.And(m.Literal(Pos(0)), m.Literal(Pos(1))),
                            m.And(m.Literal(Pos(2)), m.Literal(Pos(3))));
  EXPECT_FALSE(IsDecision(m, not_decision));
}

TEST(NnfQueriesTest, SatDnnf) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  EXPECT_TRUE(IsSatDnnf(m, root));
  EXPECT_FALSE(IsSatDnnf(m, m.False()));
  NnfId contradiction = m.And(m.Literal(Pos(0)), m.False());
  EXPECT_FALSE(IsSatDnnf(m, contradiction));
}

TEST(NnfQueriesTest, ModelCountMatchesPaperFigure8) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  // Figure 8: the circuit has 9 satisfying inputs out of 16.
  EXPECT_EQ(ModelCount(m, root, 4), BigUint(9));
  EXPECT_EQ(PaperCircuitBruteCount(), 9);
}

TEST(NnfQueriesTest, ModelCountWithGapFactors) {
  NnfManager m;
  // Non-smooth: x0 ∨ (¬x0 ∧ x1) has 3 models over 2 vars, 6 over 3 vars.
  NnfId f = m.Or(m.Literal(Pos(0)), m.And(m.Literal(Neg(0)), m.Literal(Pos(1))));
  EXPECT_EQ(ModelCount(m, f, 2), BigUint(3));
  EXPECT_EQ(ModelCount(m, f, 3), BigUint(6));
}

TEST(NnfQueriesTest, WmcUniformEqualsCount) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  WeightMap w(4);  // all ones
  EXPECT_DOUBLE_EQ(Wmc(m, root, w), 9.0);
  // Halving both literals of a variable halves the WMC.
  w.Set(Pos(0), 0.5);
  w.Set(Neg(0), 0.5);
  EXPECT_DOUBLE_EQ(Wmc(m, root, w), 4.5);
}

TEST(NnfQueriesTest, WmcMatchesBruteForce) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  WeightMap w(4);
  w.Set(Pos(0), 0.3);
  w.Set(Neg(0), 0.7);
  w.Set(Pos(1), 2.0);
  w.Set(Neg(1), 0.25);
  w.Set(Pos(3), 0.9);
  w.Set(Neg(3), 0.1);
  double brute = 0.0;
  for (int bits = 0; bits < 16; ++bits) {
    Assignment asg = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0,
                      (bits & 8) != 0};
    if (!m.Evaluate(root, asg)) continue;
    double term = 1.0;
    for (Var v = 0; v < 4; ++v) term *= w[Lit(v, asg[v])];
    brute += term;
  }
  EXPECT_NEAR(Wmc(m, root, w), brute, 1e-12);
}

TEST(NnfQueriesTest, MarginalWmcMatchesConditionedWmc) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  WeightMap w(4);
  w.Set(Pos(0), 0.6);
  w.Set(Neg(0), 0.4);
  w.Set(Pos(2), 1.5);
  std::vector<double> marg = MarginalWmc(m, root, w);
  for (Var v = 0; v < 4; ++v) {
    for (bool sign : {true, false}) {
      const Lit l(v, sign);
      NnfId cond = m.Condition(root, l);
      // WMC(Δ|l) * W(l) over remaining vars equals WMC(Δ ∧ l) except that
      // Wmc() multiplies the free var v by (W(v)+W(¬v)); compute directly.
      double brute = 0.0;
      for (int bits = 0; bits < 16; ++bits) {
        Assignment asg = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0,
                          (bits & 8) != 0};
        if (!Eval(l, asg) || !m.Evaluate(root, asg)) continue;
        double term = 1.0;
        for (Var u = 0; u < 4; ++u) term *= w[Lit(u, asg[u])];
        brute += term;
      }
      EXPECT_NEAR(marg[l.code()], brute, 1e-12)
          << "literal " << l.ToDimacs();
      (void)cond;
    }
  }
}

TEST(NnfQueriesTest, MinCardinality) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  // Minimum positive literals among the 9 models: ¬L ∧ P ∧ ¬A ∧ (K free->0)
  // gives exactly one positive literal (P).
  EXPECT_EQ(MinCardinality(m, root), 1u);
  EXPECT_EQ(MinCardinality(m, m.False()), SIZE_MAX);
  EXPECT_EQ(MinCardinality(m, m.True()), 0u);
}

TEST(NnfQueriesTest, MaxWmcFindsMpe) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  WeightMap w(4);
  w.Set(Pos(0), 0.9);
  w.Set(Neg(0), 0.1);
  w.Set(Pos(1), 0.2);
  w.Set(Neg(1), 0.8);
  w.Set(Pos(2), 0.7);
  w.Set(Neg(2), 0.3);
  w.Set(Pos(3), 0.6);
  w.Set(Neg(3), 0.4);
  MpeResult mpe = MaxWmc(m, root, w, 4);
  // Brute-force the maximum.
  double best = -1.0;
  for (int bits = 0; bits < 16; ++bits) {
    Assignment asg = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0,
                      (bits & 8) != 0};
    if (!m.Evaluate(root, asg)) continue;
    double term = 1.0;
    for (Var v = 0; v < 4; ++v) term *= w[Lit(v, asg[v])];
    best = std::max(best, term);
  }
  EXPECT_NEAR(mpe.weight, best, 1e-12);
  EXPECT_TRUE(m.Evaluate(root, mpe.assignment));
}

TEST(NnfQueriesTest, ConditionRestrictsModels) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  NnfId cond = m.Condition(root, Pos(2));  // L = true
  // f|L = (A⇒P), K free: 6 models over {A,K,P}; L becomes free in the
  // conditioned circuit, so over 4 variables the count doubles to 12.
  EXPECT_EQ(ModelCount(m, cond, 4), BigUint(12));
  // f|¬L = (K⇒A) ∧ (A⇒P) ∧ P = (K∧A∧P) ∨ (¬K∧P): 3 over {A,K,P} -> 6.
  NnfId cond2 = m.Condition(root, Neg(2));
  EXPECT_EQ(ModelCount(m, cond2, 4), BigUint(6));
}

TEST(NnfQueriesTest, EnumerateModelsMatchesEvaluate) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  std::set<Assignment> models;
  EnumerateModelsDnnf(m, root, 4, [&](const Assignment& a) {
    EXPECT_TRUE(m.Evaluate(root, a));
    models.insert(a);
  });
  EXPECT_EQ(models.size(), 9u);
}

TEST(NnfIoTest, RoundTrip) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  std::string text = WriteNnf(m, root, 4);
  NnfManager m2;
  auto parsed = ReadNnf(m2, text);
  ASSERT_TRUE(parsed.ok());
  NnfId root2 = parsed.value();
  for (int bits = 0; bits < 16; ++bits) {
    Assignment a = {(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0,
                    (bits & 8) != 0};
    EXPECT_EQ(m.Evaluate(root, a), m2.Evaluate(root2, a));
  }
  EXPECT_EQ(ModelCount(m2, root2, 4), BigUint(9));
}

// Satellite pin for the serialization bug-sweep: WriteNnf -> ReadNnf is
// the identity on semantics AND on the declared variable count, including
// every degenerate shape (constants, lone literals, constant-absorbing
// gates) where the old parse/write asymmetry lost num_vars and accepted
// truncated bodies.
TEST(NnfIoTest, RoundTripPropertyOverDegenerateAndRandomCircuits) {
  constexpr size_t kVars = 4;
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    NnfManager m;
    // Pool starts with every literal plus both constants, then grows by
    // random gates over random earlier entries — degenerate inputs
    // (empty-ish gates, constant children, duplicate children) arise
    // naturally and the manager may canonicalize them arbitrarily.
    std::vector<NnfId> pool = {m.True(), m.False()};
    for (Var v = 0; v < kVars; ++v) {
      pool.push_back(m.Literal(Pos(v)));
      pool.push_back(m.Literal(Neg(v)));
    }
    const size_t gates = rng.Below(8);
    for (size_t g = 0; g < gates; ++g) {
      std::vector<NnfId> kids;
      const size_t arity = 2 + rng.Below(3);
      for (size_t i = 0; i < arity; ++i) {
        kids.push_back(pool[rng.Below(pool.size())]);
      }
      pool.push_back(rng.Below(2) == 0 ? m.And(std::move(kids))
                                         : m.Or(std::move(kids)));
    }
    const NnfId root = pool[rng.Below(pool.size())];

    const std::string text = WriteNnf(m, root, kVars);
    NnfManager m2;
    size_t num_vars = 0;
    auto parsed = ReadNnf(m2, text, &num_vars);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message() << "\n" << text;
    EXPECT_EQ(num_vars, kVars);  // the header round-trips, not just the DAG
    for (int bits = 0; bits < (1 << kVars); ++bits) {
      Assignment a;
      for (size_t v = 0; v < kVars; ++v) a.push_back((bits >> v & 1) != 0);
      ASSERT_EQ(m.Evaluate(root, a), m2.Evaluate(*parsed, a))
          << "trial " << trial << " bits " << bits << "\n" << text;
    }
    // A second hop is byte-stable: parse of the write reproduces the write.
    EXPECT_EQ(WriteNnf(m2, *parsed, num_vars), text);
  }
}

TEST(NnfIoTest, HeaderCountMismatchesAreTypedErrorsNotWrongRoots) {
  NnfManager m;
  const std::string text = WriteNnf(m, BuildPaperCircuit(m), 4);
  // Drop the last body line: every remaining line is still well-formed, so
  // only the header's node/edge counts can expose the truncation.
  std::string truncated = text;
  truncated.pop_back();  // trailing newline
  truncated.erase(truncated.rfind('\n') + 1);
  NnfManager m2;
  auto r = ReadNnf(m2, truncated);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error_code(), StatusCode::kInvalidInput);

  NnfManager m3;
  EXPECT_FALSE(ReadNnf(m3, "nnf 1 0 1\nL 2\n").ok());  // var > declared
  NnfManager m4;
  EXPECT_FALSE(ReadNnf(m4, "nnf 3 2 1\nL 1\nL -1\nO x 2 0 1\n").ok());
  NnfManager m5;  // decision var beyond the declared count
  EXPECT_FALSE(ReadNnf(m5, "nnf 3 2 1\nL 1\nL -1\nO 9 2 0 1\n").ok());
}

TEST(NnfIoTest, ParseErrors) {
  NnfManager m;
  EXPECT_FALSE(ReadNnf(m, "").ok());
  EXPECT_FALSE(ReadNnf(m, "L 1\n").ok());                  // missing header
  EXPECT_FALSE(ReadNnf(m, "nnf 1 0 1\nA 2 0 1\n").ok());   // forward ref
  EXPECT_FALSE(ReadNnf(m, "nnf 1 0 1\nZ\n").ok());         // unknown line
}

TEST(NnfQueriesTest, UniformSamplingMatchesDistribution) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  Rng rng(77);
  std::map<Assignment, int> counts;
  const int trials = 18000;
  for (int i = 0; i < trials; ++i) {
    Assignment x = SampleModelDnnf(m, root, 4, rng);
    EXPECT_TRUE(m.Evaluate(root, x));
    ++counts[x];
  }
  EXPECT_EQ(counts.size(), 9u);  // all models eventually drawn
  for (const auto& [x, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 1.0 / 9.0, 0.015);
  }
}

TEST(NnfQueriesTest, SamplingWithNonSmoothCircuit) {
  NnfManager m;
  // x0 ∨ (¬x0 ∧ x1): 3 models over 2 vars; x0 branch has a free x1.
  NnfId f = m.Or(m.Literal(Pos(0)), m.And(m.Literal(Neg(0)), m.Literal(Pos(1))));
  Rng rng(3);
  std::map<Assignment, int> counts;
  for (int i = 0; i < 9000; ++i) ++counts[SampleModelDnnf(m, f, 2, rng)];
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [x, c] : counts) {
    EXPECT_NEAR(c / 9000.0, 1.0 / 3.0, 0.02);
  }
}

TEST(NnfQueriesTest, ClausalEntailment) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);  // (P∨L) ∧ (A⇒P) ∧ (K⇒(A∨L))
  // Every original clause is entailed.
  EXPECT_TRUE(EntailsClause(m, root, {Pos(3), Pos(2)}));          // P ∨ L
  EXPECT_TRUE(EntailsClause(m, root, {Neg(0), Pos(3)}));          // A ⇒ P
  EXPECT_TRUE(EntailsClause(m, root, {Neg(1), Pos(0), Pos(2)}));  // K⇒(A∨L)
  // Weaker clauses too; unrelated ones are not.
  EXPECT_TRUE(EntailsClause(m, root, {Pos(3), Pos(2), Pos(1)}));
  EXPECT_FALSE(EntailsClause(m, root, {Pos(0)}));
  EXPECT_FALSE(EntailsClause(m, root, {Neg(3)}));
}

TEST(NnfQueriesTest, ForgetMatchesExistentialQuantification) {
  NnfManager m;
  NnfId root = BuildPaperCircuit(m);
  // ∃A. f : an assignment over {K,L,P} is a model iff some extension is.
  NnfId forgotten = Forget(m, root, {0});
  for (int bits = 0; bits < 8; ++bits) {
    Assignment klp = {false, (bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    bool expect = false;
    for (bool a : {false, true}) {
      Assignment full = klp;
      full[0] = a;
      expect |= m.Evaluate(root, full);
    }
    ASSERT_EQ(m.Evaluate(forgotten, klp), expect) << bits;
  }
  // Forgetting everything yields a satisfiable circuit equivalent to ⊤.
  NnfId all_forgotten = Forget(m, root, {0, 1, 2, 3});
  EXPECT_TRUE(IsSatDnnf(m, all_forgotten));
  EXPECT_TRUE(m.Evaluate(all_forgotten, {false, false, false, false}));
}

TEST(NnfIoTest, ConstantsRoundTrip) {
  NnfManager m;
  std::string t = WriteNnf(m, m.True(), 0);
  NnfManager m2;
  auto r = ReadNnf(m2, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), m2.True());
}

}  // namespace
}  // namespace tbc
