// Fault-injection matrix for the serving layer (ISSUE "robustness"): for
// every declared injection point and ≥50 seeds per point, the server must
// (a) never crash, (b) never leak (the CI ASan job runs this binary), and
// (c) answer every request with either a correct result or a well-formed
// typed refusal. A soak test then asserts query results are bit-identical
// across server worker counts while injected churn (cache evictions, slow
// requests) is active, and a drain test proves SIGTERM semantics: in-flight
// requests finish, new ones are refused.

#include <unistd.h>

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/fault.h"
#include "base/guard.h"
#include "base/result.h"
#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace tbc::serve {
namespace {

#if defined(TBC_FAULTS_ENABLED) && TBC_FAULTS_ENABLED

constexpr int kSeedsPerPoint = 50;

ServerOptions LoopbackOptions() {
  ServerOptions opts;
  opts.address.tcp_host = "127.0.0.1";
  opts.address.tcp_port = 0;
  opts.num_workers = 2;
  opts.cache_capacity = 2;
  opts.io_timeout_ms = 2'000;
  return opts;
}

ClientOptions ClientFor(const Server& server) {
  ClientOptions copts;
  copts.address.tcp_host = "127.0.0.1";
  copts.address.tcp_port = server.port();
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff_ms = 1.0;
  copts.retry.max_backoff_ms = 10.0;
  copts.deadline_ms = 10'000.0;
  return copts;
}

// A few tiny CNFs; picking by seed churns the capacity-2 artifact cache.
const char* CnfForSeed(uint64_t seed) {
  static const char* kCnfs[] = {
      "p cnf 3 2\n1 2 0\n-1 3 0\n",
      "p cnf 4 3\n1 2 0\n-2 3 0\n3 4 0\n",
      "p cnf 2 1\n1 -2 0\n",
      "p cnf 5 4\n1 2 3 0\n-1 4 0\n-4 5 0\n2 -5 0\n",
  };
  return kCnfs[seed % (sizeof(kCnfs) / sizeof(kCnfs[0]))];
}

/// One request under whatever fault plan is installed. The contract being
/// asserted: the outcome is a correct answer or a *typed* error — the
/// process never dies, the client never hangs, no response is half-parsed.
void RunOneRequest(Client& client, uint64_t seed) {
  Request req;
  req.op = seed % 3 == 0 ? Op::kCount : (seed % 3 == 1 ? Op::kWmc : Op::kMar);
  req.cnf_text = CnfForSeed(seed);
  req.timeout_ms = 5'000.0;
  auto resp = client.Call(req);
  if (resp.ok()) {
    if (!resp->ok()) {
      // Any server-sent failure must be typed (never kOk with garbage,
      // never an unknown code — Parse already rejected those).
      EXPECT_NE(resp->status, StatusCode::kOk);
      EXPECT_FALSE(resp->message.empty());
    }
  } else {
    // Transport-level failure after retries: must be typed too.
    EXPECT_FALSE(resp.status().ok());
    EXPECT_FALSE(resp.status().message().empty());
  }
}

TEST(ServeFaults, EveryPointEverySeedAnswersTypedOrSucceeds) {
  auto server = Server::Start(LoopbackOptions());
  ASSERT_TRUE(server.ok()) << server.status().message();

  for (std::string_view point : fault::KnownPoints()) {
    SCOPED_TRACE(std::string(point));
    for (int seed = 1; seed <= kSeedsPerPoint; ++seed) {
      fault::FaultPlan plan(static_cast<uint64_t>(seed));
      plan.SetProbability(point, 0.5);
      fault::ScopedFaultPlan scope(&plan);
      Client client(ClientFor(**server));
      for (uint64_t r = 0; r < 3; ++r) {
        RunOneRequest(client, static_cast<uint64_t>(seed) * 17 + r);
      }
    }
    // Liveness after the storm: with no plan installed, a fresh request
    // must succeed outright.
    Client client(ClientFor(**server));
    Request ping;
    ping.op = Op::kPing;
    auto pong = client.Call(ping);
    ASSERT_TRUE(pong.ok()) << point << ": " << pong.status().message();
    EXPECT_TRUE(pong->ok());
  }
  (*server)->Shutdown();
}

TEST(ServeFaults, PlanDecisionsAreDeterministicPerSeed) {
  for (uint64_t seed : {1ull, 7ull, 20260807ull}) {
    std::vector<bool> a, b;
    for (int run = 0; run < 2; ++run) {
      fault::FaultPlan plan(seed, 0.3);
      auto& out = run == 0 ? a : b;
      for (size_t p = 0; p < fault::kNumPoints; ++p) {
        for (int hit = 0; hit < 100; ++hit) {
          out.push_back(plan.ShouldFire(p));
        }
      }
    }
    EXPECT_EQ(a, b) << "seed " << seed;
  }
  // Different seeds must differ somewhere (sanity: the seed is live).
  fault::FaultPlan p1(1, 0.3), p2(2, 0.3);
  bool differs = false;
  for (int hit = 0; hit < 200; ++hit) {
    differs = differs || (p1.ShouldFire(0) != p2.ShouldFire(0));
  }
  EXPECT_TRUE(differs);
}

TEST(ServeFaults, FireOnHitFiresExactlyOnce) {
  fault::FaultPlan plan(42);
  plan.SetFireOnHit("serve.request.delay", 3);
  const size_t idx = 2;  // index of serve.request.delay in kPointNames
  ASSERT_EQ(fault::KnownPoints()[idx], "serve.request.delay");
  EXPECT_FALSE(plan.ShouldFire(idx));
  EXPECT_FALSE(plan.ShouldFire(idx));
  EXPECT_TRUE(plan.ShouldFire(idx));
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(plan.ShouldFire(idx));
  EXPECT_EQ(plan.fired(), 1u);
}

TEST(ServeFaults, NoPlanMeansNoFires) {
  // TBC_FAULT_POINT must be inert without an installed plan: exercised by
  // running traffic with no ScopedFaultPlan and expecting pure success.
  auto server = Server::Start(LoopbackOptions());
  ASSERT_TRUE(server.ok());
  Client client(ClientFor(**server));
  for (uint64_t r = 0; r < 8; ++r) {
    Request req;
    req.op = Op::kCount;
    req.cnf_text = CnfForSeed(r);
    auto resp = client.Call(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->ok()) << resp->message;
    EXPECT_EQ(client.last_attempts(), 1);
  }
  (*server)->Shutdown();
}

TEST(ServeFaults, ForecastCappedServerStaysTypedUnderFaults) {
  // A width-capped server under the full fault matrix: every request —
  // admitted, refused by forecast, or hit by an injected fault — must
  // produce a well-formed typed response, and a width-refusal must stay
  // kRefusedByForecast (injected faults fire after admission, never
  // corrupt the refusal path).
  ServerOptions opts = LoopbackOptions();
  opts.max_forecast_width = 3;
  auto server = Server::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().message();

  std::string wide = "p cnf 12 1\n";  // 12-clique: width 11 > cap 3
  for (int v = 1; v <= 12; ++v) wide += std::to_string(v) + " ";
  wide += "0\n";

  for (std::string_view point : fault::KnownPoints()) {
    SCOPED_TRACE(std::string(point));
    for (int seed = 1; seed <= 10; ++seed) {
      fault::FaultPlan plan(static_cast<uint64_t>(seed));
      plan.SetProbability(point, 0.5);
      fault::ScopedFaultPlan scope(&plan);
      Client client(ClientFor(**server));
      // Normal traffic: typed success or typed refusal, as elsewhere.
      RunOneRequest(client, static_cast<uint64_t>(seed) * 13 + 1);
      // Over-width traffic: the refusal must survive injected churn.
      Request req;
      req.op = Op::kCount;
      req.cnf_text = wide;
      req.timeout_ms = 5'000.0;
      auto resp = client.Call(req);
      if (resp.ok()) {
        // Injected faults may pre-empt the forecast (garbage frames parse
        // as kInvalidInput, injected cancels as kCancelled), but the wide
        // CNF must never compile successfully and every failure is typed.
        EXPECT_NE(resp->status, StatusCode::kOk);
        EXPECT_FALSE(resp->message.empty());
      } else {
        // Transport-level injected failure: typed, like every other path.
        EXPECT_FALSE(resp.status().ok());
      }
    }
  }
  (*server)->Shutdown();
}

TEST(ServeFaults, DrainFinishesInFlightRequests) {
  auto server = Server::Start(LoopbackOptions());
  ASSERT_TRUE(server.ok());

  // The first executed request sleeps 150ms inside Execute: a drain
  // starting while it runs must let it finish with a correct answer.
  fault::FaultPlan plan(1);
  plan.SetFireOnHit("serve.request.delay", 1);
  fault::ScopedFaultPlan scope(&plan);

  std::string count;
  std::thread in_flight([&] {
    ClientOptions copts = ClientFor(**server);
    copts.retry.max_attempts = 1;  // a drained request must NOT be retried
    Client client(copts);
    Request req;
    req.op = Op::kCount;
    req.cnf_text = "p cnf 3 2\n1 2 0\n-1 3 0\n";
    auto resp = client.Call(req);
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    ASSERT_TRUE(resp->ok()) << resp->message;
    count = resp->count;
  });

  // Wait until the slow request is actually executing, then drain.
  while ((*server)->executing_requests() == 0 && plan.fired() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  (*server)->Shutdown();
  in_flight.join();
  EXPECT_EQ(count, "4");  // the in-flight request completed correctly
  EXPECT_EQ((*server)->active_connections(), 0u);
}

// Bit-identical soak: the same query mix must produce byte-identical
// results at every server worker count, run twice each, while injected
// churn (forced cache evictions + slow requests) shakes the artifact
// lifecycle. Queries run serially per request on warmed artifacts, so
// worker count must not leak into numerics.
TEST(ServeFaults, SoakResultsBitIdenticalAcrossWorkerCounts) {
  constexpr int kClientThreads = 4;
  constexpr int kRequestsPerThread = 12;

  auto run_soak = [&](size_t workers) {
    ServerOptions opts = LoopbackOptions();
    opts.num_workers = workers;
    auto server = Server::Start(opts);
    EXPECT_TRUE(server.ok());

    fault::FaultPlan plan(99);
    plan.SetProbability("serve.cache.evict", 0.5);
    plan.SetProbability("serve.request.delay", 0.1);
    fault::ScopedFaultPlan scope(&plan);

    // request id -> serialized result; every request must succeed (the
    // injected points here are non-failing churn).
    std::map<int, std::string> results;
    std::mutex mu;
    std::vector<std::thread> threads;
    for (int t = 0; t < kClientThreads; ++t) {
      threads.emplace_back([&, t] {
        Client client(ClientFor(**server));
        for (int r = 0; r < kRequestsPerThread; ++r) {
          const int id = t * kRequestsPerThread + r;
          Request req;
          req.op = id % 2 == 0 ? Op::kWmc : Op::kMar;
          req.cnf_text = CnfForSeed(static_cast<uint64_t>(id));
          req.weights = {{1, 0.25}, {-1, 0.75}, {2, 0.5}};
          auto resp = client.Call(req);
          ASSERT_TRUE(resp.ok()) << resp.status().message();
          ASSERT_TRUE(resp->ok()) << resp->message;
          // Render only the numeric answer (hexfloats: byte equality ==
          // bit equality). cache hit/miss legitimately varies with the
          // injected eviction churn; the *answers* must not.
          std::string rendered = resp->artifact + "\n";
          if (resp->has_wmc) rendered += "wmc " + EncodeDouble(resp->wmc) + "\n";
          for (const auto& [lit, w] : resp->marginals) {
            rendered += std::to_string(lit) + " " + EncodeDouble(w) + "\n";
          }
          std::lock_guard<std::mutex> lock(mu);
          results[id] = std::move(rendered);
        }
      });
    }
    for (auto& t : threads) t.join();
    (*server)->Shutdown();
    return results;
  };

  const auto baseline = run_soak(1);
  ASSERT_EQ(baseline.size(),
            static_cast<size_t>(kClientThreads * kRequestsPerThread));
  for (size_t workers : {1u, 4u}) {
    const auto got = run_soak(workers);
    EXPECT_EQ(got, baseline) << "workers=" << workers;
  }
}

#else  // TBC_FAULTS disabled: the matrix has nothing to inject.

TEST(ServeFaults, SkippedWithoutFaultBuild) {
  GTEST_SKIP() << "built with TBC_FAULTS=OFF";
}

#endif  // TBC_FAULTS_ENABLED

}  // namespace
}  // namespace tbc::serve
