#!/usr/bin/env bash
# Smoke-tests the unified CLI exit-code contract (README "Exit codes"):
#
#   0  success
#   1  usage error or input/IO error
#   2  lint reject (tbc_lint) / certificate reject (tbc_certify) /
#      circuit store reject (kc_cli --load-circuit on corrupt bytes)
#   3  typed resource refusal (budget/deadline/overload/unavailable)
#   4  certificate reject during an in-process kc_cli --certify run
#
# Usage: tools/check_exit_codes.sh \
#          [kc_cli [tbc_lint [tbc_certify [tbc_client [tbc_analyze]]]]]
#   Binaries default to build/examples/<name>.

set -uo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
KC="${1:-$ROOT/build/examples/kc_cli}"
LINT="${2:-$ROOT/build/examples/tbc_lint}"
CERTIFY="${3:-$ROOT/build/examples/tbc_certify}"
CLIENT="${4:-$ROOT/build/examples/tbc_client}"
ANALYZE="${5:-$ROOT/build/examples/tbc_analyze}"

for bin in "$KC" "$LINT" "$CERTIFY"; do
  if [[ ! -x "$bin" ]]; then
    echo "check_exit_codes: $bin not found (build first)" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILED=0

expect() {
  local want="$1" label="$2"
  shift 2
  "$@" >/dev/null 2>&1
  local got=$?
  if [[ "$got" != "$want" ]]; then
    echo "check_exit_codes: FAIL $label: want exit $want, got $got: $*" >&2
    FAILED=1
  else
    echo "check_exit_codes: ok   $label (exit $got)"
  fi
}

printf 'p cnf 3 2\n1 2 0\n-1 3 0\n' > "$TMP/good.cnf"
# A hard random 3-CNF at the phase transition: guaranteed to blow a
# 50-node budget, so kc_cli must answer a typed refusal (3).
python3 - "$TMP/hard.cnf" <<'PY'
import random, sys
random.seed(7)
n, m = 60, 256
with open(sys.argv[1], "w") as f:
    f.write(f"p cnf {n} {m}\n")
    for _ in range(m):
        vs = random.sample(range(1, n + 1), 3)
        f.write(" ".join(str(v if random.random() < 0.5 else -v) for v in vs) + " 0\n")
PY

# kc_cli: 0 / 1 / 3 / (4 via --certify on a reject, not reachable from
# well-formed input — the tamper path is covered through tbc_certify).
expect 0 "kc_cli compiles"              "$KC" "$TMP/good.cnf"
expect 1 "kc_cli no args"               "$KC"
expect 1 "kc_cli missing file"          "$KC" "$TMP/nope.cnf"
expect 1 "kc_cli bad flag value"        "$KC" "$TMP/good.cnf" --timeout-ms=banana
expect 1 "kc_cli unknown target"        "$KC" "$TMP/good.cnf" --target=dnf
expect 3 "kc_cli budget refusal"        "$KC" "$TMP/hard.cnf" --max-nodes=50
expect 0 "kc_cli certify ok"            "$KC" "$TMP/good.cnf" --certify

# In-place SDD minimization flags: bad mode / orphan threshold are usage
# errors (1), valid modes compile fine (0), and a starved minimizing run
# still answers with the typed budget refusal (3), not a crash.
expect 1 "kc_cli bad sdd-minimize"      "$KC" "$TMP/good.cnf" --target=sdd \
           --sdd-minimize=banana
expect 1 "kc_cli orphan sdd threshold"  "$KC" "$TMP/good.cnf" --target=sdd \
           --sdd-minimize-threshold=1.5
expect 0 "kc_cli sdd-minimize auto"     "$KC" "$TMP/good.cnf" --target=sdd \
           --sdd-minimize=auto
expect 0 "kc_cli sdd-minimize aggressive" "$KC" "$TMP/good.cnf" --target=sdd \
           --sdd-minimize=aggressive --sdd-minimize-threshold=1.25
expect 0 "kc_cli in-place minimize"     "$KC" "$TMP/good.cnf" --target=sdd \
           --minimize=32
expect 0 "kc_cli recompile minimize"    "$KC" "$TMP/good.cnf" --target=sdd \
           --minimize-recompile=32
expect 3 "kc_cli minimize under budget" "$KC" "$TMP/hard.cnf" --target=sdd \
           --minimize=1000 --sdd-minimize=aggressive --max-nodes=50

# kc_cli circuit store: save (0), load (0), corrupt store (2, the typed
# kInvalidInput reject — deeper coverage lives in check_store.sh),
# missing store (1), save under a non-ddnnf target (1).
"$KC" "$TMP/good.cnf" --save-circuit="$TMP/good.tbc" >/dev/null 2>&1
expect 0 "kc_cli save-circuit"          "$KC" "$TMP/good.cnf" \
           --save-circuit="$TMP/good.tbc"
expect 0 "kc_cli load-circuit"          "$KC" --load-circuit="$TMP/good.tbc"
head -c 100 "$TMP/good.tbc" > "$TMP/cut.tbc"
expect 2 "kc_cli corrupt store reject"  "$KC" --load-circuit="$TMP/cut.tbc"
expect 1 "kc_cli missing store"         "$KC" --load-circuit="$TMP/nope.tbc"
expect 1 "kc_cli save non-ddnnf"        "$KC" "$TMP/good.cnf" --target=sdd \
           --save-circuit="$TMP/bad.tbc"

# tbc_lint: 0 / 1 / 2.
"$KC" "$TMP/good.cnf" --write-nnf="$TMP/good.nnf" >/dev/null 2>&1
printf 'nnf 4 4 2\nL 1\nL 2\nA 2 0 1\nO 1 2 2 1\n' > "$TMP/nondet.nnf"
expect 0 "tbc_lint clean circuit"       "$LINT" "$TMP/good.nnf"
expect 1 "tbc_lint no args"             "$LINT"
expect 1 "tbc_lint missing file"        "$LINT" "$TMP/nope.nnf"
expect 2 "tbc_lint determinism reject"  "$LINT" "$TMP/nondet.nnf"

# tbc_certify: 0 / 1 / 2 (tampered certificate must be *rejected*, not
# crash and not pass).
"$KC" "$TMP/good.cnf" --certify-out="$TMP/cert.txt" >/dev/null 2>&1
sed 's/^count 4$/count 5/' "$TMP/cert.txt" > "$TMP/tampered.txt"
expect 0 "tbc_certify valid cert"       "$CERTIFY" "$TMP/cert.txt"
expect 1 "tbc_certify no args"          "$CERTIFY"
expect 1 "tbc_certify missing file"     "$CERTIFY" "$TMP/nope.txt"
expect 2 "tbc_certify tampered cert"    "$CERTIFY" "$TMP/tampered.txt"

# tbc_client: 0 ok / 1 usage / 3 typed refusal. A dead server is a typed
# kUnavailable refusal after retries — scripts can tell "retry later" (3)
# from "fix your invocation" (1).
if [[ -x "$CLIENT" ]]; then
  expect 1 "tbc_client no args"         "$CLIENT"
  expect 1 "tbc_client bad op"          "$CLIENT" --connect=:1 --op=nonsense
  expect 3 "tbc_client dead server"     "$CLIENT" --connect=tcp:127.0.0.1:1 \
             --op=ping --retries=1 --deadline-ms=2000
fi

# tbc_analyze: 0 clean / 1 usage-IO / 2 unparseable CNF / 3 over the
# --max-width forecast cap. The wide clause makes the primal graph a
# 30-clique (predicted width 29).
if [[ -x "$ANALYZE" ]]; then
  printf 'p cnf 30 1\n%s0\n' "$(seq -s' ' 1 30) " > "$TMP/wide.cnf"
  printf 'p cnf oops\n' > "$TMP/bad.cnf"
  expect 0 "tbc_analyze clean"          "$ANALYZE" "$TMP/good.cnf"
  expect 1 "tbc_analyze no args"        "$ANALYZE"
  expect 1 "tbc_analyze missing file"   "$ANALYZE" "$TMP/nope.cnf"
  expect 1 "tbc_analyze bad format"     "$ANALYZE" --format=yaml "$TMP/good.cnf"
  expect 2 "tbc_analyze bad cnf"        "$ANALYZE" "$TMP/bad.cnf"
  expect 3 "tbc_analyze over width cap" "$ANALYZE" --max-width=10 "$TMP/wide.cnf"
  expect 0 "tbc_analyze under width cap" "$ANALYZE" --max-width=29 "$TMP/wide.cnf"
  # An empty-but-readable file is unparseable CNF (2), not an I/O error
  # (1); an unreadable file among good ones still exits 1 but must not
  # truncate the JSON array mid-list.
  : > "$TMP/empty.cnf"
  expect 2 "tbc_analyze empty file"     "$ANALYZE" "$TMP/empty.cnf"
  expect 1 "tbc_analyze missing among good" \
    "$ANALYZE" --format=json "$TMP/nope.cnf" "$TMP/good.cnf"
  # Capture first: tbc_analyze exits 1 here by design, which would trip
  # pipefail even when the JSON itself is fine.
  "$ANALYZE" --format=json "$TMP/nope.cnf" "$TMP/good.cnf" \
    > "$TMP/io.json" 2>/dev/null
  if ! python3 -c '
import json, sys
reports = json.load(sys.stdin)
assert len(reports) == 2, "expected one entry per listed file"
assert any("structure.io" in json.dumps(r["diagnostics"]) for r in reports)
' < "$TMP/io.json"; then
    echo "check_exit_codes: FAIL tbc_analyze json with unreadable file is" \
         "not a complete array" >&2
    FAILED=1
  else
    echo "check_exit_codes: ok   tbc_analyze json array complete on IO error"
  fi
fi

# tbc_serve: minimize-flag validation happens before binding the socket —
# a bad mode or an orphan threshold is a usage error (1), never a hang.
SERVE="$ROOT/build/examples/tbc_serve"
if [[ -x "$SERVE" ]]; then
  expect 1 "tbc_serve bad sdd-minimize" "$SERVE" \
             --listen=unix:"$TMP/serve.sock" --sdd-minimize=banana
  expect 1 "tbc_serve orphan sdd threshold" "$SERVE" \
             --listen=unix:"$TMP/serve.sock" --sdd-minimize-threshold=2.0
fi

if [[ "$FAILED" != 0 ]]; then
  echo "check_exit_codes: FAILED" >&2
  exit 1
fi
echo "check_exit_codes: all exit codes conform"
