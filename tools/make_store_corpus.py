#!/usr/bin/env python3
"""Regenerates tests/corpus/store/: a golden valid `.tbc` store plus
adversarial corruptions of it.

The corpus is committed; this script exists so the files can be rebuilt
deterministically if the format version is ever bumped. It hand-encodes the
format from scratch (mirroring src/store/format.h) rather than shelling out
to kc_cli, so the corpus does not depend on compiler output stability.

Usage: tools/make_store_corpus.py [output_dir]   (default tests/corpus/store)
"""

import os
import struct
import sys

M64 = (1 << 64) - 1

HEADER_SIZE = 64
NUM_SECTIONS = 6
TABLE_OFFSET = HEADER_SIZE
DATA_OFFSET = HEADER_SIZE + NUM_SECTIONS * 32
MAGIC = b"TBCSTORE"
VERSION = 1
CHECKSUM_FIELD_OFFSET = 48  # offsetof(StoreHeader, header_checksum)


def hash_u64(x):
    """splitmix64 finalizer (base/hash.h HashU64)."""
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & M64
    return (x ^ (x >> 31)) & M64


def hash_bytes(data):
    """128-bit content hash (base/hash.h HashBytes): (lo, hi)."""
    a = 0xCBF29CE484222325
    b = 0x9AE16A3B2F90404F
    for byte in data:
        a = ((a ^ byte) * 0x100000001B3) & M64
        b = ((((b ^ byte) * 0x00000100000001B3) & M64) ^ (b >> 47)) & M64
    return hash_u64(a), hash_u64((b ^ len(data)) & M64)


def fold(lo, hi):
    """Header-checksum fold (store/store.cc FoldChecksum)."""
    return (lo ^ hash_u64(hi)) & M64


def align8(x):
    return (x + 7) & ~7


def build_store(num_vars, num_nodes, root, num_edges, kinds, payloads,
                child_begin, children, cnf_text=b"", model_count_limbs=None):
    """Serializes a store file; returns bytes."""
    sections_payload = [
        bytes(kinds),
        b"".join(struct.pack("<I", p) for p in payloads),
        b"".join(struct.pack("<Q", c) for c in child_begin),
        b"".join(struct.pack("<I", c) for c in children),
        cnf_text,
        b"" if model_count_limbs is None else b"".join(
            struct.pack("<Q", limb) for limb in model_count_limbs),
    ]
    flags = (1 if cnf_text else 0) | (2 if model_count_limbs is not None else 0)

    table = []
    offset = DATA_OFFSET
    for payload in sections_payload:
        if not payload:
            table.append((0, 0, 0, 0))
            continue
        offset = align8(offset)
        lo, hi = hash_bytes(payload)
        table.append((offset, len(payload), lo, hi))
        offset += len(payload)

    header = struct.pack("<8sIIQIIQII QQ".replace(" ", ""), MAGIC, VERSION,
                         flags, num_vars, num_nodes, root, num_edges,
                         NUM_SECTIONS, 0, 0, 0)
    assert len(header) == HEADER_SIZE
    table_bytes = b"".join(struct.pack("<QQQQ", *entry) for entry in table)
    head = bytearray(header + table_bytes)
    checksum = fold(*hash_bytes(bytes(head)))
    head[CHECKSUM_FIELD_OFFSET:CHECKSUM_FIELD_OFFSET + 8] = struct.pack(
        "<Q", checksum)

    out = bytearray(head)
    for (off, size, _, _), payload in zip(table, sections_payload):
        if size == 0:
            continue
        out.extend(b"\x00" * (off - len(out)))
        out.extend(payload)
    return bytes(out)


def patch_header(store, **fields):
    """Rewrites header fields and recomputes the header checksum (so the
    corruption under test is reached, not masked by the checksum gate)."""
    offsets = {"version": (8, "<I"), "flags": (12, "<I"),
               "num_vars": (16, "<Q"), "num_nodes": (24, "<I"),
               "root": (28, "<I"), "num_edges": (32, "<Q")}
    out = bytearray(store)
    for name, value in fields.items():
        off, fmt = offsets[name]
        out[off:off + struct.calcsize(fmt)] = struct.pack(fmt, value)
    out[CHECKSUM_FIELD_OFFSET:CHECKSUM_FIELD_OFFSET + 8] = b"\x00" * 8
    checksum = fold(*hash_bytes(bytes(out[:DATA_OFFSET])))
    out[CHECKSUM_FIELD_OFFSET:CHECKSUM_FIELD_OFFSET + 8] = struct.pack(
        "<Q", checksum)
    return bytes(out)


def patch_section(store, section_id, payload_offset, new_bytes):
    """Rewrites bytes inside a section and recomputes that section's
    checksum plus the header checksum."""
    out = bytearray(store)
    entry = TABLE_OFFSET + section_id * 32
    off, size = struct.unpack_from("<QQ", out, entry)
    out[off + payload_offset:off + payload_offset + len(new_bytes)] = new_bytes
    lo, hi = hash_bytes(bytes(out[off:off + size]))
    struct.pack_into("<QQ", out, entry + 16, lo, hi)
    out[CHECKSUM_FIELD_OFFSET:CHECKSUM_FIELD_OFFSET + 8] = b"\x00" * 8
    checksum = fold(*hash_bytes(bytes(out[:DATA_OFFSET])))
    out[CHECKSUM_FIELD_OFFSET:CHECKSUM_FIELD_OFFSET + 8] = struct.pack(
        "<Q", checksum)
    return bytes(out)


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "tests", "corpus", "store")
    os.makedirs(out_dir, exist_ok=True)

    # Golden store: nodes 0=⊥, 1=⊤, 2=x0, 3=¬x0, 4=Or(2,3) over 1 variable;
    # model count 2, embedded CNF "p cnf 1 0".
    valid = build_store(
        num_vars=1, num_nodes=5, root=4, num_edges=2,
        kinds=[0, 1, 2, 2, 4],          # kFalse kTrue kLiteral kLiteral kOr
        payloads=[0, 0, 0, 1, 0],       # literal codes 2*var+sign
        child_begin=[0, 0, 0, 0, 0, 2],
        children=[2, 3],
        cnf_text=b"p cnf 1 0\n",
        model_count_limbs=[2])

    corpus = {"valid.tbc": valid}

    # Rejected at the magic check.
    corpus["bad_magic.tbc"] = b"XXCSTORE" + valid[8:]
    # Unknown format version (header checksum recomputed so the version
    # check itself is what fires).
    corpus["wrong_version.tbc"] = patch_header(valid, version=99)
    # File ends mid-way through the child_begin section.
    corpus["truncated_section.tbc"] = valid[:300]
    # One flipped bit in the children array; checksums left stale.
    flipped = bytearray(valid)
    flipped[-1] ^= 0x01
    corpus["flipped_checksum.tbc"] = bytes(flipped)
    # Attacker-controlled counts far beyond the file: must be rejected by
    # size arithmetic without any count-proportional allocation.
    corpus["oversized_counts.tbc"] = patch_header(
        valid, num_nodes=0x7FFFFFFF, num_edges=0x0000FFFFFFFFFFFF)
    # Structurally invalid but checksum-clean: child id not below parent.
    corpus["bad_child_order.tbc"] = patch_section(
        valid, 3, 0, struct.pack("<I", 4))
    # Structurally invalid but checksum-clean: a second ⊤ constant at id 2.
    corpus["duplicate_constant.tbc"] = patch_section(
        valid, 0, 2, bytes([1]))

    for name, data in sorted(corpus.items()):
        path = os.path.join(out_dir, name)
        with open(path, "wb") as f:
            f.write(data)
        print(f"wrote {path} ({len(data)} bytes)")


if __name__ == "__main__":
    main()
