#!/usr/bin/env bash
# Validates the machine-readable stats dump against the committed schema.
#
# Runs `kc_cli <cnf> --wmc --stats=json`, extracts the JSON object from the
# output (kc_cli prints human-readable "c ..." lines first; the dump starts
# at the first line that is exactly "{"), and checks it against
# tools/stats_schema.json with a small stdlib-only validator (no jsonschema
# dependency). CI runs this so the schema and RenderJson can only change
# together, deliberately.
#
# Usage: tools/check_stats_schema.sh [kc_cli_binary [file.cnf]]
#   kc_cli_binary defaults to the first of build/examples/kc_cli,
#   build-release-bench/examples/kc_cli that exists; without a CNF a tiny
#   satisfiable instance is generated in a temp file.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SCHEMA="$ROOT/tools/stats_schema.json"

BIN="${1:-}"
if [[ -z "$BIN" ]]; then
  for candidate in "$ROOT/build/examples/kc_cli" \
                   "$ROOT/build-release-bench/examples/kc_cli"; do
    if [[ -x "$candidate" ]]; then BIN="$candidate"; break; fi
  done
fi
if [[ -z "$BIN" || ! -x "$BIN" ]]; then
  echo "check_stats_schema: kc_cli binary not found (build first)" >&2
  exit 1
fi

CNF="${2:-}"
TMP_CNF=""
if [[ -z "$CNF" ]]; then
  TMP_CNF="$(mktemp --suffix=.cnf)"
  printf 'p cnf 4 3\n1 2 0\n-1 3 0\n2 -3 4 0\n' > "$TMP_CNF"
  CNF="$TMP_CNF"
fi
OUT_FILE="$(mktemp)"
cleanup() {
  if [[ -n "$TMP_CNF" ]]; then rm -f "$TMP_CNF"; fi
  rm -f "$OUT_FILE"
}
trap cleanup EXIT

"$BIN" "$CNF" --wmc --stats=json > "$OUT_FILE"

# The program arrives on stdin (heredoc), so the stats travel by file.
python3 - "$SCHEMA" "$OUT_FILE" <<'PY'
import json
import sys

schema = json.load(open(sys.argv[1]))

# Everything before the JSON dump is human-readable "c ..." reporting; the
# dump starts at the first line that is exactly "{".
lines = open(sys.argv[2]).read().splitlines()
try:
    start = next(i for i, l in enumerate(lines) if l.strip() == "{")
except StopIteration:
    sys.exit("check_stats_schema: no JSON object found in kc_cli output")
try:
    data = json.loads("\n".join(lines[start:]))
except json.JSONDecodeError as e:
    sys.exit(f"check_stats_schema: stats dump is not valid JSON: {e}")


def fail(path, msg):
    sys.exit(f"check_stats_schema: {path or '$'}: {msg}")


def check(schema, data, path=""):
    """Validates the JSON-Schema subset stats_schema.json uses."""
    t = schema.get("type")
    if t == "integer":
        if not isinstance(data, int) or isinstance(data, bool):
            fail(path, f"expected integer, got {type(data).__name__}")
        if "minimum" in schema and data < schema["minimum"]:
            fail(path, f"{data} below minimum {schema['minimum']}")
        if "enum" in schema and data not in schema["enum"]:
            fail(path, f"{data} not in enum {schema['enum']}")
    elif t == "boolean":
        if not isinstance(data, bool):
            fail(path, f"expected boolean, got {type(data).__name__}")
    elif t == "string":
        if not isinstance(data, str):
            fail(path, f"expected string, got {type(data).__name__}")
    elif t == "array":
        if not isinstance(data, list):
            fail(path, f"expected array, got {type(data).__name__}")
        for i, item in enumerate(data):
            check(schema.get("items", {}), item, f"{path}[{i}]")
    elif t == "object":
        if not isinstance(data, dict):
            fail(path, f"expected object, got {type(data).__name__}")
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in data:
                fail(path, f"missing required key '{key}'")
        extra = schema.get("additionalProperties", True)
        for key, value in data.items():
            child = f"{path}.{key}" if path else key
            if key in props:
                check(props[key], value, child)
            elif isinstance(extra, dict):
                check(extra, value, child)
            elif extra is False:
                fail(path, f"unexpected key '{key}'")
    elif t is not None:
        fail(path, f"schema type '{t}' not supported by this validator")


check(schema, data)
print(
    "check_stats_schema: OK "
    f"({len(data['counters'])} counters, {len(data['gauges'])} gauges, "
    f"{len(data['histograms'])} histograms, {len(data['spans'])} spans)"
)
PY

# Second pass: a --certify run must surface the certification metrics
# (certify.checks / traces_emitted / trace_bytes counters and the
# certify.check_us histogram) and still validate against the schema.
CERT_OUT="$(mktemp)"
trap 'cleanup; rm -f "$CERT_OUT"' EXIT
"$BIN" "$CNF" --certify --stats=json > "$CERT_OUT"

python3 - "$SCHEMA" "$CERT_OUT" <<'PY'
import json
import sys

lines = open(sys.argv[2]).read().splitlines()
start = next(i for i, l in enumerate(lines) if l.strip() == "{")
data = json.loads("\n".join(lines[start:]))

counters = data["counters"]
for key in ("certify.checks", "certify.traces_emitted", "certify.trace_bytes"):
    if counters.get(key, 0) < 1:
        sys.exit(f"check_stats_schema: --certify run missing counter {key}")
if "certify.check_us" not in data["histograms"]:
    sys.exit("check_stats_schema: --certify run missing certify.check_us histogram")
print("check_stats_schema: OK (certify metrics present)")
PY

# Third pass: the serving daemon's stats endpoint speaks the same schema.
# Boot tbc_serve on a private unix socket, issue one real compile+count so
# the serve.* instruments fire, fetch --op=stats, and validate the dump
# (which arrives as a bare JSON object, no "c ..." preamble).
SERVE_BIN="$(dirname "$BIN")/tbc_serve"
CLIENT_BIN="$(dirname "$BIN")/tbc_client"
if [[ -x "$SERVE_BIN" && -x "$CLIENT_BIN" ]]; then
  SOCK="$(mktemp -u /tmp/tbc_stats_XXXXXX.sock)"
  SERVE_OUT="$(mktemp)"
  "$SERVE_BIN" --listen="unix:$SOCK" >/dev/null 2>&1 &
  SERVE_PID=$!
  trap 'cleanup; rm -f "$CERT_OUT" "$SERVE_OUT" "$SOCK"; kill "$SERVE_PID" 2>/dev/null' EXIT
  for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.05
  done
  "$CLIENT_BIN" --connect="unix:$SOCK" --op=count "$CNF" >/dev/null
  "$CLIENT_BIN" --connect="unix:$SOCK" --op=stats > "$SERVE_OUT"
  kill -TERM "$SERVE_PID" 2>/dev/null
  wait "$SERVE_PID" 2>/dev/null || true

  python3 - "$SCHEMA" "$SERVE_OUT" <<'PY'
import json
import sys

schema = json.load(open(sys.argv[1]))
lines = open(sys.argv[2]).read().splitlines()
start = next(i for i, l in enumerate(lines) if l.strip() == "{")
data = json.loads("\n".join(lines[start:]))


def fail(path, msg):
    sys.exit(f"check_stats_schema: serve: {path or '$'}: {msg}")


def check(schema, data, path=""):
    t = schema.get("type")
    if t == "integer":
        if not isinstance(data, int) or isinstance(data, bool):
            fail(path, f"expected integer, got {type(data).__name__}")
        if "minimum" in schema and data < schema["minimum"]:
            fail(path, f"{data} below minimum {schema['minimum']}")
        if "enum" in schema and data not in schema["enum"]:
            fail(path, f"{data} not in enum {schema['enum']}")
    elif t == "boolean":
        if not isinstance(data, bool):
            fail(path, f"expected boolean, got {type(data).__name__}")
    elif t == "string":
        if not isinstance(data, str):
            fail(path, f"expected string, got {type(data).__name__}")
    elif t == "array":
        if not isinstance(data, list):
            fail(path, f"expected array, got {type(data).__name__}")
        for i, item in enumerate(data):
            check(schema.get("items", {}), item, f"{path}[{i}]")
    elif t == "object":
        if not isinstance(data, dict):
            fail(path, f"expected object, got {type(data).__name__}")
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in data:
                fail(path, f"missing required key '{key}'")
        extra = schema.get("additionalProperties", True)
        for key, value in data.items():
            child = f"{path}.{key}" if path else key
            if key in props:
                check(props[key], value, child)
            elif isinstance(extra, dict):
                check(extra, value, child)
            elif extra is False:
                fail(path, f"unexpected key '{key}'")
    elif t is not None:
        fail(path, f"schema type '{t}' not supported by this validator")


check(schema, data)
counters = data["counters"]
for key in ("serve.connections.accepted", "serve.requests.accepted",
            "serve.requests.ok"):
    if counters.get(key, 0) < 1:
        sys.exit(f"check_stats_schema: serve stats missing counter {key}")
print("check_stats_schema: OK (serve.* counters present)")
PY
else
  echo "check_stats_schema: note: tbc_serve/tbc_client not built, serve pass skipped"
fi

# Fourth pass: a structure-driven compile (--vtree=minfill) must surface
# the analysis.structure.* instruments — the runs/orders_tried counters and
# the best_width histogram — and still validate against the schema.
STRUCT_OUT="$(mktemp)"
trap 'cleanup; rm -f "$CERT_OUT" "$STRUCT_OUT" "${SERVE_OUT:-}" "${SOCK:-}"' EXIT
"$BIN" "$CNF" --target=sdd --vtree=minfill --stats=json > "$STRUCT_OUT"

python3 - "$SCHEMA" "$STRUCT_OUT" <<'PY'
import json
import sys

lines = open(sys.argv[2]).read().splitlines()
start = next(i for i, l in enumerate(lines) if l.strip() == "{")
data = json.loads("\n".join(lines[start:]))

counters = data["counters"]
for key in ("analysis.structure.runs", "analysis.structure.orders_tried"):
    if counters.get(key, 0) < 1:
        sys.exit(f"check_stats_schema: --vtree=minfill run missing counter {key}")
if "analysis.structure.best_width" not in data["histograms"]:
    sys.exit("check_stats_schema: --vtree=minfill run missing "
             "analysis.structure.best_width histogram")
print("check_stats_schema: OK (analysis.structure.* metrics present)")
PY

# Fifth pass: a minimizing SDD run must surface the sdd.minimize.*
# instruments pinned in the schema's definitions block — the counter and
# histogram names live in stats_schema.json so a rename fails CI here.
# The instance is big enough (20 vars at clause density 3) that the
# aggressive auto-trigger fires during compilation on top of the explicit
# --minimize search.
MIN_CNF="$(mktemp --suffix=.cnf)"
MIN_OUT="$(mktemp)"
trap 'cleanup; rm -f "$CERT_OUT" "$STRUCT_OUT" "$MIN_CNF" "$MIN_OUT" \
     "${SERVE_OUT:-}" "${SOCK:-}"' EXIT
python3 - "$MIN_CNF" <<'PY'
import random, sys
random.seed(3)
n, m = 20, 60
with open(sys.argv[1], "w") as f:
    f.write(f"p cnf {n} {m}\n")
    for _ in range(m):
        vs = random.sample(range(1, n + 1), 3)
        f.write(" ".join(str(v if random.random() < 0.5 else -v) for v in vs) + " 0\n")
PY
"$BIN" "$MIN_CNF" --target=sdd --minimize=200 --sdd-minimize=aggressive \
  --sdd-minimize-threshold=1.1 --stats=json > "$MIN_OUT"

python3 - "$SCHEMA" "$MIN_OUT" <<'PY'
import json
import sys

schema = json.load(open(sys.argv[1]))
pinned = schema["definitions"]["sddMinimizeInstruments"]
lines = open(sys.argv[2]).read().splitlines()
start = next(i for i, l in enumerate(lines) if l.strip() == "{")
data = json.loads("\n".join(lines[start:]))

counters = data["counters"]
for key in pinned["requiredCounters"]:
    if counters.get(key, 0) < 1:
        sys.exit(f"check_stats_schema: minimizing run missing counter {key}")
for key in pinned["requiredHistograms"]:
    if key not in data["histograms"]:
        sys.exit(f"check_stats_schema: minimizing run missing histogram {key}")
# Reserved names are event-conditional; just make sure nothing minted a
# name outside the pinned set (a rename would land here).
known = set(pinned["requiredCounters"]) | set(pinned["reservedCounters"])
stray = [k for k in counters
         if k.startswith("sdd.minimize.") and k not in known]
if stray:
    sys.exit(f"check_stats_schema: unpinned sdd.minimize counters: {stray}")
print("check_stats_schema: OK (sdd.minimize.* instruments present)")
PY

# Sixth pass: the persistent circuit store's instruments, pinned in the
# schema's storeInstruments block. kc_cli --save-circuit then
# --load-circuit must tick store.writes / store.opens; a daemon restart
# over a shared --store-dir must tick serve.store.spills in the first
# process and serve.store.restores / serve.store.hits — with ZERO cache
# misses — in the second. A rename of any store counter fails here.
STORE_TBC="$(mktemp -u --suffix=.tbc)"
SAVE_OUT="$(mktemp)"
LOAD_OUT="$(mktemp)"
STORE_DIR="$(mktemp -d)"
trap 'cleanup; rm -f "$CERT_OUT" "$STRUCT_OUT" "$MIN_CNF" "$MIN_OUT" \
     "$STORE_TBC" "$SAVE_OUT" "$LOAD_OUT" "${SERVE_OUT:-}" "${SOCK:-}"; \
     rm -rf "$STORE_DIR"' EXIT
"$BIN" "$CNF" --save-circuit="$STORE_TBC" --stats=json > "$SAVE_OUT"
"$BIN" --load-circuit="$STORE_TBC" --stats=json > "$LOAD_OUT"

python3 - "$SCHEMA" "$SAVE_OUT" "$LOAD_OUT" <<'PY'
import json
import sys

schema = json.load(open(sys.argv[1]))
pinned = schema["definitions"]["storeInstruments"]

def counters_of(path):
    lines = open(path).read().splitlines()
    start = next(i for i, l in enumerate(lines) if l.strip() == "{")
    return json.loads("\n".join(lines[start:]))["counters"]

save, load = counters_of(sys.argv[2]), counters_of(sys.argv[3])
if save.get("store.writes", 0) < 1:
    sys.exit("check_stats_schema: --save-circuit run missing store.writes")
if load.get("store.opens", 0) < 1:
    sys.exit("check_stats_schema: --load-circuit run missing store.opens")
known = set()
for group in ("cliRequiredCounters", "serveSpillCounters",
              "serveRestoreCounters", "reservedCounters"):
    known |= set(pinned[group])
for name, counters in (("save", save), ("load", load)):
    stray = [k for k in counters
             if (k.startswith("store.") or k.startswith("serve.store."))
             and k not in known]
    if stray:
        sys.exit(f"check_stats_schema: unpinned store counters in {name}: {stray}")
print("check_stats_schema: OK (store.* cli instruments present)")
PY

if [[ -x "$SERVE_BIN" && -x "$CLIENT_BIN" ]]; then
  SOCK2="$(mktemp -u /tmp/tbc_store_XXXXXX.sock)"
  WARM1_OUT="$(mktemp)"
  WARM2_OUT="$(mktemp)"
  trap 'cleanup; rm -f "$CERT_OUT" "$STRUCT_OUT" "$MIN_CNF" "$MIN_OUT" \
       "$STORE_TBC" "$SAVE_OUT" "$LOAD_OUT" "$WARM1_OUT" "$WARM2_OUT" \
       "${SERVE_OUT:-}" "${SOCK:-}" "$SOCK2"; rm -rf "$STORE_DIR"' EXIT

  # First daemon: compile once (spill), capture stats, terminate.
  "$SERVE_BIN" --listen="unix:$SOCK2" --store-dir="$STORE_DIR" >/dev/null 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do [[ -S "$SOCK2" ]] && break; sleep 0.05; done
  "$CLIENT_BIN" --connect="unix:$SOCK2" --op=count "$CNF" >/dev/null
  "$CLIENT_BIN" --connect="unix:$SOCK2" --op=stats > "$WARM1_OUT"
  kill -TERM "$PID" 2>/dev/null; wait "$PID" 2>/dev/null || true
  rm -f "$SOCK2"

  # Second daemon over the same store dir: the count must be answered
  # from the warm-started artifact, with zero compile activity.
  "$SERVE_BIN" --listen="unix:$SOCK2" --store-dir="$STORE_DIR" >/dev/null 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do [[ -S "$SOCK2" ]] && break; sleep 0.05; done
  "$CLIENT_BIN" --connect="unix:$SOCK2" --op=count "$CNF" >/dev/null
  "$CLIENT_BIN" --connect="unix:$SOCK2" --op=stats > "$WARM2_OUT"
  kill -TERM "$PID" 2>/dev/null; wait "$PID" 2>/dev/null || true

  python3 - "$SCHEMA" "$WARM1_OUT" "$WARM2_OUT" <<'PY'
import json
import sys

schema = json.load(open(sys.argv[1]))
pinned = schema["definitions"]["storeInstruments"]

def counters_of(path):
    lines = open(path).read().splitlines()
    start = next(i for i, l in enumerate(lines) if l.strip() == "{")
    return json.loads("\n".join(lines[start:]))["counters"]

first, second = counters_of(sys.argv[2]), counters_of(sys.argv[3])
for key in pinned["serveSpillCounters"]:
    if first.get(key, 0) < 1:
        sys.exit(f"check_stats_schema: first daemon missing counter {key}")
for key in pinned["serveRestoreCounters"]:
    if second.get(key, 0) < 1:
        sys.exit(f"check_stats_schema: restarted daemon missing counter {key}")
# The restart contract itself: the second daemon never compiled.
if second.get("serve.cache.misses", 0) != 0:
    sys.exit("check_stats_schema: restarted daemon saw a cache miss "
             f"({second['serve.cache.misses']}) — warm start failed")
print("check_stats_schema: OK (serve.store.* restart contract holds)")
PY
else
  echo "check_stats_schema: note: tbc_serve/tbc_client not built, store restart pass skipped"
fi
