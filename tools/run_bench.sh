#!/usr/bin/env bash
# Before/after kernel benchmark driver.
#
# Builds the pre-PR baseline in a detached git worktree and the current
# tree side by side (both Release, -DTBC_BENCH=ON), runs the kernel
# micro-benchmarks (bench/bench_kernels.cc, compiled from the SAME source
# against both library versions) plus the three paper-figure benches the
# kernel layer targets, median-of-5 each, and writes the combined
# before/after report to BENCH_kernels.json at the repo root.
#
# Usage: tools/run_bench.sh [baseline-ref]
#   baseline-ref defaults to HEAD when the working tree has uncommitted
#   kernel changes, HEAD~1 otherwise (the pre-PR parent).

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

if [[ $# -ge 1 ]]; then
  BASE_REF="$1"
elif [[ -n "$(git status --porcelain -- src bench CMakeLists.txt)" ]]; then
  BASE_REF="HEAD"
else
  BASE_REF="HEAD~1"
fi
BASE_SHA="$(git rev-parse --short "$BASE_REF")"
CUR_SHA="$(git rev-parse --short HEAD)$(git diff --quiet HEAD -- src bench 2>/dev/null || echo '+dirty')"

RUNS=5
FIG_BENCHES=(bench_fig8_model_counting bench_fig14_psdd_eval bench_fig22_map_scaling)

BASE_SRC="$ROOT/build-bench-baseline-src"
BASE_BUILD="$ROOT/build-bench-baseline"
CUR_BUILD="$ROOT/build-release-bench"

cleanup() { git worktree remove --force "$BASE_SRC" 2>/dev/null || true; }
trap cleanup EXIT
cleanup
git worktree add --force --detach "$BASE_SRC" "$BASE_REF" > /dev/null

# The kernel micro-bench is written against APIs present in both trees:
# inject the current source (and its CMake registration) into the baseline
# so both binaries time identical workloads against different libraries.
cp "$ROOT/bench/bench_kernels.cc" "$BASE_SRC/bench/bench_kernels.cc"
if ! grep -q bench_kernels "$BASE_SRC/bench/CMakeLists.txt"; then
  printf '\nif(TBC_BENCH)\n  tbc_bench(bench_kernels)\nendif()\n' \
    >> "$BASE_SRC/bench/CMakeLists.txt"
fi

build_tree() { # src build
  # -DTBC_BENCH=ON is a plain cache variable: it gates the baseline's
  # appended if(TBC_BENCH) block even though the baseline CMakeLists has
  # no option() declaring it.
  # TBC_WERROR=OFF: the lint gate runs in test builds; at -O3 GCC 12 emits
  # a -Wrestrict false positive in std::string that would block the
  # baseline. Applied to both trees symmetrically.
  cmake -S "$1" -B "$2" -DCMAKE_BUILD_TYPE=Release -DTBC_BENCH=ON \
    -DTBC_WERROR=OFF > /dev/null
  cmake --build "$2" -j"$(nproc)" \
    --target bench_kernels "${FIG_BENCHES[@]}" > /dev/null
}

echo "[run_bench] building baseline ($BASE_SHA) ..." >&2
build_tree "$BASE_SRC" "$BASE_BUILD"
echo "[run_bench] building current ($CUR_SHA) ..." >&2
build_tree "$ROOT" "$CUR_BUILD"
# The vtree-shape bench uses the structure-analysis API (new in this tree),
# so it has no pre-PR baseline build: right-linear/balanced columns inside
# its own report are the baseline.
cmake --build "$CUR_BUILD" -j"$(nproc)" --target bench_vtree_shapes > /dev/null

# Median-of-RUNS wall-clock for one binary, after one warm-up run.
# Emits "median|run1,run2,..." in milliseconds.
time_bin() {
  local bin="$1" out runs=()
  "$bin" > /dev/null 2>&1
  for _ in $(seq "$RUNS"); do
    local s e
    s=$(date +%s%N)
    "$bin" > /dev/null 2>&1
    e=$(date +%s%N)
    runs+=("$(awk -v d=$((e - s)) 'BEGIN{printf "%.3f", d / 1e6}')")
  done
  printf '%s\n' "${runs[@]}" | sort -g | awk -v n="$RUNS" '
    NR == int(n / 2) + 1 { m = $1 }
    { r = r (NR > 1 ? "," : "") $1 }
    END { print m "|" r }'
}

declare -A BEFORE AFTER BEFORE_RUNS AFTER_RUNS
for b in "${FIG_BENCHES[@]}"; do
  echo "[run_bench] timing $b (baseline) ..." >&2
  out="$(time_bin "$BASE_BUILD/bench/$b")"
  BEFORE[$b]="${out%%|*}"; BEFORE_RUNS[$b]="${out##*|}"
  echo "[run_bench] timing $b (current) ..." >&2
  out="$(time_bin "$CUR_BUILD/bench/$b")"
  AFTER[$b]="${out%%|*}"; AFTER_RUNS[$b]="${out##*|}"
done

echo "[run_bench] running kernel micro-benchmarks ..." >&2
"$BASE_BUILD/bench/bench_kernels" "$BASE_BUILD/kernels.json" 2> /dev/null
"$CUR_BUILD/bench/bench_kernels" "$CUR_BUILD/kernels.json" 2> /dev/null

echo "[run_bench] running vtree-shape bench (current tree only) ..." >&2
"$CUR_BUILD/bench/bench_vtree_shapes" "$CUR_BUILD/vtree_shapes.json" \
  2> /dev/null

SUITES_TSV="$CUR_BUILD/suites.tsv"
: > "$SUITES_TSV"
for b in "${FIG_BENCHES[@]}"; do
  printf '%s\t%s\t%s\t%s\t%s\n' \
    "$b" "${BEFORE[$b]}" "${AFTER[$b]}" "${BEFORE_RUNS[$b]}" "${AFTER_RUNS[$b]}" \
    >> "$SUITES_TSV"
done

python3 - "$BASE_SHA" "$CUR_SHA" "$SUITES_TSV" \
  "$BASE_BUILD/kernels.json" "$CUR_BUILD/kernels.json" \
  "$ROOT/BENCH_kernels.json" "$CUR_BUILD/vtree_shapes.json" <<'PY'
import json, sys

base_sha, cur_sha, suites_tsv, base_kernels, cur_kernels, out_path = sys.argv[1:7]
vtree_shapes_path = sys.argv[7]
suites = {}
for line in open(suites_tsv):
    name, before, after, bruns, aruns = line.strip().split("\t")
    before, after = float(before), float(after)
    suites[name] = {
        "before_ms": before,
        "after_ms": after,
        "speedup": round(before / after, 2) if after > 0 else None,
        "before_runs_ms": [float(x) for x in bruns.split(",")],
        "after_runs_ms": [float(x) for x in aruns.split(",")],
    }

def load(path):
    with open(path) as f:
        return {b["name"]: b for b in json.load(f)["benchmarks"]}

kb, kc = load(base_kernels), load(cur_kernels)
kernels = {}
for name in kb:
    before, after = kb[name]["median_ms"], kc[name]["median_ms"]
    kernels[name] = {
        "before_ms": before,
        "after_ms": after,
        "speedup": round(before / after, 2) if after > 0 else None,
        "before_runs_ms": kb[name]["runs_ms"],
        "after_runs_ms": kc[name]["runs_ms"],
    }

with open(vtree_shapes_path) as f:
    vtree_shapes = json.load(f)

report = {
    "generated_by": "tools/run_bench.sh",
    "build_type": "Release",
    "median_of": 5,
    "baseline_ref": base_sha,
    "current_ref": cur_sha,
    "suites": suites,
    "kernels": kernels,
    "vtree_shapes": vtree_shapes,
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"[run_bench] wrote {out_path}")
for name, s in {**suites, **kernels}.items():
    print(f"  {name:32s} {s['before_ms']:10.3f} -> {s['after_ms']:10.3f} ms"
          f"   x{s['speedup']}")
print("[run_bench] vtree shapes (SDD size: right-linear -> minfill):")
for fam in vtree_shapes["families"]:
    r, m = fam["right"], fam["minfill"]
    ratio = r["size"] / m["size"] if m["size"] else float("nan")
    print(f"  {fam['family']:32s} width<={fam['forecast_width']:3d}"
          f"  size {r['size']:7d} -> {m['size']:7d} (x{ratio:.2f})"
          f"  ms {r['median_ms']:.3f} -> {m['median_ms']:.3f}")
print("[run_bench] vtree minimize (same seeded search, in-place vs recompile):")
for fam in vtree_shapes["families"]:
    ip, rc = fam.get("minimize_inplace"), fam.get("minimize_recompile")
    if not ip or not rc:
        continue
    speedup = rc["median_ms"] / ip["median_ms"] if ip["median_ms"] else float("inf")
    print(f"  {fam['family']:32s} size {ip['size']:7d} vs {rc['size']:7d}"
          f"  ms {ip['median_ms']:9.3f} vs {rc['median_ms']:9.3f}"
          f"  (x{speedup:.1f} faster in place)")
PY
