#!/usr/bin/env bash
# Shell-level contract test for the persistent circuit store (DESIGN.md
# "Persistent circuit store"), exercising the property no in-process test
# can: a store written by ONE process and mapped by ANOTHER.
#
#   1. Cross-process durability: kc_cli --save-circuit in one invocation,
#      --load-circuit in a fresh invocation; model count and WMC hexfloat
#      must be byte-identical (hexfloat == bit-identical doubles).
#   2. The committed corruption corpus is rejected with exit 2 (typed
#      kInvalidInput), never 0 and never a crash; the committed golden
#      store still loads.
#   3. A missing store is an IO error (1), not a validation reject (2).
#
# Usage: tools/check_store.sh [kc_cli [corpus_dir]]
#   Defaults: build/examples/kc_cli, tests/corpus/store.

set -uo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
KC="${1:-$ROOT/build/examples/kc_cli}"
CORPUS="${2:-$ROOT/tests/corpus/store}"

if [[ ! -x "$KC" ]]; then
  echo "check_store: $KC not found (build first)" >&2
  exit 1
fi
if [[ ! -d "$CORPUS" ]]; then
  echo "check_store: corpus dir $CORPUS not found" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILED=0

fail() {
  echo "check_store: FAIL $*" >&2
  FAILED=1
}
ok() {
  echo "check_store: ok   $*"
}

# --- 1. Cross-process write-then-read -------------------------------------

printf 'p cnf 4 3\n1 2 0\n-1 3 0\n2 -3 4 0\n' > "$TMP/q.cnf"

"$KC" "$TMP/q.cnf" --save-circuit="$TMP/q.tbc" --wmc=0.5 \
  > "$TMP/save.out" 2>"$TMP/save.err"
if [[ $? -ne 0 ]]; then
  fail "save-circuit exited nonzero: $(cat "$TMP/save.err")"
fi
"$KC" --load-circuit="$TMP/q.tbc" --wmc=0.5 \
  > "$TMP/load.out" 2>"$TMP/load.err"
if [[ $? -ne 0 ]]; then
  fail "load-circuit exited nonzero: $(cat "$TMP/load.err")"
fi

save_models="$(grep '^c models:' "$TMP/save.out")"
load_models="$(grep '^c models:' "$TMP/load.out")"
save_wmc="$(grep '^c wmc_hex:' "$TMP/save.out")"
load_wmc="$(grep '^c wmc_hex:' "$TMP/load.out")"
if [[ -z "$save_wmc" || -z "$load_wmc" ]]; then
  fail "missing 'c wmc_hex:' line (save='$save_wmc' load='$load_wmc')"
elif [[ "$save_wmc" != "$load_wmc" ]]; then
  fail "WMC not bit-identical across processes: '$save_wmc' vs '$load_wmc'"
else
  ok "cross-process WMC bit-identical ($save_wmc)"
fi
if [[ -z "$save_models" || "$save_models" != "$load_models" ]]; then
  fail "model count changed across processes: '$save_models' vs '$load_models'"
else
  ok "cross-process model count identical ($save_models)"
fi

# --- 2. Corruption corpus: typed rejection, golden acceptance -------------

for f in "$CORPUS"/*.tbc; do
  name="$(basename "$f")"
  "$KC" --load-circuit="$f" > "$TMP/c.out" 2>"$TMP/c.err"
  got=$?
  if [[ "$name" == "valid.tbc" ]]; then
    if [[ "$got" -ne 0 ]]; then
      fail "golden $name: want exit 0, got $got: $(cat "$TMP/c.err")"
    elif ! grep -q '^c models: 2$' "$TMP/c.out"; then
      fail "golden $name: wrong model count: $(grep '^c models' "$TMP/c.out")"
    else
      ok "golden $name loads (models 2)"
    fi
  else
    if [[ "$got" -ne 2 ]]; then
      fail "corrupt $name: want exit 2 (typed reject), got $got"
    elif [[ ! -s "$TMP/c.err" ]]; then
      fail "corrupt $name: rejected without a diagnostic"
    else
      ok "corrupt $name rejected (exit 2)"
    fi
  fi
done

# --- 3. Missing store: IO error (1), not a validation reject (2) ----------

"$KC" --load-circuit="$TMP/nope.tbc" >/dev/null 2>&1
got=$?
if [[ "$got" -ne 1 ]]; then
  fail "missing store: want exit 1, got $got"
else
  ok "missing store is exit 1 (IO), not 2 (reject)"
fi

if [[ "$FAILED" -ne 0 ]]; then
  echo "check_store: FAILURES" >&2
  exit 1
fi
echo "check_store: all checks passed"
