#!/usr/bin/env bash
# SIGPIPE robustness: piping any CLI's output into a reader that exits
# early (`head -c 1`) must not kill the tool with SIGPIPE (exit 141) — the
# tools ignore SIGPIPE and treat broken pipes as short writes. A tool that
# dies of SIGPIPE under `| head` silently truncates scripted pipelines.
#
# Usage: tools/check_sigpipe.sh [build_dir]   (default: build)

set -uo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
KC="$BUILD/examples/kc_cli"

if [[ ! -x "$KC" ]]; then
  echo "check_sigpipe: $KC not found (build first)" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILED=0

printf 'p cnf 3 2\n1 2 0\n-1 3 0\n' > "$TMP/good.cnf"

check() {
  local label="$1"
  shift
  # Run the pipeline; the pipe reader quits after one byte while the tool
  # still has output pending. PIPESTATUS[0] is the tool's own exit.
  "$@" 2>/dev/null | head -c 1 >/dev/null
  local rc="${PIPESTATUS[0]}"
  if [[ "$rc" == 141 || "$rc" == 13 ]]; then
    echo "check_sigpipe: FAIL $label: died of SIGPIPE (exit $rc)" >&2
    FAILED=1
  else
    echo "check_sigpipe: ok   $label (exit $rc)"
  fi
}

# --stats=json produces enough output to overrun the pipe buffer race
# window; run each a few times since SIGPIPE delivery depends on timing.
for i in 1 2 3; do
  check "kc_cli --stats=json | head ($i)" "$KC" "$TMP/good.cnf" --wmc --stats=json
done

"$KC" "$TMP/good.cnf" --write-nnf="$TMP/good.nnf" >/dev/null 2>&1
check "tbc_lint --stats | head" "$BUILD/examples/tbc_lint" --stats "$TMP/good.nnf"

"$KC" "$TMP/good.cnf" --certify-out="$TMP/cert.txt" >/dev/null 2>&1
check "tbc_certify -v | head" "$BUILD/examples/tbc_certify" "$TMP/cert.txt"

if [[ "$FAILED" != 0 ]]; then
  echo "check_sigpipe: FAILED" >&2
  exit 1
fi
echo "check_sigpipe: no tool dies of SIGPIPE"
