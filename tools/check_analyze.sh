#!/usr/bin/env bash
# CI gate for the structural analyzer (README "tbc_analyze").
#
# Runs tbc_analyze over the committed corpus and asserts the external
# contract other tooling depends on:
#
#   - every tests/corpus/structure/*.cnf analyzes cleanly (exit 0) and the
#     --format=json report is valid JSON with the expected top-level keys;
#   - every tests/corpus/cnf_bad_*.cnf is refused with exit 2 and a
#     diagnostic carrying the stable rule id structure.parse;
#   - a --max-width cap below clique30's forecast width yields exit 3 and
#     the structure.width rule id;
#   - --list-rules prints exactly the pinned structure.* rule-id set, so a
#     rename or deletion fails CI instead of silently breaking consumers.
#
# Usage: tools/check_analyze.sh [tbc_analyze_binary [corpus_dir]]
#   Defaults: build/examples/tbc_analyze, tests/corpus.

set -uo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BIN="${1:-$ROOT/build/examples/tbc_analyze}"
CORPUS="${2:-$ROOT/tests/corpus}"

if [[ ! -x "$BIN" ]]; then
  echo "check_analyze: $BIN not found (build first)" >&2
  exit 1
fi
if [[ ! -d "$CORPUS/structure" ]]; then
  echo "check_analyze: corpus dir $CORPUS/structure not found" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILED=0

fail() {
  echo "check_analyze: FAIL $1" >&2
  FAILED=1
}

# 1. The structure corpus analyzes cleanly, in text and JSON, and the JSON
#    report parses with the documented shape.
for cnf in "$CORPUS"/structure/*.cnf; do
  name="$(basename "$cnf")"
  if ! "$BIN" "$cnf" > "$TMP/text.out" 2>&1; then
    fail "$name: expected exit 0, got $?"
    continue
  fi
  if ! "$BIN" --format=json "$cnf" > "$TMP/json.out" 2>&1; then
    fail "$name: --format=json expected exit 0, got $?"
    continue
  fi
  if ! python3 - "$TMP/json.out" "$name" <<'PY'
import json, sys
reports = json.load(open(sys.argv[1]))
assert isinstance(reports, list) and len(reports) == 1, "expected 1 report"
r = reports[0]
for key in ("file", "refused", "structure", "diagnostics"):
    assert key in r, f"missing key {key!r}"
assert r["refused"] is False, "corpus file must not be refused"
s = r["structure"]
for key in ("num_vars", "num_clauses", "components", "width",
            "orders", "forecasts"):
    assert key in s, f"structure missing key {key!r}"
for key in ("lower_bound", "upper_bound", "best_heuristic", "dtree"):
    assert key in s["width"], f"width missing key {key!r}"
PY
  then
    fail "$name: JSON report malformed"
  fi
done

# 2. Unparseable CNFs are refused with exit 2 + the structure.parse rule.
for cnf in "$CORPUS"/cnf_bad_*.cnf "$CORPUS"/cnf_missing_header.cnf; do
  name="$(basename "$cnf")"
  "$BIN" --format=json "$cnf" > "$TMP/bad.out" 2>&1
  got=$?
  if [[ "$got" != 2 ]]; then
    fail "$name: expected exit 2, got $got"
    continue
  fi
  if ! grep -q 'structure\.parse' "$TMP/bad.out"; then
    fail "$name: exit-2 report missing rule id structure.parse"
  fi
done

# 3. A width cap below clique30's forecast (29) refuses with exit 3 and
#    the structure.width rule id.
"$BIN" --max-width=10 --format=json "$CORPUS/structure/clique30.cnf" \
  > "$TMP/cap.out" 2>&1
got=$?
if [[ "$got" != 3 ]]; then
  fail "clique30 --max-width=10: expected exit 3, got $got"
elif ! grep -q 'structure\.width' "$TMP/cap.out"; then
  fail "clique30 over-cap report missing rule id structure.width"
fi

# 4. The rule-id set is pinned: consumers key off these strings.
"$BIN" --list-rules > "$TMP/rules.out" 2>&1 || fail "--list-rules exited $?"
for rule in structure.parse structure.width structure.forecast \
            structure.disconnected structure.backbone structure.pure; do
  if ! grep -q "^$rule\b" "$TMP/rules.out"; then
    fail "--list-rules missing pinned rule id $rule"
  fi
done

if [[ "$FAILED" != 0 ]]; then
  echo "check_analyze: FAILED" >&2
  exit 1
fi
echo "check_analyze: OK (corpus clean, bad CNFs typed, rule ids pinned)"
