#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library
# sources using the compile database exported by CMake.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#
# The script degrades gracefully: when clang-tidy is not installed (the CI
# container only ships gcc) it prints a notice and exits 0 so the check can
# be wired into scripts unconditionally. A missing compile database is a
# real error (exit 1): configure with `cmake -B build -S .` first — the
# top-level CMakeLists.txt sets CMAKE_EXPORT_COMPILE_COMMANDS.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift $(( $# > 0 ? 1 : 0 )) || true
if [ "${1:-}" = "--" ]; then shift; fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: skipped: clang-tidy not found on PATH" >&2
  exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "run_clang_tidy: no compile database at $db" >&2
  echo "run_clang_tidy: configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 1
fi

# Library and example sources only; tests track the same warning profile
# through -Werror but drown tidy output in gtest macro expansions.
files=$(find "$repo_root/src" "$repo_root/examples" \
             -name '*.cc' -o -name '*.cpp' | sort)

status=0
for f in $files; do
  clang-tidy -p "$build_dir" --quiet "$@" "$f" || status=1
done

if [ "$status" -eq 0 ]; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: violations found" >&2
fi
exit "$status"
