#include "certify/checker.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/rules.h"
#include "analysis/tseitin.h"
#include "base/check.h"
#include "base/observability.h"
#include "base/timer.h"
#include "certify/up_engine.h"

namespace tbc {

namespace {

size_t PopCount(const std::vector<uint64_t>& mask) {
  size_t n = 0;
  for (uint64_t w : mask) n += static_cast<size_t>(__builtin_popcountll(w));
  return n;
}

// First variable set in `mask` (for witnesses); kInvalidVar when empty.
Var FirstVar(const std::vector<uint64_t>& mask) {
  for (size_t w = 0; w < mask.size(); ++w) {
    if (mask[w] != 0) {
      return static_cast<Var>(64 * w + __builtin_ctzll(mask[w]));
    }
  }
  return kInvalidVar;
}

std::string ModelWitness(const std::vector<int8_t>& model,
                         size_t num_input_vars) {
  std::string out;
  const size_t cap = std::min<size_t>(num_input_vars, 16);
  for (Var v = 0; v < cap; ++v) {
    if (!out.empty()) out += " ";
    out += Lit(v, v < model.size() && model[v] > 0).ToString();
  }
  if (num_input_vars > cap) out += " ...";
  return out;
}

// Shared budget/engine plumbing for both certificate families.
class CheckerBase {
 public:
  CheckerBase(const Certificate& cert, const CertifyOptions& options,
              CertifyResult* result)
      : cert_(cert),
        options_(options),
        result_(result),
        report_(result->report),
        work_(options.max_work) {}

 protected:
  // Consumes one unit of probe/replay budget; reports certify.budget once
  // on exhaustion and returns false thereafter.
  bool Charge() {
    if (work_ == 0) {
      if (!budget_reported_) {
        report_.Add(Severity::kError, rules::kCertifyBudget, 0, "",
                    "verification budget exhausted (max_work=" +
                        std::to_string(options_.max_work) + ")");
        budget_reported_ = true;
      }
      return false;
    }
    --work_;
    return true;
  }

  const Certificate& cert_;
  const CertifyOptions& options_;
  CertifyResult* result_;
  DiagnosticReport& report_;
  uint64_t work_;
  bool budget_reported_ = false;
};

// Checks d-DNNF and SDD certificates: the circuit is an NNF node table and
// CNF |= circuit goes by trace replay (d-DNNF) or trusted DPLL (no trace).
class NnfCertChecker : CheckerBase {
 public:
  NnfCertChecker(const Certificate& cert, const CertifyOptions& options,
                 CertifyResult* result)
      : CheckerBase(cert, options, result), mgr_(cert.nnf) {}

  void Run() {
    ComputeUsed();
    if (!CheckStructure()) return;
    ComputeVarSets();
    if (!CheckDecomposable()) return;  // dir-1 and count both rely on it
    BuildEngines();
    CheckCircuitImpliesCnf();
    CheckCnfImpliesCircuit();
    if (options_.check_count && CheckDeterministic()) CertifyCount();
  }

 private:
  // Two node sets drive the check. `reachable_`: nodes under the root —
  // decomposability, determinism, dir-1 and the count range over exactly
  // these. `used_`: reachable plus everything the trace mentions (dead
  // branches, cached components), closed under children — structure
  // validation and the Tseitin definitions must cover these so replay can
  // reference their gates. Nodes outside `used_` (stale entries from a
  // reused manager) are ignored entirely.
  void ComputeUsed() {
    reachable_.assign(mgr_.num_nodes(), 0);
    used_.assign(mgr_.num_nodes(), 0);
    std::vector<NnfId> stack;
    const auto close = [&](std::vector<char>& mark) {
      while (!stack.empty()) {
        const NnfId n = stack.back();
        stack.pop_back();
        if (mgr_.kind(n) != NnfManager::Kind::kAnd &&
            mgr_.kind(n) != NnfManager::Kind::kOr) {
          continue;
        }
        for (NnfId c : mgr_.children(n)) {
          if (!mark[c]) {
            mark[c] = 1;
            stack.push_back(c);
          }
        }
      }
    };
    reachable_[cert_.root] = 1;
    stack.push_back(cert_.root);
    close(reachable_);
    const auto mark_used = [&](NnfId n) {
      if (n != kInvalidNnf && !used_[n]) {
        used_[n] = 1;
        stack.push_back(n);
      }
    };
    mark_used(cert_.root);
    mark_used(cert_.ddnnf.top.node);
    for (const CertComp& comp : cert_.ddnnf.comps) {
      mark_used(comp.node);
      mark_used(comp.hi.node);
      mark_used(comp.lo.node);
    }
    close(used_);
    for (NnfId n = 0; n < mgr_.num_nodes(); ++n) {
      if (reachable_[n]) reachable_list_.push_back(n);
      if (used_[n]) used_list_.push_back(n);
    }
  }

  bool CheckStructure() {
    // Literal variables must live in the CNF's variable universe: the count
    // is defined over it, and the Tseitin encoding allocates gate variables
    // right above it (an out-of-range literal would alias a gate).
    for (NnfId n : used_list_) {
      if (mgr_.kind(n) == NnfManager::Kind::kLiteral &&
          mgr_.lit(n).var() >= cert_.cnf.num_vars()) {
        report_.Add(Severity::kError, rules::kCertifyFormat, n,
                    "var " + std::to_string(mgr_.lit(n).var() + 1),
                    "literal variable outside the CNF universe");
        return false;
      }
    }
    return true;
  }

  void ComputeVarSets() {
    words_ = (cert_.cnf.num_vars() + 63) / 64;
    varsets_.assign(mgr_.num_nodes(), std::vector<uint64_t>(words_, 0));
    for (NnfId n : used_list_) {  // ascending: children precede parents
      switch (mgr_.kind(n)) {
        case NnfManager::Kind::kFalse:
        case NnfManager::Kind::kTrue:
          break;
        case NnfManager::Kind::kLiteral: {
          const Var v = mgr_.lit(n).var();
          varsets_[n][v / 64] |= uint64_t{1} << (v % 64);
          break;
        }
        case NnfManager::Kind::kAnd:
        case NnfManager::Kind::kOr:
          for (NnfId c : mgr_.children(n)) {
            for (size_t w = 0; w < words_; ++w) {
              varsets_[n][w] |= varsets_[c][w];
            }
          }
          break;
      }
    }
  }

  bool CheckDecomposable() {
    bool clean = true;
    std::vector<uint64_t> acc(words_), shared(words_);
    for (NnfId n : reachable_list_) {
      if (mgr_.kind(n) != NnfManager::Kind::kAnd) continue;
      std::fill(acc.begin(), acc.end(), 0);
      for (NnfId c : mgr_.children(n)) {
        bool overlap = false;
        for (size_t w = 0; w < words_; ++w) {
          shared[w] = acc[w] & varsets_[c][w];
          overlap = overlap || shared[w] != 0;
          acc[w] |= varsets_[c][w];
        }
        if (overlap) {
          report_.Add(Severity::kError, rules::kCertifyDecomposable, n,
                      "var " + std::to_string(FirstVar(shared) + 1),
                      "and-gate inputs share a variable");
          clean = false;
          break;
        }
      }
    }
    return clean;
  }

  void BuildEngines() {
    cc_.emplace(cert_.cnf.num_vars());
    // Encoding in ascending id order keeps the recursion in Encode trivial
    // (children are always already encoded) and covers every node a trace
    // record may reference, reachable from the final root or not.
    for (NnfId n : used_list_) cc_->Encode(mgr_, n);
    const size_t total_vars =
        std::max(cc_->cnf().num_vars(), cert_.cnf.num_vars());
    // Determinism is a property of the circuit alone, so it gets a defs-only
    // engine: probing against defs+CNF would certify "disjoint within the
    // CNF's models", which is too weak to justify the count's sum rule.
    engine_defs_.emplace(total_vars);
    for (const Clause& c : cc_->cnf().clauses()) engine_defs_->AddPermanent(c);
    engine_f_.emplace(total_vars);
    for (const Clause& c : cert_.cnf.clauses()) engine_f_->AddPermanent(c);
    for (const Clause& c : cc_->cnf().clauses()) engine_f_->AddPermanent(c);
  }

  // Direction 1, circuit |= CNF: for each clause c, the circuit conditioned
  // on ~c must be unsatisfiable. Bottom-up satisfiability under a partial
  // assignment is exact on decomposable circuits, so this is complete.
  void CheckCircuitImpliesCnf() {
    std::vector<int8_t> assign(cert_.cnf.num_vars(), 0);
    std::vector<char> sat(mgr_.num_nodes(), 0);
    for (size_t i = 0; i < cert_.cnf.num_clauses(); ++i) {
      if (!Charge()) return;
      const Clause& clause = cert_.cnf.clause(i);
      for (Lit l : clause) assign[l.var()] = l.positive() ? -1 : 1;
      for (NnfId n : reachable_list_) {
        switch (mgr_.kind(n)) {
          case NnfManager::Kind::kFalse:
            sat[n] = 0;
            break;
          case NnfManager::Kind::kTrue:
            sat[n] = 1;
            break;
          case NnfManager::Kind::kLiteral: {
            const int8_t a = assign[mgr_.lit(n).var()];
            sat[n] = a == 0 || (a > 0) == mgr_.lit(n).positive();
            break;
          }
          case NnfManager::Kind::kAnd: {
            sat[n] = 1;
            for (NnfId c : mgr_.children(n)) sat[n] = sat[n] && sat[c];
            break;
          }
          case NnfManager::Kind::kOr: {
            sat[n] = 0;
            for (NnfId c : mgr_.children(n)) sat[n] = sat[n] || sat[c];
            break;
          }
        }
      }
      if (sat[cert_.root]) {
        report_.Add(Severity::kError, rules::kCertifyCircuitImpliesCnf,
                    cert_.root, "clause " + std::to_string(i),
                    "circuit does not entail input clause");
      }
      for (Lit l : clause) assign[l.var()] = 0;
    }
  }

  bool HaveTrace() const {
    return cert_.kind == Certificate::Kind::kDdnnf &&
           (!cert_.ddnnf.comps.empty() || cert_.ddnnf.top.conflict ||
            cert_.ddnnf.top.node != kInvalidNnf);
  }

  void CheckCnfImpliesCircuit() {
    if (HaveTrace()) {
      if (!ReplayBranch(cert_.ddnnf.top, 0)) return;
      if (!engine_f_->root_conflict() &&
          cert_.ddnnf.top.node != cert_.root) {
        report_.Add(Severity::kError, rules::kCertifyReplay, cert_.root,
                    "trace node " + std::to_string(cert_.ddnnf.top.node),
                    "trace derives a node other than the certificate root");
      }
      return;
    }
    // No trace: prove CNF & defs & ~root unsatisfiable with the trusted
    // DPLL. Branching effectively stays on input variables — once they are
    // assigned, the biconditional definitions evaluate every gate by UP.
    if (!Charge()) return;
    engine_f_->Push();
    if (engine_f_->Assume(~cc_->LitOf(cert_.root))) {
      switch (engine_f_->SolveComplete(options_.max_solve_decisions)) {
        case UpEngine::SolveResult::kUnsat:
          break;
        case UpEngine::SolveResult::kSat:
          report_.Add(Severity::kError, rules::kCertifyCnfImpliesCircuit,
                      cert_.root,
                      ModelWitness(engine_f_->model(), cert_.cnf.num_vars()),
                      "the CNF has a model the circuit rejects");
          break;
        case UpEngine::SolveResult::kBudget:
          report_.Add(Severity::kError, rules::kCertifyBudget, cert_.root, "",
                      "semantic CNF |= circuit check exceeded the DPLL "
                      "decision budget");
          break;
      }
    }
    engine_f_->Pop();
  }

  // Establishes branch `b` under the engine's current trail: verifies the
  // claimed conflict, or replays each component and then asserts the branch
  // node's gate after a successful RUP probe. Returns false only on a
  // certification failure (already reported).
  bool ReplayBranch(const CertBranch& b, uint32_t depth) {
    if (!Charge()) return false;
    if (depth > options_.max_replay_depth) {
      report_.Add(Severity::kError, rules::kCertifyBudget, 0, "",
                  "trace replay exceeded the recursion depth cap "
                  "(cyclic component references?)");
      return false;
    }
    if (b.conflict) {
      if (!engine_f_->in_conflict()) {
        report_.Add(Severity::kError, rules::kCertifyReplay, 0, "",
                    "claimed conflict is not derivable by unit propagation");
        return false;
      }
      return true;
    }
    if (engine_f_->in_conflict()) return true;  // stronger than claimed
    for (uint32_t id : b.comps) {
      if (!ReplayComp(id, depth + 1)) return false;
      if (engine_f_->in_conflict()) return true;
    }
    const Lit n = cc_->LitOf(b.node);
    if (!engine_f_->ProbeConflict({~n})) {
      report_.Add(Severity::kError, rules::kCertifyReplay, b.node, "",
                  "branch conjunction is not RUP-derivable");
      return false;
    }
    engine_f_->AddScoped({n});
    return true;
  }

  bool ReplayComp(uint32_t id, uint32_t depth) {
    if (!Charge()) return false;
    if (depth > options_.max_replay_depth) {
      report_.Add(Severity::kError, rules::kCertifyBudget, 0, "",
                  "trace replay exceeded the recursion depth cap "
                  "(cyclic component references?)");
      return false;
    }
    const CertComp& comp = cert_.ddnnf.comps[id];
    const Var v = comp.decision;
    if (v >= cert_.cnf.num_vars()) {
      report_.Add(Severity::kError, rules::kCertifyFormat, comp.node,
                  "var " + std::to_string(v + 1),
                  "decision variable outside the CNF universe");
      return false;
    }
    const Lit n = cc_->LitOf(comp.node);
    const struct {
      const CertBranch& branch;
      Lit assume;
    } sides[2] = {{comp.hi, Pos(v)}, {comp.lo, Neg(v)}};
    for (const auto& side : sides) {
      engine_f_->Push();
      engine_f_->Assume(side.assume);
      const bool replayed = ReplayBranch(side.branch, depth + 1);
      bool established = false;
      if (replayed && !engine_f_->in_conflict()) {
        // The branch proved its own node; one more probe lifts that to the
        // decision node (this is where "comp.node really is the decision
        // gate over this branch" gets checked rather than trusted).
        established = engine_f_->ProbeConflict({~n});
      }
      const bool vacuous = engine_f_->in_conflict();
      engine_f_->Pop();
      if (!replayed) return false;
      if (!established && !vacuous) {
        report_.Add(Severity::kError, rules::kCertifyReplay, comp.node,
                    "decision var " + std::to_string(v + 1),
                    "decision branch does not derive the component node");
        return false;
      }
      engine_f_->AddScoped({~side.assume, n});
    }
    if (engine_f_->in_conflict()) return true;
    if (!engine_f_->ProbeConflict({~n})) {
      report_.Add(Severity::kError, rules::kCertifyReplay, comp.node, "",
                  "decision merge is not RUP-derivable");
      return false;
    }
    engine_f_->AddScoped({n});
    return true;
  }

  bool CheckDeterministic() {
    for (NnfId n : reachable_list_) {
      if (mgr_.kind(n) != NnfManager::Kind::kOr) continue;
      const Span<const NnfId> kids = mgr_.children(n);
      for (size_t i = 0; i < kids.size(); ++i) {
        for (size_t j = i + 1; j < kids.size(); ++j) {
          if (!Charge()) return false;
          const Lit a = cc_->LitOf(kids[i]);
          const Lit b = cc_->LitOf(kids[j]);
          if (engine_defs_->ProbeConflict({a, b})) continue;
          engine_defs_->Push();
          UpEngine::SolveResult r = UpEngine::SolveResult::kUnsat;
          if (engine_defs_->Assume(a) && engine_defs_->Assume(b)) {
            r = engine_defs_->SolveComplete(options_.max_solve_decisions);
          }
          const std::vector<int8_t>& model = engine_defs_->model();
          engine_defs_->Pop();
          if (r == UpEngine::SolveResult::kBudget) {
            report_.Add(Severity::kError, rules::kCertifyBudget, n, "",
                        "determinism check exceeded the DPLL decision budget");
            return false;
          }
          if (r == UpEngine::SolveResult::kSat) {
            report_.Add(Severity::kError, rules::kCertifyDeterministic, n,
                        ModelWitness(model, cert_.cnf.num_vars()),
                        "or-gate inputs " + std::to_string(kids[i]) + " and " +
                            std::to_string(kids[j]) + " share a model");
            return false;
          }
        }
      }
    }
    return true;
  }

  // Bottom-up count over cnf.num_vars() variables with power-of-two gap
  // factors (sound on decomposable circuits with verified-disjoint or-gate
  // inputs; smoothing is not required).
  void CertifyCount() {
    std::vector<BigUint> count(mgr_.num_nodes());
    std::vector<size_t> size(mgr_.num_nodes(), 0);
    for (NnfId n = 0; n < mgr_.num_nodes(); ++n) {
      size[n] = PopCount(varsets_[n]);
    }
    for (NnfId n : reachable_list_) {
      switch (mgr_.kind(n)) {
        case NnfManager::Kind::kFalse:
          count[n] = BigUint(0);
          break;
        case NnfManager::Kind::kTrue:
        case NnfManager::Kind::kLiteral:
          count[n] = BigUint(1);
          break;
        case NnfManager::Kind::kAnd: {
          BigUint product(1);
          for (NnfId c : mgr_.children(n)) product *= count[c];
          count[n] = std::move(product);
          break;
        }
        case NnfManager::Kind::kOr: {
          BigUint sum(0);
          for (NnfId c : mgr_.children(n)) {
            sum += count[c] *
                   BigUint::PowerOfTwo(static_cast<unsigned>(size[n] - size[c]));
          }
          count[n] = std::move(sum);
          break;
        }
      }
    }
    result_->certified_count =
        count[cert_.root] *
        BigUint::PowerOfTwo(
            static_cast<unsigned>(cert_.cnf.num_vars() - size[cert_.root]));
    result_->count_certified = true;
    if (result_->certified_count != cert_.claimed_count) {
      report_.Add(Severity::kError, rules::kCertifyCount, cert_.root,
                  "certified " + result_->certified_count.ToString(),
                  "claimed count " + cert_.claimed_count.ToString() +
                      " disagrees with the certified count");
    }
  }

  const NnfManager& mgr_;
  std::vector<char> reachable_;
  std::vector<NnfId> reachable_list_;
  std::vector<char> used_;
  std::vector<NnfId> used_list_;
  size_t words_ = 0;
  std::vector<std::vector<uint64_t>> varsets_;
  std::optional<CircuitCnf> cc_;
  std::optional<UpEngine> engine_defs_;
  std::optional<UpEngine> engine_f_;
};

// Checks OBDD certificates: decomposability and determinism come from the
// recorded order structurally; CNF |= circuit replays the apply steps and
// the clause-conjunction chain against multiplexer definitions.
class ObddCertChecker : CheckerBase {
 public:
  ObddCertChecker(const Certificate& cert, const CertifyOptions& options,
                  CertifyResult* result)
      : CheckerBase(cert, options, result), trace_(cert.obdd) {}

  void Run() {
    ComputeUsed();
    if (!CheckTable()) return;
    CheckCircuitImpliesCnf();
    BuildEngine();
    CheckCnfImpliesCircuit();
    if (options_.check_count) CertifyCount();
  }

 private:
  uint32_t LevelOf(uint32_t id) const {
    return id <= 1 ? static_cast<uint32_t>(trace_.order.size())
                   : level_[trace_.nodes[id].var];
  }

  // Marks the nodes the certificate actually argues about: the root, every
  // apply-step operand/result, every chain node — closed under children.
  // The table snapshot may carry stale nodes from a reused manager (other
  // compilations, other variable universes); those are ignored everywhere.
  void ComputeUsed() {
    used_.assign(trace_.nodes.size(), 0);
    std::vector<uint32_t> stack;
    const auto mark = [&](uint32_t id) {
      if (!used_[id]) {
        used_[id] = 1;
        stack.push_back(id);
      }
    };
    mark(trace_.root);
    for (const ObddStep& s : trace_.steps) {
      mark(s.f);
      mark(s.g);
      mark(s.r);
    }
    for (const ObddChainLink& link : trace_.chain) {
      mark(link.clause_node);
      mark(link.acc_node);
    }
    while (!stack.empty()) {
      const uint32_t id = stack.back();
      stack.pop_back();
      if (id <= 1) continue;
      mark(trace_.nodes[id].lo);
      mark(trace_.nodes[id].hi);
    }
  }

  bool CheckTable() {
    const size_t nv = cert_.cnf.num_vars();
    level_.assign(nv, static_cast<uint32_t>(-1));
    for (uint32_t i = 0; i < trace_.order.size(); ++i) {
      const Var v = trace_.order[i];
      if (v >= nv || level_[v] != static_cast<uint32_t>(-1)) {
        report_.Add(Severity::kError, rules::kCertifyFormat, i,
                    "var " + std::to_string(v + 1),
                    "order variable out of range or repeated");
        return false;
      }
      level_[v] = i;
    }
    for (uint32_t id = 2; id < trace_.nodes.size(); ++id) {
      if (!used_[id]) continue;
      const ObddTrace::NodeRec& n = trace_.nodes[id];
      if (n.var >= nv || level_[n.var] == static_cast<uint32_t>(-1)) {
        report_.Add(Severity::kError, rules::kCertifyFormat, id,
                    "var " + std::to_string(n.var + 1),
                    "decision variable not in the recorded order");
        return false;
      }
      if (LevelOf(n.lo) <= level_[n.var] || LevelOf(n.hi) <= level_[n.var]) {
        report_.Add(Severity::kError, rules::kCertifyObddOrdered, id,
                    "var " + std::to_string(n.var + 1),
                    "child tests a variable at or above its parent's level");
        return false;
      }
    }
    return true;
  }

  void CheckCircuitImpliesCnf() {
    std::vector<int8_t> assign(cert_.cnf.num_vars(), 0);
    std::vector<char> sat(trace_.nodes.size(), 0);
    sat[1] = 1;
    for (size_t i = 0; i < cert_.cnf.num_clauses(); ++i) {
      if (!Charge()) return;
      const Clause& clause = cert_.cnf.clause(i);
      for (Lit l : clause) assign[l.var()] = l.positive() ? -1 : 1;
      for (uint32_t id = 2; id < trace_.nodes.size(); ++id) {
        if (!used_[id]) continue;
        const ObddTrace::NodeRec& n = trace_.nodes[id];
        const int8_t a = assign[n.var];
        sat[id] = a > 0   ? sat[n.hi]
                  : a < 0 ? sat[n.lo]
                          : (sat[n.lo] || sat[n.hi]);
      }
      if (sat[trace_.root]) {
        report_.Add(Severity::kError, rules::kCertifyCircuitImpliesCnf,
                    trace_.root, "clause " + std::to_string(i),
                    "circuit does not entail input clause");
      }
      for (Lit l : clause) assign[l.var()] = 0;
    }
  }

  Lit Gate(uint32_t id) const {
    return Pos(static_cast<Var>(cert_.cnf.num_vars() + id));
  }

  void BuildEngine() {
    engine_.emplace(cert_.cnf.num_vars() + trace_.nodes.size());
    for (const Clause& c : cert_.cnf.clauses()) engine_->AddPermanent(c);
    engine_->AddPermanent({~Gate(0)});
    engine_->AddPermanent({Gate(1)});
    for (uint32_t id = 2; id < trace_.nodes.size(); ++id) {
      if (!used_[id]) continue;
      const ObddTrace::NodeRec& rec = trace_.nodes[id];
      const Lit n = Gate(id);
      const Lit v = Pos(rec.var);
      const Lit lo = Gate(rec.lo);
      const Lit hi = Gate(rec.hi);
      engine_->AddPermanent({~n, ~v, hi});
      engine_->AddPermanent({~n, v, lo});
      engine_->AddPermanent({n, ~v, ~hi});
      engine_->AddPermanent({n, v, ~lo});
    }
  }

  // Verifies the conjunction lemma (~f | ~g | r) of one apply step by a UP
  // probe per branch of the step's top variable, then admits it.
  bool VerifyStep(size_t index, const ObddStep& s) {
    const Lit f = Gate(s.f);
    const Lit g = Gate(s.g);
    const Lit r = Gate(s.r);
    const uint32_t top = std::min(LevelOf(s.f), LevelOf(s.g));
    bool verified;
    if (top >= trace_.order.size()) {
      verified = engine_->ProbeConflict({f, g, ~r});  // both terminals
    } else {
      const Lit v = Pos(trace_.order[top]);
      verified = engine_->ProbeConflict({v, f, g, ~r}) &&
                 engine_->ProbeConflict({~v, f, g, ~r});
    }
    if (!verified) {
      report_.Add(Severity::kError, rules::kCertifyReplay, s.r,
                  "step " + std::to_string(index),
                  "apply-step lemma is not RUP-derivable");
      return false;
    }
    engine_->AddScoped({~f, ~g, r});
    return true;
  }

  void CheckCnfImpliesCircuit() {
    for (size_t i = 0; i < trace_.steps.size(); ++i) {
      if (!Charge()) return;
      if (engine_->root_conflict()) return;  // CNF refuted: trivially done
      if (!VerifyStep(i, trace_.steps[i])) return;
    }
    uint32_t last_acc = 1;  // empty chain: the accumulator is True
    for (const ObddChainLink& link : trace_.chain) {
      if (!Charge()) return;
      if (engine_->root_conflict()) return;
      // F |= the clause OBDD: assuming its gate false walks the chain and
      // falsifies every literal of the input clause.
      if (!engine_->ProbeConflict({~Gate(link.clause_node)})) {
        report_.Add(Severity::kError, rules::kCertifyReplay, link.clause_node,
                    "clause " + std::to_string(link.clause_index),
                    "clause OBDD is not RUP-derivable from the input clause");
        return;
      }
      engine_->AddScoped({Gate(link.clause_node)});
      if (!engine_->ProbeConflict({~Gate(link.acc_node)})) {
        report_.Add(Severity::kError, rules::kCertifyReplay, link.acc_node,
                    "clause " + std::to_string(link.clause_index),
                    "conjunction chain link is not RUP-derivable");
        return;
      }
      engine_->AddScoped({Gate(link.acc_node)});
      last_acc = link.acc_node;
    }
    if (engine_->root_conflict()) return;
    if (last_acc != trace_.root) {
      report_.Add(Severity::kError, rules::kCertifyReplay, trace_.root,
                  "chain ends at node " + std::to_string(last_acc),
                  "conjunction chain does not derive the certificate root");
    }
  }

  void CertifyCount() {
    std::vector<BigUint> count(trace_.nodes.size());
    count[0] = BigUint(0);
    count[1] = BigUint(1);
    for (uint32_t id = 2; id < trace_.nodes.size(); ++id) {
      if (!used_[id]) continue;
      const ObddTrace::NodeRec& n = trace_.nodes[id];
      const uint32_t lvl = level_[n.var];
      count[id] =
          count[n.lo] *
              BigUint::PowerOfTwo(LevelOf(n.lo) - lvl - 1) +
          count[n.hi] * BigUint::PowerOfTwo(LevelOf(n.hi) - lvl - 1);
    }
    // Free variables above the root and outside the order contribute 2^k.
    result_->certified_count =
        count[trace_.root] * BigUint::PowerOfTwo(LevelOf(trace_.root)) *
        BigUint::PowerOfTwo(
            static_cast<unsigned>(cert_.cnf.num_vars() - trace_.order.size()));
    result_->count_certified = true;
    if (result_->certified_count != cert_.claimed_count) {
      report_.Add(Severity::kError, rules::kCertifyCount, trace_.root,
                  "certified " + result_->certified_count.ToString(),
                  "claimed count " + cert_.claimed_count.ToString() +
                      " disagrees with the certified count");
    }
  }

  const ObddTrace& trace_;
  std::vector<char> used_;
  std::vector<uint32_t> level_;
  std::optional<UpEngine> engine_;
};

}  // namespace

CertifyResult CheckCertificate(const Certificate& cert,
                               const CertifyOptions& options) {
  Timer timer;
  CertifyResult result;
  TBC_COUNT("certify.checks");
  if (cert.kind == Certificate::Kind::kObdd) {
    ObddCertChecker(cert, options, &result).Run();
  } else {
    NnfCertChecker(cert, options, &result).Run();
  }
  TBC_OBSERVE_VALUE("certify.check_us",
                    static_cast<uint64_t>(timer.Millis() * 1000.0));
  return result;
}

}  // namespace tbc
