#ifndef TBC_CERTIFY_EMIT_H_
#define TBC_CERTIFY_EMIT_H_

#include "base/bigint.h"
#include "certify/certificate.h"
#include "logic/cnf.h"
#include "nnf/nnf.h"
#include "obdd/obdd.h"
#include "sdd/sdd.h"

namespace tbc {

/// Producer-side half of certification: snapshot one finished compilation
/// into a self-contained Certificate, serialize it, and (in TBC_CERTIFY
/// builds) feed it straight back through the independent checker. This
/// library depends on the compiler substrates — it is explicitly *outside*
/// the trust boundary. Only certify/checker.h + certify/up_engine.h +
/// analysis/tseitin.h are trusted, and they never link against this.

/// Snapshots `mgr`'s node table (ids preserved) plus the optional search
/// trace. `claimed_count` is whatever the producing counter reported over
/// cnf.num_vars() variables. Pass trace == nullptr for traceless
/// certificates (the checker falls back to its own DPLL for CNF |= circuit).
Certificate BuildDdnnfCertificate(const Cnf& cnf, const NnfManager& mgr,
                                  NnfId root, const DdnnfTrace* trace,
                                  BigUint claimed_count);

/// Wraps a complete OBDD compilation trace (table, order, apply steps and
/// clause chain — see ObddManager::CompileCnfTraced). Order variables
/// outside cnf's universe are dropped; the certificate is only meaningful
/// when every node in the trace decides a CNF variable (fresh-manager
/// compiles — the checker rejects anything else).
Certificate BuildObddCertificate(const Cnf& cnf, ObddTrace trace,
                                 BigUint claimed_count);

/// Exports the SDD as d-DNNF into the certificate's node table. SDD apply
/// is not trace-instrumented, so the checker proves CNF |= circuit with its
/// trusted DPLL.
Certificate BuildSddCertificate(const Cnf& cnf, const SddManager& mgr,
                                SddId root, BigUint claimed_count);

/// Serializes `cert`, reparses the text, and runs the independent checker
/// on the parsed copy — the full pipeline a skeptical consumer would run.
/// Aborts with the diagnostic report on any failure. `site` names the
/// compile site in the report. Bumps certify.traces_emitted /
/// certify.trace_bytes and (inside the checker) certify.check_us.
void CertifyOrDie(const Certificate& cert, const char* site);

/// Convenience hooks for the TBC_CERTIFY build mode: compute the claimed
/// count with the corresponding untrusted counter, build, and CertifyOrDie.
void CertifyDdnnfOrDie(const Cnf& cnf, NnfManager& mgr, NnfId root,
                       const DdnnfTrace* trace, const char* site);
void CertifyObddOrDie(const Cnf& cnf, ObddManager& mgr, ObddTrace trace,
                      const char* site);
void CertifySddOrDie(const Cnf& cnf, SddManager& mgr, SddId root,
                     const char* site);

}  // namespace tbc

#endif  // TBC_CERTIFY_EMIT_H_
