#include "certify/certificate.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/observability.h"
#include "base/strings.h"

namespace tbc {

namespace {

// Signed DIMACS token; false on garbage or overflow-ish input.
bool ParseInt(std::string_view token, int64_t* out) {
  bool negative = false;
  if (!token.empty() && token[0] == '-') {
    negative = true;
    token.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseUint64(token, &magnitude) || magnitude > (1ull << 62)) return false;
  *out = negative ? -static_cast<int64_t>(magnitude)
                  : static_cast<int64_t>(magnitude);
  return true;
}

void AppendBranch(const CertBranch& branch, const char* keyword,
                  std::string* out) {
  out->append(keyword);
  if (branch.conflict) {
    out->append(" c\n");
    return;
  }
  out->append(" ").append(std::to_string(branch.node));
  out->append(" ").append(std::to_string(branch.comps.size()));
  for (uint32_t id : branch.comps) {
    out->append(" ").append(std::to_string(id));
  }
  out->append("\n");
}

void AppendNnfSection(const NnfManager& mgr, NnfId root, std::string* out) {
  out->append("nnf ").append(std::to_string(mgr.num_nodes()));
  out->append(" ").append(std::to_string(root)).append("\n");
  for (NnfId n = 0; n < mgr.num_nodes(); ++n) {
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
        out->append("F\n");
        break;
      case NnfManager::Kind::kTrue:
        out->append("T\n");
        break;
      case NnfManager::Kind::kLiteral:
        out->append("L ").append(std::to_string(mgr.lit(n).ToDimacs()));
        out->append("\n");
        break;
      case NnfManager::Kind::kAnd:
      case NnfManager::Kind::kOr: {
        out->append(mgr.kind(n) == NnfManager::Kind::kAnd ? "A " : "O ");
        const Span<const NnfId> kids = mgr.children(n);
        out->append(std::to_string(kids.size()));
        for (NnfId k : kids) out->append(" ").append(std::to_string(k));
        out->append("\n");
        break;
      }
    }
  }
}

// Line cursor over the certificate text; keeps a 1-based line number for
// error messages and skips blank lines.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : lines_(SplitChar(text, '\n')) {}

  bool Next(std::vector<std::string>* tokens) {
    while (pos_ < lines_.size()) {
      ++line_number_;
      std::string_view line = StripWhitespace(lines_[pos_++]);
      if (line.empty()) continue;
      *tokens = SplitWhitespace(line);
      return true;
    }
    return false;
  }

  Status Err(const std::string& message) const {
    return Status::InvalidInput("certificate line " +
                                std::to_string(line_number_) + ": " + message);
  }

 private:
  std::vector<std::string> lines_;
  size_t pos_ = 0;
  size_t line_number_ = 0;
};

Status ParseBranchTokens(const std::vector<std::string>& tokens,
                         const LineReader& reader, size_t num_comps,
                         CertBranch* out) {
  if (tokens.size() == 2 && tokens[1] == "c") {
    out->conflict = true;
    return Status::Ok();
  }
  uint64_t node = 0;
  uint64_t count = 0;
  if (tokens.size() < 3 || !ParseUint64(tokens[1], &node) ||
      !ParseUint64(tokens[2], &count) || tokens.size() != 3 + count) {
    return reader.Err("malformed branch record");
  }
  out->conflict = false;
  out->node = static_cast<NnfId>(node);
  out->comps.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!ParseUint64(tokens[3 + i], &id) || id >= num_comps) {
      return reader.Err("branch references unknown component");
    }
    out->comps.push_back(static_cast<uint32_t>(id));
  }
  return Status::Ok();
}

Status ParseNnfSection(LineReader& reader, std::vector<std::string>& tokens,
                       Certificate* cert) {
  uint64_t num_nodes = 0;
  uint64_t root = 0;
  if (tokens.size() != 3 || tokens[0] != "nnf" ||
      !ParseUint64(tokens[1], &num_nodes) || !ParseUint64(tokens[2], &root)) {
    return reader.Err("expected 'nnf <nodes> <root>'");
  }
  if (num_nodes < 2 || root >= num_nodes) {
    return reader.Err("nnf root/size out of range");
  }
  for (NnfId expect = 0; expect < num_nodes; ++expect) {
    if (!reader.Next(&tokens)) return reader.Err("truncated nnf node table");
    NnfId got = kInvalidNnf;
    if (tokens[0] == "F" && tokens.size() == 1) {
      got = cert->nnf.False();
    } else if (tokens[0] == "T" && tokens.size() == 1) {
      got = cert->nnf.True();
    } else if (tokens[0] == "L" && tokens.size() == 2) {
      int64_t dimacs = 0;
      if (!ParseInt(tokens[1], &dimacs) || dimacs == 0) {
        return reader.Err("bad literal node");
      }
      got = cert->nnf.Literal(Lit::FromDimacs(static_cast<int>(dimacs)));
    } else if ((tokens[0] == "A" || tokens[0] == "O") && tokens.size() >= 2) {
      uint64_t count = 0;
      if (!ParseUint64(tokens[1], &count) || tokens.size() != 2 + count) {
        return reader.Err("malformed gate node");
      }
      std::vector<NnfId> kids;
      kids.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        uint64_t k = 0;
        if (!ParseUint64(tokens[2 + i], &k) || k >= expect) {
          return reader.Err("gate child id out of range");
        }
        kids.push_back(static_cast<NnfId>(k));
      }
      got = tokens[0] == "A" ? cert->nnf.And(std::move(kids))
                             : cert->nnf.Or(std::move(kids));
    } else {
      return reader.Err("unrecognized nnf node line");
    }
    // The manager replays its own simplification rules; a node that lands
    // on a different id is not in canonical form (or a duplicate), and the
    // trace ids would be meaningless.
    if (got != expect) return reader.Err("nnf node is not canonical");
  }
  cert->root = static_cast<NnfId>(root);
  return Status::Ok();
}

Status ParseDdnnfTrace(LineReader& reader, std::vector<std::string>& tokens,
                       Certificate* cert) {
  if (tokens[0] == "notrace" && tokens.size() == 1) return Status::Ok();
  uint64_t num_comps = 0;
  if (tokens.size() != 2 || tokens[0] != "trace" ||
      !ParseUint64(tokens[1], &num_comps)) {
    return reader.Err("expected 'trace <comps>' or 'notrace'");
  }
  cert->ddnnf.comps.resize(num_comps);
  for (uint64_t i = 0; i < num_comps; ++i) {
    if (!reader.Next(&tokens)) return reader.Err("truncated trace");
    uint64_t var = 0;
    uint64_t node = 0;
    if (tokens.size() != 3 || tokens[0] != "comp" ||
        !ParseUint64(tokens[1], &var) || !ParseUint64(tokens[2], &node) ||
        node >= cert->nnf.num_nodes()) {
      return reader.Err("malformed component record");
    }
    CertComp& comp = cert->ddnnf.comps[i];
    comp.decision = static_cast<Var>(var);
    comp.node = static_cast<NnfId>(node);
    for (CertBranch* branch : {&comp.hi, &comp.lo}) {
      if (!reader.Next(&tokens) || tokens.empty() || tokens[0] != "b") {
        return reader.Err("expected branch record");
      }
      TBC_RETURN_IF_ERROR(
          ParseBranchTokens(tokens, reader, num_comps, branch));
      if (!branch->conflict && branch->node >= cert->nnf.num_nodes()) {
        return reader.Err("branch node id out of range");
      }
    }
  }
  if (!reader.Next(&tokens) || tokens.empty() || tokens[0] != "top") {
    return reader.Err("expected top-level branch record");
  }
  TBC_RETURN_IF_ERROR(
      ParseBranchTokens(tokens, reader, num_comps, &cert->ddnnf.top));
  if (!cert->ddnnf.top.conflict &&
      cert->ddnnf.top.node >= cert->nnf.num_nodes()) {
    return reader.Err("top node id out of range");
  }
  return Status::Ok();
}

Status ParseObddSection(LineReader& reader, std::vector<std::string>& tokens,
                        Certificate* cert) {
  uint64_t order_len = 0;
  if (tokens.size() < 2 || tokens[0] != "order" ||
      !ParseUint64(tokens[1], &order_len) || tokens.size() != 2 + order_len) {
    return reader.Err("expected 'order <n> <vars...>'");
  }
  ObddTrace& trace = cert->obdd;
  trace.order.reserve(order_len);
  for (size_t i = 0; i < order_len; ++i) {
    uint64_t v = 0;
    if (!ParseUint64(tokens[2 + i], &v)) return reader.Err("bad order entry");
    trace.order.push_back(static_cast<Var>(v));
  }
  uint64_t num_nodes = 0;
  uint64_t root = 0;
  if (!reader.Next(&tokens) || tokens.size() != 3 || tokens[0] != "obdd" ||
      !ParseUint64(tokens[1], &num_nodes) || !ParseUint64(tokens[2], &root) ||
      num_nodes < 2 || root >= num_nodes) {
    return reader.Err("expected 'obdd <nodes> <root>'");
  }
  trace.root = static_cast<uint32_t>(root);
  trace.nodes.resize(num_nodes);
  trace.nodes[0] = {kInvalidVar, 0, 0};
  trace.nodes[1] = {kInvalidVar, 1, 1};
  for (uint64_t id = 2; id < num_nodes; ++id) {
    uint64_t var = 0;
    uint64_t lo = 0;
    uint64_t hi = 0;
    if (!reader.Next(&tokens) || tokens.size() != 3 ||
        !ParseUint64(tokens[0], &var) || !ParseUint64(tokens[1], &lo) ||
        !ParseUint64(tokens[2], &hi) || lo >= id || hi >= id) {
      return reader.Err("malformed obdd node (children must precede)");
    }
    trace.nodes[id] = {static_cast<Var>(var), static_cast<uint32_t>(lo),
                       static_cast<uint32_t>(hi)};
  }
  uint64_t num_steps = 0;
  if (!reader.Next(&tokens) || tokens.size() != 2 || tokens[0] != "steps" ||
      !ParseUint64(tokens[1], &num_steps)) {
    return reader.Err("expected 'steps <n>'");
  }
  trace.steps.reserve(num_steps);
  for (uint64_t i = 0; i < num_steps; ++i) {
    uint64_t f = 0;
    uint64_t g = 0;
    uint64_t r = 0;
    if (!reader.Next(&tokens) || tokens.size() != 3 ||
        !ParseUint64(tokens[0], &f) || !ParseUint64(tokens[1], &g) ||
        !ParseUint64(tokens[2], &r) || f >= num_nodes || g >= num_nodes ||
        r >= num_nodes) {
      return reader.Err("malformed apply step");
    }
    trace.steps.push_back({static_cast<uint32_t>(f), static_cast<uint32_t>(g),
                           static_cast<uint32_t>(r)});
  }
  uint64_t num_links = 0;
  if (!reader.Next(&tokens) || tokens.size() != 2 || tokens[0] != "chain" ||
      !ParseUint64(tokens[1], &num_links)) {
    return reader.Err("expected 'chain <n>'");
  }
  trace.chain.reserve(num_links);
  for (uint64_t i = 0; i < num_links; ++i) {
    uint64_t idx = 0;
    uint64_t clause = 0;
    uint64_t acc = 0;
    if (!reader.Next(&tokens) || tokens.size() != 3 ||
        !ParseUint64(tokens[0], &idx) || !ParseUint64(tokens[1], &clause) ||
        !ParseUint64(tokens[2], &acc) || idx >= cert->cnf.num_clauses() ||
        clause >= num_nodes || acc >= num_nodes) {
      return reader.Err("malformed chain link");
    }
    trace.chain.push_back({static_cast<uint32_t>(idx),
                           static_cast<uint32_t>(clause),
                           static_cast<uint32_t>(acc)});
  }
  return Status::Ok();
}

}  // namespace

const char* CertificateKindName(Certificate::Kind kind) {
  switch (kind) {
    case Certificate::Kind::kDdnnf:
      return "ddnnf";
    case Certificate::Kind::kObdd:
      return "obdd";
    case Certificate::Kind::kSdd:
      return "sdd";
  }
  return "?";
}

bool ParseBigUint(const std::string& text, BigUint* out) {
  if (text.empty()) return false;
  BigUint value;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value *= BigUint(10);
    value += BigUint(static_cast<uint64_t>(c - '0'));
  }
  *out = std::move(value);
  return true;
}

std::string WriteCertificate(const Certificate& cert) {
  std::string out;
  out.append("tbc-cert 1 ").append(CertificateKindName(cert.kind));
  out.append("\n");
  out.append("count ").append(cert.claimed_count.ToString()).append("\n");
  out.append("cnf ").append(std::to_string(cert.cnf.num_vars()));
  out.append(" ").append(std::to_string(cert.cnf.num_clauses())).append("\n");
  for (const Clause& clause : cert.cnf.clauses()) {
    for (Lit l : clause) {
      out.append(std::to_string(l.ToDimacs())).append(" ");
    }
    out.append("0\n");
  }
  switch (cert.kind) {
    case Certificate::Kind::kDdnnf: {
      AppendNnfSection(cert.nnf, cert.root, &out);
      const bool have_trace = !cert.ddnnf.comps.empty() ||
                              cert.ddnnf.top.conflict ||
                              cert.ddnnf.top.node != kInvalidNnf;
      if (!have_trace) {
        out.append("notrace\n");
      } else {
        out.append("trace ").append(std::to_string(cert.ddnnf.comps.size()));
        out.append("\n");
        for (const CertComp& comp : cert.ddnnf.comps) {
          out.append("comp ").append(std::to_string(comp.decision));
          out.append(" ").append(std::to_string(comp.node)).append("\n");
          AppendBranch(comp.hi, "b", &out);
          AppendBranch(comp.lo, "b", &out);
        }
        AppendBranch(cert.ddnnf.top, "top", &out);
      }
      break;
    }
    case Certificate::Kind::kSdd:
      AppendNnfSection(cert.nnf, cert.root, &out);
      out.append("notrace\n");
      break;
    case Certificate::Kind::kObdd: {
      const ObddTrace& trace = cert.obdd;
      out.append("order ").append(std::to_string(trace.order.size()));
      for (Var v : trace.order) out.append(" ").append(std::to_string(v));
      out.append("\n");
      out.append("obdd ").append(std::to_string(trace.nodes.size()));
      out.append(" ").append(std::to_string(trace.root)).append("\n");
      for (size_t id = 2; id < trace.nodes.size(); ++id) {
        const ObddTrace::NodeRec& n = trace.nodes[id];
        out.append(std::to_string(n.var)).append(" ");
        out.append(std::to_string(n.lo)).append(" ");
        out.append(std::to_string(n.hi)).append("\n");
      }
      out.append("steps ").append(std::to_string(trace.steps.size()));
      out.append("\n");
      for (const ObddStep& s : trace.steps) {
        out.append(std::to_string(s.f)).append(" ");
        out.append(std::to_string(s.g)).append(" ");
        out.append(std::to_string(s.r)).append("\n");
      }
      out.append("chain ").append(std::to_string(trace.chain.size()));
      out.append("\n");
      for (const ObddChainLink& link : trace.chain) {
        out.append(std::to_string(link.clause_index)).append(" ");
        out.append(std::to_string(link.clause_node)).append(" ");
        out.append(std::to_string(link.acc_node)).append("\n");
      }
      break;
    }
  }
  out.append("end\n");
  TBC_COUNT("certify.traces_emitted");
  TBC_COUNT_N("certify.trace_bytes", out.size());
  return out;
}

Result<Certificate> ParseCertificate(const std::string& text) {
  Certificate cert;
  LineReader reader(text);
  std::vector<std::string> tokens;
  if (!reader.Next(&tokens) || tokens.size() != 3 || tokens[0] != "tbc-cert") {
    return reader.Err("expected 'tbc-cert 1 <kind>' header");
  }
  if (tokens[1] != "1") return reader.Err("unsupported certificate version");
  if (tokens[2] == "ddnnf") {
    cert.kind = Certificate::Kind::kDdnnf;
  } else if (tokens[2] == "obdd") {
    cert.kind = Certificate::Kind::kObdd;
  } else if (tokens[2] == "sdd") {
    cert.kind = Certificate::Kind::kSdd;
  } else {
    return reader.Err("unknown certificate kind '" + tokens[2] + "'");
  }
  if (!reader.Next(&tokens) || tokens.size() != 2 || tokens[0] != "count" ||
      !ParseBigUint(tokens[1], &cert.claimed_count)) {
    return reader.Err("expected 'count <decimal>'");
  }
  uint64_t num_vars = 0;
  uint64_t num_clauses = 0;
  if (!reader.Next(&tokens) || tokens.size() != 3 || tokens[0] != "cnf" ||
      !ParseUint64(tokens[1], &num_vars) ||
      !ParseUint64(tokens[2], &num_clauses)) {
    return reader.Err("expected 'cnf <vars> <clauses>'");
  }
  cert.cnf.EnsureVars(num_vars);
  for (uint64_t i = 0; i < num_clauses; ++i) {
    if (!reader.Next(&tokens)) return reader.Err("truncated clause list");
    Clause clause;
    bool terminated = false;
    for (const std::string& tok : tokens) {
      int64_t d = 0;
      if (terminated || !ParseInt(tok, &d)) {
        return reader.Err("malformed clause line");
      }
      if (d == 0) {
        terminated = true;
        continue;
      }
      const uint64_t var = static_cast<uint64_t>(d < 0 ? -d : d) - 1;
      if (var >= num_vars) return reader.Err("clause literal out of range");
      clause.push_back(Lit::FromDimacs(static_cast<int>(d)));
    }
    if (!terminated) return reader.Err("clause line missing trailing 0");
    cert.cnf.AddClause(std::move(clause));
  }
  // AddClause drops tautologies and duplicate literals; a count mismatch
  // means the embedded CNF was not in the writer's normalized form.
  if (cert.cnf.num_clauses() != num_clauses) {
    return reader.Err("embedded CNF is not normalized");
  }

  if (!reader.Next(&tokens) || tokens.empty()) {
    return reader.Err("truncated certificate body");
  }
  switch (cert.kind) {
    case Certificate::Kind::kDdnnf:
      TBC_RETURN_IF_ERROR(ParseNnfSection(reader, tokens, &cert));
      if (!reader.Next(&tokens) || tokens.empty()) {
        return reader.Err("missing trace section");
      }
      TBC_RETURN_IF_ERROR(ParseDdnnfTrace(reader, tokens, &cert));
      break;
    case Certificate::Kind::kSdd:
      TBC_RETURN_IF_ERROR(ParseNnfSection(reader, tokens, &cert));
      if (!reader.Next(&tokens) || tokens.size() != 1 ||
          tokens[0] != "notrace") {
        return reader.Err("expected 'notrace' for sdd certificates");
      }
      break;
    case Certificate::Kind::kObdd:
      TBC_RETURN_IF_ERROR(ParseObddSection(reader, tokens, &cert));
      break;
  }
  if (!reader.Next(&tokens) || tokens.size() != 1 || tokens[0] != "end") {
    return reader.Err("missing 'end' marker (truncated certificate)");
  }
  return cert;
}

}  // namespace tbc
