#ifndef TBC_CERTIFY_TRACE_H_
#define TBC_CERTIFY_TRACE_H_

#include <cstdint>
#include <vector>

#include "logic/lit.h"
#include "nnf/nnf.h"

// Canonical on/off switch for trace-emission sites in the compilers
// (mirrors TBC_OBSERVE_ON in base/observability.h). The CMake option
// TBC_CERTIFY_TRACE defines TBC_CERTIFY_TRACE_ENABLED; with it off, every
// emission site compiles away entirely.
#if defined(TBC_CERTIFY_TRACE_ENABLED) && TBC_CERTIFY_TRACE_ENABLED
#define TBC_CERTIFY_TRACE_ON 1
#else
#define TBC_CERTIFY_TRACE_ON 0
#endif

namespace tbc {

/// Raw derivation traces recorded by the compilers while they run. These
/// are plain data — no behavior, no dependency on compiler internals — so
/// the producing libraries can fill them without linking the checker. The
/// checker (certify/checker.h) replays them with its own unit-propagation
/// engine; nothing in a trace is trusted until it survives that replay.
///
/// Trace emission sites in the compilers are compiled behind
/// TBC_CERTIFY_TRACE_ENABLED; with the switch off the structs still exist
/// (they are cheap) but no compiler references them.

/// One DPLL search-tree edge of the d-DNNF compiler: the result of
/// compiling a clause set (under the assumptions accumulated on the path).
/// Either the set was refuted by unit propagation (`conflict`) or it
/// compiled to `node` as the conjunction of BCP-implied literals and the
/// listed components. Implied literals are not recorded: the checker's own
/// propagation re-derives them.
struct CertBranch {
  bool conflict = false;
  NnfId node = kInvalidNnf;
  /// Indices into DdnnfTrace::comps, in compilation order.
  std::vector<uint32_t> comps;
};

/// One cached component: a Shannon decision on `decision` whose branches
/// compiled to `hi` / `lo`. `node` is the resulting circuit node (the
/// decision gate, or whatever it simplified to). Components are referenced
/// by index; a cache hit in the compiler re-references the original record,
/// and the checker re-replays it under the new path.
struct CertComp {
  Var decision = kInvalidVar;
  NnfId node = kInvalidNnf;
  CertBranch hi;
  CertBranch lo;
};

/// Full derivation trace of one d-DNNF compilation.
struct DdnnfTrace {
  std::vector<CertComp> comps;
  CertBranch top;

  void Clear() {
    comps.clear();
    top = CertBranch();
  }
};

/// One conjunction Apply step of the OBDD manager, recorded at an op-cache
/// miss: r = And(f, g). The checker verifies the clausal lemma
/// (~f \/ ~g \/ r) by two unit-propagation probes (one per branch of the
/// top variable, recomputed from the node table) before admitting it.
struct ObddStep {
  uint32_t f = 0;
  uint32_t g = 0;
  uint32_t r = 0;
};

/// One link of CompileCnf's conjunction chain: after building the OBDD
/// `clause_node` for input clause `clause_index`, the accumulator became
/// `acc_node`.
struct ObddChainLink {
  uint32_t clause_index = 0;
  uint32_t clause_node = 0;
  uint32_t acc_node = 0;
};

/// Apply-step sink a long-lived ObddManager writes into while a trace is
/// attached (the manager clears its op cache on attach so every cached
/// conjunction has a recorded step).
struct ObddTraceSink {
  std::vector<ObddStep> steps;
};

/// Full derivation trace of one OBDD CompileCnf run: the manager's node
/// table snapshot, the variable order, the conjunction steps, and the
/// clause chain ending at `root`.
struct ObddTrace {
  struct NodeRec {
    Var var = kInvalidVar;
    uint32_t lo = 0;
    uint32_t hi = 0;
  };
  std::vector<Var> order;
  std::vector<NodeRec> nodes;  // ids 0/1 are the terminals
  std::vector<ObddStep> steps;
  std::vector<ObddChainLink> chain;
  uint32_t root = 0;
};

}  // namespace tbc

#endif  // TBC_CERTIFY_TRACE_H_
