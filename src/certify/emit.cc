#include "certify/emit.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "base/check.h"
#include "base/observability.h"
#include "certify/checker.h"
#include "nnf/queries.h"

namespace tbc {

namespace {

// Replays `src`'s construction into `dst`. The store is canonical and
// append-only, so interning each node's (already canonical) children in id
// order reproduces the table with identical ids — which is what keeps the
// trace's node references valid inside the certificate.
void CopyNnfTable(const NnfManager& src, NnfManager* dst) {
  for (NnfId n = 2; n < src.num_nodes(); ++n) {
    NnfId got = kInvalidNnf;
    switch (src.kind(n)) {
      case NnfManager::Kind::kFalse:
        got = dst->False();
        break;
      case NnfManager::Kind::kTrue:
        got = dst->True();
        break;
      case NnfManager::Kind::kLiteral:
        got = dst->Literal(src.lit(n));
        break;
      case NnfManager::Kind::kAnd:
        got = dst->And(src.children(n));
        break;
      case NnfManager::Kind::kOr:
        got = dst->Or(src.children(n));
        break;
    }
    TBC_CHECK_MSG(got == n, "NNF store replay diverged (non-canonical table)");
  }
}

}  // namespace

Certificate BuildDdnnfCertificate(const Cnf& cnf, const NnfManager& mgr,
                                  NnfId root, const DdnnfTrace* trace,
                                  BigUint claimed_count) {
  Certificate cert;
  cert.kind = Certificate::Kind::kDdnnf;
  cert.cnf = cnf;
  CopyNnfTable(mgr, &cert.nnf);
  cert.root = root;
  if (trace != nullptr) {
    cert.ddnnf.comps = trace->comps;
    cert.ddnnf.top = trace->top;
  }
  cert.claimed_count = std::move(claimed_count);
  return cert;
}

Certificate BuildObddCertificate(const Cnf& cnf, ObddTrace trace,
                                 BigUint claimed_count) {
  Certificate cert;
  cert.kind = Certificate::Kind::kObdd;
  cert.cnf = cnf;
  // Drop order variables the CNF does not know about: they cannot occur in
  // any recorded node (the checker enforces that), and the count formula's
  // free-variable factor is defined over cnf.num_vars().
  std::vector<Var> order;
  order.reserve(trace.order.size());
  for (Var v : trace.order) {
    if (v < cnf.num_vars()) order.push_back(v);
  }
  trace.order = std::move(order);
  cert.obdd = std::move(trace);
  cert.claimed_count = std::move(claimed_count);
  return cert;
}

Certificate BuildSddCertificate(const Cnf& cnf, const SddManager& mgr,
                                SddId root, BigUint claimed_count) {
  Certificate cert;
  cert.kind = Certificate::Kind::kSdd;
  cert.cnf = cnf;
  cert.root = mgr.ToNnf(root, cert.nnf);
  cert.claimed_count = std::move(claimed_count);
  return cert;
}

void CertifyOrDie(const Certificate& cert, const char* site) {
  // WriteCertificate counts certify.traces_emitted / certify.trace_bytes.
  const std::string text = WriteCertificate(cert);
  Result<Certificate> parsed = ParseCertificate(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "[%s] emitted certificate does not reparse: %s\n",
                 site, parsed.status().message().c_str());
    std::abort();
  }
  const CertifyResult result = CheckCertificate(*parsed);
  if (!result.ok()) {
    std::fprintf(stderr, "[%s] certificate verification failed\n%s", site,
                 result.report.ToText(site).c_str());
    std::abort();
  }
}

void CertifyDdnnfOrDie(const Cnf& cnf, NnfManager& mgr, NnfId root,
                       const DdnnfTrace* trace, const char* site) {
  BigUint claimed = ModelCount(mgr, root, cnf.num_vars());
  CertifyOrDie(
      BuildDdnnfCertificate(cnf, mgr, root, trace, std::move(claimed)), site);
}

void CertifyObddOrDie(const Cnf& cnf, ObddManager& mgr, ObddTrace trace,
                      const char* site) {
  BigUint claimed;
  if (cnf.num_vars() >= mgr.num_vars()) {
    claimed = mgr.ModelCount(trace.root) *
              BigUint::PowerOfTwo(
                  static_cast<unsigned>(cnf.num_vars() - mgr.num_vars()));
  } else {
    // Manager has variables outside the CNF's universe; recount over the
    // CNF universe through the NNF export instead of dividing.
    NnfManager scratch;
    const NnfId nroot = mgr.ToNnf(trace.root, scratch);
    claimed = ModelCount(scratch, nroot, cnf.num_vars());
  }
  CertifyOrDie(BuildObddCertificate(cnf, std::move(trace), std::move(claimed)),
               site);
}

void CertifySddOrDie(const Cnf& cnf, SddManager& mgr, SddId root,
                     const char* site) {
  BigUint claimed;
  if (cnf.num_vars() >= mgr.num_vars()) {
    claimed = mgr.ModelCount(root) *
              BigUint::PowerOfTwo(
                  static_cast<unsigned>(cnf.num_vars() - mgr.num_vars()));
  } else {
    NnfManager scratch;
    const NnfId nroot = mgr.ToNnf(root, scratch);
    claimed = ModelCount(scratch, nroot, cnf.num_vars());
  }
  CertifyOrDie(BuildSddCertificate(cnf, mgr, root, std::move(claimed)), site);
}

}  // namespace tbc
