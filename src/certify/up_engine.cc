#include "certify/up_engine.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace tbc {

UpEngine::UpEngine(size_t num_vars)
    : num_vars_(num_vars),
      watches_(2 * num_vars),
      values_(num_vars, 0),
      occurs_(num_vars, false) {}

void UpEngine::AddPermanent(Clause clause) {
  TBC_CHECK_MSG(scopes_.empty(), "permanent clauses only at scope 0");
  AddClauseInternal(std::move(clause));
}

void UpEngine::AddScoped(Clause clause) { AddClauseInternal(std::move(clause)); }

void UpEngine::AddClauseInternal(Clause clause) {
  if (conflict_) return;  // nothing can be usefully added to a conflict
  for (Lit l : clause) {
    TBC_CHECK(l.var() < num_vars_);
    occurs_[l.var()] = true;
  }
  if (clause.empty()) {
    conflict_ = true;
    root_conflict_ = root_conflict_ || scopes_.empty();
    return;
  }
  if (clause.size() == 1) {
    // Unit clauses are stored (for scope bookkeeping) but never watched.
    const Lit l = clause[0];
    clauses_.push_back(std::move(clause));
    if (Value(l) == 0) {
      Enqueue(l);
      Propagate();
    } else if (Value(l) < 0) {
      conflict_ = true;
      root_conflict_ = root_conflict_ || scopes_.empty();
    }
    return;
  }
  // Move two non-false literals to the watch positions when possible.
  size_t found = 0;
  for (size_t i = 0; i < clause.size() && found < 2; ++i) {
    if (Value(clause[i]) >= 0) std::swap(clause[found++], clause[i]);
  }
  const uint32_t index = static_cast<uint32_t>(clauses_.size());
  clauses_.push_back(std::move(clause));
  const Clause& c = clauses_.back();
  watches_[c[0].code()].push_back(index);
  watches_[c[1].code()].push_back(index);
  if (found == 0) {
    conflict_ = true;
    root_conflict_ = root_conflict_ || scopes_.empty();
  } else if (found == 1 && Value(c[0]) == 0) {
    // Unit under the current trail. (If c[0] is already true the clause is
    // satisfied for as long as this scope lives, which is as long as the
    // clause itself lives.)
    Enqueue(c[0]);
    Propagate();
  }
}

void UpEngine::Push() {
  scopes_.push_back({static_cast<uint32_t>(trail_.size()),
                     static_cast<uint32_t>(clauses_.size()), conflict_});
}

void UpEngine::DetachWatches(uint32_t clause_index) {
  const Clause& c = clauses_[clause_index];
  if (c.size() < 2) return;  // units are not watched
  for (size_t w = 0; w < 2; ++w) {
    std::vector<uint32_t>& list = watches_[c[w].code()];
    for (size_t i = list.size(); i-- > 0;) {
      if (list[i] == clause_index) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

void UpEngine::Pop() {
  TBC_CHECK_MSG(!scopes_.empty(), "Pop without Push");
  const Scope scope = scopes_.back();
  scopes_.pop_back();
  for (uint32_t i = static_cast<uint32_t>(clauses_.size()); i-- > scope.num_clauses;) {
    DetachWatches(i);
  }
  clauses_.resize(scope.num_clauses);
  for (size_t i = trail_.size(); i-- > scope.trail_size;) {
    values_[trail_[i].var()] = 0;
  }
  trail_.resize(scope.trail_size);
  qhead_ = scope.trail_size;
  conflict_ = root_conflict_ || scope.conflict;
}

bool UpEngine::Assume(Lit l) {
  if (conflict_) return false;
  const int v = Value(l);
  if (v < 0) {
    conflict_ = true;
    root_conflict_ = root_conflict_ || scopes_.empty();
    return false;
  }
  if (v == 0) {
    Enqueue(l);
    return Propagate();
  }
  return true;
}

bool UpEngine::Propagate() {
  while (qhead_ < trail_.size()) {
    const Lit l = trail_[qhead_++];
    const Lit fl = ~l;
    std::vector<uint32_t>& list = watches_[fl.code()];
    size_t keep = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      const uint32_t ci = list[i];
      Clause& c = clauses_[ci];
      if (c[0] == fl) std::swap(c[0], c[1]);
      if (Value(c[0]) > 0) {  // satisfied by the other watch
        list[keep++] = ci;
        continue;
      }
      bool moved = false;
      for (size_t k = 2; k < c.size(); ++k) {
        if (Value(c[k]) >= 0) {
          std::swap(c[1], c[k]);
          watches_[c[1].code()].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      list[keep++] = ci;  // keep watching fl
      if (Value(c[0]) < 0) {
        for (++i; i < list.size(); ++i) list[keep++] = list[i];
        list.resize(keep);
        conflict_ = true;
        root_conflict_ = root_conflict_ || scopes_.empty();
        return false;
      }
      Enqueue(c[0]);
    }
    list.resize(keep);
  }
  return true;
}

bool UpEngine::ProbeConflict(const std::vector<Lit>& lits) {
  if (conflict_) return true;
  Push();
  bool refuted = false;
  for (Lit l : lits) {
    if (!Assume(l)) {
      refuted = true;
      break;
    }
  }
  Pop();
  return refuted;
}

Var UpEngine::PickUnassigned() const {
  for (Var v = 0; v < num_vars_; ++v) {
    if (occurs_[v] && values_[v] == 0) return v;
  }
  return kInvalidVar;
}

UpEngine::SolveResult UpEngine::Dpll(uint64_t* budget) {
  const Var v = PickUnassigned();
  if (v == kInvalidVar) {
    model_.assign(values_.begin(), values_.end());
    for (int8_t& val : model_) {
      if (val == 0) val = -1;  // unconstrained: default false
    }
    return SolveResult::kSat;
  }
  if (*budget == 0) return SolveResult::kBudget;
  --*budget;
  for (const bool phase : {true, false}) {
    Push();
    SolveResult r =
        Assume(Lit(v, phase)) ? Dpll(budget) : SolveResult::kUnsat;
    Pop();
    if (r != SolveResult::kUnsat) return r;
  }
  return SolveResult::kUnsat;
}

UpEngine::SolveResult UpEngine::SolveComplete(uint64_t max_decisions) {
  if (conflict_) return SolveResult::kUnsat;
  uint64_t budget = max_decisions;
  return Dpll(&budget);
}

}  // namespace tbc
