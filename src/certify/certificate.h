#ifndef TBC_CERTIFY_CERTIFICATE_H_
#define TBC_CERTIFY_CERTIFICATE_H_

#include <string>

#include "base/bigint.h"
#include "base/result.h"
#include "certify/trace.h"
#include "logic/cnf.h"
#include "nnf/nnf.h"

namespace tbc {

/// Everything one compilation claims, bundled for independent checking:
/// the input CNF, the emitted circuit, the derivation trace, and the model
/// count the untrusted counter reported. The checker re-establishes each
/// claim from the CNF alone; a certificate is evidence, not ground truth.
///
/// The circuit travels as an explicit node table whose ids match the trace
/// records. Parsing rebuilds the table through NnfManager in id order and
/// rejects any node the manager would simplify differently — so a parsed
/// certificate's circuit is guaranteed to be in canonical (constant-free,
/// flattened, sorted, deduplicated) form with ids intact.
struct Certificate {
  enum class Kind : uint8_t { kDdnnf, kObdd, kSdd };

  Kind kind = Kind::kDdnnf;
  Cnf cnf;
  /// kDdnnf/kSdd: the circuit store; ids referenced by `ddnnf`.
  NnfManager nnf;
  NnfId root = kInvalidNnf;
  /// kDdnnf: the compiler's search-tree trace. Empty comps+top means "no
  /// trace" (emission disabled); the checker then proves CNF |= circuit
  /// semantically instead of by replay.
  DdnnfTrace ddnnf;
  /// kObdd: node table, order, conjunction steps and clause chain.
  ObddTrace obdd;
  /// The model count the producing counter reported (over cnf.num_vars()).
  BigUint claimed_count;

  Certificate() = default;
  Certificate(Certificate&&) = default;
  Certificate& operator=(Certificate&&) = default;
};

const char* CertificateKindName(Certificate::Kind kind);

/// Versioned text serialization (`tbc-cert 1 <kind>` header).
std::string WriteCertificate(const Certificate& cert);

/// Parses WriteCertificate output. Structural damage (truncation, dangling
/// ids, non-canonical nodes) is a line-numbered kInvalidInput status; the
/// CLI and the checker report it under rule certify.parse.
Result<Certificate> ParseCertificate(const std::string& text);

/// Decimal string -> BigUint (digits only); false on empty/non-digit input.
bool ParseBigUint(const std::string& text, BigUint* out);

}  // namespace tbc

#endif  // TBC_CERTIFY_CERTIFICATE_H_
