#ifndef TBC_CERTIFY_CHECKER_H_
#define TBC_CERTIFY_CHECKER_H_

#include <cstdint>

#include "analysis/diagnostics.h"
#include "base/bigint.h"
#include "certify/certificate.h"

namespace tbc {

/// Verification knobs. The defaults are generous enough that every
/// certificate the in-tree compilers emit for the test corpus verifies
/// without tripping a budget; a trip is reported as certify.budget (an
/// error: "unverified" is not "verified").
struct CertifyOptions {
  /// Recompute the model count bottom-up and compare to the claim.
  bool check_count = true;
  /// Cap on DPLL decisions per semantic fallback / determinism query.
  uint64_t max_solve_decisions = 1u << 20;
  /// Cap on total replay steps + probes across the whole check.
  uint64_t max_work = 1u << 22;
  /// Cap on trace replay recursion depth (guards cyclic component refs).
  uint32_t max_replay_depth = 4096;
};

struct CertifyResult {
  DiagnosticReport report;
  /// The checker's own bottom-up count (valid when count_certified).
  BigUint certified_count;
  bool count_certified = false;

  bool ok() const { return report.clean(); }
};

/// Replays and verifies one certificate against its embedded CNF:
///   1. structure: ids/variables in range, tables well formed;
///   2. decomposability (NNF: checker-computed varsets; OBDD: ordering);
///   3. determinism of or-gates (UP probe per pair, DPLL fallback) —
///      checked against the circuit definitions alone, so the certified
///      count below is the count of the circuit, not "count modulo CNF";
///   4. circuit |= CNF: for every clause c, the circuit conditioned on ~c
///      evaluates to unsatisfiable bottom-up (complete on decomposable
///      circuits);
///   5. CNF |= circuit: by RUP replay of the recorded derivation trace
///      (d-DNNF search tree / OBDD apply steps), or semantically via the
///      trusted DPLL when the certificate carries no trace (SDD);
///   6. model count: recomputed bottom-up with gap factors over
///      cnf.num_vars() variables and compared against the claim.
///
/// Everything is re-derived from the certificate text through the trusted
/// core (certify/up_engine.h + analysis/tseitin.h); no compiler code runs.
CertifyResult CheckCertificate(const Certificate& cert,
                               const CertifyOptions& options = {});

}  // namespace tbc

#endif  // TBC_CERTIFY_CHECKER_H_
