#ifndef TBC_CERTIFY_UP_ENGINE_H_
#define TBC_CERTIFY_UP_ENGINE_H_

#include <cstdint>
#include <vector>

#include "logic/cnf.h"
#include "logic/lit.h"

namespace tbc {

/// The checker's minimal propositional engine: two-watched-literal unit
/// propagation with an assumption trail, scope-local clause addition, and a
/// plain recursive DPLL for the few obligations propagation alone cannot
/// discharge. This is the trusted core of certification — deliberately
/// small, with no sharing of compiler code paths (the CDCL solver in
/// sat/solver.h is one of the things being checked, so it is off limits).
///
/// Scope discipline: Push() opens a scope; Assume() and AddScoped() attach
/// assignments/clauses to the current scope; Pop() retracts both. Permanent
/// clauses may only be added at scope 0. A conflict derived at scope 0 is
/// latched forever (the clause database is unsatisfiable); a conflict in an
/// inner scope clears on Pop.
///
/// The RUP pattern: `ProbeConflict({~l1, ..., ~lk})` returns true iff unit
/// propagation refutes the negated clause, i.e. the clause (l1 ... lk) is
/// derivable by reverse unit propagation from the current database. The
/// checker only ever adds a lemma after such a probe succeeds (or while the
/// database is already conflicting, when anything is entailed), so every
/// clause in the database is entailed by the permanent clauses by induction.
class UpEngine {
 public:
  explicit UpEngine(size_t num_vars);

  size_t num_vars() const { return num_vars_; }

  /// Adds a clause that survives every Pop. Only legal at scope 0.
  void AddPermanent(Clause clause);
  /// Adds a clause retracted when the current scope pops (at scope 0 this
  /// is permanent). The caller must have justified it — see class comment.
  void AddScoped(Clause clause);

  void Push();
  void Pop();
  size_t depth() const { return scopes_.size(); }

  /// True while the current state is conflicting.
  bool in_conflict() const { return conflict_; }
  /// True once a conflict was derived at scope 0 (database unsatisfiable).
  bool root_conflict() const { return root_conflict_; }

  /// Assigns l at the current scope and propagates to fixpoint. Returns
  /// false if this (or an earlier unresolved state) is conflicting.
  bool Assume(Lit l);

  /// RUP probe: true iff assuming all of `lits` propagates to a conflict.
  /// State is fully restored. A database already in conflict probes true.
  bool ProbeConflict(const std::vector<Lit>& lits);

  /// -1 false / 0 unassigned / +1 true under the current trail.
  int Value(Lit l) const {
    const int8_t v = values_[l.var()];
    return l.positive() ? v : -v;
  }

  enum class SolveResult : uint8_t { kSat, kUnsat, kBudget };

  /// Complete DPLL over every variable occurring in the database, starting
  /// from the current trail. On kSat the model is captured in model()
  /// (values for all variables; unconstrained ones default to false).
  /// Decisions beyond `max_decisions` yield kBudget. State is restored.
  SolveResult SolveComplete(uint64_t max_decisions);

  /// The satisfying assignment found by the last kSat SolveComplete.
  const std::vector<int8_t>& model() const { return model_; }

 private:
  struct Scope {
    uint32_t trail_size = 0;
    uint32_t num_clauses = 0;
    bool conflict = false;
  };

  void Enqueue(Lit l) {
    values_[l.var()] = l.positive() ? 1 : -1;
    trail_.push_back(l);
  }
  bool Propagate();
  void AddClauseInternal(Clause clause);
  void DetachWatches(uint32_t clause_index);
  SolveResult Dpll(uint64_t* budget);
  Var PickUnassigned() const;

  size_t num_vars_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<uint32_t>> watches_;  // by Lit::code()
  std::vector<int8_t> values_;                  // by Var
  std::vector<bool> occurs_;                    // by Var
  std::vector<Lit> trail_;
  size_t qhead_ = 0;
  std::vector<Scope> scopes_;
  bool conflict_ = false;
  bool root_conflict_ = false;
  std::vector<int8_t> model_;
};

}  // namespace tbc

#endif  // TBC_CERTIFY_UP_ENGINE_H_
