#ifndef TBC_BASE_HASH_H_
#define TBC_BASE_HASH_H_

#include <cstddef>
#include <cstdint>

namespace tbc {

/// Mixes a new value into a running hash (boost-style combine with a
/// 64-bit golden-ratio constant).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

/// Finalizer for integer keys (splitmix64 mix) — good avalanche behaviour
/// for pointer- and index-based hash table keys.
inline uint64_t HashU64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace tbc

#endif  // TBC_BASE_HASH_H_
