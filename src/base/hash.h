#ifndef TBC_BASE_HASH_H_
#define TBC_BASE_HASH_H_

#include <cstddef>
#include <cstdint>

namespace tbc {

/// Mixes a new value into a running hash (boost-style combine with a
/// 64-bit golden-ratio constant).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

/// Finalizer for integer keys (splitmix64 mix) — good avalanche behaviour
/// for pointer- and index-based hash table keys.
inline uint64_t HashU64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// 128-bit content hash of a byte string (FNV-1a with two independent
/// offset bases, each splitmix-finalized). Used as the artifact-cache key
/// for compiled circuits: identical CNF text ⇒ identical key. Cache users
/// still compare the full text on a hit — the hash narrows, the bytes
/// decide — so a collision can never alias two different CNFs.
struct ContentHash {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const ContentHash& o) const { return lo == o.lo && hi == o.hi; }
  bool operator!=(const ContentHash& o) const { return !(*this == o); }
};

inline ContentHash HashBytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t a = 0xcbf29ce484222325ull;   // FNV-1a offset basis
  uint64_t b = 0x9ae16a3b2f90404full;   // independent basis
  for (size_t i = 0; i < n; ++i) {
    a = (a ^ p[i]) * 0x100000001b3ull;  // FNV prime
    b = (b ^ p[i]) * 0x00000100000001b3ull ^ (b >> 47);
  }
  return ContentHash{HashU64(a), HashU64(b ^ n)};
}

}  // namespace tbc

#endif  // TBC_BASE_HASH_H_
