#ifndef TBC_BASE_SPAN_H_
#define TBC_BASE_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

#include "base/check.h"

namespace tbc {

/// A non-owning view of a contiguous array (the subset of std::span the
/// library needs, with bounds-checked element access in debug builds).
///
/// Introduced for NnfManager::children(): node child lists may live either
/// in per-node heap vectors (owned managers) or directly inside a
/// memory-mapped circuit store (src/store/), and a span serves both without
/// copying. Spans never own: the viewed memory must outlive the span.
template <typename T>
class Span {
 public:
  /// Element type with cv-qualifiers stripped (Span<const T> views
  /// vector<T>, not the ill-formed vector<const T>).
  using value_type = std::remove_cv_t<T>;

  Span() = default;
  Span(const T* data, size_t size) : data_(data), size_(size) {}
  /// Implicit view of a vector (mirrors std::span's container constructor).
  Span(const std::vector<value_type>& v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), size_(v.size()) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  const T& operator[](size_t i) const {
    TBC_DCHECK(i < size_);
    return data_[i];
  }
  const T& front() const {
    TBC_DCHECK(size_ > 0);
    return data_[0];
  }
  const T& back() const {
    TBC_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }

  friend bool operator==(Span a, Span b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }
  friend bool operator!=(Span a, Span b) { return !(a == b); }

  /// Materializes the view (for callers that must outlive a mutation).
  std::vector<value_type> ToVector() const {
    return std::vector<value_type>(begin(), end());
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace tbc

#endif  // TBC_BASE_SPAN_H_
