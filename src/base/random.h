#ifndef TBC_BASE_RANDOM_H_
#define TBC_BASE_RANDOM_H_

#include <cstdint>

#include "base/check.h"

namespace tbc {

/// Deterministic 64-bit PRNG (splitmix64). Every randomized component in the
/// library takes an explicit seed so that experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).
  uint64_t Below(uint64_t bound) {
    TBC_DCHECK(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    TBC_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with success probability p.
  bool Flip(double p) { return Uniform() < p; }

 private:
  uint64_t state_;
};

}  // namespace tbc

#endif  // TBC_BASE_RANDOM_H_
