#ifndef TBC_BASE_LOGSPACE_H_
#define TBC_BASE_LOGSPACE_H_

#include <cmath>
#include <cstdint>

namespace tbc {

/// A nonzero finite double with an explicit power-of-two scale:
///
///     value = mantissa * 2^exponent,   mantissa in ±[0.5, 1) or 0.
///
/// This is the underflow-proof accumulator for weighted model counting
/// (DESIGN.md "Log-space WMC"). A WMC over a few thousand variables with
/// literal weights around 1e-3 has intermediate products around 1e-6000 —
/// far below DBL_MIN — even when the final count is comfortably
/// representable. Accumulating in plain double silently flushes those
/// intermediates to 0.0, and a component cache then *serves* the wrong 0.0
/// to every isomorphic subproblem. ScaledDouble keeps the exponent in an
/// int64_t so no realistic WMC can leave its range (the counter would have
/// to run ~2^63 multiplies first).
///
/// Precision contract: while every intermediate stays inside the normal
/// double range, ScaledDouble arithmetic is *bit-identical* to plain
/// double arithmetic:
///   - frexp/ldexp only move the binary point (exact), so a multiply is
///     one double multiply — the same single rounding plain double does.
///   - An add aligns the smaller operand with ldexp (exact for exponent
///     gaps below kAlignmentCutoff) and performs one double add. For gaps
///     >= kAlignmentCutoff (64, beyond double's 53-bit significand) the
///     smaller operand is dropped, which is exactly how the plain double
///     add would have rounded.
/// Outside the normal range ScaledDouble keeps ~15 significant digits
/// where plain double would have flushed to 0 or inf.
class ScaledDouble {
 public:
  /// Exponent gap at or beyond which the smaller addend cannot affect the
  /// rounded sum (>= 53 + a margin for the carry-out case).
  static constexpr int64_t kAlignmentCutoff = 64;

  /// Zero.
  constexpr ScaledDouble() = default;

  static ScaledDouble FromDouble(double v) {
    ScaledDouble s;
    if (v == 0.0) return s;
    int e = 0;
    s.m_ = std::frexp(v, &e);
    s.e_ = e;
    return s;
  }
  static ScaledDouble Zero() { return ScaledDouble(); }
  static ScaledDouble One() { return FromDouble(1.0); }

  bool IsZero() const { return m_ == 0.0; }
  double mantissa() const { return m_; }
  int64_t exponent() const { return e_; }

  /// True when ToDouble() round-trips without leaving the normal double
  /// range (no underflow to subnormal/zero, no overflow to inf). A nonzero
  /// value with FitsDouble() false is exactly the state plain-double WMC
  /// would have silently destroyed — the "rescue" the observability
  /// counter reports.
  bool FitsDouble() const { return IsZero() || (e_ >= -1021 && e_ <= 1024); }

  /// Nearest double; 0.0 / ±inf when the value is outside double's range.
  double ToDouble() const {
    if (IsZero()) return 0.0;
    int64_t e = e_;
    if (e > 1100) e = 1100;    // ldexp saturates to ±inf
    if (e < -1101) e = -1101;  // below the smallest subnormal: exact 0
    return std::ldexp(m_, static_cast<int>(e));
  }

  /// log2(|value|); meaningless for zero.
  double Log2Abs() const {
    return std::log2(m_ < 0 ? -m_ : m_) + static_cast<double>(e_);
  }

  ScaledDouble& operator*=(const ScaledDouble& o) {
    if (IsZero() || o.IsZero()) {
      m_ = 0.0;
      e_ = 0;
      return *this;
    }
    int adj = 0;
    m_ = std::frexp(m_ * o.m_, &adj);  // product in ±(0.25, 1): no rounding
                                       // beyond the one double multiply
    e_ += o.e_ + adj;
    return *this;
  }

  ScaledDouble& operator+=(const ScaledDouble& o) {
    if (o.IsZero()) return *this;
    if (IsZero()) {
      *this = o;
      return *this;
    }
    const ScaledDouble* hi = this;
    const ScaledDouble* lo = &o;
    if (o.e_ > e_) {
      hi = &o;
      lo = this;
    }
    const int64_t gap = hi->e_ - lo->e_;
    if (gap >= kAlignmentCutoff) {
      *this = *hi;  // |lo| < half an ulp of |hi|: the add would round it away
      return *this;
    }
    const double sum = hi->m_ + std::ldexp(lo->m_, static_cast<int>(-gap));
    if (sum == 0.0) {
      m_ = 0.0;
      e_ = 0;
      return *this;
    }
    int adj = 0;
    const int64_t base = hi->e_;
    m_ = std::frexp(sum, &adj);
    e_ = base + adj;
    return *this;
  }

  friend ScaledDouble operator*(ScaledDouble a, const ScaledDouble& b) {
    a *= b;
    return a;
  }
  friend ScaledDouble operator+(ScaledDouble a, const ScaledDouble& b) {
    a += b;
    return a;
  }

 private:
  double m_ = 0.0;   // ±[0.5, 1) or exactly 0
  int64_t e_ = 0;    // power-of-two scale; 0 when m_ == 0
};

}  // namespace tbc

#endif  // TBC_BASE_LOGSPACE_H_
