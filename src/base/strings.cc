#include "base/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>

namespace tbc {

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitChar(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ParseUint64(std::string_view token, uint64_t* out) {
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseInt(std::string_view token, int* out) {
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseDouble(std::string_view token, double* out) {
  if (token.empty()) return false;
  // std::from_chars: locale-independent by definition (strtod honours the
  // run-time locale's radix character, so "1.5" fails to parse fully under
  // a comma-decimal locale — see the LocaleIndependence tests).
  const char* first = token.data();
  const char* last = token.data() + token.size();
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(first, last, value, std::chars_format::general);
  if (ec != std::errc() || ptr != last) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

std::string FormatDoubleHex(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v < 0.0 ? "-inf" : "inf";
  // Shortest round-trippable hexfloat. to_chars never consults the locale
  // (unlike "%a", whose output embeds the locale's radix character).
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::hex);
  if (ec != std::errc()) return "nan";  // unreachable: 64 bytes suffice
  const std::string digits(buf, ptr);
  return digits[0] == '-' ? "-0x" + digits.substr(1) : "0x" + digits;
}

bool ParseDoubleAnyFormat(std::string_view token, double* out) {
  if (token.empty()) return false;
  std::string_view t = token;
  bool negative = false;
  if (t[0] == '+' || t[0] == '-') {
    negative = t[0] == '-';
    t.remove_prefix(1);
    if (t.empty()) return false;
  }
  double value = 0.0;
  if (t == "inf" || t == "infinity") {
    value = std::numeric_limits<double>::infinity();
  } else {
    // from_chars hex format expects no "0x" prefix; its presence selects
    // the format.
    std::chars_format format = std::chars_format::general;
    if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
      t.remove_prefix(2);
      format = std::chars_format::hex;
    }
    const auto [ptr, ec] =
        std::from_chars(t.data(), t.data() + t.size(), value, format);
    if (ec != std::errc() || ptr != t.data() + t.size()) return false;
    if (std::isnan(value)) return false;
  }
  *out = negative ? -value : value;
  return true;
}

}  // namespace tbc
