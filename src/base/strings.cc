#include "base/strings.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace tbc {

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitChar(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ParseUint64(std::string_view token, uint64_t* out) {
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseInt(std::string_view token, int* out) {
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseDouble(std::string_view token, double* out) {
  if (token.empty()) return false;
  // strtod needs a terminated buffer; tokens are short, copy is cheap.
  const std::string copy(token);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || errno == ERANGE) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

}  // namespace tbc
