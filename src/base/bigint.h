#ifndef TBC_BASE_BIGINT_H_
#define TBC_BASE_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tbc {

/// Arbitrary-precision unsigned integer.
///
/// Model counts routinely exceed 2^64 (e.g. counting the models of a circuit
/// over hundreds of variables, or the 2^n instances of a compiled classifier),
/// so all exact counting queries in the library return BigUint. Only the
/// operations counting needs are provided: +, *, shifts, comparison,
/// and conversion to decimal string / double.
class BigUint {
 public:
  /// Zero.
  BigUint() = default;
  /// From a machine word.
  BigUint(uint64_t value);  // NOLINT(google-explicit-constructor): numeric.

  /// 2^k.
  static BigUint PowerOfTwo(unsigned k);

  BigUint& operator+=(const BigUint& other);
  BigUint& operator*=(const BigUint& other);
  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }
  friend BigUint operator*(BigUint a, const BigUint& b) { return a *= b; }

  /// Subtraction; requires *this >= other.
  BigUint& operator-=(const BigUint& other);
  friend BigUint operator-(BigUint a, const BigUint& b) { return a -= b; }

  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigUint& a, const BigUint& b) {
    return !(a == b);
  }
  friend bool operator<(const BigUint& a, const BigUint& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator>(const BigUint& a, const BigUint& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>=(const BigUint& a, const BigUint& b) {
    return Compare(a, b) >= 0;
  }

  bool IsZero() const { return limbs_.empty(); }

  /// -1 / 0 / +1 as a < b, a == b, a > b.
  static int Compare(const BigUint& a, const BigUint& b);

  /// Value as double (may lose precision; +inf if astronomically large).
  double ToDouble() const;

  /// Decimal representation.
  std::string ToString() const;

  /// Value as uint64_t; aborts if it does not fit.
  uint64_t ToU64() const;
  /// True iff the value fits in a uint64_t.
  bool FitsU64() const { return limbs_.size() <= 1; }

  /// Canonical little-endian 64-bit limbs (empty for zero, no leading
  /// zero limb). Exposed for serialization (src/store/).
  const std::vector<uint64_t>& limbs() const { return limbs_; }

  /// Reconstructs from little-endian limbs. Returns false (and leaves
  /// `out` untouched) if the representation is non-canonical (a leading
  /// zero limb) — deserializers treat that as malformed input rather
  /// than silently normalizing.
  static bool FromLimbs(std::vector<uint64_t> limbs, BigUint* out) {
    if (!limbs.empty() && limbs.back() == 0) return false;
    out->limbs_ = std::move(limbs);
    return true;
  }

 private:
  void Trim();

  // Little-endian 64-bit limbs; empty means zero. No leading zero limb.
  std::vector<uint64_t> limbs_;
};

}  // namespace tbc

#endif  // TBC_BASE_BIGINT_H_
