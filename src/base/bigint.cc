#include "base/bigint.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace tbc {

namespace {
// GCC/Clang extension, hidden behind __extension__ to stay -Wpedantic clean.
__extension__ typedef unsigned __int128 u128;
}  // namespace

BigUint::BigUint(uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

BigUint BigUint::PowerOfTwo(unsigned k) {
  BigUint r;
  r.limbs_.assign(k / 64 + 1, 0);
  r.limbs_.back() = 1ull << (k % 64);
  return r;
}

void BigUint::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint& BigUint::operator+=(const BigUint& other) {
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  u128 carry = 0;
  for (size_t i = 0; i < n; ++i) {
    u128 sum = carry + limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    limbs_[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint64_t>(carry));
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& other) {
  TBC_CHECK_MSG(*this >= other, "BigUint subtraction underflow");
  u128 borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    u128 sub = borrow;
    if (i < other.limbs_.size()) sub += other.limbs_[i];
    if (static_cast<u128>(limbs_[i]) >= sub) {
      limbs_[i] = static_cast<uint64_t>(limbs_[i] - sub);
      borrow = 0;
    } else {
      limbs_[i] = static_cast<uint64_t>(
          (static_cast<u128>(1) << 64) + limbs_[i] - sub);
      borrow = 1;
    }
  }
  TBC_DCHECK(borrow == 0);
  Trim();
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& other) {
  if (IsZero() || other.IsZero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<uint64_t> result(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    u128 carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      u128 cur =
          static_cast<u128>(limbs_[i]) * other.limbs_[j] +
          result[i + j] + carry;
      result[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    size_t k = i + other.limbs_.size();
    while (carry != 0) {
      u128 cur = carry + result[k];
      result[k] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  limbs_ = std::move(result);
  Trim();
  return *this;
}

int BigUint::Compare(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

double BigUint::ToDouble() const {
  double result = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    result = result * 0x1.0p64 + static_cast<double>(limbs_[i]);
  }
  return result;
}

uint64_t BigUint::ToU64() const {
  TBC_CHECK_MSG(FitsU64(), "BigUint does not fit in uint64_t");
  return limbs_.empty() ? 0 : limbs_[0];
}

std::string BigUint::ToString() const {
  if (IsZero()) return "0";
  // Repeated division by 10^19 (largest power of ten in a limb).
  constexpr uint64_t kChunk = 10000000000000000000ull;  // 10^19
  std::vector<uint64_t> digits;  // base-10^19 digits, little-endian
  std::vector<uint64_t> work = limbs_;
  while (!work.empty()) {
    u128 rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      u128 cur = (rem << 64) | work[i];
      work[i] = static_cast<uint64_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    digits.push_back(static_cast<uint64_t>(rem));
  }
  std::string out = std::to_string(digits.back());
  for (size_t i = digits.size() - 1; i-- > 0;) {
    std::string part = std::to_string(digits[i]);
    out += std::string(19 - part.size(), '0') + part;
  }
  return out;
}

}  // namespace tbc
