#ifndef TBC_BASE_LEVELIZE_H_
#define TBC_BASE_LEVELIZE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace tbc {

/// A topological level schedule for one circuit traversal (DESIGN.md
/// "Kernel layer").
///
/// Level 0 holds the leaves; a node's level is 1 + the maximum level of its
/// children, so every node's inputs are fully computed once all earlier
/// levels are done. Evaluation passes walk `order` level by level through
/// contiguous per-level ranges; within a level nodes are independent, which
/// is exactly the parallelism ThreadPool::ParallelFor exploits. Within each
/// level nodes appear in ascending id order, so the schedule — and any pass
/// that writes result i to slot i — is deterministic regardless of thread
/// count.
struct LevelSchedule {
  static constexpr uint32_t kNoRank = static_cast<uint32_t>(-1);

  /// Reachable nodes, children strictly before parents, grouped by level.
  std::vector<uint32_t> order;
  /// Level l occupies order[level_begin[l] .. level_begin[l+1]).
  std::vector<uint32_t> level_begin;
  /// rank[id] = position of id in `order`; kNoRank when unreachable.
  /// Dense value arrays are indexed by rank, so a pass over a small
  /// subcircuit of a large manager allocates O(reachable), not O(manager).
  std::vector<uint32_t> rank;

  size_t num_levels() const { return level_begin.size() - 1; }
  size_t num_reachable() const { return order.size(); }
};

/// Computes the level schedule of the subgraph reachable from `root`.
/// `for_each_child(id, fn)` must invoke fn(child_id) for every child of
/// `id`; children must have smaller ids than their parents (true for every
/// manager in the library — nodes are created bottom-up).
template <typename ForEachChild>
LevelSchedule Levelize(size_t num_nodes, uint32_t root,
                       ForEachChild&& for_each_child) {
  LevelSchedule s;
  s.rank.assign(num_nodes, LevelSchedule::kNoRank);

  // Reachability (iterative; rank doubles as the visited mark).
  std::vector<uint32_t> reachable;
  std::vector<uint32_t> stack = {root};
  s.rank[root] = 0;
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    reachable.push_back(n);
    for_each_child(n, [&](uint32_t c) {
      if (s.rank[c] == LevelSchedule::kNoRank) {
        s.rank[c] = 0;
        stack.push_back(c);
      }
    });
  }
  std::sort(reachable.begin(), reachable.end());

  // One forward pass assigns levels (children precede parents by id).
  std::vector<uint32_t> level(reachable.size(), 0);
  std::vector<uint32_t> level_of_id(num_nodes, 0);  // only reachable slots used
  uint32_t max_level = 0;
  for (size_t i = 0; i < reachable.size(); ++i) {
    uint32_t lvl = 0;
    for_each_child(reachable[i], [&](uint32_t c) {
      lvl = std::max(lvl, level_of_id[c] + 1);
    });
    level[i] = lvl;
    level_of_id[reachable[i]] = lvl;
    max_level = std::max(max_level, lvl);
  }

  // Counting sort by level; ascending id within a level (stable).
  s.level_begin.assign(max_level + 2, 0);
  for (uint32_t lvl : level) ++s.level_begin[lvl + 1];
  for (size_t l = 1; l < s.level_begin.size(); ++l) {
    s.level_begin[l] += s.level_begin[l - 1];
  }
  s.order.resize(reachable.size());
  std::vector<uint32_t> cursor(s.level_begin.begin(), s.level_begin.end() - 1);
  for (size_t i = 0; i < reachable.size(); ++i) {
    s.order[cursor[level[i]]++] = reachable[i];
  }
  for (size_t i = 0; i < s.order.size(); ++i) {
    s.rank[s.order[i]] = static_cast<uint32_t>(i);
  }
  return s;
}

}  // namespace tbc

#endif  // TBC_BASE_LEVELIZE_H_
