#ifndef TBC_BASE_GUARD_H_
#define TBC_BASE_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "base/result.h"

namespace tbc {

/// A resource budget for one potentially-exponential operation. Zero means
/// unlimited for every field. Budgets are plain data: construct one, hand
/// it to a Guard, pass the Guard down the call tree.
struct Budget {
  /// Wall-clock limit in milliseconds.
  double timeout_ms = 0.0;
  /// Circuit-node limit (SDD/NNF/OBDD nodes created, or cache entries for
  /// the direct counters). A proxy for memory: every node type in the
  /// library costs O(100) bytes.
  uint64_t max_nodes = 0;
  /// CDCL conflict limit (SAT search effort).
  uint64_t max_conflicts = 0;
  /// Decision limit for the exhaustive (top-down) compilers.
  uint64_t max_decisions = 0;

  static Budget Unlimited() { return Budget{}; }
  static Budget TimeLimit(double ms) { return Budget{ms, 0, 0, 0}; }
  static Budget NodeLimit(uint64_t nodes) { return Budget{0.0, nodes, 0, 0}; }
};

/// Cooperative resource governor threaded through every worst-case
/// exponential path (CDCL search, d-DNNF/SDD compilation, model counting,
/// vtree search, brute-force XAI compilation).
///
/// A Guard combines a deadline computed at arm time, monotonic charge
/// counters, and a cancellation flag that may be flipped from any thread.
/// Workers call the Charge*/Check methods at the top of their inner loops;
/// a non-OK return must be propagated (typed, via Result<T>), never
/// swallowed. All methods are safe to call concurrently with Cancel().
///
/// Checking the clock on every charge would dominate tight loops, so
/// ChargeDecision/ChargeConflict only consult the deadline every
/// kCheckInterval charges; budgets and cancellation are exact.
class Guard {
 public:
  /// An unlimited guard (never trips, cancellable).
  Guard() : Guard(Budget::Unlimited()) {}

  /// Arms the guard: the deadline clock starts now.
  explicit Guard(const Budget& budget)
      : budget_(budget),
        deadline_(budget.timeout_ms > 0.0
                      ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(budget.timeout_ms))
                      : Clock::time_point::max()) {}

  const Budget& budget() const { return budget_; }

  /// Requests cooperative cancellation; thread-safe, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// Milliseconds until the deadline (infinity-ish when unlimited, clamped
  /// at 0 when already past). Used to derive sub-budgets for stages.
  double RemainingMs() const {
    if (deadline_ == Clock::time_point::max()) return kNoDeadlineMs;
    const double ms =
        std::chrono::duration<double, std::milli>(deadline_ - Clock::now()).count();
    return ms > 0.0 ? ms : 0.0;
  }
  bool has_deadline() const { return deadline_ != Clock::time_point::max(); }

  /// Full check: cancellation + deadline. Call at loop heads that run at
  /// most a few thousand times per second.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("operation cancelled");
    if (Clock::now() >= deadline_) {
      return Status::DeadlineExceeded(Describe("deadline of ", budget_.timeout_ms,
                                               " ms exceeded"));
    }
    return Status::Ok();
  }

  /// Cheap cooperative poll for tight recursions that create no countable
  /// unit of work: exact cancellation check, deadline checked every
  /// kCheckInterval polls.
  Status Poll() { return AmortizedCheck(); }

  /// Charges `n` created nodes against max_nodes, plus an amortized
  /// deadline/cancellation check.
  Status ChargeNodes(uint64_t n = 1) {
    const uint64_t total = nodes_.fetch_add(n, std::memory_order_relaxed) + n;
    if (budget_.max_nodes != 0 && total > budget_.max_nodes) {
      return Status::BudgetExceeded(Describe("node budget of ", budget_.max_nodes,
                                             " exceeded"));
    }
    return AmortizedCheck();
  }

  /// Charges one CDCL conflict against max_conflicts.
  Status ChargeConflict() {
    const uint64_t total = conflicts_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (budget_.max_conflicts != 0 && total > budget_.max_conflicts) {
      return Status::BudgetExceeded(Describe("conflict budget of ",
                                             budget_.max_conflicts, " exceeded"));
    }
    return AmortizedCheck();
  }

  /// Charges one compiler decision against max_decisions.
  Status ChargeDecision() {
    const uint64_t total = decisions_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (budget_.max_decisions != 0 && total > budget_.max_decisions) {
      return Status::BudgetExceeded(Describe("decision budget of ",
                                             budget_.max_decisions, " exceeded"));
    }
    return AmortizedCheck();
  }

  /// Charge counters consumed so far (statistics / stage accounting).
  uint64_t nodes_charged() const { return nodes_.load(std::memory_order_relaxed); }
  uint64_t conflicts_charged() const {
    return conflicts_.load(std::memory_order_relaxed);
  }
  uint64_t decisions_charged() const {
    return decisions_.load(std::memory_order_relaxed);
  }

  /// A process-wide guard that never trips; the default for the unbounded
  /// legacy entry points.
  static Guard& Unlimited() {
    static Guard guard;
    return guard;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr uint64_t kCheckInterval = 256;
  static constexpr double kNoDeadlineMs = 1e18;

  Status AmortizedCheck() {
    if (cancelled()) return Status::Cancelled("operation cancelled");
    if (deadline_ == Clock::time_point::max()) return Status::Ok();
    if (tick_.fetch_add(1, std::memory_order_relaxed) % kCheckInterval != 0) {
      return Status::Ok();
    }
    return Check();
  }

  template <typename V>
  static std::string Describe(const char* prefix, V limit, const char* suffix) {
    return std::string(prefix) + std::to_string(limit) + suffix;
  }

  Budget budget_;
  Clock::time_point deadline_;
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> nodes_{0};
  std::atomic<uint64_t> conflicts_{0};
  std::atomic<uint64_t> decisions_{0};
  std::atomic<uint64_t> tick_{0};
};

}  // namespace tbc

#endif  // TBC_BASE_GUARD_H_
