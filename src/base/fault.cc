#include "base/fault.h"

#include <cstring>

#include "base/check.h"
#include "base/hash.h"

namespace tbc::fault {

std::vector<std::string_view> KnownPoints() {
  std::vector<std::string_view> out;
  out.reserve(kNumPoints);
  for (const char* name : kPointNames) out.emplace_back(name);
  return out;
}

FaultPlan::FaultPlan(uint64_t seed, double probability) : seed_(seed) {
  if (probability < 0.0) probability = 0.0;
  if (probability > 1.0) probability = 1.0;
  // Map probability onto the full u64 range; compare against a mixed hash.
  const uint64_t threshold =
      probability >= 1.0
          ? ~uint64_t{0}
          : static_cast<uint64_t>(probability * 18446744073709551615.0);
  for (PointState& p : points_) p.threshold = threshold;
}

size_t FaultPlan::IndexOf(std::string_view point) {
  for (size_t i = 0; i < kNumPoints; ++i) {
    if (point == kPointNames[i]) return i;
  }
  TBC_CHECK_MSG(false, "fault point not declared in kPointNames");
  return 0;
}

void FaultPlan::SetProbability(std::string_view point, double p) {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  PointState& st = points_[IndexOf(point)];
  st.fire_on_hit = 0;
  st.threshold = p >= 1.0 ? ~uint64_t{0}
                          : static_cast<uint64_t>(p * 18446744073709551615.0);
}

void FaultPlan::SetFireOnHit(std::string_view point, uint64_t nth) {
  points_[IndexOf(point)].fire_on_hit = nth;
}

bool FaultPlan::ShouldFire(size_t point_index) {
  PointState& st = points_[point_index];
  const uint64_t hit = st.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire;
  if (st.fire_on_hit != 0) {
    fire = hit == st.fire_on_hit;
  } else if (st.threshold == 0) {
    fire = false;
  } else {
    // Pure function of (seed, point, hit): replayable from the seed.
    const uint64_t mix =
        HashU64(seed_ ^ HashU64(point_index * 0x9e3779b97f4a7c15ull + hit));
    fire = mix < st.threshold;
  }
  if (fire) fired_.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

namespace internal {

std::atomic<FaultPlan*> g_plan{nullptr};

bool FireAt(std::string_view name, std::atomic<size_t>* cached_index) {
  size_t index = cached_index->load(std::memory_order_relaxed);
  if (index == ~size_t{0}) {
    // First execution of this site: resolve (and validate) the name once.
    // Concurrent first hits resolve to the same value.
    for (size_t i = 0; i < kNumPoints; ++i) {
      if (name == kPointNames[i]) {
        index = i;
        break;
      }
    }
    TBC_CHECK_MSG(index != ~size_t{0},
                  "TBC_FAULT_POINT name not declared in fault.h kPointNames");
    cached_index->store(index, std::memory_order_relaxed);
  }
  FaultPlan* plan = g_plan.load(std::memory_order_acquire);
  if (plan == nullptr) return false;
  return plan->ShouldFire(index);
}

}  // namespace internal

ScopedFaultPlan::ScopedFaultPlan(FaultPlan* plan)
    : previous_(internal::g_plan.exchange(plan, std::memory_order_acq_rel)) {}

ScopedFaultPlan::~ScopedFaultPlan() {
  internal::g_plan.store(previous_, std::memory_order_release);
}

}  // namespace tbc::fault
