#ifndef TBC_BASE_RESULT_H_
#define TBC_BASE_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "base/check.h"

namespace tbc {

/// Lightweight status type for fallible operations (parsing, file IO,
/// user-supplied model validation). Library code never throws.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status carrying a human-readable message.
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }
  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// A value-or-error, used as the return type of fallible factories.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in factories.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {
    TBC_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors; aborts if this result holds an error.
  const T& value() const& {
    TBC_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    TBC_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    TBC_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace tbc

#endif  // TBC_BASE_RESULT_H_
