#ifndef TBC_BASE_RESULT_H_
#define TBC_BASE_RESULT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "base/check.h"

namespace tbc {

/// Machine-readable failure category. Callers branch on the code; the
/// message is for humans. The crucial distinction for the compilers is
/// between *semantic* answers ("unsatisfiable") and *refusals*
/// (kDeadlineExceeded / kBudgetExceeded / kCancelled): a refusal means the
/// operation gave up under its resource budget and may succeed with more.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidInput,       // malformed file, out-of-range argument
  kDeadlineExceeded,   // wall-clock budget exhausted
  kBudgetExceeded,     // node/memory/conflict budget exhausted
  kCancelled,          // cooperative cancellation requested
  kOverloaded,         // server admission control shed the request
  kUnavailable,        // server draining / connection lost; retryable
  kRefusedByForecast,  // static width forecast predicts a hopeless compile
  kInternal,           // everything else
};

/// Name of a status code ("kOk", "kDeadlineExceeded", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "kOk";
    case StatusCode::kInvalidInput: return "kInvalidInput";
    case StatusCode::kDeadlineExceeded: return "kDeadlineExceeded";
    case StatusCode::kBudgetExceeded: return "kBudgetExceeded";
    case StatusCode::kCancelled: return "kCancelled";
    case StatusCode::kOverloaded: return "kOverloaded";
    case StatusCode::kUnavailable: return "kUnavailable";
    case StatusCode::kRefusedByForecast: return "kRefusedByForecast";
    case StatusCode::kInternal: return "kInternal";
  }
  return "kInternal";
}

/// Parses a StatusCodeName back to its code (wire protocol; strict).
/// Returns false on an unknown name.
inline bool StatusCodeFromName(std::string_view name, StatusCode* out) {
  for (StatusCode c : {StatusCode::kOk, StatusCode::kInvalidInput,
                       StatusCode::kDeadlineExceeded, StatusCode::kBudgetExceeded,
                       StatusCode::kCancelled, StatusCode::kOverloaded,
                       StatusCode::kUnavailable, StatusCode::kRefusedByForecast,
                       StatusCode::kInternal}) {
    if (name == StatusCodeName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

/// True for the resource-refusal codes (deadline/budget/cancelled, plus
/// the serving-layer load-shed, drain, and width-forecast refusals): the
/// operation gave up under its budget or the service declined to start it,
/// and may succeed when retried with more resources / less load / a
/// higher width cap. Note clients auto-retry only kOverloaded and
/// kUnavailable — a forecast refusal is deterministic, so retrying the
/// same request is pointless.
inline bool IsRefusal(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kBudgetExceeded ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kOverloaded ||
         code == StatusCode::kUnavailable ||
         code == StatusCode::kRefusedByForecast;
}

/// Lightweight status type for fallible operations (parsing, file IO,
/// user-supplied model validation, resource-governed compilation).
/// Library code never throws.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status carrying a code and human-readable message.
  static Status Error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }
  /// Constructs a generic (kInternal) error status.
  static Status Error(std::string message) {
    return Error(StatusCode::kInternal, std::move(message));
  }
  static Status Ok() { return Status(); }

  /// Typed convenience factories.
  static Status InvalidInput(std::string message) {
    return Error(StatusCode::kInvalidInput, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Error(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status BudgetExceeded(std::string message) {
    return Error(StatusCode::kBudgetExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Error(StatusCode::kCancelled, std::move(message));
  }
  static Status Overloaded(std::string message) {
    return Error(StatusCode::kOverloaded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Error(StatusCode::kUnavailable, std::move(message));
  }
  static Status RefusedByForecast(std::string message) {
    return Error(StatusCode::kRefusedByForecast, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// True for the resource-refusal codes (see tbc::IsRefusal above).
  bool IsRefusal() const { return ::tbc::IsRefusal(code_); }
  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error, used as the return type of fallible factories and of
/// the resource-governed compilation entry points.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in factories.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {
    TBC_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }
  /// Error code; kOk when this result holds a value.
  StatusCode error_code() const { return status_.code(); }

  /// Value accessors; aborts if this result holds an error.
  const T& value() const& {
    TBC_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    TBC_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    TBC_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(*value_);
  }

  /// The value, or `fallback` if this result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

  /// Pointer-style accessors, same abort-on-error contract as value().
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace tbc

/// Propagates an error Status (or the Status of a Result) to the caller.
/// Usable in any function returning Status or Result<T>.
#define TBC_RETURN_IF_ERROR(expr)                         \
  do {                                                    \
    ::tbc::Status tbc_status_ = ::tbc::internal_result::AsStatus(expr); \
    if (!tbc_status_.ok()) return tbc_status_;            \
  } while (0)

/// Unwraps a Result<T> into `lhs`, propagating errors to the caller:
///   TBC_ASSIGN_OR_RETURN(const Cnf cnf, Cnf::ParseDimacs(text));
#define TBC_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  TBC_ASSIGN_OR_RETURN_IMPL_(TBC_RESULT_CONCAT_(tbc_result_, __LINE__), lhs, rexpr)

#define TBC_RESULT_CONCAT_INNER_(a, b) a##b
#define TBC_RESULT_CONCAT_(a, b) TBC_RESULT_CONCAT_INNER_(a, b)
#define TBC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

namespace tbc::internal_result {
inline Status AsStatus(Status s) { return s; }
template <typename T>
Status AsStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace tbc::internal_result

#endif  // TBC_BASE_RESULT_H_
