#ifndef TBC_BASE_THREAD_POOL_H_
#define TBC_BASE_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "base/guard.h"
#include "base/observability.h"
#include "base/result.h"

namespace tbc {

/// A small work-stealing-free thread pool for the levelized circuit
/// kernels (DESIGN.md "Kernel layer").
///
/// The parallelism the library needs is flat: per-level node batches of a
/// levelized circuit pass, and embarrassingly-parallel outer loops
/// (multi-evidence MAR, per-instance PSDD likelihoods, portfolio arms).
/// Both are served by one primitive, ParallelFor: a half-open index range
/// is split into fixed chunks, workers *and the calling thread* claim
/// chunks off a single atomic counter, and the call returns when every
/// index has been processed. There are no per-worker deques to steal from,
/// so scheduling adds one atomic fetch per chunk and nothing else.
///
/// Determinism contract: ParallelFor imposes no order, so callers must
/// write result i to slot i (never accumulate across indices inside the
/// loop) and perform reductions serially afterwards in index order. Under
/// that discipline serial and parallel runs are bit-identical for both
/// bigint and double results — asserted by parallel_eval_test at 1/2/8
/// threads.
///
/// Cancellation: an optional Guard is polled once per claimed chunk. When
/// it trips, workers stop claiming chunks (in-flight chunks finish) and
/// ParallelFor returns the guard's typed status. All Guard methods are
/// thread-safe, so this is TSan-clean (guard_cancel_race_test).
///
/// Exceptions: if `fn` throws for some index, the exception is captured on
/// the worker (never escapes into WorkerLoop, which would terminate),
/// chunks that can no longer win the first-error race are skipped, and
/// ParallelFor rethrows after all in-flight chunks retire. When several
/// shards throw, the one from the lowest chunk index wins, and that choice
/// is deterministic: a chunk is only skipped when its index is above an
/// already-recorded thrower, so every chunk below the eventual winner runs
/// its body in full — the winner is the chunk a serial run would have
/// faulted on. A rethrown exception takes precedence over a concurrently
/// tripped Guard.
class ThreadPool {
 public:
  /// A pool with `num_threads` total execution lanes: `num_threads - 1`
  /// background workers plus the calling thread, which always participates
  /// in ParallelFor. ThreadPool(1) therefore runs everything inline on the
  /// caller with zero thread handoff.
  explicit ThreadPool(size_t num_threads)
      : lanes_(num_threads == 0 ? 1 : num_threads) {
    workers_.reserve(lanes_ - 1);
    for (size_t i = 0; i + 1 < lanes_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + caller).
  size_t num_threads() const { return lanes_; }

  /// Applies `fn(i)` to every i in [begin, end), distributing chunks of
  /// `grain` consecutive indices over the workers and the calling thread.
  /// Returns Ok when all indices ran, or the guard's status if it tripped
  /// (some indices then never ran — the caller must discard the batch).
  /// Must not be called from inside another ParallelFor body.
  Status ParallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t)>& fn,
                     Guard* guard = nullptr) {
    TBC_COUNT("pool.parallel_for.calls");
    if (begin >= end) return guard ? guard->Check() : Status::Ok();
    if (grain == 0) grain = 1;
    const size_t n = end - begin;
    const size_t num_chunks = (n + grain - 1) / grain;
    // Small ranges or a single lane: run inline, no synchronization.
    // Exceptions propagate to the caller directly, which trivially
    // satisfies the first-error contract (execution is sequential).
    if (lanes_ == 1 || num_chunks == 1) {
      for (size_t i = begin; i < end; ++i) {
        if (guard != nullptr && (i - begin) % grain == 0) {
          Status s = guard->Poll();
          if (!s.ok()) {
            TBC_COUNT("pool.parallel_for.cancelled");
            return s;
          }
        }
        fn(i);
      }
      return Status::Ok();
    }

    Batch batch;
    batch.begin = begin;
    batch.end = end;
    batch.grain = grain;
    batch.fn = &fn;
    batch.guard = guard;
    batch.next_chunk.store(0, std::memory_order_relaxed);
    batch.pending.store(static_cast<int64_t>(num_chunks),
                        std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_ = &batch;
      ++batch_epoch_;
    }
    cv_.notify_all();

    RunChunks(batch);  // caller participates

    // Wait until every chunk retired AND no worker is still inside
    // RunChunks — `batch` lives on this stack frame, so a worker holding
    // its pointer past this point would be a use-after-free.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this, &batch] {
      return batch.pending.load(std::memory_order_acquire) <= 0 &&
             active_workers_ == 0;
    });
    batch_ = nullptr;
    lock.unlock();
    // A shard exception outranks a tripped guard: the guard may have been
    // cancelled *because* of the failure (sibling-arm teardown), and
    // reporting the cancellation would hide the root cause.
    if (batch.failed.load(std::memory_order_acquire)) {
      TBC_COUNT("pool.parallel_for.exceptions");
      std::rethrow_exception(batch.error);
    }
    if (guard != nullptr) {
      Status s = guard->Check();
      if (!s.ok()) {
        TBC_COUNT("pool.parallel_for.cancelled");
        return s;
      }
    }
    return Status::Ok();
  }

  /// A process-wide pool sized from TBC_NUM_THREADS (default: hardware
  /// concurrency). Constructed on first use.
  static ThreadPool& Shared() {
    static ThreadPool pool(DefaultThreadCount());
    return pool;
  }

  /// TBC_NUM_THREADS if set and positive, else hardware concurrency.
  static size_t DefaultThreadCount() {
    if (const char* env = std::getenv("TBC_NUM_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<size_t>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

 private:
  struct Batch {
    size_t begin = 0, end = 0, grain = 1;
    const std::function<void(size_t)>* fn = nullptr;
    Guard* guard = nullptr;
    std::atomic<size_t> next_chunk{0};
    // Chunks not yet fully executed; the last finisher signals done_cv_.
    std::atomic<int64_t> pending{0};
    // First-error capture: the exception kept is the one from the lowest
    // chunk index. `err_chunk` is also read lock-free on the claim path so
    // chunks below a known thrower still run — one of them may fault at an
    // even lower index and must win.
    std::atomic<bool> failed{false};
    std::atomic<size_t> err_chunk{SIZE_MAX};
    std::mutex err_mu;
    std::exception_ptr error;  // guarded by err_mu until the final wait
  };

  void RunChunks(Batch& batch) {
    const size_t num_chunks =
        (batch.end - batch.begin + batch.grain - 1) / batch.grain;
    while (true) {
      const size_t chunk =
          batch.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      bool skip = false;
      if (batch.failed.load(std::memory_order_acquire)) {
        // Skip only chunks above the recorded thrower: they can no longer
        // win the first-error race. A chunk below it may itself fault at a
        // lower index — exactly the exception a serial run would surface —
        // so its body must still run.
        skip = chunk > batch.err_chunk.load(std::memory_order_acquire);
      }
      if (!skip && batch.guard != nullptr && !batch.guard->Poll().ok()) {
        skip = true;  // skip the body; still retire the chunk
      }
      if (!skip) {
        const size_t lo = batch.begin + chunk * batch.grain;
        const size_t hi = std::min(batch.end, lo + batch.grain);
        try {
          for (size_t i = lo; i < hi; ++i) (*batch.fn)(i);
        } catch (...) {
          // Keep the exception from the lowest chunk — the same one a
          // serial run would have surfaced, since chunks at or below the
          // current record are never skipped.
          std::lock_guard<std::mutex> lock(batch.err_mu);
          if (chunk < batch.err_chunk.load(std::memory_order_relaxed)) {
            batch.error = std::current_exception();
            batch.err_chunk.store(chunk, std::memory_order_release);
          }
          batch.failed.store(true, std::memory_order_release);
        }
      }
      if (batch.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen_epoch = 0;
    while (true) {
      Batch* batch = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this, seen_epoch] {
          return shutdown_ || (batch_ != nullptr && batch_epoch_ != seen_epoch);
        });
        if (shutdown_) return;
        batch = batch_;
        seen_epoch = batch_epoch_;
        ++active_workers_;
      }
      RunChunks(*batch);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --active_workers_;
      }
      done_cv_.notify_all();
    }
  }

  const size_t lanes_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;  // guarded by mu_
  uint64_t batch_epoch_ = 0;
  size_t active_workers_ = 0;  // workers currently inside RunChunks
  bool shutdown_ = false;
};

}  // namespace tbc

#endif  // TBC_BASE_THREAD_POOL_H_
