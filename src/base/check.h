#ifndef TBC_BASE_CHECK_H_
#define TBC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Assertion macros for programming errors. The library does not use
// exceptions: invariant violations abort with a source location, and
// fallible operations return tbc::Result<T> (see base/result.h).

#define TBC_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "TBC_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define TBC_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "TBC_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   msg, __FILE__, __LINE__);                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define TBC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define TBC_DCHECK(cond) TBC_CHECK(cond)
#endif

#endif  // TBC_BASE_CHECK_H_
