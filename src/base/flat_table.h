#ifndef TBC_BASE_FLAT_TABLE_H_
#define TBC_BASE_FLAT_TABLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/hash.h"
#include "base/observability.h"

namespace tbc {

/// Footprint accounting for the flat tables: slot-array bytes are reported
/// to the "base.flat_table.bytes" gauge (current + peak), giving every
/// compile/count run a peak-memory figure in `--stats` output. Heap owned
/// by the keys themselves (e.g. std::string cache keys) is not counted —
/// this is the container footprint, not a full allocator. Compiles to
/// nothing with TBC_OBSERVE=OFF.
inline void AccountFlatTableBytes(int64_t delta) {
#if TBC_OBSERVE_ON
  if (delta == 0) return;
  static ObsGauge& gauge =
      Observability::Global().Gauge("base.flat_table.bytes");
  gauge.Add(delta);
#else
  (void)delta;
#endif
}

/// Tracks the bytes a table has reported so far; the value-semantics
/// members make the accounting survive copies and moves of the owning
/// table (a copy re-reports its bytes, a move transfers them, destruction
/// releases them).
class TableFootprint {
 public:
  TableFootprint() = default;
  TableFootprint(const TableFootprint& o) { Set(o.bytes_); }
  TableFootprint& operator=(const TableFootprint& o) {
    Set(o.bytes_);
    return *this;
  }
  TableFootprint(TableFootprint&& o) noexcept { std::swap(bytes_, o.bytes_); }
  TableFootprint& operator=(TableFootprint&& o) noexcept {
    std::swap(bytes_, o.bytes_);
    return *this;
  }
  ~TableFootprint() { Set(0); }

  /// Reports the delta between the previous and new footprint.
  void Set(size_t bytes) {
    AccountFlatTableBytes(static_cast<int64_t>(bytes) -
                          static_cast<int64_t>(bytes_));
    bytes_ = bytes;
  }

 private:
  size_t bytes_ = 0;
};

/// Flat hash containers for the circuit kernels (DESIGN.md "Kernel layer").
///
/// The unique tables and apply caches of the SDD/OBDD/NNF managers and the
/// memo tables of the d-DNNF compiler and model counter are the innermost
/// loops of every query the library runs. `std::unordered_map` puts every
/// entry behind a heap allocation and a bucket pointer chase; the tables
/// here are open-addressing, power-of-two capacity, linear probing, with
/// all slots in one contiguous array:
///   - UniqueTable: hash-consing index (64-bit content hash -> node id)
///     with chained-equality resolution through a caller callback. No
///     erase, so no tombstones: probes stop at the first empty slot.
///   - FlatMap<K, V>: exact open-addressing map with per-slot cached
///     hashes, tombstone-based erase, and reserve().
///   - LossyCache<K, V>: bounded direct-mapped cache (tagged slots,
///     overwrite-on-collision) for apply/op caches that must keep memory
///     flat under TBC budgets. Lookups may miss spuriously; callers
///     recompute, which is always sound for memoized canonical operations.

/// Default hashers for flat tables. Specialize HashValue for new key types.
inline uint64_t HashValue(uint64_t key) { return HashU64(key); }
inline uint64_t HashValue(uint32_t key) { return HashU64(key); }
inline uint64_t HashValue(const std::string& key) {
  // FNV-1a over the bytes, then a splitmix64 finalizer for avalanche.
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return HashU64(h);
}

/// Hash-consing index: maps 64-bit content hashes to 32-bit node ids.
/// Distinct nodes may share a content hash; `Find` resolves collisions by
/// invoking `eq(id)` on every candidate whose stored hash matches.
class UniqueTable {
 public:
  static constexpr uint32_t kNpos = static_cast<uint32_t>(-1);

  UniqueTable() { Rehash(kMinCapacity); }

  size_t size() const { return size_; }
  size_t capacity() const { return ids_.size(); }

  /// Pre-sizes the table for `n` entries (no-op if already large enough).
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    if (cap > ids_.size()) Rehash(cap);
  }

  /// First id whose stored hash equals `hash` and for which `eq(id)` holds;
  /// kNpos if absent.
  template <typename Eq>
  uint32_t Find(uint64_t hash, Eq&& eq) const {
    size_t i = hash & mask_;
    while (ids_[i] != kNpos) {
      if (hashes_[i] == hash && eq(ids_[i])) return ids_[i];
      i = (i + 1) & mask_;
    }
    return kNpos;
  }

  /// Inserts an id under `hash`. The caller guarantees the entry is not
  /// already present (the hash-consing discipline: Find first).
  void Insert(uint64_t hash, uint32_t id) {
    if ((size_ + 1) * kMaxLoadDen > ids_.size() * kMaxLoadNum) {
      Rehash(ids_.size() * 2);
    }
    size_t i = hash & mask_;
    while (ids_[i] != kNpos) i = (i + 1) & mask_;
    ids_[i] = id;
    hashes_[i] = hash;
    ++size_;
  }

  /// Removes the entry mapping `hash` to `id`; returns false when absent.
  /// Deletion is backward-shift (not tombstones): entries probing through
  /// the freed slot are moved into it, so the table keeps the "probes stop
  /// at the first empty slot" invariant that Find/Insert rely on. Needed by
  /// in-place SDD vtree edits, which re-home live nodes under new hashes.
  bool Erase(uint64_t hash, uint32_t id) {
    size_t i = hash & mask_;
    while (ids_[i] != kNpos) {
      if (hashes_[i] == hash && ids_[i] == id) {
        size_t hole = i;
        size_t j = (i + 1) & mask_;
        while (ids_[j] != kNpos) {
          // Shift j into the hole iff the hole lies on j's probe path,
          // i.e. cyclically between j's home slot and j.
          const size_t home = hashes_[j] & mask_;
          if (((j - home) & mask_) >= ((j - hole) & mask_)) {
            ids_[hole] = ids_[j];
            hashes_[hole] = hashes_[j];
            hole = j;
          }
          j = (j + 1) & mask_;
        }
        ids_[hole] = kNpos;
        --size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  void Clear() {
    size_ = 0;
    std::fill(ids_.begin(), ids_.end(), kNpos);
  }

 private:
  static constexpr size_t kMinCapacity = 16;
  // Max load factor 7/8: linear probing stays short and the table is two
  // flat arrays, so memory per entry is still ~13.7 bytes at the bound.
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 8;

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_hashes = std::move(hashes_);
    std::vector<uint32_t> old_ids = std::move(ids_);
    hashes_.assign(new_capacity, 0);
    ids_.assign(new_capacity, kNpos);
    mask_ = new_capacity - 1;
    footprint_.Set(new_capacity * (sizeof(uint64_t) + sizeof(uint32_t)));
    for (size_t i = 0; i < old_ids.size(); ++i) {
      if (old_ids[i] == kNpos) continue;
      size_t j = old_hashes[i] & mask_;
      while (ids_[j] != kNpos) j = (j + 1) & mask_;
      ids_[j] = old_ids[i];
      hashes_[j] = old_hashes[i];
    }
  }

  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> ids_;
  size_t mask_ = 0;
  size_t size_ = 0;
  TableFootprint footprint_;
};

/// Open-addressing map with power-of-two capacity and linear probing.
/// Slots cache the key's hash, so probing long keys (e.g. the compiler's
/// serialized-clauses cache keys) compares 8 bytes before touching the key.
/// Erase uses tombstones; Reserve() kills rehash storms on known-size
/// workloads.
template <typename K, typename V>
class FlatMap {
 public:
  FlatMap() { Rehash(kMinCapacity); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  void reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  V* Find(const K& key) {
    const size_t i = FindSlot(key, HashValue(key));
    return i == kNoSlot ? nullptr : &slots_[i].value;
  }
  const V* Find(const K& key) const {
    const size_t i = FindSlot(key, HashValue(key));
    return i == kNoSlot ? nullptr : &slots_[i].value;
  }

  /// Inserts or overwrites.
  void Insert(const K& key, V value) {
    const uint64_t hash = HashValue(key);
    const size_t found = FindSlot(key, hash);
    if (found != kNoSlot) {
      slots_[found].value = std::move(value);
      return;
    }
    MaybeGrow();
    const size_t i = InsertSlot(key, hash);
    slots_[i].key = key;
    slots_[i].value = std::move(value);
  }

  /// operator[]: default-constructs missing entries.
  V& operator[](const K& key) {
    const uint64_t hash = HashValue(key);
    const size_t found = FindSlot(key, hash);
    if (found != kNoSlot) return slots_[found].value;
    MaybeGrow();
    const size_t i = InsertSlot(key, hash);
    slots_[i].key = key;
    slots_[i].value = V();
    return slots_[i].value;
  }

  /// Removes `key`; returns true if it was present.
  bool Erase(const K& key) {
    const size_t i = FindSlot(key, HashValue(key));
    if (i == kNoSlot) return false;
    ctrl_[i] = kTombstone;
    slots_[i].key = K();
    slots_[i].value = V();
    --size_;
    ++tombstones_;
    return true;
  }

  void Clear() {
    std::fill(ctrl_.begin(), ctrl_.end(), kEmpty);
    for (Slot& s : slots_) s = Slot();
    size_ = 0;
    tombstones_ = 0;
  }

 private:
  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kMaxLoadNum = 3;
  static constexpr size_t kMaxLoadDen = 4;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);
  static constexpr uint8_t kEmpty = 0, kFull = 1, kTombstone = 2;

  struct Slot {
    uint64_t hash = 0;
    K key{};
    V value{};
  };

  size_t FindSlot(const K& key, uint64_t hash) const {
    size_t i = hash & mask_;
    while (ctrl_[i] != kEmpty) {
      if (ctrl_[i] == kFull && slots_[i].hash == hash && slots_[i].key == key) {
        return i;
      }
      i = (i + 1) & mask_;
    }
    return kNoSlot;
  }

  // Claims a slot for a key known to be absent; reuses tombstones.
  size_t InsertSlot(const K& key, uint64_t hash) {
    (void)key;
    size_t i = hash & mask_;
    while (ctrl_[i] == kFull) i = (i + 1) & mask_;
    if (ctrl_[i] == kTombstone) --tombstones_;
    ctrl_[i] = kFull;
    slots_[i].hash = hash;
    ++size_;
    return i;
  }

  void MaybeGrow() {
    if ((size_ + tombstones_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      // Growing also drops tombstones; stay at the same capacity when the
      // live load alone is under half (erase-heavy workloads).
      const size_t target = (size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum / 2
                                ? slots_.size() * 2
                                : slots_.size();
      Rehash(target);
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    slots_.assign(new_capacity, Slot());
    ctrl_.assign(new_capacity, kEmpty);
    mask_ = new_capacity - 1;
    tombstones_ = 0;
    footprint_.Set(new_capacity * (sizeof(Slot) + sizeof(uint8_t)));
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      size_t j = old_slots[i].hash & mask_;
      while (ctrl_[j] == kFull) j = (j + 1) & mask_;
      ctrl_[j] = kFull;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> ctrl_;
  size_t mask_ = 0;
  size_t size_ = 0;
  size_t tombstones_ = 0;
  TableFootprint footprint_;
};

/// Bounded lossy cache: direct-mapped tagged slots, overwrite-on-collision.
///
/// The apply caches of the SDD and OBDD managers only affect *speed*: every
/// cached operation is canonical, so recomputing a lost entry returns the
/// identical node. Capping the cache keeps compilation memory flat under
/// TBC budgets where an exact memo table would grow with the (worst-case
/// exponential) number of distinct subproblems. The cache starts small and
/// doubles as it fills, up to `max_capacity` slots; past the cap, new
/// entries overwrite colliding ones.
template <typename K, typename V>
class LossyCache {
 public:
  explicit LossyCache(size_t max_capacity = kDefaultMaxCapacity)
      : max_capacity_(RoundUpPow2(max_capacity)) {
    Resize(std::min<size_t>(kMinCapacity, max_capacity_));
  }

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return size_; }

  const V* Find(const K& key) const {
    const Slot& s = slots_[HashValue(key) & mask_];
    return (s.full && s.key == key) ? &s.value : nullptr;
  }

  void Insert(const K& key, V value) {
    if (size_ * 2 >= slots_.size() && slots_.size() < max_capacity_) {
      Resize(slots_.size() * 2);
    }
    Slot& s = slots_[HashValue(key) & mask_];
    if (!s.full) {
      s.full = true;
      ++size_;
    }
    s.key = key;
    s.value = std::move(value);
  }

  void Clear() {
    for (Slot& s : slots_) s = Slot();
    size_ = 0;
  }

 private:
  static constexpr size_t kMinCapacity = 1024;
  // 2^20 slots; at ~32 bytes per (OpKey, entry) slot this is a ~32 MB
  // ceiling per manager, independent of how long a compilation runs.
  // Deliberately no EraseIf/scan API: invalidation must be O(1) (see the
  // SDD op cache's edit epochs) — a full-capacity scan per event is the
  // kind of cost this cache exists to avoid.
  static constexpr size_t kDefaultMaxCapacity = size_t{1} << 20;

  struct Slot {
    K key{};
    V value{};
    bool full = false;
  };

  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  void Resize(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot());
    mask_ = new_capacity - 1;
    size_ = 0;
    footprint_.Set(new_capacity * sizeof(Slot));
    for (Slot& s : old) {
      if (!s.full) continue;
      Slot& d = slots_[HashValue(s.key) & mask_];
      if (!d.full) ++size_;
      d = std::move(s);
      d.full = true;
    }
  }

  size_t max_capacity_;
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  TableFootprint footprint_;
};

}  // namespace tbc

#endif  // TBC_BASE_FLAT_TABLE_H_
