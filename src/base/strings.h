#ifndef TBC_BASE_STRINGS_H_
#define TBC_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tbc {

/// Splits on any run of whitespace; no empty tokens are produced.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Splits on a single separator character; empty fields are kept.
std::vector<std::string> SplitChar(std::string_view text, char sep);

/// Removes leading and trailing whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strict numeric parsing for the file-format parsers: the whole token must
/// be a valid number (no trailing junk, no empty token, no overflow).
/// Returns false on malformed input instead of throwing or aborting.
bool ParseUint64(std::string_view token, uint64_t* out);
bool ParseInt(std::string_view token, int* out);
bool ParseDouble(std::string_view token, double* out);

/// Shortest round-trippable hexfloat ("0x1.8p+1"; "inf"/"-inf"/"nan" for
/// non-finite values). Locale-independent — unlike printf "%a", whose
/// output embeds the run-time locale's radix character — so values travel
/// bit-exactly between processes regardless of either side's locale
/// (the wire protocol's WMC transport and kc_cli's `c wmc_hex:` line).
std::string FormatDoubleHex(double v);

/// Locale-independent inverse of FormatDoubleHex, additionally accepting
/// plain decimal ("1.5e3") for hand-written inputs. The whole token must
/// parse; "nan" is rejected (no wire value is NaN).
bool ParseDoubleAnyFormat(std::string_view token, double* out);

}  // namespace tbc

#endif  // TBC_BASE_STRINGS_H_
