#ifndef TBC_BASE_STRINGS_H_
#define TBC_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tbc {

/// Splits on any run of whitespace; no empty tokens are produced.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Splits on a single separator character; empty fields are kept.
std::vector<std::string> SplitChar(std::string_view text, char sep);

/// Removes leading and trailing whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace tbc

#endif  // TBC_BASE_STRINGS_H_
