#ifndef TBC_BASE_SCRATCH_H_
#define TBC_BASE_SCRATCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace tbc {

/// Epoch-stamped dense scratch map over small integer keys (variables,
/// node ids). A `Clear()` is O(1) — it bumps the epoch instead of touching
/// the arrays — so a recursive algorithm can reuse one allocation for
/// thousands of short-lived key→value maps where a hash map would pay an
/// allocation plus hashing per call. Keys seen since the last `Clear()`
/// are recorded in `touched()` for deterministic iteration.
class EpochMap {
 public:
  bool Has(uint32_t k) const {
    return k < stamp_.size() && stamp_[k] == epoch_;
  }

  /// Value for `k`; only meaningful when `Has(k)`.
  uint32_t Get(uint32_t k) const { return value_[k]; }

  void Set(uint32_t k, uint32_t v) {
    if (k >= stamp_.size()) Grow(k);
    if (stamp_[k] != epoch_) {
      stamp_[k] = epoch_;
      touched_.push_back(k);
    }
    value_[k] = v;
  }

  /// Keys assigned since the last Clear(), in first-assignment order.
  const std::vector<uint32_t>& touched() const { return touched_; }

  void Clear() {
    touched_.clear();
    if (++epoch_ == 0) {
      // Epoch wrap: stale stamps could alias. Reset once every 2^32 clears.
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

 private:
  void Grow(uint32_t k) {
    const size_t n = std::max<size_t>(static_cast<size_t>(k) + 1,
                                      stamp_.size() * 2 + 16);
    stamp_.resize(n, 0u);
    value_.resize(n);
  }

  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> value_;
  std::vector<uint32_t> touched_;
  uint32_t epoch_ = 0;
};

}  // namespace tbc

#endif  // TBC_BASE_SCRATCH_H_
