#ifndef TBC_BASE_OBSERVABILITY_H_
#define TBC_BASE_OBSERVABILITY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tbc {

/// Observability layer for the KC stack (DESIGN.md "Observability layer").
///
/// Three metric kinds plus trace spans, all behind one process-wide
/// thread-safe registry:
///   - ObsCounter:   monotonic event counter (decisions, cache hits, ...).
///   - ObsGauge:     up/down value with a monotonic high-water mark; used
///                   for live/peak memory accounting (flat-table bytes).
///   - ObsHistogram: log2-bucketed distribution of nonnegative integer
///                   samples (durations in microseconds, batch sizes).
///   - TraceSpan:    RAII hierarchical span; records duration into the
///                   histogram "span.<name>" and appends a bounded trace
///                   event (thread, depth, start, duration) for the sinks.
///
/// Overhead contract: instrumentation sites go through the TBC_COUNT /
/// TBC_OBSERVE_VALUE / TBC_GAUGE_ADD / TBC_SPAN macros below. With the
/// CMake option TBC_OBSERVE=OFF the macros compile to no-ops — zero code,
/// zero data — so production binaries that opt out pay nothing (<2%
/// overhead acceptance gate, ISSUE 4). With observability ON, counters
/// and histograms are single relaxed atomic RMWs, and every macro caches
/// its registry lookup in a function-local static, so steady-state cost
/// is one atomic add per event with no locks.
///
/// Naming scheme: "<subsystem>.<object>.<event>", lowercase, dot-
/// separated, e.g. "sdd.apply.cache_hits", "counter.wmc.rescues",
/// "base.flat_table.bytes". Span names use the same convention without
/// the "span." prefix (the registry adds it for the histogram view).
/// Metric names passed to the macros must be string literals (they are
/// captured by reference once per call site).

/// Monotonic counter. All methods are thread-safe; Add is one relaxed
/// fetch_add.
class ObsCounter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Up/down gauge with a peak (high-water mark). The peak is maintained
/// with a CAS loop, so concurrent Add calls never lose a maximum.
class ObsGauge {
 public:
  void Add(int64_t delta) {
    const int64_t now = current_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  int64_t current() const { return current_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// Log2-bucketed histogram of nonnegative integer samples. Bucket i
/// counts samples whose highest set bit is i (bucket 0 additionally holds
/// the zeros), so quantiles are approximate within a factor of 2 — enough
/// to tell a 10µs query from a 10ms one without per-sample allocation.
class ObsHistogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Observe(uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    AtomicMax(max_, v);
    AtomicMin(min_, v);
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest sample seen (0 when empty).
  uint64_t min() const {
    const uint64_t m = min_.load(std::memory_order_relaxed);
    return m == ~0ull ? 0 : m;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket containing quantile q in [0, 1] (an
  /// approximation within 2x; exact for single-bucket histograms).
  uint64_t ApproxQuantile(double q) const;

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    min_.store(~0ull, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  static size_t BucketOf(uint64_t v) {
    size_t b = 0;
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  static void AtomicMax(std::atomic<uint64_t>& slot, uint64_t v) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMin(std::atomic<uint64_t>& slot, uint64_t v) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> min_{~0ull};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// A completed trace span, as surfaced by the sinks.
struct SpanEvent {
  std::string name;
  uint32_t thread = 0;    // small per-process thread index, not the OS tid
  uint32_t depth = 0;     // nesting depth at the time the span was open
  uint64_t start_us = 0;  // microseconds since the registry's epoch
  uint64_t duration_us = 0;
};

/// Process-wide metric registry. Metric objects are created on first use
/// and live for the process lifetime, so references returned by
/// Counter/Gauge/Histogram stay valid across Reset() — call sites may
/// cache them (the macros do).
class Observability {
 public:
  /// The global registry (constructed on first use, thread-safe).
  static Observability& Global();

  /// Finds or creates the named metric. Thread-safe; O(log n) under a
  /// mutex, intended to be amortized away via call-site caching.
  ObsCounter& Counter(std::string_view name);
  ObsGauge& Gauge(std::string_view name);
  ObsHistogram& Histogram(std::string_view name);

  /// Point reads for programmatic consumers (bench harness, tests).
  /// Missing names read as zero.
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeCurrent(std::string_view name) const;
  int64_t GaugePeak(std::string_view name) const;
  uint64_t HistogramCount(std::string_view name) const;
  uint64_t HistogramSum(std::string_view name) const;
  uint64_t HistogramMax(std::string_view name) const;

  /// Appends a completed span (called by TraceSpan; also usable directly).
  /// Events beyond the ring capacity are dropped and counted.
  void RecordSpan(std::string_view name, uint32_t thread, uint32_t depth,
                  uint64_t start_us, uint64_t duration_us);
  /// Completed spans in record order (bounded by kMaxSpanEvents).
  std::vector<SpanEvent> SpanEvents() const;
  uint64_t spans_dropped() const;

  /// Microseconds since the registry's construction (span timestamps).
  uint64_t NowMicros() const;
  /// Small dense index for the calling thread (stable per thread).
  static uint32_t ThreadIndex();

  /// Zeroes every metric and clears the span ring. Metric references stay
  /// valid. For tests and per-run CLI reporting.
  void Reset();

  /// Text sink: one line per metric, sorted by name.
  std::string RenderText() const;
  /// JSON sink: {"version":1, "counters":{...}, "gauges":{...},
  /// "histograms":{...}, "spans":[...], "spans_dropped":N}. The shape is
  /// pinned by tools/stats_schema.json and check_stats_schema.sh.
  std::string RenderJson() const;

  static constexpr size_t kMaxSpanEvents = 8192;

 private:
  Observability();
  struct Impl;
  Impl* impl_;  // intentionally leaked with the process-lifetime singleton
};

/// RAII trace span. Construction stamps the start and pushes one level of
/// per-thread nesting; destruction records the event and a duration
/// sample into histogram "span.<name>". The name must outlive the span
/// (string literals at every call site).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_us_;
  uint32_t depth_;
};

}  // namespace tbc

// ---------------------------------------------------------------------------
// Instrumentation macros — the only interface hot paths should use.
// ---------------------------------------------------------------------------

#if defined(TBC_OBSERVE_ENABLED) && TBC_OBSERVE_ENABLED
#define TBC_OBSERVE_ON 1
#else
#define TBC_OBSERVE_ON 0
#endif

#define TBC_OBS_CONCAT_INNER(a, b) a##b
#define TBC_OBS_CONCAT(a, b) TBC_OBS_CONCAT_INNER(a, b)

#if TBC_OBSERVE_ON

/// Increments counter `name` by n / by 1. `name` must be a string literal.
#define TBC_COUNT_N(name, n)                                          \
  do {                                                                \
    static ::tbc::ObsCounter& tbc_obs_counter_ =                      \
        ::tbc::Observability::Global().Counter(name);                 \
    tbc_obs_counter_.Add(n);                                          \
  } while (0)
#define TBC_COUNT(name) TBC_COUNT_N(name, 1)

/// Adds a sample to histogram `name`.
#define TBC_OBSERVE_VALUE(name, value)                                \
  do {                                                                \
    static ::tbc::ObsHistogram& tbc_obs_hist_ =                       \
        ::tbc::Observability::Global().Histogram(name);               \
    tbc_obs_hist_.Observe(static_cast<uint64_t>(value));              \
  } while (0)

/// Moves gauge `name` by a signed delta (current and peak both tracked).
#define TBC_GAUGE_ADD(name, delta)                                    \
  do {                                                                \
    static ::tbc::ObsGauge& tbc_obs_gauge_ =                          \
        ::tbc::Observability::Global().Gauge(name);                   \
    tbc_obs_gauge_.Add(static_cast<int64_t>(delta));                  \
  } while (0)

/// Opens a hierarchical trace span for the rest of the enclosing scope.
#define TBC_SPAN(name) \
  ::tbc::TraceSpan TBC_OBS_CONCAT(tbc_obs_span_, __LINE__)(name)

/// Dynamic-name variants for call sites whose metric name is computed at
/// runtime (e.g. per portfolio arm). Pays the registry lookup per call —
/// keep off hot paths.
#define TBC_COUNT_DYN(name) ::tbc::Observability::Global().Counter(name).Add(1)
#define TBC_OBSERVE_VALUE_DYN(name, value) \
  ::tbc::Observability::Global().Histogram(name).Observe( \
      static_cast<uint64_t>(value))

#else  // !TBC_OBSERVE_ON — the compile-time kill switch: all no-ops.

// sizeof() keeps the value operand formally "used" (silencing -Werror
// unused warnings at call sites) without ever evaluating it.
#define TBC_COUNT_N(name, n) \
  do {                       \
    (void)sizeof(n);         \
  } while (0)
#define TBC_COUNT(name) \
  do {                  \
  } while (0)
#define TBC_OBSERVE_VALUE(name, value) \
  do {                                 \
    (void)sizeof(value);               \
  } while (0)
#define TBC_GAUGE_ADD(name, delta) \
  do {                             \
    (void)sizeof(delta);           \
  } while (0)
#define TBC_SPAN(name) \
  do {                 \
  } while (0)
#define TBC_COUNT_DYN(name) \
  do {                      \
    (void)sizeof(name);     \
  } while (0)
#define TBC_OBSERVE_VALUE_DYN(name, value) \
  do {                                     \
    (void)sizeof(name);                    \
    (void)sizeof(value);                   \
  } while (0)

#endif  // TBC_OBSERVE_ON

#endif  // TBC_BASE_OBSERVABILITY_H_
