#ifndef TBC_BASE_FAULT_H_
#define TBC_BASE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

namespace tbc::fault {

/// Deterministic fault injection for the robustness tests (DESIGN.md
/// "Serving layer"). Production code marks *named injection points* with
/// TBC_FAULT_POINT("name"); the macro evaluates to true when the installed
/// FaultPlan decides that this hit of this point should fail, and the site
/// then simulates the corresponding failure (allocation refusal,
/// mid-compile cancel, truncated frame, forced cache eviction, ...).
///
/// Determinism contract: a plan is seeded, and the fire/no-fire decision
/// for the k-th hit of point p is a pure function of (seed, p, k) — so a
/// failing single-threaded run replays exactly from its seed. Under
/// concurrency the per-point hit order is scheduling-dependent, but the
/// *sequence* of decisions handed out per point is still seed-determined,
/// which is what the soak test needs (seeded churn, not a transcript).
///
/// Injection points are declared centrally in kPointNames below and looked
/// up once per site (function-local static). Declaring them centrally —
/// rather than registering on first execution — lets serve_fault_test
/// iterate every point even before any traffic has touched it, and turns a
/// typo at a call site into an immediate abort instead of a silently dead
/// fault hook.
///
/// Build switch: with the CMake option TBC_FAULTS=OFF the macro compiles
/// to `false` — zero code on every hot path. With faults compiled in but
/// no plan installed, the cost is one relaxed atomic load per point hit.

/// Every injection point in the codebase. Append only; tests iterate this.
inline constexpr const char* kPointNames[] = {
    /// Admission: pretend the request queue is full -> kOverloaded refusal.
    "serve.queue.overload",
    /// Simulated allocation failure while staging a request -> kInternal.
    "serve.request.alloc",
    /// Sleep inside request execution (drain/soak pressure; no failure).
    "serve.request.delay",
    /// Cancel the request's Guard mid-compile -> kCancelled refusal.
    "serve.compile.cancel",
    /// Corrupt an inbound frame payload after read -> kInvalidInput.
    "serve.frame.garbage",
    /// Drop the connection mid-response (client sees a truncated frame).
    "serve.frame.truncate",
    /// Evict the artifact right after insert (in-flight queries must hold
    /// their shared_ptr across the eviction).
    "serve.cache.evict",
    /// Client-side: send a garbage magic instead of a request frame.
    "client.frame.garbage",
    /// Client-side: send only half the frame, then close the socket.
    "client.frame.truncate",
    /// Client-side: stall between the header and the payload bytes.
    "client.frame.slow",
};
inline constexpr size_t kNumPoints = sizeof(kPointNames) / sizeof(kPointNames[0]);

/// All declared injection point names, in declaration order.
std::vector<std::string_view> KnownPoints();

/// A seeded fault schedule. Immutable after installation; all decision
/// state (per-point hit counters) is atomic, so ShouldFire is safe from
/// any thread.
class FaultPlan {
 public:
  /// A plan that fires every point independently with `probability` per
  /// hit, decided by splitmix64 over (seed, point, hit index).
  explicit FaultPlan(uint64_t seed, double probability = 0.0);

  /// Per-point probability override (0 disables the point).
  void SetProbability(std::string_view point, double p);
  /// Fire exactly on the nth hit (1-based) of `point`, never otherwise.
  /// Overrides any probability for that point.
  void SetFireOnHit(std::string_view point, uint64_t nth);

  /// Decides the next hit of `point`. Thread-safe; advances the point's
  /// hit counter.
  bool ShouldFire(size_t point_index);

  uint64_t seed() const { return seed_; }
  /// Total decisions that came back "fire" (test assertions).
  uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  struct PointState {
    std::atomic<uint64_t> hits{0};
    uint64_t threshold = 0;   // fire when mix < threshold (probability mode)
    uint64_t fire_on_hit = 0; // 1-based; 0 = probability mode
  };
  static size_t IndexOf(std::string_view point);

  uint64_t seed_;
  PointState points_[kNumPoints];
  std::atomic<uint64_t> fired_{0};
};

/// Installs `plan` as the process-wide plan for this scope. Plans must not
/// overlap in time from different threads (tests install one at a time);
/// installation itself is atomic so in-flight ShouldFire calls on server
/// threads are safe while the plan is being swapped.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan* plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  FaultPlan* previous_;
};

namespace internal {
extern std::atomic<FaultPlan*> g_plan;
/// Slow path of TBC_FAULT_POINT: resolves the point name (aborting on a
/// name that is not declared in kPointNames) and asks the current plan.
/// The cached index is atomic: concurrent first hits of one site may both
/// resolve it, racing only on identical values.
bool FireAt(std::string_view name, std::atomic<size_t>* cached_index);
}  // namespace internal

}  // namespace tbc::fault

#if defined(TBC_FAULTS_ENABLED) && TBC_FAULTS_ENABLED

/// True when the installed FaultPlan injects a failure at this site for
/// this hit. `name` must be a string literal declared in kPointNames.
#define TBC_FAULT_POINT(name)                                              \
  (::tbc::fault::internal::g_plan.load(std::memory_order_acquire) != nullptr && \
   ([]() -> bool {                                                         \
     static std::atomic<size_t> tbc_fault_index_{~size_t{0}};              \
     return ::tbc::fault::internal::FireAt(name, &tbc_fault_index_);       \
   }()))

#else  // faults compiled out: zero code.

#define TBC_FAULT_POINT(name) false

#endif  // TBC_FAULTS_ENABLED

#endif  // TBC_BASE_FAULT_H_
