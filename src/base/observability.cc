#include "base/observability.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace tbc {

namespace {

/// JSON string escaping for metric names (names are ASCII identifiers by
/// convention, but the sink must not emit invalid JSON for any input).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::atomic<uint32_t> g_next_thread_index{0};

uint32_t ThisThreadIndex() {
  thread_local const uint32_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

thread_local uint32_t t_span_depth = 0;

}  // namespace

uint64_t ObsHistogram::ApproxQuantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += bucket(b);
    if (seen > rank) {
      // Upper bound of bucket b, clamped to the true max.
      const uint64_t hi = b >= 63 ? max() : (uint64_t{1} << (b + 1)) - 1;
      return hi < max() ? hi : max();
    }
  }
  return max();
}

struct Observability::Impl {
  mutable std::mutex mu;
  // std::map: stable element addresses and deterministic (sorted) render
  // order. transparent comparator for string_view lookups.
  std::map<std::string, std::unique_ptr<ObsCounter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<ObsGauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<ObsHistogram>, std::less<>> histograms;
  std::vector<SpanEvent> spans;
  uint64_t spans_dropped = 0;
  std::chrono::steady_clock::time_point epoch;
};

Observability::Observability() : impl_(new Impl) {
  impl_->epoch = std::chrono::steady_clock::now();
  impl_->spans.reserve(256);
}

Observability& Observability::Global() {
  // Leaked singleton: metrics may be touched from static destructors of
  // other TUs, so the registry must never be torn down.
  static Observability* const global = new Observability();
  return *global;
}

ObsCounter& Observability::Counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<ObsCounter>())
             .first;
  }
  return *it->second;
}

ObsGauge& Observability::Gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(std::string(name), std::make_unique<ObsGauge>())
             .first;
  }
  return *it->second;
}

ObsHistogram& Observability::Histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<ObsHistogram>())
             .first;
  }
  return *it->second;
}

uint64_t Observability::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->counters.find(name);
  return it == impl_->counters.end() ? 0 : it->second->value();
}

int64_t Observability::GaugeCurrent(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->gauges.find(name);
  return it == impl_->gauges.end() ? 0 : it->second->current();
}

int64_t Observability::GaugePeak(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->gauges.find(name);
  return it == impl_->gauges.end() ? 0 : it->second->peak();
}

uint64_t Observability::HistogramCount(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->histograms.find(name);
  return it == impl_->histograms.end() ? 0 : it->second->count();
}

uint64_t Observability::HistogramSum(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->histograms.find(name);
  return it == impl_->histograms.end() ? 0 : it->second->sum();
}

uint64_t Observability::HistogramMax(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->histograms.find(name);
  return it == impl_->histograms.end() ? 0 : it->second->max();
}

void Observability::RecordSpan(std::string_view name, uint32_t thread,
                               uint32_t depth, uint64_t start_us,
                               uint64_t duration_us) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->spans.size() >= kMaxSpanEvents) {
    ++impl_->spans_dropped;
    return;
  }
  impl_->spans.push_back(
      SpanEvent{std::string(name), thread, depth, start_us, duration_us});
}

std::vector<SpanEvent> Observability::SpanEvents() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->spans;
}

uint64_t Observability::spans_dropped() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->spans_dropped;
}

uint64_t Observability::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - impl_->epoch)
          .count());
}

uint32_t Observability::ThreadIndex() { return ThisThreadIndex(); }

void Observability::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->Reset();
  for (auto& [name, g] : impl_->gauges) g->Reset();
  for (auto& [name, h] : impl_->histograms) h->Reset();
  impl_->spans.clear();
  impl_->spans_dropped = 0;
}

std::string Observability::RenderText() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out;
  out += "counters:\n";
  for (const auto& [name, c] : impl_->counters) {
    out += "  " + name + " = " + std::to_string(c->value()) + "\n";
  }
  out += "gauges:\n";
  for (const auto& [name, g] : impl_->gauges) {
    out += "  " + name + " current=" + std::to_string(g->current()) +
           " peak=" + std::to_string(g->peak()) + "\n";
  }
  out += "histograms:\n";
  for (const auto& [name, h] : impl_->histograms) {
    out += "  " + name + " count=" + std::to_string(h->count()) +
           " sum=" + std::to_string(h->sum()) +
           " min=" + std::to_string(h->min()) +
           " max=" + std::to_string(h->max()) +
           " p50~" + std::to_string(h->ApproxQuantile(0.5)) + "\n";
  }
  out += "spans: " + std::to_string(impl_->spans.size()) + " recorded, " +
         std::to_string(impl_->spans_dropped) + " dropped\n";
  for (const SpanEvent& s : impl_->spans) {
    out += "  [" + std::to_string(s.start_us) + "us] ";
    for (uint32_t d = 0; d < s.depth; ++d) out += "  ";
    out += s.name + " " + std::to_string(s.duration_us) + "us (thread " +
           std::to_string(s.thread) + ")\n";
  }
  return out;
}

std::string Observability::RenderJson() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\n  \"version\": 1,\n";
  out += std::string("  \"observe_enabled\": ") +
         (TBC_OBSERVE_ON ? "true" : "false") + ",\n";
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(c->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) +
           "\": {\"current\": " + std::to_string(g->current()) +
           ", \"peak\": " + std::to_string(g->peak()) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h->count()) + ", \"sum\": " + std::to_string(h->sum()) +
           ", \"min\": " + std::to_string(h->min()) +
           ", \"max\": " + std::to_string(h->max()) +
           ", \"p50\": " + std::to_string(h->ApproxQuantile(0.5)) +
           ", \"p90\": " + std::to_string(h->ApproxQuantile(0.9)) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"spans\": [";
  first = true;
  for (const SpanEvent& s : impl_->spans) {
    out += first ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(s.name) +
           "\", \"thread\": " + std::to_string(s.thread) +
           ", \"depth\": " + std::to_string(s.depth) +
           ", \"start_us\": " + std::to_string(s.start_us) +
           ", \"dur_us\": " + std::to_string(s.duration_us) + "}";
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"spans_dropped\": " + std::to_string(impl_->spans_dropped) + "\n}\n";
  return out;
}

TraceSpan::TraceSpan(const char* name)
    : name_(name),
      start_us_(Observability::Global().NowMicros()),
      depth_(t_span_depth) {
  ++t_span_depth;
}

TraceSpan::~TraceSpan() {
  --t_span_depth;
  Observability& obs = Observability::Global();
  const uint64_t dur = obs.NowMicros() - start_us_;
  obs.RecordSpan(name_, ThisThreadIndex(), depth_, start_us_, dur);
  obs.Histogram(std::string("span.") + name_).Observe(dur);
}

}  // namespace tbc
