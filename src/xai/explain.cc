#include "xai/explain.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "base/check.h"

namespace tbc {

namespace {

// f restricted by every literal of the term.
ObddId RestrictTerm(ObddManager& mgr, ObddId f, const Term& term) {
  for (Lit l : term) f = mgr.Restrict(f, l.var(), l.positive());
  return f;
}

// True iff the term implies f.
bool TermImplies(ObddManager& mgr, ObddId f, const Term& term) {
  return RestrictTerm(mgr, f, term) == mgr.True();
}

Term SortedInsert(Term term, Lit l) {
  term.push_back(l);
  std::sort(term.begin(), term.end(),
            [](Lit a, Lit b) { return a.var() < b.var(); });
  return term;
}

}  // namespace

std::vector<Term> PrimeImplicants(ObddManager& mgr, ObddId f) {
  std::unordered_map<ObddId, std::vector<Term>> memo;
  std::function<const std::vector<Term>&(ObddId)> rec =
      [&](ObddId g) -> const std::vector<Term>& {
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    std::vector<Term> result;
    if (g == mgr.True()) {
      result.push_back({});
    } else if (g != mgr.False()) {
      const Var v = mgr.var(g);
      const ObddId f0 = mgr.lo(g);
      const ObddId f1 = mgr.hi(g);
      const ObddId q = mgr.And(f0, f1);
      result = rec(q);
      for (const Term& p : rec(f1)) {
        if (!TermImplies(mgr, q, p)) result.push_back(SortedInsert(p, Pos(v)));
      }
      for (const Term& p : rec(f0)) {
        if (!TermImplies(mgr, q, p)) result.push_back(SortedInsert(p, Neg(v)));
      }
    }
    return memo.emplace(g, std::move(result)).first->second;
  };
  return rec(f);
}

std::vector<Term> PrimeImplicantsQmc(const BooleanClassifier& classifier) {
  const size_t n = classifier.num_features;
  TBC_CHECK_MSG(n <= 14, "Quine-McCluskey oracle limited to 14 features");
  // Implicant = (mask of fixed vars, their values). Start from minterms.
  using Imp = std::pair<uint32_t, uint32_t>;  // (mask, values & mask)
  std::set<Imp> current;
  Assignment x(n);
  for (uint32_t bits = 0; bits < (1u << n); ++bits) {
    for (size_t v = 0; v < n; ++v) x[v] = (bits >> v) & 1;
    if (classifier.classify(x)) current.insert({(1u << n) - 1, bits});
  }
  std::vector<Term> primes;
  while (!current.empty()) {
    std::set<Imp> next;
    std::set<Imp> merged;
    std::vector<Imp> items(current.begin(), current.end());
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        if (items[i].first != items[j].first) continue;
        const uint32_t diff = items[i].second ^ items[j].second;
        if (__builtin_popcount(diff) != 1) continue;
        next.insert({items[i].first & ~diff, items[i].second & ~diff});
        merged.insert(items[i]);
        merged.insert(items[j]);
      }
    }
    for (const Imp& imp : items) {
      if (merged.find(imp) == merged.end()) {
        Term t;
        for (size_t v = 0; v < n; ++v) {
          if (imp.first & (1u << v)) {
            t.push_back(Lit(static_cast<Var>(v), (imp.second >> v) & 1));
          }
        }
        primes.push_back(t);
      }
    }
    current = std::move(next);
  }
  std::sort(primes.begin(), primes.end(), [](const Term& a, const Term& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return a[i] < b[i];
    }
    return false;
  });
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  return primes;
}

std::vector<Term> SufficientReasons(ObddManager& mgr, ObddId f,
                                    const Assignment& x) {
  const bool decision = mgr.Evaluate(f, x);
  const ObddId target = decision ? f : mgr.Not(f);
  std::vector<Term> reasons;
  for (const Term& p : PrimeImplicants(mgr, target)) {
    bool compatible = true;
    for (Lit l : p) compatible &= Eval(l, x);
    if (compatible) reasons.push_back(p);
  }
  return reasons;
}

Term AnySufficientReason(ObddManager& mgr, ObddId f, const Assignment& x) {
  const bool decision = mgr.Evaluate(f, x);
  const ObddId target = decision ? f : mgr.Not(f);
  // Start from the full instance term and drop literals greedily.
  Term term;
  for (Var v = 0; v < mgr.num_vars(); ++v) term.push_back(Lit(v, x[v]));
  for (size_t i = 0; i < term.size();) {
    Term without = term;
    without.erase(without.begin() + static_cast<ptrdiff_t>(i));
    if (TermImplies(mgr, target, without)) {
      term = std::move(without);
    } else {
      ++i;
    }
  }
  return term;
}

NnfId ReasonCircuit(ObddManager& mgr, ObddId f, const Assignment& x,
                    NnfManager& nnf) {
  const bool decision = mgr.Evaluate(f, x);
  const ObddId target = decision ? f : mgr.Not(f);
  // Consensus transform [Darwiche & Hirth 2020]: at a decision node on X
  // with instance literal ℓ and consistent child c (other child o),
  //   R(node) = (ℓ ∧ R(c)) ∨ (R(c) ∧ R(o)).
  std::unordered_map<ObddId, NnfId> memo;
  std::function<NnfId(ObddId)> rec = [&](ObddId g) -> NnfId {
    if (g == mgr.False()) return nnf.False();
    if (g == mgr.True()) return nnf.True();
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    const Var v = mgr.var(g);
    const NnfId consistent = rec(x[v] ? mgr.hi(g) : mgr.lo(g));
    const NnfId other = rec(x[v] ? mgr.lo(g) : mgr.hi(g));
    const NnfId lit = nnf.Literal(Lit(v, x[v]));
    const NnfId r =
        nnf.Or(nnf.And(lit, consistent), nnf.And(consistent, other));
    memo.emplace(g, r);
    return r;
  };
  return rec(target);
}

bool ReasonHoldsWithout(NnfManager& nnf, NnfId reason, const Assignment& x,
                        const std::vector<Var>& excluded) {
  // The reason circuit mentions only literals consistent with x; withdraw
  // a characteristic by flipping that variable in the evaluation point.
  Assignment point = x;
  for (Var v : excluded) point[v] = !point[v];
  return nnf.Evaluate(reason, point);
}

Term ApproximateReason(const BooleanClassifier& classifier, const Assignment& x,
                       size_t samples, Rng& rng) {
  const bool decision = classifier.classify(x);
  const size_t n = classifier.num_features;
  // "Term holds" test by sampling: all sampled completions of the kept
  // characteristics must reproduce the decision.
  auto seems_sufficient = [&](const Term& term) {
    std::vector<int8_t> fixed(n, 0);
    for (Lit l : term) fixed[l.var()] = 1;
    Assignment y = x;
    for (size_t s = 0; s < samples; ++s) {
      for (size_t v = 0; v < n; ++v) {
        if (!fixed[v]) y[v] = rng.Flip(0.5);
      }
      if (classifier.classify(y) != decision) return false;
    }
    return true;
  };
  Term term;
  for (Var v = 0; v < n; ++v) term.push_back(Lit(v, x[v]));
  for (size_t i = 0; i < term.size();) {
    Term without = term;
    without.erase(without.begin() + static_cast<ptrdiff_t>(i));
    if (seems_sufficient(without)) {
      term = std::move(without);
    } else {
      ++i;
    }
  }
  return term;
}

ApproximationQuality ClassifyApproximation(const std::vector<Term>& exact_reasons,
                                           const Term& approximation) {
  auto contains = [](const Term& big, const Term& small) {
    for (Lit l : small) {
      if (std::find(big.begin(), big.end(), l) == big.end()) return false;
    }
    return true;
  };
  for (const Term& exact : exact_reasons) {
    if (exact.size() == approximation.size() && contains(exact, approximation)) {
      return ApproximationQuality::kExact;
    }
  }
  for (const Term& exact : exact_reasons) {
    if (contains(exact, approximation)) return ApproximationQuality::kOptimistic;
  }
  for (const Term& exact : exact_reasons) {
    if (contains(approximation, exact)) return ApproximationQuality::kPessimistic;
  }
  return ApproximationQuality::kIncomparable;
}

bool IsDecisionBiased(ObddManager& mgr, ObddId f, const Assignment& x,
                      const std::vector<Var>& protected_vars) {
  NnfManager nnf;
  const NnfId reason = ReasonCircuit(mgr, f, x, nnf);
  // Biased iff no sufficient reason avoids the protected features, i.e.
  // the monotone reason circuit fails once protected characteristics are
  // withdrawn.
  return !ReasonHoldsWithout(nnf, reason, x, protected_vars);
}

bool IsClassifierBiased(ObddManager& mgr, ObddId f,
                        const std::vector<Var>& protected_vars) {
  for (Var v : protected_vars) {
    if (mgr.Restrict(f, v, false) != mgr.Restrict(f, v, true)) return true;
  }
  return false;
}

}  // namespace tbc
