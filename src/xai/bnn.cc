#include "xai/bnn.h"

#include <functional>
#include <unordered_map>

#include "base/check.h"
#include "base/hash.h"
#include "obdd/threshold.h"

namespace tbc {

BinarizedNeuralNet::BinarizedNeuralNet(size_t num_inputs, size_t num_hidden,
                                       uint64_t seed)
    : num_inputs_(num_inputs) {
  Rng rng(seed);
  hidden_weights_.assign(num_hidden, std::vector<int64_t>(num_inputs, 0));
  hidden_bias_.assign(num_hidden, 0);
  output_weights_.assign(num_hidden, 0);
  for (size_t h = 0; h < num_hidden; ++h) {
    for (size_t i = 0; i < num_inputs; ++i) {
      hidden_weights_[h][i] = rng.Range(-3, 3);
    }
    hidden_bias_[h] = rng.Range(-3, 3);
    output_weights_[h] = rng.Range(-3, 3);
  }
  output_bias_ = rng.Range(-3, 3);
}

BinarizedNeuralNet BinarizedNeuralNet::Convolutional(size_t width,
                                                     size_t height,
                                                     size_t patch,
                                                     size_t num_hidden,
                                                     uint64_t seed) {
  TBC_CHECK(patch <= width && patch <= height);
  BinarizedNeuralNet net(width * height, num_hidden, seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (size_t h = 0; h < num_hidden; ++h) {
    const size_t r0 = rng.Below(height - patch + 1);
    const size_t c0 = rng.Below(width - patch + 1);
    for (size_t r = 0; r < height; ++r) {
      for (size_t c = 0; c < width; ++c) {
        const bool inside = r >= r0 && r < r0 + patch && c >= c0 && c < c0 + patch;
        if (!inside) net.hidden_weights_[h][r * width + c] = 0;
      }
    }
  }
  return net;
}

std::vector<bool> BinarizedNeuralNet::HiddenActivations(const Assignment& x) const {
  std::vector<bool> h(num_hidden());
  for (size_t j = 0; j < num_hidden(); ++j) {
    int64_t sum = hidden_bias_[j];
    for (size_t i = 0; i < num_inputs_; ++i) {
      if (x[i]) sum += hidden_weights_[j][i];
    }
    h[j] = sum >= 0;
  }
  return h;
}

bool BinarizedNeuralNet::Classify(const Assignment& x) const {
  const std::vector<bool> h = HiddenActivations(x);
  int64_t sum = output_bias_;
  for (size_t j = 0; j < num_hidden(); ++j) {
    if (h[j]) sum += output_weights_[j];
  }
  return sum >= 0;
}

BooleanClassifier BinarizedNeuralNet::AsBooleanClassifier() const {
  return {num_inputs_, [this](const Assignment& x) { return Classify(x); }};
}

void BinarizedNeuralNet::Train(const std::vector<Assignment>& data,
                               const std::vector<bool>& labels, size_t epochs) {
  TBC_CHECK(data.size() == labels.size());
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    for (size_t i = 0; i < data.size(); ++i) {
      const bool predicted = Classify(data[i]);
      if (predicted == labels[i]) continue;
      const int64_t delta = labels[i] ? 1 : -1;
      const std::vector<bool> h = HiddenActivations(data[i]);
      for (size_t j = 0; j < num_hidden(); ++j) {
        if (h[j]) output_weights_[j] += delta;
      }
      output_bias_ += delta;
    }
  }
}

double BinarizedNeuralNet::Accuracy(const std::vector<Assignment>& data,
                                    const std::vector<bool>& labels) const {
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    correct += Classify(data[i]) == labels[i];
  }
  return data.empty() ? 0.0 : static_cast<double>(correct) / data.size();
}

ObddId BinarizedNeuralNet::CompileNeuron(ObddManager& mgr, size_t h) const {
  // Zero-weight inputs (outside the receptive field) are dropped: the
  // neuron circuit then only mentions its support.
  std::vector<Var> vars;
  std::vector<int64_t> weights;
  for (size_t i = 0; i < num_inputs_; ++i) {
    if (hidden_weights_[h][i] != 0) {
      vars.push_back(static_cast<Var>(i));
      weights.push_back(hidden_weights_[h][i]);
    }
  }
  return CompileThreshold(mgr, vars, weights, -hidden_bias_[h]);
}

ObddId BinarizedNeuralNet::CompileToObdd(ObddManager& mgr) const {
  // Compile each hidden neuron, then compose the output threshold over the
  // neuron circuits: DP on (neuron index, partial output sum).
  std::vector<ObddId> neuron(num_hidden());
  for (size_t j = 0; j < num_hidden(); ++j) neuron[j] = CompileNeuron(mgr, j);

  std::vector<int64_t> suffix_min(num_hidden() + 1, 0),
      suffix_max(num_hidden() + 1, 0);
  for (size_t j = num_hidden(); j-- > 0;) {
    suffix_min[j] = suffix_min[j + 1] + std::min<int64_t>(output_weights_[j], 0);
    suffix_max[j] = suffix_max[j + 1] + std::max<int64_t>(output_weights_[j], 0);
  }
  struct Key {
    size_t j;
    int64_t sum;
    bool operator==(const Key& o) const { return j == o.j && sum == o.sum; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return HashU64(k.j * 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(k.sum));
    }
  };
  std::unordered_map<Key, ObddId, KeyHash> memo;
  std::function<ObddId(size_t, int64_t)> rec = [&](size_t j, int64_t sum) -> ObddId {
    if (sum + suffix_min[j] >= 0) return mgr.True();
    if (sum + suffix_max[j] < 0) return mgr.False();
    const Key key{j, sum};
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    const ObddId with = rec(j + 1, sum + output_weights_[j]);
    const ObddId without = rec(j + 1, sum);
    const ObddId r = mgr.Ite(neuron[j], with, without);
    memo.emplace(key, r);
    return r;
  };
  return rec(0, output_bias_);
}

DigitDataset MakeDigitDataset(size_t width, size_t height, size_t per_class,
                              double noise, uint64_t seed) {
  Rng rng(seed);
  DigitDataset out;
  auto at = [&](size_t r, size_t c) { return r * width + c; };
  // Templates.
  Assignment ring(width * height, false);
  for (size_t r = 0; r < height; ++r) {
    for (size_t c = 0; c < width; ++c) {
      const bool border = r == 0 || c == 0 || r + 1 == height || c + 1 == width;
      ring[at(r, c)] = border;
    }
  }
  Assignment stroke(width * height, false);
  for (size_t r = 0; r < height; ++r) stroke[at(r, width / 2)] = true;

  for (size_t i = 0; i < per_class; ++i) {
    for (bool label : {false, true}) {
      Assignment img = label ? stroke : ring;
      for (size_t p = 0; p < img.size(); ++p) {
        if (rng.Flip(noise)) img[p] = !img[p];
      }
      out.images.push_back(std::move(img));
      out.labels.push_back(label);
    }
  }
  return out;
}

}  // namespace tbc
