#include "xai/naive_bayes.h"

#include <cmath>

#include "base/check.h"
#include "obdd/threshold.h"

namespace tbc {

NaiveBayesClassifier::NaiveBayesClassifier(double prior,
                                           std::vector<double> likelihood_true,
                                           std::vector<double> likelihood_false,
                                           double threshold)
    : prior_(prior),
      likelihood_true_(std::move(likelihood_true)),
      likelihood_false_(std::move(likelihood_false)),
      threshold_(threshold) {
  TBC_CHECK(likelihood_true_.size() == likelihood_false_.size());
  TBC_CHECK(prior_ > 0.0 && prior_ < 1.0);
  TBC_CHECK(threshold_ > 0.0 && threshold_ < 1.0);
  for (size_t i = 0; i < likelihood_true_.size(); ++i) {
    TBC_CHECK(likelihood_true_[i] > 0.0 && likelihood_true_[i] < 1.0);
    TBC_CHECK(likelihood_false_[i] > 0.0 && likelihood_false_[i] < 1.0);
  }
}

NaiveBayesClassifier NaiveBayesClassifier::Fit(
    const std::vector<Assignment>& features, const std::vector<bool>& labels,
    double threshold, double laplace) {
  TBC_CHECK(!features.empty() && features.size() == labels.size());
  const size_t n = features[0].size();
  double positives = 0.0;
  std::vector<double> count_t(n, 0.0), count_f(n, 0.0);
  for (size_t i = 0; i < features.size(); ++i) {
    if (labels[i]) ++positives;
    for (size_t j = 0; j < n; ++j) {
      if (features[i][j]) (labels[i] ? count_t[j] : count_f[j]) += 1.0;
    }
  }
  const double negatives = static_cast<double>(features.size()) - positives;
  std::vector<double> lt(n), lf(n);
  for (size_t j = 0; j < n; ++j) {
    lt[j] = (count_t[j] + laplace) / (positives + 2.0 * laplace);
    lf[j] = (count_f[j] + laplace) / (negatives + 2.0 * laplace);
  }
  const double prior = (positives + laplace) /
                       (static_cast<double>(features.size()) + 2.0 * laplace);
  return NaiveBayesClassifier(prior, std::move(lt), std::move(lf), threshold);
}

double NaiveBayesClassifier::Posterior(const Assignment& e) const {
  double log_odds = std::log(prior_) - std::log(1.0 - prior_);
  for (size_t i = 0; i < num_features(); ++i) {
    const double pt = e[i] ? likelihood_true_[i] : 1.0 - likelihood_true_[i];
    const double pf = e[i] ? likelihood_false_[i] : 1.0 - likelihood_false_[i];
    log_odds += std::log(pt) - std::log(pf);
  }
  const double odds = std::exp(log_odds);
  return odds / (1.0 + odds);
}

bool NaiveBayesClassifier::Classify(const Assignment& e) const {
  return Posterior(e) >= threshold_;
}

BooleanClassifier NaiveBayesClassifier::AsBooleanClassifier() const {
  return {num_features(), [this](const Assignment& e) { return Classify(e); }};
}

ObddId NaiveBayesClassifier::CompileToOdd(ObddManager& mgr) const {
  // Decision: log prior odds + Σ_i [e_i ? log(lt/lf) : log((1-lt)/(1-lf))]
  //           >= log(T / (1-T)).
  // Linearize with e_i ∈ {0,1}:  Σ_i (a_i - b_i)·e_i >= τ - prior - Σ b_i,
  // then scale to integers (fixed point, 2^40).
  const double scale = 0x1.0p40;
  std::vector<Var> vars(num_features());
  std::vector<int64_t> weights(num_features());
  double base = std::log(prior_) - std::log(1.0 - prior_);
  for (size_t i = 0; i < num_features(); ++i) {
    const double a = std::log(likelihood_true_[i]) - std::log(likelihood_false_[i]);
    const double b = std::log(1.0 - likelihood_true_[i]) -
                     std::log(1.0 - likelihood_false_[i]);
    vars[i] = static_cast<Var>(i);
    weights[i] = std::llround((a - b) * scale);
    base += b;
  }
  const double tau = std::log(threshold_) - std::log(1.0 - threshold_);
  const int64_t rhs = std::llround((tau - base) * scale);
  return CompileThreshold(mgr, vars, weights, rhs);
}

NaiveBayesClassifier NaiveBayesClassifier::Random(size_t num_features,
                                                  double threshold,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<double> lt(num_features), lf(num_features);
  for (size_t i = 0; i < num_features; ++i) {
    lt[i] = 0.05 + 0.9 * rng.Uniform();
    lf[i] = 0.05 + 0.9 * rng.Uniform();
  }
  const double prior = 0.2 + 0.6 * rng.Uniform();
  return NaiveBayesClassifier(prior, std::move(lt), std::move(lf), threshold);
}

}  // namespace tbc
