#include "xai/bn_classifier.h"

#include "base/check.h"
#include "bayes/varelim.h"

namespace tbc {

BnClassifier::BnClassifier(const BayesianNetwork& net, BnVar class_var,
                           std::vector<BnVar> features, double threshold)
    : net_(net),
      class_var_(class_var),
      features_(std::move(features)),
      threshold_(threshold) {
  TBC_CHECK(net.cardinality(class_var_) == 2);
  for (BnVar f : features_) {
    TBC_CHECK(net.cardinality(f) == 2);
    TBC_CHECK(f != class_var_);
  }
}

double BnClassifier::Posterior(const Assignment& e) const {
  BnInstantiation evidence(net_.num_vars(), kUnobserved);
  for (size_t i = 0; i < features_.size(); ++i) {
    evidence[features_[i]] = e[i] ? 1 : 0;
  }
  VariableElimination ve(net_);
  return ve.Posterior(class_var_, 1, evidence);
}

bool BnClassifier::Classify(const Assignment& e) const {
  return Posterior(e) >= threshold_;
}

BooleanClassifier BnClassifier::AsBooleanClassifier() const {
  return {num_features(), [this](const Assignment& e) { return Classify(e); }};
}

ObddId BnClassifier::CompileToObdd(ObddManager& mgr) const {
  return CompileBruteForce(AsBooleanClassifier(), mgr);
}

}  // namespace tbc
