#ifndef TBC_XAI_EXPLAIN_H_
#define TBC_XAI_EXPLAIN_H_

#include <vector>

#include "base/random.h"
#include "nnf/nnf.h"
#include "obdd/obdd.h"
#include "xai/compile.h"

namespace tbc {

/// A term: a conjunction of literals, sorted by variable.
using Term = std::vector<Lit>;

/// All prime implicants of f (paper §5.1, Fig 26), by the classical
/// BDD recursion [Coudert & Madre]: at the top variable x with cofactors
/// f0, f1 and consensus q = f0 ∧ f1,
///   PI(f) = PI(q) ∪ {x·p : p ∈ PI(f1), p ⊭ q} ∪ {¬x·p : p ∈ PI(f0), p ⊭ q}.
/// Output may be exponential; intended for analysis-scale functions.
std::vector<Term> PrimeImplicants(ObddManager& mgr, ObddId f);

/// Prime implicants by Quine-McCluskey over the truth table (test oracle;
/// limited to 14 features).
std::vector<Term> PrimeImplicantsQmc(const BooleanClassifier& classifier);

/// Sufficient reasons (PI-explanations [Shih et al. 2018], "sufficient
/// reasons" [Darwiche & Hirth 2020]) for the decision f(x): the prime
/// implicants of f — of ¬f for negative decisions — compatible with x.
/// Every returned term is a minimal set of instance characteristics that
/// triggers the decision regardless of the other features (paper §5.1).
std::vector<Term> SufficientReasons(ObddManager& mgr, ObddId f,
                                    const Assignment& x);

/// One sufficient reason by greedy minimization of the instance term
/// (linear number of OBDD conditionings — usable when enumerating all
/// reasons is infeasible, as with the Fig 28 network explanation).
Term AnySufficientReason(ObddManager& mgr, ObddId f, const Assignment& x);

/// The *complete reason* behind the decision f(x) [Darwiche & Hirth 2020]:
/// a monotone circuit over the instance's characteristics whose implicants
/// are exactly the supersets of sufficient reasons (paper Fig 27's reason
/// circuits). Built in linear time from the OBDD by the consensus
/// transform; emitted into `nnf`.
NnfId ReasonCircuit(ObddManager& mgr, ObddId f, const Assignment& x,
                    NnfManager& nnf);

/// Evaluates the reason circuit with the characteristics of `excluded`
/// variables withdrawn: true iff the decision is still supported by the
/// remaining characteristics (the paper's counterfactual reading: "the
/// decision would stick even if ..." ).
bool ReasonHoldsWithout(NnfManager& nnf, NnfId reason, const Assignment& x,
                        const std::vector<Var>& excluded);

/// Anchor-style approximate explanation (paper §5.1 footnote 18): a
/// model-agnostic explanation computed by sampling instead of compiling —
/// greedily drops characteristics as long as `samples` random completions
/// keep the decision. No symbolic abstraction required, but no guarantee.
Term ApproximateReason(const BooleanClassifier& classifier, const Assignment& x,
                       size_t samples, Rng& rng);

/// Classifies an approximation against the exact sufficient reasons, per
/// the paper's evaluation vocabulary [Ignatiev et al. 2019]: kExact if it
/// IS a sufficient reason; kOptimistic if it is a strict subset of one
/// (claims more generality than warranted); kPessimistic if a strict
/// superset (includes irrelevant characteristics); kIncomparable otherwise.
enum class ApproximationQuality { kExact, kOptimistic, kPessimistic, kIncomparable };
ApproximationQuality ClassifyApproximation(const std::vector<Term>& exact_reasons,
                                           const Term& approximation);

/// Decision bias (paper §5.1): the decision on x is biased iff it would
/// differ had only protected features changed — equivalently, iff every
/// sufficient reason contains a protected feature.
bool IsDecisionBiased(ObddManager& mgr, ObddId f, const Assignment& x,
                      const std::vector<Var>& protected_vars);

/// Classifier bias: some decision is biased — equivalently, the decision
/// function depends on a protected feature.
bool IsClassifierBiased(ObddManager& mgr, ObddId f,
                        const std::vector<Var>& protected_vars);

}  // namespace tbc

#endif  // TBC_XAI_EXPLAIN_H_
