#ifndef TBC_XAI_NAIVE_BAYES_H_
#define TBC_XAI_NAIVE_BAYES_H_

#include <vector>

#include "base/random.h"
#include "obdd/obdd.h"
#include "xai/compile.h"

namespace tbc {

/// Naive Bayes classifier with binary features (paper §5, Fig 25: class P
/// with tests B, U, S).
///
/// Classifies instance e positively iff Pr(class | e) >= threshold. While
/// the classifier is numeric and probabilistic, its decision function is
/// Boolean, and CompileToOdd() extracts it as an Ordered Decision Diagram
/// — an OBDD for binary features — exactly capturing the classifier's
/// input-output behavior [Chan & Darwiche 2003]. The compilation reduces
/// the log-odds test to an integer linear threshold function (fixed-point
/// scaling by 2^40) compiled with the interval dynamic program.
class NaiveBayesClassifier {
 public:
  /// prior = Pr(class=1); likelihood_true[i] = Pr(feature_i = 1 | class=1),
  /// likelihood_false[i] = Pr(feature_i = 1 | class=0).
  NaiveBayesClassifier(double prior, std::vector<double> likelihood_true,
                       std::vector<double> likelihood_false, double threshold);

  /// Maximum-likelihood fit (with Laplace smoothing) from labeled data.
  static NaiveBayesClassifier Fit(const std::vector<Assignment>& features,
                                  const std::vector<bool>& labels,
                                  double threshold, double laplace);

  size_t num_features() const { return likelihood_true_.size(); }

  /// Posterior Pr(class = 1 | e).
  double Posterior(const Assignment& e) const;

  /// The threshold decision [Posterior(e) >= threshold].
  bool Classify(const Assignment& e) const;

  /// As an opaque decision function (for the generic tooling).
  BooleanClassifier AsBooleanClassifier() const;

  /// Compiles the decision function into an ODD/OBDD over the manager's
  /// feature variables [Chan & Darwiche 2003].
  ObddId CompileToOdd(ObddManager& mgr) const;

  /// Random classifier for sweeps (parameters in (0.05, 0.95)).
  static NaiveBayesClassifier Random(size_t num_features, double threshold,
                                     uint64_t seed);

 private:
  double prior_;
  std::vector<double> likelihood_true_;
  std::vector<double> likelihood_false_;
  double threshold_;
};

}  // namespace tbc

#endif  // TBC_XAI_NAIVE_BAYES_H_
