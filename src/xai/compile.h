#ifndef TBC_XAI_COMPILE_H_
#define TBC_XAI_COMPILE_H_

#include <functional>

#include "base/guard.h"
#include "base/result.h"
#include "obdd/obdd.h"

namespace tbc {

/// A Boolean decision function over `num_features` binary features —
/// the abstraction of paper §5 / Fig 23: a trained classifier (naive
/// Bayes, random forest, neural network) viewed purely through its
/// input-output behavior.
struct BooleanClassifier {
  size_t num_features = 0;
  std::function<bool(const Assignment&)> classify;
};

/// Compiles any classifier into an OBDD by exhaustive evaluation
/// (2^num_features calls; the universal baseline against which the
/// dedicated compilers of naive_bayes.h / decision_tree.h / bnn.h are
/// verified). Limited to 22 features; aborts beyond.
ObddId CompileBruteForce(const BooleanClassifier& classifier, ObddManager& mgr);

/// Resource-governed variant: too many features (or a manager with too few
/// variables) is a typed kInvalidInput instead of an abort, and the
/// 2^num_features enumeration polls the guard so deadlines and
/// cancellation interrupt it mid-sweep.
Result<ObddId> CompileBruteForceBounded(const BooleanClassifier& classifier,
                                        ObddManager& mgr, Guard& guard);

}  // namespace tbc

#endif  // TBC_XAI_COMPILE_H_
