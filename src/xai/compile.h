#ifndef TBC_XAI_COMPILE_H_
#define TBC_XAI_COMPILE_H_

#include <functional>

#include "obdd/obdd.h"

namespace tbc {

/// A Boolean decision function over `num_features` binary features —
/// the abstraction of paper §5 / Fig 23: a trained classifier (naive
/// Bayes, random forest, neural network) viewed purely through its
/// input-output behavior.
struct BooleanClassifier {
  size_t num_features = 0;
  std::function<bool(const Assignment&)> classify;
};

/// Compiles any classifier into an OBDD by exhaustive evaluation
/// (2^num_features calls; the universal baseline against which the
/// dedicated compilers of naive_bayes.h / decision_tree.h / bnn.h are
/// verified). Limited to 22 features.
ObddId CompileBruteForce(const BooleanClassifier& classifier, ObddManager& mgr);

}  // namespace tbc

#endif  // TBC_XAI_COMPILE_H_
