#include "xai/robustness.h"

#include <functional>
#include <unordered_map>

#include "base/check.h"

namespace tbc {

namespace {

// Minimum Hamming distance from x to a model of g; SIZE_MAX if g is ⊥.
size_t MinDistanceToModel(ObddManager& mgr, ObddId g, const Assignment& x) {
  std::unordered_map<ObddId, size_t> memo;
  std::function<size_t(ObddId)> rec = [&](ObddId h) -> size_t {
    if (h == mgr.False()) return SIZE_MAX;
    if (h == mgr.True()) return 0;  // free vars keep their x values
    auto it = memo.find(h);
    if (it != memo.end()) return it->second;
    const Var v = mgr.var(h);
    const size_t keep = rec(x[v] ? mgr.hi(h) : mgr.lo(h));
    const size_t flip = rec(x[v] ? mgr.lo(h) : mgr.hi(h));
    size_t best = keep;
    if (flip != SIZE_MAX) best = std::min(best, flip + 1);
    memo.emplace(h, best);
    return best;
  };
  return rec(g);
}

// g with variable v complemented.
ObddId FlipVar(ObddManager& mgr, ObddId g, Var v) {
  return mgr.Ite(mgr.LiteralNode(Pos(v)), mgr.Restrict(g, v, false),
                 mgr.Restrict(g, v, true));
}

// Instances within Hamming distance 1 of a model of g (including g).
ObddId Expand(ObddManager& mgr, ObddId g) {
  ObddId out = g;
  for (Var v = 0; v < mgr.num_vars(); ++v) {
    out = mgr.Or(out, FlipVar(mgr, g, v));
  }
  return out;
}

}  // namespace

size_t DecisionRobustness(ObddManager& mgr, ObddId f, const Assignment& x) {
  const bool decision = mgr.Evaluate(f, x);
  const ObddId opposite = decision ? mgr.Not(f) : f;
  return MinDistanceToModel(mgr, opposite, x);
}

ModelRobustnessResult ModelRobustness(ObddManager& mgr, ObddId f) {
  ModelRobustnessResult result;
  result.histogram.assign(1, BigUint(0));
  TBC_CHECK_MSG(f != mgr.True() && f != mgr.False(),
                "model robustness undefined for constant classifiers");
  const size_t n = mgr.num_vars();
  const BigUint total = BigUint::PowerOfTwo(static_cast<unsigned>(n));

  // reach[b] ⊇ instances of decision b already known to flip within the
  // current radius.
  ObddId region[2] = {mgr.Not(f), f};
  ObddId reach[2] = {mgr.False(), mgr.False()};
  ObddId ball[2] = {region[1], region[0]};  // distance-0 balls of opposite
  BigUint covered(0);
  BigUint weighted_sum(0);
  size_t k = 0;
  while (covered < total) {
    ++k;
    TBC_CHECK_MSG(k <= n, "robustness expansion exceeded variable count");
    BigUint level_count(0);
    for (int b = 0; b < 2; ++b) {
      ball[b] = Expand(mgr, ball[b]);  // distance-k ball around opposite
      const ObddId now = mgr.And(ball[b], region[b]);
      // Newly covered at this level.
      const ObddId fresh = mgr.And(now, mgr.Not(reach[b]));
      level_count += mgr.ModelCount(fresh);
      reach[b] = now;
    }
    result.histogram.push_back(level_count);
    weighted_sum += level_count * BigUint(k);
    covered += level_count;
  }
  result.maximum = k;
  result.average = weighted_sum.ToDouble() / total.ToDouble();
  return result;
}

}  // namespace tbc
