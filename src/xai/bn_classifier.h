#ifndef TBC_XAI_BN_CLASSIFIER_H_
#define TBC_XAI_BN_CLASSIFIER_H_

#include <vector>

#include "bayes/network.h"
#include "obdd/obdd.h"
#include "xai/compile.h"

namespace tbc {

/// Bayesian-network classifier (paper §5: the [Shih, Choi & Darwiche
/// 2018/2019] line that generalizes the naive Bayes compilation [Chan &
/// Darwiche 2003] to tree- and arbitrary-structure networks).
///
/// A network with a binary class variable and binary feature variables
/// classifies an instance e positively iff Pr(class = 1 | e) ≥ threshold.
/// The decision function is Boolean; CompileToObdd extracts it exactly.
/// Compilation enumerates feature space with OBDD reduction (2^|features|
/// posterior evaluations via one compiled-circuit pass each) — correct for
/// arbitrary network structures, practical to ~20 features; the
/// structure-guided compilers of [82, 83] are recorded future work.
class BnClassifier {
 public:
  /// `features` must be binary variables of `net`; `class_var` binary too.
  BnClassifier(const BayesianNetwork& net, BnVar class_var,
               std::vector<BnVar> features, double threshold);

  size_t num_features() const { return features_.size(); }

  /// Pr(class = 1 | feature instance e).
  double Posterior(const Assignment& e) const;
  /// The threshold decision.
  bool Classify(const Assignment& e) const;
  BooleanClassifier AsBooleanClassifier() const;

  /// Exact OBDD of the decision function over the manager's first
  /// num_features() variables (feature i = Boolean variable i).
  ObddId CompileToObdd(ObddManager& mgr) const;

 private:
  const BayesianNetwork& net_;
  BnVar class_var_;
  std::vector<BnVar> features_;
  double threshold_;
};

}  // namespace tbc

#endif  // TBC_XAI_BN_CLASSIFIER_H_
