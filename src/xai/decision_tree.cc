#include "xai/decision_tree.h"

#include <functional>
#include <unordered_map>

#include "base/check.h"

namespace tbc {

DecisionTree DecisionTree::Leaf(bool label) {
  DecisionTree t;
  t.nodes_.push_back({kInvalidVar, label, -1, -1});
  return t;
}

DecisionTree DecisionTree::Test(Var feature, DecisionTree lo, DecisionTree hi) {
  DecisionTree t;
  t.nodes_ = std::move(lo.nodes_);
  const int32_t lo_root = static_cast<int32_t>(t.nodes_.size() - 1);
  const int32_t offset = static_cast<int32_t>(t.nodes_.size());
  for (Node n : hi.nodes_) {
    if (n.lo >= 0) n.lo += offset;
    if (n.hi >= 0) n.hi += offset;
    t.nodes_.push_back(n);
  }
  const int32_t hi_root = static_cast<int32_t>(t.nodes_.size() - 1);
  t.nodes_.push_back({feature, false, lo_root, hi_root});
  return t;
}

DecisionTree DecisionTree::Random(size_t num_features, size_t depth, Rng& rng) {
  if (depth == 0) return Leaf(rng.Flip(0.5));
  const Var f = static_cast<Var>(rng.Below(num_features));
  return Test(f, Random(num_features, depth - 1, rng),
              Random(num_features, depth - 1, rng));
}

int32_t DecisionTree::Classify(int32_t node, const Assignment& x) const {
  const Node& n = nodes_[node];
  if (n.feature == kInvalidVar) return node;
  return Classify(x[n.feature] ? n.hi : n.lo, x);
}

bool DecisionTree::Classify(const Assignment& x) const {
  return nodes_[Classify(static_cast<int32_t>(nodes_.size() - 1), x)].label;
}

ObddId DecisionTree::CompileToObdd(ObddManager& mgr) const {
  std::unordered_map<int32_t, ObddId> memo;
  std::function<ObddId(int32_t)> rec = [&](int32_t i) -> ObddId {
    auto it = memo.find(i);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[i];
    ObddId r;
    if (n.feature == kInvalidVar) {
      r = n.label ? mgr.True() : mgr.False();
    } else {
      // if feature then hi else lo.
      r = mgr.Ite(mgr.LiteralNode(Pos(n.feature)), rec(n.hi), rec(n.lo));
    }
    memo.emplace(i, r);
    return r;
  };
  return rec(static_cast<int32_t>(nodes_.size() - 1));
}

RandomForest RandomForest::Random(size_t num_trees, size_t num_features,
                                  size_t depth, uint64_t seed) {
  Rng rng(seed);
  std::vector<DecisionTree> trees;
  trees.reserve(num_trees);
  for (size_t i = 0; i < num_trees; ++i) {
    trees.push_back(DecisionTree::Random(num_features, depth, rng));
  }
  return RandomForest(std::move(trees));
}

bool RandomForest::Classify(const Assignment& x) const {
  size_t votes = 0;
  for (const DecisionTree& t : trees_) votes += t.Classify(x);
  return votes * 2 > trees_.size();
}

BooleanClassifier RandomForest::AsBooleanClassifier(size_t num_features) const {
  return {num_features, [this](const Assignment& x) { return Classify(x); }};
}

ObddId RandomForest::CompileToObdd(ObddManager& mgr) const {
  // Majority circuit over the tree functions: reach[j] after processing
  // tree i holds "at least j of the first i trees vote positive".
  const size_t k = trees_.size() / 2 + 1;  // strict majority
  std::vector<ObddId> reach(k + 1, mgr.False());
  reach[0] = mgr.True();
  for (const DecisionTree& t : trees_) {
    const ObddId vote = t.CompileToObdd(mgr);
    for (size_t j = k; j >= 1; --j) {
      reach[j] = mgr.Or(reach[j], mgr.And(reach[j - 1], vote));
    }
  }
  return reach[k];
}

}  // namespace tbc
