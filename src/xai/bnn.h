#ifndef TBC_XAI_BNN_H_
#define TBC_XAI_BNN_H_

#include <cstdint>
#include <vector>

#include "base/random.h"
#include "obdd/obdd.h"
#include "xai/compile.h"

namespace tbc {

/// Binarized neural network with step activations (paper §5.1-5.2,
/// Figs 28-29; [Choi, Shi, Shih & Darwiche 2019; Shi et al. 2020]).
///
/// One hidden layer of linear-threshold neurons over binary inputs and a
/// linear-threshold output neuron — every unit computes [Σ wᵢxᵢ + b ≥ 0],
/// so the network's decision function is Boolean and exactly compilable:
/// each neuron becomes an OBDD via the threshold dynamic program, and the
/// output composes them. Training keeps the (seed-dependent) random hidden
/// layer fixed and fits the output neuron with integer perceptron updates,
/// reproducing the Fig 29 setup of equal-architecture nets whose different
/// seeds yield similar accuracies but very different compiled circuits.
class BinarizedNeuralNet {
 public:
  /// Random network: hidden weights/biases uniform in [-3, 3].
  BinarizedNeuralNet(size_t num_inputs, size_t num_hidden, uint64_t seed);

  /// CNN-like network on a width×height image: each hidden neuron has a
  /// patch×patch receptive field at a random position and nonzero weights
  /// only inside it — the convolutional locality that keeps the paper's
  /// CNN compilations tractable [Shi et al. 2020].
  static BinarizedNeuralNet Convolutional(size_t width, size_t height,
                                          size_t patch, size_t num_hidden,
                                          uint64_t seed);

  size_t num_inputs() const { return num_inputs_; }
  size_t num_hidden() const { return hidden_weights_.size(); }

  /// Hidden activations for an input.
  std::vector<bool> HiddenActivations(const Assignment& x) const;
  /// Network decision.
  bool Classify(const Assignment& x) const;
  BooleanClassifier AsBooleanClassifier() const;

  /// Perceptron training of the output neuron on the hidden features.
  void Train(const std::vector<Assignment>& data,
             const std::vector<bool>& labels, size_t epochs);

  /// Fraction of examples classified correctly.
  double Accuracy(const std::vector<Assignment>& data,
                  const std::vector<bool>& labels) const;

  /// Exact compilation of the decision function into an OBDD: per-neuron
  /// threshold circuits composed through the output threshold.
  ObddId CompileToObdd(ObddManager& mgr) const;

  /// OBDD of hidden neuron h alone (per-neuron interpretability, §5.2:
  /// "one also compiles each neuron into its own tractable circuit").
  ObddId CompileNeuron(ObddManager& mgr, size_t h) const;

 private:
  size_t num_inputs_;
  std::vector<std::vector<int64_t>> hidden_weights_;  // [hidden][input]
  std::vector<int64_t> hidden_bias_;
  std::vector<int64_t> output_weights_;  // [hidden]
  int64_t output_bias_ = 0;
};

/// Synthetic two-class "digit-like" images (the stand-in for the paper's
/// 16×16 USPS digits; see DESIGN.md substitutions): class 0 is a noisy
/// ring, class 1 a noisy vertical stroke, on a width×height binary grid.
struct DigitDataset {
  std::vector<Assignment> images;
  std::vector<bool> labels;  // true = digit "1"
};
DigitDataset MakeDigitDataset(size_t width, size_t height, size_t per_class,
                              double noise, uint64_t seed);

}  // namespace tbc

#endif  // TBC_XAI_BNN_H_
