#ifndef TBC_XAI_ROBUSTNESS_H_
#define TBC_XAI_ROBUSTNESS_H_

#include <vector>

#include "base/bigint.h"
#include "obdd/obdd.h"

namespace tbc {

/// Decision robustness [Shih, Choi & Darwiche 2018] (paper §5.2): the
/// smallest number of feature flips that changes the decision on x.
/// coNP-complete on black boxes; linear-time on the compiled OBDD (a
/// shortest-path computation to the nearest opposite-decision instance).
/// Returns SIZE_MAX when the classifier is constant (no flip ever works).
size_t DecisionRobustness(ObddManager& mgr, ObddId f, const Assignment& x);

/// Model robustness [Shi et al. 2020] (paper Fig 29): the average decision
/// robustness over all 2^n instances, plus the full histogram the figure
/// plots. Computed symbolically: Hamming-ball expansion of each decision
/// region with model counting per level — all 2^n instances are covered
/// without enumeration (the paper: "Figure 29 reports the robustness of
/// 2^256 instances ... made possible by having captured the input-output
/// behavior ... using tractable circuits").
struct ModelRobustnessResult {
  double average = 0.0;
  size_t maximum = 0;
  /// histogram[k] = number of instances with robustness exactly k (k >= 1;
  /// index 0 unused).
  std::vector<BigUint> histogram;
};
ModelRobustnessResult ModelRobustness(ObddManager& mgr, ObddId f);

}  // namespace tbc

#endif  // TBC_XAI_ROBUSTNESS_H_
