#ifndef TBC_XAI_DECISION_TREE_H_
#define TBC_XAI_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "base/random.h"
#include "obdd/obdd.h"
#include "xai/compile.h"

namespace tbc {

/// Binary decision tree over binary features.
///
/// Random forests "represent less of a challenge" for the paper's third
/// role (§5): each tree encodes directly as a Boolean formula, trees are
/// combined with a majority circuit, and the only remaining work is
/// compiling the result into a tractable circuit. DecisionTree::CompileToObdd
/// does the per-tree encoding; RandomForest::CompileToObdd adds the
/// majority combination.
class DecisionTree {
 public:
  /// Leaf returning `label`.
  static DecisionTree Leaf(bool label);
  /// Internal test on `feature`: false-branch `lo`, true-branch `hi`.
  static DecisionTree Test(Var feature, DecisionTree lo, DecisionTree hi);
  /// Random tree of the given depth over `num_features` features.
  static DecisionTree Random(size_t num_features, size_t depth, Rng& rng);

  bool Classify(const Assignment& x) const;
  ObddId CompileToObdd(ObddManager& mgr) const;
  size_t num_tree_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Var feature = kInvalidVar;  // kInvalidVar for leaves
    bool label = false;
    int32_t lo = -1, hi = -1;
  };
  int32_t Classify(int32_t node, const Assignment& x) const;

  std::vector<Node> nodes_;  // root is nodes_.back()
};

/// Random forest with majority voting.
class RandomForest {
 public:
  explicit RandomForest(std::vector<DecisionTree> trees)
      : trees_(std::move(trees)) {}
  /// `num_trees` random trees of the given depth (odd count recommended).
  static RandomForest Random(size_t num_trees, size_t num_features,
                             size_t depth, uint64_t seed);

  size_t num_trees() const { return trees_.size(); }

  /// Strict-majority vote of the trees.
  bool Classify(const Assignment& x) const;
  BooleanClassifier AsBooleanClassifier(size_t num_features) const;

  /// Tree formulas combined through a majority circuit, compiled to OBDD.
  ObddId CompileToObdd(ObddManager& mgr) const;

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace tbc

#endif  // TBC_XAI_DECISION_TREE_H_
