#include "xai/compile.h"

#include "base/check.h"

namespace tbc {

ObddId CompileBruteForce(const BooleanClassifier& classifier, ObddManager& mgr) {
  const size_t n = classifier.num_features;
  TBC_CHECK_MSG(n <= 22, "brute-force compilation limited to 22 features");
  TBC_CHECK(mgr.num_vars() >= n);
  // Recursive Shannon expansion in the manager's variable order; the
  // unique table reduces the result on the way up.
  Assignment x(n, false);
  std::function<ObddId(size_t)> rec = [&](size_t level) -> ObddId {
    if (level == n) return classifier.classify(x) ? mgr.True() : mgr.False();
    const Var v = mgr.order()[level];
    x[v] = false;
    const ObddId lo = rec(level + 1);
    x[v] = true;
    const ObddId hi = rec(level + 1);
    x[v] = false;
    return mgr.MakeNode(v, lo, hi);
  };
  return rec(0);
}

}  // namespace tbc
