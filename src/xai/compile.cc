#include "xai/compile.h"

#include "base/check.h"

namespace tbc {

ObddId CompileBruteForce(const BooleanClassifier& classifier, ObddManager& mgr) {
  const size_t n = classifier.num_features;
  TBC_CHECK_MSG(n <= 22, "brute-force compilation limited to 22 features");
  TBC_CHECK(mgr.num_vars() >= n);
  return CompileBruteForceBounded(classifier, mgr, Guard::Unlimited()).value();
}

Result<ObddId> CompileBruteForceBounded(const BooleanClassifier& classifier,
                                        ObddManager& mgr, Guard& guard) {
  const size_t n = classifier.num_features;
  if (n > 22) {
    return Status::InvalidInput(
        "brute-force compilation limited to 22 features, got " +
        std::to_string(n));
  }
  if (mgr.num_vars() < n) {
    return Status::InvalidInput(
        "manager has " + std::to_string(mgr.num_vars()) +
        " variables, classifier needs " + std::to_string(n));
  }
  if (!classifier.classify) {
    return Status::InvalidInput("classifier has no classify function");
  }
  TBC_RETURN_IF_ERROR(guard.Check());
  // Recursive Shannon expansion in the manager's variable order; the
  // unique table reduces the result on the way up. The guard is checked at
  // a fixed depth (every subtree below it is at most 2^12 leaves) so the
  // 2^n sweep stays interruptible without paying a charge per leaf;
  // `stopped` latches the refusal and collapses the remaining recursion to
  // O(depth) so unwinding is immediate.
  const size_t poll_level = n > 12 ? n - 12 : 0;
  Assignment x(n, false);
  Status stopped;
  std::function<ObddId(size_t)> rec = [&](size_t level) -> ObddId {
    if (!stopped.ok()) return mgr.False();
    if (level == poll_level) {
      Status s = guard.ChargeNodes(1);
      if (s.ok()) s = guard.Check();
      if (!s.ok()) {
        stopped = std::move(s);
        return mgr.False();
      }
    }
    if (level == n) return classifier.classify(x) ? mgr.True() : mgr.False();
    const Var v = mgr.order()[level];
    x[v] = false;
    const ObddId lo = rec(level + 1);
    x[v] = true;
    const ObddId hi = rec(level + 1);
    x[v] = false;
    return mgr.MakeNode(v, lo, hi);
  };
  const ObddId root = rec(0);
  if (!stopped.ok()) return stopped;
  return root;
}

}  // namespace tbc
