#ifndef TBC_SAT_SOLVER_H_
#define TBC_SAT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "base/guard.h"
#include "base/result.h"
#include "logic/cnf.h"
#include "logic/lit.h"

namespace tbc {

/// CDCL SAT solver (conflict-driven clause learning).
///
/// Implements the standard modern architecture: two-watched-literal
/// propagation, first-UIP conflict analysis with clause learning, VSIDS-style
/// variable activities with phase saving, and Luby restarts. Used as the
/// NP-oracle substrate throughout the library (equivalence and property
/// checking, implicant minimization) and as a correctness baseline for the
/// knowledge compilers.
class SatSolver {
 public:
  /// kUnknown is only possible when a Guard is attached: it means the
  /// search gave up (deadline, conflict budget, or cancellation) — consult
  /// interrupt_status() for the typed reason. Without a guard the solver is
  /// complete and never returns kUnknown.
  enum class Outcome { kSat, kUnsat, kUnknown };

  SatSolver() = default;

  /// Attaches a resource guard checked in the CDCL loop (borrowed, may be
  /// null to detach). Conflicts are charged against the guard's conflict
  /// budget; deadline and cancellation are checked at every conflict and
  /// every decision, so cancellation from another thread stops the search
  /// promptly even on satisfiable instances.
  void set_guard(Guard* guard) { guard_ = guard; }

  /// Adds the clauses of `cnf` (callable multiple times; variables grow).
  void AddCnf(const Cnf& cnf);
  /// Adds one clause.
  void AddClause(const Clause& clause);
  /// Declares at least n variables.
  void EnsureVars(size_t n);

  size_t num_vars() const { return assign_.size(); }

  /// Decides satisfiability. May be called repeatedly (clauses persist).
  Outcome Solve() { return SolveAssuming({}); }

  /// Decides satisfiability under the given assumption literals.
  Outcome SolveAssuming(const std::vector<Lit>& assumptions);

  /// After kSat: the satisfying assignment (complete over all variables).
  const Assignment& model() const { return model_; }

  /// Total number of conflicts encountered (statistics).
  uint64_t num_conflicts() const { return conflicts_; }

  /// After kUnknown: why the search was interrupted (deadline, budget, or
  /// cancellation). Ok when the last solve completed.
  const Status& interrupt_status() const { return interrupt_status_; }

 private:
  // Truth value codes for assign_: 0 unassigned, 1 true, 2 false.
  static constexpr int8_t kUndef = 0, kTrue = 1, kFalse = 2;

  struct Watcher {
    uint32_t clause;  // index into clauses_
  };

  int8_t Value(Lit l) const {
    int8_t v = assign_[l.var()];
    if (v == kUndef) return kUndef;
    return (v == kTrue) == l.positive() ? kTrue : kFalse;
  }

  void Enqueue(Lit l, int32_t reason);
  // Returns the index of a conflicting clause, or -1.
  int32_t Propagate();
  // First-UIP analysis; fills learnt clause and backjump level.
  void Analyze(int32_t conflict, Clause* learnt, int* backjump_level);
  void Backtrack(int level);
  void BumpVar(Var v);
  void DecayActivities();
  Var PickBranchVar();
  uint32_t AttachClause(Clause c, bool learnt);
  static uint64_t Luby(uint64_t i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::code()
  std::vector<int8_t> assign_;                 // per var
  std::vector<int8_t> phase_;                  // saved phase per var
  std::vector<int32_t> reason_;                // clause index or -1, per var
  std::vector<int32_t> level_;                 // decision level, per var
  std::vector<double> activity_;               // per var
  std::vector<Lit> trail_;
  std::vector<size_t> trail_lims_;             // trail size at each level
  size_t prop_head_ = 0;
  double var_inc_ = 1.0;
  uint64_t conflicts_ = 0;
  bool found_empty_clause_ = false;
  Assignment model_;
  Guard* guard_ = nullptr;  // borrowed; null = unbounded
  Status interrupt_status_;
};

/// Convenience: decides satisfiability of a CNF.
bool IsSatisfiable(const Cnf& cnf);

}  // namespace tbc

#endif  // TBC_SAT_SOLVER_H_
