#include "sat/solver.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/observability.h"

namespace tbc {

void SatSolver::EnsureVars(size_t n) {
  while (assign_.size() < n) {
    assign_.push_back(kUndef);
    phase_.push_back(kFalse);
    reason_.push_back(-1);
    level_.push_back(0);
    activity_.push_back(0.0);
    watches_.emplace_back();
    watches_.emplace_back();
  }
}

void SatSolver::AddCnf(const Cnf& cnf) {
  EnsureVars(cnf.num_vars());
  for (const Clause& c : cnf.clauses()) AddClause(c);
}

void SatSolver::AddClause(const Clause& clause) {
  TBC_CHECK_MSG(trail_lims_.empty(), "AddClause only at decision level 0");
  Clause c = clause;
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  for (size_t i = 0; i + 1 < c.size(); ++i) {
    if (c[i].var() == c[i + 1].var()) return;  // tautology
  }
  for (Lit l : c) EnsureVars(l.var() + 1);
  // Remove literals already false at level 0; drop clause if some lit true.
  Clause reduced;
  for (Lit l : c) {
    int8_t v = Value(l);
    if (v == kTrue) return;
    if (v == kUndef) reduced.push_back(l);
  }
  if (reduced.empty()) {
    found_empty_clause_ = true;
    return;
  }
  if (reduced.size() == 1) {
    Enqueue(reduced[0], -1);
    if (Propagate() != -1) found_empty_clause_ = true;
    return;
  }
  AttachClause(std::move(reduced), /*learnt=*/false);
}

uint32_t SatSolver::AttachClause(Clause c, bool learnt) {
  (void)learnt;
  const uint32_t idx = static_cast<uint32_t>(clauses_.size());
  watches_[c[0].code()].push_back({idx});
  watches_[c[1].code()].push_back({idx});
  clauses_.push_back(std::move(c));
  return idx;
}

void SatSolver::Enqueue(Lit l, int32_t reason) {
  TBC_DCHECK(Value(l) == kUndef);
  assign_[l.var()] = l.positive() ? kTrue : kFalse;
  reason_[l.var()] = reason;
  level_[l.var()] = static_cast<int32_t>(trail_lims_.size());
  trail_.push_back(l);
}

int32_t SatSolver::Propagate() {
  while (prop_head_ < trail_.size()) {
    const Lit p = trail_[prop_head_++];
    // Clauses watching ~p must find a new watch or propagate/conflict.
    std::vector<Watcher>& ws = watches_[(~p).code()];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      const uint32_t ci = ws[i].clause;
      Clause& c = clauses_[ci];
      // Ensure c[0] is the other watch.
      if (c[0] == ~p) std::swap(c[0], c[1]);
      TBC_DCHECK(c[1] == ~p);
      if (Value(c[0]) == kTrue) {
        ws[keep++] = ws[i];
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (size_t k = 2; k < c.size(); ++k) {
        if (Value(c[k]) != kFalse) {
          std::swap(c[1], c[k]);
          watches_[c[1].code()].push_back({ci});
          found = true;
          break;
        }
      }
      if (found) continue;  // watcher moved; drop from this list
      // Clause is unit or conflicting.
      ws[keep++] = ws[i];
      if (Value(c[0]) == kFalse) {
        // Conflict: keep remaining watchers and report.
        for (size_t k = i + 1; k < ws.size(); ++k) ws[keep++] = ws[k];
        ws.resize(keep);
        prop_head_ = trail_.size();
        return static_cast<int32_t>(ci);
      }
      Enqueue(c[0], static_cast<int32_t>(ci));
    }
    ws.resize(keep);
  }
  return -1;
}

void SatSolver::BumpVar(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
}

void SatSolver::DecayActivities() { var_inc_ /= 0.95; }

void SatSolver::Analyze(int32_t conflict, Clause* learnt, int* backjump_level) {
  learnt->clear();
  learnt->push_back(Lit());  // slot for the asserting literal
  std::vector<int8_t> seen(assign_.size(), 0);
  int counter = 0;
  size_t trail_index = trail_.size();
  Lit p;  // invalid initially
  int32_t reason_clause = conflict;
  const int current_level = static_cast<int>(trail_lims_.size());

  do {
    TBC_DCHECK(reason_clause != -1);
    const Clause& c = clauses_[reason_clause];
    // Skip c[0] on non-first iterations: it is the propagated literal p.
    for (size_t i = (p.valid() ? 1u : 0u); i < c.size(); ++i) {
      const Lit q = c[i];
      if (seen[q.var()] || level_[q.var()] == 0) continue;
      seen[q.var()] = 1;
      BumpVar(q.var());
      if (level_[q.var()] == current_level) {
        ++counter;
      } else {
        learnt->push_back(q);
      }
    }
    // Find next literal on the trail to resolve on.
    while (!seen[trail_[trail_index - 1].var()]) --trail_index;
    p = trail_[--trail_index];
    seen[p.var()] = 0;
    reason_clause = reason_[p.var()];
    --counter;
  } while (counter > 0);
  (*learnt)[0] = ~p;

  // Backjump level = max level among the other literals.
  int bj = 0;
  for (size_t i = 1; i < learnt->size(); ++i) {
    bj = std::max(bj, static_cast<int>(level_[(*learnt)[i].var()]));
  }
  *backjump_level = bj;
  // Move a literal of the backjump level into watch position 1.
  for (size_t i = 1; i < learnt->size(); ++i) {
    if (level_[(*learnt)[i].var()] == bj) {
      std::swap((*learnt)[1], (*learnt)[i]);
      break;
    }
  }
}

void SatSolver::Backtrack(int target_level) {
  if (static_cast<int>(trail_lims_.size()) <= target_level) return;
  const size_t lim = trail_lims_[target_level];
  for (size_t i = trail_.size(); i-- > lim;) {
    const Var v = trail_[i].var();
    phase_[v] = assign_[v];
    assign_[v] = kUndef;
    reason_[v] = -1;
  }
  trail_.resize(lim);
  trail_lims_.resize(target_level);
  prop_head_ = lim;
}

Var SatSolver::PickBranchVar() {
  Var best = kInvalidVar;
  double best_act = -1.0;
  for (Var v = 0; v < assign_.size(); ++v) {
    if (assign_[v] == kUndef && activity_[v] > best_act) {
      best = v;
      best_act = activity_[v];
    }
  }
  return best;
}

uint64_t SatSolver::Luby(uint64_t i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  uint64_t k = 1;
  while ((1ull << (k + 1)) - 1 <= i) ++k;
  while ((1ull << k) - 1 != i + 1) {
    i -= (1ull << k) - 1;
    k = 1;
    while ((1ull << (k + 1)) - 1 <= i) ++k;
  }
  return 1ull << (k - 1);
}

SatSolver::Outcome SatSolver::SolveAssuming(const std::vector<Lit>& assumptions) {
  interrupt_status_ = Status::Ok();
  if (found_empty_clause_) return Outcome::kUnsat;
  Backtrack(0);
  if (Propagate() != -1) {
    found_empty_clause_ = true;
    return Outcome::kUnsat;
  }

  uint64_t restart_round = 0;
  uint64_t conflict_budget = 32 * Luby(restart_round);
  uint64_t conflicts_this_round = 0;
  uint64_t decisions_since_check = 0;

  while (true) {
    const int32_t conflict = Propagate();
    if (conflict != -1) {
      ++conflicts_;
      ++conflicts_this_round;
      TBC_COUNT("sat.conflicts");
      if (guard_ != nullptr) {
        // Conflicts are the natural unit of CDCL effort: charge each one,
        // and bail out with a typed refusal when the budget trips.
        Status s = guard_->ChargeConflict();
        if (!s.ok()) {
          interrupt_status_ = std::move(s);
          Backtrack(0);
          return Outcome::kUnknown;
        }
      }
      if (trail_lims_.size() <= assumptions.size()) {
        // Conflict at or below the assumption levels: unsat under them.
        Backtrack(0);
        return Outcome::kUnsat;
      }
      Clause learnt;
      int backjump = 0;
      Analyze(conflict, &learnt, &backjump);
      // Never backjump into the middle of assumption levels without
      // re-deciding them; jumping to an assumption level is fine since the
      // asserting literal is enqueued below.
      Backtrack(backjump);
      if (learnt.size() == 1) {
        if (static_cast<int>(trail_lims_.size()) > 0) Backtrack(0);
        if (Value(learnt[0]) == kFalse) return Outcome::kUnsat;
        if (Value(learnt[0]) == kUndef) Enqueue(learnt[0], -1);
      } else {
        const uint32_t ci = AttachClause(learnt, /*learnt=*/true);
        Enqueue(clauses_[ci][0], static_cast<int32_t>(ci));
      }
      DecayActivities();
      continue;
    }

    if (conflicts_this_round >= conflict_budget && trail_lims_.size() > assumptions.size()) {
      // Restart (keep assumption decisions by backtracking to their level).
      Backtrack(static_cast<int>(assumptions.size()));
      ++restart_round;
      TBC_COUNT("sat.restarts");
      conflict_budget = 32 * Luby(restart_round);
      conflicts_this_round = 0;
      continue;
    }

    // Apply pending assumptions as decisions.
    if (trail_lims_.size() < assumptions.size()) {
      const Lit a = assumptions[trail_lims_.size()];
      if (a.var() >= num_vars()) EnsureVars(a.var() + 1);
      if (Value(a) == kFalse) {
        Backtrack(0);
        return Outcome::kUnsat;
      }
      trail_lims_.push_back(trail_.size());
      if (Value(a) == kUndef) Enqueue(a, -1);
      continue;
    }

    if (guard_ != nullptr) {
      // Satisfiable instances can run long stretches without conflicts, so
      // cancellation is also polled per decision (cheap relaxed load) and
      // the deadline every 1024 decisions.
      Status s = Status::Ok();
      if (guard_->cancelled()) {
        s = Status::Cancelled("operation cancelled");
      } else if (++decisions_since_check >= 1024) {
        decisions_since_check = 0;
        s = guard_->Check();
      }
      if (!s.ok()) {
        interrupt_status_ = std::move(s);
        Backtrack(0);
        return Outcome::kUnknown;
      }
    }

    const Var v = PickBranchVar();
    if (v == kInvalidVar) {
      // All variables assigned: model found.
      model_.assign(num_vars(), false);
      for (Var u = 0; u < num_vars(); ++u) model_[u] = assign_[u] == kTrue;
      Backtrack(0);
      return Outcome::kSat;
    }
    TBC_COUNT("sat.decisions");
    trail_lims_.push_back(trail_.size());
    Enqueue(Lit(v, phase_[v] == kTrue), -1);
  }
}

bool IsSatisfiable(const Cnf& cnf) {
  SatSolver solver;
  solver.AddCnf(cnf);
  return solver.Solve() == SatSolver::Outcome::kSat;
}

}  // namespace tbc
