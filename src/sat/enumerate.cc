#include "sat/enumerate.h"

#include "sat/solver.h"

namespace tbc {

bool EnumerateModels(const Cnf& cnf, uint64_t max_models,
                     const std::function<void(const Assignment&)>& on_model) {
  SatSolver solver;
  solver.AddCnf(cnf);
  uint64_t found = 0;
  while (solver.Solve() == SatSolver::Outcome::kSat) {
    if (found == max_models) return false;
    Assignment model = solver.model();
    model.resize(cnf.num_vars(), false);
    on_model(model);
    ++found;
    // Block this model.
    Clause blocker;
    blocker.reserve(cnf.num_vars());
    for (Var v = 0; v < cnf.num_vars(); ++v) {
      blocker.push_back(model[v] ? Neg(v) : Pos(v));
    }
    if (blocker.empty()) return true;  // zero-variable CNF has one model
    solver.AddClause(blocker);
  }
  return true;
}

uint64_t CountModelsUpTo(const Cnf& cnf, uint64_t cap) {
  uint64_t count = 0;
  EnumerateModels(cnf, cap, [&](const Assignment&) { ++count; });
  return count;
}

bool AreEquivalent(const Cnf& a, const Cnf& b) {
  // a and b are equivalent iff (a ∧ ¬b) and (¬a ∧ b) are both unsatisfiable.
  // ¬CNF is encoded with one selector variable per clause: selector s_i is
  // true iff clause i is falsified; ¬b  ≡  some s_i.
  const size_t n = std::max(a.num_vars(), b.num_vars());
  auto check_one_direction = [n](const Cnf& pos, const Cnf& neg) {
    SatSolver solver;
    Cnf padded = pos;
    padded.EnsureVars(n);
    solver.AddCnf(padded);
    solver.EnsureVars(n + neg.num_clauses());
    Clause some_falsified;
    for (size_t i = 0; i < neg.num_clauses(); ++i) {
      const Var s = static_cast<Var>(n + i);
      some_falsified.push_back(Pos(s));
      // s_i -> every literal of clause i is false.
      for (Lit l : neg.clause(i)) solver.AddClause({Neg(s), ~l});
    }
    if (some_falsified.empty()) return true;  // neg has no clauses: ¬true unsat
    solver.AddClause(some_falsified);
    return solver.Solve() == SatSolver::Outcome::kUnsat;
  };
  return check_one_direction(a, b) && check_one_direction(b, a);
}

}  // namespace tbc
