#ifndef TBC_SAT_ENUMERATE_H_
#define TBC_SAT_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "logic/cnf.h"
#include "logic/lit.h"

namespace tbc {

/// Enumerates models of `cnf` over its variables, invoking `on_model` for
/// each. Stops early (returning false) if more than `max_models` models
/// exist; returns true if enumeration was exhaustive. Uses a CDCL solver
/// with blocking clauses, so it is usable well beyond brute-force limits
/// when the model count is small.
bool EnumerateModels(const Cnf& cnf, uint64_t max_models,
                     const std::function<void(const Assignment&)>& on_model);

/// Counts models with a cap; returns min(#models, cap).
uint64_t CountModelsUpTo(const Cnf& cnf, uint64_t cap);

/// True iff the two CNFs (over max(num_vars) variables) are logically
/// equivalent. Decided with two SAT calls on the XOR of the formulas.
bool AreEquivalent(const Cnf& a, const Cnf& b);

}  // namespace tbc

#endif  // TBC_SAT_ENUMERATE_H_
