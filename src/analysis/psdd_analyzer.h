#ifndef TBC_ANALYSIS_PSDD_ANALYZER_H_
#define TBC_ANALYSIS_PSDD_ANALYZER_H_

#include <string>

#include "analysis/diagnostics.h"
#include "psdd/psdd.h"
#include "vtree/vtree.h"

namespace tbc {

/// Verifies PSDD invariants (paper §4, Fig 13):
///  - psdd.structure: the circuit is *normalized* for its vtree — every
///    decision node sits on an internal vtree node with primes normalized
///    for the left child and subs for the right child, literal/⊤ leaves sit
///    on their variable's vtree leaf, and partitions are non-empty.
///  - psdd.normalized: each decision node's parameters form a distribution
///    (non-negative, summing to 1) and each ⊤-leaf's Bernoulli parameter
///    lies in [0, 1].
///  - psdd.support: zero parameters (theta == 0, or Bernoulli in {0, 1})
///    silently remove models from the base's support — reported as
///    warnings, since pure maximum-likelihood learning legitimately
///    produces them.
void AnalyzePsdd(const Psdd& psdd, DiagnosticReport& report);

/// Verifies a .psdd file (SDD body + "P <node_id> <theta...>" parameter
/// lines) against `vtree` without reconstructing the structure: the SDD
/// body gets the full AnalyzeSddFile treatment and every parameter line is
/// checked as a distribution (psdd.normalized / psdd.support). Unreadable
/// syntax is reported under psdd.parse.
void AnalyzePsddFile(const std::string& text, const Vtree& vtree,
                     DiagnosticReport& report);

}  // namespace tbc

#endif  // TBC_ANALYSIS_PSDD_ANALYZER_H_
