#ifndef TBC_ANALYSIS_RULES_H_
#define TBC_ANALYSIS_RULES_H_

#include <cstddef>
#include <string>

namespace tbc {

/// Stable rule identifiers for the circuit-invariant analyzers. These are
/// the contract between the analyzers, tbc_lint output, the invalid-circuit
/// corpus tests, and TBC_VALIDATE failure messages — rename with care.
///
/// The ladder mirrors the paper's §3 property hierarchy: NNF well-formedness
/// is the floor, decomposability unlocks SAT, + determinism unlocks counting,
/// + smoothness unlocks marginals; OBDD/SDD add ordering/vtree structure on
/// top; PSDD adds normalized local distributions over an SDD base.
namespace rules {

// --- NNF family (analysis/nnf_analyzer.h) ---
inline constexpr char kNnfParse[] = "nnf.parse";
inline constexpr char kNnfWellFormed[] = "nnf.well-formed";
inline constexpr char kDnnfDecomposable[] = "dnnf.decomposable";
inline constexpr char kDdnnfDeterministic[] = "ddnnf.deterministic";
inline constexpr char kDdnnfUnverified[] = "ddnnf.unverified";
inline constexpr char kNnfSmooth[] = "nnf.smooth";
inline constexpr char kNnfDecision[] = "nnf.decision";

// --- OBDD (analysis/obdd_analyzer.h; also the obdd dialect of AnalyzeNnf) ---
inline constexpr char kObddOrdered[] = "obdd.ordered";
inline constexpr char kObddReduced[] = "obdd.reduced";

// --- SDD (analysis/sdd_analyzer.h) ---
inline constexpr char kSddParse[] = "sdd.parse";
inline constexpr char kSddStructured[] = "sdd.structured";
inline constexpr char kSddPartition[] = "sdd.primes-partition";
inline constexpr char kSddCompressed[] = "sdd.compressed";
inline constexpr char kSddTrimmed[] = "sdd.trimmed";

// --- PSDD (analysis/psdd_analyzer.h) ---
inline constexpr char kPsddParse[] = "psdd.parse";
inline constexpr char kPsddStructure[] = "psdd.structure";
inline constexpr char kPsddNormalized[] = "psdd.normalized";
inline constexpr char kPsddSupport[] = "psdd.support";

// --- CNF structure analysis (analysis/structure/; reported by tbc_analyze) ---
inline constexpr char kStructureIo[] = "structure.io";
inline constexpr char kStructureParse[] = "structure.parse";
inline constexpr char kStructureWidth[] = "structure.width";
inline constexpr char kStructureForecast[] = "structure.forecast";
inline constexpr char kStructureDisconnected[] = "structure.disconnected";
inline constexpr char kStructureBackbone[] = "structure.backbone";
inline constexpr char kStructurePure[] = "structure.pure";

// --- Certification (certify/checker.h; reported by tbc_certify) ---
inline constexpr char kCertifyParse[] = "certify.parse";
inline constexpr char kCertifyFormat[] = "certify.format";
inline constexpr char kCertifyDecomposable[] = "certify.decomposable";
inline constexpr char kCertifyDeterministic[] = "certify.deterministic";
inline constexpr char kCertifyObddOrdered[] = "certify.obdd-ordered";
inline constexpr char kCertifyReplay[] = "certify.replay";
inline constexpr char kCertifyCircuitImpliesCnf[] = "certify.circuit-implies-cnf";
inline constexpr char kCertifyCnfImpliesCircuit[] = "certify.cnf-implies-circuit";
inline constexpr char kCertifyCount[] = "certify.count";
inline constexpr char kCertifyBudget[] = "certify.budget";

}  // namespace rules

/// Registry entry: the rule id plus a one-line summary (for `tbc_lint
/// --list-rules` and docs).
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All registered rules, in ladder order.
const RuleInfo* AllRules(size_t* count);

/// Summary for a rule id; nullptr when unknown.
const char* RuleSummary(const std::string& rule_id);

}  // namespace tbc

#endif  // TBC_ANALYSIS_RULES_H_
