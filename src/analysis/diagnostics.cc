#include "analysis/diagnostics.h"

#include <cstdio>

namespace tbc {

namespace {

// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "error";
}

void DiagnosticReport::Add(Diagnostic d) {
  if (d.severity == Severity::kError) ++num_errors_;
  if (d.severity == Severity::kWarning) ++num_warnings_;
  if (diagnostics_.size() < max_diagnostics_) diagnostics_.push_back(std::move(d));
}

void DiagnosticReport::Add(Severity severity, const char* rule_id,
                           uint64_t node_id, std::string witness,
                           std::string message) {
  Add(Diagnostic{severity, rule_id, node_id, std::move(witness),
                 std::move(message)});
}

bool DiagnosticReport::HasRule(const std::string& rule_id) const {
  return FindRule(rule_id) != nullptr;
}

const Diagnostic* DiagnosticReport::FindRule(const std::string& rule_id) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.rule_id == rule_id) return &d;
  }
  return nullptr;
}

std::string DiagnosticReport::ToText(const std::string& subject) const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += subject + ": " + SeverityName(d.severity) + "[" + d.rule_id +
           "] node " + std::to_string(d.node_id) + ": " + d.message;
    if (!d.witness.empty()) out += " (witness: " + d.witness + ")";
    out += "\n";
  }
  const size_t dropped =
      num_errors_ + num_warnings_ >= diagnostics_.size()
          ? num_errors_ + num_warnings_ - diagnostics_.size()
          : 0;
  if (dropped > 0 && diagnostics_.size() >= max_diagnostics_) {
    out += subject + ": note: " + std::to_string(dropped) +
           " further diagnostics suppressed\n";
  }
  return out;
}

std::string DiagnosticReport::ToJson(const std::string& subject) const {
  std::string out = "{\"subject\":\"" + JsonEscape(subject) + "\",\"clean\":";
  out += clean() ? "true" : "false";
  out += ",\"errors\":" + std::to_string(num_errors_);
  out += ",\"warnings\":" + std::to_string(num_warnings_);
  out += ",\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i > 0) out += ",";
    out += "{\"severity\":\"" + std::string(SeverityName(d.severity)) + "\"";
    out += ",\"rule\":\"" + JsonEscape(d.rule_id) + "\"";
    out += ",\"node\":" + std::to_string(d.node_id);
    out += ",\"witness\":\"" + JsonEscape(d.witness) + "\"";
    out += ",\"message\":\"" + JsonEscape(d.message) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace tbc
