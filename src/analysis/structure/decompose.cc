#include "analysis/structure/decompose.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "base/check.h"

namespace tbc {

namespace {

// Balanced pairwise reduction of a forest into one tree. `combine` merges
// two roots and returns the new root id. Adjacent pairs merge first, so
// the result has logarithmic depth and a platform-independent shape.
template <typename Id, typename Combine>
Id BalancedCombine(std::vector<Id> roots, Combine combine) {
  TBC_CHECK(!roots.empty());
  while (roots.size() > 1) {
    std::vector<Id> next;
    next.reserve((roots.size() + 1) / 2);
    for (size_t i = 0; i + 1 < roots.size(); i += 2) {
      next.push_back(combine(roots[i], roots[i + 1]));
    }
    if (roots.size() % 2 == 1) next.push_back(roots.back());
    roots = std::move(next);
  }
  return roots[0];
}

}  // namespace

Vtree VtreeFromEliminationOrder(const PrimalGraph& g,
                                const std::vector<Var>& order) {
  const size_t n = g.num_vars();
  TBC_CHECK_MSG(n > 0, "vtree over zero variables");
  const EliminationTree etree = BuildEliminationTree(g, order);

  // The vtree is assembled through the file format and Vtree::Parse: the
  // construction is children-before-parents, which is exactly the format's
  // contract, and the round-trip keeps the synthesized vtree on the same
  // (hardened) IO path tbc_lint and the CLIs use.
  std::string spec;
  uint32_t next_id = 0;
  // subtree[v]: file id of the vtree subtree rooted at variable v's node.
  std::vector<uint32_t> subtree(n, 0);
  std::vector<std::vector<Var>> children(n);
  for (const Var v : order) {
    if (etree.parent[v] != kInvalidVar) children[etree.parent[v]].push_back(v);
  }

  auto emit_leaf = [&](Var v) {
    spec += "L " + std::to_string(next_id) + " " + std::to_string(v + 1) + "\n";
    return next_id++;
  };
  auto emit_internal = [&](uint32_t l, uint32_t r) {
    spec += "I " + std::to_string(next_id) + " " + std::to_string(l) + " " +
            std::to_string(r) + "\n";
    return next_id++;
  };

  // Children are eliminated before their parent, so walking the order
  // forward sees every child subtree before it is combined under v.
  std::vector<uint32_t> roots;
  for (const Var v : order) {
    const uint32_t leaf = emit_leaf(v);
    if (children[v].empty()) {
      subtree[v] = leaf;
    } else {
      std::vector<uint32_t> kids;
      kids.reserve(children[v].size());
      for (const Var c : children[v]) kids.push_back(subtree[c]);
      // Leaf on the left: an SDD decision on v whose right subtree holds
      // everything eliminated below v (the Shannon-like shape right-linear
      // vtrees generalize).
      subtree[v] = emit_internal(leaf, BalancedCombine(kids, emit_internal));
    }
    if (etree.parent[v] == kInvalidVar) roots.push_back(subtree[v]);
  }
  BalancedCombine(roots, emit_internal);

  const std::string text = "vtree " + std::to_string(next_id) + "\n" + spec;
  auto parsed = Vtree::Parse(text);
  TBC_CHECK_MSG(parsed.ok(), "synthesized vtree failed to parse");
  return *std::move(parsed);
}

std::string Dtree::ToFileString() const {
  std::string out = "dtree " + std::to_string(nodes.size()) + "\n";
  for (const Node& node : nodes) {
    if (node.clause >= 0) {
      out += "L " + std::to_string(node.clause) + "\n";
    } else {
      out += "I " + std::to_string(node.left) + " " +
             std::to_string(node.right) + "\n";
    }
  }
  return out;
}

Dtree DtreeFromEliminationOrder(const Cnf& cnf, const std::vector<Var>& order) {
  Dtree t;
  const size_t m = cnf.num_clauses();
  if (m == 0) return t;

  // varset[root]: sorted (var, #leaves-below-containing-var) pairs. The
  // counts let the cluster computation decide "occurs outside" against the
  // global occurrence counts without a second pass.
  using VarCount = std::pair<Var, uint32_t>;
  std::vector<std::vector<VarCount>> varset;
  std::vector<uint32_t> total(cnf.num_vars(), 0);

  std::vector<int32_t> roots;  // current forest, in creation order
  for (size_t c = 0; c < m; ++c) {
    Dtree::Node leaf;
    leaf.clause = static_cast<int32_t>(c);
    t.nodes.push_back(leaf);
    roots.push_back(static_cast<int32_t>(c));
    std::vector<VarCount> vars;
    for (const Lit l : cnf.clause(c)) vars.push_back({l.var(), 1});
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    for (const auto& [v, cnt] : vars) total[v] += cnt;
    varset.push_back(std::move(vars));
  }

  uint32_t max_cluster = 0;
  auto merge_varsets = [](const std::vector<VarCount>& a,
                          const std::vector<VarCount>& b) {
    std::vector<VarCount> out;
    out.reserve(a.size() + b.size());
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i].first < b[j].first) {
        out.push_back(a[i++]);
      } else if (b[j].first < a[i].first) {
        out.push_back(b[j++]);
      } else {
        out.push_back({a[i].first, a[i].second + b[j].second});
        ++i, ++j;
      }
    }
    out.insert(out.end(), a.begin() + i, a.end());
    out.insert(out.end(), b.begin() + j, b.end());
    return out;
  };
  auto combine = [&](int32_t a, int32_t b) {
    Dtree::Node node;
    node.left = a;
    node.right = b;
    t.nodes.push_back(node);
    const int32_t id = static_cast<int32_t>(t.nodes.size() - 1);
    std::vector<VarCount> merged = merge_varsets(varset[a], varset[b]);
    // cluster(t) = (vars(l) ∩ vars(r)) ∪ (vars(t) occurring outside t).
    uint32_t cluster = 0;
    {
      size_t i = 0, j = 0;
      for (const auto& [v, cnt] : merged) {
        while (i < varset[a].size() && varset[a][i].first < v) ++i;
        while (j < varset[b].size() && varset[b][j].first < v) ++j;
        const bool in_both = i < varset[a].size() && j < varset[b].size() &&
                             varset[a][i].first == v && varset[b][j].first == v;
        if (in_both || cnt < total[v]) ++cluster;
      }
    }
    max_cluster = std::max(max_cluster, cluster);
    varset.push_back(std::move(merged));
    return id;
  };

  for (const Var v : order) {
    std::vector<int32_t> with_v, rest;
    for (const int32_t root : roots) {
      const auto& vs = varset[root];
      const bool has =
          std::binary_search(vs.begin(), vs.end(), VarCount{v, 0},
                             [](const VarCount& x, const VarCount& y) {
                               return x.first < y.first;
                             });
      (has ? with_v : rest).push_back(root);
    }
    if (with_v.size() > 1) {
      rest.push_back(BalancedCombine(with_v, combine));
      roots = std::move(rest);
    } else if (with_v.size() == 1) {
      rest.push_back(with_v[0]);
      roots = std::move(rest);
    }
  }
  if (!roots.empty()) BalancedCombine(roots, combine);

  // Leaf clusters are the clause's full varset (cluster(leaf) = vars(t)).
  // A clause is a clique of the primal graph, so induced width >= clause
  // size - 1 and the dtree-width <= induced-width bound is preserved.
  for (size_t c = 0; c < m; ++c) {
    max_cluster = std::max(max_cluster, static_cast<uint32_t>(varset[c].size()));
  }

  t.width = max_cluster > 0 ? max_cluster - 1 : 0;
  return t;
}

}  // namespace tbc
