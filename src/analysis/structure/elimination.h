#ifndef TBC_ANALYSIS_STRUCTURE_ELIMINATION_H_
#define TBC_ANALYSIS_STRUCTURE_ELIMINATION_H_

#include <cstdint>
#include <vector>

#include "analysis/structure/graph.h"
#include "logic/lit.h"

namespace tbc {

/// Greedy elimination-order heuristics. Min-fill is the strongest in
/// practice (fewest fill edges first), min-degree the cheapest, and
/// max-cardinality search (MCS) completes the classical trio; all three
/// break ties on the lowest variable index, so the orders are bit-identical
/// across platforms and thread counts.
enum class ElimHeuristic : uint8_t { kMinFill, kMinDegree, kMaxCardinality };

const char* ElimHeuristicName(ElimHeuristic h);

/// A full elimination order over the graph's variables computed by `h`.
std::vector<Var> EliminationOrder(const PrimalGraph& g, ElimHeuristic h);

/// Exact induced width of `order` on `g`: simulate the elimination,
/// connecting each eliminated vertex's surviving neighbors into a clique;
/// the width is the largest neighborhood met. This is the exponent in the
/// n·2^w compile-cost envelope and upper-bounds the treewidth.
uint32_t InducedWidth(const PrimalGraph& g, const std::vector<Var>& order);

/// Elimination tree of `order` on `g`: parent[v] is the earliest-eliminated
/// vertex among v's neighbors in the filled graph at the moment v is
/// eliminated (kInvalidVar for component roots). Computed by the same
/// simulation as InducedWidth; `width` is that order's exact induced width.
struct EliminationTree {
  std::vector<Var> parent;  // indexed by variable
  uint32_t width = 0;
};
EliminationTree BuildEliminationTree(const PrimalGraph& g,
                                     const std::vector<Var>& order);

}  // namespace tbc

#endif  // TBC_ANALYSIS_STRUCTURE_ELIMINATION_H_
