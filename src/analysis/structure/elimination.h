#ifndef TBC_ANALYSIS_STRUCTURE_ELIMINATION_H_
#define TBC_ANALYSIS_STRUCTURE_ELIMINATION_H_

#include <cstdint>
#include <vector>

#include "analysis/structure/graph.h"
#include "logic/lit.h"

namespace tbc {

/// Greedy elimination-order heuristics. Min-fill is the strongest in
/// practice (fewest fill edges first), min-degree the cheapest, and
/// max-cardinality search (MCS) completes the classical trio; all three
/// break ties on the lowest variable index, so the orders are bit-identical
/// across platforms and thread counts.
enum class ElimHeuristic : uint8_t { kMinFill, kMinDegree, kMaxCardinality };

const char* ElimHeuristicName(ElimHeuristic h);

/// A full elimination order over the graph's variables computed by `h`.
///
/// `work_budget` (0 = unlimited) caps the simulation effort in
/// deterministic work units (neighbor-pair inspections plus fill-edge
/// insertion cost). Greedy elimination is only near-linear on sparse,
/// low-fill graphs; on dense or fill-heavy inputs — a single wide clause
/// is already a clique — the clique-completion cost is cubic-ish, so
/// budgeted callers (serve admission, portfolio planning) must be able to
/// give up instead of stalling. An exceeded budget returns an empty
/// vector (distinguishable from success whenever the graph has vertices).
std::vector<Var> EliminationOrder(const PrimalGraph& g, ElimHeuristic h,
                                  uint64_t work_budget = 0);

/// Exact induced width of `order` on `g`: simulate the elimination,
/// connecting each eliminated vertex's surviving neighbors into a clique;
/// the width is the largest neighborhood met. This is the exponent in the
/// n·2^w compile-cost envelope and upper-bounds the treewidth.
uint32_t InducedWidth(const PrimalGraph& g, const std::vector<Var>& order);

/// Elimination tree of `order` on `g`: parent[v] is the earliest-eliminated
/// vertex among v's neighbors in the filled graph at the moment v is
/// eliminated (kInvalidVar for component roots). Computed by the same
/// simulation as InducedWidth; `width` is that order's exact induced width.
/// With a nonzero `work_budget` the simulation may abort: `completed` is
/// false and parent/width are meaningless partial values.
struct EliminationTree {
  std::vector<Var> parent;  // indexed by variable
  uint32_t width = 0;
  bool completed = true;
};
EliminationTree BuildEliminationTree(const PrimalGraph& g,
                                     const std::vector<Var>& order,
                                     uint64_t work_budget = 0);

}  // namespace tbc

#endif  // TBC_ANALYSIS_STRUCTURE_ELIMINATION_H_
