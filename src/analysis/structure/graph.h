#ifndef TBC_ANALYSIS_STRUCTURE_GRAPH_H_
#define TBC_ANALYSIS_STRUCTURE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "logic/cnf.h"
#include "logic/lit.h"

namespace tbc {

/// The primal (interaction) graph of a CNF: one vertex per variable, one
/// edge per pair of variables sharing a clause. This is the object all the
/// width machinery works on — the treewidth of the primal graph bounds the
/// decomposition width of every compilation target (paper §4: compile cost
/// is exponential only in width, not size).
///
/// Adjacency is CSR (sorted, deduplicated), built in O(sum of clause
/// sizes squared) edge generations plus one sort — near-linear for the
/// bounded-clause-width CNFs every encoder in this library emits.
class PrimalGraph {
 public:
  static PrimalGraph FromCnf(const Cnf& cnf);

  /// Edge generations FromCnf would perform: sum over clauses of
  /// |c|·(|c|−1). Callers with a work budget (serve admission, portfolio
  /// planning) gate on this before building — a single huge clause makes
  /// the primal graph a clique, and nothing downstream is near-linear on
  /// cliques.
  static uint64_t BuildWork(const Cnf& cnf);

  /// 0 for a default-constructed (never-populated) graph.
  size_t num_vars() const {
    return adj_start_.empty() ? 0 : adj_start_.size() - 1;
  }
  /// Undirected edge count (each edge stored twice internally).
  size_t num_edges() const { return adj_.size() / 2; }

  size_t degree(Var v) const { return adj_start_[v + 1] - adj_start_[v]; }
  /// Sorted neighbors of v.
  const uint32_t* neighbors_begin(Var v) const {
    return adj_.data() + adj_start_[v];
  }
  const uint32_t* neighbors_end(Var v) const {
    return adj_.data() + adj_start_[v + 1];
  }

 private:
  std::vector<uint32_t> adj_start_;  // size num_vars + 1
  std::vector<uint32_t> adj_;       // concatenated sorted neighbor lists
};

/// Connected components of the primal graph. `component_of[v]` is a dense
/// component id in [0, num_components); isolated variables (occurring in
/// no clause) each form their own component.
struct Components {
  std::vector<uint32_t> component_of;
  std::vector<uint32_t> sizes;  // indexed by component id
  uint32_t largest = 0;         // max over sizes (0 for the empty graph)
};
Components ConnectedComponents(const PrimalGraph& g);

/// Degeneracy ordering by repeated minimum-degree removal (bucket queue,
/// O(n + m)). The degeneracy d is a lower bound on treewidth, hence on the
/// induced width of *every* elimination order — reporting it next to the
/// heuristic upper bounds brackets the true width.
struct DegeneracyResult {
  std::vector<Var> order;  // removal order (deterministic tie-breaking)
  uint32_t degeneracy = 0;
};
DegeneracyResult Degeneracy(const PrimalGraph& g);

}  // namespace tbc

#endif  // TBC_ANALYSIS_STRUCTURE_GRAPH_H_
