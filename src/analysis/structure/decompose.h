#ifndef TBC_ANALYSIS_STRUCTURE_DECOMPOSE_H_
#define TBC_ANALYSIS_STRUCTURE_DECOMPOSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/structure/elimination.h"
#include "analysis/structure/graph.h"
#include "logic/cnf.h"
#include "vtree/vtree.h"

namespace tbc {

/// Vtree synthesized from an elimination order, making the width forecast
/// *constructive*: compile with this vtree and the SDD respects the same
/// decomposition the forecast priced.
///
/// Construction: build the elimination tree of the order (parent = the
/// earliest-eliminated filled-graph neighbor), then map every variable v to
/// Internal(leaf(v), balanced-combine(children's subtrees)) bottom-up;
/// component roots are combined balanced. Variables in no clause become
/// their own components, so the vtree always covers all of g's variables
/// (SDD managers require every variable to appear).
Vtree VtreeFromEliminationOrder(const PrimalGraph& g,
                                const std::vector<Var>& order);

/// A dtree (binary tree over the CNF's clauses [Darwiche 2001]) composed
/// along an elimination order, c2d-style: clause leaves start as singleton
/// trees; for each variable in order, every tree mentioning it is combined
/// (balanced); leftover trees (disconnected components) combine at the end.
struct Dtree {
  struct Node {
    int32_t clause = -1;  // >= 0 iff leaf (index into cnf.clauses())
    int32_t left = -1;
    int32_t right = -1;
  };
  /// Children precede parents; the last node is the root (empty for a
  /// clause-free CNF).
  std::vector<Node> nodes;
  /// Max cluster size minus one. For a dtree composed along an order this
  /// is at most the order's induced width (the classical bound that makes
  /// the n·2^w cost envelope constructive for the d-DNNF compiler too).
  uint32_t width = 0;

  /// c2d dtree exchange format: "dtree <n>", then "L <clause>" leaves and
  /// "I <left> <right>" composes, ids implicit by line order.
  std::string ToFileString() const;
};
Dtree DtreeFromEliminationOrder(const Cnf& cnf, const std::vector<Var>& order);

}  // namespace tbc

#endif  // TBC_ANALYSIS_STRUCTURE_DECOMPOSE_H_
