#ifndef TBC_ANALYSIS_STRUCTURE_FORECAST_H_
#define TBC_ANALYSIS_STRUCTURE_FORECAST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/structure/elimination.h"
#include "analysis/structure/graph.h"
#include "logic/cnf.h"
#include "vtree/vtree.h"

namespace tbc {

/// Tuning for AnalyzeCnfStructure. The graph/propagation/degeneracy passes
/// are near-linear, but the elimination simulations are not: greedy
/// orders and their exact width replay complete cliques, which is
/// cubic-ish on dense primal graphs (one wide clause is already a
/// clique). Min-fill — the strongest and costliest heuristic — is skipped
/// above `minfill_max_vars`; `work_budget` bounds everything else.
struct StructureOptions {
  bool try_minfill = true;
  uint32_t minfill_max_vars = 4096;
  bool compute_backbone = true;
  /// Deterministic cap (0 = unlimited) on the simulation work the
  /// analysis may spend, in DynGraph pair-inspection units (see
  /// elimination.h). When exceeded the analysis degrades instead of
  /// stalling: an over-budget primal graph skips every graph-based pass;
  /// an over-budget elimination order is dropped, possibly leaving only
  /// the degeneracy lower bound. Degraded reports set
  /// StructureReport::truncated. Callers on untrusted or deadline-bearing
  /// paths (serve admission, portfolio planning) must set this.
  uint64_t work_budget = 0;
};

/// One elimination-order candidate with its exact simulated induced width.
struct OrderCandidate {
  ElimHeuristic heuristic = ElimHeuristic::kMinDegree;
  std::vector<Var> order;
  uint32_t width = 0;
};

/// Predicted compile-cost envelope for one backend: log2 of the node-count
/// upper bound implied by the best width (nodes <= n·2^w style; paper §4).
struct BackendForecast {
  const char* backend = "";
  double log2_nodes = 0.0;
};

/// Everything the static pass learned about a CNF, priced before any
/// compiler runs. The forecast is *advisory*: consumers route, budget, or
/// refuse on it, but the Guard remains the enforcer of record (DESIGN.md
/// "Structure analysis & cost forecasting").
struct StructureReport {
  size_t num_vars = 0;
  size_t num_clauses = 0;
  size_t num_edges = 0;

  uint32_t num_components = 0;
  uint32_t largest_component = 0;

  size_t num_unit_clauses = 0;
  size_t num_pure_literals = 0;
  /// Literals fixed by unit propagation (a backbone subset, linear time).
  std::vector<Lit> backbone;
  /// Unit propagation derived the empty clause: the CNF is unsatisfiable
  /// and every forecast below is moot.
  bool trivially_unsat = false;

  /// The analysis hit StructureOptions::work_budget and degraded: some or
  /// all elimination-order candidates (and, if the primal graph itself
  /// was over budget, the graph/degeneracy passes too) are missing. What
  /// *is* reported remains exact — in particular a nonzero
  /// width_lower_bound is still a sound lower bound.
  bool truncated = false;

  /// Degeneracy of the primal graph: a treewidth lower bound, bracketing
  /// the heuristic upper bounds below.
  uint32_t width_lower_bound = 0;
  /// Elimination orders tried, each with its exact induced width.
  std::vector<OrderCandidate> candidates;
  /// Index into `candidates` of the smallest width (first on ties).
  size_t best = 0;
  /// Width of the dtree composed along the best order (<= best width).
  uint32_t dtree_width = 0;
  std::vector<BackendForecast> forecasts;

  /// Primal graph, kept so consumers can synthesize vtrees/dtrees from
  /// `best_order()` without rebuilding it.
  PrimalGraph graph;

  const OrderCandidate& best_candidate() const { return candidates[best]; }
  const std::vector<Var>& best_order() const { return candidates[best].order; }
  uint32_t best_width() const {
    return candidates.empty() ? 0 : candidates[best].width;
  }

  std::string ToText() const;
  /// One JSON object (the tbc_analyze --format=json payload).
  std::string ToJson() const;
};

/// The static analysis pass: primal graph, components, unit/pure/backbone
/// scans, degeneracy lower bound, elimination-order candidates (min-degree,
/// MCS, min-fill when enabled), dtree width, and per-backend forecasts.
StructureReport AnalyzeCnfStructure(const Cnf& cnf,
                                    const StructureOptions& options = {});

/// Renders the report as structure.* diagnostics (notes; the unsat finding
/// is a warning). Parse failures are reported by callers under
/// rules::kStructureParse — this function only sees parsed CNFs.
void StructureDiagnostics(const StructureReport& report,
                          DiagnosticReport& diag);

/// Vtree over the CNF's variables synthesized from the report's best
/// elimination order (kc_cli --vtree=minfill, portfolio SDD arm).
Vtree VtreeForCnf(const StructureReport& report);

}  // namespace tbc

#endif  // TBC_ANALYSIS_STRUCTURE_FORECAST_H_
