#include "analysis/structure/forecast.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/rules.h"
#include "analysis/structure/decompose.h"
#include "base/check.h"
#include "base/observability.h"

namespace tbc {

namespace {

// Unit propagation over counter-based clause state: fixes every literal
// forced from the unit clauses (a linear-time backbone subset) and detects
// outright refutation. Pure-literal and unit counts ride along.
void PropagationScan(const Cnf& cnf, bool compute_backbone,
                     StructureReport& report) {
  const size_t n = cnf.num_vars();
  std::vector<uint32_t> polarity(2 * n, 0);  // occurrences per literal code
  std::vector<std::vector<uint32_t>> occ(2 * n);
  std::vector<uint32_t> unassigned(cnf.num_clauses());
  std::vector<char> satisfied(cnf.num_clauses(), 0);
  std::vector<char> assigned(2 * n, 0);  // literal code -> asserted

  std::vector<Lit> queue;
  for (size_t c = 0; c < cnf.num_clauses(); ++c) {
    const Clause& clause = cnf.clause(c);
    unassigned[c] = static_cast<uint32_t>(clause.size());
    if (clause.empty()) report.trivially_unsat = true;
    if (clause.size() == 1) {
      ++report.num_unit_clauses;
      queue.push_back(clause[0]);
    }
    for (const Lit l : clause) {
      ++polarity[l.code()];
      occ[l.code()].push_back(static_cast<uint32_t>(c));
    }
  }
  for (Var v = 0; v < n; ++v) {
    const bool pos = polarity[Pos(v).code()] > 0;
    const bool neg = polarity[Neg(v).code()] > 0;
    if (pos != neg) ++report.num_pure_literals;
  }
  if (!compute_backbone) return;

  for (size_t head = 0; head < queue.size() && !report.trivially_unsat;
       ++head) {
    const Lit l = queue[head];
    if (assigned[l.code()]) continue;
    if (assigned[(~l).code()]) {
      report.trivially_unsat = true;
      break;
    }
    assigned[l.code()] = 1;
    report.backbone.push_back(l);
    for (const uint32_t c : occ[l.code()]) satisfied[c] = 1;
    for (const uint32_t c : occ[(~l).code()]) {
      if (satisfied[c]) continue;
      if (--unassigned[c] == 0) {
        report.trivially_unsat = true;
        break;
      }
      if (unassigned[c] == 1) {
        // The surviving literal is the clause's only unassigned one.
        for (const Lit cand : cnf.clause(c)) {
          if (!assigned[cand.code()] && !assigned[(~cand).code()]) {
            queue.push_back(cand);
            break;
          }
        }
      }
    }
  }
  std::sort(report.backbone.begin(), report.backbone.end());
}

double Log2OrOne(size_t n) { return std::log2(static_cast<double>(std::max<size_t>(n, 1))); }

void Forecasts(StructureReport& report) {
  const double log2n = Log2OrOne(report.num_vars);
  const double w = static_cast<double>(report.best_width());
  // d-DNNF / recursive decomposition: nodes <= n * 2^w.
  report.forecasts.push_back({"ddnnf", log2n + w});
  // SDD under the synthesized vtree: one extra factor for primes vs subs.
  report.forecasts.push_back({"sdd", log2n + w + 1.0});
  // OBDD: priced through the pathwidth <= (w+1) * log2(n+1) relation,
  // capped by the trivial 2^n envelope.
  const double pw = (w + 1.0) * std::log2(static_cast<double>(report.num_vars) + 1.0);
  report.forecasts.push_back(
      {"obdd", log2n + std::min(static_cast<double>(report.num_vars), pw)});
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

StructureReport AnalyzeCnfStructure(const Cnf& cnf,
                                    const StructureOptions& options) {
  TBC_SPAN("analysis.structure");
  TBC_COUNT("analysis.structure.runs");
  StructureReport report;
  report.num_vars = cnf.num_vars();
  report.num_clauses = cnf.num_clauses();

  // The propagation scan is genuinely linear and graph-free, so it runs
  // even when the graph passes below are refused as over budget.
  PropagationScan(cnf, options.compute_backbone, report);

  if (options.work_budget != 0 &&
      PrimalGraph::BuildWork(cnf) > options.work_budget) {
    // Building the primal graph would already blow the budget (memory as
    // much as time: edge generation is sum-of-clause-sizes squared).
    // Report what the linear passes found and nothing width-related.
    report.truncated = true;
    TBC_COUNT("analysis.structure.truncated");
    return report;
  }

  report.graph = PrimalGraph::FromCnf(cnf);
  report.num_edges = report.graph.num_edges();

  const Components comps = ConnectedComponents(report.graph);
  report.num_components = static_cast<uint32_t>(comps.sizes.size());
  report.largest_component = comps.largest;

  const DegeneracyResult degen = Degeneracy(report.graph);
  report.width_lower_bound = degen.degeneracy;

  std::vector<ElimHeuristic> heuristics = {ElimHeuristic::kMinDegree,
                                           ElimHeuristic::kMaxCardinality};
  if (options.try_minfill && cnf.num_vars() <= options.minfill_max_vars) {
    heuristics.push_back(ElimHeuristic::kMinFill);
  }
  for (const ElimHeuristic h : heuristics) {
    OrderCandidate cand;
    cand.heuristic = h;
    cand.order = EliminationOrder(report.graph, h, options.work_budget);
    if (cand.order.empty() && report.num_vars > 0) {
      report.truncated = true;  // order aborted over budget: drop it
      continue;
    }
    const EliminationTree tree =
        BuildEliminationTree(report.graph, cand.order, options.work_budget);
    if (!tree.completed) {
      report.truncated = true;
      continue;
    }
    cand.width = tree.width;
    report.candidates.push_back(std::move(cand));
  }
  if (report.truncated) TBC_COUNT("analysis.structure.truncated");
  TBC_COUNT_N("analysis.structure.orders_tried", report.candidates.size());
  for (size_t i = 1; i < report.candidates.size(); ++i) {
    if (report.candidates[i].width < report.candidates[report.best].width) {
      report.best = i;
    }
  }
  TBC_OBSERVE_VALUE("analysis.structure.best_width", report.best_width());

  if (!report.candidates.empty()) {
    report.dtree_width = DtreeFromEliminationOrder(cnf, report.best_order()).width;
  }
  if (!report.candidates.empty() || !report.truncated) {
    // No forecasts when every order aborted: a width-0 "bound" from an
    // analysis that could not finish would read as cheap, not unknown.
    Forecasts(report);
  }
  return report;
}

std::string StructureReport::ToText() const {
  std::string out;
  out += "vars " + std::to_string(num_vars) + ", clauses " +
         std::to_string(num_clauses) + ", primal edges " +
         std::to_string(num_edges) + "\n";
  out += "components " + std::to_string(num_components) + " (largest " +
         std::to_string(largest_component) + ")\n";
  out += "units " + std::to_string(num_unit_clauses) + ", pure literals " +
         std::to_string(num_pure_literals) + ", backbone (UP) " +
         std::to_string(backbone.size()) +
         (trivially_unsat ? ", UNSAT by unit propagation" : "") + "\n";
  out += "width: lower bound " + std::to_string(width_lower_bound) +
         " (degeneracy), upper bound " + std::to_string(best_width()) + " (" +
         (candidates.empty() ? "none"
                             : ElimHeuristicName(best_candidate().heuristic)) +
         "), dtree " + std::to_string(dtree_width) + "\n";
  if (truncated) {
    out += "analysis truncated: work budget exceeded, report is partial\n";
  }
  for (const OrderCandidate& c : candidates) {
    out += "  order " + std::string(ElimHeuristicName(c.heuristic)) +
           ": width " + std::to_string(c.width) + "\n";
  }
  for (const BackendForecast& f : forecasts) {
    out += "forecast " + std::string(f.backend) + ": log2(nodes) <= " +
           FormatDouble(f.log2_nodes) + "\n";
  }
  return out;
}

std::string StructureReport::ToJson() const {
  std::string out = "{\"analyzer\":\"structure\"";
  out += ",\"num_vars\":" + std::to_string(num_vars);
  out += ",\"num_clauses\":" + std::to_string(num_clauses);
  out += ",\"num_edges\":" + std::to_string(num_edges);
  out += ",\"components\":{\"count\":" + std::to_string(num_components) +
         ",\"largest\":" + std::to_string(largest_component) + "}";
  out += ",\"num_unit_clauses\":" + std::to_string(num_unit_clauses);
  out += ",\"num_pure_literals\":" + std::to_string(num_pure_literals);
  out += ",\"backbone_size\":" + std::to_string(backbone.size());
  out += ",\"trivially_unsat\":";
  out += trivially_unsat ? "true" : "false";
  out += ",\"truncated\":";
  out += truncated ? "true" : "false";
  out += ",\"width\":{\"lower_bound\":" + std::to_string(width_lower_bound) +
         ",\"upper_bound\":" + std::to_string(best_width()) +
         ",\"best_heuristic\":\"" +
         (candidates.empty() ? "none" : ElimHeuristicName(best_candidate().heuristic)) +
         "\",\"dtree\":" + std::to_string(dtree_width) + "}";
  out += ",\"orders\":[";
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"heuristic\":\"" +
           std::string(ElimHeuristicName(candidates[i].heuristic)) +
           "\",\"width\":" + std::to_string(candidates[i].width) + "}";
  }
  out += "],\"forecasts\":[";
  for (size_t i = 0; i < forecasts.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"backend\":\"" + std::string(forecasts[i].backend) +
           "\",\"log2_nodes\":" + FormatDouble(forecasts[i].log2_nodes) + "}";
  }
  out += "]}";
  return out;
}

void StructureDiagnostics(const StructureReport& report,
                          DiagnosticReport& diag) {
  diag.Add(Severity::kNote, rules::kStructureWidth, 0,
           "lb=" + std::to_string(report.width_lower_bound) +
               " ub=" + std::to_string(report.best_width()),
           "induced width bracketed in [" +
               std::to_string(report.width_lower_bound) + ", " +
               std::to_string(report.best_width()) + "] (best heuristic: " +
               (report.candidates.empty()
                    ? "none"
                    : ElimHeuristicName(report.best_candidate().heuristic)) +
               ")");
  for (const BackendForecast& f : report.forecasts) {
    diag.Add(Severity::kNote, rules::kStructureForecast, 0,
             std::string(f.backend),
             std::string(f.backend) + " compile forecast: log2(nodes) <= " +
                 FormatDouble(f.log2_nodes));
  }
  if (report.num_components > 1) {
    diag.Add(Severity::kNote, rules::kStructureDisconnected, 0,
             std::to_string(report.num_components),
             "primal graph has " + std::to_string(report.num_components) +
                 " components (largest " +
                 std::to_string(report.largest_component) +
                 "); they compile independently");
  }
  if (report.trivially_unsat) {
    diag.Add(Severity::kWarning, rules::kStructureBackbone, 0, "",
             "unit propagation refutes the CNF: every compile answers false");
  } else if (!report.backbone.empty()) {
    diag.Add(Severity::kNote, rules::kStructureBackbone, 0,
             std::to_string(report.backbone.size()),
             "unit propagation fixes " + std::to_string(report.backbone.size()) +
                 " literal(s); conditioning them first shrinks every compile");
  }
  if (report.num_pure_literals > 0) {
    diag.Add(Severity::kNote, rules::kStructurePure, 0,
             std::to_string(report.num_pure_literals),
             std::to_string(report.num_pure_literals) +
                 " pure literal(s): single-polarity variables");
  }
}

Vtree VtreeForCnf(const StructureReport& report) {
  TBC_CHECK_MSG(!report.candidates.empty() && report.num_vars > 0,
                "no elimination order to synthesize a vtree from");
  return VtreeFromEliminationOrder(report.graph, report.best_order());
}

}  // namespace tbc
