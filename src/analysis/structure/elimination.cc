#include "analysis/structure/elimination.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "base/check.h"

namespace tbc {

namespace {

// Mutable adjacency for elimination simulation: sorted neighbor vectors
// with an alive mask. Dead entries are skipped on read rather than erased
// (each vertex is eliminated once, so stale entries are scanned at most
// once per surviving neighbor).
//
// Every pair inspection and (size-weighted) sorted insert is charged to
// `work`; a nonzero `budget` lets callers abort the simulation once the
// accumulated cost proves the graph is too dense/fill-heavy for the
// analysis to stay cheap. Work units are a pure function of the graph and
// the elimination order, so budgeted outcomes are deterministic across
// platforms and thread counts (unlike a wall-clock deadline).
struct DynGraph {
  explicit DynGraph(const PrimalGraph& g, uint64_t work_budget = 0)
      : alive(g.num_vars(), 1), budget(work_budget) {
    adj.resize(g.num_vars());
    for (Var v = 0; v < g.num_vars(); ++v) {
      adj[v].assign(g.neighbors_begin(v), g.neighbors_end(v));
    }
  }

  bool over_budget() const { return budget != 0 && work > budget; }

  bool HasEdge(Var a, Var b) const {
    const auto& n = adj[a];
    return std::binary_search(n.begin(), n.end(), b);
  }
  void AddEdge(Var a, Var b) {
    // A sorted insert memmoves O(degree) entries; charging it by size
    // keeps the budget honest on graphs whose fill-in concentrates on a
    // few high-degree vertices.
    work += 1 + (adj[a].size() + adj[b].size()) / 8;
    auto it = std::lower_bound(adj[a].begin(), adj[a].end(), b);
    adj[a].insert(it, b);
    it = std::lower_bound(adj[b].begin(), adj[b].end(), a);
    adj[b].insert(it, a);
  }
  // Live neighbors of v, ascending.
  void LiveNeighbors(Var v, std::vector<Var>* out) const {
    out->clear();
    for (const uint32_t u : adj[v]) {
      if (alive[u]) out->push_back(u);
    }
  }
  // Eliminates v: marks it dead and connects its live neighborhood into a
  // clique. Returns the neighborhood size (this step's width contribution).
  // Stops filling mid-clique once over budget (the caller abandons the
  // whole simulation, so the partially-filled graph is never read).
  size_t Eliminate(Var v, std::vector<Var>* scratch) {
    LiveNeighbors(v, scratch);
    alive[v] = 0;
    for (size_t i = 0; i < scratch->size(); ++i) {
      if (over_budget()) break;
      for (size_t j = i + 1; j < scratch->size(); ++j) {
        ++work;
        if (!HasEdge((*scratch)[i], (*scratch)[j])) {
          AddEdge((*scratch)[i], (*scratch)[j]);
        }
      }
    }
    return scratch->size();
  }

  std::vector<std::vector<uint32_t>> adj;
  std::vector<char> alive;
  uint64_t budget = 0;
  mutable uint64_t work = 0;
};

size_t LiveDegree(const DynGraph& g, Var v) {
  size_t d = 0;
  for (const uint32_t u : g.adj[v]) d += g.alive[u] != 0;
  return d;
}

// Missing edges among the live neighbors of v (the min-fill score).
// Scoring alone is O(degree^2) per vertex, so it charges the same work
// account as the elimination itself (a truncated score is fine: the
// caller abandons the whole order once over budget).
size_t FillCount(const DynGraph& g, Var v, std::vector<Var>* scratch) {
  g.LiveNeighbors(v, scratch);
  size_t missing = 0;
  for (size_t i = 0; i < scratch->size(); ++i) {
    if (g.over_budget()) break;
    for (size_t j = i + 1; j < scratch->size(); ++j) {
      ++g.work;
      missing += !g.HasEdge((*scratch)[i], (*scratch)[j]);
    }
  }
  return missing;
}

// Greedy order minimizing `score` at every step. A lazy min-heap of
// (score, var) pairs with current-score validation on pop: scores of
// untouched vertices cannot have changed, and touched vertices are
// re-pushed with their fresh score, so popped-and-valid means minimal.
// Ties break on the lowest variable index via the pair ordering.
// Returns an empty vector when the graph's work budget is exceeded.
template <typename ScoreFn, typename TouchedFn>
std::vector<Var> GreedyOrder(DynGraph& g, ScoreFn score, TouchedFn touched) {
  const size_t n = g.adj.size();
  std::vector<Var> order;
  order.reserve(n);
  std::vector<uint64_t> current(n);
  using Entry = std::pair<uint64_t, Var>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (Var v = 0; v < n; ++v) {
    current[v] = score(v);
    if (g.over_budget()) return {};  // initial scoring alone can be d^2 each
    heap.push({current[v], v});
  }
  std::vector<Var> scratch, affected;
  while (order.size() < n) {
    const auto [s, v] = heap.top();
    heap.pop();
    if (!g.alive[v] || s != current[v]) continue;  // stale entry
    g.Eliminate(v, &scratch);
    order.push_back(v);
    touched(v, scratch, &affected);
    for (const Var u : affected) {
      if (!g.alive[u]) continue;
      const uint64_t fresh = score(u);
      if (fresh != current[u]) {
        current[u] = fresh;
        heap.push({fresh, u});
      }
    }
    if (g.over_budget()) return {};
  }
  return order;
}

std::vector<Var> MinDegreeOrder(const PrimalGraph& pg, uint64_t work_budget) {
  DynGraph g(pg, work_budget);
  return GreedyOrder(
      g, [&](Var v) { return static_cast<uint64_t>(LiveDegree(g, v)); },
      [&](Var /*v*/, const std::vector<Var>& nbrs, std::vector<Var>* affected) {
        *affected = nbrs;  // only the neighborhood's degrees changed
      });
}

std::vector<Var> MinFillOrder(const PrimalGraph& pg, uint64_t work_budget) {
  DynGraph g(pg, work_budget);
  std::vector<Var> fill_scratch;
  return GreedyOrder(
      g,
      [&](Var v) { return static_cast<uint64_t>(FillCount(g, v, &fill_scratch)); },
      [&](Var /*v*/, const std::vector<Var>& nbrs, std::vector<Var>* affected) {
        // Fill counts change for the clique members and for vertices that
        // see a newly added edge inside their neighborhood — every such
        // vertex is adjacent to a clique member, so rescore N(N(v)).
        affected->clear();
        for (const Var u : nbrs) {
          affected->push_back(u);
          for (const uint32_t w : g.adj[u]) {
            if (g.alive[w]) affected->push_back(w);
          }
        }
        std::sort(affected->begin(), affected->end());
        affected->erase(std::unique(affected->begin(), affected->end()),
                        affected->end());
      });
}

std::vector<Var> MaxCardinalityOrder(const PrimalGraph& g) {
  const size_t n = g.num_vars();
  // MCS numbers vertices by descending count of already-numbered neighbors;
  // the *elimination* order is the reverse of the visit order. Weights only
  // grow, so a popped entry matching the current weight is maximal. The
  // negated-index tiebreak keeps ties on the lowest variable.
  std::vector<uint64_t> weight(n, 0);
  std::vector<char> visited(n, 0);
  using Entry = std::pair<uint64_t, uint64_t>;  // (weight, ~var)
  std::priority_queue<Entry> heap;
  for (Var v = 0; v < n; ++v) heap.push({0, ~static_cast<uint64_t>(v)});
  std::vector<Var> visit;
  visit.reserve(n);
  while (visit.size() < n) {
    const auto [w, nv] = heap.top();
    heap.pop();
    const Var v = static_cast<Var>(~nv);
    if (visited[v] || w != weight[v]) continue;
    visited[v] = 1;
    visit.push_back(v);
    for (const uint32_t* it = g.neighbors_begin(v); it != g.neighbors_end(v);
         ++it) {
      if (!visited[*it]) heap.push({++weight[*it], ~static_cast<uint64_t>(*it)});
    }
  }
  std::reverse(visit.begin(), visit.end());
  return visit;
}

}  // namespace

const char* ElimHeuristicName(ElimHeuristic h) {
  switch (h) {
    case ElimHeuristic::kMinFill: return "min-fill";
    case ElimHeuristic::kMinDegree: return "min-degree";
    case ElimHeuristic::kMaxCardinality: return "max-cardinality";
  }
  return "unknown";
}

std::vector<Var> EliminationOrder(const PrimalGraph& g, ElimHeuristic h,
                                  uint64_t work_budget) {
  switch (h) {
    case ElimHeuristic::kMinFill: return MinFillOrder(g, work_budget);
    case ElimHeuristic::kMinDegree: return MinDegreeOrder(g, work_budget);
    // MCS never touches fill edges: O((n+m) log n) regardless of density,
    // so the budget only applies to its width simulation downstream.
    case ElimHeuristic::kMaxCardinality: return MaxCardinalityOrder(g);
  }
  return {};
}

uint32_t InducedWidth(const PrimalGraph& g, const std::vector<Var>& order) {
  return BuildEliminationTree(g, order).width;
}

EliminationTree BuildEliminationTree(const PrimalGraph& g,
                                     const std::vector<Var>& order,
                                     uint64_t work_budget) {
  const size_t n = g.num_vars();
  TBC_CHECK_MSG(order.size() == n, "elimination order is not a permutation");
  EliminationTree t;
  t.parent.assign(n, kInvalidVar);

  std::vector<uint32_t> pos(n, 0);
  for (size_t i = 0; i < n; ++i) pos[order[i]] = static_cast<uint32_t>(i);

  DynGraph dyn(g, work_budget);
  std::vector<Var> nbrs;
  for (const Var v : order) {
    if (dyn.over_budget()) {
      t.completed = false;
      return t;
    }
    const size_t width_here = dyn.Eliminate(v, &nbrs);
    t.width = std::max(t.width, static_cast<uint32_t>(width_here));
    // All surviving neighbors come later in the order; the earliest of
    // them is v's parent in the elimination tree.
    Var parent = kInvalidVar;
    for (const Var u : nbrs) {
      if (parent == kInvalidVar || pos[u] < pos[parent]) parent = u;
    }
    t.parent[v] = parent;
  }
  return t;
}

}  // namespace tbc
