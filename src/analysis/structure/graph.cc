#include "analysis/structure/graph.h"

#include <algorithm>

namespace tbc {

uint64_t PrimalGraph::BuildWork(const Cnf& cnf) {
  uint64_t work = 0;
  for (const Clause& clause : cnf.clauses()) {
    const uint64_t s = clause.size();
    work += s * (s - 1);
  }
  return work;
}

PrimalGraph PrimalGraph::FromCnf(const Cnf& cnf) {
  const size_t n = cnf.num_vars();
  // Generate both directions of every clause-pair edge, then sort + unique
  // per vertex. 64-bit packed (src, dst) pairs sort in one pass.
  std::vector<uint64_t> edges;
  for (const Clause& clause : cnf.clauses()) {
    for (size_t i = 0; i < clause.size(); ++i) {
      for (size_t j = i + 1; j < clause.size(); ++j) {
        const uint64_t a = clause[i].var();
        const uint64_t b = clause[j].var();
        if (a == b) continue;  // x and ~x in one clause share a variable
        edges.push_back((a << 32) | b);
        edges.push_back((b << 32) | a);
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  PrimalGraph g;
  g.adj_start_.assign(n + 1, 0);
  g.adj_.reserve(edges.size());
  for (const uint64_t e : edges) {
    g.adj_start_[(e >> 32) + 1]++;
    g.adj_.push_back(static_cast<uint32_t>(e));
  }
  for (size_t v = 0; v < n; ++v) g.adj_start_[v + 1] += g.adj_start_[v];
  return g;
}

Components ConnectedComponents(const PrimalGraph& g) {
  const size_t n = g.num_vars();
  Components out;
  out.component_of.assign(n, static_cast<uint32_t>(-1));
  std::vector<uint32_t> stack;
  for (Var root = 0; root < n; ++root) {
    if (out.component_of[root] != static_cast<uint32_t>(-1)) continue;
    const uint32_t id = static_cast<uint32_t>(out.sizes.size());
    out.sizes.push_back(0);
    stack.push_back(root);
    out.component_of[root] = id;
    while (!stack.empty()) {
      const Var v = stack.back();
      stack.pop_back();
      out.sizes[id]++;
      for (const uint32_t* it = g.neighbors_begin(v); it != g.neighbors_end(v);
           ++it) {
        if (out.component_of[*it] == static_cast<uint32_t>(-1)) {
          out.component_of[*it] = id;
          stack.push_back(*it);
        }
      }
    }
  }
  for (const uint32_t s : out.sizes) out.largest = std::max(out.largest, s);
  return out;
}

DegeneracyResult Degeneracy(const PrimalGraph& g) {
  const size_t n = g.num_vars();
  DegeneracyResult r;
  r.order.reserve(n);
  if (n == 0) return r;

  std::vector<uint32_t> deg(n);
  size_t max_deg = 0;
  for (Var v = 0; v < n; ++v) {
    deg[v] = static_cast<uint32_t>(g.degree(v));
    max_deg = std::max<size_t>(max_deg, deg[v]);
  }
  // Bucket queue keyed by current degree, with lazy deletion: a vertex is
  // re-pushed whenever its degree drops, and popped entries that no longer
  // match the vertex's current degree are skipped. Buckets are filled and
  // drained in a fixed sequence, so the order is deterministic on every
  // platform and thread count.
  std::vector<std::vector<Var>> buckets(max_deg + 1);
  for (Var v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<char> removed(n, 0);

  size_t cursor = 0;  // lowest possibly-nonempty bucket
  for (size_t taken = 0; taken < n;) {
    while (buckets[cursor].empty()) ++cursor;
    const Var v = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[v] || deg[v] != cursor) continue;  // stale entry
    removed[v] = 1;
    ++taken;
    r.order.push_back(v);
    r.degeneracy = std::max(r.degeneracy, static_cast<uint32_t>(cursor));
    for (const uint32_t* it = g.neighbors_begin(v); it != g.neighbors_end(v);
         ++it) {
      if (removed[*it]) continue;
      const uint32_t d = --deg[*it];
      buckets[d].push_back(*it);
      if (d < cursor) cursor = d;
    }
  }
  return r;
}

}  // namespace tbc
