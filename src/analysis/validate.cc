#include "analysis/validate.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/obdd_analyzer.h"
#include "analysis/psdd_analyzer.h"
#include "analysis/sdd_analyzer.h"

namespace tbc {

namespace {

void DieOnErrors(const DiagnosticReport& report, const char* where) {
  if (report.clean()) return;
  std::fprintf(stderr, "TBC_VALIDATE: invariant violation after %s\n%s", where,
               report.ToText(where).c_str());
  std::abort();
}

}  // namespace

void ValidateNnfOrDie(NnfManager& mgr, NnfId root, NnfDialect dialect,
                      size_t num_vars, const char* where) {
  DiagnosticReport report;
  NnfAnalysisOptions options;
  options.dialect = dialect;
  options.sat_determinism = false;  // hooks stay linear in circuit size
  options.expected_num_vars = num_vars;
  AnalyzeNnf(mgr, root, options, report);
  DieOnErrors(report, where);
}

void ValidateObddOrDie(const ObddManager& mgr, ObddId root, const char* where) {
  DiagnosticReport report;
  AnalyzeObdd(mgr, root, report);
  DieOnErrors(report, where);
}

void ValidateSddOrDie(SddManager& mgr, SddId root, const char* where) {
  DiagnosticReport report;
  SddAnalysisOptions options;
  AnalyzeSdd(mgr, root, options, report);
  DieOnErrors(report, where);
}

void ValidatePsddOrDie(const Psdd& psdd, const char* where) {
  DiagnosticReport report;
  AnalyzePsdd(psdd, report);
  DieOnErrors(report, where);
}

}  // namespace tbc
