#include "analysis/obdd_analyzer.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/rules.h"
#include "base/hash.h"

namespace tbc {

void AnalyzeObdd(const ObddManager& mgr, ObddId root, DiagnosticReport& report) {
  // Collect the reachable subgraph.
  std::vector<ObddId> stack = {root};
  std::unordered_set<ObddId> seen;
  std::unordered_map<uint64_t, std::vector<ObddId>> by_triple;
  while (!stack.empty()) {
    const ObddId f = stack.back();
    stack.pop_back();
    if (mgr.IsTerminal(f) || !seen.insert(f).second) continue;
    const Var v = mgr.var(f);
    const ObddId lo = mgr.lo(f);
    const ObddId hi = mgr.hi(f);
    if (v >= mgr.num_vars()) {
      report.Add(Severity::kError, rules::kObddOrdered, f,
                 "variable " + std::to_string(v + 1),
                 "decision variable outside the manager's order");
    } else {
      for (const ObddId child : {lo, hi}) {
        if (mgr.IsTerminal(child)) continue;
        if (mgr.LevelOf(mgr.var(child)) <= mgr.LevelOf(v)) {
          report.Add(Severity::kError, rules::kObddOrdered, f,
                     "variable " + std::to_string(mgr.var(child) + 1),
                     "child tests variable " + std::to_string(mgr.var(child) + 1) +
                         " at or above parent variable " + std::to_string(v + 1) +
                         " in the order");
        }
      }
    }
    if (lo == hi) {
      report.Add(Severity::kError, rules::kObddReduced, f,
                 "variable " + std::to_string(v + 1),
                 "decision with identical lo and hi children (node is "
                 "redundant)");
    }
    by_triple[HashCombine(HashCombine(HashCombine(0, v), lo), hi)].push_back(f);
    stack.push_back(lo);
    stack.push_back(hi);
  }
  // Duplicate (var, lo, hi) triples break canonicity (unique-table bug).
  for (const auto& [h, ids] : by_triple) {
    (void)h;
    for (size_t i = 1; i < ids.size(); ++i) {
      if (mgr.var(ids[i]) == mgr.var(ids[0]) && mgr.lo(ids[i]) == mgr.lo(ids[0]) &&
          mgr.hi(ids[i]) == mgr.hi(ids[0])) {
        report.Add(Severity::kError, rules::kObddReduced, ids[i],
                   "duplicate of node " + std::to_string(ids[0]),
                   "two reachable nodes share (var, lo, hi) — unique table "
                   "violated");
      }
    }
  }
}

}  // namespace tbc
