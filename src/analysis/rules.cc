#include "analysis/rules.h"

namespace tbc {

namespace {

constexpr RuleInfo kRules[] = {
    {rules::kNnfParse, "file is not parseable as a c2d .nnf circuit"},
    {rules::kNnfWellFormed,
     "NNF well-formedness: literal variables in range, gates non-degenerate"},
    {rules::kDnnfDecomposable,
     "decomposability: inputs of every and-gate share no variable"},
    {rules::kDdnnfDeterministic,
     "determinism: inputs of every or-gate are pairwise logically disjoint"},
    {rules::kDdnnfUnverified,
     "determinism could not be fully verified within the SAT-check budget"},
    {rules::kNnfSmooth,
     "smoothness: inputs of every or-gate mention the same variables"},
    {rules::kNnfDecision,
     "decision form: every or-gate is a binary multiplexer on one variable"},
    {rules::kObddOrdered,
     "ordering: decision variables respect one global order on every path"},
    {rules::kObddReduced,
     "reducedness: no decision with identical branches, no duplicate nodes"},
    {rules::kSddParse, "file is not parseable as an SDD-library .sdd circuit"},
    {rules::kSddStructured,
     "structure: primes/subs respect the left/right vtree of their decision"},
    {rules::kSddPartition,
     "strong determinism: primes are non-false, disjoint, and exhaustive"},
    {rules::kSddCompressed, "compression: subs of a decision node are distinct"},
    {rules::kSddTrimmed,
     "trimming: no {(true,s)} decisions and no {(p,true),(~p,false)} decisions"},
    {rules::kPsddParse, "file is not parseable as a .psdd (sdd + P lines)"},
    {rules::kPsddStructure,
     "structure: parameters attach to the normalized nodes of the base SDD"},
    {rules::kPsddNormalized,
     "normalization: local parameters are in [0,1] and sum to one"},
    {rules::kPsddSupport,
     "support: zero parameters shrink the distribution below the base SDD"},
    {rules::kStructureIo, "file could not be read (missing or I/O error)"},
    {rules::kStructureParse, "file is not parseable as DIMACS CNF"},
    {rules::kStructureWidth,
     "treewidth bracket: degeneracy lower bound vs best elimination-order "
     "upper bound"},
    {rules::kStructureForecast,
     "compile-cost envelope: predicted node bound (n*2^w) per backend"},
    {rules::kStructureDisconnected,
     "the primal graph is disconnected: components compile independently"},
    {rules::kStructureBackbone,
     "unit propagation fixes literals (or refutes the CNF outright)"},
    {rules::kStructurePure,
     "pure literals: variables occurring with a single polarity"},
    {rules::kCertifyParse,
     "file is not parseable as a tbc-cert compilation certificate"},
    {rules::kCertifyFormat,
     "certificate structure: node/variable ids in range, roots consistent"},
    {rules::kCertifyDecomposable,
     "certified decomposability: and-gate inputs share no variable"},
    {rules::kCertifyDeterministic,
     "certified determinism: or-gate inputs disjoint (UP probe, then DPLL)"},
    {rules::kCertifyObddOrdered,
     "certified ordering: OBDD table children descend in the recorded order"},
    {rules::kCertifyReplay,
     "trace replay: a recorded derivation step is not RUP-derivable"},
    {rules::kCertifyCircuitImpliesCnf,
     "circuit |= CNF: some input clause is not entailed by the circuit"},
    {rules::kCertifyCnfImpliesCircuit,
     "CNF |= circuit: the CNF has a model the circuit rejects"},
    {rules::kCertifyCount,
     "certified model count disagrees with the compiler's claimed count"},
    {rules::kCertifyBudget,
     "verification incomplete: probe/solve budget exhausted"},
};

}  // namespace

const RuleInfo* AllRules(size_t* count) {
  *count = sizeof(kRules) / sizeof(kRules[0]);
  return kRules;
}

const char* RuleSummary(const std::string& rule_id) {
  for (const RuleInfo& r : kRules) {
    if (rule_id == r.id) return r.summary;
  }
  return nullptr;
}

}  // namespace tbc
