#ifndef TBC_ANALYSIS_VALIDATE_H_
#define TBC_ANALYSIS_VALIDATE_H_

#include <cstddef>

#include "analysis/nnf_analyzer.h"
#include "nnf/nnf.h"
#include "obdd/obdd.h"
#include "psdd/psdd.h"
#include "sdd/sdd.h"

namespace tbc {

/// Debug-mode validation entry points, called from TBC_VALIDATE hooks after
/// every compile / minimize / multiply / from_obdd step. Each runs the
/// corresponding analyzer in syntactic-only mode (no SAT — hooks sit on hot
/// paths) and aborts with the diagnostic dump on stderr if the freshly built
/// artifact violates its claimed invariants. `where` names the producing
/// step, e.g. "CompileDdnnf".
void ValidateNnfOrDie(NnfManager& mgr, NnfId root, NnfDialect dialect,
                      size_t num_vars, const char* where);
void ValidateObddOrDie(const ObddManager& mgr, ObddId root, const char* where);
void ValidateSddOrDie(SddManager& mgr, SddId root, const char* where);
void ValidatePsddOrDie(const Psdd& psdd, const char* where);

}  // namespace tbc

#endif  // TBC_ANALYSIS_VALIDATE_H_
