#include "analysis/nnf_analyzer.h"

#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/rules.h"
#include "analysis/tseitin.h"
#include "sat/solver.h"

namespace tbc {

const char* NnfDialectName(NnfDialect d) {
  switch (d) {
    case NnfDialect::kNnf: return "nnf";
    case NnfDialect::kDnnf: return "dnnf";
    case NnfDialect::kDdnnf: return "ddnnf";
    case NnfDialect::kSmoothDdnnf: return "sd-dnnf";
    case NnfDialect::kDecisionDnnf: return "dec-dnnf";
    case NnfDialect::kObdd: return "obdd";
  }
  return "ddnnf";
}

bool ParseNnfDialect(const char* name, NnfDialect* out) {
  if (std::strcmp(name, "nnf") == 0) *out = NnfDialect::kNnf;
  else if (std::strcmp(name, "dnnf") == 0) *out = NnfDialect::kDnnf;
  else if (std::strcmp(name, "ddnnf") == 0) *out = NnfDialect::kDdnnf;
  else if (std::strcmp(name, "sd-dnnf") == 0) *out = NnfDialect::kSmoothDdnnf;
  else if (std::strcmp(name, "dec-dnnf") == 0) *out = NnfDialect::kDecisionDnnf;
  else if (std::strcmp(name, "obdd") == 0) *out = NnfDialect::kObdd;
  else return false;
  return true;
}

namespace {

// 1-based variable naming, matching the DIMACS convention of the file
// formats the analyzer fronts.
std::string VarName(Var v) { return std::to_string(v + 1); }

// First variable present in both bitsets, or kInvalidVar.
Var FirstSharedVar(const std::vector<uint64_t>& a,
                   const std::vector<uint64_t>& b) {
  const size_t words = a.size() < b.size() ? a.size() : b.size();
  for (size_t w = 0; w < words; ++w) {
    const uint64_t both = a[w] & b[w];
    if (both != 0) {
      return static_cast<Var>(64 * w + __builtin_ctzll(both));
    }
  }
  return kInvalidVar;
}

bool ContainsVar(const std::vector<uint64_t>& set, Var v) {
  const size_t w = v / 64;
  return w < set.size() && (set[w] >> (v % 64)) & 1u;
}

// Literals an or-input forces true at its top level: the literal itself, or
// the literal children of an and-gate. This is the syntactic fast path for
// determinism (complementary anchors => disjoint inputs) and the basis of
// decision-form extraction.
std::vector<Lit> AnchoredLits(const NnfManager& mgr, NnfId c) {
  std::vector<Lit> out;
  if (mgr.kind(c) == NnfManager::Kind::kLiteral) {
    out.push_back(mgr.lit(c));
  } else if (mgr.kind(c) == NnfManager::Kind::kAnd) {
    for (NnfId g : mgr.children(c)) {
      if (mgr.kind(g) == NnfManager::Kind::kLiteral) out.push_back(mgr.lit(g));
    }
  }
  return out;
}

bool SyntacticallyDisjoint(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  for (Lit x : a) {
    for (Lit y : b) {
      if (x == ~y) return true;
    }
  }
  return false;
}

// Shape of an or-gate viewed as an OBDD multiplexer (x & hi) | (~x & lo).
struct DecisionShape {
  bool is_decision = false;
  Var var = kInvalidVar;
  // The non-anchor parts of the two inputs ("hi"/"lo" subcircuits); used by
  // the ordering and reducedness checks. Sorted node-id lists.
  std::vector<NnfId> rest[2];
};

DecisionShape ExtractDecision(const NnfManager& mgr, NnfId n) {
  DecisionShape shape;
  const Span<const NnfId> kids = mgr.children(n);
  if (kids.size() != 2) return shape;
  const std::vector<Lit> a = AnchoredLits(mgr, kids[0]);
  const std::vector<Lit> b = AnchoredLits(mgr, kids[1]);
  Lit anchor;
  for (Lit x : a) {
    for (Lit y : b) {
      if (x == ~y) anchor = x;
    }
  }
  if (!anchor.valid()) return shape;
  shape.is_decision = true;
  shape.var = anchor.var();
  for (int side = 0; side < 2; ++side) {
    const NnfId c = kids[side];
    if (mgr.kind(c) != NnfManager::Kind::kAnd) continue;  // bare literal
    for (NnfId g : mgr.children(c)) {
      const bool is_anchor = mgr.kind(g) == NnfManager::Kind::kLiteral &&
                             mgr.lit(g).var() == shape.var;
      if (!is_anchor) shape.rest[side].push_back(g);
    }
  }
  return shape;
}

// Renders a model restricted to the variables of `vars_mask` as DIMACS
// literals, capped so witnesses stay one line.
std::string ModelWitness(const Assignment& model,
                         const std::vector<uint64_t>& vars_mask) {
  std::string out;
  size_t shown = 0;
  for (size_t w = 0; w < vars_mask.size(); ++w) {
    uint64_t bits = vars_mask[w];
    while (bits != 0) {
      const Var v = static_cast<Var>(64 * w + __builtin_ctzll(bits));
      bits &= bits - 1;
      if (shown == 16) return out + " ...";
      if (!out.empty()) out += " ";
      out += Lit(v, v < model.size() && model[v]).ToString();
      ++shown;
    }
  }
  return out;
}

class NnfAnalysis {
 public:
  NnfAnalysis(NnfManager& mgr, NnfId root, const NnfAnalysisOptions& options,
              DiagnosticReport& report)
      : mgr_(mgr), root_(root), options_(options), report_(report) {}

  void Run() {
    mgr_.VarSet(root_);  // populate bottom-up varset caches once
    order_ = mgr_.TopologicalOrder(root_);
    const NnfDialect d = options_.dialect;
    CheckWellFormed();
    if (d != NnfDialect::kNnf) CheckDecomposability();
    if (d == NnfDialect::kDdnnf || d == NnfDialect::kSmoothDdnnf) {
      CheckDeterminism();
    }
    if (d == NnfDialect::kDdnnf || d == NnfDialect::kSmoothDdnnf ||
        d == NnfDialect::kDecisionDnnf) {
      CheckSmoothness(d == NnfDialect::kSmoothDdnnf ? Severity::kError
                                                    : Severity::kWarning);
    }
    if (d == NnfDialect::kDecisionDnnf || d == NnfDialect::kObdd) {
      CheckDecisionForm();
    }
    if (d == NnfDialect::kObdd) {
      CheckObddOrdering();
      CheckObddReducedness();
    }
  }

 private:
  void CheckWellFormed() {
    const size_t declared = options_.expected_num_vars != 0
                                ? options_.expected_num_vars
                                : mgr_.num_vars();
    for (NnfId n : order_) {
      switch (mgr_.kind(n)) {
        case NnfManager::Kind::kLiteral:
          if (mgr_.lit(n).var() >= declared) {
            report_.Add(Severity::kError, rules::kNnfWellFormed, n,
                        VarName(mgr_.lit(n).var()),
                        "literal variable exceeds the declared " +
                            std::to_string(declared) + " variables");
          }
          break;
        case NnfManager::Kind::kAnd:
        case NnfManager::Kind::kOr:
          if (mgr_.children(n).empty()) {
            report_.Add(Severity::kError, rules::kNnfWellFormed, n, "",
                        "gate with no inputs");
          }
          break;
        default:
          break;
      }
    }
  }

  void CheckDecomposability() {
    for (NnfId n : order_) {
      if (mgr_.kind(n) != NnfManager::Kind::kAnd) continue;
      std::vector<uint64_t> seen(mgr_.VarSet(n).size(), 0);
      for (NnfId c : mgr_.children(n)) {
        const std::vector<uint64_t> cs = mgr_.VarSet(c);
        const Var shared = FirstSharedVar(seen, cs);
        if (shared != kInvalidVar) {
          report_.Add(Severity::kError, rules::kDnnfDecomposable, n,
                      "variable " + VarName(shared),
                      "inputs of and-gate share variable " + VarName(shared) +
                          " (decomposability broken)");
          break;  // one diagnostic per gate
        }
        for (size_t w = 0; w < cs.size(); ++w) seen[w] |= cs[w];
      }
    }
  }

  void CheckDeterminism() {
    size_t sat_checks = 0;
    bool budget_reported = false;
    for (NnfId n : order_) {
      if (mgr_.kind(n) != NnfManager::Kind::kOr) continue;
      const Span<const NnfId> kids = mgr_.children(n);
      std::vector<std::vector<Lit>> anchors;
      anchors.reserve(kids.size());
      for (NnfId c : kids) anchors.push_back(AnchoredLits(mgr_, c));
      bool flagged = false;
      for (size_t i = 0; i < kids.size() && !flagged; ++i) {
        for (size_t j = i + 1; j < kids.size() && !flagged; ++j) {
          if (SyntacticallyDisjoint(anchors[i], anchors[j])) continue;
          if (!options_.sat_determinism) {
            report_.Add(Severity::kWarning, rules::kDdnnfUnverified, n, "",
                        "or-inputs not syntactically disjoint and SAT "
                        "checking is disabled");
            flagged = true;
            break;
          }
          if (sat_checks >= options_.max_sat_checks) {
            if (!budget_reported) {
              report_.Add(Severity::kWarning, rules::kDdnnfUnverified, n, "",
                          "SAT-check budget of " +
                              std::to_string(options_.max_sat_checks) +
                              " exhausted; remaining or-gates unverified");
              budget_reported = true;
            }
            flagged = true;
            break;
          }
          ++sat_checks;
          EnsureSolver();
          const SatSolver::Outcome outcome = solver_->SolveAssuming(
              {encoder_->LitOf(kids[i]), encoder_->LitOf(kids[j])});
          if (outcome == SatSolver::Outcome::kSat) {
            // Witness over the variables the two inputs mention.
            std::vector<uint64_t> mask = mgr_.VarSet(kids[i]);
            const std::vector<uint64_t>& other = mgr_.VarSet(kids[j]);
            if (other.size() > mask.size()) mask.resize(other.size(), 0);
            for (size_t w = 0; w < other.size(); ++w) mask[w] |= other[w];
            report_.Add(Severity::kError, rules::kDdnnfDeterministic, n,
                        ModelWitness(solver_->model(), mask),
                        "or-inputs " + std::to_string(i) + " and " +
                            std::to_string(j) +
                            " are simultaneously satisfiable "
                            "(determinism broken)");
            flagged = true;
          }
        }
      }
    }
  }

  void CheckSmoothness(Severity severity) {
    for (NnfId n : order_) {
      if (mgr_.kind(n) != NnfManager::Kind::kOr) continue;
      const Span<const NnfId> kids = mgr_.children(n);
      for (size_t i = 1; i < kids.size(); ++i) {
        if (mgr_.VarSet(kids[i]) == mgr_.VarSet(kids[0])) continue;
        // Find one variable in the symmetric difference as the witness.
        const std::vector<uint64_t> a = mgr_.VarSet(kids[0]);
        const std::vector<uint64_t> b = mgr_.VarSet(kids[i]);
        Var miss = kInvalidVar;
        const size_t words = a.size() > b.size() ? a.size() : b.size();
        for (size_t w = 0; w < words && miss == kInvalidVar; ++w) {
          const uint64_t aw = w < a.size() ? a[w] : 0;
          const uint64_t bw = w < b.size() ? b[w] : 0;
          if ((aw ^ bw) != 0) {
            miss = static_cast<Var>(64 * w + __builtin_ctzll(aw ^ bw));
          }
        }
        report_.Add(severity, rules::kNnfSmooth, n,
                    miss == kInvalidVar ? "" : "variable " + VarName(miss),
                    "or-inputs 0 and " + std::to_string(i) +
                        " mention different variables (smoothness broken)");
        break;  // one diagnostic per gate
      }
    }
  }

  void CheckDecisionForm() {
    for (NnfId n : order_) {
      if (mgr_.kind(n) != NnfManager::Kind::kOr) continue;
      if (mgr_.children(n).size() > 2) {
        report_.Add(Severity::kError, rules::kNnfDecision, n, "",
                    "or-gate with " + std::to_string(mgr_.children(n).size()) +
                        " inputs cannot be a binary multiplexer");
        continue;
      }
      if (!ExtractDecision(mgr_, n).is_decision) {
        report_.Add(Severity::kError, rules::kNnfDecision, n, "",
                    "or-gate is not a multiplexer (x & hi) | (~x & lo) on any "
                    "variable");
      }
    }
  }

  void CheckObddOrdering() {
    // Per-node set of the first decision variables met when descending:
    // tdv[or-decision] = {its var}; gates pass the union of their inputs up.
    std::unordered_map<NnfId, std::vector<Var>> tdv;
    // Precedence edges var v -> var w ("v is tested above w somewhere").
    std::unordered_map<Var, std::unordered_set<Var>> succ;
    std::unordered_set<Var> vars;
    for (NnfId n : order_) {
      std::vector<Var> mine;
      switch (mgr_.kind(n)) {
        case NnfManager::Kind::kLiteral:
          // A bare literal leaf is itself a (final) decision on its
          // variable, so it participates in the precedence graph.
          tdv[n] = {mgr_.lit(n).var()};
          continue;
        case NnfManager::Kind::kOr: {
          const DecisionShape shape = ExtractDecision(mgr_, n);
          if (shape.is_decision) {
            vars.insert(shape.var);
            for (int side = 0; side < 2; ++side) {
              for (NnfId r : shape.rest[side]) {
                if (ContainsVar(mgr_.VarSet(r), shape.var)) {
                  report_.Add(Severity::kError, rules::kObddOrdered, n,
                              "variable " + VarName(shape.var),
                              "decision variable " + VarName(shape.var) +
                                  " appears again below its own decision");
                }
                for (Var w : tdv[r]) {
                  vars.insert(w);
                  succ[shape.var].insert(w);
                }
              }
            }
            mine = {shape.var};
            tdv[n] = std::move(mine);
            continue;
          }
          // Non-decision or-gate (already flagged by nnf.decision): fall
          // through to the union rule so ordering still sees below it.
          break;
        }
        default:
          break;
      }
      for (NnfId c : mgr_.children(n)) {
        for (Var w : tdv[c]) mine.push_back(w);
      }
      tdv[n] = std::move(mine);
    }
    // Kahn's algorithm on the precedence graph; leftovers form cycles, i.e.
    // two paths test the same pair of variables in opposite orders.
    std::unordered_map<Var, size_t> indegree;
    for (Var v : vars) indegree[v] = 0;
    for (const auto& [v, outs] : succ) {
      (void)v;
      for (Var w : outs) ++indegree[w];
    }
    std::vector<Var> queue;
    for (const auto& [v, deg] : indegree) {
      if (deg == 0) queue.push_back(v);
    }
    size_t removed = 0;
    while (!queue.empty()) {
      const Var v = queue.back();
      queue.pop_back();
      ++removed;
      auto it = succ.find(v);
      if (it == succ.end()) continue;
      for (Var w : it->second) {
        if (--indegree[w] == 0) queue.push_back(w);
      }
    }
    if (removed < vars.size()) {
      std::string cycle_vars;
      for (const auto& [v, deg] : indegree) {
        if (deg == 0) continue;
        if (!cycle_vars.empty()) cycle_vars += " ";
        cycle_vars += VarName(v);
      }
      report_.Add(Severity::kError, rules::kObddOrdered, root_, cycle_vars,
                  "no global variable order: paths test variables {" +
                      cycle_vars + "} in conflicting orders");
    }
  }

  void CheckObddReducedness() {
    for (NnfId n : order_) {
      if (mgr_.kind(n) != NnfManager::Kind::kOr) continue;
      const DecisionShape shape = ExtractDecision(mgr_, n);
      if (!shape.is_decision) continue;
      // Identical rests mean hi == lo (both empty means hi == lo == true:
      // the gate is a tautological decision); either way the node would be
      // collapsed in a reduced OBDD.
      if (shape.rest[0] == shape.rest[1]) {
        report_.Add(Severity::kError, rules::kObddReduced, n,
                    "variable " + VarName(shape.var),
                    "decision on variable " + VarName(shape.var) +
                        " has identical hi and lo branches (node is "
                        "redundant)");
      }
    }
  }

  void EnsureSolver() {
    if (solver_) return;
    encoder_ = std::make_unique<CircuitCnf>(mgr_.num_vars());
    encoder_->Encode(mgr_, root_);
    solver_ = std::make_unique<SatSolver>();
    solver_->AddCnf(encoder_->cnf());
  }

  NnfManager& mgr_;
  NnfId root_;
  const NnfAnalysisOptions& options_;
  DiagnosticReport& report_;
  std::vector<NnfId> order_;
  std::unique_ptr<CircuitCnf> encoder_;
  std::unique_ptr<SatSolver> solver_;
};

}  // namespace

void AnalyzeNnf(NnfManager& mgr, NnfId root, const NnfAnalysisOptions& options,
                DiagnosticReport& report) {
  NnfAnalysis(mgr, root, options, report).Run();
}

}  // namespace tbc
