#ifndef TBC_ANALYSIS_NNF_ANALYZER_H_
#define TBC_ANALYSIS_NNF_ANALYZER_H_

#include <cstddef>

#include "analysis/diagnostics.h"
#include "nnf/nnf.h"

namespace tbc {

/// Which rung of the paper's §3 property ladder a circuit claims to sit on.
/// Each dialect fixes the set of rules AnalyzeNnf enforces and the severity
/// of smoothness (a d-DNNF emitted by the top-down compiler is legitimately
/// non-smooth — the counting queries apply gap factors — so smoothness is a
/// warning there and an error only for kSmoothDdnnf).
enum class NnfDialect {
  kNnf,           // well-formedness only
  kDnnf,          // + decomposability
  kDdnnf,         // + determinism (smoothness reported as a warning)
  kSmoothDdnnf,   // + smoothness as an error
  kDecisionDnnf,  // decomposability + decision form (compiler output)
  kObdd,          // decision form + global variable order + reducedness
};

const char* NnfDialectName(NnfDialect d);
/// Parses "nnf", "dnnf", "ddnnf", "sd-dnnf", "dec-dnnf", "obdd".
bool ParseNnfDialect(const char* name, NnfDialect* out);

struct NnfAnalysisOptions {
  NnfDialect dialect = NnfDialect::kDdnnf;
  /// Decide or-input disjointness with the CDCL solver when the syntactic
  /// fast path (complementary anchored literals) cannot prove it. Without
  /// SAT, unproved pairs are reported as ddnnf.unverified warnings.
  bool sat_determinism = true;
  /// Cap on SolveAssuming calls per analysis; past it the analyzer adds one
  /// ddnnf.unverified warning instead of solving further pairs.
  size_t max_sat_checks = 4096;
  /// Declared variable count (e.g. from a .nnf header); literal variables at
  /// or above it are flagged. 0 = derive from the manager.
  size_t expected_num_vars = 0;
};

/// Statically verifies the invariant ladder for the subcircuit at `root`,
/// appending one diagnostic per offending node to `report`. No query is
/// evaluated; determinism uses SAT-backed disjointness with a syntactic
/// fast path, everything else is a linear structural pass.
void AnalyzeNnf(NnfManager& mgr, NnfId root, const NnfAnalysisOptions& options,
                DiagnosticReport& report);

}  // namespace tbc

#endif  // TBC_ANALYSIS_NNF_ANALYZER_H_
