#include "analysis/tseitin.h"

namespace tbc {

CircuitCnf::CircuitCnf(size_t num_input_vars)
    : num_input_vars_(num_input_vars),
      next_var_(static_cast<Var>(num_input_vars)) {
  cnf_.EnsureVars(num_input_vars);
}

Var CircuitCnf::FreshVar() {
  const Var v = next_var_++;
  cnf_.EnsureVars(v + 1);
  return v;
}

Lit CircuitCnf::Encode(const NnfManager& mgr, NnfId root) {
  for (NnfId n : mgr.TopologicalOrder(root)) {
    if (lit_of_.count(n) != 0) continue;
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse: {
        const Lit g = Pos(FreshVar());
        cnf_.AddClause({~g});
        lit_of_.emplace(n, g);
        break;
      }
      case NnfManager::Kind::kTrue: {
        const Lit g = Pos(FreshVar());
        cnf_.AddClause({g});
        lit_of_.emplace(n, g);
        break;
      }
      case NnfManager::Kind::kLiteral:
        lit_of_.emplace(n, mgr.lit(n));
        break;
      case NnfManager::Kind::kAnd: {
        // g <-> c1 & ... & ck.
        const Lit g = Pos(FreshVar());
        Clause reverse = {g};
        for (NnfId c : mgr.children(n)) {
          const Lit cl = lit_of_.at(c);
          cnf_.AddClause({~g, cl});
          reverse.push_back(~cl);
        }
        cnf_.AddClause(std::move(reverse));
        lit_of_.emplace(n, g);
        break;
      }
      case NnfManager::Kind::kOr: {
        // g <-> c1 | ... | ck.
        const Lit g = Pos(FreshVar());
        Clause forward = {~g};
        for (NnfId c : mgr.children(n)) {
          const Lit cl = lit_of_.at(c);
          cnf_.AddClause({g, ~cl});
          forward.push_back(cl);
        }
        cnf_.AddClause(std::move(forward));
        lit_of_.emplace(n, g);
        break;
      }
    }
  }
  return lit_of_.at(root);
}

}  // namespace tbc
