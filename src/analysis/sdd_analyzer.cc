#include "analysis/sdd_analyzer.h"

#include <unordered_map>
#include <unordered_set>

#include "analysis/rules.h"
#include "analysis/tseitin.h"
#include "base/strings.h"
#include "nnf/nnf.h"
#include "sat/solver.h"

namespace tbc {

namespace {

std::string ElementPair(size_t i, size_t j) {
  return "elements " + std::to_string(i) + " and " + std::to_string(j);
}

// Renders a SAT model restricted to the variables below `v` in the vtree.
std::string ModelOverVtree(const Assignment& model, const Vtree& vtree,
                           VtreeId v) {
  std::string out;
  size_t shown = 0;
  for (Var x : vtree.VarsBelow(v)) {
    if (shown == 16) return out + " ...";
    if (!out.empty()) out += " ";
    out += Lit(x, x < model.size() && model[x]).ToString();
    ++shown;
  }
  return out;
}

}  // namespace

void AnalyzeSdd(SddManager& mgr, SddId root, const SddAnalysisOptions& options,
                DiagnosticReport& report) {
  const Vtree& vtree = mgr.vtree();
  std::vector<SddId> stack = {root};
  std::unordered_set<SddId> seen;
  while (!stack.empty()) {
    const SddId f = stack.back();
    stack.pop_back();
    if (mgr.IsConstant(f) || !seen.insert(f).second) continue;
    if (mgr.IsLiteral(f)) {
      const VtreeId v = mgr.vtree_node(f);
      if (!vtree.IsLeaf(v) || vtree.var(v) != mgr.literal(f).var()) {
        report.Add(Severity::kError, rules::kSddStructured, f,
                   "variable " + std::to_string(mgr.literal(f).var() + 1),
                   "literal node does not sit on its variable's vtree leaf");
      }
      continue;
    }
    const VtreeId v = mgr.vtree_node(f);
    // Copied, not referenced: the partition check below runs apply, which
    // may grow the manager's node table and invalidate references into it.
    const std::vector<std::pair<SddId, SddId>> elements = mgr.elements(f);
    if (vtree.IsLeaf(v)) {
      report.Add(Severity::kError, rules::kSddStructured, f, "",
                 "decision node respects a vtree leaf");
      continue;
    }
    if (elements.empty()) {
      report.Add(Severity::kError, rules::kSddStructured, f, "",
                 "decision node with an empty partition");
      continue;
    }
    // Vtree-respecting structure: primes under left(v), subs under right(v).
    for (size_t i = 0; i < elements.size(); ++i) {
      const auto& [p, s] = elements[i];
      if (!mgr.IsConstant(p) &&
          !vtree.IsAncestorOrSelf(vtree.left(v), mgr.vtree_node(p))) {
        report.Add(Severity::kError, rules::kSddStructured, f,
                   "element " + std::to_string(i),
                   "prime is not over the left vtree of its decision node");
      }
      if (!mgr.IsConstant(s) &&
          !vtree.IsAncestorOrSelf(vtree.right(v), mgr.vtree_node(s))) {
        report.Add(Severity::kError, rules::kSddStructured, f,
                   "element " + std::to_string(i),
                   "sub is not over the right vtree of its decision node");
      }
      if (p == mgr.False()) {
        report.Add(Severity::kError, rules::kSddPartition, f,
                   "element " + std::to_string(i), "false prime");
      }
      stack.push_back(p);
      stack.push_back(s);
    }
    // Compression: subs pairwise distinct.
    for (size_t i = 0; i < elements.size(); ++i) {
      for (size_t j = i + 1; j < elements.size(); ++j) {
        if (elements[i].second == elements[j].second) {
          report.Add(Severity::kError, rules::kSddCompressed, f,
                     ElementPair(i, j),
                     "two elements share the same sub (node is not "
                     "compressed)");
        }
      }
    }
    // Trimming rules.
    if (elements.size() == 1) {
      report.Add(Severity::kError, rules::kSddTrimmed, f, "",
                 "single-element decision {(true, s)} should be replaced by "
                 "its sub");
    } else if (elements.size() == 2) {
      const bool sub_true_false =
          (elements[0].second == mgr.True() && elements[1].second == mgr.False()) ||
          (elements[0].second == mgr.False() && elements[1].second == mgr.True());
      if (sub_true_false) {
        report.Add(Severity::kError, rules::kSddTrimmed, f, "",
                   "decision {(p, true), (~p, false)} should be replaced by "
                   "its prime");
      }
    }
    // Strong determinism (Fig 9): primes disjoint and exhaustive. The
    // manager is canonical, so apply decides both questions exactly.
    if (options.check_partition) {
      SddId prime_union = mgr.False();
      for (size_t i = 0; i < elements.size(); ++i) {
        for (size_t j = i + 1; j < elements.size(); ++j) {
          if (mgr.Conjoin(elements[i].first, elements[j].first) != mgr.False()) {
            report.Add(Severity::kError, rules::kSddPartition, f,
                       ElementPair(i, j),
                       "primes overlap (strong determinism broken)");
          }
        }
        prime_union = mgr.Disjoin(prime_union, elements[i].first);
      }
      if (prime_union != mgr.True()) {
        report.Add(Severity::kError, rules::kSddPartition, f, "",
                   "primes are not exhaustive over the left vtree");
      }
    }
  }
}

Result<std::vector<SddFileNode>> ParseSddFileGraph(const std::string& text,
                                                   const Vtree& vtree) {
  std::unordered_map<uint32_t, VtreeId> vtree_at;
  for (VtreeId v = 0; v < vtree.num_nodes(); ++v) {
    vtree_at[vtree.position(v)] = v;
  }
  std::vector<SddFileNode> graph;
  std::unordered_map<uint32_t, uint32_t> index_of_file_id;
  bool saw_header = false;
  size_t line_no = 0;
  auto bad = [&](const std::string& what) {
    return Status::InvalidInput("line " + std::to_string(line_no) + ": " + what);
  };
  for (const std::string& raw : SplitChar(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == 'c' || line[0] == 'P') continue;
    const std::vector<std::string> tok = SplitWhitespace(line);
    if (tok[0] == "sdd" || tok[0] == "psdd-params") {
      saw_header = true;
      continue;
    }
    if (!saw_header) return bad("missing sdd header");
    SddFileNode node;
    uint64_t file_id = 0;
    if (tok.size() < 2 || !ParseUint64(tok[1], &file_id) ||
        file_id > UINT32_MAX) {
      return bad("bad node id");
    }
    node.file_id = static_cast<uint32_t>(file_id);
    if (tok[0] == "T" || tok[0] == "F") {
      if (tok.size() != 2) return bad("bad constant line");
      node.kind = tok[0][0];
    } else if (tok[0] == "L") {
      if (tok.size() != 4) return bad("bad literal line");
      node.kind = 'L';
      uint64_t pos = 0;
      int dimacs = 0;
      if (!ParseUint64(tok[2], &pos)) return bad("bad vtree position");
      if (!ParseInt(tok[3], &dimacs) || dimacs == 0) return bad("bad literal");
      node.lit = Lit::FromDimacs(dimacs);
      if (node.lit.var() >= vtree.num_vars()) {
        return bad("literal variable exceeds the vtree's " +
                   std::to_string(vtree.num_vars()) + " variables");
      }
      auto it = vtree_at.find(static_cast<uint32_t>(pos));
      if (it == vtree_at.end()) return bad("unknown vtree position");
      node.vtree = it->second;
    } else if (tok[0] == "D") {
      if (tok.size() < 4) return bad("bad decision line");
      node.kind = 'D';
      uint64_t pos = 0, k = 0;
      if (!ParseUint64(tok[2], &pos)) return bad("bad vtree position");
      auto it = vtree_at.find(static_cast<uint32_t>(pos));
      if (it == vtree_at.end()) return bad("unknown vtree position");
      node.vtree = it->second;
      if (!ParseUint64(tok[3], &k)) return bad("bad element count");
      if (tok.size() != 4 + 2 * k) {
        return bad("decision arity does not match element count");
      }
      for (size_t i = 0; i < k; ++i) {
        uint64_t pid = 0, sid = 0;
        if (!ParseUint64(tok[4 + 2 * i], &pid) ||
            !ParseUint64(tok[5 + 2 * i], &sid)) {
          return bad("bad element reference");
        }
        auto pit = index_of_file_id.find(static_cast<uint32_t>(pid));
        auto sit = index_of_file_id.find(static_cast<uint32_t>(sid));
        if (pit == index_of_file_id.end() || sit == index_of_file_id.end()) {
          return bad("forward or dangling element reference");
        }
        node.elements.push_back({pit->second, sit->second});
      }
    } else {
      return bad("unknown sdd line: " + std::string(line));
    }
    index_of_file_id[node.file_id] = static_cast<uint32_t>(graph.size());
    graph.push_back(std::move(node));
  }
  if (graph.empty()) return Status::InvalidInput("empty sdd file");
  return graph;
}

void AnalyzeSddFile(const std::string& text, const Vtree& vtree,
                    const SddAnalysisOptions& options, DiagnosticReport& report) {
  auto parsed = ParseSddFileGraph(text, vtree);
  if (!parsed.ok()) {
    report.Add(Severity::kError, rules::kSddParse, 0, "",
               parsed.status().message());
    return;
  }
  const std::vector<SddFileNode>& graph = *parsed;

  // Structural NNF translation (no canonicalization beyond hash-consing):
  // the semantic substrate for compression and partition checks.
  NnfManager nnf;
  // Touch every vtree variable so witness masks have stable width.
  for (Var v = 0; v < vtree.num_vars(); ++v) nnf.Literal(Pos(v));
  std::vector<NnfId> nnf_of(graph.size(), kInvalidNnf);
  for (size_t i = 0; i < graph.size(); ++i) {
    const SddFileNode& node = graph[i];
    switch (node.kind) {
      case 'T': nnf_of[i] = nnf.True(); break;
      case 'F': nnf_of[i] = nnf.False(); break;
      case 'L': nnf_of[i] = nnf.Literal(node.lit); break;
      case 'D': {
        std::vector<NnfId> parts;
        parts.reserve(node.elements.size());
        for (const auto& [p, s] : node.elements) {
          parts.push_back(nnf.And(nnf_of[p], nnf_of[s]));
        }
        nnf_of[i] = nnf.Or(std::move(parts));
        break;
      }
      default: break;
    }
  }

  CircuitCnf encoder(vtree.num_vars());
  SatSolver solver;
  size_t encoded_clauses = 0;
  auto solve_pair = [&](NnfId a, NnfId b, bool* both_sat) {
    const Lit la = encoder.Encode(nnf, a);
    const Lit lb = encoder.Encode(nnf, b);
    for (; encoded_clauses < encoder.cnf().num_clauses(); ++encoded_clauses) {
      solver.AddClause(encoder.cnf().clause(encoded_clauses));
    }
    solver.EnsureVars(encoder.cnf().num_vars());
    *both_sat = solver.SolveAssuming({la, lb}) == SatSolver::Outcome::kSat;
  };

  for (size_t i = 0; i < graph.size(); ++i) {
    const SddFileNode& node = graph[i];
    if (node.kind == 'L') {
      if (!vtree.IsLeaf(node.vtree) || vtree.var(node.vtree) != node.lit.var()) {
        report.Add(Severity::kError, rules::kSddStructured, node.file_id,
                   "variable " + std::to_string(node.lit.var() + 1),
                   "literal node does not sit on its variable's vtree leaf");
      }
      continue;
    }
    if (node.kind != 'D') continue;
    const VtreeId v = node.vtree;
    if (vtree.IsLeaf(v)) {
      report.Add(Severity::kError, rules::kSddStructured, node.file_id, "",
                 "decision node respects a vtree leaf");
      continue;
    }
    if (node.elements.empty()) {
      report.Add(Severity::kError, rules::kSddStructured, node.file_id, "",
                 "decision node with an empty partition");
      continue;
    }
    for (size_t e = 0; e < node.elements.size(); ++e) {
      const auto& [p, s] = node.elements[e];
      const SddFileNode& prime = graph[p];
      const SddFileNode& sub = graph[s];
      if ((prime.kind == 'L' || prime.kind == 'D') &&
          !vtree.IsAncestorOrSelf(vtree.left(v), prime.vtree)) {
        report.Add(Severity::kError, rules::kSddStructured, node.file_id,
                   "element " + std::to_string(e),
                   "prime is not over the left vtree of its decision node");
      }
      if ((sub.kind == 'L' || sub.kind == 'D') &&
          !vtree.IsAncestorOrSelf(vtree.right(v), sub.vtree)) {
        report.Add(Severity::kError, rules::kSddStructured, node.file_id,
                   "element " + std::to_string(e),
                   "sub is not over the right vtree of its decision node");
      }
      if (prime.kind == 'F' || nnf_of[p] == nnf.False()) {
        report.Add(Severity::kError, rules::kSddPartition, node.file_id,
                   "element " + std::to_string(e), "false prime");
      }
    }
    // Compression: structurally equal subs collapse to one NnfId.
    for (size_t a = 0; a < node.elements.size(); ++a) {
      for (size_t b = a + 1; b < node.elements.size(); ++b) {
        if (nnf_of[node.elements[a].second] == nnf_of[node.elements[b].second]) {
          report.Add(Severity::kError, rules::kSddCompressed, node.file_id,
                     ElementPair(a, b),
                     "two elements share the same sub (node is not "
                     "compressed)");
        }
      }
    }
    // Trimming rules.
    if (node.elements.size() == 1) {
      report.Add(Severity::kError, rules::kSddTrimmed, node.file_id, "",
                 "single-element decision {(true, s)} should be replaced by "
                 "its sub");
    } else if (node.elements.size() == 2) {
      const NnfId s0 = nnf_of[node.elements[0].second];
      const NnfId s1 = nnf_of[node.elements[1].second];
      if ((s0 == nnf.True() && s1 == nnf.False()) ||
          (s0 == nnf.False() && s1 == nnf.True())) {
        report.Add(Severity::kError, rules::kSddTrimmed, node.file_id, "",
                   "decision {(p, true), (~p, false)} should be replaced by "
                   "its prime");
      }
    }
    // Partition semantics, SAT-backed on the structural translation.
    if (options.check_partition) {
      for (size_t a = 0; a < node.elements.size(); ++a) {
        for (size_t b = a + 1; b < node.elements.size(); ++b) {
          bool overlap = false;
          solve_pair(nnf_of[node.elements[a].first],
                     nnf_of[node.elements[b].first], &overlap);
          if (overlap) {
            report.Add(Severity::kError, rules::kSddPartition, node.file_id,
                       ModelOverVtree(solver.model(), vtree, vtree.left(v)),
                       ElementPair(a, b) +
                           ": primes overlap (strong determinism broken)");
          }
        }
      }
      std::vector<NnfId> primes;
      primes.reserve(node.elements.size());
      for (const auto& [p, s] : node.elements) primes.push_back(nnf_of[p]);
      const NnfId all = nnf.Or(std::move(primes));
      const Lit out = encoder.Encode(nnf, all);
      for (; encoded_clauses < encoder.cnf().num_clauses(); ++encoded_clauses) {
        solver.AddClause(encoder.cnf().clause(encoded_clauses));
      }
      solver.EnsureVars(encoder.cnf().num_vars());
      if (solver.SolveAssuming({~out}) == SatSolver::Outcome::kSat) {
        report.Add(Severity::kError, rules::kSddPartition, node.file_id,
                   ModelOverVtree(solver.model(), vtree, vtree.left(v)),
                   "primes are not exhaustive over the left vtree");
      }
    }
  }
}

}  // namespace tbc
