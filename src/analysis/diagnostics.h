#ifndef TBC_ANALYSIS_DIAGNOSTICS_H_
#define TBC_ANALYSIS_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tbc {

/// How bad a finding is. Errors break a claimed tractability property (a
/// query answer computed on the circuit may be wrong); warnings flag
/// conditions that are legal but suspicious (e.g. a d-DNNF that is not
/// smooth, a PSDD parameter that shrinks the support below the base).
enum class Severity : uint8_t { kError, kWarning, kNote };

const char* SeverityName(Severity s);

/// One analyzer finding. `rule_id` is a stable dotted identifier from
/// analysis/rules.h ("dnnf.decomposable", "sdd.compressed", ...); `node_id`
/// is the offending node in whatever id space the analyzed artifact uses
/// (NnfId, SddId, PsddId, or a file node id); `witness` is machine-checkable
/// evidence when the rule can produce one (a shared variable, a satisfying
/// assignment for two or-inputs, an element index).
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule_id;
  uint64_t node_id = 0;
  std::string witness;
  std::string message;
};

/// Collects diagnostics from one analysis run. All analyzers append into a
/// report instead of returning bools or aborting, so callers can render the
/// full list (CLI), assert on specific rules (tests), or abort on the first
/// error (TBC_VALIDATE hooks).
class DiagnosticReport {
 public:
  /// Appends a diagnostic; drops it (but still counts it) past the cap.
  void Add(Diagnostic d);
  /// Convenience used by every rule implementation.
  void Add(Severity severity, const char* rule_id, uint64_t node_id,
           std::string witness, std::string message);

  /// No error-severity findings (warnings/notes do not dirty a report).
  bool clean() const { return num_errors_ == 0; }
  size_t num_errors() const { return num_errors_; }
  size_t num_warnings() const { return num_warnings_; }
  size_t size() const { return diagnostics_.size(); }
  bool empty() const { return diagnostics_.empty(); }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// True iff some retained diagnostic carries `rule_id`.
  bool HasRule(const std::string& rule_id) const;
  /// First retained diagnostic for `rule_id`, or nullptr.
  const Diagnostic* FindRule(const std::string& rule_id) const;

  /// At most this many diagnostics are retained (the counters keep going);
  /// one broken invariant often fires on thousands of nodes and the first
  /// few witnesses are what a human needs.
  void set_max_diagnostics(size_t cap) { max_diagnostics_ = cap; }

  /// Renders one line per diagnostic:
  ///   <subject>: error[dnnf.decomposable] node 7: ... (witness: var 3)
  std::string ToText(const std::string& subject) const;
  /// Renders a JSON object {"subject": ..., "clean": ..., "diagnostics":
  /// [...]} for machine consumers of tbc_lint --format=json.
  std::string ToJson(const std::string& subject) const;

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t num_errors_ = 0;
  size_t num_warnings_ = 0;
  size_t max_diagnostics_ = 64;
};

}  // namespace tbc

#endif  // TBC_ANALYSIS_DIAGNOSTICS_H_
