#ifndef TBC_ANALYSIS_SDD_ANALYZER_H_
#define TBC_ANALYSIS_SDD_ANALYZER_H_

#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.h"
#include "base/result.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {

struct SddAnalysisOptions {
  /// Verify the partition semantics of every decision node (primes pairwise
  /// disjoint and exhaustive). On the manager this uses canonical apply; on
  /// raw files it uses SAT over a structural NNF translation.
  bool check_partition = true;
};

/// Verifies the SDD invariants of the subgraph at `root` against the
/// manager's vtree: vtree-respecting structure (sdd.structured), compressed
/// and trimmed form (sdd.compressed / sdd.trimmed), and the strong
/// determinism of Fig 9 — primes non-false, pairwise disjoint, exhaustive
/// (sdd.primes-partition). Takes the manager non-const because partition
/// checking uses (polytime, canonical) apply operations.
void AnalyzeSdd(SddManager& mgr, SddId root, const SddAnalysisOptions& options,
                DiagnosticReport& report);

/// One node of a raw .sdd file, before any canonicalization. Element ids
/// refer to earlier entries of the graph vector.
struct SddFileNode {
  char kind = '?';  // 'T', 'F', 'L', 'D'
  Lit lit;          // for 'L'
  VtreeId vtree = kInvalidVtree;
  std::vector<std::pair<uint32_t, uint32_t>> elements;  // for 'D'
  uint32_t file_id = 0;                                 // id used in the file
};

/// Parses the SDD-library exchange format into a flat graph WITHOUT
/// rebuilding nodes through the manager (ReadSdd re-canonicalizes on the way
/// in, which would mask exactly the violations a linter exists to find).
/// The last node is the root. Fails only on unreadable syntax; structural
/// violations are left for AnalyzeSddFile.
Result<std::vector<SddFileNode>> ParseSddFileGraph(const std::string& text,
                                                   const Vtree& vtree);

/// Verifies the invariants of a raw .sdd file against `vtree`: everything
/// AnalyzeSdd checks, plus file-only degeneracies (false primes, empty
/// partitions). Partition semantics are decided by SAT on a structural NNF
/// translation of the file graph.
void AnalyzeSddFile(const std::string& text, const Vtree& vtree,
                    const SddAnalysisOptions& options, DiagnosticReport& report);

}  // namespace tbc

#endif  // TBC_ANALYSIS_SDD_ANALYZER_H_
