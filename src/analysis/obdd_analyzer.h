#ifndef TBC_ANALYSIS_OBDD_ANALYZER_H_
#define TBC_ANALYSIS_OBDD_ANALYZER_H_

#include "analysis/diagnostics.h"
#include "obdd/obdd.h"

namespace tbc {

/// Independently certifies that the subgraph at `root` is a reduced ordered
/// BDD: every edge descends strictly in the manager's variable order
/// (obdd.ordered), no decision has identical branches, and no two reachable
/// nodes are structurally identical (obdd.reduced). The ObddManager enforces
/// all of this by construction — the analyzer re-derives it from the node
/// table alone so a unique-table bug cannot silently corrupt canonicity.
void AnalyzeObdd(const ObddManager& mgr, ObddId root, DiagnosticReport& report);

}  // namespace tbc

#endif  // TBC_ANALYSIS_OBDD_ANALYZER_H_
