#include "analysis/psdd_analyzer.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/rules.h"
#include "analysis/sdd_analyzer.h"
#include "base/strings.h"

namespace tbc {

namespace {

constexpr double kSumTolerance = 1e-6;

std::string ThetaString(double theta) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", theta);
  return buffer;
}

}  // namespace

void AnalyzePsdd(const Psdd& psdd, DiagnosticReport& report) {
  const Vtree& vtree = psdd.vtree();
  for (PsddId n = 0; n < psdd.num_nodes(); ++n) {
    const VtreeId v = psdd.vtree_node(n);
    switch (psdd.kind(n)) {
      case Psdd::Kind::kLiteral: {
        if (!vtree.IsLeaf(v) || vtree.var(v) != psdd.literal(n).var()) {
          report.Add(Severity::kError, rules::kPsddStructure, n,
                     "variable " + std::to_string(psdd.literal(n).var() + 1),
                     "literal node does not sit on its variable's vtree leaf");
        }
        break;
      }
      case Psdd::Kind::kTop: {
        if (!vtree.IsLeaf(v)) {
          report.Add(Severity::kError, rules::kPsddStructure, n, "",
                     "top node does not sit on a vtree leaf");
        }
        const double theta = psdd.theta_true(n);
        if (!(theta >= 0.0 && theta <= 1.0)) {
          report.Add(Severity::kError, rules::kPsddNormalized, n,
                     ThetaString(theta),
                     "Bernoulli parameter outside [0, 1]");
        } else if (theta == 0.0 || theta == 1.0) {
          report.Add(Severity::kWarning, rules::kPsddSupport, n,
                     ThetaString(theta),
                     "degenerate Bernoulli parameter removes models from the "
                     "base's support");
        }
        break;
      }
      case Psdd::Kind::kDecision: {
        if (vtree.IsLeaf(v)) {
          report.Add(Severity::kError, rules::kPsddStructure, n, "",
                     "decision node sits on a vtree leaf");
          break;
        }
        const auto& elements = psdd.elements(n);
        if (elements.empty()) {
          report.Add(Severity::kError, rules::kPsddStructure, n, "",
                     "decision node with an empty partition");
          break;
        }
        double total = 0.0;
        bool bad_theta = false;
        for (size_t i = 0; i < elements.size(); ++i) {
          const Psdd::Element& el = elements[i];
          // Normalized form: primes sit exactly on left(v), subs on
          // right(v) — pass-through nodes fill any vtree gap.
          if (psdd.vtree_node(el.prime) != vtree.left(v)) {
            report.Add(Severity::kError, rules::kPsddStructure, n,
                       "element " + std::to_string(i),
                       "prime is not normalized for the left vtree of its "
                       "decision node");
          }
          if (psdd.vtree_node(el.sub) != vtree.right(v)) {
            report.Add(Severity::kError, rules::kPsddStructure, n,
                       "element " + std::to_string(i),
                       "sub is not normalized for the right vtree of its "
                       "decision node");
          }
          if (!(el.theta >= 0.0)) {
            bad_theta = true;
            report.Add(Severity::kError, rules::kPsddNormalized, n,
                       "element " + std::to_string(i) + ": " +
                           ThetaString(el.theta),
                       "negative element parameter");
          } else {
            total += el.theta;
            if (el.theta == 0.0) {
              report.Add(Severity::kWarning, rules::kPsddSupport, n,
                         "element " + std::to_string(i),
                         "zero element parameter removes the element's models "
                         "from the base's support");
            }
          }
        }
        if (!bad_theta && std::abs(total - 1.0) > kSumTolerance) {
          report.Add(Severity::kError, rules::kPsddNormalized, n,
                     "sum = " + ThetaString(total),
                     "element parameters do not sum to 1");
        }
        break;
      }
    }
  }
}

void AnalyzePsddFile(const std::string& text, const Vtree& vtree,
                     DiagnosticReport& report) {
  // The SDD body carries the structural invariants.
  SddAnalysisOptions sdd_options;
  AnalyzeSddFile(text, vtree, sdd_options, report);

  // Parameter lines are checked as distributions in isolation — the
  // structure they attach to lives in the body above.
  size_t line_no = 0;
  for (const std::string& raw : SplitChar(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] != 'P') continue;
    const std::vector<std::string> tok = SplitWhitespace(line);
    uint64_t node_id = 0;
    if (tok.size() < 3 || !ParseUint64(tok[1], &node_id)) {
      report.Add(Severity::kError, rules::kPsddParse, 0,
                 "line " + std::to_string(line_no),
                 "bad parameter line: " + std::string(line));
      continue;
    }
    std::vector<double> thetas;
    bool parse_ok = true;
    for (size_t i = 2; i < tok.size(); ++i) {
      double value = 0.0;
      if (!ParseDouble(tok[i], &value)) {
        report.Add(Severity::kError, rules::kPsddParse, node_id,
                   "line " + std::to_string(line_no),
                   "unreadable parameter: " + tok[i]);
        parse_ok = false;
        break;
      }
      thetas.push_back(value);
    }
    if (!parse_ok) continue;
    if (thetas.size() == 1) {
      // Single parameter: a ⊤-leaf Bernoulli or a 1-element decision —
      // either way it must lie in [0, 1] (and equal 1 when a decision).
      const double theta = thetas[0];
      if (!(theta >= 0.0 && theta <= 1.0)) {
        report.Add(Severity::kError, rules::kPsddNormalized, node_id,
                   ThetaString(theta), "Bernoulli parameter outside [0, 1]");
      } else if (theta == 0.0 || theta == 1.0) {
        report.Add(Severity::kWarning, rules::kPsddSupport, node_id,
                   ThetaString(theta),
                   "degenerate Bernoulli parameter removes models from the "
                   "base's support");
      }
      continue;
    }
    double total = 0.0;
    bool bad_theta = false;
    for (size_t i = 0; i < thetas.size(); ++i) {
      if (!(thetas[i] >= 0.0)) {
        bad_theta = true;
        report.Add(Severity::kError, rules::kPsddNormalized, node_id,
                   "element " + std::to_string(i) + ": " +
                       ThetaString(thetas[i]),
                   "negative element parameter");
      } else {
        total += thetas[i];
        if (thetas[i] == 0.0) {
          report.Add(Severity::kWarning, rules::kPsddSupport, node_id,
                     "element " + std::to_string(i),
                     "zero element parameter removes the element's models "
                     "from the base's support");
        }
      }
    }
    if (!bad_theta && std::abs(total - 1.0) > kSumTolerance) {
      report.Add(Severity::kError, rules::kPsddNormalized, node_id,
                 "sum = " + ThetaString(total),
                 "element parameters do not sum to 1");
    }
  }
}

}  // namespace tbc
