#ifndef TBC_ANALYSIS_TSEITIN_H_
#define TBC_ANALYSIS_TSEITIN_H_

#include <unordered_map>

#include "logic/cnf.h"
#include "nnf/nnf.h"

namespace tbc {

/// Incremental biconditional Tseitin encoding of NNF subcircuits, the CNF
/// substrate for the analyzer's SAT-backed semantic checks (or-input
/// disjointness for determinism, prime exhaustiveness for SDD partitions).
///
/// Circuit inputs keep their variable: the literal node for variable v maps
/// to CNF variable v. Every gate gets a fresh definition variable g with
/// full equivalence clauses (g <-> AND/OR of its inputs), so both g and ~g
/// may be assumed: SolveAssuming({LitOf(a), LitOf(b)}) decides whether the
/// functions of nodes a and b share a model, SolveAssuming({~LitOf(a)})
/// decides whether a is not valid.
class CircuitCnf {
 public:
  explicit CircuitCnf(size_t num_input_vars);

  /// Encodes the subcircuit at `root` (memoized; cheap when nodes were
  /// already encoded by earlier calls) and returns the CNF literal whose
  /// truth value equals the subcircuit's value.
  Lit Encode(const NnfManager& mgr, NnfId root);

  /// CNF literal of an already-encoded node (aborts when `n` was not
  /// reached by any Encode call).
  Lit LitOf(NnfId n) const { return lit_of_.at(n); }

  /// The accumulated clauses (definitions of every encoded gate).
  const Cnf& cnf() const { return cnf_; }
  /// Number of circuit input variables (CNF vars below this are inputs).
  size_t num_input_vars() const { return num_input_vars_; }

 private:
  Var FreshVar();

  size_t num_input_vars_;
  Var next_var_;
  Cnf cnf_;
  std::unordered_map<NnfId, Lit> lit_of_;
};

}  // namespace tbc

#endif  // TBC_ANALYSIS_TSEITIN_H_
