#ifndef TBC_LOGIC_FORMULA_H_
#define TBC_LOGIC_FORMULA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/cnf.h"
#include "logic/lit.h"

namespace tbc {

/// Handle to a node in a FormulaStore (a shared Boolean-formula DAG).
using FormulaId = uint32_t;

/// A store of Boolean formulas with structure sharing (hash consing).
///
/// Formulas are arbitrary propositional sentences: variables, negation,
/// conjunction, disjunction (plus sugar: implication, equivalence, XOR,
/// cardinality). They are the front-end language for the encodings in this
/// library. Two compilation paths exist: Tseitin transformation to CNF
/// (ToCnfTseitin, introduces auxiliary variables but is equisatisfiable and
/// model-count preserving over the original variables), and direct
/// bottom-up compilation by the OBDD/SDD packages.
class FormulaStore {
 public:
  enum class Kind : uint8_t { kFalse, kTrue, kVar, kNot, kAnd, kOr };

  FormulaStore();

  /// Constant false / true.
  FormulaId False() const { return 0; }
  FormulaId True() const { return 1; }

  /// Formula for variable v (creates the variable if new).
  FormulaId VarNode(Var v);
  /// Formula for a literal.
  FormulaId LitNode(Lit l) { return l.positive() ? VarNode(l.var()) : Not(VarNode(l.var())); }

  FormulaId Not(FormulaId f);
  FormulaId And(FormulaId a, FormulaId b);
  FormulaId Or(FormulaId a, FormulaId b);
  FormulaId And(const std::vector<FormulaId>& fs);
  FormulaId Or(const std::vector<FormulaId>& fs);
  FormulaId Implies(FormulaId a, FormulaId b) { return Or(Not(a), b); }
  FormulaId Iff(FormulaId a, FormulaId b);
  FormulaId Xor(FormulaId a, FormulaId b) { return Not(Iff(a, b)); }
  /// Exactly one of fs holds.
  FormulaId ExactlyOne(const std::vector<FormulaId>& fs);
  /// At most one of fs holds (pairwise encoding).
  FormulaId AtMostOne(const std::vector<FormulaId>& fs);

  /// Majority gate: at least ceil((n+1)/2) of fs hold (strict majority).
  FormulaId Majority(const std::vector<FormulaId>& fs);
  /// At least k of fs hold.
  FormulaId AtLeastK(const std::vector<FormulaId>& fs, size_t k);

  Kind kind(FormulaId f) const { return nodes_[f].kind; }
  Var var(FormulaId f) const { return nodes_[f].var; }
  FormulaId child(FormulaId f, size_t i) const { return nodes_[f].children[i]; }
  size_t num_children(FormulaId f) const { return nodes_[f].children.size(); }

  /// Number of variables mentioned (max var + 1).
  size_t num_vars() const { return num_vars_; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Truth value under a complete assignment.
  bool Evaluate(FormulaId f, const Assignment& assignment) const;

  /// Tseitin transformation. The result has the original variables
  /// 0..num_vars()-1 plus one auxiliary variable per internal gate; the
  /// formula's root is asserted true. Every model of `f` extends to exactly
  /// one model of the CNF, so model counts over the original variables are
  /// preserved.
  Cnf ToCnfTseitin(FormulaId f) const;

  /// Human-readable rendering (for debugging and docs).
  std::string ToString(FormulaId f) const;

 private:
  struct Node {
    Kind kind;
    Var var = kInvalidVar;          // for kVar
    std::vector<FormulaId> children;  // for kNot/kAnd/kOr
  };

  FormulaId Intern(Node node);
  static uint64_t NodeKey(const Node& node);

  std::vector<Node> nodes_;
  std::unordered_map<uint64_t, std::vector<FormulaId>> index_;
  size_t num_vars_ = 0;
};

}  // namespace tbc

#endif  // TBC_LOGIC_FORMULA_H_
