#include "logic/simplify.h"

#include <algorithm>
#include <set>

namespace tbc {

PreprocessResult Preprocess(const Cnf& cnf) {
  PreprocessResult result;
  result.simplified = Cnf(cnf.num_vars());

  // Unit propagation to fixpoint on a working copy.
  std::vector<Clause> clauses(cnf.clauses().begin(), cnf.clauses().end());
  std::vector<int8_t> value(cnf.num_vars(), -1);  // -1 unset, 0/1 assigned
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Clause> next;
    next.reserve(clauses.size());
    for (const Clause& c : clauses) {
      Clause reduced;
      bool satisfied = false;
      for (Lit l : c) {
        const int8_t v = value[l.var()];
        if (v == -1) {
          reduced.push_back(l);
        } else if ((v == 1) == l.positive()) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (reduced.empty()) {
        result.unsat = true;
        return result;
      }
      if (reduced.size() == 1) {
        const Lit u = reduced[0];
        if (value[u.var()] == -1) {
          value[u.var()] = u.positive() ? 1 : 0;
          result.units.push_back(u);
          changed = true;
        }
        continue;
      }
      next.push_back(std::move(reduced));
    }
    clauses = std::move(next);
  }

  // Canonicalize, deduplicate.
  for (Clause& c : clauses) std::sort(c.begin(), c.end());
  std::sort(clauses.begin(), clauses.end());
  clauses.erase(std::unique(clauses.begin(), clauses.end()), clauses.end());

  // Subsumption: drop any clause with a (strict or equal) subset clause.
  // Clauses are processed shortest-first so subsumers are kept.
  std::stable_sort(clauses.begin(), clauses.end(),
                   [](const Clause& a, const Clause& b) {
                     return a.size() < b.size();
                   });
  std::vector<Clause> kept;
  for (const Clause& c : clauses) {
    bool subsumed = false;
    for (const Clause& k : kept) {
      if (std::includes(c.begin(), c.end(), k.begin(), k.end())) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(c);
  }
  for (Clause& c : kept) result.simplified.AddClause(std::move(c));
  return result;
}

std::vector<Lit> PureLiterals(const Cnf& cnf) {
  std::vector<int8_t> seen_pos(cnf.num_vars(), 0), seen_neg(cnf.num_vars(), 0);
  for (const Clause& c : cnf.clauses()) {
    for (Lit l : c) (l.positive() ? seen_pos : seen_neg)[l.var()] = 1;
  }
  std::vector<Lit> pure;
  for (Var v = 0; v < cnf.num_vars(); ++v) {
    if (seen_pos[v] && !seen_neg[v]) pure.push_back(Pos(v));
    if (seen_neg[v] && !seen_pos[v]) pure.push_back(Neg(v));
  }
  return pure;
}

Cnf Reassemble(const PreprocessResult& result) {
  Cnf out = result.simplified;
  if (result.unsat) {
    out.AddClause({Pos(0)});
    out.AddClause({Neg(0)});
    return out;
  }
  for (Lit u : result.units) out.AddClause({u});
  return out;
}

}  // namespace tbc
