#include "logic/formula.h"

#include <algorithm>

#include "base/check.h"
#include "base/hash.h"

namespace tbc {

FormulaStore::FormulaStore() {
  nodes_.push_back({Kind::kFalse, kInvalidVar, {}});  // id 0
  nodes_.push_back({Kind::kTrue, kInvalidVar, {}});   // id 1
}

uint64_t FormulaStore::NodeKey(const Node& node) {
  uint64_t h = HashCombine(0, static_cast<size_t>(node.kind));
  h = HashCombine(h, node.var);
  for (FormulaId c : node.children) h = HashCombine(h, c);
  return h;
}

FormulaId FormulaStore::Intern(Node node) {
  const uint64_t key = NodeKey(node);
  for (FormulaId id : index_[key]) {
    const Node& n = nodes_[id];
    if (n.kind == node.kind && n.var == node.var && n.children == node.children) {
      return id;
    }
  }
  const FormulaId id = static_cast<FormulaId>(nodes_.size());
  nodes_.push_back(std::move(node));
  index_[key].push_back(id);
  return id;
}

FormulaId FormulaStore::VarNode(Var v) {
  num_vars_ = std::max(num_vars_, static_cast<size_t>(v) + 1);
  return Intern({Kind::kVar, v, {}});
}

FormulaId FormulaStore::Not(FormulaId f) {
  if (f == False()) return True();
  if (f == True()) return False();
  if (kind(f) == Kind::kNot) return child(f, 0);  // double negation
  return Intern({Kind::kNot, kInvalidVar, {f}});
}

FormulaId FormulaStore::And(FormulaId a, FormulaId b) {
  return And(std::vector<FormulaId>{a, b});
}

FormulaId FormulaStore::Or(FormulaId a, FormulaId b) {
  return Or(std::vector<FormulaId>{a, b});
}

FormulaId FormulaStore::And(const std::vector<FormulaId>& fs) {
  std::vector<FormulaId> kids;
  for (FormulaId f : fs) {
    if (f == False()) return False();
    if (f == True()) continue;
    // Flatten nested conjunctions.
    if (kind(f) == Kind::kAnd) {
      for (FormulaId c : nodes_[f].children) kids.push_back(c);
    } else {
      kids.push_back(f);
    }
  }
  std::sort(kids.begin(), kids.end());
  kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
  if (kids.empty()) return True();
  if (kids.size() == 1) return kids[0];
  return Intern({Kind::kAnd, kInvalidVar, std::move(kids)});
}

FormulaId FormulaStore::Or(const std::vector<FormulaId>& fs) {
  std::vector<FormulaId> kids;
  for (FormulaId f : fs) {
    if (f == True()) return True();
    if (f == False()) continue;
    if (kind(f) == Kind::kOr) {
      for (FormulaId c : nodes_[f].children) kids.push_back(c);
    } else {
      kids.push_back(f);
    }
  }
  std::sort(kids.begin(), kids.end());
  kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
  if (kids.empty()) return False();
  if (kids.size() == 1) return kids[0];
  return Intern({Kind::kOr, kInvalidVar, std::move(kids)});
}

FormulaId FormulaStore::Iff(FormulaId a, FormulaId b) {
  return Or(And(a, b), And(Not(a), Not(b)));
}

FormulaId FormulaStore::ExactlyOne(const std::vector<FormulaId>& fs) {
  return And(Or(fs), AtMostOne(fs));
}

FormulaId FormulaStore::AtMostOne(const std::vector<FormulaId>& fs) {
  std::vector<FormulaId> parts;
  for (size_t i = 0; i < fs.size(); ++i) {
    for (size_t j = i + 1; j < fs.size(); ++j) {
      parts.push_back(Or(Not(fs[i]), Not(fs[j])));
    }
  }
  return And(parts);
}

FormulaId FormulaStore::Majority(const std::vector<FormulaId>& fs) {
  return AtLeastK(fs, fs.size() / 2 + 1);
}

FormulaId FormulaStore::AtLeastK(const std::vector<FormulaId>& fs, size_t k) {
  // DP over prefixes: reach[j] = "at least j of fs[0..i) hold".
  if (k == 0) return True();
  if (k > fs.size()) return False();
  std::vector<FormulaId> reach(k + 1);
  reach[0] = True();
  for (size_t j = 1; j <= k; ++j) reach[j] = False();
  for (FormulaId f : fs) {
    for (size_t j = k; j >= 1; --j) {
      reach[j] = Or(reach[j], And(reach[j - 1], f));
    }
  }
  return reach[k];
}

bool FormulaStore::Evaluate(FormulaId f, const Assignment& assignment) const {
  // Iterative DAG evaluation with memoization.
  std::vector<int8_t> memo(nodes_.size(), -1);
  std::vector<FormulaId> stack = {f};
  while (!stack.empty()) {
    FormulaId cur = stack.back();
    if (memo[cur] != -1) {
      stack.pop_back();
      continue;
    }
    const Node& n = nodes_[cur];
    switch (n.kind) {
      case Kind::kFalse:
        memo[cur] = 0;
        stack.pop_back();
        break;
      case Kind::kTrue:
        memo[cur] = 1;
        stack.pop_back();
        break;
      case Kind::kVar:
        TBC_DCHECK(n.var < assignment.size());
        memo[cur] = assignment[n.var] ? 1 : 0;
        stack.pop_back();
        break;
      default: {
        bool ready = true;
        for (FormulaId c : n.children) {
          if (memo[c] == -1) {
            stack.push_back(c);
            ready = false;
          }
        }
        if (!ready) break;
        stack.pop_back();
        if (n.kind == Kind::kNot) {
          memo[cur] = memo[n.children[0]] ? 0 : 1;
        } else if (n.kind == Kind::kAnd) {
          int8_t v = 1;
          for (FormulaId c : n.children) v = static_cast<int8_t>(v & memo[c]);
          memo[cur] = v;
        } else {
          int8_t v = 0;
          for (FormulaId c : n.children) v = static_cast<int8_t>(v | memo[c]);
          memo[cur] = v;
        }
      }
    }
  }
  return memo[f] == 1;
}

Cnf FormulaStore::ToCnfTseitin(FormulaId f) const {
  Cnf cnf(num_vars_);
  // Gate literal for each node, computed bottom-up over reachable nodes.
  std::vector<Lit> gate(nodes_.size(), Lit());
  std::vector<int8_t> visited(nodes_.size(), 0);
  size_t next_aux = num_vars_;

  // Constants get dedicated auxiliary variables asserted to their value the
  // first time they are needed.
  std::vector<FormulaId> order;
  std::vector<FormulaId> stack = {f};
  while (!stack.empty()) {
    FormulaId cur = stack.back();
    stack.pop_back();
    if (visited[cur]) continue;
    visited[cur] = 1;
    order.push_back(cur);
    for (FormulaId c : nodes_[cur].children) stack.push_back(c);
  }
  // Process children before parents.
  std::reverse(order.begin(), order.end());
  // Reverse DFS preorder does not guarantee topological order for DAGs;
  // sort by id instead (children always have smaller ids than parents by
  // construction of the store).
  std::sort(order.begin(), order.end());

  for (FormulaId cur : order) {
    const Node& n = nodes_[cur];
    switch (n.kind) {
      case Kind::kFalse:
      case Kind::kTrue: {
        Var aux = static_cast<Var>(next_aux++);
        Lit g = Pos(aux);
        cnf.AddClause({n.kind == Kind::kTrue ? g : ~g});
        gate[cur] = g;
        break;
      }
      case Kind::kVar:
        gate[cur] = Pos(n.var);
        break;
      case Kind::kNot:
        gate[cur] = ~gate[n.children[0]];
        break;
      case Kind::kAnd: {
        Var aux = static_cast<Var>(next_aux++);
        Lit g = Pos(aux);
        Clause big{g};
        for (FormulaId c : n.children) {
          cnf.AddClause({~g, gate[c]});  // g -> c
          big.push_back(~gate[c]);       // all c -> g
        }
        cnf.AddClause(big);
        gate[cur] = g;
        break;
      }
      case Kind::kOr: {
        Var aux = static_cast<Var>(next_aux++);
        Lit g = Pos(aux);
        Clause big{~g};
        for (FormulaId c : n.children) {
          cnf.AddClause({g, ~gate[c]});  // c -> g
          big.push_back(gate[c]);        // g -> some c
        }
        cnf.AddClause(big);
        gate[cur] = g;
        break;
      }
    }
  }
  cnf.AddClause({gate[f]});
  return cnf;
}

std::string FormulaStore::ToString(FormulaId f) const {
  const Node& n = nodes_[f];
  switch (n.kind) {
    case Kind::kFalse:
      return "false";
    case Kind::kTrue:
      return "true";
    case Kind::kVar:
      return "x" + std::to_string(n.var);
    case Kind::kNot:
      return "~" + ToString(n.children[0]);
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = n.kind == Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < n.children.size(); ++i) {
        if (i > 0) out += sep;
        out += ToString(n.children[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace tbc
