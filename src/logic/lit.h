#ifndef TBC_LOGIC_LIT_H_
#define TBC_LOGIC_LIT_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/check.h"

namespace tbc {

/// Boolean variable, 0-based. DIMACS variable v maps to Var v-1.
using Var = uint32_t;

constexpr Var kInvalidVar = static_cast<Var>(-1);

/// A literal: a variable together with a sign. Encoded minisat-style as
/// 2*var + (negative ? 1 : 0), so literals index arrays directly.
class Lit {
 public:
  Lit() : code_(kInvalidCode) {}
  Lit(Var var, bool positive) : code_(2 * var + (positive ? 0u : 1u)) {}

  /// From a DIMACS-style signed integer (nonzero; |d|-1 is the variable).
  static Lit FromDimacs(int d) {
    TBC_CHECK(d != 0);
    return Lit(static_cast<Var>(std::abs(d) - 1), d > 0);
  }
  /// From the raw 2*var+sign encoding.
  static Lit FromCode(uint32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  Var var() const { return code_ >> 1; }
  bool positive() const { return (code_ & 1u) == 0; }
  /// Raw encoding in [0, 2*num_vars): useful as an array index.
  uint32_t code() const { return code_; }
  bool valid() const { return code_ != kInvalidCode; }

  /// Signed DIMACS integer (±(var+1)).
  int ToDimacs() const {
    int v = static_cast<int>(var()) + 1;
    return positive() ? v : -v;
  }

  Lit operator~() const { return FromCode(code_ ^ 1u); }

  friend bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }
  friend bool operator<(Lit a, Lit b) { return a.code_ < b.code_; }

  std::string ToString() const { return std::to_string(ToDimacs()); }

 private:
  static constexpr uint32_t kInvalidCode = static_cast<uint32_t>(-1);
  uint32_t code_;
};

/// Convenience constructors.
inline Lit Pos(Var v) { return Lit(v, true); }
inline Lit Neg(Var v) { return Lit(v, false); }

/// A complete truth assignment over variables 0..n-1.
using Assignment = std::vector<bool>;

/// Evaluates a literal under a complete assignment.
inline bool Eval(Lit l, const Assignment& a) {
  TBC_DCHECK(l.var() < a.size());
  return a[l.var()] == l.positive();
}

/// Per-literal real weights for weighted model counting. Indexed by
/// Lit::code(). Defaults to 1.0 for every literal (so WMC == #SAT).
class WeightMap {
 public:
  /// Weights for `num_vars` variables, all initialized to 1.0.
  explicit WeightMap(size_t num_vars) : w_(2 * num_vars, 1.0) {}

  double operator[](Lit l) const {
    TBC_DCHECK(l.code() < w_.size());
    return w_[l.code()];
  }
  void Set(Lit l, double weight) {
    TBC_DCHECK(l.code() < w_.size());
    w_[l.code()] = weight;
  }
  size_t num_vars() const { return w_.size() / 2; }

 private:
  std::vector<double> w_;
};

}  // namespace tbc

#endif  // TBC_LOGIC_LIT_H_
