#include "logic/cnf.h"

#include <algorithm>

#include "base/strings.h"

namespace tbc {

void Cnf::AddClause(Clause clause) {
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  // Tautology check: sorted order puts x (code 2v) right before ~x (2v+1).
  for (size_t i = 0; i + 1 < clause.size(); ++i) {
    if (clause[i].var() == clause[i + 1].var()) return;
  }
  for (Lit l : clause) EnsureVars(l.var() + 1);
  clauses_.push_back(std::move(clause));
}

void Cnf::AddClauseDimacs(const std::vector<int>& dimacs_lits) {
  Clause c;
  c.reserve(dimacs_lits.size());
  for (int d : dimacs_lits) c.push_back(Lit::FromDimacs(d));
  AddClause(std::move(c));
}

bool Cnf::Evaluate(const Assignment& assignment) const {
  for (const Clause& c : clauses_) {
    bool sat = false;
    for (Lit l : c) {
      if (Eval(l, assignment)) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

Cnf Cnf::Condition(Lit l) const {
  Cnf out(num_vars_);
  for (const Clause& c : clauses_) {
    bool satisfied = false;
    Clause reduced;
    for (Lit x : c) {
      if (x == l) {
        satisfied = true;
        break;
      }
      if (x != ~l) reduced.push_back(x);
    }
    if (!satisfied) out.clauses_.push_back(std::move(reduced));
  }
  return out;
}

Cnf Cnf::Conjoin(const Cnf& a, const Cnf& b) {
  Cnf out(std::max(a.num_vars_, b.num_vars_));
  out.clauses_ = a.clauses_;
  out.clauses_.insert(out.clauses_.end(), b.clauses_.begin(), b.clauses_.end());
  return out;
}

bool Cnf::HasEmptyClause() const {
  for (const Clause& c : clauses_) {
    if (c.empty()) return true;
  }
  return false;
}

uint64_t Cnf::CountModelsBruteForce() const {
  TBC_CHECK_MSG(num_vars_ <= 30, "brute-force count limited to 30 variables");
  uint64_t count = 0;
  Assignment a(num_vars_, false);
  const uint64_t total = 1ull << num_vars_;
  for (uint64_t bits = 0; bits < total; ++bits) {
    for (size_t v = 0; v < num_vars_; ++v) a[v] = (bits >> v) & 1u;
    if (Evaluate(a)) ++count;
  }
  return count;
}

Result<Cnf> Cnf::ParseDimacs(const std::string& text) {
  Cnf cnf;
  bool saw_header = false;
  uint64_t declared_vars = 0;
  std::vector<int> pending;
  size_t line_no = 0;
  for (const std::string& line : SplitChar(text, '\n')) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == 'c' || stripped[0] == '%') continue;
    if (stripped[0] == 'p') {
      std::vector<std::string> tok = SplitWhitespace(stripped);
      if (tok.size() < 4 || tok[1] != "cnf") {
        return Status::InvalidInput("line " + std::to_string(line_no) +
                                    ": bad DIMACS header: " + line);
      }
      if (!ParseUint64(tok[2], &declared_vars) ||
          declared_vars > (1u << 28)) {
        return Status::InvalidInput("line " + std::to_string(line_no) +
                                    ": bad variable count '" + tok[2] + "'");
      }
      saw_header = true;
      continue;
    }
    for (const std::string& tok : SplitWhitespace(stripped)) {
      int v = 0;
      if (!ParseInt(tok, &v) || v < -(1 << 28) || v > (1 << 28)) {
        return Status::InvalidInput("line " + std::to_string(line_no) +
                                    ": bad DIMACS token: " + tok);
      }
      if (v == 0) {
        cnf.AddClauseDimacs(pending);
        pending.clear();
      } else {
        pending.push_back(v);
      }
    }
  }
  if (!pending.empty()) cnf.AddClauseDimacs(pending);
  if (!saw_header) return Status::InvalidInput("missing DIMACS header");
  cnf.EnsureVars(declared_vars);
  return cnf;
}

std::string Cnf::ToDimacs() const {
  std::string out = "p cnf " + std::to_string(num_vars_) + " " +
                    std::to_string(clauses_.size()) + "\n";
  for (const Clause& c : clauses_) {
    for (Lit l : c) out += std::to_string(l.ToDimacs()) + " ";
    out += "0\n";
  }
  return out;
}

}  // namespace tbc
