#ifndef TBC_LOGIC_CNF_H_
#define TBC_LOGIC_CNF_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "logic/lit.h"

namespace tbc {

/// A clause is a disjunction of literals.
using Clause = std::vector<Lit>;

/// A Boolean formula in Conjunctive Normal Form.
///
/// This is the input language of every knowledge compiler in the library
/// (CNF -> d-DNNF / OBDD / SDD) and the output language of the encodings
/// (Bayesian networks, route spaces, rankings, classifiers).
class Cnf {
 public:
  /// An empty (trivially true) CNF over `num_vars` variables.
  explicit Cnf(size_t num_vars = 0) : num_vars_(num_vars) {}

  /// Adds a clause. Duplicate literals are removed; tautological clauses
  /// (containing both x and ~x) are dropped. Grows num_vars if needed.
  void AddClause(Clause clause);

  /// Adds a clause from DIMACS-style signed ints, e.g. {1, -3}.
  void AddClauseDimacs(const std::vector<int>& dimacs_lits);

  /// Number of variables (variables are 0..num_vars()-1).
  size_t num_vars() const { return num_vars_; }
  /// Declares at least n variables (some may not occur in clauses).
  void EnsureVars(size_t n) {
    if (n > num_vars_) num_vars_ = n;
  }

  size_t num_clauses() const { return clauses_.size(); }
  const std::vector<Clause>& clauses() const { return clauses_; }
  const Clause& clause(size_t i) const { return clauses_[i]; }

  /// True iff the assignment satisfies every clause.
  bool Evaluate(const Assignment& assignment) const;

  /// Returns the CNF conditioned on literal l: clauses containing l are
  /// removed, occurrences of ~l are deleted. num_vars is unchanged.
  Cnf Condition(Lit l) const;

  /// Conjunction of two CNFs over the union of their variables.
  static Cnf Conjoin(const Cnf& a, const Cnf& b);

  /// True iff some clause is empty (formula trivially unsatisfiable).
  bool HasEmptyClause() const;

  /// Exact model count by exhaustive enumeration. Intended as a test oracle;
  /// aborts if num_vars() > 30.
  uint64_t CountModelsBruteForce() const;

  /// Parses DIMACS CNF text ("p cnf <vars> <clauses>" header, 'c' comments).
  static Result<Cnf> ParseDimacs(const std::string& text);

  /// Serializes to DIMACS CNF text.
  std::string ToDimacs() const;

 private:
  size_t num_vars_;
  std::vector<Clause> clauses_;
};

}  // namespace tbc

#endif  // TBC_LOGIC_CNF_H_
