#ifndef TBC_LOGIC_SIMPLIFY_H_
#define TBC_LOGIC_SIMPLIFY_H_

#include <vector>

#include "logic/cnf.h"

namespace tbc {

/// Result of equivalence-preserving CNF preprocessing:
///   original  ≡  simplified ∧ (unit clauses for every literal in units).
/// Model counts are preserved once the units are conjoined back, which is
/// what the compilers and counters need.
struct PreprocessResult {
  Cnf simplified;
  std::vector<Lit> units;  // literals fixed by unit propagation
  bool unsat = false;      // conflict during propagation
};

/// Preprocesses a CNF with the equivalence-preserving pipeline every real
/// knowledge compiler runs before search: unit propagation to fixpoint,
/// duplicate-clause removal, and clause subsumption (a clause is dropped
/// when a subset clause exists). Pure-literal elimination is deliberately
/// NOT applied here — it preserves satisfiability but not equivalence or
/// model counts.
PreprocessResult Preprocess(const Cnf& cnf);

/// Pure literals of the CNF (appearing with only one polarity).
/// Assigning them preserves satisfiability but not the model count;
/// exposed for SAT-only pipelines.
std::vector<Lit> PureLiterals(const Cnf& cnf);

/// Reassembles an equivalent CNF from a preprocess result (simplified
/// clauses plus one unit clause per fixed literal) — the round-trip used
/// in tests and by callers needing a single formula again.
Cnf Reassemble(const PreprocessResult& result);

}  // namespace tbc

#endif  // TBC_LOGIC_SIMPLIFY_H_
