#include "bayes/circuit_inference.h"

#include <algorithm>

#include "base/check.h"
#include "compiler/ddnnf_compiler.h"
#include "nnf/properties.h"
#include "nnf/queries.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {

CompiledBayesNet::CompiledBayesNet(const BayesianNetwork& net)
    : net_(net), encoding_(net) {
  DdnnfCompiler compiler;
  root_ = compiler.Compile(encoding_.cnf(), mgr_);
}

CompiledBayesNet::CompiledBayesNet(const BayesianNetwork& net, DeferCompileTag)
    : net_(net), encoding_(net), root_(kInvalidNnf) {}

Result<CompiledBayesNet> CompiledBayesNet::CompileBounded(
    const BayesianNetwork& net, Guard& guard) {
  if (net.num_vars() == 0) return Status::InvalidInput("empty network");
  CompiledBayesNet compiled(net, DeferCompileTag{});
  DdnnfCompiler compiler;
  TBC_ASSIGN_OR_RETURN(
      compiled.root_,
      compiler.CompileBounded(compiled.encoding_.cnf(), compiled.mgr_, guard));
  return compiled;
}

double CompiledBayesNet::ProbEvidence(const BnInstantiation& evidence) {
  return Wmc(mgr_, root_, encoding_.WeightsWithEvidence(evidence));
}

Result<std::vector<double>> CompiledBayesNet::ProbEvidenceBatch(
    const std::vector<BnInstantiation>& evidence, Guard& guard,
    ThreadPool* pool) {
  TBC_RETURN_IF_ERROR(guard.Check());
  // Warm the var-set and schedule caches once: afterwards every WMC pass
  // only reads the manager, so concurrent lanes are race-free.
  mgr_.VarSet(root_);
  mgr_.ScheduleCached(root_);
  std::vector<double> out(evidence.size(), 0.0);
  const std::function<void(size_t)> body = [&](size_t i) {
    const Result<double> r =
        WmcBounded(mgr_, root_, encoding_.WeightsWithEvidence(evidence[i]), guard);
    // A failure implies the shared guard tripped; the final Check reports it.
    if (r.ok()) out[i] = *r;
  };
  if (pool != nullptr && pool->num_threads() > 1 && evidence.size() > 1) {
    TBC_RETURN_IF_ERROR(pool->ParallelFor(0, evidence.size(), 1, body, &guard));
  } else {
    for (size_t i = 0; i < evidence.size(); ++i) {
      TBC_RETURN_IF_ERROR(guard.Poll());
      body(i);
    }
  }
  TBC_RETURN_IF_ERROR(guard.Check());
  return out;
}

double CompiledBayesNet::Marginal(BnVar v, int value,
                                  const BnInstantiation& evidence) {
  BnInstantiation extended = evidence;
  extended.resize(net_.num_vars(), kUnobserved);
  TBC_CHECK_MSG(extended[v] == kUnobserved || extended[v] == value,
                "marginal contradicts evidence");
  extended[v] = value;
  return ProbEvidence(extended);
}

double CompiledBayesNet::Posterior(BnVar v, int value,
                                   const BnInstantiation& evidence) {
  const double pe = ProbEvidence(evidence);
  TBC_CHECK_MSG(pe > 0.0, "zero-probability evidence");
  return Marginal(v, value, evidence) / pe;
}

Result<double> CompiledBayesNet::PosteriorChecked(
    BnVar v, int value, const BnInstantiation& evidence) {
  if (v >= net_.num_vars()) {
    return Status::InvalidInput("variable " + std::to_string(v) +
                                " out of range");
  }
  if (value < 0 || value >= static_cast<int>(net_.cardinality(v))) {
    return Status::InvalidInput("value " + std::to_string(value) +
                                " out of range for variable " +
                                std::to_string(v));
  }
  if (v < evidence.size() && evidence[v] != kUnobserved &&
      evidence[v] != value) {
    return Status::InvalidInput("query contradicts evidence on variable " +
                                std::to_string(v));
  }
  const double pe = ProbEvidence(evidence);
  if (pe <= 0.0) return Status::InvalidInput("zero-probability evidence");
  return Marginal(v, value, evidence) / pe;
}

std::vector<std::vector<double>> CompiledBayesNet::AllMarginals(
    const BnInstantiation& evidence) {
  const WeightMap w = encoding_.WeightsWithEvidence(evidence);
  const std::vector<double> lit_marginals = MarginalWmc(mgr_, root_, w);
  std::vector<std::vector<double>> out(net_.num_vars());
  for (BnVar v = 0; v < net_.num_vars(); ++v) {
    out[v].resize(net_.cardinality(v));
    for (uint32_t x = 0; x < net_.cardinality(v); ++x) {
      const Lit l = Pos(encoding_.IndicatorVar(v, static_cast<int>(x)));
      out[v][x] = lit_marginals[l.code()];
    }
  }
  return out;
}

CompiledBayesNet::MpeOutcome CompiledBayesNet::Mpe(
    const BnInstantiation& evidence) {
  const WeightMap w = encoding_.WeightsWithEvidence(evidence);
  const MpeResult r = MaxWmc(mgr_, root_, w, encoding_.num_bool_vars());
  MpeOutcome out;
  out.probability = r.weight;
  out.instantiation = encoding_.DecodeModel(r.assignment);
  return out;
}

CompiledBayesNet::MapOutcome CompiledBayesNet::Map(
    const std::vector<BnVar>& map_vars, const BnInstantiation& evidence) {
  // Constrained vtree: MAP-variable indicators on the top right-spine,
  // everything else below (paper Fig 10b).
  std::vector<Var> top;
  for (BnVar v : map_vars) {
    for (Var u : encoding_.IndicatorVars(v)) top.push_back(u);
  }
  std::vector<Var> bottom;
  for (Var u = 0; u < encoding_.num_bool_vars(); ++u) {
    if (std::find(top.begin(), top.end(), u) == top.end()) bottom.push_back(u);
  }
  SddManager sdd(Vtree::Constrained(top, bottom));
  const SddId f = CompileCnf(sdd, encoding_.cnf());
  NnfManager nnf;
  NnfId root = sdd.ToNnf(f, nnf);
  root = Smooth(nnf, root, encoding_.num_bool_vars());

  const WeightMap w = encoding_.WeightsWithEvidence(evidence);
  const MaxSumResult r = MaxSumWmc(nnf, root, w, top);

  MapOutcome out;
  out.probability = r.value;
  out.values.assign(map_vars.size(), kUnobserved);
  for (Lit l : r.max_assignment) {
    if (!l.positive()) continue;
    for (size_t k = 0; k < map_vars.size(); ++k) {
      const BnVar v = map_vars[k];
      for (uint32_t x = 0; x < net_.cardinality(v); ++x) {
        if (encoding_.IndicatorVar(v, static_cast<int>(x)) == l.var()) {
          out.values[k] = static_cast<int>(x);
        }
      }
    }
  }
  return out;
}

double CompiledBayesNet::Sdp(BnVar decision_var, int d_value, double threshold,
                             const std::vector<BnVar>& observables,
                             const BnInstantiation& evidence) {
  const double pe = ProbEvidence(evidence);
  TBC_CHECK_MSG(pe > 0.0, "zero-probability evidence");
  const bool current =
      Marginal(decision_var, d_value, evidence) / pe >= threshold;

  uint64_t num_y = 1;
  for (BnVar v : observables) num_y *= net_.cardinality(v);
  double sdp = 0.0;
  for (uint64_t code = 0; code < num_y; ++code) {
    BnInstantiation with_y = evidence;
    with_y.resize(net_.num_vars(), kUnobserved);
    uint64_t rest = code;
    for (size_t k = observables.size(); k-- > 0;) {
      with_y[observables[k]] =
          static_cast<int>(rest % net_.cardinality(observables[k]));
      rest /= net_.cardinality(observables[k]);
    }
    const double pye = ProbEvidence(with_y);
    if (pye <= 0.0) continue;
    const bool decision =
        Marginal(decision_var, d_value, with_y) / pye >= threshold;
    if (decision == current) sdp += pye / pe;
  }
  return sdp;
}

size_t CompiledBayesNet::CircuitSize() const { return mgr_.CircuitSize(root_); }

}  // namespace tbc
