#ifndef TBC_BAYES_VARELIM_H_
#define TBC_BAYES_VARELIM_H_

#include <vector>

#include "base/guard.h"
#include "base/result.h"
#include "bayes/factor.h"
#include "bayes/network.h"

namespace tbc {

/// Variable elimination: the classical dedicated inference algorithm for
/// Bayesian networks (paper §2: "there is a long tradition of developing
/// dedicated algorithms"). Serves as the library's baseline against which
/// the circuit-based reductions (WMC on compiled circuits) are validated
/// and compared.
class VariableElimination {
 public:
  explicit VariableElimination(const BayesianNetwork& net) : net_(net) {}

  /// Pr(evidence): probability of a partial instantiation.
  double ProbEvidence(const BnInstantiation& evidence) const;

  /// Pr(v = value, evidence) — unnormalized marginal (MAR).
  double Marginal(BnVar v, int value, const BnInstantiation& evidence) const;

  /// Pr(v = value | evidence); aborts if Pr(evidence) == 0.
  double Posterior(BnVar v, int value, const BnInstantiation& evidence) const;

  /// Resource-governed variants: intermediate factor tables are charged
  /// against the guard's node budget (one unit per table entry produced),
  /// and the deadline/cancellation is polled between eliminations — the
  /// classical blow-up of variable elimination is its intermediate factor
  /// width, which is exactly what the node budget caps.
  Result<double> ProbEvidenceBounded(const BnInstantiation& evidence,
                                     Guard& guard) const;
  Result<double> MarginalBounded(BnVar v, int value,
                                 const BnInstantiation& evidence,
                                 Guard& guard) const;
  /// kInvalidInput (not an abort) when Pr(evidence) == 0.
  Result<double> PosteriorBounded(BnVar v, int value,
                                  const BnInstantiation& evidence,
                                  Guard& guard) const;

  /// max_x Pr(x, evidence): the MPE value (D-MPE's optimization version).
  double MpeValue(const BnInstantiation& evidence) const;

  /// The MPE instantiation itself (completes the evidence).
  BnInstantiation Mpe(const BnInstantiation& evidence) const;

  /// max_y Pr(y, evidence) over instantiations y of map_vars, summing out
  /// all other variables: the MAP query (NP^PP). Returns the value and the
  /// maximizing values (parallel to map_vars).
  double Map(const std::vector<BnVar>& map_vars, const BnInstantiation& evidence,
             std::vector<int>* argmax) const;

  /// Same-decision probability [Darwiche & Choi 2010] (PP^PP): the
  /// probability that the threshold decision [Pr(d = d_value | e) >= T]
  /// keeps its current truth value after also observing the variables Y.
  ///   SDP = Σ_y Pr(y | e) · [ [Pr(d|y,e) >= T] == [Pr(d|e) >= T] ].
  double Sdp(BnVar decision_var, int d_value, double threshold,
             const std::vector<BnVar>& observables,
             const BnInstantiation& evidence) const;

 private:
  // Multiplies all CPT factors restricted to evidence, then eliminates the
  // variables in `eliminate` by sum (or max when in `maximize`).
  Factor Eliminate(const BnInstantiation& evidence,
                   const std::vector<BnVar>& keep, bool maximize_rest) const;

  // Guarded core: every intermediate product's table size is charged
  // before the multiplication runs.
  Result<Factor> EliminateBounded(const BnInstantiation& evidence,
                                  const std::vector<BnVar>& keep,
                                  bool maximize_rest, Guard& guard) const;

  const BayesianNetwork& net_;
};

}  // namespace tbc

#endif  // TBC_BAYES_VARELIM_H_
