#include "bayes/network.h"

#include <cmath>

#include "base/check.h"

namespace tbc {

BnVar BayesianNetwork::AddVariable(std::string name, uint32_t cardinality,
                                   std::vector<BnVar> parents,
                                   std::vector<double> cpt) {
  TBC_CHECK(cardinality >= 2);
  size_t rows = 1;
  for (BnVar p : parents) {
    TBC_CHECK_MSG(p < num_vars(), "parents must be added before children");
    rows *= cards_[p];
  }
  TBC_CHECK_MSG(cpt.size() == rows * cardinality, "CPT size mismatch");
  for (size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (uint32_t k = 0; k < cardinality; ++k) sum += cpt[r * cardinality + k];
    TBC_CHECK_MSG(std::abs(sum - 1.0) < 1e-6, "CPT row does not sum to 1");
  }
  names_.push_back(std::move(name));
  cards_.push_back(cardinality);
  parents_.push_back(std::move(parents));
  cpts_.push_back(std::move(cpt));
  return static_cast<BnVar>(num_vars() - 1);
}

BnVar BayesianNetwork::AddBinary(std::string name, std::vector<BnVar> parents,
                                 std::vector<double> cpt_true) {
  std::vector<double> cpt;
  cpt.reserve(2 * cpt_true.size());
  for (double p : cpt_true) {
    cpt.push_back(1.0 - p);  // value 0
    cpt.push_back(p);        // value 1
  }
  return AddVariable(std::move(name), 2, std::move(parents), std::move(cpt));
}

BnVar BayesianNetwork::VarByName(const std::string& name) const {
  for (BnVar v = 0; v < num_vars(); ++v) {
    if (names_[v] == name) return v;
  }
  TBC_CHECK_MSG(false, ("no variable named " + name).c_str());
  return 0;
}

size_t BayesianNetwork::ParentConfigIndex(BnVar v,
                                          const BnInstantiation& inst) const {
  size_t index = 0;
  for (BnVar p : parents_[v]) {
    TBC_DCHECK(inst[p] != kUnobserved);
    index = index * cards_[p] + static_cast<size_t>(inst[p]);
  }
  return index;
}

double BayesianNetwork::Theta(BnVar v, const BnInstantiation& inst,
                              int value) const {
  const size_t row = ParentConfigIndex(v, inst);
  return cpts_[v][row * cards_[v] + static_cast<size_t>(value)];
}

double BayesianNetwork::JointProbability(const BnInstantiation& inst) const {
  TBC_DCHECK(inst.size() == num_vars());
  double p = 1.0;
  for (BnVar v = 0; v < num_vars(); ++v) p *= Theta(v, inst, inst[v]);
  return p;
}

uint64_t BayesianNetwork::NumInstantiations() const {
  uint64_t n = 1;
  for (uint32_t c : cards_) {
    n *= c;
    TBC_CHECK_MSG(n <= (1ull << 40), "instantiation space too large");
  }
  return n;
}

BnInstantiation BayesianNetwork::InstantiationAt(uint64_t index) const {
  BnInstantiation inst(num_vars());
  for (size_t v = num_vars(); v-- > 0;) {
    inst[v] = static_cast<int>(index % cards_[v]);
    index /= cards_[v];
  }
  return inst;
}

double BayesianNetwork::MarginalBruteForce(BnVar v, int value,
                                           const BnInstantiation& evidence) const {
  double total = 0.0;
  const uint64_t n = NumInstantiations();
  for (uint64_t i = 0; i < n; ++i) {
    BnInstantiation inst = InstantiationAt(i);
    if (inst[v] != value) continue;
    bool compatible = true;
    for (BnVar u = 0; u < num_vars(); ++u) {
      if (evidence.size() > u && evidence[u] != kUnobserved &&
          evidence[u] != inst[u]) {
        compatible = false;
        break;
      }
    }
    if (compatible) total += JointProbability(inst);
  }
  return total;
}

BnInstantiation BayesianNetwork::Sample(Rng& rng) const {
  BnInstantiation inst(num_vars(), kUnobserved);
  for (BnVar v = 0; v < num_vars(); ++v) {
    double u = rng.Uniform();
    int value = static_cast<int>(cards_[v]) - 1;
    for (int x = 0; x < static_cast<int>(cards_[v]); ++x) {
      const double p = Theta(v, inst, x);
      if (u < p) {
        value = x;
        break;
      }
      u -= p;
    }
    inst[v] = value;
  }
  return inst;
}

BayesianNetwork BayesianNetwork::RandomBinary(size_t num_vars,
                                              size_t max_parents,
                                              uint64_t seed) {
  Rng rng(seed);
  BayesianNetwork net;
  for (size_t v = 0; v < num_vars; ++v) {
    std::vector<BnVar> parents;
    if (v > 0) {
      const size_t count = rng.Below(std::min(max_parents, v) + 1);
      while (parents.size() < count) {
        const BnVar p = static_cast<BnVar>(rng.Below(v));
        bool dup = false;
        for (BnVar q : parents) dup |= q == p;
        if (!dup) parents.push_back(p);
      }
    }
    const size_t rows = 1ull << parents.size();
    std::vector<double> cpt_true(rows);
    for (double& x : cpt_true) x = 0.05 + 0.9 * rng.Uniform();
    net.AddBinary("x" + std::to_string(v), std::move(parents),
                  std::move(cpt_true));
  }
  return net;
}

}  // namespace tbc
