#include "bayes/jointree.h"

#include <algorithm>
#include <set>

#include "base/check.h"

namespace tbc {

namespace {

// Number of fill-in edges needed to make v's neighborhood a clique.
size_t FillCount(const std::vector<std::set<BnVar>>& adj, BnVar v) {
  size_t fill = 0;
  for (BnVar a : adj[v]) {
    for (BnVar b : adj[v]) {
      if (a < b && adj[a].find(b) == adj[a].end()) ++fill;
    }
  }
  return fill;
}

}  // namespace

Jointree::Jointree(const BayesianNetwork& net) : net_(net) {
  const size_t n = net.num_vars();
  // Moral graph.
  std::vector<std::set<BnVar>> adj(n);
  auto connect = [&](BnVar a, BnVar b) {
    if (a == b) return;
    adj[a].insert(b);
    adj[b].insert(a);
  };
  for (BnVar v = 0; v < n; ++v) {
    for (BnVar p : net.parents(v)) {
      connect(v, p);
      for (BnVar q : net.parents(v)) connect(p, q);
    }
  }

  // Min-fill elimination; each elimination yields a clique.
  std::vector<int8_t> eliminated(n, 0);
  for (size_t step = 0; step < n; ++step) {
    BnVar best = static_cast<BnVar>(-1);
    size_t best_fill = SIZE_MAX;
    for (BnVar v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      const size_t fill = FillCount(adj, v);
      if (fill < best_fill) {
        best_fill = fill;
        best = v;
      }
    }
    // One clique per eliminated variable (possibly non-maximal): the
    // maximum spanning tree over these is guaranteed to satisfy the
    // running intersection property.
    std::vector<BnVar> clique = {best};
    for (BnVar u : adj[best]) clique.push_back(u);
    std::sort(clique.begin(), clique.end());
    cliques_.push_back(clique);
    // Connect neighbors, remove best.
    for (BnVar a : adj[best]) {
      for (BnVar b : adj[best]) connect(a, b);
    }
    for (BnVar a : adj[best]) adj[a].erase(best);
    adj[best].clear();
    eliminated[best] = 1;
  }

  // Maximum-spanning clique tree over separator sizes (Prim).
  const size_t k = cliques_.size();
  tree_.assign(k, {});
  std::vector<int8_t> in_tree(k, 0);
  in_tree[0] = 1;
  for (size_t added = 1; added < k; ++added) {
    size_t best_i = 0, best_j = 0;
    int best_weight = -1;
    for (size_t i = 0; i < k; ++i) {
      if (!in_tree[i]) continue;
      for (size_t j = 0; j < k; ++j) {
        if (in_tree[j]) continue;
        std::vector<BnVar> sep;
        std::set_intersection(cliques_[i].begin(), cliques_[i].end(),
                              cliques_[j].begin(), cliques_[j].end(),
                              std::back_inserter(sep));
        if (static_cast<int>(sep.size()) > best_weight) {
          best_weight = static_cast<int>(sep.size());
          best_i = i;
          best_j = j;
        }
      }
    }
    std::vector<BnVar> sep;
    std::set_intersection(cliques_[best_i].begin(), cliques_[best_i].end(),
                          cliques_[best_j].begin(), cliques_[best_j].end(),
                          std::back_inserter(sep));
    tree_[best_i].push_back({best_j, sep});
    tree_[best_j].push_back({best_i, sep});
    in_tree[best_j] = 1;
  }

  // Assign each variable's CPT to a clique containing its family, and
  // record a home clique per variable.
  cpt_assignment_.assign(k, {});
  home_clique_.assign(n, 0);
  for (BnVar v = 0; v < n; ++v) {
    std::vector<BnVar> family = net.parents(v);
    family.push_back(v);
    std::sort(family.begin(), family.end());
    bool placed = false;
    for (size_t c = 0; c < k && !placed; ++c) {
      if (std::includes(cliques_[c].begin(), cliques_[c].end(), family.begin(),
                        family.end())) {
        cpt_assignment_[c].push_back(v);
        placed = true;
      }
    }
    TBC_CHECK_MSG(placed, "family not covered by any clique");
    for (size_t c = 0; c < k; ++c) {
      if (std::binary_search(cliques_[c].begin(), cliques_[c].end(), v)) {
        home_clique_[v] = c;
        break;
      }
    }
  }
}

size_t Jointree::max_clique_size() const {
  size_t m = 0;
  for (const auto& c : cliques_) m = std::max(m, c.size());
  return m;
}

Factor Jointree::InitialPotential(size_t clique,
                                  const BnInstantiation& evidence) const {
  std::vector<uint32_t> cards;
  for (BnVar v : cliques_[clique]) cards.push_back(net_.cardinality(v));
  Factor potential(cliques_[clique], cards);
  for (BnVar v : cpt_assignment_[clique]) {
    potential = Factor::Multiply(potential, Factor::FromCpt(net_, v));
  }
  for (BnVar v : cliques_[clique]) {
    if (v < evidence.size() && evidence[v] != kUnobserved) {
      potential = potential.Restrict(v, evidence[v]);
    }
  }
  return potential;
}

Factor Jointree::MessageTo(size_t from, size_t to,
                           const BnInstantiation& evidence,
                           std::vector<std::vector<Factor>>& messages,
                           std::vector<std::vector<int8_t>>& ready) const {
  if (ready[from][to]) return messages[from][to];
  Factor f = InitialPotential(from, evidence);
  for (const Edge& e : tree_[from]) {
    if (e.neighbor == to) continue;
    f = Factor::Multiply(f, MessageTo(e.neighbor, from, evidence, messages, ready));
  }
  // Marginalize down to the separator.
  const Edge* edge = nullptr;
  for (const Edge& e : tree_[from]) {
    if (e.neighbor == to) edge = &e;
  }
  TBC_DCHECK(edge != nullptr);
  for (BnVar v : cliques_[from]) {
    if (!std::binary_search(edge->separator.begin(), edge->separator.end(), v)) {
      f = f.SumOut(v);
    }
  }
  messages[from][to] = f;
  ready[from][to] = 1;
  return f;
}

std::vector<Factor> Jointree::Calibrate(const BnInstantiation& evidence) const {
  const size_t k = cliques_.size();
  std::vector<std::vector<Factor>> messages(
      k, std::vector<Factor>(k, Factor({}, {})));
  std::vector<std::vector<int8_t>> ready(k, std::vector<int8_t>(k, 0));
  std::vector<Factor> beliefs;
  beliefs.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    Factor b = InitialPotential(c, evidence);
    for (const Edge& e : tree_[c]) {
      b = Factor::Multiply(b, MessageTo(e.neighbor, c, evidence, messages, ready));
    }
    beliefs.push_back(std::move(b));
  }
  return beliefs;
}

double Jointree::ProbEvidence(const BnInstantiation& evidence) const {
  return Calibrate(evidence)[0].Total();
}

double Jointree::Marginal(BnVar v, int value,
                          const BnInstantiation& evidence) const {
  const std::vector<Factor> beliefs = Calibrate(evidence);
  Factor f = beliefs[home_clique_[v]];
  for (BnVar u : cliques_[home_clique_[v]]) {
    if (u != v) f = f.SumOut(u);
  }
  BnInstantiation inst(net_.num_vars(), kUnobserved);
  inst[v] = value;
  // Evidence on v itself zeroes out other values already (restriction).
  return f.At(inst);
}

std::vector<std::vector<double>> Jointree::AllMarginals(
    const BnInstantiation& evidence) const {
  const std::vector<Factor> beliefs = Calibrate(evidence);
  std::vector<std::vector<double>> out(net_.num_vars());
  for (BnVar v = 0; v < net_.num_vars(); ++v) {
    Factor f = beliefs[home_clique_[v]];
    for (BnVar u : cliques_[home_clique_[v]]) {
      if (u != v) f = f.SumOut(u);
    }
    out[v].resize(net_.cardinality(v));
    BnInstantiation inst(net_.num_vars(), kUnobserved);
    for (uint32_t x = 0; x < net_.cardinality(v); ++x) {
      inst[v] = static_cast<int>(x);
      out[v][x] = f.At(inst);
    }
  }
  return out;
}

}  // namespace tbc
